package pacevm

// End-to-end integration tests: the full pipeline from benchmarking
// campaign through CSV persistence, trace preprocessing, allocation and
// datacenter simulation — the paths a downstream user strings together.

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pacevm/internal/campaign"
	"pacevm/internal/cloudsim"
	"pacevm/internal/core"
	"pacevm/internal/model"
	"pacevm/internal/strategy"
	"pacevm/internal/swf"
	"pacevm/internal/trace"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

var (
	intOnce sync.Once
	intDB   *model.DB
	intErr  error
)

func integrationDB(t *testing.T) *model.DB {
	t.Helper()
	intOnce.Do(func() {
		cfg := campaign.DefaultConfig()
		cfg.FullGridTotal = 16
		intDB, _, intErr = campaign.Run(cfg)
	})
	if intErr != nil {
		t.Fatal(intErr)
	}
	return intDB
}

// TestPipelineCampaignToSimulation is the canonical end-to-end flow:
// build the model, persist it to CSV files, reload it, and drive a full
// simulation with the reloaded database.
func TestPipelineCampaignToSimulation(t *testing.T) {
	db := integrationDB(t)

	dir := t.TempDir()
	mainPath := filepath.Join(dir, "model.csv")
	auxPath := filepath.Join(dir, "aux.csv")
	var mainBuf, auxBuf bytes.Buffer
	if err := db.WriteCSV(&mainBuf); err != nil {
		t.Fatal(err)
	}
	if err := db.WriteAuxCSV(&auxBuf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mainPath, mainBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(auxPath, auxBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	mf, err := os.Open(mainPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	af, err := os.Open(auxPath)
	if err != nil {
		t.Fatal(err)
	}
	defer af.Close()
	reloaded, err := model.ReadCSV(mf, af)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Len() != db.Len() {
		t.Fatalf("reloaded %d records, want %d", reloaded.Len(), db.Len())
	}

	// Trace: generate, persist as SWF, re-parse, preprocess.
	gcfg := trace.DefaultGenConfig(5)
	gcfg.Jobs = 400
	tr, err := trace.Generate(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	var swfBuf bytes.Buffer
	if err := swf.Write(&swfBuf, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := swf.Parse(&swfBuf)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := trace.DefaultPrepConfig(5)
	pcfg.TargetVMs = 600
	reqs, rep, err := trace.Prepare(tr2, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalVMs < 600 {
		t.Fatalf("trace too small: %d VMs", rep.TotalVMs)
	}

	// Simulate with the reloaded database.
	pa, err := strategy.NewProactive(reloaded, core.GoalBalanced, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cloudsim.Run(cloudsim.Config{
		DB: reloaded, Servers: 6, Strategy: pa, IdleServerPower: -1, RecordVMs: true,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalVMs != rep.TotalVMs || len(res.VMs) != rep.TotalVMs {
		t.Fatalf("simulated %d VMs, trace has %d", res.TotalVMs, rep.TotalVMs)
	}
	if res.Makespan <= 0 || res.Energy <= 0 {
		t.Fatalf("degenerate metrics: %+v", res.Metrics)
	}
	for _, vm := range res.VMs {
		if vm.Completion < vm.Placed || vm.Placed < vm.Submit {
			t.Fatalf("causality violated: %+v", vm)
		}
	}
}

// TestSimulationIdenticalAcrossDBPersistence asserts that persisting the
// model to CSV and reloading it changes no simulation outcome.
func TestSimulationIdenticalAcrossDBPersistence(t *testing.T) {
	db := integrationDB(t)
	var mainBuf, auxBuf bytes.Buffer
	if err := db.WriteCSV(&mainBuf); err != nil {
		t.Fatal(err)
	}
	if err := db.WriteAuxCSV(&auxBuf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := model.ReadCSV(&mainBuf, &auxBuf)
	if err != nil {
		t.Fatal(err)
	}

	gcfg := trace.DefaultGenConfig(11)
	gcfg.Jobs = 250
	tr, err := trace.Generate(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := trace.DefaultPrepConfig(11)
	pcfg.TargetVMs = 400
	reqs, _, err := trace.Prepare(tr, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func(d *model.DB) cloudsim.Metrics {
		pa, err := strategy.NewProactive(d, core.GoalEnergy, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cloudsim.Run(cloudsim.Config{DB: d, Servers: 5, Strategy: pa, IdleServerPower: -1}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics
	}
	a, b := run(db), run(reloaded)
	if a.Makespan != b.Makespan || a.Violations != b.Violations {
		t.Errorf("reloaded DB changed the simulation: %+v vs %+v", a, b)
	}
	if !units.NearlyEqual(float64(a.Energy), float64(b.Energy), 1e-9) {
		t.Errorf("reloaded DB changed energy: %v vs %v", a.Energy, b.Energy)
	}
}

// TestAllStrategiesCompleteSameWorkload runs every placement strategy
// (baselines and extensions alike) over one workload and checks they all
// finish every VM.
func TestAllStrategiesCompleteSameWorkload(t *testing.T) {
	db := integrationDB(t)
	gcfg := trace.DefaultGenConfig(13)
	gcfg.Jobs = 250
	tr, err := trace.Generate(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := trace.DefaultPrepConfig(13)
	pcfg.TargetVMs = 300
	reqs, rep, err := trace.Prepare(tr, pcfg)
	if err != nil {
		t.Fatal(err)
	}

	ff1, _ := strategy.NewFirstFit(1)
	ff3, _ := strategy.NewFirstFit(3)
	pa, err := strategy.NewProactive(db, core.GoalBalanced, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []strategy.Strategy{ff1, ff3, &strategy.BestFit{Multiplex: 2}, pa} {
		res, err := cloudsim.Run(cloudsim.Config{DB: db, Servers: 6, Strategy: st, IdleServerPower: -1}, reqs)
		if err != nil {
			t.Fatalf("%s: %v", st.Name(), err)
		}
		if res.TotalVMs != rep.TotalVMs {
			t.Errorf("%s: completed %d VMs, want %d", st.Name(), res.TotalVMs, rep.TotalVMs)
		}
	}
}

// TestAllocatorHonorsModelSemantics cross-checks the allocator's
// estimates against the database it was built from: placing a single
// reference-length VM on an empty server must estimate exactly the
// database's solo class time.
func TestAllocatorHonorsModelSemantics(t *testing.T) {
	db := integrationDB(t)
	alloc, err := core.NewAllocator(core.Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range workload.Classes {
		ref := db.Aux().RefTime[class]
		rec, ok := db.Lookup(model.KeyFor(class, 1))
		if !ok {
			t.Fatalf("missing solo record for %v", class)
		}
		est, err := alloc.EstimateVM(model.KeyFor(class, 1), core.VMRequest{
			ID: "v", Class: class, NominalTime: ref,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !units.NearlyEqual(float64(est), float64(rec.ClassTime(class)), 1e-9) {
			t.Errorf("%v: estimate %v, database %v", class, est, rec.ClassTime(class))
		}
	}
}

// TestGridBoundAblation demonstrates the design choice documented in
// DESIGN.md §4: without the per-class grid bound the energy goal packs
// servers beyond the measured optima.
func TestGridBoundAblation(t *testing.T) {
	db := integrationDB(t)
	ref := db.Aux().RefTime[workload.ClassCPU]
	servers := []core.ServerState{{ID: 0, Alloc: model.KeyFor(workload.ClassCPU, db.Aux().OS(workload.ClassCPU))}, {ID: 1}}
	vms := []core.VMRequest{{ID: "v", Class: workload.ClassCPU, NominalTime: ref}}

	bounded, err := core.NewAllocator(core.Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	out, err := bounded.Allocate(core.GoalEnergy, servers, vms)
	if err != nil {
		t.Fatal(err)
	}
	if out.Placements[0].ServerID != 1 {
		t.Errorf("bounded allocator packed past the per-class optimum")
	}

	unbounded, err := core.NewAllocator(core.Config{
		DB:            db,
		PerClassBound: [workload.NumClasses]int{-1, -1, -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err = unbounded.Allocate(core.GoalEnergy, servers, vms)
	if err != nil {
		t.Fatal(err)
	}
	if out.Placements[0].ServerID != 0 {
		t.Errorf("unbounded energy goal should consolidate onto the warm server (ablation)")
	}
}

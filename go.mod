module pacevm

go 1.22

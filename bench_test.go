package pacevm

// One benchmark per paper table and figure (DESIGN.md §3) plus
// micro-benchmarks for the hot paths. The Fig5/Fig6/Fig7 benchmarks each
// regenerate the full Sect.-IV evaluation dataset they are views of; the
// reduced Quick scale keeps a single iteration under a second, and
// -bench flags can raise the scale through PACEVM_PAPER_SCALE=1.

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"pacevm/internal/campaign"
	"pacevm/internal/cloudsim"
	"pacevm/internal/core"
	"pacevm/internal/experiments"
	"pacevm/internal/model"
	"pacevm/internal/partition"
	"pacevm/internal/profiler"
	"pacevm/internal/strategy"
	"pacevm/internal/trace"
	"pacevm/internal/units"
	"pacevm/internal/vmm"
	"pacevm/internal/workload"
)

func benchConfig() experiments.Config {
	if os.Getenv("PACEVM_PAPER_SCALE") == "1" {
		return experiments.Default()
	}
	return experiments.Quick()
}

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
	benchErr  error
)

func sharedCtx(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() { benchCtx, benchErr = experiments.NewContext(benchConfig()) })
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCtx
}

// BenchmarkFig1 profiles the two Fig.-1 workloads (subsystem utilization
// over time for a CPU-intensive and a CPU+network-intensive workload).
func BenchmarkFig1(b *testing.B) {
	ctx := sharedCtx(b)
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Fig1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2 regenerates the FFTW base-test curve (avg execution time
// per VM vs co-located VM count, optimum ≈ 9).
func BenchmarkFig2(b *testing.B) {
	ctx := sharedCtx(b)
	for i := 0; i < b.N; i++ {
		res, err := ctx.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		if res.OSP < 8 || res.OSP > 10 {
			b.Fatalf("Fig2 optimum drifted to %d", res.OSP)
		}
	}
}

// BenchmarkTableI regenerates the base-test parameter table (OSP/OSE/T
// per class) by re-running the base campaign.
func BenchmarkTableI(b *testing.B) {
	cfg := campaign.DefaultConfig()
	for i := 0; i < b.N; i++ {
		for _, class := range workload.Classes {
			if _, err := campaign.RunBase(cfg, class); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTableII regenerates the model database (the combined-test
// campaign over the full pricing grid).
func BenchmarkTableII(b *testing.B) {
	cfg := campaign.DefaultConfig()
	cfg.FullGridTotal = 16
	for i := 0; i < b.N; i++ {
		db, _, err := campaign.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if db.Len() < 900 {
			b.Fatalf("grid shrank to %d records", db.Len())
		}
	}
}

// BenchmarkFig4 computes the paper's interval-accounting worked example.
func BenchmarkFig4(b *testing.B) {
	ctx := sharedCtx(b)
	for i := 0; i < b.N; i++ {
		res, err := ctx.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		if res.ExecTimeVM1 != 1380 || res.Energy != 14250 {
			b.Fatal("Fig4 numbers drifted")
		}
	}
}

// evalBench regenerates the shared Sect.-IV evaluation dataset behind
// Figs. 5-7: six strategies × two clouds over the 10,000-VM trace (or
// the Quick-scale reduction).
func evalBench(b *testing.B, metric func(experiments.EvalResult) float64) {
	b.Helper()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		ctx, err := experiments.NewContext(cfg)
		if err != nil {
			b.Fatal(err)
		}
		results, err := ctx.Evaluation()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if metric(r) < 0 {
				b.Fatal("negative metric")
			}
		}
	}
}

// BenchmarkFig5 regenerates the makespan comparison.
func BenchmarkFig5(b *testing.B) {
	evalBench(b, func(r experiments.EvalResult) float64 { return float64(r.Metrics.Makespan) })
}

// BenchmarkFig6 regenerates the energy comparison.
func BenchmarkFig6(b *testing.B) {
	evalBench(b, func(r experiments.EvalResult) float64 { return float64(r.Metrics.Energy) })
}

// BenchmarkFig7 regenerates the SLA-violation comparison.
func BenchmarkFig7(b *testing.B) {
	evalBench(b, func(r experiments.EvalResult) float64 { return r.Metrics.SLAViolationPct() })
}

// --- micro-benchmarks for hot paths ---

// BenchmarkDBLookup measures the O(log n) binary-search lookup the paper
// cites for its database.
func BenchmarkDBLookup(b *testing.B) {
	db := sharedCtx(b).DB
	keys := make([]model.Key, 0, 64)
	for _, r := range db.Records() {
		keys = append(keys, r.Key)
		if len(keys) == cap(keys) {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := db.Lookup(keys[i%len(keys)]); !ok {
			b.Fatal("lookup miss")
		}
	}
}

// BenchmarkDBEstimateOffGrid measures off-grid interpolation.
func BenchmarkDBEstimateOffGrid(b *testing.B) {
	db := sharedCtx(b).DB
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Estimate(model.Key{NCPU: 10, NMEM: 9, NIO: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitions8 enumerates all 4,140 set partitions of 8 elements
// (the allocator's search substrate).
func BenchmarkPartitions8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n, err := partition.ForEach(8, func([][]int) bool { return true })
		if err != nil || n != 4140 {
			b.Fatalf("n=%d err=%v", n, err)
		}
	}
}

// benchServers builds the 66-server cloud with mixed residual
// allocations shared by the allocation benchmarks.
func benchServers() []core.ServerState {
	servers := make([]core.ServerState, 66)
	for i := range servers {
		servers[i] = core.ServerState{ID: i, Alloc: model.Key{NCPU: i % 3, NMEM: i % 2, NIO: (i + 1) % 2}}
	}
	return servers
}

// benchVMs builds an n-VM job mixing all three classes with staggered
// nominal times and generous QoS bounds, so the search sees genuinely
// distinct VM types rather than one fully-interchangeable set.
func benchVMs(db *model.DB, n int) []core.VMRequest {
	vms := make([]core.VMRequest, n)
	for i := range vms {
		class := workload.Classes[i%workload.NumClasses]
		nominal := db.Aux().RefTime[class] * units.Seconds(1+0.07*float64(i))
		vms[i] = core.VMRequest{ID: string(rune('a' + i)), Class: class, NominalTime: nominal, MaxTime: 4 * nominal}
	}
	return vms
}

// BenchmarkAllocate measures one proactive allocation decision at
// growing job sizes: an n-VM job against a 66-server cloud with mixed
// residual allocations, through the pruned and memoized search.
func BenchmarkAllocate(b *testing.B) {
	db := sharedCtx(b).DB
	alloc, err := core.NewAllocator(core.Config{DB: db, SearchWorkers: 1})
	if err != nil {
		b.Fatal(err)
	}
	servers := benchServers()
	for _, n := range []int{4, 6, 8, 10} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			vms := benchVMs(db, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := alloc.Allocate(core.GoalBalanced, servers, vms); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAllocateReference measures the retained unpruned serial
// transcription on the same workload — the pre-optimization baseline
// the BenchmarkAllocate numbers are compared against.
func BenchmarkAllocateReference(b *testing.B) {
	db := sharedCtx(b).DB
	alloc, err := core.NewAllocator(core.Config{DB: db, SearchWorkers: 1})
	if err != nil {
		b.Fatal(err)
	}
	servers := benchServers()
	for _, n := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			vms := benchVMs(db, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := alloc.AllocateReference(core.GoalBalanced, servers, vms); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAllocateParallel measures the worker-pool search on an 8-VM
// job. The pool is sized to the machine but never below two workers, so
// the fan-out path itself is exercised even on a single-core host.
func BenchmarkAllocateParallel(b *testing.B) {
	db := sharedCtx(b).DB
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2
	}
	alloc, err := core.NewAllocator(core.Config{DB: db, SearchWorkers: workers})
	if err != nil {
		b.Fatal(err)
	}
	servers := benchServers()
	vms := benchVMs(db, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := alloc.Allocate(core.GoalBalanced, servers, vms); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignParallel measures the full benchmarking campaign
// (base tests plus the complete Table-II pricing grid) through the
// worker-pool harness sized to the machine.
func BenchmarkCampaignParallel(b *testing.B) {
	cfg := campaign.DefaultConfig()
	cfg.FullGridTotal = 16
	cfg.Workers = 0 // one worker per CPU
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db, _, err := campaign.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if db.Len() < 900 {
			b.Fatalf("grid shrank to %d records", db.Len())
		}
	}
}

// BenchmarkHypervisorRun measures one 12-VM mixed co-location experiment
// in the hypervisor simulator.
func BenchmarkHypervisorRun(b *testing.B) {
	cfg := vmm.DefaultConfig()
	mix := vmm.Mix(4, 4, 4)
	for i := 0; i < b.N; i++ {
		if _, err := vmm.Run(cfg, mix); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfiler measures one full application-profiling pass.
func BenchmarkProfiler(b *testing.B) {
	pcfg := profiler.DefaultConfig()
	vcfg := vmm.DefaultConfig()
	bench := workload.MPINet()
	for i := 0; i < b.N; i++ {
		if _, err := profiler.Run(pcfg, vcfg, bench); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCloudsimFF measures the datacenter simulator's event loop
// under first-fit on a 1,000-VM trace.
func BenchmarkCloudsimFF(b *testing.B) {
	db := sharedCtx(b).DB
	gcfg := trace.DefaultGenConfig(9)
	gcfg.Jobs = 700
	tr, err := trace.Generate(gcfg)
	if err != nil {
		b.Fatal(err)
	}
	pcfg := trace.DefaultPrepConfig(9)
	pcfg.TargetVMs = 1000
	reqs, _, err := trace.Prepare(tr, pcfg)
	if err != nil {
		b.Fatal(err)
	}
	ff, err := strategy.NewFirstFit(2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cloudsim.Run(cloudsim.Config{DB: db, Servers: 10, Strategy: ff, IdleServerPower: -1}, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracePipeline measures SWF generation plus the full
// preprocessing pipeline for a 1,000-VM workload.
func BenchmarkTracePipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gcfg := trace.DefaultGenConfig(uint64(i))
		gcfg.Jobs = 700
		tr, err := trace.Generate(gcfg)
		if err != nil {
			b.Fatal(err)
		}
		pcfg := trace.DefaultPrepConfig(uint64(i))
		pcfg.TargetVMs = 1000
		if _, _, err := trace.Prepare(tr, pcfg); err != nil {
			b.Fatal(err)
		}
	}
}

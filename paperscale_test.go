package pacevm

// Paper-scale end-to-end verification, opt-in because it runs the full
// 10,000-VM evaluation (~5 s):
//
//	PACEVM_PAPER_SCALE=1 go test -run TestPaperScale .
//
// The Quick-scale equivalents in internal/experiments run on every `go
// test`; this test confirms the headline bands hold at the scale the
// paper actually reports.

import (
	"os"
	"testing"

	"pacevm/internal/experiments"
)

func TestPaperScaleHeadlines(t *testing.T) {
	if os.Getenv("PACEVM_PAPER_SCALE") != "1" {
		t.Skip("set PACEVM_PAPER_SCALE=1 to run the full 10,000-VM evaluation")
	}
	ctx, err := experiments.NewContext(experiments.Default())
	if err != nil {
		t.Fatal(err)
	}
	results, err := ctx.Evaluation()
	if err != nil {
		t.Fatal(err)
	}
	for _, cloud := range []experiments.CloudName{experiments.Smaller, experiments.Larger} {
		h, err := experiments.ComputeHeadlines(results, cloud)
		if err != nil {
			t.Fatal(err)
		}
		// The paper: up to 18 % shorter execution times vs first-fit.
		if h.MakespanSavingVsFFPct < 15 || h.MakespanSavingVsFFPct > 35 {
			t.Errorf("%s: makespan saving vs FF = %.1f%%, want 15-35%% (paper: up to 18%%)", cloud, h.MakespanSavingVsFFPct)
		}
		// The paper: ~12 % energy saving vs first-fit.
		if h.EnergySavingVsFFPct < 8 || h.EnergySavingVsFFPct > 18 {
			t.Errorf("%s: energy saving vs FF = %.1f%%, want 8-18%% (paper: ~12%%)", cloud, h.EnergySavingVsFFPct)
		}
		// α orderings (paper: ~3 %, "<2 %" variations).
		if h.PA1VsPA0EnergyPct < 0 || h.PA1VsPA0EnergyPct > 5 {
			t.Errorf("%s: PA-1 vs PA-0 energy = %.1f%%, want 0-5%%", cloud, h.PA1VsPA0EnergyPct)
		}
		if h.SLAReductionPct <= 50 {
			t.Errorf("%s: SLA reduction = %.1f pts, want a decisive PROACTIVE advantage", cloud, h.SLAReductionPct)
		}
	}
	// Fig. 2 at paper scale: optimum 9, knee past 11.
	fig2, err := ctx.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if fig2.OSP != 9 {
		t.Errorf("FFTW optimum = %d VMs, want the paper's 9 at full calibration", fig2.OSP)
	}
}

// Datacenter example: replay an EGEE-like trace through the cloud
// simulator under first-fit and under the paper's PROACTIVE strategy,
// and compare makespan, energy and SLA violations — a miniature of the
// paper's Sect.-IV evaluation.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"os"

	"pacevm/internal/campaign"
	"pacevm/internal/cloudsim"
	"pacevm/internal/core"
	"pacevm/internal/report"
	"pacevm/internal/strategy"
	"pacevm/internal/trace"
)

func main() {
	// Model database (full pricing grid so first-fit multiplexing is
	// always priced exactly).
	ccfg := campaign.DefaultConfig()
	ccfg.FullGridTotal = 16
	db, _, err := campaign.Run(ccfg)
	if err != nil {
		log.Fatal(err)
	}

	// A ~2,000-VM synthetic EGEE-like trace, preprocessed with the
	// paper's pipeline (clean, profile bursts, 1-4 VMs/job, QoS).
	gcfg := trace.DefaultGenConfig(1)
	gcfg.Jobs = 1200
	tr, err := trace.Generate(gcfg)
	if err != nil {
		log.Fatal(err)
	}
	pcfg := trace.DefaultPrepConfig(1)
	pcfg.TargetVMs = 2000
	reqs, rep, err := trace.Prepare(tr, pcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d requests, %d VMs\n\n", rep.Requests, rep.TotalVMs)

	ff, err := strategy.NewFirstFit(1)
	if err != nil {
		log.Fatal(err)
	}
	ff2, err := strategy.NewFirstFit(2)
	if err != nil {
		log.Fatal(err)
	}
	pa, err := strategy.NewProactive(db, core.GoalBalanced, 0)
	if err != nil {
		log.Fatal(err)
	}

	const servers = 14
	t := report.NewTable(fmt.Sprintf("strategy comparison on %d servers", servers),
		"strategy", "makespan(s)", "energy(MJ)", "SLA violations", "avg wait(s)")
	for _, st := range []strategy.Strategy{ff, ff2, pa} {
		res, err := cloudsim.Run(cloudsim.Config{
			DB: db, Servers: servers, Strategy: st, IdleServerPower: -1,
		}, reqs)
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		t.AddRowf("%s\t%.0f\t%.1f\t%.1f%%\t%.0f",
			st.Name(), float64(m.Makespan), float64(m.Energy)/1e6,
			m.SLAViolationPct(), float64(m.AvgWait))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPROACTIVE consolidates compatible VMs, so it runs the same")
	fmt.Println("workload faster, with less energy and fewer missed deadlines.")
}

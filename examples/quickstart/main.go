// Quickstart: build the empirical allocation model and place one job's
// VMs with the paper's application-centric energy-aware allocator.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pacevm/internal/campaign"
	"pacevm/internal/core"
	"pacevm/internal/model"
	"pacevm/internal/workload"
)

func main() {
	// 1. Run the benchmarking campaign on the simulated testbed: base
	//    tests per workload class plus the combined-mix grid. On the real
	//    testbed this took the authors days; here it is milliseconds.
	ccfg := campaign.DefaultConfig()
	ccfg.FullGridTotal = 12
	db, sum, err := campaign.Run(ccfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model database: %d records\n", db.Len())
	for _, class := range workload.Classes {
		b := sum.Base[class]
		fmt.Printf("  %-4v: performance-optimal %d VMs/server, energy-optimal %d, solo time %v\n",
			class, b.OSP, b.OSE, b.RefTime)
	}

	// 2. Build the allocator over the model.
	alloc, err := core.NewAllocator(core.Config{DB: db})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Describe the cloud state: server 0 already hosts two
	//    I/O-intensive VMs, servers 1-3 are idle.
	servers := []core.ServerState{
		{ID: 0, Alloc: model.Key{NIO: 2}},
		{ID: 1}, {ID: 2}, {ID: 3},
	}

	// 4. A job request: three CPU-intensive VMs (e.g. an MPI solver with
	//    three ranks), each with a 20-minute solo runtime and a
	//    30-minute QoS bound on execution time.
	vms := []core.VMRequest{
		{ID: "solver-0", Class: workload.ClassCPU, NominalTime: 1200, MaxTime: 1800},
		{ID: "solver-1", Class: workload.ClassCPU, NominalTime: 1200, MaxTime: 1800},
		{ID: "solver-2", Class: workload.ClassCPU, NominalTime: 1200, MaxTime: 1800},
	}

	// 5. Ask for the energy-optimal allocation (α = 1), then the
	//    performance-optimal one (α = 0), and compare.
	for _, goal := range []core.Goal{core.GoalEnergy, core.GoalPerformance} {
		out, err := alloc.Allocate(goal, servers, vms)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nα = %g:\n", goal.Alpha)
		for _, pl := range out.Placements {
			names := make([]string, len(pl.VMs))
			for i, vm := range pl.VMs {
				names[i] = vm.ID
			}
			fmt.Printf("  server %d <- %v (allocation becomes %v, est time %v)\n",
				pl.ServerID, names, pl.NewAlloc, pl.EstTime)
		}
		fmt.Printf("  estimated: time %v, marginal energy %v\n", out.EstTime, out.EstEnergy)
	}
}

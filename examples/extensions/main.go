// Extensions example: the paper's two future-work directions, working
// together — heterogeneous server classes with per-class model databases
// (Sect. V, future work ii) wrapped in a thermal-aware placement layer
// (future work i).
//
//	go run ./examples/extensions
package main

import (
	"fmt"
	"log"

	"pacevm/internal/core"
	"pacevm/internal/hetero"
	"pacevm/internal/hw"
	"pacevm/internal/model"
	"pacevm/internal/strategy"
	"pacevm/internal/thermal"
	"pacevm/internal/units"
	"pacevm/internal/vmm"
	"pacevm/internal/workload"
)

func main() {
	// Benchmark two hardware classes: the paper's X3220 testbed and a
	// dual-socket box. Each gets its own campaign and model database.
	smallCfg := vmm.DefaultConfig()
	smallClass, err := hetero.BuildClass("x3220", smallCfg)
	if err != nil {
		log.Fatal(err)
	}
	bigCfg := vmm.DefaultConfig()
	bigCfg.Spec = hw.DualX5470()
	bigClass, err := hetero.BuildClass("2x-x5470", bigCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("class %-9s: OS(cpu)=%d, full-load %.0fW\n",
		smallClass.Name, smallClass.DB.Aux().OS(workload.ClassCPU), float64(smallCfg.Spec.MaxPower()))
	fmt.Printf("class %-9s: OS(cpu)=%d, full-load %.0fW\n",
		bigClass.Name, bigClass.DB.Aux().OS(workload.ClassCPU), float64(bigCfg.Spec.MaxPower()))

	// A four-server machine room: servers 0-2 are small, server 3 is the
	// big box.
	fleet, err := hetero.NewFleet([]hetero.Class{smallClass, bigClass}, []int{0, 0, 0, 1})
	if err != nil {
		log.Fatal(err)
	}
	het, err := hetero.NewAllocator(fleet, core.GoalBalanced)
	if err != nil {
		log.Fatal(err)
	}

	// Thermal layer: server 2 sits in a hot spot (poor airflow), so its
	// self-heating coefficient is three times its peers'.
	room, err := thermal.Uniform(4, 18, 21.5, 0.004, 0.0008)
	if err != nil {
		log.Fatal(err)
	}
	room.Recirculation[2][2] = 0.012
	therm := &thermal.Strategy{
		Base:  het,
		Model: room,
		DB:    smallClass.DB, // thermal pricing uses the common class DB
	}
	fmt.Printf("\nplacement strategy: %s (redline %v)\n\n", therm.Name(), room.Redline)

	// Place a stream of jobs and watch where they land.
	servers := []strategy.Server{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}}
	allocs := make([]model.Key, 4)
	ref := smallClass.DB.Aux().RefTime[workload.ClassCPU]
	for job := 0; job < 5; job++ {
		vms := make([]core.VMRequest, 2)
		for i := range vms {
			vms[i] = core.VMRequest{
				ID:          fmt.Sprintf("j%d-%d", job, i),
				Class:       workload.Classes[job%3],
				NominalTime: ref,
				MaxTime:     ref * units.Seconds(2.5),
			}
		}
		assign, ok := therm.Place(servers, vms)
		if !ok {
			fmt.Printf("job %d: queued (no thermally safe placement)\n", job)
			continue
		}
		for i, a := range assign {
			allocs[a] = allocs[a].Add(model.KeyFor(vms[i].Class, 1))
			servers[a].Alloc = allocs[a]
		}
		fmt.Printf("job %d (%v): servers %v\n", job, vms[0].Class, assign)
	}

	// Report the predicted thermal state.
	powers := make([]units.Watts, 4)
	for i, a := range allocs {
		p, err := thermal.PowerOf(smallClass.DB, a, 125)
		if err != nil {
			log.Fatal(err)
		}
		powers[i] = p
	}
	inlets, err := room.Inlets(powers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for i := range inlets {
		hot := ""
		if i == 2 {
			hot = "  <- hot spot"
		}
		fmt.Printf("server %d: alloc %v, %v, inlet %v%s\n", i, allocs[i], powers[i], inlets[i], hot)
	}
}

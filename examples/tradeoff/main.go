// Tradeoff example: sweep the optimization goal α from 0 (pure
// performance) to 1 (pure energy) and watch the allocator trade
// execution time against energy — the knob of Sect. III.D. The paper
// evaluates α ∈ {0, 0.5, 1} and notes intermediate values (e.g. 0.75)
// change little; the sweep shows why.
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"os"

	"pacevm/internal/campaign"
	"pacevm/internal/cloudsim"
	"pacevm/internal/core"
	"pacevm/internal/report"
	"pacevm/internal/strategy"
	"pacevm/internal/trace"
)

func main() {
	ccfg := campaign.DefaultConfig()
	ccfg.FullGridTotal = 16
	db, _, err := campaign.Run(ccfg)
	if err != nil {
		log.Fatal(err)
	}

	gcfg := trace.DefaultGenConfig(3)
	gcfg.Jobs = 900
	tr, err := trace.Generate(gcfg)
	if err != nil {
		log.Fatal(err)
	}
	pcfg := trace.DefaultPrepConfig(3)
	pcfg.TargetVMs = 1500
	reqs, _, err := trace.Prepare(tr, pcfg)
	if err != nil {
		log.Fatal(err)
	}

	s := report.NewSeries("PA-α sweep on 11 servers (1,500 VMs)",
		"alpha", "makespan(s)", "energy(MJ)", "sla(%)")
	for _, alpha := range []float64{0, 0.25, 0.5, 0.75, 1} {
		pa, err := strategy.NewProactive(db, core.Goal{Alpha: alpha}, 0)
		if err != nil {
			log.Fatal(err)
		}
		res, err := cloudsim.Run(cloudsim.Config{
			DB: db, Servers: 11, Strategy: pa, IdleServerPower: -1,
		}, reqs)
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		if err := s.Add(alpha, float64(m.Makespan), float64(m.Energy)/1e6, m.SLAViolationPct()); err != nil {
			log.Fatal(err)
		}
	}
	if err := s.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nα weights energy, 1-α weights execution time. The ends of the")
	fmt.Println("sweep pull in opposite directions; the middle barely moves —")
	fmt.Println("matching the paper's observation that the goal's impact is moderate.")
}

// Profiling example: run the paper's application-profiling methodology
// (Sect. III.A) over the whole benchmark catalog — execute each workload
// solo on the simulated testbed, sample its subsystem usage, and derive
// the intensity labels and the model class the allocator consumes.
//
//	go run ./examples/profiling
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"pacevm/internal/profiler"
	"pacevm/internal/report"
	"pacevm/internal/subsys"
	"pacevm/internal/vmm"
	"pacevm/internal/workload"
)

func main() {
	pcfg := profiler.DefaultConfig()
	vcfg := vmm.DefaultConfig()

	t := report.NewTable("application profiles (thresholds: cpu 0.35, mem 0.50, disk 0.30, net 0.30)",
		"benchmark", "avg cpu", "avg mem", "avg disk", "avg net", "labels", "class")
	for _, b := range workload.All() {
		prof, err := profiler.Run(pcfg, vcfg, b)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRowf("%s\t%.2f\t%.2f\t%.2f\t%.2f\t%s\t%v",
			b.Name,
			prof.Avg[subsys.CPU], prof.Avg[subsys.MEM],
			prof.Avg[subsys.DISK], prof.Avg[subsys.NET],
			strings.Join(prof.Labels(), "+"), prof.Class)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Show the discrete demand windows of the paper's Fig. 1 for the
	// CPU- cum network-intensive workload.
	prof, err := profiler.Run(pcfg, vcfg, workload.MPINet())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmpinet intensity over its first 120 s (5 s windows):")
	for _, pt := range prof.Series {
		if pt.At > 120 {
			break
		}
		bars := func(x float64) string {
			n := int(x * 20)
			if n > 30 {
				n = 30
			}
			return strings.Repeat("#", n)
		}
		fmt.Printf("  t=%4.0fs cpu %-14s net %s\n",
			float64(pt.At), bars(pt.Intensity[subsys.CPU]), bars(pt.Intensity[subsys.NET]))
	}
}

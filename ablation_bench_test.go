package pacevm

// Ablation benchmarks for the modelling and search choices DESIGN.md §4
// calls out. Each reports the quality metric the choice protects via
// b.ReportMetric, so `go test -bench Ablation` shows what breaks when a
// mechanism is removed, alongside its cost.

import (
	"testing"

	"pacevm/internal/campaign"
	"pacevm/internal/cloudsim"
	"pacevm/internal/core"
	"pacevm/internal/model"
	"pacevm/internal/strategy"
	"pacevm/internal/trace"
	"pacevm/internal/units"
	"pacevm/internal/vmm"
	"pacevm/internal/workload"
)

// BenchmarkAblationSatPenalty contrasts the Fig.-2 base-test optimum with
// and without the oversubscription-inefficiency term: without it, fair
// sharing makes consolidation look free and the optimum drifts past the
// paper's 9 VMs toward the RAM wall.
func BenchmarkAblationSatPenalty(b *testing.B) {
	run := func(b *testing.B, sat float64) {
		cfg := campaign.DefaultConfig()
		cfg.VMM.SatPenalty = sat
		var osp int
		for i := 0; i < b.N; i++ {
			res, err := campaign.RunBaseBenchmark(cfg, workload.FFTW())
			if err != nil {
				b.Fatal(err)
			}
			osp = res.OSP
		}
		b.ReportMetric(float64(osp), "optimumVMs")
	}
	b.Run("with", func(b *testing.B) { run(b, vmm.DefaultConfig().SatPenalty) })
	b.Run("without", func(b *testing.B) { run(b, 0) })
}

// BenchmarkAblationGridBound contrasts PA-1's makespan with and without
// the per-class grid bound on a loaded cloud: unbounded, the energy goal
// packs servers past the measured optima and throughput collapses.
func BenchmarkAblationGridBound(b *testing.B) {
	ctx := sharedCtx(b)
	gcfg := trace.DefaultGenConfig(21)
	gcfg.Jobs = 700
	tr, err := trace.Generate(gcfg)
	if err != nil {
		b.Fatal(err)
	}
	pcfg := trace.DefaultPrepConfig(21)
	pcfg.TargetVMs = 1000
	reqs, _, err := trace.Prepare(tr, pcfg)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, bound [workload.NumClasses]int) {
		pa, err := strategy.NewProactiveConfig(core.Config{DB: ctx.DB, PerClassBound: bound}, core.GoalEnergy)
		if err != nil {
			b.Fatal(err)
		}
		var makespan units.Seconds
		for i := 0; i < b.N; i++ {
			res, err := cloudsim.Run(cloudsim.Config{
				DB: ctx.DB, Servers: 7, Strategy: pa, IdleServerPower: -1,
			}, reqs)
			if err != nil {
				b.Fatal(err)
			}
			makespan = res.Makespan
		}
		b.ReportMetric(float64(makespan), "makespan_s")
	}
	b.Run("bounded", func(b *testing.B) { run(b, [workload.NumClasses]int{}) })
	b.Run("unbounded", func(b *testing.B) { run(b, [workload.NumClasses]int{-1, -1, -1}) })
}

// BenchmarkAblationPartitionDedup contrasts allocation cost for a 4-VM
// job of interchangeable VMs (signature dedup collapses the 15 set
// partitions to 5 integer partitions) against four distinguishable VMs
// (no collapse possible) — the exact reduction the paper's efficient
// set-partition generation citation is about.
func BenchmarkAblationPartitionDedup(b *testing.B) {
	ctx := sharedCtx(b)
	alloc, err := core.NewAllocator(core.Config{DB: ctx.DB})
	if err != nil {
		b.Fatal(err)
	}
	servers := make([]core.ServerState, 20)
	for i := range servers {
		servers[i] = core.ServerState{ID: i, Alloc: model.Key{NCPU: i % 2}}
	}
	ref := ctx.DB.Aux().RefTime[workload.ClassCPU]
	run := func(b *testing.B, distinct bool) {
		vms := make([]core.VMRequest, 4)
		for i := range vms {
			nom := ref
			if distinct {
				nom += units.Seconds(i) // distinct nominal times defeat dedup
			}
			vms[i] = core.VMRequest{ID: string(rune('a' + i)), Class: workload.ClassCPU, NominalTime: nom}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := alloc.Allocate(core.GoalBalanced, servers, vms); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("interchangeable", func(b *testing.B) { run(b, false) })
	b.Run("distinguishable", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationThrash contrasts the 12-VM FFTW co-location with and
// without the memory-overcommit penalty: without it, the paper's ">11
// degrades significantly" knee disappears.
func BenchmarkAblationThrash(b *testing.B) {
	run := func(b *testing.B, lin, quad float64) {
		cfg := vmm.DefaultConfig()
		cfg.ThrashLin, cfg.ThrashQuad = lin, quad
		mix := vmm.Replicate(workload.FFTW(), 12)
		var avg units.Seconds
		for i := 0; i < b.N; i++ {
			res, err := vmm.Run(cfg, mix)
			if err != nil {
				b.Fatal(err)
			}
			avg = res.AvgTimePerVM()
		}
		b.ReportMetric(float64(avg), "avgTimeVM_s")
	}
	def := vmm.DefaultConfig()
	b.Run("with", func(b *testing.B) { run(b, def.ThrashLin, def.ThrashQuad) })
	b.Run("without", func(b *testing.B) { run(b, 0, 0) })
}

// BenchmarkAblationProactiveVsFirstFitDecision compares the per-decision
// cost of the paper's brute-force allocation against first-fit — the
// price of application awareness.
func BenchmarkAblationProactiveVsFirstFitDecision(b *testing.B) {
	ctx := sharedCtx(b)
	servers := make([]strategy.Server, 66)
	for i := range servers {
		servers[i] = strategy.Server{ID: i, Alloc: model.Key{NCPU: i % 3, NIO: i % 2}}
	}
	ref := ctx.DB.Aux().RefTime[workload.ClassMEM]
	vms := make([]core.VMRequest, 4)
	for i := range vms {
		vms[i] = core.VMRequest{ID: string(rune('a' + i)), Class: workload.ClassMEM, NominalTime: ref, MaxTime: 3 * ref}
	}
	b.Run("first-fit", func(b *testing.B) {
		ff, err := strategy.NewFirstFit(2)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, ok := ff.Place(servers, vms); !ok {
				b.Fatal("placement failed")
			}
		}
	})
	b.Run("proactive", func(b *testing.B) {
		pa, err := strategy.NewProactive(ctx.DB, core.GoalBalanced, 0)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, ok := pa.Place(servers, vms); !ok {
				b.Fatal("placement failed")
			}
		}
	})
}

GO ?= go

.PHONY: all build verify test race race-sim race-faults race-shards race-serve audit-smoke scale-smoke explain-smoke serve-soak metrics-smoke fuzz-smoke vet bench bench-alloc bench-json bench-diff profile-huge cover trace clean

all: verify

build:
	$(GO) build ./...

# verify is the tier-1 gate: compile, static checks, full test suite,
# the race detector over the simulator hot-path packages, and the
# observability smoke.
verify: build vet test race-sim race-faults race-shards race-serve audit-smoke scale-smoke explain-smoke serve-soak metrics-smoke bench-diff

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-sim races the event-loop packages plus everything the telemetry
# layer touches concurrently (search worker pool, estimate cache,
# registry); fast enough to gate every verify.
race-sim:
	$(GO) test -race ./internal/cloudsim ./internal/eventq ./internal/core ./internal/model ./internal/obs

# race-faults races the fault-injection layer: the schedule generator
# plus the fault-mode simulator and placement-index paths (crash/recover
# events, re-queue, budgeted-search degradation).
race-faults:
	$(GO) test -race -run 'Fault|Crash|Checkpoint|DownUp|Degrade|Budget' \
		./internal/faults ./internal/cloudsim ./internal/strategy ./internal/core

# race-serve races the always-on placement service's unit suite (the
# admission pipeline, degradation ladder, limiter, journal and
# snapshot/restore paths); -short skips the chaos soak, which gets its
# own non-race target below.
race-serve:
	$(GO) test -race -short -count=1 ./internal/serve ./cmd/pacevm-serve

# race-shards races the sharded parallel engine under faults: the
# determinism stress (shards 2/4/8 with crashes, backfill and
# consolidation), the merge reconciliation and the S=1 identity suite,
# plus the CLI wiring smoke.
race-shards:
	$(GO) test -race -run 'TestSharded|TestRunSharded' ./internal/cloudsim ./cmd/pacevm-sim ./internal/experiments

# audit-smoke runs a tiny faulted simulation with the VM audit, fleet
# series and trace enabled and asserts every exported CSV parses and is
# non-empty (the cmd-level acceptance path for -vm-audit/-series).
audit-smoke:
	$(GO) test -count=1 -run 'TestRunAuditSeries' ./cmd/pacevm-sim

# scale-smoke is the short-mode scaling gate: the fleet-scan counter
# pins placement work to O(requests) regardless of fleet size, and the
# wall-clock ratio test asserts per-request cost stays flat from a
# 64-server to a 4096-server fleet — the cheap guard against an
# O(servers)-per-event path creeping back in.
scale-smoke:
	$(GO) test -short -count=1 -run 'TestFleetScanScaling|TestPerRequestScalingSmoke' ./internal/cloudsim

# explain-smoke is the flight-recorder acceptance path: a faulted,
# sharded, steal-enabled run records its decision log and watchdog
# sweeps, then pacevm-explain reconstructs VM 1's placement chain from
# the log — asserting a place decision exists end-to-end through the
# cross-shard merge. The run itself exits non-zero on any invariant
# violation, so this doubles as the online-watchdog gate.
explain-smoke:
	$(GO) run ./cmd/pacevm-sim -strategy FF-3 -servers 64 -vms 2000 -shards 4 -steal \
		-mtbf 20000 -mttr 600 -watchdog 1024 -decision-log explain-smoke.jsonl
	$(GO) run ./cmd/pacevm-explain -log explain-smoke.jsonl -vm 1 | tee explain-smoke.txt
	grep -q 'place' explain-smoke.txt
	$(GO) run ./cmd/pacevm-explain -log explain-smoke.jsonl -windows

# serve-soak is the chaos soak for the always-on placement service: 30
# wall seconds of concurrent load against the real pacevm-serve binary
# with injected server faults, overload bursts past the queue bound, a
# mid-run kill -9 followed by a -restore restart, and a SIGTERM drain.
# It fails on any lost or duplicated placement, any watchdog invariant
# violation (including post-restore), or a decision log that never shows
# the degradation ladder stepping down and recovering. Artifacts
# (snapshot, journal, decision log) land in serve-soak-artifacts/ so CI
# can upload them on failure.
serve-soak:
	PACEVM_SOAK_SECONDS=30 PACEVM_SOAK_DIR=serve-soak-artifacts \
		$(GO) test -count=1 -run TestServeChaosSoak -v ./internal/serve

# metrics-smoke is the observability acceptance path: the real
# pacevm-serve binary runs with span tracing, the SLO tracker, the
# access log and chaos faults all on, and the test machine-validates
# the live /metrics Prometheus exposition (main mux and the dedicated
# -metrics listener), the /debug/slow stage breakdowns, and the access
# log's JSONL lines against a pinned X-Request-Id. Scrapes land in
# serve-soak-artifacts/ so CI can upload them on failure.
metrics-smoke:
	PACEVM_SOAK_DIR=serve-soak-artifacts \
		$(GO) test -count=1 -run TestMetricsSmoke -v ./internal/serve

# fuzz-smoke gives each text-input parser a short adversarial burst
# (one package per invocation, as go test -fuzz requires).
fuzz-smoke:
	$(GO) test -fuzz FuzzParse -fuzztime 5s ./internal/swf
	$(GO) test -fuzz FuzzReadSchedule -fuzztime 5s ./internal/faults
	$(GO) test -fuzz FuzzReadCSV -fuzztime 5s ./internal/model
	$(GO) test -fuzz FuzzReadDecisionLog -fuzztime 5s ./internal/cloudsim
	$(GO) test -fuzz FuzzPromEscape -fuzztime 5s ./internal/obs

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run NONE -bench . -benchmem ./...

# bench-alloc compares the optimized allocation search against the
# retained pre-optimization reference on the same workloads.
bench-alloc:
	$(GO) test -run NONE -bench 'BenchmarkAllocate' -benchmem .

# bench-json records the large-simulation benchmarks (optimized event
# loop vs the retained reference, the telemetry-on and sampler-on
# overhead pairs, and the sharded-engine family) as BENCH_sim.json. The
# 100k-server/10M-request SimHuge pair gets its own invocation at
# -benchtime 1x -count 2 — two single-iteration samples pacevm-benchjson
# folds into one entry (at -benchtime 2x inside the main sweep it would
# dominate the suite) — and the -require floor fails the recording if a
# huge entry ever lands on a single noisy sample again.
bench-json:
	{ $(GO) test -run NONE -bench 'BenchmarkSim(Large|Trace)' -benchtime 2x -benchmem ./internal/cloudsim \
		&& $(GO) test -run NONE -bench 'BenchmarkSimHuge' -benchtime 1x -count 2 -benchmem ./internal/cloudsim \
		&& $(GO) test -run NONE -bench 'BenchmarkServe(Obs)?$$' -count 2 -benchmem ./internal/serve; } \
		| $(GO) run ./cmd/pacevm-benchjson -require 'SimHuge=2' -require 'Serve=2' -require 'ServeObs=2' -o BENCH_sim.json

# bench-diff compares a freshly recorded (or provided) benchmark
# document against the committed BENCH_sim.json baseline and reports
# ns/op regressions beyond the bound. Advisory inside verify — the
# committed baseline may come from different hardware, so it warns, it
# does not gate; run `make bench-json && make bench-diff ADVISORY=` on
# pinned hardware for a hard check. Skips quietly when NEW is absent.
OLD ?= BENCH_sim.json
NEW ?= BENCH_new.json
MAX_REGRESS ?= 10
ADVISORY ?= -advisory
bench-diff:
	@if [ -f "$(NEW)" ]; then \
		$(GO) run ./cmd/pacevm-benchdiff $(ADVISORY) -max-regress $(MAX_REGRESS) "$(OLD)" "$(NEW)"; \
	else \
		echo "bench-diff: $(NEW) not found, skipping (record one with: make bench-json, then mv BENCH_sim.json $(NEW))"; \
	fi

# profile-huge records a CPU profile of the 100k-server/10M-request
# BenchmarkSimHuge and prints the top consumers — the reproducible
# evidence behind the hot-path work (DESIGN.md, "Flat per-request cost
# at fleet scale"). Artifacts: huge.cpu.out + huge.test.bin, inspect
# interactively with `go tool pprof huge.test.bin huge.cpu.out`.
profile-huge:
	$(GO) test -run NONE -bench 'BenchmarkSimHuge$$' -benchtime 1x -cpu 1 -benchmem \
		-cpuprofile huge.cpu.out -o huge.test.bin ./internal/cloudsim
	$(GO) tool pprof -top -nodecount 25 huge.test.bin huge.cpu.out

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# trace records the Fig. 5 SMALLER/FF-3 scenario as a Perfetto-loadable
# Chrome trace (trace.json + trace.json.manifest.json).
trace:
	$(GO) run ./cmd/pacevm-sim -strategy FF-3 -servers 66 -vms 10000 -trace trace.json

clean:
	$(GO) clean ./...
	rm -f cover.out huge.cpu.out huge.test.bin explain-smoke.jsonl explain-smoke.txt
	rm -rf serve-soak-artifacts

GO ?= go

.PHONY: all build verify test race vet bench bench-alloc cover clean

all: verify

build:
	$(GO) build ./...

# verify is the tier-1 gate: compile, static checks, full test suite.
verify: build vet test

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run NONE -bench . -benchmem ./...

# bench-alloc compares the optimized allocation search against the
# retained pre-optimization reference on the same workloads.
bench-alloc:
	$(GO) test -run NONE -bench 'BenchmarkAllocate' -benchmem .

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...

GO ?= go

.PHONY: all build verify test race race-sim vet bench bench-alloc bench-json cover clean

all: verify

build:
	$(GO) build ./...

# verify is the tier-1 gate: compile, static checks, full test suite,
# and the race detector over the simulator hot-path packages.
verify: build vet test race-sim

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-sim races just the event-loop packages the perf rewrite touches;
# fast enough to gate every verify.
race-sim:
	$(GO) test -race ./internal/cloudsim ./internal/eventq

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run NONE -bench . -benchmem ./...

# bench-alloc compares the optimized allocation search against the
# retained pre-optimization reference on the same workloads.
bench-alloc:
	$(GO) test -run NONE -bench 'BenchmarkAllocate' -benchmem .

# bench-json records the large-simulation benchmarks (optimized event
# loop vs the retained reference) as BENCH_sim.json.
bench-json:
	$(GO) test -run NONE -bench 'BenchmarkSim' -benchtime 2x -benchmem ./internal/cloudsim \
		| $(GO) run ./cmd/pacevm-benchjson -o BENCH_sim.json

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...

package main

import (
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pacevm/internal/campaign"
	"pacevm/internal/model"
)

var (
	dbOnce sync.Once
	testDB *model.DB
	dbErr  error
)

func sharedDB(t *testing.T) *model.DB {
	t.Helper()
	dbOnce.Do(func() {
		cfg := campaign.DefaultConfig()
		cfg.FullGridTotal = 8
		testDB, _, dbErr = campaign.Run(cfg)
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return testDB
}

// modelDir writes the shared test model as CSV into a temp dir so run()
// can load it without an in-process campaign per case.
func modelDir(t *testing.T) string {
	t.Helper()
	db := sharedDB(t)
	dir := t.TempDir()
	mf, err := os.Create(filepath.Join(dir, "model.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WriteCSV(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()
	af, err := os.Create(filepath.Join(dir, "aux.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WriteAuxCSV(af); err != nil {
		t.Fatal(err)
	}
	af.Close()
	return dir
}

func TestParseWatermarks(t *testing.T) {
	marks, err := parseWatermarks("1ms, 20ms,300ms")
	if err != nil {
		t.Fatal(err)
	}
	want := [3]time.Duration{time.Millisecond, 20 * time.Millisecond, 300 * time.Millisecond}
	if marks != want {
		t.Fatalf("got %v, want %v", marks, want)
	}
	for _, bad := range []string{"", "1ms", "1ms,2ms", "1ms,2ms,3ms,4ms", "x,2ms,3ms", "1ms,2,3ms"} {
		if _, err := parseWatermarks(bad); err == nil {
			t.Errorf("parseWatermarks(%q) accepted bad input", bad)
		}
	}
}

// baseOptions mirrors main()'s flag defaults, pointed at a CSV model
// dir so run() never launches an in-process campaign per case.
func baseOptions(t *testing.T) options {
	return options{
		addr: "127.0.0.1:0", servers: 8, shards: 2, modelDir: modelDir(t),
		alpha: 0.5, maxVMs: 4, budget: 64, queueCap: 16,
		timeout: time.Second, watermarks: "50ms,200ms,800ms",
		hysteresis: 0.5, dwell: 100 * time.Millisecond, burst: 8,
		snapshotEvery: time.Second, watchdogEvery: -1,
		drainTimeout: 5 * time.Second, chaosMTTR: 5, chaosHorizon: time.Hour,
	}
}

// TestRunErrorPaths drives run() through each failure mode a user can
// hit from the command line; every one must surface as an error rather
// than a panic or a silently-started daemon.
func TestRunErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*options)
		want string
	}{
		{"watermark count", func(o *options) { o.watermarks = "1ms,2ms" }, "exactly 3"},
		{"watermark junk", func(o *options) { o.watermarks = "1ms,zzz,3ms" }, "watermarks"},
		{"watermark order", func(o *options) { o.watermarks = "3ms,2ms,1ms" }, "strictly increase"},
		{"alpha low", func(o *options) { o.alpha = -0.1 }, "alpha"},
		{"alpha high", func(o *options) { o.alpha = 1.1 }, "alpha"},
		{"missing model", func(o *options) { o.modelDir = filepath.Join(t.TempDir(), "nope") }, "no such file"},
		{"bad max-vms", func(o *options) { o.maxVMs = 3 }, "multiple"},
		{"bad shards", func(o *options) { o.shards = 99 }, "shards"},
		{"restore without snapshot", func(o *options) { o.restore = true }, "restore"},
		{"bad chaos mttr", func(o *options) { o.chaosMTBF = 1; o.chaosMTTR = -1 }, "MTTR"},
		{"bad listen addr", func(o *options) { o.addr = "127.0.0.1:notaport" }, "listen"},
		{"bad metrics addr", func(o *options) { o.metricsAddr = "127.0.0.1:notaport" }, "metrics listener"},
		{"bad access log", func(o *options) {
			o.accessLog = filepath.Join(t.TempDir(), "missing-dir", "access.jsonl")
		}, "access log"},
		{"negative slo target", func(o *options) { o.sloTarget = -time.Second }, "SLO target"},
		{"bad slo objective", func(o *options) { o.sloTarget = time.Second; o.sloObjective = 2 }, "objective"},
		{"negative slo window", func(o *options) { o.sloTarget = time.Second; o.sloWindow = -time.Minute }, "window"},
		{"negative slow ring", func(o *options) { o.slowRing = -1 }, "slow ring"},
		{"negative header timeout", func(o *options) { o.readHeaderTimeout = -time.Second }, "must not be negative"},
		{"negative read timeout", func(o *options) { o.readTimeout = -time.Second }, "must not be negative"},
		{"negative idle timeout", func(o *options) { o.idleTimeout = -time.Second }, "must not be negative"},
	}
	for _, tc := range cases {
		opt := baseOptions(t)
		tc.mut(&opt)
		err := run(opt)
		if err == nil {
			t.Errorf("%s: run() accepted bad options", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestNewHTTPServerTimeouts pins the slow-client deadlines onto the
// constructed server, flag-overridable.
func TestNewHTTPServerTimeouts(t *testing.T) {
	opt := options{
		readHeaderTimeout: 7 * time.Second,
		readTimeout:       11 * time.Second,
		idleTimeout:       13 * time.Second,
	}
	srv := newHTTPServer(opt, http.NotFoundHandler())
	if srv.ReadHeaderTimeout != 7*time.Second ||
		srv.ReadTimeout != 11*time.Second ||
		srv.IdleTimeout != 13*time.Second {
		t.Fatalf("server timeouts: header %v read %v idle %v", srv.ReadHeaderTimeout, srv.ReadTimeout, srv.IdleTimeout)
	}
	if srv.Handler == nil {
		t.Fatal("handler not set")
	}
}

// TestSlowLorisCut proves the ReadHeaderTimeout actually severs a
// client that trickles its headers: the connection must be closed by
// the server well before a patient attacker would finish.
func TestSlowLorisCut(t *testing.T) {
	opt := baseOptions(t)
	opt.readHeaderTimeout = 150 * time.Millisecond
	srv := newHTTPServer(opt, http.NotFoundHandler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go srv.Serve(ln) //nolint:errcheck // closed at test end
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send a partial request line and then stall; the server must hang
	// up once the header deadline passes instead of waiting forever.
	if _, err := conn.Write([]byte("POST /v1/place HTTP/1.1\r\nHost: x\r\nX-Dribble: ")); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	start := time.Now()
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server answered a half-sent request")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server did not cut the slow-loris connection within 5s")
	}
	if waited := time.Since(start); waited > 4*time.Second {
		t.Fatalf("connection cut only after %v", waited)
	}
}

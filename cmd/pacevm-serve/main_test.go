package main

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pacevm/internal/campaign"
	"pacevm/internal/model"
)

var (
	dbOnce sync.Once
	testDB *model.DB
	dbErr  error
)

func sharedDB(t *testing.T) *model.DB {
	t.Helper()
	dbOnce.Do(func() {
		cfg := campaign.DefaultConfig()
		cfg.FullGridTotal = 8
		testDB, _, dbErr = campaign.Run(cfg)
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return testDB
}

// modelDir writes the shared test model as CSV into a temp dir so run()
// can load it without an in-process campaign per case.
func modelDir(t *testing.T) string {
	t.Helper()
	db := sharedDB(t)
	dir := t.TempDir()
	mf, err := os.Create(filepath.Join(dir, "model.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WriteCSV(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()
	af, err := os.Create(filepath.Join(dir, "aux.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WriteAuxCSV(af); err != nil {
		t.Fatal(err)
	}
	af.Close()
	return dir
}

func TestParseWatermarks(t *testing.T) {
	marks, err := parseWatermarks("1ms, 20ms,300ms")
	if err != nil {
		t.Fatal(err)
	}
	want := [3]time.Duration{time.Millisecond, 20 * time.Millisecond, 300 * time.Millisecond}
	if marks != want {
		t.Fatalf("got %v, want %v", marks, want)
	}
	for _, bad := range []string{"", "1ms", "1ms,2ms", "1ms,2ms,3ms,4ms", "x,2ms,3ms", "1ms,2,3ms"} {
		if _, err := parseWatermarks(bad); err == nil {
			t.Errorf("parseWatermarks(%q) accepted bad input", bad)
		}
	}
}

// baseOptions mirrors main()'s flag defaults, pointed at a CSV model
// dir so run() never launches an in-process campaign per case.
func baseOptions(t *testing.T) options {
	return options{
		addr: "127.0.0.1:0", servers: 8, shards: 2, modelDir: modelDir(t),
		alpha: 0.5, maxVMs: 4, budget: 64, queueCap: 16,
		timeout: time.Second, watermarks: "50ms,200ms,800ms",
		hysteresis: 0.5, dwell: 100 * time.Millisecond, burst: 8,
		snapshotEvery: time.Second, watchdogEvery: -1,
		drainTimeout: 5 * time.Second, chaosMTTR: 5, chaosHorizon: time.Hour,
	}
}

// TestRunErrorPaths drives run() through each failure mode a user can
// hit from the command line; every one must surface as an error rather
// than a panic or a silently-started daemon.
func TestRunErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*options)
		want string
	}{
		{"watermark count", func(o *options) { o.watermarks = "1ms,2ms" }, "exactly 3"},
		{"watermark junk", func(o *options) { o.watermarks = "1ms,zzz,3ms" }, "watermarks"},
		{"watermark order", func(o *options) { o.watermarks = "3ms,2ms,1ms" }, "strictly increase"},
		{"alpha low", func(o *options) { o.alpha = -0.1 }, "alpha"},
		{"alpha high", func(o *options) { o.alpha = 1.1 }, "alpha"},
		{"missing model", func(o *options) { o.modelDir = filepath.Join(t.TempDir(), "nope") }, "no such file"},
		{"bad max-vms", func(o *options) { o.maxVMs = 3 }, "multiple"},
		{"bad shards", func(o *options) { o.shards = 99 }, "shards"},
		{"restore without snapshot", func(o *options) { o.restore = true }, "restore"},
		{"bad chaos mttr", func(o *options) { o.chaosMTBF = 1; o.chaosMTTR = -1 }, "MTTR"},
		{"bad listen addr", func(o *options) { o.addr = "127.0.0.1:notaport" }, "listen"},
	}
	for _, tc := range cases {
		opt := baseOptions(t)
		tc.mut(&opt)
		err := run(opt)
		if err == nil {
			t.Errorf("%s: run() accepted bad options", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

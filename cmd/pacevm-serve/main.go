// Command pacevm-serve runs the always-on placement service: the
// paper's energy-aware allocator behind an HTTP/JSON admission pipeline
// with per-client rate limiting, bounded queues, an overload
// degradation ladder, crash-safe snapshot/restore, and optional chaos
// fault injection (see internal/serve).
//
// Quickstart:
//
//	pacevm-serve -addr :8080 -servers 66 -snapshot /var/tmp/pacevm.snap
//	curl -s -XPOST localhost:8080/v1/place \
//	    -d '{"key":"job-1","class":"cpu","vms":2}'
//
// SIGTERM/SIGINT drains: admission closes, queues empty, a final
// snapshot is written and the invariant watchdog sweeps once more; the
// process exits non-zero if any invariant was ever violated.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"pacevm/internal/campaign"
	"pacevm/internal/cloudsim"
	"pacevm/internal/core"
	"pacevm/internal/faults"
	"pacevm/internal/model"
	"pacevm/internal/obs"
	"pacevm/internal/serve"
	"pacevm/internal/units"
)

type options struct {
	addr          string
	servers       int
	shards        int
	modelDir      string
	alpha         float64
	maxVMs        int
	budget        int
	queueCap      int
	timeout       time.Duration
	watermarks    string
	hysteresis    float64
	dwell         time.Duration
	rate          float64
	burst         int
	snapshot      string
	journal       string
	snapshotEvery time.Duration
	fsync         bool
	restore       bool
	decisionLog   string
	watchdogEvery time.Duration
	debugAddr     string
	drainTimeout  time.Duration
	chaos         bool
	chaosMTBF     float64
	chaosMTTR     float64
	chaosSeed     uint64
	chaosHorizon  time.Duration

	metricsAddr       string
	accessLog         string
	sloTarget         time.Duration
	sloObjective      float64
	sloWindow         time.Duration
	slowRing          int
	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	idleTimeout       time.Duration
}

func main() {
	var opt options
	flag.StringVar(&opt.addr, "addr", ":8080", "HTTP listen address")
	flag.IntVar(&opt.servers, "servers", 66, "fleet size")
	flag.IntVar(&opt.shards, "shards", 1, "independent placement shards (each with its own worker and queue)")
	flag.StringVar(&opt.modelDir, "model", "", "directory with model.csv/aux.csv (default: run the campaign in-process)")
	flag.Float64Var(&opt.alpha, "alpha", 0.5, "PA optimization goal: 1 = energy, 0 = performance")
	flag.IntVar(&opt.maxVMs, "max-vms", 16, "per-server VM cap (multiple of 4)")
	flag.IntVar(&opt.budget, "budget", 64, "PA search budget at the budgeted-search ladder level")
	flag.IntVar(&opt.queueCap, "queue-cap", 256, "per-shard admission queue bound")
	flag.DurationVar(&opt.timeout, "timeout", 2*time.Second, "per-request deadline")
	flag.StringVar(&opt.watermarks, "watermarks", "50ms,200ms,800ms", "queue-wait EWMA thresholds stepping the degradation ladder down (3 increasing durations)")
	flag.Float64Var(&opt.hysteresis, "hysteresis", 0.5, "step-up threshold as a fraction of the step-down watermark")
	flag.DurationVar(&opt.dwell, "dwell", 200*time.Millisecond, "minimum time between ladder steps")
	flag.Float64Var(&opt.rate, "rate", 0, "per-client admission rate (requests/s; 0 = unlimited)")
	flag.IntVar(&opt.burst, "burst", 8, "per-client token-bucket burst")
	flag.StringVar(&opt.snapshot, "snapshot", "", "snapshot path enabling crash-safe durability (journal at <path>.journal unless -journal)")
	flag.StringVar(&opt.journal, "journal", "", "write-ahead journal path (default <snapshot>.journal)")
	flag.DurationVar(&opt.snapshotEvery, "snapshot-every", 2*time.Second, "snapshot period")
	flag.BoolVar(&opt.fsync, "fsync", false, "fsync every journal record (machine-crash durability, not just kill -9)")
	flag.BoolVar(&opt.restore, "restore", false, "restore from -snapshot (+journal replay) instead of starting fresh")
	flag.StringVar(&opt.decisionLog, "decision-log", "", "write the admission/ladder/placement flight-recorder log as JSONL at drain")
	flag.DurationVar(&opt.watchdogEvery, "watchdog", time.Second, "online invariant sweep period (negative = off)")
	flag.StringVar(&opt.debugAddr, "debug-addr", "", "serve /debug/pprof, /debug/vars and /debug/dash on this address")
	flag.DurationVar(&opt.drainTimeout, "drain-timeout", 10*time.Second, "max wait for queues to empty at shutdown")
	flag.BoolVar(&opt.chaos, "chaos", false, "expose POST /v1/chaos/{crash,recover} fault-injection endpoints")
	flag.Float64Var(&opt.chaosMTBF, "chaos-mtbf", 0, "mean wall seconds between injected server crashes (0 = no injected faults)")
	flag.Float64Var(&opt.chaosMTTR, "chaos-mttr", 5, "mean wall seconds an injected crash lasts")
	flag.Uint64Var(&opt.chaosSeed, "chaos-seed", 42, "seed for the injected fault schedule")
	flag.DurationVar(&opt.chaosHorizon, "chaos-horizon", time.Hour, "span of the injected fault schedule")
	flag.StringVar(&opt.metricsAddr, "metrics", "", "serve /metrics and /debug/slow on a dedicated address too (always mounted on -addr)")
	flag.StringVar(&opt.accessLog, "access-log", "", "append one structured JSON line per request to this file")
	flag.DurationVar(&opt.sloTarget, "slo-target", 0, "per-request latency SLO target enabling rolling attainment/burn-rate tracking (0 = off)")
	flag.Float64Var(&opt.sloObjective, "slo-objective", 0.99, "required good fraction for the SLO (in (0,1))")
	flag.DurationVar(&opt.sloWindow, "slo-window", time.Minute, "sliding SLO measurement window")
	flag.IntVar(&opt.slowRing, "slow-ring", 32, "keep the K slowest requests with stage breakdowns for /debug/slow (0 = off)")
	flag.DurationVar(&opt.readHeaderTimeout, "read-header-timeout", 5*time.Second, "HTTP header read deadline (slow-loris guard)")
	flag.DurationVar(&opt.readTimeout, "read-timeout", 60*time.Second, "HTTP full-request read deadline")
	flag.DurationVar(&opt.idleTimeout, "idle-timeout", 120*time.Second, "HTTP keep-alive idle deadline")
	flag.Parse()
	if err := run(opt); err != nil {
		fmt.Fprintln(os.Stderr, "pacevm-serve:", err)
		os.Exit(1)
	}
}

func run(opt options) error {
	marks, err := parseWatermarks(opt.watermarks)
	if err != nil {
		return err
	}
	if opt.alpha < 0 || opt.alpha > 1 {
		return fmt.Errorf("alpha %v out of [0,1]", opt.alpha)
	}
	if opt.readHeaderTimeout < 0 || opt.readTimeout < 0 || opt.idleTimeout < 0 {
		return fmt.Errorf("HTTP timeouts must not be negative (read-header %v, read %v, idle %v)",
			opt.readHeaderTimeout, opt.readTimeout, opt.idleTimeout)
	}
	db, err := loadModel(opt.modelDir)
	if err != nil {
		return err
	}
	var schedule faults.Schedule
	if opt.chaosMTBF > 0 {
		schedule, err = faults.Generate(faults.GenConfig{
			Seed: opt.chaosSeed, Servers: opt.servers,
			MTBF: units.Seconds(opt.chaosMTBF), MTTR: units.Seconds(opt.chaosMTTR),
			Horizon: units.Seconds(opt.chaosHorizon.Seconds()),
		})
		if err != nil {
			return err
		}
	}

	var accessW *os.File
	if opt.accessLog != "" {
		if accessW, err = os.OpenFile(opt.accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
			return fmt.Errorf("access log: %w", err)
		}
		defer accessW.Close()
	}

	rec := cloudsim.NewDecisionRecorder()
	reg := obs.NewRegistry()
	cfg := serve.Config{
		DB:              db,
		Goal:            core.Goal{Alpha: opt.alpha},
		Servers:         opt.servers,
		Shards:          opt.shards,
		MaxVMsPerServer: opt.maxVMs,
		DegradedBudget:  opt.budget,
		QueueCap:        opt.queueCap,
		RequestTimeout:  opt.timeout,
		Watermarks:      marks,
		Hysteresis:      opt.hysteresis,
		LadderDwell:     opt.dwell,
		RatePerSec:      opt.rate,
		RateBurst:       opt.burst,
		SnapshotPath:    opt.snapshot,
		JournalPath:     opt.journal,
		SnapshotEvery:   opt.snapshotEvery,
		Fsync:           opt.fsync,
		Restore:         opt.restore,
		WatchdogEvery:   opt.watchdogEvery,
		Recorder:        rec,
		Obs:             reg,
		SlowRing:        opt.slowRing,
		SLOTarget:       opt.sloTarget,
		SLOObjective:    opt.sloObjective,
		SLOWindow:       opt.sloWindow,
	}
	if accessW != nil {
		cfg.AccessLog = accessW
	}
	svc, err := serve.NewService(cfg)
	if err != nil {
		return err
	}

	if opt.debugAddr != "" {
		dbg, err := obs.ServeDebug(opt.debugAddr, reg)
		if err != nil {
			return err
		}
		dbg.AddWallTracer(svc.WallTracer())
		dbg.AddSLO(svc.SLO())
		defer dbg.Close()
	}

	if opt.metricsAddr != "" {
		mln, err := net.Listen("tcp", opt.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		msrv := &http.Server{Handler: svc.ObsHandler(), ReadHeaderTimeout: opt.readHeaderTimeout}
		go msrv.Serve(mln) //nolint:errcheck // ErrServerClosed after Close
		defer msrv.Close()
		fmt.Printf("pacevm-serve: metrics on %s\n", mln.Addr())
	}

	stopChaos := make(chan struct{})
	if len(schedule) > 0 {
		go runChaos(svc, schedule, stopChaos)
	}

	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		return err
	}
	srv := newHTTPServer(opt, svc.Handler(opt.chaos))
	httpDone := make(chan error, 1)
	go func() { httpDone <- srv.Serve(ln) }()
	fmt.Printf("pacevm-serve: listening on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		fmt.Printf("pacevm-serve: %v, draining\n", s)
	case err := <-httpDone:
		return fmt.Errorf("http server: %w", err)
	}
	close(stopChaos)
	_ = srv.Close()

	violations := svc.Drain(opt.drainTimeout)
	if opt.decisionLog != "" {
		if err := writeDecisionLog(opt.decisionLog, rec); err != nil {
			return err
		}
		fmt.Printf("pacevm-serve: decision log: %s (%d decisions)\n", opt.decisionLog, rec.Len())
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "pacevm-serve: invariant violation: %s: %s\n", v.Check, v.Detail)
		}
		return fmt.Errorf("%d invariant violation(s)", len(violations))
	}
	fmt.Println("pacevm-serve: drained clean")
	return nil
}

// newHTTPServer builds the client-facing HTTP server with the
// slow-client deadlines: a peer that trickles headers (slow loris),
// stalls mid-body, or parks an idle keep-alive connection gets cut
// instead of pinning a connection forever.
func newHTTPServer(opt options, h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: opt.readHeaderTimeout,
		ReadTimeout:       opt.readTimeout,
		IdleTimeout:       opt.idleTimeout,
	}
}

// runChaos walks a generated fault schedule in wall time, injecting
// crashes and recoveries through the service's fault hooks.
func runChaos(svc *serve.Service, schedule faults.Schedule, stop <-chan struct{}) {
	type step struct {
		at    time.Duration
		srv   int
		crash bool
	}
	steps := make([]step, 0, 2*len(schedule))
	for _, e := range schedule {
		steps = append(steps,
			step{at: time.Duration(float64(e.Down) * float64(time.Second)), srv: e.Server, crash: true},
			step{at: time.Duration(float64(e.Up) * float64(time.Second)), srv: e.Server, crash: false})
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i].at < steps[j].at })
	start := time.Now()
	for _, st := range steps {
		select {
		case <-stop:
			return
		case <-time.After(time.Until(start.Add(st.at))):
		}
		if st.crash {
			_ = svc.CrashServer(st.srv)
		} else {
			_ = svc.RecoverServer(st.srv)
		}
	}
}

func parseWatermarks(s string) ([3]time.Duration, error) {
	var out [3]time.Duration
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return out, fmt.Errorf("watermarks %q: want exactly 3 comma-separated durations", s)
	}
	for i, p := range parts {
		d, err := time.ParseDuration(strings.TrimSpace(p))
		if err != nil {
			return out, fmt.Errorf("watermarks %q: %w", s, err)
		}
		out[i] = d
	}
	return out, nil
}

func loadModel(dir string) (*model.DB, error) {
	if dir == "" {
		cfg := campaign.DefaultConfig()
		cfg.FullGridTotal = 16
		db, _, err := campaign.Run(cfg)
		return db, err
	}
	mf, err := os.Open(filepath.Join(dir, "model.csv"))
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	af, err := os.Open(filepath.Join(dir, "aux.csv"))
	if err != nil {
		return nil, err
	}
	defer af.Close()
	return model.ReadCSV(mf, af)
}

func writeDecisionLog(path string, rec *cloudsim.DecisionRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

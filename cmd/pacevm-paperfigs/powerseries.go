package main

// The -power-series mode: regenerate a Fig.-4-style power-over-time
// figure from a fleet series CSV exported by `pacevm-sim -series`. The
// CSV is the simulator's interval-close sample stream (see
// internal/cloudsim/sampler.go); here it becomes a console time-series
// plot of fleet power, active servers and queue depth, with the
// run-level summary (span, peak draw, integrated energy) beneath.

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"pacevm/internal/report"
)

// powerSeriesThin caps the rendered rows so an un-downsampled CSV stays
// readable on a console.
const powerSeriesThin = 48

// powerSeries reads a pacevm-sim series CSV and renders the figure.
func powerSeries(path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return fmt.Errorf("power series %s: %w", path, err)
	}
	if len(rows) < 2 {
		return fmt.Errorf("power series %s: no data rows", path)
	}
	col := map[string]int{}
	for i, name := range rows[0] {
		col[name] = i
	}
	idx := func(name string) (int, error) {
		i, ok := col[name]
		if !ok {
			return 0, fmt.Errorf("power series %s: missing column %q (want a pacevm-sim -series export)", path, name)
		}
		return i, nil
	}
	var cT, cW, cA, cQ, cE int
	for name, dst := range map[string]*int{
		"t_s": &cT, "fleet_watts": &cW, "active_servers": &cA,
		"queue_depth": &cQ, "cum_energy_j": &cE,
	} {
		if *dst, err = idx(name); err != nil {
			return err
		}
	}

	data := rows[1:]
	s := report.NewSeries("Fig. 4: fleet power over time (from "+path+")",
		"t(s)", "fleetW", "active", "queued")
	stride := (len(data) + powerSeriesThin - 1) / powerSeriesThin
	var peakW, lastT, firstT, lastE float64
	for i, row := range data {
		g := func(c int) (float64, error) {
			v, err := strconv.ParseFloat(row[c], 64)
			if err != nil {
				return 0, fmt.Errorf("power series %s row %d: %w", path, i+2, err)
			}
			return v, nil
		}
		t, err := g(cT)
		if err != nil {
			return err
		}
		watts, err := g(cW)
		if err != nil {
			return err
		}
		active, err := g(cA)
		if err != nil {
			return err
		}
		queued, err := g(cQ)
		if err != nil {
			return err
		}
		if i == 0 {
			firstT = t
		}
		if watts > peakW {
			peakW = watts
		}
		lastT = t
		if lastE, err = g(cE); err != nil {
			return err
		}
		if i%stride != 0 && i != len(data)-1 {
			continue
		}
		if err := s.Add(t, watts, active, queued); err != nil {
			return err
		}
	}
	if err := s.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "%d samples over %.0f s; peak fleet draw %.0f W; busy energy integral %.4g J\n",
		len(data), lastT-firstT, peakW, lastE)
	return nil
}

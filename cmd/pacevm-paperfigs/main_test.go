package main

import (
	"testing"

	"pacevm/internal/experiments"
)

// selNone deselects every artifact, so run() exercises only the shared
// setup path around it.
func selNone(string) bool { return false }

func TestRunRejectsUnwritableCSVDir(t *testing.T) {
	cfg := experiments.Quick()
	if err := run(cfg, selNone, false, "/proc/definitely/not/writable"); err == nil {
		t.Error("unwritable -csv directory should fail")
	}
}

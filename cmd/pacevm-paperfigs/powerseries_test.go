package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pacevm/internal/campaign"
	"pacevm/internal/cloudsim"
	"pacevm/internal/strategy"
	"pacevm/internal/trace"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// sampleSeriesCSV runs a small simulation with the fleet sampler
// attached and exports its series, so the figure consumes exactly what
// `pacevm-sim -series` would write.
func sampleSeriesCSV(t *testing.T) string {
	t.Helper()
	ccfg := campaign.DefaultConfig()
	ccfg.FullGridTotal = 8
	db, _, err := campaign.Run(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := db.Aux().RefTime[workload.ClassCPU]
	reqs := make([]trace.Request, 12)
	for i := range reqs {
		reqs[i] = trace.Request{
			ID: i + 1, Submit: ref / 4 * units.Seconds(i), Class: workload.ClassCPU,
			VMs: 1, NominalTime: ref, MaxResponse: ref * 5,
		}
	}
	st, err := strategy.NewFirstFit(2)
	if err != nil {
		t.Fatal(err)
	}
	fs := cloudsim.NewFleetSampler(0)
	if _, err := cloudsim.Run(cloudsim.Config{
		DB: db, Servers: 4, Strategy: st, Sampler: fs,
	}, reqs); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "series.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestPowerSeriesRenders drives the -power-series mode end to end on a
// real sampler export.
func TestPowerSeriesRenders(t *testing.T) {
	path := sampleSeriesCSV(t)
	var buf bytes.Buffer
	if err := powerSeries(path, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig. 4", "fleetW", "peak fleet draw", "busy energy integral"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
}

// TestPowerSeriesErrors pins the failure modes a user can hit.
func TestPowerSeriesErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name, path, wantErr string
	}{
		{"missing file", filepath.Join(dir, "nope.csv"), "no such file"},
		{"empty file", write("empty.csv", "t_s,fleet_watts\n"), "no data rows"},
		{"wrong header", write("hdr.csv", "a,b\n1,2\n"), "missing column"},
		{"bad number", write("num.csv",
			"t_s,server,server_watts,server_vms,fleet_watts,active_servers,queue_depth,down_servers,running_vms,cum_energy_j\n"+
				"1,0,10,1,oops,1,0,0,1,5\n"), "row 2"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := powerSeries(c.path, &buf)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("powerSeries(%s) = %v, want error containing %q", c.path, err, c.wantErr)
			}
		})
	}
}

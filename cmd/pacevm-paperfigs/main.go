// Command pacevm-paperfigs regenerates every table and figure of the
// paper's evaluation (see DESIGN.md §3 for the experiment index):
//
//	pacevm-paperfigs                  # everything, paper scale
//	pacevm-paperfigs -quick           # reduced scale (~1,000 VMs)
//	pacevm-paperfigs -only fig2,fig5  # a subset
//	pacevm-paperfigs -seed 7          # different random seed
//	pacevm-paperfigs -power-series series.csv  # Fig.-4-style figure from a pacevm-sim -series export
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"path/filepath"

	"pacevm/internal/experiments"
	"pacevm/internal/report"
)

func main() {
	quick := flag.Bool("quick", false, "run the reduced-scale configuration")
	only := flag.String("only", "", "comma-separated subset: fig1,fig2,table1,table2,fig4,fig5,fig6,fig7,headlines,alphasweep")
	extended := flag.Bool("extended", false, "add the beyond-paper baselines (FF+MIG, BF-2) to the evaluation figures")
	csvDir := flag.String("csv", "", "also export each artifact's data as CSV into this directory")
	seed := flag.Uint64("seed", 42, "master random seed")
	servers := flag.Int("servers", 0, "override SMALLER cloud size (LARGER scales by +15%)")
	powerSeriesPath := flag.String("power-series", "", "render a Fig.-4-style power-over-time figure from a pacevm-sim -series CSV instead of running experiments")
	flag.Parse()

	if *powerSeriesPath != "" {
		if err := powerSeries(*powerSeriesPath, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "pacevm-paperfigs:", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Seed = *seed
	if *servers > 0 {
		cfg.SmallServers = *servers
		cfg.LargeServers = *servers * 115 / 100
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(k))] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	if err := run(cfg, sel, *extended, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "pacevm-paperfigs:", err)
		os.Exit(1)
	}
}

func run(cfg experiments.Config, sel func(string) bool, extended bool, csvDir string) error {
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}
	fmt.Printf("== PACE-VM paper reproduction (seed %d, clouds %d/%d, %d VMs) ==\n\n",
		cfg.Seed, cfg.SmallServers, cfg.LargeServers, cfg.TargetVMs)
	ctx, err := experiments.NewContext(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("model database: %d records (full grid), aux OS=(%d,%d,%d)\n\n",
		ctx.DB.Len(), ctx.Sum.Base[0].OS(), ctx.Sum.Base[1].OS(), ctx.Sum.Base[2].OS())

	if sel("fig1") {
		if err := fig1(ctx); err != nil {
			return err
		}
	}
	if sel("fig2") {
		if err := fig2(ctx, csvDir); err != nil {
			return err
		}
	}
	if sel("table1") {
		table1(ctx)
	}
	if sel("table2") {
		table2(ctx)
	}
	if sel("fig4") {
		if err := fig4(ctx); err != nil {
			return err
		}
	}
	if sel("alphasweep") {
		if err := alphaSweep(ctx, csvDir); err != nil {
			return err
		}
	}
	needEval := sel("fig5") || sel("fig6") || sel("fig7") || sel("headlines")
	if !needEval {
		return nil
	}
	results, err := ctx.Evaluation()
	if err != nil {
		return err
	}
	extraNames := []string{}
	if extended {
		extra, err := ctx.Extended()
		if err != nil {
			return err
		}
		results = append(results, extra...)
		extraNames = experiments.ExtendedNames
	}
	if sel("fig5") {
		evalChart(results, extraNames, "Fig. 5: Makespan (s)", "s",
			func(r experiments.EvalResult) float64 { return float64(r.Metrics.Makespan) })
	}
	if sel("fig6") {
		evalChart(results, extraNames, "Fig. 6: Energy consumption (J)", "J",
			func(r experiments.EvalResult) float64 { return float64(r.Metrics.Energy) })
	}
	if sel("fig7") {
		evalChart(results, extraNames, "Fig. 7: SLA violations (%)", "%",
			func(r experiments.EvalResult) float64 { return r.Metrics.SLAViolationPct() })
	}
	if sel("headlines") {
		if err := headlines(results); err != nil {
			return err
		}
	}
	if csvDir != "" {
		if err := exportEvalCSV(results, csvDir); err != nil {
			return err
		}
		fmt.Printf("CSV artifacts written to %s\n", csvDir)
	}
	return nil
}

// alphaSweep prints (and optionally exports) the PA-α sweep the paper
// mentions for α = 0.75.
func alphaSweep(ctx *experiments.Context, csvDir string) error {
	points, err := ctx.AlphaSweep([]float64{0, 0.25, 0.5, 0.75, 1})
	if err != nil {
		return err
	}
	t := report.NewTable("PA-α sweep (SMALLER cloud)", "alpha", "makespan(s)", "energy(J)", "sla(%)")
	for _, p := range points {
		t.AddRowf("%g\t%.0f\t%.4g\t%.2f", p.Alpha, float64(p.Metrics.Makespan),
			float64(p.Metrics.Energy), p.Metrics.SLAViolationPct())
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if csvDir != "" {
		return writeCSV(t, filepath.Join(csvDir, "alphasweep.csv"))
	}
	return nil
}

// exportEvalCSV writes the evaluation dataset behind Figs. 5-7.
func exportEvalCSV(results []experiments.EvalResult, dir string) error {
	t := report.NewTable("", "strategy", "cloud", "servers", "makespan_s", "energy_j", "sla_pct", "avg_wait_s", "migrations")
	for _, r := range results {
		t.AddRowf("%s\t%s\t%d\t%.3f\t%.3f\t%.4f\t%.3f\t%d",
			r.Strategy, string(r.Cloud), r.Servers,
			float64(r.Metrics.Makespan), float64(r.Metrics.Energy),
			r.Metrics.SLAViolationPct(), float64(r.Metrics.AvgWait), r.Metrics.Migrations)
	}
	return writeCSV(t, filepath.Join(dir, "evaluation.csv"))
}

func writeCSV(t *report.Table, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.CSV(f)
}

func fig1(ctx *experiments.Context) error {
	res, err := ctx.Fig1()
	if err != nil {
		return err
	}
	left, right := res.CPUOnly, res.CPUNet
	fmt.Printf("Fig. 1 (left): %s — %s\n", left.Benchmark, strings.Join(left.Labels(), ", "))
	fmt.Printf("Fig. 1 (right): %s — %s\n", right.Benchmark, strings.Join(right.Labels(), ", "))
	s := report.NewSeries("Fig. 1 (left): subsystem intensity over time — "+left.Benchmark,
		"t(s)", "cpu", "mem", "disk", "net")
	for i, pt := range left.Series {
		if i%6 != 0 { // thin the series for the console
			continue
		}
		if err := s.Add(float64(pt.At), pt.Intensity[0], pt.Intensity[1], pt.Intensity[2], pt.Intensity[3]); err != nil {
			return err
		}
	}
	if err := s.Render(os.Stdout); err != nil {
		return err
	}
	s = report.NewSeries("Fig. 1 (right): subsystem intensity over time — "+right.Benchmark,
		"t(s)", "cpu", "mem", "disk", "net")
	for i, pt := range right.Series {
		if i%4 != 0 {
			continue
		}
		if err := s.Add(float64(pt.At), pt.Intensity[0], pt.Intensity[1], pt.Intensity[2], pt.Intensity[3]); err != nil {
			return err
		}
	}
	if err := s.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func fig2(ctx *experiments.Context, csvDir string) error {
	res, err := ctx.Fig2()
	if err != nil {
		return err
	}
	s := report.NewSeries("Fig. 2: FFTW average execution time per VM vs co-located VMs",
		"#VMs", "avgTime(s)", "perVMEnergy(J)")
	for _, pt := range res.Points {
		if err := s.Add(float64(pt.N), float64(pt.AvgTimeVM), float64(pt.PerVMEnergy)); err != nil {
			return err
		}
	}
	if err := s.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("optimum (OSP) = %d VMs (paper: 9); energy optimum (OSE) = %d VMs\n\n", res.OSP, res.OSE)
	if csvDir != "" {
		f, err := os.Create(filepath.Join(csvDir, "fig2.csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return s.CSV(f)
	}
	return nil
}

func table1(ctx *experiments.Context) {
	t := report.NewTable("Table I: base-test parameters", "class", "benchmark", "OSP", "OSE", "OS", "T(s)")
	for _, row := range ctx.TableI() {
		t.AddRowf("%v\t%s\t%d\t%d\t%d\t%.1f", row.Class, row.Bench, row.OSP, row.OSE,
			max(row.OSP, row.OSE), float64(row.RefTime))
	}
	t.Render(os.Stdout)
	fmt.Println()
}

func table2(ctx *experiments.Context) {
	db := ctx.TableII()
	t := report.NewTable(fmt.Sprintf("Table II: model database (%d records; first 12 shown)", db.Len()),
		"Ncpu", "Nmem", "Nio", "Time(s)", "avgTimeVM(s)", "Energy(J)", "MaxPower(W)", "EDP(J·s)")
	for i, r := range db.Records() {
		if i >= 12 {
			break
		}
		t.AddRowf("%d\t%d\t%d\t%.1f\t%.1f\t%.0f\t%.1f\t%.3g",
			r.NCPU, r.NMEM, r.NIO, float64(r.Time), float64(r.AvgTimeVM),
			float64(r.Energy), float64(r.MaxPower), float64(r.EDP))
	}
	t.Render(os.Stdout)
	fmt.Println()
}

func fig4(ctx *experiments.Context) error {
	res, err := ctx.Fig4()
	if err != nil {
		return err
	}
	fmt.Println("Fig. 4 worked example (interval-weighted accounting):")
	fmt.Printf("  ExecTime_VM1 = 0.7*1200s + 0.3*1800s = %v (paper: 1380 s)\n", res.ExecTimeVM1)
	fmt.Printf("  Energy = 0.35*15kJ + 0.15*20kJ + 0.5*12kJ = %v (paper: 14.25 kJ)\n\n", res.Energy)
	return nil
}

func evalChart(results []experiments.EvalResult, extraNames []string, title, unit string, metric func(experiments.EvalResult) float64) {
	c := report.NewBarChart(title, unit)
	names := append(append([]string{}, experiments.StrategyNames...), extraNames...)
	for _, cloud := range []experiments.CloudName{experiments.Smaller, experiments.Larger} {
		for _, name := range names {
			r, err := experiments.Find(results, name, cloud)
			if err != nil {
				continue
			}
			c.Add(fmt.Sprintf("%-7s %s", name, cloud), metric(r))
		}
	}
	c.Render(os.Stdout)
	fmt.Println()
}

func headlines(results []experiments.EvalResult) error {
	t := report.NewTable("Headline comparisons (paper: ~12% energy vs first-fit, up to 18% shorter makespan)",
		"cloud", "makespan vs FF", "energy vs FF", "energy vs FF family", "PA-0 vs PA-1 time", "PA-1 vs PA-0 energy", "SLA reduction (pts)")
	for _, cloud := range []experiments.CloudName{experiments.Smaller, experiments.Larger} {
		h, err := experiments.ComputeHeadlines(results, cloud)
		if err != nil {
			return err
		}
		t.AddRowf("%s\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f",
			string(cloud), h.MakespanSavingVsFFPct, h.EnergySavingVsFFPct, h.EnergySavingVsFamilyPct,
			h.PA0VsPA1MakespanPct, h.PA1VsPA0EnergyPct, h.SLAReductionPct)
	}
	return t.Render(os.Stdout)
}

package main

import (
	"os"
	"path/filepath"
	"testing"

	"pacevm/internal/campaign"
	"pacevm/internal/model"
)

func TestCampaignWritesLoadableModel(t *testing.T) {
	dir := t.TempDir()
	cfg := campaign.DefaultConfig()
	cfg.MaxBase = 6
	cfg.FullGridTotal = 6
	if err := run(cfg, dir); err != nil {
		t.Fatal(err)
	}
	mf, err := os.Open(filepath.Join(dir, "model.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	af, err := os.Open(filepath.Join(dir, "aux.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer af.Close()
	db, err := model.ReadCSV(mf, af)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() < 80 {
		t.Errorf("model has %d records, want the 6-total grid (83)", db.Len())
	}
}

func TestCampaignRejectsUnwritableDir(t *testing.T) {
	cfg := campaign.DefaultConfig()
	cfg.MaxBase = 2
	if err := run(cfg, "/proc/definitely/not/writable"); err == nil {
		t.Error("unwritable output directory should fail")
	}
}

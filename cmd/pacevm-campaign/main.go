// Command pacevm-campaign runs the benchmarking campaign of Sect. III.B
// against the simulated testbed and writes the model database (Sect.
// III.C) as CSV:
//
//	pacevm-campaign -out ./modeldir            # paper-reduced grid
//	pacevm-campaign -out ./modeldir -full 16   # full pricing grid
//	pacevm-campaign -noise 7                   # noisy power meter, seed 7
//
// It produces model.csv (the Table II records) and aux.csv (the Table I
// base-test parameters).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pacevm/internal/campaign"
	"pacevm/internal/obs"
	"pacevm/internal/rng"
	"pacevm/internal/workload"
)

func main() {
	out := flag.String("out", ".", "output directory for model.csv and aux.csv")
	full := flag.Int("full", 0, "build the full pricing grid up to this total VM count (0 = paper-reduced grid)")
	maxBase := flag.Int("maxbase", 16, "largest same-type VM count in base tests")
	noise := flag.Uint64("noise", 0, "seed for power-meter noise (0 = ideal meter)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof and /debug/vars on this address (e.g. :6060)")
	flag.Parse()

	if *debugAddr != "" {
		ds, err := obs.ServeDebug(*debugAddr, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pacevm-campaign:", err)
			os.Exit(1)
		}
		defer ds.Close()
		fmt.Printf("debug server: http://%s/debug/pprof/ and /debug/vars\n", ds.Addr())
	}

	cfg := campaign.DefaultConfig()
	cfg.MaxBase = *maxBase
	cfg.FullGridTotal = *full
	if *noise != 0 {
		cfg.MeterNoise = rng.New(*noise)
	}

	if err := run(cfg, *out); err != nil {
		fmt.Fprintln(os.Stderr, "pacevm-campaign:", err)
		os.Exit(1)
	}
}

func run(cfg campaign.Config, out string) error {
	db, sum, err := campaign.Run(cfg)
	if err != nil {
		return err
	}
	for _, class := range workload.Classes {
		b := sum.Base[class]
		fmt.Printf("base %-4v (%s): OSP=%d OSE=%d OS=%d T=%.1fs\n",
			class, b.Bench, b.OSP, b.OSE, b.OS(), float64(b.RefTime))
	}
	fmt.Printf("combined experiments: %d (paper formula for this grid: %d)\n",
		sum.CombinedRuns,
		campaign.PaperCombinedCount(sum.Base[0].OS(), sum.Base[1].OS(), sum.Base[2].OS()))
	fmt.Printf("total records: %d\n", db.Len())

	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	mainPath := filepath.Join(out, "model.csv")
	auxPath := filepath.Join(out, "aux.csv")
	mf, err := os.Create(mainPath)
	if err != nil {
		return err
	}
	defer mf.Close()
	if err := db.WriteCSV(mf); err != nil {
		return err
	}
	af, err := os.Create(auxPath)
	if err != nil {
		return err
	}
	defer af.Close()
	if err := db.WriteAuxCSV(af); err != nil {
		return err
	}
	fmt.Printf("wrote %s and %s\n", mainPath, auxPath)
	return nil
}

package main

import "testing"

func TestRunRejectsUnknownBenchmark(t *testing.T) {
	if err := run("no-such-benchmark", 5, 4); err == nil {
		t.Error("unknown benchmark name should fail")
	}
}

func TestRunProfilesKnownBenchmark(t *testing.T) {
	// A coarse window and aggressive thinning keep the console series
	// short; the run itself is simulated time, not wall clock.
	if err := run("fftw", 30, 100); err != nil {
		t.Fatal(err)
	}
}

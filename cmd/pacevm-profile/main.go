// Command pacevm-profile profiles one HPC benchmark on the simulated
// testbed (Sect. III.A): it runs the workload solo, samples subsystem
// utilization in discrete windows, and prints the Fig.-1-style time
// series plus the derived intensity labels and model class.
//
//	pacevm-profile -bench fftw
//	pacevm-profile -bench mpinet -window 10
//	pacevm-profile -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pacevm/internal/profiler"
	"pacevm/internal/report"
	"pacevm/internal/units"
	"pacevm/internal/vmm"
	"pacevm/internal/workload"
)

func main() {
	bench := flag.String("bench", "hpl", "benchmark to profile")
	window := flag.Float64("window", 5, "sampling window in seconds")
	list := flag.Bool("list", false, "list available benchmarks and exit")
	every := flag.Int("every", 4, "print every n-th sample")
	flag.Parse()

	if *list {
		for _, b := range workload.All() {
			fmt.Printf("%-10s class=%-4v solo=%v footprint=%v\n", b.Name, b.Class, b.SoloTime(), b.Footprint)
		}
		return
	}
	if err := run(*bench, *window, *every); err != nil {
		fmt.Fprintln(os.Stderr, "pacevm-profile:", err)
		os.Exit(1)
	}
}

func run(name string, window float64, every int) error {
	b, err := workload.ByName(name)
	if err != nil {
		return err
	}
	cfg := profiler.DefaultConfig()
	cfg.SampleEvery = units.Seconds(window)
	prof, err := profiler.Run(cfg, vmm.DefaultConfig(), b)
	if err != nil {
		return err
	}
	if every < 1 {
		every = 1
	}
	s := report.NewSeries(
		fmt.Sprintf("subsystem intensity over time — %s", b.Name),
		"t(s)", "cpu", "mem", "disk", "net")
	for i, pt := range prof.Series {
		if i%every != 0 {
			continue
		}
		if err := s.Add(float64(pt.At), pt.Intensity[0], pt.Intensity[1], pt.Intensity[2], pt.Intensity[3]); err != nil {
			return err
		}
	}
	if err := s.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\naverage intensity: %v\n", prof.Avg)
	fmt.Printf("labels: %s\n", strings.Join(prof.Labels(), ", "))
	fmt.Printf("model class: %v\n", prof.Class)
	return nil
}

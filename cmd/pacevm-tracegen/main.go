// Command pacevm-tracegen generates a synthetic EGEE-like workload trace
// in Standard Workload Format and optionally previews the paper's
// preprocessing (Sect. IV.B):
//
//	pacevm-tracegen -out trace.swf
//	pacevm-tracegen -out trace.swf -jobs 8000 -seed 7
//	pacevm-tracegen -out trace.swf -prepare        # also print prep report
//	pacevm-tracegen -clean in.swf -out clean.swf   # clean an existing SWF
package main

import (
	"flag"
	"fmt"
	"os"

	"pacevm/internal/swf"
	"pacevm/internal/trace"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

func main() {
	out := flag.String("out", "trace.swf", "output SWF path")
	jobs := flag.Int("jobs", 5200, "raw job count to generate")
	seed := flag.Uint64("seed", 42, "random seed")
	horizon := flag.Float64("horizon", 8*3600, "arrival horizon in seconds")
	prepare := flag.Bool("prepare", false, "print the preprocessing report for the generated trace")
	clean := flag.String("clean", "", "instead of generating, clean this existing SWF file")
	flag.Parse()

	if err := run(*out, *jobs, *seed, *horizon, *prepare, *clean); err != nil {
		fmt.Fprintln(os.Stderr, "pacevm-tracegen:", err)
		os.Exit(1)
	}
}

func run(out string, jobs int, seed uint64, horizon float64, prepare bool, clean string) error {
	var tr *swf.Trace
	if clean != "" {
		f, err := os.Open(clean)
		if err != nil {
			return err
		}
		defer f.Close()
		raw, err := swf.Parse(f)
		if err != nil {
			return err
		}
		var rep swf.CleanReport
		tr, rep = swf.Clean(raw)
		fmt.Printf("cleaned %s: %d in, %d failed, %d cancelled, %d anomalous, %d kept\n",
			clean, rep.Input, rep.Failed, rep.Cancelled, rep.Anomalous, rep.Kept)
	} else {
		cfg := trace.DefaultGenConfig(seed)
		cfg.Jobs = jobs
		cfg.Horizon = units.Seconds(horizon)
		var err error
		tr, err = trace.Generate(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("generated %d jobs over %.0fs\n", len(tr.Jobs), horizon)
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := swf.Write(f, tr); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)

	if prepare {
		reqs, rep, err := trace.Prepare(tr, trace.DefaultPrepConfig(seed))
		if err != nil {
			return err
		}
		fmt.Printf("preprocessing: %d requests, %d VMs (clean: %d/%d kept)\n",
			rep.Requests, rep.TotalVMs, rep.Clean.Kept, rep.Clean.Input)
		for _, c := range workload.Classes {
			fmt.Printf("  class %-4v: %5d jobs, %5d VMs\n", c, rep.JobsByClass[c], rep.VMsByClass[c])
		}
		if len(reqs) > 0 {
			fmt.Printf("  first request: %+v\n", reqs[0])
		}
	}
	return nil
}

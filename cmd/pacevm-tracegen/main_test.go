package main

import (
	"os"
	"path/filepath"
	"testing"

	"pacevm/internal/swf"
)

func TestGenerateWritesParseableSWF(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.swf")
	if err := run(out, 300, 7, 3600, false, ""); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := swf.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 300 {
		t.Errorf("jobs = %d, want 300", len(tr.Jobs))
	}
	if tr.Header["Version"] == "" {
		t.Error("missing SWF version header")
	}
}

func TestPrepareFlag(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.swf")
	if err := run(out, 200, 7, 3600, true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestCleanMode(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.swf")
	out := filepath.Join(dir, "out.swf")
	// Write a raw trace with one failed job to clean.
	raw := &swf.Trace{Jobs: []swf.Job{
		{JobNumber: 1, SubmitTime: 0, RunTime: 100, ReqProc: 1, Status: swf.StatusCompleted},
		{JobNumber: 2, SubmitTime: 5, RunTime: 100, ReqProc: 1, Status: swf.StatusFailed},
	}}
	f, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := swf.Write(f, raw); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := run(out, 0, 7, 3600, false, in); err != nil {
		t.Fatal(err)
	}
	g, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	cleaned, err := swf.Parse(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(cleaned.Jobs) != 1 || cleaned.Jobs[0].Status != swf.StatusCompleted {
		t.Errorf("cleaned trace = %+v", cleaned.Jobs)
	}
}

func TestCleanModeMissingInput(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "o.swf"), 0, 7, 3600, false, "/nonexistent.swf"); err == nil {
		t.Error("missing input should fail")
	}
}

func TestRejectsUnwritableOutput(t *testing.T) {
	if err := run("/proc/definitely/not/writable.swf", 10, 7, 3600, false, ""); err == nil {
		t.Error("unwritable -out path should fail")
	}
}

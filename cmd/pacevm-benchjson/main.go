// Command pacevm-benchjson converts `go test -bench -benchmem` output
// into a machine-readable JSON document, so benchmark results can be
// committed and diffed (see `make bench-json`, which records the
// large-simulation benchmarks in BENCH_sim.json).
//
// Usage:
//
//	go test -bench Sim -benchmem ./internal/cloudsim | pacevm-benchjson -o BENCH_sim.json
//
// Repeated result lines for one benchmark (go test -count=N, or the
// same benchmark fed from several invocations) fold into a single
// entry: iteration counts sum, per-op values average weighted by
// iterations, and the samples field records how many lines went in —
// the per-benchmark count override that lets a heavyweight benchmark
// run -benchtime 1x -count 2 and still land as one well-sampled entry.
// A -require flag (repeatable, "regexp=minSamples") turns the sampling
// floor into a hard failure, so a recording run cannot silently commit
// a single noisy sample for an entry that needs more.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"

	"pacevm/internal/obs"
)

// Benchmark is one parsed benchmark result line. Standard units get
// dedicated fields; any custom b.ReportMetric units land in Metrics.
// The -N name suffix go test appends when GOMAXPROCS differs from 1 is
// stripped into Gomaxprocs, and a "shards" custom metric (reported by
// the sharded-simulation benchmarks) is lifted into Shards — together
// they record the parallelism a result was measured under, which a
// req/s comparison is meaningless without.
type Benchmark struct {
	Name        string             `json:"name"`
	Gomaxprocs  int                `json:"gomaxprocs"`
	Shards      int                `json:"shards,omitempty"`
	Runs        int64              `json:"runs"`
	Samples     int                `json:"samples"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Provenance is the shared recording-environment stamp (see
// obs.Provenance); pacevm-benchdiff prints it in its header, and the
// placement service reuses the same helper on /v1/stats.
type Provenance = obs.Provenance

// Report is the emitted document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Provenance *Provenance `json:"provenance,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// collectProvenance gathers the recording environment via the shared
// cached helper. Best-effort by design: outside a git checkout (or
// without git on PATH) the commit is simply empty — parse stays pure
// and the document stays valid.
func collectProvenance() *Provenance {
	p := obs.CollectProvenance()
	return &p
}

// parse consumes go-test benchmark output and collects result lines and
// the environment header.
func parse(r io.Reader) (Report, error) {
	var rep Report
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, err := parseLine(line)
		if err != nil {
			return rep, err
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}

// parseLine parses one result line:
//
//	BenchmarkName-8   12  34567 ns/op  89 B/op  1 allocs/op  2.5 req/s
func parseLine(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line: %q", line)
	}
	runs, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad run count in %q: %v", line, err)
	}
	b := Benchmark{Name: f[0], Gomaxprocs: 1, Runs: runs, Samples: 1}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if n, err := strconv.Atoi(b.Name[i+1:]); err == nil && n > 0 {
			b.Name, b.Gomaxprocs = b.Name[:i], n
		}
	}
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad value %q in %q: %v", f[i], line, err)
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	if v, ok := b.Metrics["shards"]; ok {
		b.Shards = int(v)
		delete(b.Metrics, "shards")
		if len(b.Metrics) == 0 {
			b.Metrics = nil
		}
	}
	return b, nil
}

// merge folds repeated result lines for the same benchmark — same
// name, GOMAXPROCS and shard count — into one entry: iterations sum,
// per-op values become iteration-weighted averages, and samples counts
// the folded lines. First-seen order is preserved.
func merge(in []Benchmark) []Benchmark {
	type key struct {
		name          string
		procs, shards int
	}
	idx := make(map[key]int)
	out := make([]Benchmark, 0, len(in))
	for _, b := range in {
		k := key{b.Name, b.Gomaxprocs, b.Shards}
		i, seen := idx[k]
		if !seen {
			idx[k] = len(out)
			out = append(out, b)
			continue
		}
		a := &out[i]
		wa, wb := float64(a.Runs), float64(b.Runs)
		wsum := wa + wb
		avg := func(x, y float64) float64 { return (x*wa + y*wb) / wsum }
		a.NsPerOp = avg(a.NsPerOp, b.NsPerOp)
		a.BytesPerOp = avg(a.BytesPerOp, b.BytesPerOp)
		a.AllocsPerOp = avg(a.AllocsPerOp, b.AllocsPerOp)
		for unit, v := range b.Metrics {
			if a.Metrics == nil {
				a.Metrics = map[string]float64{}
			}
			a.Metrics[unit] = avg(a.Metrics[unit], v)
		}
		a.Runs += b.Runs
		a.Samples += b.Samples
	}
	return out
}

// requirement is one parsed -require flag: every benchmark whose name
// matches pat must carry at least minSamples folded samples, and at
// least one benchmark must match.
type requirement struct {
	pat        *regexp.Regexp
	minSamples int
}

func parseRequirement(s string) (requirement, error) {
	eq := strings.LastIndex(s, "=")
	if eq <= 0 {
		return requirement{}, fmt.Errorf("bad -require %q, want regexp=minSamples", s)
	}
	n, err := strconv.Atoi(s[eq+1:])
	if err != nil || n < 1 {
		return requirement{}, fmt.Errorf("bad -require sample floor in %q", s)
	}
	pat, err := regexp.Compile(s[:eq])
	if err != nil {
		return requirement{}, fmt.Errorf("bad -require pattern in %q: %v", s, err)
	}
	return requirement{pat: pat, minSamples: n}, nil
}

func enforce(benchmarks []Benchmark, reqs []requirement) error {
	for _, r := range reqs {
		matched := false
		for _, b := range benchmarks {
			if !r.pat.MatchString(b.Name) {
				continue
			}
			matched = true
			if b.Samples < r.minSamples {
				return fmt.Errorf("benchmark %s has %d samples, -require %s wants >= %d",
					b.Name, b.Samples, r.pat, r.minSamples)
			}
		}
		if !matched {
			return fmt.Errorf("-require pattern %s matched no benchmark", r.pat)
		}
	}
	return nil
}

func run(in io.Reader, outPath string, reqs []requirement, prov *Provenance) error {
	rep, err := parse(in)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines found on input")
	}
	rep.Provenance = prov
	rep.Benchmarks = merge(rep.Benchmarks)
	if err := enforce(rep.Benchmarks, reqs); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" || outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(outPath, data, 0o644)
}

func main() {
	out := flag.String("o", "-", "output file ('-' for stdout)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof and /debug/vars on this address (e.g. :6060)")
	var requires requireFlags
	flag.Var(&requires, "require", "regexp=minSamples sampling floor (repeatable); fails if a matching benchmark folded fewer samples")
	flag.Parse()
	if *debugAddr != "" {
		ds, err := obs.ServeDebug(*debugAddr, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pacevm-benchjson:", err)
			os.Exit(1)
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "debug server: http://%s/debug/pprof/ and /debug/vars\n", ds.Addr())
	}
	if err := run(os.Stdin, *out, requires, collectProvenance()); err != nil {
		fmt.Fprintln(os.Stderr, "pacevm-benchjson:", err)
		os.Exit(1)
	}
}

// requireFlags accumulates repeated -require flags.
type requireFlags []requirement

func (r *requireFlags) String() string { return fmt.Sprint(len(*r), " requirements") }

func (r *requireFlags) Set(s string) error {
	req, err := parseRequirement(s)
	if err != nil {
		return err
	}
	*r = append(*r, req)
	return nil
}

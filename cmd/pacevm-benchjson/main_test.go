package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: pacevm/internal/cloudsim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimLarge 	       5	 216695965 ns/op	    461482 req/s	 8023704 B/op	   18128 allocs/op
BenchmarkSimLargeReference 	       1	8977090528 ns/op	     11139 req/s	16320939552 B/op	 5708833 allocs/op
PASS
ok  	pacevm/internal/cloudsim	9.042s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.Pkg != "pacevm/internal/cloudsim" {
		t.Errorf("header misparsed: %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("cpu misparsed: %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkSimLarge" || b.Runs != 5 {
		t.Errorf("first benchmark misparsed: %+v", b)
	}
	if b.NsPerOp != 216695965 || b.AllocsPerOp != 18128 || b.BytesPerOp != 8023704 {
		t.Errorf("standard units misparsed: %+v", b)
	}
	if b.Metrics["req/s"] != 461482 {
		t.Errorf("custom metric misparsed: %+v", b.Metrics)
	}
	if b.Gomaxprocs != 1 || b.Shards != 0 {
		t.Errorf("unsuffixed benchmark parallelism = %d procs / %d shards, want 1/0", b.Gomaxprocs, b.Shards)
	}
}

func TestParseParallelism(t *testing.T) {
	b, err := parseLine("BenchmarkSimLargeShards8-8 	       3	 90000000 ns/op	    461482 req/s	       8.000 shards	 8023704 B/op	   18128 allocs/op")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "BenchmarkSimLargeShards8" || b.Gomaxprocs != 8 {
		t.Errorf("GOMAXPROCS suffix misparsed: name %q, gomaxprocs %d", b.Name, b.Gomaxprocs)
	}
	if b.Shards != 8 {
		t.Errorf("shards metric not lifted: %d (metrics %v)", b.Shards, b.Metrics)
	}
	if _, ok := b.Metrics["shards"]; ok {
		t.Errorf("shards left behind in metrics: %v", b.Metrics)
	}
	if b.Metrics["req/s"] != 461482 {
		t.Errorf("sibling metric lost: %v", b.Metrics)
	}
	// A trailing -N that is part of the name proper (sub-benchmark with a
	// non-numeric tail, or no dash) must survive untouched.
	b2, err := parseLine("BenchmarkSimLarge/depth-0 	       5	 216695965 ns/op")
	if err != nil {
		t.Fatal(err)
	}
	if b2.Name != "BenchmarkSimLarge/depth-0" || b2.Gomaxprocs != 1 {
		t.Errorf("zero suffix mistaken for GOMAXPROCS: %+v", b2)
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",
		"BenchmarkX 1 2",
		"BenchmarkX abc 2 ns/op",
		"BenchmarkX 1 xyz ns/op",
	} {
		if _, err := parseLine(line); err == nil {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}

func TestParseEmptyInput(t *testing.T) {
	if err := run(strings.NewReader("PASS\n"), "-", nil, nil); err == nil {
		t.Error("run accepted input with no benchmark lines")
	}
}

func TestRunRejectsUnwritableOutput(t *testing.T) {
	if err := run(strings.NewReader(sample), "/proc/definitely/not/writable.json", nil, nil); err == nil {
		t.Error("unwritable output path should fail")
	}
}

// TestProvenance: the recording environment is injected by main, never
// synthesized by parse (which must stay a pure text transform), and the
// collector always knows the toolchain it was built with.
func TestProvenance(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Provenance != nil {
		t.Errorf("parse synthesized provenance: %+v", rep.Provenance)
	}

	p := collectProvenance()
	if !strings.HasPrefix(p.GoVersion, "go") {
		t.Errorf("go version %q does not look like a toolchain version", p.GoVersion)
	}

	out := filepath.Join(t.TempDir(), "bench.json")
	prov := &Provenance{GitCommit: "deadbeef", GoVersion: "go1.99", Host: "rig"}
	if err := run(strings.NewReader(sample), out, nil, prov); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Provenance == nil || *got.Provenance != *prov {
		t.Errorf("provenance round-trip = %+v, want %+v", got.Provenance, prov)
	}
}

// TestMerge: repeated result lines for one benchmark (go test -count=N)
// fold into a single entry — iterations summed, per-op values averaged
// weighted by iterations, samples counting the folded lines — while
// distinct parallelism stays distinct.
func TestMerge(t *testing.T) {
	const counted = `goos: linux
BenchmarkSimHuge 	       1	 100 ns/op	    1000 req/s
BenchmarkSimHuge 	       1	 300 ns/op	    3000 req/s
BenchmarkSimHuge-8 	       2	  50 ns/op
BenchmarkSimLarge 	       5	 200 ns/op
`
	rep, err := parse(strings.NewReader(counted))
	if err != nil {
		t.Fatal(err)
	}
	merged := merge(rep.Benchmarks)
	if len(merged) != 3 {
		t.Fatalf("merged to %d entries, want 3: %+v", len(merged), merged)
	}
	h := merged[0]
	if h.Name != "BenchmarkSimHuge" || h.Gomaxprocs != 1 {
		t.Fatalf("merge reordered entries: %+v", merged)
	}
	if h.Samples != 2 || h.Runs != 2 {
		t.Errorf("folded entry carries %d samples over %d runs, want 2/2", h.Samples, h.Runs)
	}
	if h.NsPerOp != 200 {
		t.Errorf("weighted ns/op = %v, want 200", h.NsPerOp)
	}
	if h.Metrics["req/s"] != 2000 {
		t.Errorf("weighted req/s = %v, want 2000", h.Metrics["req/s"])
	}
	if merged[1].Name != "BenchmarkSimHuge" || merged[1].Gomaxprocs != 8 || merged[1].Samples != 1 {
		t.Errorf("distinct GOMAXPROCS folded together: %+v", merged[1])
	}
	if merged[2].Samples != 1 || merged[2].Runs != 5 {
		t.Errorf("singleton entry altered: %+v", merged[2])
	}
}

// TestRequire: the sampling floor fails the run when a matching
// benchmark folded too few samples or the pattern matches nothing.
func TestRequire(t *testing.T) {
	mustReq := func(s string) requirement {
		t.Helper()
		r, err := parseRequirement(s)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	const counted = `BenchmarkSimHuge 	       1	 100 ns/op
BenchmarkSimHuge 	       1	 300 ns/op
BenchmarkSimLarge 	       5	 200 ns/op
`
	if err := run(strings.NewReader(counted), "-", []requirement{mustReq("SimHuge=2")}, nil); err != nil {
		t.Errorf("satisfied floor rejected: %v", err)
	}
	if err := run(strings.NewReader(counted), "-", []requirement{mustReq("SimLarge=2")}, nil); err == nil {
		t.Error("single-sample benchmark passed a 2-sample floor")
	}
	if err := run(strings.NewReader(counted), "-", []requirement{mustReq("SimColossal=1")}, nil); err == nil {
		t.Error("pattern matching no benchmark passed")
	}
	for _, bad := range []string{"=2", "SimHuge", "SimHuge=0", "SimHuge=x", "(=1"} {
		if _, err := parseRequirement(bad); err == nil {
			t.Errorf("parseRequirement accepted %q", bad)
		}
	}
}

package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: pacevm/internal/cloudsim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimLarge 	       5	 216695965 ns/op	    461482 req/s	 8023704 B/op	   18128 allocs/op
BenchmarkSimLargeReference 	       1	8977090528 ns/op	     11139 req/s	16320939552 B/op	 5708833 allocs/op
PASS
ok  	pacevm/internal/cloudsim	9.042s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.Pkg != "pacevm/internal/cloudsim" {
		t.Errorf("header misparsed: %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("cpu misparsed: %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkSimLarge" || b.Runs != 5 {
		t.Errorf("first benchmark misparsed: %+v", b)
	}
	if b.NsPerOp != 216695965 || b.AllocsPerOp != 18128 || b.BytesPerOp != 8023704 {
		t.Errorf("standard units misparsed: %+v", b)
	}
	if b.Metrics["req/s"] != 461482 {
		t.Errorf("custom metric misparsed: %+v", b.Metrics)
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",
		"BenchmarkX 1 2",
		"BenchmarkX abc 2 ns/op",
		"BenchmarkX 1 xyz ns/op",
	} {
		if _, err := parseLine(line); err == nil {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}

func TestParseEmptyInput(t *testing.T) {
	if err := run(strings.NewReader("PASS\n"), "-"); err == nil {
		t.Error("run accepted input with no benchmark lines")
	}
}

func TestRunRejectsUnwritableOutput(t *testing.T) {
	if err := run(strings.NewReader(sample), "/proc/definitely/not/writable.json"); err == nil {
		t.Error("unwritable output path should fail")
	}
}

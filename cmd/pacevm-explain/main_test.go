package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pacevm/internal/cloudsim"
)

// writeLog marshals decisions to a JSONL file the way the recorder does.
func writeLog(t *testing.T, recs ...cloudsim.Decision) string {
	t.Helper()
	var b strings.Builder
	for _, d := range recs {
		line, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	path := filepath.Join(t.TempDir(), "decisions.jsonl")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// chainLog is a two-attempt crash chain: request 0 places VM 1, a crash
// kills it into synthetic request 5, which places VM 7.
func chainLog(t *testing.T) string {
	t.Helper()
	return writeLog(t,
		cloudsim.Decision{Kind: cloudsim.DecisionAdmit, T: 10, Req: 0, Job: 3, VMs: 1, Queue: 1, From: -1, To: -1},
		cloudsim.Decision{Kind: cloudsim.DecisionReject, T: 10, Req: 0, Job: 3, Reason: cloudsim.RejectFitSummary, Count: 4, TEnd: 30, Candidates: 8, From: -1, To: -1},
		cloudsim.Decision{Kind: cloudsim.DecisionPlace, T: 40, Req: 0, Job: 3, VMs: 1, Wait: 30, Servers: []int{2}, VMIDs: []int{1}, From: -1, To: -1},
		cloudsim.Decision{Kind: cloudsim.DecisionRequeue, T: 90, Req: 5, Job: 3, VMs: 1, VMID: 1, Lost: 50, From: 2, To: -1},
		cloudsim.Decision{Kind: cloudsim.DecisionAdmit, T: 90, Req: 5, Job: 3, VMs: 1, Queue: 1, From: -1, To: -1},
		cloudsim.Decision{Kind: cloudsim.DecisionPlace, T: 95, Req: 5, Job: 3, VMs: 1, Wait: 5, Servers: []int{4}, VMIDs: []int{7}, From: -1, To: -1},
	)
}

func TestExplainChain(t *testing.T) {
	log := chainLog(t)
	for _, vm := range []int{1, 7} { // both ends resolve the same chain
		var out strings.Builder
		if err := run(options{logPath: log, vm: vm, job: -1}, &out); err != nil {
			t.Fatalf("vm %d: %v", vm, err)
		}
		got := out.String()
		for _, want := range []string{
			"[VM 1] request 0 (attempt 1)",
			"fit-summary ×4 until t=30",
			"VM 1 killed on server 2 (lost 50s) -> request 5",
			"[VM 7] request 5 (attempt 2)",
			"servers [4] vm ids [7]",
		} {
			if !strings.Contains(got, want) {
				t.Errorf("vm %d: chain missing %q:\n%s", vm, want, got)
			}
		}
	}
}

func TestExplainJobAndWindows(t *testing.T) {
	log := writeLog(t,
		cloudsim.Decision{Kind: cloudsim.DecisionRoute, T: 5, Shard: -1, Req: 0, Job: 3, Window: 1, From: -1, To: 2},
		cloudsim.Decision{Kind: cloudsim.DecisionSteal, T: 7, Shard: -1, Req: 0, Job: 3, Window: 1, From: 2, To: 0},
		cloudsim.Decision{Kind: cloudsim.DecisionRoute, T: 9, Shard: -1, Req: 1, Job: 4, Window: 2, From: -1, To: 1},
	)
	var out strings.Builder
	if err := run(options{logPath: log, vm: -1, job: 3}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "routed to shard 2") || !strings.Contains(got, "stolen from shard 2 by shard 0") {
		t.Errorf("job view missing coordinator records:\n%s", got)
	}
	out.Reset()
	if err := run(options{logPath: log, vm: -1, job: -1, windows: true}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "2 coordinator windows") ||
		!strings.Contains(got, "window 1 t=5: 1 routed (shard 2: 1), 1 steals") ||
		!strings.Contains(got, "window 2 t=9: 1 routed (shard 1: 1)") {
		t.Errorf("window summary wrong:\n%s", got)
	}
}

func TestExplainMissingLog(t *testing.T) {
	err := run(options{logPath: filepath.Join(t.TempDir(), "nope.jsonl"), vm: 1, job: -1}, &strings.Builder{})
	if err == nil || !os.IsNotExist(err) {
		t.Fatalf("missing log error = %v", err)
	}
}

// A record cut mid-write (crash during -decision-log) must be reported
// with its line number, matching the model-CSV loader convention.
func TestExplainTruncatedRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trunc.jsonl")
	content := `{"kind":"admit","t":1,"shard":0,"req":0,"job":1,"vms":1,"from":-1,"to":-1}` + "\n" +
		`{"kind":"place","t":2,"sha`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(options{logPath: path, vm: 1, job: -1}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "decision log line 2") {
		t.Fatalf("truncated record error = %v, want line 2", err)
	}
}

func TestExplainUnknownVM(t *testing.T) {
	err := run(options{logPath: chainLog(t), vm: 999, job: -1}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "vm 999 not in the decision log") {
		t.Fatalf("unknown vm error = %v", err)
	}
	err = run(options{logPath: chainLog(t), vm: -1, job: 999}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "job 999 not in the decision log") {
		t.Fatalf("unknown job error = %v", err)
	}
}

func TestExplainModeValidation(t *testing.T) {
	if err := run(options{vm: 1, job: -1}, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "-log is required") {
		t.Errorf("missing -log error = %v", err)
	}
	log := chainLog(t)
	if err := run(options{logPath: log, vm: 1, job: 2}, &strings.Builder{}); err == nil {
		t.Error("two modes accepted")
	}
	if err := run(options{logPath: log, vm: -1, job: -1}, &strings.Builder{}); err == nil {
		t.Error("no mode accepted")
	}
}

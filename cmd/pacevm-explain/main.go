// Command pacevm-explain replays a placement decision flight-recorder
// log (pacevm-sim -decision-log) and answers "why is this VM where it
// is": the full decision chain of one VM across crashes and requeues,
// every decision about one job, or the coordinator's per-window shard
// routing in a sharded run.
//
//	pacevm-explain -log decisions.jsonl -vm 17
//	pacevm-explain -log decisions.jsonl -job 42
//	pacevm-explain -log decisions.jsonl -windows
//
// The chain view walks the requeue links both ways: backwards from the
// requested VM to the original submission (each synthetic requeue
// request carries the killed VM's uid), forwards through any later
// crashes to the attempt that finally completed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"pacevm/internal/cloudsim"
)

type options struct {
	logPath string
	vm      int
	job     int
	windows bool
}

func main() {
	var opt options
	flag.StringVar(&opt.logPath, "log", "", "decision log (JSONL) written by pacevm-sim -decision-log")
	flag.IntVar(&opt.vm, "vm", -1, "reconstruct this VM uid's full decision chain")
	flag.IntVar(&opt.job, "job", -1, "print every decision about this job id")
	flag.BoolVar(&opt.windows, "windows", false, "summarize the coordinator's per-window shard routing")
	flag.Parse()

	if err := run(opt, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pacevm-explain:", err)
		os.Exit(1)
	}
}

func run(opt options, w io.Writer) error {
	if opt.logPath == "" {
		return fmt.Errorf("-log is required")
	}
	modes := 0
	for _, on := range []bool{opt.vm >= 0, opt.job >= 0, opt.windows} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return fmt.Errorf("pick exactly one of -vm, -job or -windows")
	}
	f, err := os.Open(opt.logPath)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := cloudsim.ReadDecisionLog(f)
	if err != nil {
		return err
	}
	switch {
	case opt.vm >= 0:
		return explainVM(w, recs, opt.vm)
	case opt.job >= 0:
		return explainJob(w, recs, opt.job)
	default:
		return explainWindows(w, recs)
	}
}

// logIndex cross-references the flight log for chain walking.
type logIndex struct {
	byReq        map[int][]int // request idx -> record indices, log order
	placeByVM    map[int]int   // VM uid -> its place record
	requeueByVM  map[int]int   // killed VM uid -> the requeue record its crash produced
	requeueByReq map[int]int   // synthetic request idx -> the requeue record that created it
}

func buildIndex(recs []cloudsim.Decision) logIndex {
	ix := logIndex{
		byReq:        map[int][]int{},
		placeByVM:    map[int]int{},
		requeueByVM:  map[int]int{},
		requeueByReq: map[int]int{},
	}
	for i, d := range recs {
		if d.Req >= 0 {
			ix.byReq[d.Req] = append(ix.byReq[d.Req], i)
		}
		switch d.Kind {
		case cloudsim.DecisionPlace:
			for _, uid := range d.VMIDs {
				ix.placeByVM[uid] = i
			}
		case cloudsim.DecisionRequeue:
			ix.requeueByVM[d.VMID] = i
			ix.requeueByReq[d.Req] = i
		}
	}
	return ix
}

// explainVM prints the full decision chain of one VM uid: ancestors back
// to the original submission, then each attempt's decisions in order.
func explainVM(w io.Writer, recs []cloudsim.Decision, uid int) error {
	ix := buildIndex(recs)
	pi, ok := ix.placeByVM[uid]
	if !ok {
		return fmt.Errorf("vm %d not in the decision log (%d placements recorded)", uid, len(ix.placeByVM))
	}

	// Walk back through requeue links to the chain's first attempt.
	cur := uid
	for steps := 0; ; steps++ {
		if steps > len(recs) {
			return fmt.Errorf("requeue ancestry for vm %d does not terminate (corrupt log?)", uid)
		}
		ri, ok := ix.requeueByReq[recs[ix.placeByVM[cur]].Req]
		if !ok || recs[ri].VMID == cur {
			break
		}
		prev := recs[ri].VMID
		if _, ok := ix.placeByVM[prev]; !ok {
			break
		}
		cur = prev
	}

	job := recs[pi].Job
	fmt.Fprintf(w, "decision chain for VM %d (job %d):\n", uid, job)
	attempts := 0
	for {
		attempts++
		pl := recs[ix.placeByVM[cur]]
		fmt.Fprintf(w, "\n[VM %d] request %d (attempt %d)\n", cur, pl.Req, attempts)
		for _, i := range ix.byReq[pl.Req] {
			fmt.Fprintf(w, "  %s\n", formatDecision(recs[i]))
		}
		ri, ok := ix.requeueByVM[cur]
		if !ok {
			break
		}
		// The crash's synthetic request re-enters admission; its place
		// record names the successor uid.
		next := recs[ri]
		npi, ok := ix.placeByVM[nextUID(recs, ix, next.Req)]
		if !ok {
			fmt.Fprintf(w, "  %s (never re-placed)\n", formatDecision(next))
			break
		}
		cur = firstUID(recs[npi])
		if attempts > len(recs) {
			return fmt.Errorf("requeue chain for vm %d does not terminate (corrupt log?)", uid)
		}
	}
	return nil
}

// nextUID resolves the uid placed for a synthetic requeue request (the
// redo request carries exactly one VM).
func nextUID(recs []cloudsim.Decision, ix logIndex, req int) int {
	for _, i := range ix.byReq[req] {
		if recs[i].Kind == cloudsim.DecisionPlace && len(recs[i].VMIDs) > 0 {
			return recs[i].VMIDs[0]
		}
	}
	return -1
}

func firstUID(d cloudsim.Decision) int {
	if len(d.VMIDs) > 0 {
		return d.VMIDs[0]
	}
	return -1
}

// explainJob prints every decision mentioning the job, in log order.
func explainJob(w io.Writer, recs []cloudsim.Decision, job int) error {
	n := 0
	for _, d := range recs {
		if d.Job != job {
			continue
		}
		if n == 0 {
			fmt.Fprintf(w, "decisions for job %d:\n", job)
		}
		n++
		fmt.Fprintf(w, "  %s\n", formatDecision(d))
	}
	if n == 0 {
		return fmt.Errorf("job %d not in the decision log (%d records)", job, len(recs))
	}
	fmt.Fprintf(w, "%d decisions\n", n)
	return nil
}

// explainWindows summarizes the coordinator records: per window, the
// requests routed to each shard and the steals executed at its barrier.
func explainWindows(w io.Writer, recs []cloudsim.Decision) error {
	type winStat struct {
		t      float64
		routed map[int]int // shard -> requests routed
		steals int
	}
	wins := map[int]*winStat{}
	for _, d := range recs {
		if d.Window == 0 {
			continue
		}
		ws := wins[d.Window]
		if ws == nil {
			ws = &winStat{t: d.T, routed: map[int]int{}}
			wins[d.Window] = ws
		}
		switch d.Kind {
		case cloudsim.DecisionRoute:
			ws.routed[d.To]++
			if d.T < ws.t {
				ws.t = d.T
			}
		case cloudsim.DecisionSteal:
			ws.steals++
		}
	}
	if len(wins) == 0 {
		fmt.Fprintln(w, "no coordinator records (monolithic run, or log predates routing)")
		return nil
	}
	order := make([]int, 0, len(wins))
	for n := range wins {
		order = append(order, n)
	}
	sort.Ints(order)
	fmt.Fprintf(w, "%d coordinator windows:\n", len(order))
	for _, n := range order {
		ws := wins[n]
		shards := make([]int, 0, len(ws.routed))
		total := 0
		for s, c := range ws.routed {
			shards = append(shards, s)
			total += c
		}
		sort.Ints(shards)
		var parts []string
		for _, s := range shards {
			parts = append(parts, fmt.Sprintf("shard %d: %d", s, ws.routed[s]))
		}
		line := fmt.Sprintf("  window %d t=%g: %d routed", n, ws.t, total)
		if len(parts) > 0 {
			line += " (" + strings.Join(parts, ", ") + ")"
		}
		if ws.steals > 0 {
			line += fmt.Sprintf(", %d steals", ws.steals)
		}
		fmt.Fprintln(w, line)
	}
	return nil
}

// formatDecision renders one record as a human-readable line.
func formatDecision(d cloudsim.Decision) string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%-10g %-7s", d.T, d.Kind)
	switch d.Kind {
	case cloudsim.DecisionAdmit:
		fmt.Fprintf(&b, " job %d (%d VMs) entered the queue at depth %d [shard %d]", d.Job, d.VMs, d.Queue, d.Shard)
	case cloudsim.DecisionRoute:
		fmt.Fprintf(&b, " job %d routed to shard %d (window %d)", d.Job, d.To, d.Window)
	case cloudsim.DecisionSteal:
		fmt.Fprintf(&b, " job %d stolen from shard %d by shard %d (window %d)", d.Job, d.From, d.To, d.Window)
	case cloudsim.DecisionReject:
		fmt.Fprintf(&b, " %s", d.Reason)
		if d.Count > 1 {
			fmt.Fprintf(&b, " ×%d until t=%g", d.Count, d.TEnd)
		}
		if d.Candidates > 0 {
			fmt.Fprintf(&b, " (candidates %d)", d.Candidates)
		}
		if d.Search != nil {
			fmt.Fprintf(&b, " %s", formatSearch(d.Search))
		}
	case cloudsim.DecisionPlace:
		fmt.Fprintf(&b, " servers %v vm ids %v wait=%g", d.Servers, d.VMIDs, d.Wait)
		if d.Relaxed {
			b.WriteString(" relaxed")
		}
		if d.Degraded {
			b.WriteString(" degraded-to-first-fit")
		}
		if d.Search != nil {
			fmt.Fprintf(&b, " %s", formatSearch(d.Search))
		}
	case cloudsim.DecisionRequeue:
		fmt.Fprintf(&b, " VM %d killed on server %d (lost %gs) -> request %d", d.VMID, d.From, d.Lost, d.Req)
	case cloudsim.DecisionMigrate:
		if d.Reason != "" {
			fmt.Fprintf(&b, " VM %d %d->%d skipped: %s", d.VMID, d.From, d.To, d.Reason)
		} else {
			fmt.Fprintf(&b, " VM %d moved %d->%d", d.VMID, d.From, d.To)
		}
	default:
		fmt.Fprintf(&b, " %+v", d)
	}
	return b.String()
}

func formatSearch(s *cloudsim.DecisionSearch) string {
	out := fmt.Sprintf("[search: %d enumerated, %d deduped, %d feasible, %d infeasible, %d pruned",
		s.Enumerated, s.Deduped, s.Feasible, s.Infeasible, s.Pruned)
	if s.Exhausted {
		out += ", budget exhausted"
	}
	return out + "]"
}

package main

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pacevm/internal/campaign"
	"pacevm/internal/cloudsim"
	"pacevm/internal/model"
	"pacevm/internal/obs"
)

var (
	dbOnce sync.Once
	testDB *model.DB
	dbErr  error
)

func sharedDB(t *testing.T) *model.DB {
	t.Helper()
	dbOnce.Do(func() {
		cfg := campaign.DefaultConfig()
		cfg.FullGridTotal = 8
		testDB, _, dbErr = campaign.Run(cfg)
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return testDB
}

func TestParseStrategy(t *testing.T) {
	db := sharedDB(t)
	cases := []struct {
		in   string
		want string
	}{
		{"FF", "FF"},
		{"ff-2", "FF-2"},
		{"FF-3", "FF-3"},
		{"PA-1", "PA-1"},
		{"pa-0", "PA-0"},
		{"PA-0.5", "PA-0.5"},
		{"PA-0.75", "PA-0.75"},
		{"BF-2", "BF-2"},
	}
	for _, c := range cases {
		st, err := parseStrategy(db, c.in, 0, nil)
		if err != nil {
			t.Errorf("parseStrategy(%q): %v", c.in, err)
			continue
		}
		if st.Name() != c.want {
			t.Errorf("parseStrategy(%q).Name() = %q, want %q", c.in, st.Name(), c.want)
		}
	}
}

func TestParseStrategyErrors(t *testing.T) {
	db := sharedDB(t)
	for _, in := range []string{"", "XX", "PA-", "PA-x", "BF-", "BF-x", "PA-2"} {
		if _, err := parseStrategy(db, in, 0, nil); err == nil {
			t.Errorf("parseStrategy(%q) accepted bad input", in)
		}
	}
}

func TestParseCheckpoint(t *testing.T) {
	for _, c := range []struct{ in, want string }{
		{"", "restart"},
		{"restart", "restart"},
		{"periodic:300", "periodic:300"},
		{"periodic:0.5", "periodic:0.5"},
	} {
		cp, err := parseCheckpoint(c.in)
		if err != nil {
			t.Errorf("parseCheckpoint(%q): %v", c.in, err)
			continue
		}
		if cp.Name() != c.want {
			t.Errorf("parseCheckpoint(%q).Name() = %q, want %q", c.in, cp.Name(), c.want)
		}
	}
	for _, in := range []string{"never", "periodic:", "periodic:x", "periodic:-5", "periodic:0"} {
		if _, err := parseCheckpoint(in); err == nil {
			t.Errorf("parseCheckpoint(%q) accepted bad input", in)
		}
	}
}

func TestLoadModelFromDir(t *testing.T) {
	db := sharedDB(t)
	dir := t.TempDir()
	mf, err := os.Create(filepath.Join(dir, "model.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WriteCSV(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()
	af, err := os.Create(filepath.Join(dir, "aux.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WriteAuxCSV(af); err != nil {
		t.Fatal(err)
	}
	af.Close()

	got, err := loadModel(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Errorf("loaded %d records, want %d", got.Len(), db.Len())
	}
}

func TestLoadModelMissingDir(t *testing.T) {
	if _, err := loadModel(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing model directory should fail")
	}
}

// modelDir writes the shared test model as CSV into a temp dir so run()
// can load it without an in-process campaign per case.
func modelDir(t *testing.T) string {
	t.Helper()
	db := sharedDB(t)
	dir := t.TempDir()
	mf, err := os.Create(filepath.Join(dir, "model.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WriteCSV(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()
	af, err := os.Create(filepath.Join(dir, "aux.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WriteAuxCSV(af); err != nil {
		t.Fatal(err)
	}
	af.Close()
	return dir
}

// TestRunErrorPaths drives run() through each failure mode a user can
// hit from the command line; every one must surface as an error (main
// then prints it to stderr and exits non-zero).
func TestRunErrorPaths(t *testing.T) {
	dir := modelDir(t)
	base := options{stratName: "FF-3", servers: 4, seed: 1, vms: 50, modelDir: dir}
	cases := []struct {
		name string
		mut  func(*options)
	}{
		{"unknown strategy", func(o *options) { o.stratName = "XX-9" }},
		{"missing model dir", func(o *options) { o.modelDir = filepath.Join(dir, "nope") }},
		{"missing swf input", func(o *options) { o.swfPath = filepath.Join(dir, "missing.swf") }},
		{"unwritable trace output", func(o *options) { o.tracePath = filepath.Join(dir, "no", "such", "dir", "t.json") }},
		{"trace with reference loop", func(o *options) { o.tracePath = filepath.Join(dir, "t.json"); o.reference = true }},
		{"bad debug address", func(o *options) { o.debugAddr = "notanaddress:-1" }},
		{"faults with reference loop", func(o *options) { o.mtbf = 5000; o.mttr = 300; o.reference = true }},
		{"missing fault schedule", func(o *options) { o.faultsPath = filepath.Join(dir, "missing.csv") }},
		{"mtbf without mttr", func(o *options) { o.mtbf = 5000 }},
		{"bad checkpoint policy", func(o *options) { o.checkpoint = "sometimes" }},
		{"vm-audit with reference loop", func(o *options) { o.vmAuditPath = filepath.Join(dir, "a.csv"); o.reference = true }},
		{"series with reference loop", func(o *options) { o.seriesPath = filepath.Join(dir, "s.csv"); o.reference = true }},
		{"unwritable vm-audit output", func(o *options) { o.vmAuditPath = filepath.Join(dir, "no", "such", "dir", "a.csv") }},
		{"unwritable series output", func(o *options) { o.seriesPath = filepath.Join(dir, "no", "such", "dir", "s.csv") }},
		{"negative series cap", func(o *options) { o.seriesPath = filepath.Join(dir, "s.csv"); o.seriesCap = -1 }},
		{"negative shards", func(o *options) { o.shards = -1 }},
		{"negative shard window", func(o *options) { o.shards = 2; o.shardWindow = -10 }},
		{"explicit zero shard window", func(o *options) { o.shards = 2; o.shardWindow = 0; o.windowSet = true }},
		{"explicit negative shard window", func(o *options) { o.shards = 2; o.shardWindow = -1; o.windowSet = true }},
		{"negative watchdog period", func(o *options) { o.watchdogEvery = -1 }},
		{"shards with reference loop", func(o *options) { o.shards = 2; o.reference = true }},
		{"more shards than servers", func(o *options) { o.shards = 8 }},
		{"steal without shards", func(o *options) { o.steal = true }},
		{"decision log with reference loop", func(o *options) { o.decisionLog = filepath.Join(dir, "d.jsonl"); o.reference = true }},
		{"watchdog with reference loop", func(o *options) { o.watchdogEvery = 100; o.reference = true }},
		{"unwritable decision log output", func(o *options) { o.decisionLog = filepath.Join(dir, "no", "such", "dir", "d.jsonl") }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			opt := base
			c.mut(&opt)
			if err := run(opt); err == nil {
				t.Error("run() accepted a broken configuration")
			}
		})
	}
}

// TestRunWritesTraceAndManifest is the CLI acceptance path: a traced run
// must leave a schema-valid Chrome trace file and a manifest carrying
// the metrics and the telemetry snapshot.
func TestRunWritesTraceAndManifest(t *testing.T) {
	dir := modelDir(t)
	tracePath := filepath.Join(t.TempDir(), "out.json")
	opt := options{stratName: "FF-3", servers: 4, seed: 1, vms: 60, modelDir: dir, tracePath: tracePath, backfill: 2}
	if err := run(opt); err != nil {
		t.Fatal(err)
	}
	tf, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	f, err := obs.ReadTraceFile(tf)
	if err != nil {
		t.Fatalf("trace output is not valid Chrome trace JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Error("trace has no events")
	}
	if f.OtherData["tool"] != "pacevm-sim" {
		t.Errorf("otherData = %v", f.OtherData)
	}
	raw, err := os.ReadFile(tracePath + ".manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Command   string `json:"command"`
		Seed      uint64 `json:"seed"`
		Telemetry struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"telemetry"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Command != "pacevm-sim" || m.Seed != 1 {
		t.Errorf("manifest header = %+v", m)
	}
	if m.Telemetry.Counters["sim_events_popped"] == 0 {
		t.Error("manifest telemetry snapshot is empty")
	}
}

// TestRunAuditSeries is the audit smoke (make audit-smoke): a small
// faulted run with -vm-audit, -series and -trace enabled must leave
// parseable, non-empty CSVs, a trace, and a manifest whose artifacts
// map points at all of them.
func TestRunAuditSeries(t *testing.T) {
	dir := modelDir(t)
	out := t.TempDir()
	opt := options{
		stratName: "FF-3", servers: 4, seed: 1, vms: 60, modelDir: dir,
		mtbf: 2000, mttr: 200, checkpoint: "periodic:300",
		vmAuditPath: filepath.Join(out, "audit.csv"),
		seriesPath:  filepath.Join(out, "series.csv"),
		tracePath:   filepath.Join(out, "trace.json"),
	}
	if err := run(opt); err != nil {
		t.Fatal(err)
	}
	readCSV := func(path, wantFirstCol string) [][]string {
		t.Helper()
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		rows, err := csv.NewReader(f).ReadAll()
		if err != nil {
			t.Fatalf("%s does not parse as CSV: %v", path, err)
		}
		if len(rows) < 2 {
			t.Fatalf("%s has no data rows", path)
		}
		if rows[0][0] != wantFirstCol {
			t.Fatalf("%s header starts with %q, want %q", path, rows[0][0], wantFirstCol)
		}
		return rows
	}
	audit := readCSV(opt.vmAuditPath, "vm")
	finished := 0
	for _, row := range audit[1:] {
		if row[11] == "finished" {
			finished++
		}
	}
	if finished == 0 {
		t.Error("audit CSV records no finished spans")
	}
	readCSV(opt.seriesPath, "t_s")

	raw, err := os.ReadFile(opt.tracePath + ".manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		SchemaVersion int               `json:"schema_version"`
		Artifacts     map[string]string `json:"artifacts"`
		Telemetry     struct {
			Quantiles map[string]struct {
				Count int64 `json:"count"`
			} `json:"quantiles"`
		} `json:"telemetry"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.SchemaVersion != obs.ManifestSchemaVersion {
		t.Errorf("manifest schema_version = %d, want %d", m.SchemaVersion, obs.ManifestSchemaVersion)
	}
	for _, key := range []string{"trace", "vm_audit", "series"} {
		if m.Artifacts[key] == "" {
			t.Errorf("manifest artifacts missing %q: %v", key, m.Artifacts)
		}
	}
	if m.Telemetry.Quantiles["sim_vm_wait_seconds"].Count == 0 {
		t.Error("manifest telemetry carries no wait-quantile observations")
	}
}

// TestRunDashboardLive starts run() with a debug server and no series
// file: the dashboard must answer 200 during/after the run with the
// live quantile digests rendered.
func TestRunDashboardLive(t *testing.T) {
	// run() closes its own debug server on return, so serve one here the
	// same way run does and probe it — the handler path is identical.
	reg := obs.NewRegistry()
	reg.Quantile("sim_vm_wait_seconds").Observe(3)
	ds, err := obs.ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	resp, err := http.Get("http://" + ds.Addr() + "/debug/dash")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/dash status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "sim_vm_wait_seconds") {
		t.Error("/debug/dash does not render the quantile digest")
	}
}

// TestRunSharded drives the parallel engine through the CLI path: a
// sharded faulted run with audit and series export must succeed and
// leave parseable merged artifacts. Byte-level shard semantics are
// pinned by the cloudsim tests; this is the wiring smoke.
func TestRunSharded(t *testing.T) {
	dir := modelDir(t)
	out := t.TempDir()
	opt := options{
		stratName: "FF-3", servers: 4, seed: 1, vms: 60, modelDir: dir,
		shards: 2, mtbf: 2000, mttr: 200,
		vmAuditPath: filepath.Join(out, "audit.csv"),
		seriesPath:  filepath.Join(out, "series.csv"),
	}
	if err := run(opt); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{opt.vmAuditPath, opt.seriesPath} {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := csv.NewReader(f).ReadAll()
		f.Close()
		if err != nil {
			t.Fatalf("%s does not parse as CSV: %v", path, err)
		}
		if len(rows) < 2 {
			t.Fatalf("%s has no data rows", path)
		}
	}
	// An explicit window must also run (and stay deterministic enough to
	// finish; result equality across runs is pinned in cloudsim).
	opt.shardWindow = 500
	opt.vmAuditPath, opt.seriesPath = "", ""
	if err := run(opt); err != nil {
		t.Fatal(err)
	}
}

// TestRunDecisionLogAndWatchdog is the flight-recorder wiring smoke: a
// sharded, faulted, traced run with the recorder and watchdog on must
// succeed (zero invariant violations), write a replayable decision log,
// and register the artifact in the trace manifest. Decision semantics
// are pinned by the cloudsim tests.
func TestRunDecisionLogAndWatchdog(t *testing.T) {
	dir := modelDir(t)
	out := t.TempDir()
	opt := options{
		stratName: "FF-3", servers: 4, seed: 1, vms: 60, modelDir: dir,
		shards: 2, mtbf: 2000, mttr: 200,
		decisionLog:   filepath.Join(out, "decisions.jsonl"),
		watchdogEvery: 64,
		tracePath:     filepath.Join(out, "t.json"),
	}
	if err := run(opt); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(opt.decisionLog)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := cloudsim.ReadDecisionLog(f)
	f.Close()
	if err != nil {
		t.Fatalf("decision log does not replay: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("decision log is empty")
	}
	man, err := os.ReadFile(opt.tracePath + ".manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(man), "decision_log") {
		t.Error("manifest does not name the decision log artifact")
	}
}

// TestRunFaultModes drives run() end to end with fault injection on:
// seeded MTBF/MTTR generation, a stored schedule file, and a budgeted
// PA search with checkpointing. Output formatting is exercised; the
// metrics themselves are pinned by the cloudsim tests.
func TestRunFaultModes(t *testing.T) {
	dir := modelDir(t)
	base := options{stratName: "FF-3", servers: 4, seed: 1, vms: 50, modelDir: dir}

	t.Run("generated schedule", func(t *testing.T) {
		opt := base
		opt.mtbf, opt.mttr = 2000, 200
		if err := run(opt); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("schedule file", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "outages.csv")
		if err := os.WriteFile(path, []byte("server,down_s,up_s\n1,100,400\n2,500,900\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		opt := base
		opt.faultsPath = path
		opt.checkpoint = "periodic:300"
		if err := run(opt); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("budgeted PA search", func(t *testing.T) {
		opt := base
		opt.stratName = "PA-0.5"
		opt.vms = 30
		opt.mtbf, opt.mttr = 2000, 200
		opt.searchBudget = 2
		if err := run(opt); err != nil {
			t.Fatal(err)
		}
	})
}

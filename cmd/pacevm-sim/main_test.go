package main

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pacevm/internal/campaign"
	"pacevm/internal/model"
)

var (
	dbOnce sync.Once
	testDB *model.DB
	dbErr  error
)

func sharedDB(t *testing.T) *model.DB {
	t.Helper()
	dbOnce.Do(func() {
		cfg := campaign.DefaultConfig()
		cfg.FullGridTotal = 8
		testDB, _, dbErr = campaign.Run(cfg)
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return testDB
}

func TestParseStrategy(t *testing.T) {
	db := sharedDB(t)
	cases := []struct {
		in   string
		want string
	}{
		{"FF", "FF"},
		{"ff-2", "FF-2"},
		{"FF-3", "FF-3"},
		{"PA-1", "PA-1"},
		{"pa-0", "PA-0"},
		{"PA-0.5", "PA-0.5"},
		{"PA-0.75", "PA-0.75"},
		{"BF-2", "BF-2"},
	}
	for _, c := range cases {
		st, err := parseStrategy(db, c.in)
		if err != nil {
			t.Errorf("parseStrategy(%q): %v", c.in, err)
			continue
		}
		if st.Name() != c.want {
			t.Errorf("parseStrategy(%q).Name() = %q, want %q", c.in, st.Name(), c.want)
		}
	}
}

func TestParseStrategyErrors(t *testing.T) {
	db := sharedDB(t)
	for _, in := range []string{"", "XX", "PA-", "PA-x", "BF-", "BF-x", "PA-2"} {
		if _, err := parseStrategy(db, in); err == nil {
			t.Errorf("parseStrategy(%q) accepted bad input", in)
		}
	}
}

func TestLoadModelFromDir(t *testing.T) {
	db := sharedDB(t)
	dir := t.TempDir()
	mf, err := os.Create(filepath.Join(dir, "model.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WriteCSV(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()
	af, err := os.Create(filepath.Join(dir, "aux.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WriteAuxCSV(af); err != nil {
		t.Fatal(err)
	}
	af.Close()

	got, err := loadModel(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Errorf("loaded %d records, want %d", got.Len(), db.Len())
	}
}

func TestLoadModelMissingDir(t *testing.T) {
	if _, err := loadModel(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing model directory should fail")
	}
}

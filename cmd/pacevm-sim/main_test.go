package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pacevm/internal/campaign"
	"pacevm/internal/model"
	"pacevm/internal/obs"
)

var (
	dbOnce sync.Once
	testDB *model.DB
	dbErr  error
)

func sharedDB(t *testing.T) *model.DB {
	t.Helper()
	dbOnce.Do(func() {
		cfg := campaign.DefaultConfig()
		cfg.FullGridTotal = 8
		testDB, _, dbErr = campaign.Run(cfg)
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return testDB
}

func TestParseStrategy(t *testing.T) {
	db := sharedDB(t)
	cases := []struct {
		in   string
		want string
	}{
		{"FF", "FF"},
		{"ff-2", "FF-2"},
		{"FF-3", "FF-3"},
		{"PA-1", "PA-1"},
		{"pa-0", "PA-0"},
		{"PA-0.5", "PA-0.5"},
		{"PA-0.75", "PA-0.75"},
		{"BF-2", "BF-2"},
	}
	for _, c := range cases {
		st, err := parseStrategy(db, c.in, 0, nil)
		if err != nil {
			t.Errorf("parseStrategy(%q): %v", c.in, err)
			continue
		}
		if st.Name() != c.want {
			t.Errorf("parseStrategy(%q).Name() = %q, want %q", c.in, st.Name(), c.want)
		}
	}
}

func TestParseStrategyErrors(t *testing.T) {
	db := sharedDB(t)
	for _, in := range []string{"", "XX", "PA-", "PA-x", "BF-", "BF-x", "PA-2"} {
		if _, err := parseStrategy(db, in, 0, nil); err == nil {
			t.Errorf("parseStrategy(%q) accepted bad input", in)
		}
	}
}

func TestParseCheckpoint(t *testing.T) {
	for _, c := range []struct{ in, want string }{
		{"", "restart"},
		{"restart", "restart"},
		{"periodic:300", "periodic:300"},
		{"periodic:0.5", "periodic:0.5"},
	} {
		cp, err := parseCheckpoint(c.in)
		if err != nil {
			t.Errorf("parseCheckpoint(%q): %v", c.in, err)
			continue
		}
		if cp.Name() != c.want {
			t.Errorf("parseCheckpoint(%q).Name() = %q, want %q", c.in, cp.Name(), c.want)
		}
	}
	for _, in := range []string{"never", "periodic:", "periodic:x", "periodic:-5", "periodic:0"} {
		if _, err := parseCheckpoint(in); err == nil {
			t.Errorf("parseCheckpoint(%q) accepted bad input", in)
		}
	}
}

func TestLoadModelFromDir(t *testing.T) {
	db := sharedDB(t)
	dir := t.TempDir()
	mf, err := os.Create(filepath.Join(dir, "model.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WriteCSV(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()
	af, err := os.Create(filepath.Join(dir, "aux.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WriteAuxCSV(af); err != nil {
		t.Fatal(err)
	}
	af.Close()

	got, err := loadModel(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Errorf("loaded %d records, want %d", got.Len(), db.Len())
	}
}

func TestLoadModelMissingDir(t *testing.T) {
	if _, err := loadModel(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing model directory should fail")
	}
}

// modelDir writes the shared test model as CSV into a temp dir so run()
// can load it without an in-process campaign per case.
func modelDir(t *testing.T) string {
	t.Helper()
	db := sharedDB(t)
	dir := t.TempDir()
	mf, err := os.Create(filepath.Join(dir, "model.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WriteCSV(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()
	af, err := os.Create(filepath.Join(dir, "aux.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WriteAuxCSV(af); err != nil {
		t.Fatal(err)
	}
	af.Close()
	return dir
}

// TestRunErrorPaths drives run() through each failure mode a user can
// hit from the command line; every one must surface as an error (main
// then prints it to stderr and exits non-zero).
func TestRunErrorPaths(t *testing.T) {
	dir := modelDir(t)
	base := options{stratName: "FF-3", servers: 4, seed: 1, vms: 50, modelDir: dir}
	cases := []struct {
		name string
		mut  func(*options)
	}{
		{"unknown strategy", func(o *options) { o.stratName = "XX-9" }},
		{"missing model dir", func(o *options) { o.modelDir = filepath.Join(dir, "nope") }},
		{"missing swf input", func(o *options) { o.swfPath = filepath.Join(dir, "missing.swf") }},
		{"unwritable trace output", func(o *options) { o.tracePath = filepath.Join(dir, "no", "such", "dir", "t.json") }},
		{"trace with reference loop", func(o *options) { o.tracePath = filepath.Join(dir, "t.json"); o.reference = true }},
		{"bad debug address", func(o *options) { o.debugAddr = "notanaddress:-1" }},
		{"faults with reference loop", func(o *options) { o.mtbf = 5000; o.mttr = 300; o.reference = true }},
		{"missing fault schedule", func(o *options) { o.faultsPath = filepath.Join(dir, "missing.csv") }},
		{"mtbf without mttr", func(o *options) { o.mtbf = 5000 }},
		{"bad checkpoint policy", func(o *options) { o.checkpoint = "sometimes" }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			opt := base
			c.mut(&opt)
			if err := run(opt); err == nil {
				t.Error("run() accepted a broken configuration")
			}
		})
	}
}

// TestRunWritesTraceAndManifest is the CLI acceptance path: a traced run
// must leave a schema-valid Chrome trace file and a manifest carrying
// the metrics and the telemetry snapshot.
func TestRunWritesTraceAndManifest(t *testing.T) {
	dir := modelDir(t)
	tracePath := filepath.Join(t.TempDir(), "out.json")
	opt := options{stratName: "FF-3", servers: 4, seed: 1, vms: 60, modelDir: dir, tracePath: tracePath, backfill: 2}
	if err := run(opt); err != nil {
		t.Fatal(err)
	}
	tf, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	f, err := obs.ReadTraceFile(tf)
	if err != nil {
		t.Fatalf("trace output is not valid Chrome trace JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Error("trace has no events")
	}
	if f.OtherData["tool"] != "pacevm-sim" {
		t.Errorf("otherData = %v", f.OtherData)
	}
	raw, err := os.ReadFile(tracePath + ".manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Command   string `json:"command"`
		Seed      uint64 `json:"seed"`
		Telemetry struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"telemetry"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Command != "pacevm-sim" || m.Seed != 1 {
		t.Errorf("manifest header = %+v", m)
	}
	if m.Telemetry.Counters["sim_events_popped"] == 0 {
		t.Error("manifest telemetry snapshot is empty")
	}
}

// TestRunFaultModes drives run() end to end with fault injection on:
// seeded MTBF/MTTR generation, a stored schedule file, and a budgeted
// PA search with checkpointing. Output formatting is exercised; the
// metrics themselves are pinned by the cloudsim tests.
func TestRunFaultModes(t *testing.T) {
	dir := modelDir(t)
	base := options{stratName: "FF-3", servers: 4, seed: 1, vms: 50, modelDir: dir}

	t.Run("generated schedule", func(t *testing.T) {
		opt := base
		opt.mtbf, opt.mttr = 2000, 200
		if err := run(opt); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("schedule file", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "outages.csv")
		if err := os.WriteFile(path, []byte("server,down_s,up_s\n1,100,400\n2,500,900\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		opt := base
		opt.faultsPath = path
		opt.checkpoint = "periodic:300"
		if err := run(opt); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("budgeted PA search", func(t *testing.T) {
		opt := base
		opt.stratName = "PA-0.5"
		opt.vms = 30
		opt.mtbf, opt.mttr = 2000, 200
		opt.searchBudget = 2
		if err := run(opt); err != nil {
			t.Fatal(err)
		}
	})
}

// Command pacevm-sim runs one datacenter simulation (Sect. IV): a
// placement strategy over a workload trace on a cloud of simulated
// servers, reporting makespan, energy and SLA violations.
//
//	pacevm-sim -strategy PA-0.5 -servers 66
//	pacevm-sim -strategy FF-2 -trace trace.swf
//	pacevm-sim -strategy PA-1 -model ./modeldir   # reuse a stored model
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pacevm/internal/campaign"
	"pacevm/internal/cloudsim"
	"pacevm/internal/core"
	"pacevm/internal/migrate"
	"pacevm/internal/model"
	"pacevm/internal/strategy"
	"pacevm/internal/swf"
	"pacevm/internal/trace"
)

func main() {
	stratName := flag.String("strategy", "PA-0.5", "FF, FF-2, FF-3, BF-n, PA-1, PA-0, PA-0.5 or PA-<alpha>")
	servers := flag.Int("servers", 66, "cloud size")
	seed := flag.Uint64("seed", 42, "random seed for trace generation")
	vms := flag.Int("vms", 10000, "target VM count for a generated trace")
	tracePath := flag.String("trace", "", "SWF trace to replay (default: generate synthetically)")
	modelDir := flag.String("model", "", "directory with model.csv/aux.csv (default: run the campaign in-process)")
	alwaysOn := flag.Bool("always-on", false, "bill 125 W for empty servers instead of powering them off")
	consolidate := flag.Bool("consolidate", false, "enable reactive migration-based consolidation (30 s per move)")
	backfill := flag.Int("backfill", 0, "backfill window depth behind a blocked queue head (0 = strict FCFS)")
	reference := flag.Bool("reference", false, "run the preserved naive simulator instead of the optimized event loop")
	flag.Parse()

	if err := run(*stratName, *servers, *seed, *vms, *tracePath, *modelDir, *alwaysOn, *consolidate, *backfill, *reference); err != nil {
		fmt.Fprintln(os.Stderr, "pacevm-sim:", err)
		os.Exit(1)
	}
}

func run(stratName string, servers int, seed uint64, vms int, tracePath, modelDir string, alwaysOn, consolidate bool, backfill int, reference bool) error {
	db, err := loadModel(modelDir)
	if err != nil {
		return err
	}

	var tr *swf.Trace
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if tr, err = swf.Parse(f); err != nil {
			return err
		}
	} else {
		gcfg := trace.DefaultGenConfig(seed)
		gcfg.Jobs = vms/2 + 200
		if tr, err = trace.Generate(gcfg); err != nil {
			return err
		}
	}
	pcfg := trace.DefaultPrepConfig(seed)
	pcfg.TargetVMs = vms
	reqs, rep, err := trace.Prepare(tr, pcfg)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d requests, %d VMs\n", rep.Requests, rep.TotalVMs)

	st, err := parseStrategy(db, stratName)
	if err != nil {
		return err
	}
	cfg := cloudsim.Config{DB: db, Servers: servers, Strategy: st, IdleServerPower: -1, BackfillDepth: backfill}
	if alwaysOn {
		cfg.IdleServerPower = 125
	}
	if consolidate {
		cfg.Consolidator = &migrate.Planner{DB: db, MigrationCost: 30}
		cfg.MigrationCost = 30
	}
	simulate := cloudsim.Run
	if reference {
		simulate = cloudsim.RunReference
	}
	start := time.Now()
	res, err := simulate(cfg, reqs)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	m := res.Metrics
	fmt.Printf("strategy:     %s on %d servers\n", st.Name(), servers)
	fmt.Printf("makespan:     %v\n", m.Makespan)
	fmt.Printf("energy:       %v\n", m.Energy)
	fmt.Printf("SLA violated: %d/%d VMs (%.1f%%)\n", m.Violations, m.TotalVMs, m.SLAViolationPct())
	fmt.Printf("avg response: %v   avg wait: %v\n", m.AvgResponse, m.AvgWait)
	fmt.Printf("peak active servers: %d\n", m.PeakActiveServers)
	if consolidate {
		fmt.Printf("migrations:   %d (%d servers drained)\n", m.Migrations, m.ServersDrained)
	}
	rate := float64(rep.Requests) / wall.Seconds()
	fmt.Printf("simulated in: %v (%.0f requests/s)\n", wall.Round(time.Millisecond), rate)
	return nil
}

func loadModel(dir string) (*model.DB, error) {
	if dir == "" {
		cfg := campaign.DefaultConfig()
		cfg.FullGridTotal = 16
		db, _, err := campaign.Run(cfg)
		return db, err
	}
	mf, err := os.Open(filepath.Join(dir, "model.csv"))
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	af, err := os.Open(filepath.Join(dir, "aux.csv"))
	if err != nil {
		return nil, err
	}
	defer af.Close()
	return model.ReadCSV(mf, af)
}

func parseStrategy(db *model.DB, name string) (strategy.Strategy, error) {
	switch strings.ToUpper(name) {
	case "FF":
		return strategy.NewFirstFit(1)
	case "FF-2":
		return strategy.NewFirstFit(2)
	case "FF-3":
		return strategy.NewFirstFit(3)
	}
	upper := strings.ToUpper(name)
	if alphaStr, ok := strings.CutPrefix(upper, "PA-"); ok {
		var alpha float64
		if _, err := fmt.Sscanf(alphaStr, "%g", &alpha); err != nil {
			return nil, fmt.Errorf("bad PA alpha %q: %w", alphaStr, err)
		}
		if alpha < 0 || alpha > 1 {
			return nil, fmt.Errorf("PA alpha %g out of [0,1]", alpha)
		}
		return strategy.NewProactive(db, core.Goal{Alpha: alpha}, 0)
	}
	if nStr, ok := strings.CutPrefix(upper, "BF-"); ok {
		var n int
		if _, err := fmt.Sscanf(nStr, "%d", &n); err != nil {
			return nil, fmt.Errorf("bad BF multiplex %q: %w", nStr, err)
		}
		return &strategy.BestFit{Multiplex: n}, nil
	}
	return nil, fmt.Errorf("unknown strategy %q", name)
}

// Command pacevm-sim runs one datacenter simulation (Sect. IV): a
// placement strategy over a workload trace on a cloud of simulated
// servers, reporting makespan, energy and SLA violations.
//
//	pacevm-sim -strategy PA-0.5 -servers 66
//	pacevm-sim -strategy FF-2 -swf trace.swf
//	pacevm-sim -strategy PA-1 -model ./modeldir   # reuse a stored model
//	pacevm-sim -strategy FF-3 -trace out.json -debug-addr :6060
//	pacevm-sim -strategy PA-0.5 -mtbf 86400 -mttr 600 -checkpoint periodic:900
//	pacevm-sim -strategy PA-1 -faults outages.csv -search-budget 5000
//	pacevm-sim -strategy PA-0.5 -vm-audit audit.csv -series series.csv
//	pacevm-sim -strategy FF-3 -servers 1000 -shards 8
//	pacevm-sim -strategy PA-0.5 -decision-log decisions.jsonl -watchdog 4096
//
// With -trace the run is recorded as Chrome trace-event JSON over
// simulated time (load it at https://ui.perfetto.dev), alongside a
// <out>.manifest.json run manifest listing every sibling artifact;
// with -shards the per-shard streams are merged onto one timeline with
// the coordinator's windows and steals as their own process. -vm-audit
// exports one lifecycle span per VM attempt (wait, service, stretch,
// requeue chain, deadline-miss attribution) and -series the fleet
// power/occupancy time series, both as CSV; -debug-addr serves
// net/http/pprof, expvar (including the live metrics registry) and the
// /debug/dash live HTML dashboard while the simulation runs.
//
// With -decision-log every admit/route/place/reject/steal/requeue/
// migrate decision is appended to a JSONL flight-recorder log —
// candidate counts, rejection reasons, search statistics, chosen
// servers — which cmd/pacevm-explain replays to reconstruct any VM's
// placement chain. With -watchdog N the online invariant watchdog
// re-derives energy integrals, work conservation and capacity sums
// every N events; violations are reported after the run (and on
// /debug/dash) and the process exits non-zero if any fired.
//
// With -mtbf (seeded generation) or -faults (a stored schedule) servers
// crash and recover during the run: resident VMs are killed — losing
// work per the -checkpoint policy — and re-queued, and the report gains
// availability and goodput lines. -search-budget bounds the PA
// allocation search, degrading to first-fit when exhausted.
//
// With -shards N the fleet is partitioned into N contiguous server
// groups simulated in parallel and merged deterministically at windowed
// barriers (see cloudsim.RunSharded for the protocol and its documented
// relaxations of global FCFS); -shard-window tunes the simulated-time
// window between barriers, and -steal lets a shard hand a provably
// stuck queue head to a shard with proven free capacity at a barrier.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"pacevm/internal/campaign"
	"pacevm/internal/cloudsim"
	"pacevm/internal/core"
	"pacevm/internal/faults"
	"pacevm/internal/migrate"
	"pacevm/internal/model"
	"pacevm/internal/obs"
	"pacevm/internal/strategy"
	"pacevm/internal/swf"
	"pacevm/internal/trace"
	"pacevm/internal/units"
)

// options collects the CLI surface; one run() argument instead of a
// dozen positional parameters.
type options struct {
	stratName   string
	servers     int
	seed        uint64
	vms         int
	swfPath     string
	modelDir    string
	tracePath   string
	debugAddr   string
	alwaysOn    bool
	consolidate bool
	backfill    int
	reference   bool

	mtbf         float64
	mttr         float64
	faultsPath   string
	checkpoint   string
	searchBudget int

	vmAuditPath string
	seriesPath  string
	seriesCap   int

	decisionLog   string
	watchdogEvery int

	shards      int
	steal       bool
	shardWindow float64
	windowSet   bool // -shard-window given explicitly (flag.Visit)
}

func main() {
	var opt options
	flag.StringVar(&opt.stratName, "strategy", "PA-0.5", "FF, FF-2, FF-3, BF-n, PA-1, PA-0, PA-0.5 or PA-<alpha>")
	flag.IntVar(&opt.servers, "servers", 66, "cloud size")
	flag.Uint64Var(&opt.seed, "seed", 42, "random seed for trace generation")
	flag.IntVar(&opt.vms, "vms", 10000, "target VM count for a generated trace")
	flag.StringVar(&opt.swfPath, "swf", "", "SWF trace to replay (default: generate synthetically)")
	flag.StringVar(&opt.modelDir, "model", "", "directory with model.csv/aux.csv (default: run the campaign in-process)")
	flag.StringVar(&opt.tracePath, "trace", "", "write a Chrome trace-event JSON timeline of the run (plus <path>.manifest.json)")
	flag.StringVar(&opt.debugAddr, "debug-addr", "", "serve /debug/pprof, /debug/vars and the /debug/dash dashboard on this address (e.g. :6060)")
	flag.BoolVar(&opt.alwaysOn, "always-on", false, "bill 125 W for empty servers instead of powering them off")
	flag.BoolVar(&opt.consolidate, "consolidate", false, "enable reactive migration-based consolidation (30 s per move)")
	flag.IntVar(&opt.backfill, "backfill", 0, "backfill window depth behind a blocked queue head (0 = strict FCFS)")
	flag.BoolVar(&opt.reference, "reference", false, "run the preserved naive simulator instead of the optimized event loop")
	flag.Float64Var(&opt.mtbf, "mtbf", 0, "mean seconds between failures per server; 0 disables fault injection")
	flag.Float64Var(&opt.mttr, "mttr", 300, "mean outage seconds per failure (used with -mtbf)")
	flag.StringVar(&opt.faultsPath, "faults", "", "fault schedule CSV to replay (server,down_s,up_s header); overrides -mtbf")
	flag.StringVar(&opt.checkpoint, "checkpoint", "restart", `checkpoint policy for VMs killed by a crash: "restart" or "periodic:<seconds>"`)
	flag.IntVar(&opt.searchBudget, "search-budget", 0, "cap on scored candidate placements per PA allocation, degrading to first-fit when exhausted; 0 = unlimited")
	flag.StringVar(&opt.vmAuditPath, "vm-audit", "", "write the per-attempt VM lifecycle audit as CSV (submit/place/finish spans with wait, stretch and deadline-miss attribution)")
	flag.StringVar(&opt.seriesPath, "series", "", "write the fleet power/occupancy time series as CSV (one row per sampled accounting interval)")
	flag.IntVar(&opt.seriesCap, "series-cap", 0, "bound on retained series samples before deterministic downsampling halves resolution; 0 = default 4096")
	flag.StringVar(&opt.decisionLog, "decision-log", "", "write the placement decision flight-recorder log as JSONL (replay with pacevm-explain)")
	flag.IntVar(&opt.watchdogEvery, "watchdog", 0, "run the online invariant watchdog every N events (0 = off)")
	flag.IntVar(&opt.shards, "shards", 1, "partition the fleet into this many shards simulated in parallel (deterministic; 1 = the single event loop)")
	flag.Float64Var(&opt.shardWindow, "shard-window", 0, "simulated seconds per parallel window between shard barriers; 0 = auto from the arrival span")
	flag.BoolVar(&opt.steal, "steal", false, "with -shards: hand a provably stuck queue head to a shard with proven capacity at each barrier (relaxes per-shard FCFS)")
	flag.Parse()
	// Distinguish an explicit -shard-window 0 (an error: a zero-length
	// window cannot advance) from the unset default (auto sizing).
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shard-window" {
			opt.windowSet = true
		}
	})

	if err := run(opt); err != nil {
		fmt.Fprintln(os.Stderr, "pacevm-sim:", err)
		os.Exit(1)
	}
}

func run(opt options) error {
	if opt.reference && opt.tracePath != "" {
		return fmt.Errorf("-trace needs the optimized simulator; drop -reference (the reference loop carries no telemetry hooks)")
	}
	if opt.reference && (opt.faultsPath != "" || opt.mtbf > 0) {
		return fmt.Errorf("fault injection needs the optimized simulator; drop -reference")
	}
	if opt.reference && (opt.vmAuditPath != "" || opt.seriesPath != "") {
		return fmt.Errorf("-vm-audit/-series need the optimized simulator; drop -reference (the reference loop carries no observation hooks)")
	}
	if opt.reference && (opt.decisionLog != "" || opt.watchdogEvery != 0) {
		return fmt.Errorf("-decision-log/-watchdog need the optimized simulator; drop -reference (the reference loop carries no observation hooks)")
	}
	if opt.seriesCap < 0 {
		return fmt.Errorf("-series-cap %d must be non-negative", opt.seriesCap)
	}
	// The zero value means "unset" (options built in tests); the flag
	// default is 1.
	if opt.shards < 0 {
		return fmt.Errorf("-shards %d must be at least 1", opt.shards)
	}
	if opt.shardWindow < 0 || (opt.windowSet && opt.shardWindow <= 0) {
		return fmt.Errorf("-shard-window %g must be positive; omit the flag for auto sizing from the arrival span", opt.shardWindow)
	}
	if opt.watchdogEvery < 0 {
		return fmt.Errorf("-watchdog %d must be non-negative (0 = off)", opt.watchdogEvery)
	}
	if opt.shards > 1 && opt.reference {
		return fmt.Errorf("-shards needs the optimized simulator; drop -reference")
	}
	if opt.steal && opt.shards <= 1 {
		return fmt.Errorf("-steal needs -shards > 1; a single shard has nowhere to hand work off")
	}
	checkpoint, err := parseCheckpoint(opt.checkpoint)
	if err != nil {
		return err
	}

	var reg *obs.Registry
	if opt.tracePath != "" || opt.debugAddr != "" || opt.searchBudget > 0 ||
		opt.decisionLog != "" || opt.watchdogEvery != 0 {
		reg = obs.NewRegistry()
	}
	// The sampler feeds both the -series CSV and the live dashboard, so a
	// debug server alone is enough to turn it on.
	var sampler *cloudsim.FleetSampler
	if opt.seriesPath != "" || opt.debugAddr != "" {
		sampler = cloudsim.NewFleetSampler(opt.seriesCap)
	}
	var wd *obs.Watchdog
	if opt.watchdogEvery != 0 {
		wd = obs.NewWatchdog(opt.watchdogEvery)
	}
	if opt.debugAddr != "" {
		ds, err := obs.ServeDebug(opt.debugAddr, reg)
		if err != nil {
			return err
		}
		defer ds.Close()
		ds.AddSeries(sampler.Series)
		ds.AddWatchdog(wd)
		fmt.Printf("debug server: http://%s/debug/dash (also /debug/pprof/ and /debug/vars)\n", ds.Addr())
	}

	db, err := loadModel(opt.modelDir)
	if err != nil {
		return err
	}

	var tr *swf.Trace
	if opt.swfPath != "" {
		f, err := os.Open(opt.swfPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if tr, err = swf.Parse(f); err != nil {
			return err
		}
	} else {
		gcfg := trace.DefaultGenConfig(opt.seed)
		gcfg.Jobs = opt.vms/2 + 200
		if tr, err = trace.Generate(gcfg); err != nil {
			return err
		}
	}
	pcfg := trace.DefaultPrepConfig(opt.seed)
	pcfg.TargetVMs = opt.vms
	reqs, rep, err := trace.Prepare(tr, pcfg)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d requests, %d VMs\n", rep.Requests, rep.TotalVMs)

	st, err := parseStrategy(db, opt.stratName, opt.searchBudget, reg)
	if err != nil {
		return err
	}
	cfg := cloudsim.Config{DB: db, Servers: opt.servers, Strategy: st, IdleServerPower: -1, BackfillDepth: opt.backfill, Obs: reg}
	if opt.alwaysOn {
		cfg.IdleServerPower = 125
	}
	if opt.consolidate {
		cfg.Consolidator = &migrate.Planner{DB: db, MigrationCost: 30}
		cfg.MigrationCost = 30
	}
	if cfg.Faults, err = loadFaults(opt, reqs); err != nil {
		return err
	}
	if len(cfg.Faults) > 0 {
		cfg.Checkpoint = checkpoint
		fmt.Printf("faults: %d scheduled outages (checkpoint %s)\n", len(cfg.Faults), checkpoint.Name())
	}
	if opt.tracePath != "" {
		cfg.Tracer = obs.NewTracer()
	}
	cfg.Sampler = sampler
	if opt.vmAuditPath != "" {
		cfg.Audit = cloudsim.NewVMAudit()
	}
	if opt.decisionLog != "" {
		cfg.Recorder = cloudsim.NewDecisionRecorder()
	}
	cfg.Watchdog = wd
	simulate := cloudsim.Run
	if opt.reference {
		simulate = cloudsim.RunReference
	}
	if opt.shards > 1 {
		sc := cloudsim.ShardConfig{Shards: opt.shards, Window: units.Seconds(opt.shardWindow), Steal: opt.steal}
		simulate = func(cfg cloudsim.Config, reqs []trace.Request) (cloudsim.Result, error) {
			return cloudsim.RunSharded(cfg, reqs, sc)
		}
	}
	start := time.Now()
	res, err := simulate(cfg, reqs)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	m := res.Metrics
	fmt.Printf("strategy:     %s on %d servers\n", st.Name(), opt.servers)
	if opt.shards > 1 {
		fmt.Printf("shards:       %d\n", opt.shards)
	}
	fmt.Printf("makespan:     %v\n", m.Makespan)
	fmt.Printf("energy:       %v\n", m.Energy)
	fmt.Printf("SLA violated: %d/%d VMs (%.1f%%)\n", m.Violations, m.TotalVMs, m.SLAViolationPct())
	fmt.Printf("avg response: %v   avg wait: %v\n", m.AvgResponse, m.AvgWait)
	fmt.Printf("peak active servers: %d\n", m.PeakActiveServers)
	if opt.consolidate {
		fmt.Printf("migrations:   %d (%d servers drained)\n", m.Migrations, m.ServersDrained)
	}
	if len(cfg.Faults) > 0 {
		fmt.Printf("faults:       %d injected, %d VMs killed, %d re-queued\n", m.FaultsInjected, m.VMsKilled, m.Requeues)
		fmt.Printf("work lost:    %v   goodput: %.2f%%\n", m.WorkLost, m.GoodputPct())
		fmt.Printf("availability: %.2f%% (%.0f server-seconds down)\n", m.AvailabilityPct(opt.servers), m.DownServerSeconds)
	}
	if opt.searchBudget > 0 {
		snap := reg.Snapshot()
		fmt.Printf("search budget: %d candidates/allocation (exhausted %d times, %d first-fit degradations)\n",
			opt.searchBudget, snap.Counters["search_budget_exhausted"], snap.Counters["search_degraded_firstfit"])
	}
	rate := float64(rep.Requests) / wall.Seconds()
	fmt.Printf("simulated in: %v (%.0f requests/s)\n", wall.Round(time.Millisecond), rate)

	if opt.vmAuditPath != "" {
		if err := writeCSVFile(opt.vmAuditPath, cfg.Audit.WriteCSV); err != nil {
			return err
		}
		fmt.Printf("vm audit: %d spans -> %s\n", cfg.Audit.Len(), opt.vmAuditPath)
	}
	if opt.seriesPath != "" {
		if err := writeCSVFile(opt.seriesPath, sampler.WriteCSV); err != nil {
			return err
		}
		fmt.Printf("series: %d samples (stride %d) -> %s\n", sampler.Len(), sampler.Stride(), opt.seriesPath)
	}
	if opt.decisionLog != "" {
		if err := writeCSVFile(opt.decisionLog, cfg.Recorder.WriteJSONL); err != nil {
			return err
		}
		fmt.Printf("decision log: %d records -> %s (replay with pacevm-explain)\n", cfg.Recorder.Len(), opt.decisionLog)
	}
	if wd != nil {
		viols := wd.Violations()
		snap := reg.Snapshot()
		fmt.Printf("watchdog:     %d invariant checks, %d violations\n",
			snap.Counters["sim_invariant_checks_total"], len(viols))
		for _, v := range viols {
			fmt.Fprintln(os.Stderr, "pacevm-sim: invariant violation:", v)
		}
	}
	if opt.tracePath != "" {
		if err := writeTrace(opt, cfg.Tracer, reg, m, wall); err != nil {
			return err
		}
	}
	if wd != nil && len(wd.Violations()) > 0 {
		return fmt.Errorf("%d invariant violations (see above)", len(wd.Violations()))
	}
	return nil
}

// writeCSVFile creates path and streams one of the CSV exporters into it.
func writeCSVFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTrace dumps the Chrome trace timeline to opt.tracePath and a run
// manifest (flags, seed, metrics, telemetry snapshot, wall clock) next
// to it.
func writeTrace(opt options, tr *obs.Tracer, reg *obs.Registry, m cloudsim.Metrics, wall time.Duration) error {
	tf, err := os.Create(opt.tracePath)
	if err != nil {
		return err
	}
	other := map[string]any{"tool": "pacevm-sim", "strategy": opt.stratName, "servers": opt.servers}
	if err := tr.WriteTo(tf, other); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	fmt.Printf("trace: %d events -> %s (load at https://ui.perfetto.dev)\n", tr.Len(), opt.tracePath)

	manifestPath := opt.tracePath + ".manifest.json"
	mf, err := os.Create(manifestPath)
	if err != nil {
		return err
	}
	artifacts := map[string]string{"trace": opt.tracePath}
	if opt.vmAuditPath != "" {
		artifacts["vm_audit"] = opt.vmAuditPath
	}
	if opt.seriesPath != "" {
		artifacts["series"] = opt.seriesPath
	}
	if opt.decisionLog != "" {
		artifacts["decision_log"] = opt.decisionLog
	}
	manifest := obs.Manifest{
		Command: "pacevm-sim",
		Config: map[string]any{
			"strategy": opt.stratName, "servers": opt.servers, "vms": opt.vms,
			"swf": opt.swfPath, "model": opt.modelDir, "backfill": opt.backfill,
			"always_on": opt.alwaysOn, "consolidate": opt.consolidate,
			"mtbf": opt.mtbf, "mttr": opt.mttr, "faults": opt.faultsPath,
			"checkpoint": opt.checkpoint, "search_budget": opt.searchBudget,
			"shards": opt.shards, "steal": opt.steal, "shard_window": opt.shardWindow,
			"watchdog": opt.watchdogEvery,
		},
		Seed:             opt.seed,
		WallClockSeconds: wall.Seconds(),
		Metrics:          m,
		Artifacts:        artifacts,
		Telemetry:        reg.Snapshot(),
	}
	if err := obs.WriteManifest(mf, manifest); err != nil {
		mf.Close()
		return err
	}
	if err := mf.Close(); err != nil {
		return err
	}
	fmt.Printf("manifest: %s\n", manifestPath)
	return nil
}

func loadModel(dir string) (*model.DB, error) {
	if dir == "" {
		cfg := campaign.DefaultConfig()
		cfg.FullGridTotal = 16
		db, _, err := campaign.Run(cfg)
		return db, err
	}
	mf, err := os.Open(filepath.Join(dir, "model.csv"))
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	af, err := os.Open(filepath.Join(dir, "aux.csv"))
	if err != nil {
		return nil, err
	}
	defer af.Close()
	return model.ReadCSV(mf, af)
}

// loadFaults resolves the fault schedule: an explicit CSV wins, else a
// seeded MTBF/MTTR process over the trace's arrival span, else none.
func loadFaults(opt options, reqs []trace.Request) (faults.Schedule, error) {
	if opt.faultsPath != "" {
		f, err := os.Open(opt.faultsPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return faults.ReadSchedule(f)
	}
	if opt.mtbf <= 0 {
		return nil, nil
	}
	var horizon units.Seconds
	for _, r := range reqs {
		if r.Submit > horizon {
			horizon = r.Submit
		}
	}
	if horizon <= 0 {
		horizon = 1 // all arrivals at t=0: still expose the fleet to faults
	}
	return faults.Generate(faults.GenConfig{
		Seed:    opt.seed,
		Servers: opt.servers,
		MTBF:    units.Seconds(opt.mtbf),
		MTTR:    units.Seconds(opt.mttr),
		Horizon: horizon,
	})
}

func parseCheckpoint(s string) (faults.CheckpointPolicy, error) {
	if s == "" || s == "restart" {
		return faults.Restart{}, nil
	}
	if rest, ok := strings.CutPrefix(s, "periodic:"); ok {
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return nil, fmt.Errorf("bad checkpoint interval %q: %w", rest, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("checkpoint interval %g must be positive", v)
		}
		return faults.Periodic{Interval: units.Seconds(v)}, nil
	}
	return nil, fmt.Errorf("unknown checkpoint policy %q (want restart or periodic:<seconds>)", s)
}

func parseStrategy(db *model.DB, name string, searchBudget int, reg *obs.Registry) (strategy.Strategy, error) {
	switch strings.ToUpper(name) {
	case "FF":
		return strategy.NewFirstFit(1)
	case "FF-2":
		return strategy.NewFirstFit(2)
	case "FF-3":
		return strategy.NewFirstFit(3)
	}
	upper := strings.ToUpper(name)
	if alphaStr, ok := strings.CutPrefix(upper, "PA-"); ok {
		var alpha float64
		if _, err := fmt.Sscanf(alphaStr, "%g", &alpha); err != nil {
			return nil, fmt.Errorf("bad PA alpha %q: %w", alphaStr, err)
		}
		if alpha < 0 || alpha > 1 {
			return nil, fmt.Errorf("PA alpha %g out of [0,1]", alpha)
		}
		return strategy.NewProactiveConfig(core.Config{DB: db, SearchBudget: searchBudget, Obs: reg}, core.Goal{Alpha: alpha})
	}
	if nStr, ok := strings.CutPrefix(upper, "BF-"); ok {
		var n int
		if _, err := fmt.Sscanf(nStr, "%d", &n); err != nil {
			return nil, fmt.Errorf("bad BF multiplex %q: %w", nStr, err)
		}
		return &strategy.BestFit{Multiplex: n}, nil
	}
	return nil, fmt.Errorf("unknown strategy %q", name)
}

// Command pacevm-benchdiff compares two benchmark documents recorded by
// pacevm-benchjson and fails when throughput regressed beyond a bound:
//
//	pacevm-benchdiff -max-regress 10 old/BENCH_sim.json BENCH_sim.json
//
// Entries are matched by (name, gomaxprocs, shards) — the same key
// pacevm-benchjson folds samples under, so a result measured at 8
// shards is never compared against its monolithic sibling. The delta is
// on ns/op: a positive delta is a slowdown, and any entry slower by
// more than -max-regress percent fails the run (listing every offender,
// not just the first). With -advisory the offenders are still printed
// but the exit status stays zero — the mode `make bench-diff` uses
// inside verify, where the committed baseline may have been recorded on
// different hardware.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// doc mirrors the pacevm-benchjson Report; only the compared fields are
// declared (unknown JSON keys are ignored, keeping the two commands
// decoupled).
type doc struct {
	CPU        string `json:"cpu,omitempty"`
	Provenance *struct {
		GitCommit string `json:"git_commit,omitempty"`
		GoVersion string `json:"go_version,omitempty"`
		Host      string `json:"host,omitempty"`
	} `json:"provenance,omitempty"`
	Benchmarks []bench `json:"benchmarks"`
}

type bench struct {
	Name       string  `json:"name"`
	Gomaxprocs int     `json:"gomaxprocs"`
	Shards     int     `json:"shards,omitempty"`
	Samples    int     `json:"samples"`
	NsPerOp    float64 `json:"ns_per_op"`
}

type key struct {
	name          string
	procs, shards int
}

func (k key) String() string {
	s := k.name
	if k.procs > 1 {
		s += fmt.Sprintf("-%d", k.procs)
	}
	if k.shards > 0 {
		s += fmt.Sprintf(" [%d shards]", k.shards)
	}
	return s
}

func load(path string) (doc, error) {
	var d doc
	data, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(data, &d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	if len(d.Benchmarks) == 0 {
		return d, fmt.Errorf("%s: no benchmarks", path)
	}
	return d, nil
}

func index(d doc) map[key]bench {
	m := make(map[key]bench, len(d.Benchmarks))
	for _, b := range d.Benchmarks {
		m[key{b.Name, b.Gomaxprocs, b.Shards}] = b
	}
	return m
}

func provLine(d doc) string {
	if d.Provenance == nil {
		return "(no provenance)"
	}
	p := d.Provenance
	commit := p.GitCommit
	if len(commit) > 12 {
		commit = commit[:12]
	}
	return fmt.Sprintf("commit %s, %s on %s", commit, p.GoVersion, p.Host)
}

func run(oldPath, newPath string, maxRegress float64, advisory bool, w io.Writer) error {
	if maxRegress <= 0 {
		return fmt.Errorf("-max-regress %g must be a positive percentage", maxRegress)
	}
	oldDoc, err := load(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := load(newPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "old: %s — %s\n", oldPath, provLine(oldDoc))
	fmt.Fprintf(w, "new: %s — %s\n", newPath, provLine(newDoc))

	oldIx, newIx := index(oldDoc), index(newDoc)
	keys := make([]key, 0, len(oldIx))
	for k := range oldIx {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })

	var regressions []string
	for _, k := range keys {
		ob := oldIx[k]
		nb, ok := newIx[k]
		if !ok {
			fmt.Fprintf(w, "%-50s only in old\n", k)
			continue
		}
		delta := (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100
		fmt.Fprintf(w, "%-50s %14.0f -> %14.0f ns/op  %+6.1f%%\n", k, ob.NsPerOp, nb.NsPerOp, delta)
		if delta > maxRegress {
			regressions = append(regressions,
				fmt.Sprintf("%s slowed %.1f%% (%.0f -> %.0f ns/op, limit %g%%)", k, delta, ob.NsPerOp, nb.NsPerOp, maxRegress))
		}
	}
	for k := range newIx {
		if _, ok := oldIx[k]; !ok {
			fmt.Fprintf(w, "%-50s only in new\n", k)
		}
	}

	if len(regressions) == 0 {
		fmt.Fprintf(w, "no regression beyond %g%%\n", maxRegress)
		return nil
	}
	for _, r := range regressions {
		fmt.Fprintln(w, "REGRESSION:", r)
	}
	if advisory {
		fmt.Fprintf(w, "advisory mode: %d regressions reported, exit 0\n", len(regressions))
		return nil
	}
	return fmt.Errorf("%d benchmarks regressed beyond %g%%", len(regressions), maxRegress)
}

func main() {
	maxRegress := flag.Float64("max-regress", 10, "fail when ns/op grew by more than this percent")
	advisory := flag.Bool("advisory", false, "report regressions but exit 0 (for baselines from unlike hardware)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: pacevm-benchdiff [-max-regress pct] [-advisory] old.json new.json")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1), *maxRegress, *advisory, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pacevm-benchdiff:", err)
		os.Exit(1)
	}
}

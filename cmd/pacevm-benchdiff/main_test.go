package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeDoc marshals a doc to a temp file and returns its path.
func writeDoc(t *testing.T, name string, d doc) string {
	t.Helper()
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func twoDocs(t *testing.T, oldNs, newNs float64) (string, string) {
	t.Helper()
	oldPath := writeDoc(t, "old.json", doc{Benchmarks: []bench{
		{Name: "BenchmarkSimLarge", Gomaxprocs: 1, NsPerOp: oldNs},
		{Name: "BenchmarkSimLarge", Gomaxprocs: 8, Shards: 8, NsPerOp: 4e8},
	}})
	newPath := writeDoc(t, "new.json", doc{Benchmarks: []bench{
		{Name: "BenchmarkSimLarge", Gomaxprocs: 1, NsPerOp: newNs},
		{Name: "BenchmarkSimLarge", Gomaxprocs: 8, Shards: 8, NsPerOp: 4e8},
	}})
	return oldPath, newPath
}

func TestDiffWithinBound(t *testing.T) {
	oldPath, newPath := twoDocs(t, 1e9, 1.05e9) // +5%
	var out strings.Builder
	if err := run(oldPath, newPath, 10, false, &out); err != nil {
		t.Fatalf("5%% slowdown under a 10%% bound failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no regression beyond 10%") {
		t.Errorf("missing pass line:\n%s", out.String())
	}
}

func TestDiffRegressionFails(t *testing.T) {
	oldPath, newPath := twoDocs(t, 1e9, 1.5e9) // +50%
	var out strings.Builder
	err := run(oldPath, newPath, 10, false, &out)
	if err == nil {
		t.Fatalf("50%% slowdown under a 10%% bound passed:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "regressed beyond 10%") {
		t.Errorf("error %q does not name the bound", err)
	}
	if !strings.Contains(out.String(), "REGRESSION: BenchmarkSimLarge slowed 50.0%") {
		t.Errorf("missing regression line:\n%s", out.String())
	}
}

// A regression in advisory mode is printed but does not fail the run —
// the wiring `make verify` uses, where the committed baseline may come
// from different hardware.
func TestDiffAdvisoryExitsClean(t *testing.T) {
	oldPath, newPath := twoDocs(t, 1e9, 2e9)
	var out strings.Builder
	if err := run(oldPath, newPath, 10, true, &out); err != nil {
		t.Fatalf("advisory mode failed: %v", err)
	}
	if !strings.Contains(out.String(), "advisory mode: 1 regressions reported") {
		t.Errorf("missing advisory note:\n%s", out.String())
	}
}

// Parallelism is part of the match key: a sharded result never compares
// against a monolithic one, and an unmatched entry is reported, not
// diffed.
func TestDiffMatchesOnParallelism(t *testing.T) {
	oldPath := writeDoc(t, "old.json", doc{Benchmarks: []bench{
		{Name: "BenchmarkSimLarge", Gomaxprocs: 8, Shards: 8, NsPerOp: 1e8},
	}})
	newPath := writeDoc(t, "new.json", doc{Benchmarks: []bench{
		{Name: "BenchmarkSimLarge", Gomaxprocs: 1, NsPerOp: 9e9},
	}})
	var out strings.Builder
	if err := run(oldPath, newPath, 10, false, &out); err != nil {
		t.Fatalf("disjoint keys must not regress: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "only in old") || !strings.Contains(out.String(), "only in new") {
		t.Errorf("unmatched entries not reported:\n%s", out.String())
	}
}

func TestDiffErrors(t *testing.T) {
	oldPath, newPath := twoDocs(t, 1, 1)
	var out strings.Builder
	if err := run(filepath.Join(t.TempDir(), "missing.json"), newPath, 10, false, &out); err == nil {
		t.Error("missing old file accepted")
	}
	if err := run(oldPath, newPath, 0, false, &out); err == nil {
		t.Error("non-positive -max-regress accepted")
	}
	empty := writeDoc(t, "empty.json", doc{})
	if err := run(oldPath, empty, 10, false, &out); err == nil || !strings.Contains(err.Error(), "no benchmarks") {
		t.Errorf("empty document error = %v", err)
	}
}

// Package pacevm is a pure-Go reproduction of "Energy-Aware
// Application-Centric VM Allocation for HPC Workloads" (Viswanathan,
// Lee, Rodero, Pompili, Parashar, Gamell — IPPS 2011).
//
// PACE-VM implements the paper's proactive, application-centric,
// energy-aware VM allocation algorithm together with every substrate it
// depends on: a simulated testbed (server hardware, Xen-like hypervisor,
// wall-power meter), the HPC benchmark suite and profiling toolchain,
// the empirical benchmarking campaign and its model database, the
// Orlov-style set-partition search, the SWF workload-trace pipeline, and
// the datacenter discrete-event simulator behind the paper's evaluation.
//
// Start with DESIGN.md for the architecture and the per-experiment
// index, EXPERIMENTS.md for measured-vs-paper results, and
// examples/quickstart for a minimal end-to-end use of the allocator.
// The benchmarks in this directory regenerate every table and figure of
// the paper; cmd/pacevm-paperfigs renders them.
package pacevm

package obs

import (
	"math"
	"reflect"
	"testing"
)

// shuffled returns 1..n in a deterministic LCG-shuffled order, so the
// digest sees an adversarially unsorted but reproducible stream.
func shuffled(n int) []float64 {
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = float64(i + 1)
	}
	state := uint64(0x9E3779B97F4A7C15)
	for i := n - 1; i > 0; i-- {
		state = state*6364136223846793005 + 1442695040888963407
		j := int(state % uint64(i+1))
		vs[i], vs[j] = vs[j], vs[i]
	}
	return vs
}

func TestQuantileAccuracy(t *testing.T) {
	const n = 100_000
	q := NewQuantile()
	for _, v := range shuffled(n) {
		q.Observe(v)
	}
	if q.Count() != n {
		t.Fatalf("Count = %d, want %d", q.Count(), n)
	}
	if q.Min() != 1 || q.Max() != n {
		t.Errorf("extremes = (%g, %g), want (1, %d) exactly", q.Min(), q.Max(), n)
	}
	// Rank error is bounded by ~1/quantileCentroids of total weight;
	// allow 2x slack over the nominal bound.
	tol := 2 * float64(n) / quantileCentroids
	for _, c := range []struct{ p, want float64 }{
		{0.50, n * 0.50}, {0.90, n * 0.90}, {0.99, n * 0.99},
	} {
		got := q.Quantile(c.p)
		if math.Abs(got-c.want) > tol {
			t.Errorf("Quantile(%g) = %g, want %g ± %g", c.p, got, c.want, tol)
		}
	}
	if got := q.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %g, want exact min 1", got)
	}
	if got := q.Quantile(1); got != n {
		t.Errorf("Quantile(1) = %g, want exact max %d", got, n)
	}
}

func TestQuantileBoundedSize(t *testing.T) {
	q := NewQuantile()
	for _, v := range shuffled(500_000) {
		q.Observe(v)
	}
	q.mu.Lock()
	size := len(q.cs) + len(q.buf)
	q.mu.Unlock()
	if size > quantileCentroids+quantileBuffer {
		t.Errorf("digest holds %d entries, want <= %d", size, quantileCentroids+quantileBuffer)
	}
}

func TestQuantileDeterministic(t *testing.T) {
	mk := func() QuantileSnapshot {
		q := NewQuantile()
		for _, v := range shuffled(20_000) {
			q.Observe(v)
		}
		return q.Snapshot()
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same stream produced different snapshots:\n%+v\n%+v", a, b)
	}
}

func TestQuantileSmallStreams(t *testing.T) {
	q := NewQuantile()
	if s := q.Snapshot(); s != (QuantileSnapshot{}) {
		t.Errorf("empty digest snapshot = %+v, want zero", s)
	}
	q.Observe(7)
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := q.Quantile(p); got != 7 {
			t.Errorf("single-observation Quantile(%g) = %g, want 7", p, got)
		}
	}
	q.Observe(9)
	if got := q.Quantile(0.5); got < 7 || got > 9 {
		t.Errorf("two-observation median %g outside [7, 9]", got)
	}
	q.Observe(math.NaN()) // ignored
	if q.Count() != 2 {
		t.Errorf("NaN observation counted: Count = %d", q.Count())
	}
}

func TestQuantileNilSafe(t *testing.T) {
	var q *Quantile
	q.Observe(1) // must not panic
	if q.Count() != 0 || q.Quantile(0.5) != 0 || q.Min() != 0 || q.Max() != 0 {
		t.Error("nil digest reported non-zero state")
	}
	if s := q.Snapshot(); s != (QuantileSnapshot{}) {
		t.Errorf("nil digest snapshot = %+v, want zero", s)
	}
}

func TestRegistryQuantile(t *testing.T) {
	reg := NewRegistry()
	q := reg.Quantile("wait")
	if q == nil {
		t.Fatal("registry handed out a nil digest")
	}
	if reg.Quantile("wait") != q {
		t.Error("re-registration returned a different handle")
	}
	for i := 1; i <= 100; i++ {
		q.Observe(float64(i))
	}
	snap := reg.Snapshot()
	qs, ok := snap.Quantiles["wait"]
	if !ok {
		t.Fatalf("snapshot missing quantile section: %+v", snap)
	}
	if qs.Count != 100 || qs.Min != 1 || qs.Max != 100 {
		t.Errorf("snapshot = %+v", qs)
	}
	if qs.P50 < 40 || qs.P50 > 60 || qs.P99 < 90 {
		t.Errorf("snapshot percentiles off: %+v", qs)
	}

	var nilReg *Registry
	if nilReg.Quantile("wait") != nil {
		t.Error("nil registry must hand out nil digests")
	}
}

func TestSortedNames(t *testing.T) {
	m := map[string]int64{"b": 1, "a": 2, "c": 3}
	if got := SortedNames(m); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("SortedNames = %v", got)
	}
}

package obs

// Prometheus text exposition (format version 0.0.4) over a Registry
// snapshot — one renderer shared by pacevm-serve's /metrics and the
// sim debug server. The registry is a flat name -> instrument map;
// labeled series encode their labels in the registered name
// (`base{key="value",...}`, built with SeriesName), and the renderer
// groups series of one base name under a single HELP/TYPE pair:
//
//	counters    -> TYPE counter,   one sample per series
//	gauges      -> TYPE gauge,     one sample per series
//	histograms  -> TYPE histogram, cumulative `_bucket{le="..."}` plus
//	               the `+Inf` bucket, `_sum` and `_count`
//	quantiles   -> TYPE summary,   `{quantile="0.5|0.9|0.99"}` series
//	               plus `_count` (the digest carries no sum), with the
//	               exact min/max as `_min`/`_max` gauge families
//
// Names are sanitized to the metric-name charset and label values are
// escaped per the format (backslash, double-quote, newline), so no
// registry content can corrupt the exposition. ValidateExposition is
// the matching machine-check used by the golden tests and the
// metrics-smoke gate.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// SeriesName builds a labeled registry name: base{k1="v1",k2="v2"}.
// Pairs are given as k1, v1, k2, v2, ... and rendered sorted by key so
// the same label set always produces the same registry entry; names
// and keys are sanitized, values escaped. With no pairs it returns the
// sanitized base alone.
func SeriesName(base string, kv ...string) string {
	base = PromName(base)
	if len(kv) < 2 {
		return base
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{PromLabelName(kv[i]), kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// PromName sanitizes s into a legal metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*): illegal runes become '_', and an empty
// or digit-leading result is prefixed with '_'.
func PromName(s string) string {
	return promIdent(s, true)
}

// PromLabelName sanitizes s into a legal label name
// ([a-zA-Z_][a-zA-Z0-9_]*).
func PromLabelName(s string) string {
	return promIdent(s, false)
}

func promIdent(s string, allowColon bool) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(allowColon && c == ':') || (i > 0 && c >= '0' && c <= '9')
		if ok {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// EscapeLabelValue escapes a label value per the text format:
// backslash, double-quote and newline.
func EscapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP text (backslash and newline only; quotes
// are legal there).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promFloat renders a sample value: Go's shortest round-trip float,
// with the format's spellings of the non-finite values.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promSeries is one registry entry split into family base and label
// block ("" when unlabeled). A name registered as `base{...}` keeps
// its label block verbatim (SeriesName already escaped it).
type promSeries struct {
	base   string
	labels string // without braces, "" if none
	name   string // original registry key, for stable ordering
}

func splitSeries(name string) promSeries {
	open := strings.IndexByte(name, '{')
	if open < 0 || !strings.HasSuffix(name, "}") {
		return promSeries{base: PromName(name), name: name}
	}
	return promSeries{
		base:   PromName(name[:open]),
		labels: name[open+1 : len(name)-1],
		name:   name,
	}
}

// joinLabels merges a series' own label block with one extra
// rendered label (le/quantile).
func joinLabels(labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return ""
	case labels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labels + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// promFamilies groups a snapshot section's names into families in
// deterministic order: families sorted by base, series within a family
// by their full registered name.
func promFamilies[V any](m map[string]V) ([]string, map[string][]promSeries) {
	fams := map[string][]promSeries{}
	for _, name := range SortedNames(m) {
		s := splitSeries(name)
		fams[s.base] = append(fams[s.base], s)
	}
	bases := make([]string, 0, len(fams))
	for b := range fams {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	return bases, fams
}

func promHeader(w io.Writer, base, help, typ string) error {
	if help == "" {
		help = base
	}
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", base, escapeHelp(help), base, typ)
	return err
}

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format. help maps family base names to HELP text (a
// family without an entry gets its own name as help, so every family
// always carries HELP and TYPE lines).
func WritePrometheus(w io.Writer, snap Snapshot, help map[string]string) error {
	// Counters.
	bases, fams := promFamilies(snap.Counters)
	for _, base := range bases {
		if err := promHeader(w, base, help[base], "counter"); err != nil {
			return err
		}
		for _, s := range fams[base] {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", base, joinLabels(s.labels, ""), snap.Counters[s.name]); err != nil {
				return err
			}
		}
	}
	// Gauges.
	bases, fams = promFamilies(snap.Gauges)
	for _, base := range bases {
		if err := promHeader(w, base, help[base], "gauge"); err != nil {
			return err
		}
		for _, s := range fams[base] {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", base, joinLabels(s.labels, ""), snap.Gauges[s.name]); err != nil {
				return err
			}
		}
	}
	// Histograms: cumulative buckets, +Inf, _sum, _count.
	bases, fams = promFamilies(snap.Histograms)
	for _, base := range bases {
		if err := promHeader(w, base, help[base], "histogram"); err != nil {
			return err
		}
		for _, s := range fams[base] {
			h := snap.Histograms[s.name]
			var cum int64
			for i, bound := range h.Bounds {
				cum += h.Counts[i]
				le := `le="` + promFloat(bound) + `"`
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, joinLabels(s.labels, le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, joinLabels(s.labels, `le="+Inf"`), h.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, joinLabels(s.labels, ""), promFloat(h.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, joinLabels(s.labels, ""), h.Count); err != nil {
				return err
			}
		}
	}
	// Quantile digests: summaries plus exact min/max gauges.
	bases, fams = promFamilies(snap.Quantiles)
	for _, base := range bases {
		if err := promHeader(w, base, help[base], "summary"); err != nil {
			return err
		}
		for _, s := range fams[base] {
			q := snap.Quantiles[s.name]
			for _, p := range []struct {
				q string
				v float64
			}{{"0.5", q.P50}, {"0.9", q.P90}, {"0.99", q.P99}} {
				if q.Count == 0 {
					break // an empty digest has no meaningful quantiles
				}
				if _, err := fmt.Fprintf(w, "%s%s %s\n", base, joinLabels(s.labels, `quantile="`+p.q+`"`), promFloat(p.v)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, joinLabels(s.labels, ""), q.Count); err != nil {
				return err
			}
		}
		for _, suffix := range []string{"_min", "_max"} {
			if err := promHeader(w, base+suffix, "Exact "+strings.TrimPrefix(suffix, "_")+" of "+base+".", "gauge"); err != nil {
				return err
			}
			for _, s := range fams[base] {
				q := snap.Quantiles[s.name]
				v := q.Min
				if suffix == "_max" {
					v = q.Max
				}
				if q.Count == 0 {
					v = 0 // min/max of an empty digest are +/-Inf sentinels
				}
				if _, err := fmt.Fprintf(w, "%s%s%s %s\n", base, suffix, joinLabels(s.labels, ""), promFloat(v)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

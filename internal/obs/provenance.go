package obs

import (
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
)

// Provenance records which commit, toolchain and machine produced an
// artifact (a benchmark document, a scraped /v1/stats payload), so two
// of them can be compared knowing where each came from. Shared by
// pacevm-benchjson's BENCH_sim.json recorder and the placement
// service's /v1/stats endpoint.
type Provenance struct {
	GitCommit string `json:"git_commit,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	Host      string `json:"host,omitempty"`
}

var (
	provOnce   sync.Once
	provCached Provenance
)

// CollectProvenance gathers the current environment. Best-effort by
// design: outside a git checkout (or without git on PATH) the commit is
// simply empty — callers stay pure and their documents stay valid. The
// result is computed once per process (the git subprocess is not free)
// and returned by value thereafter.
func CollectProvenance() Provenance {
	provOnce.Do(func() {
		provCached = Provenance{GoVersion: runtime.Version()}
		if host, err := os.Hostname(); err == nil {
			provCached.Host = host
		}
		if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
			provCached.GitCommit = strings.TrimSpace(string(out))
		}
	})
	return provCached
}

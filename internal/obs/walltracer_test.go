package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock steps a fixed amount on every reading, so every span gets a
// deterministic positive duration.
type fakeClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{now: time.Unix(1700000000, 0), step: step}
}

func TestWallTracerNilSafe(t *testing.T) {
	var w *WallTracer
	if w.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	if got := w.Stages(); got != nil {
		t.Errorf("nil tracer stages = %v", got)
	}
	tr := w.Start("x")
	if tr != nil {
		t.Fatalf("nil tracer Start = %v, want nil", tr)
	}
	// All trace methods must be no-ops on the nil handle.
	tr.StageStart(0)
	tr.StageEnd(0)
	tr.StageDur(0, time.Second)
	tr.Annotate("k", "v")
	if got := tr.ID(); got != "" {
		t.Errorf("nil trace ID = %q", got)
	}
	if got := tr.Finish("placed"); got != 0 {
		t.Errorf("nil trace Finish = %v", got)
	}
	if got := w.Slowest(); got != nil {
		t.Errorf("nil tracer Slowest = %v", got)
	}
	var buf bytes.Buffer
	if err := w.DumpJSON(&buf); err != nil {
		t.Fatalf("nil DumpJSON: %v", err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("nil DumpJSON = %q, want []", buf.String())
	}
}

func TestWallTracerIDs(t *testing.T) {
	w := NewWallTracer([]string{"a"}, 4, nil)
	if got := w.Start("client-given").ID(); got != "client-given" {
		t.Errorf("explicit id = %q, want client-given", got)
	}
	id1, id2 := w.Start("").ID(), w.Start("").ID()
	if id1 == "" || id2 == "" || id1 == id2 {
		t.Errorf("generated ids %q / %q must be unique and non-empty", id1, id2)
	}
	if !strings.HasPrefix(id1, "req-") {
		t.Errorf("generated id %q lacks req- prefix", id1)
	}
}

func TestWallTracerStages(t *testing.T) {
	clock := newFakeClock(time.Millisecond)
	w := NewWallTracer([]string{"decode", "queue", "search"}, 4, clock.Now)
	tr := w.Start("")

	tr.StageStart(0)
	tr.StageEnd(0)
	if d := tr.Dur(0); d != time.Millisecond {
		t.Errorf("decode dur = %v, want 1ms", d)
	}
	// Re-opened stage accumulates.
	tr.StageStart(0)
	tr.StageEnd(0)
	if d := tr.Dur(0); d != 2*time.Millisecond {
		t.Errorf("accumulated decode dur = %v, want 2ms", d)
	}
	// Unmatched end is ignored; out-of-range indices are ignored.
	tr.StageEnd(1)
	tr.StageStart(99)
	tr.StageEnd(-1)
	if d := tr.Dur(1); d != 0 {
		t.Errorf("unopened queue dur = %v, want 0", d)
	}
	// Externally measured span.
	tr.StageDur(1, 5*time.Millisecond)
	tr.StageDur(1, -time.Second) // negative ignored
	if d := tr.Dur(1); d != 5*time.Millisecond {
		t.Errorf("queue dur = %v, want 5ms", d)
	}
	tr.Annotate("level", "full-search")
	total := tr.Finish("placed")
	if total <= 0 {
		t.Errorf("total = %v, want > 0", total)
	}

	slow := w.Slowest()
	if len(slow) != 1 {
		t.Fatalf("slowest len = %d, want 1", len(slow))
	}
	sr := slow[0]
	if sr.Outcome != "placed" || sr.RequestID != tr.ID() {
		t.Errorf("dump entry = %+v", sr)
	}
	if len(sr.Stages) != 3 {
		t.Fatalf("dump stages = %d, want all 3 (zero-duration included)", len(sr.Stages))
	}
	if sr.Stages[2].Stage != "search" || sr.Stages[2].MS != 0 {
		t.Errorf("untouched stage = %+v, want search/0", sr.Stages[2])
	}
	if sr.Attrs["level"] != "full-search" {
		t.Errorf("attrs = %v", sr.Attrs)
	}
}

func TestWallTracerWorstK(t *testing.T) {
	clock := newFakeClock(0)
	w := NewWallTracer([]string{"s"}, 3, clock.Now)
	// Finish 6 traces with totals 10,20,...,60ms by manually advancing
	// the clock between Start and Finish.
	for i := 1; i <= 6; i++ {
		tr := w.Start("")
		clock.mu.Lock()
		clock.now = clock.now.Add(time.Duration(i) * 10 * time.Millisecond)
		clock.mu.Unlock()
		tr.Finish("placed")
	}
	slow := w.Slowest()
	if len(slow) != 3 {
		t.Fatalf("ring len = %d, want 3", len(slow))
	}
	want := []float64{60, 50, 40}
	for i, sr := range slow {
		if sr.TotalMS != want[i] {
			t.Errorf("slowest[%d] = %vms, want %vms", i, sr.TotalMS, want[i])
		}
	}

	var buf bytes.Buffer
	if err := w.DumpJSON(&buf); err != nil {
		t.Fatalf("DumpJSON: %v", err)
	}
	var dumped []SlowRequest
	if err := json.Unmarshal(buf.Bytes(), &dumped); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(dumped) != 3 || dumped[0].TotalMS != 60 {
		t.Errorf("dumped = %+v", dumped)
	}
}

func TestWallTracerNoRing(t *testing.T) {
	w := NewWallTracer([]string{"s"}, 0, newFakeClock(time.Millisecond).Now)
	tr := w.Start("")
	tr.StageStart(0)
	tr.StageEnd(0)
	if d := tr.Finish("placed"); d <= 0 {
		t.Errorf("timing must still work with k=0, got %v", d)
	}
	if got := len(w.Slowest()); got != 0 {
		t.Errorf("k=0 ring holds %d entries", got)
	}
}

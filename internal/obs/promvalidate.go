package obs

// ValidateExposition machine-checks a Prometheus text exposition — the
// consumer-side proof used by the renderer's golden tests and the
// `make metrics-smoke` gate that scrapes a live pacevm-serve. It is a
// strict structural parser, not a full client: it verifies name and
// label syntax, HELP/TYPE placement, sample-value floats, and the
// histogram contract (cumulative buckets ending in a `+Inf` bucket
// that equals `_count`).

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// validTypes are the exposition TYPE values.
var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parseLabels consumes a `{k="v",...}` block, returning the label map
// and the rest of the line.
func parseLabels(s string) (map[string]string, string, error) {
	labels := map[string]string{}
	s = s[1:] // consume '{'
	for {
		s = strings.TrimLeft(s, " ")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label block: missing '='")
		}
		name := strings.TrimSpace(s[:eq])
		if !validLabelName(name) {
			return nil, "", fmt.Errorf("bad label name %q", name)
		}
		s = strings.TrimLeft(s[eq+1:], " ")
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("label %s: unquoted value", name)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if s == "" {
				return nil, "", fmt.Errorf("label %s: unterminated value", name)
			}
			c := s[0]
			if c == '"' {
				s = s[1:]
				break
			}
			if c == '\\' {
				if len(s) < 2 {
					return nil, "", fmt.Errorf("label %s: dangling escape", name)
				}
				switch s[1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: bad escape \\%c", name, s[1])
				}
				s = s[2:]
				continue
			}
			val.WriteByte(c)
			s = s[1:]
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", name)
		}
		labels[name] = val.String()
		s = strings.TrimLeft(s, " ")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		return nil, "", fmt.Errorf("label block: expected ',' or '}'")
	}
}

// histKey identifies one histogram series (family + non-le labels) for
// the cumulativity check.
func histKey(family string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(family)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, labels[k])
	}
	return b.String()
}

type histState struct {
	last    float64 // last bucket cumulative count
	lastLE  float64
	buckets int
	inf     float64
	hasInf  bool
	count   float64
	hasCnt  bool
	line    int
}

// ValidateExposition parses a text exposition and returns the TYPE of
// every family declared or sampled (untyped families map to
// "untyped"). Any structural violation returns a line-numbered error.
func ValidateExposition(r io.Reader) (map[string]string, error) {
	families := map[string]string{}
	hists := map[string]*histState{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	ln := 0
	fail := func(format string, args ...any) (map[string]string, error) {
		return nil, fmt.Errorf("exposition line %d: %s", ln, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		ln++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 2 {
				continue // free-form comment
			}
			switch fields[1] {
			case "TYPE":
				if len(fields) < 4 {
					return fail("TYPE needs a name and a type")
				}
				name, typ := fields[2], strings.TrimSpace(fields[3])
				if !validMetricName(name) {
					return fail("TYPE for bad metric name %q", name)
				}
				if !validTypes[typ] {
					return fail("unknown TYPE %q for %s", typ, name)
				}
				if prev, ok := families[name]; ok && prev != "untyped" {
					return fail("second TYPE for %s", name)
				}
				families[name] = typ
			case "HELP":
				if len(fields) < 3 || !validMetricName(fields[2]) {
					return fail("HELP for bad metric name")
				}
			}
			continue
		}
		// Sample line: name[{labels}] value [timestamp]
		rest := line
		end := strings.IndexAny(rest, "{ ")
		if end < 0 {
			return fail("sample without value: %q", line)
		}
		name := rest[:end]
		if !validMetricName(name) {
			return fail("bad metric name %q", name)
		}
		rest = rest[end:]
		labels := map[string]string{}
		if strings.HasPrefix(rest, "{") {
			var err error
			labels, rest, err = parseLabels(rest)
			if err != nil {
				return fail("%v", err)
			}
		}
		valueFields := strings.Fields(rest)
		if len(valueFields) < 1 || len(valueFields) > 2 {
			return fail("sample %s: want value [timestamp], got %q", name, rest)
		}
		value, err := strconv.ParseFloat(valueFields[0], 64)
		if err != nil {
			return fail("sample %s: bad value %q", name, valueFields[0])
		}
		if len(valueFields) == 2 {
			if _, err := strconv.ParseInt(valueFields[1], 10, 64); err != nil {
				return fail("sample %s: bad timestamp %q", name, valueFields[1])
			}
		}
		// Family bookkeeping: a histogram/summary sample belongs to its
		// base family.
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && (families[base] == "histogram" || families[base] == "summary") {
				family = base
				break
			}
		}
		if _, ok := families[family]; !ok {
			families[family] = "untyped"
		}
		// Histogram contract.
		if families[family] == "histogram" {
			key := histKey(family, labels)
			st := hists[key]
			if st == nil {
				st = &histState{lastLE: -1e308}
				hists[key] = st
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				leStr, ok := labels["le"]
				if !ok {
					return fail("histogram bucket %s without le label", name)
				}
				le, err := strconv.ParseFloat(leStr, 64)
				if err != nil && leStr != "+Inf" {
					return fail("histogram %s: bad le %q", family, leStr)
				}
				if leStr == "+Inf" {
					st.inf, st.hasInf = value, true
				} else {
					if le <= st.lastLE {
						return fail("histogram %s: le %q not increasing", family, leStr)
					}
					st.lastLE = le
				}
				if value < st.last {
					return fail("histogram %s: bucket counts not cumulative at le=%q", family, leStr)
				}
				st.last = value
				st.buckets++
				st.line = ln
			case strings.HasSuffix(name, "_count"):
				st.count, st.hasCnt = value, true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for key, st := range hists {
		if st.buckets == 0 {
			continue
		}
		if !st.hasInf {
			return nil, fmt.Errorf("exposition: histogram series %s has no +Inf bucket", key)
		}
		if st.hasCnt && st.inf != st.count {
			return nil, fmt.Errorf("exposition: histogram series %s: +Inf bucket %v != count %v", key, st.inf, st.count)
		}
	}
	return families, nil
}

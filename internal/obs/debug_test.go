package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeDebug covers the CLIs' -debug-addr contract: /debug/pprof/
// and /debug/vars must both answer, and /debug/vars must include the
// published registry's live contents.
func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim_events_popped").Add(7)
	d, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + d.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}

	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles: %.200s", body)
	}
	vars := get("/debug/vars")
	var parsed map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &parsed); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(parsed["pacevm"], &snap); err != nil {
		t.Fatalf("pacevm var is not a Snapshot: %v (%s)", err, parsed["pacevm"])
	}
	if snap.Counters["sim_events_popped"] != 7 {
		t.Errorf("registry contents not served: %+v", snap)
	}
	// Live: later updates must be visible on the next scrape.
	reg.Counter("sim_events_popped").Add(3)
	if !strings.Contains(get("/debug/vars"), `"sim_events_popped": 10`) &&
		!strings.Contains(get("/debug/vars"), `"sim_events_popped":10`) {
		t.Error("/debug/vars not live")
	}
}

func TestServeDebugBadAddr(t *testing.T) {
	if _, err := ServeDebug("256.0.0.1:bad", nil); err == nil {
		t.Error("bad address must fail")
	}
}

// TestServeDebugMetricsAndSlow covers the observability endpoints: a
// /metrics scrape must pass the exposition validator and include the
// SLO families once a tracker is attached, and /debug/slow must dump
// the attached wall tracer's ring.
func TestServeDebugMetricsAndSlow(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(SeriesName("serve_requests_total", "outcome", "placed")).Add(5)
	reg.Histogram("serve_stage_seconds", 0.001, 0.01).Observe(0.005)
	d, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + d.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}

	// No tracer/SLO attached yet: still a valid exposition, and
	// /debug/slow serves an empty array.
	fams, err := ValidateExposition(strings.NewReader(get("/metrics")))
	if err != nil {
		t.Fatalf("/metrics invalid: %v", err)
	}
	if fams["serve_requests_total"] != "counter" || fams["serve_stage_seconds"] != "histogram" {
		t.Errorf("families = %v", fams)
	}
	var slow []SlowRequest
	if err := json.Unmarshal([]byte(get("/debug/slow")), &slow); err != nil {
		t.Fatalf("/debug/slow not JSON: %v", err)
	}
	if len(slow) != 0 {
		t.Errorf("empty server dumped %d slow requests", len(slow))
	}

	// Attach a tracer and an SLO tracker; both endpoints must pick them up.
	wall := NewWallTracer([]string{"decode", "search"}, 4, nil)
	tr := wall.Start("req-test-1")
	tr.StageDur(1, 3*time.Millisecond)
	tr.Finish("placed")
	d.AddWallTracer(wall)
	slo, err := NewSLOTracker(100*time.Millisecond, 0.99, time.Minute, nil)
	if err != nil {
		t.Fatal(err)
	}
	slo.Observe(time.Millisecond)
	d.AddSLO(slo)

	metrics := get("/metrics")
	if _, err := ValidateExposition(strings.NewReader(metrics)); err != nil {
		t.Fatalf("/metrics with SLO invalid: %v", err)
	}
	for _, want := range []string{"serve_slo_attainment_ratio 1", "serve_slo_burn_rate 0"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if err := json.Unmarshal([]byte(get("/debug/slow")), &slow); err != nil {
		t.Fatalf("/debug/slow not JSON: %v", err)
	}
	if len(slow) != 1 || slow[0].RequestID != "req-test-1" || len(slow[0].Stages) != 2 {
		t.Errorf("slow dump = %+v", slow)
	}

	// The dashboard grows the SLO panel.
	dash := get("/debug/dash")
	for _, want := range []string{"<h2>SLO</h2>", "req-test-1", "/debug/slow"} {
		if !strings.Contains(dash, want) {
			t.Errorf("/debug/dash missing %q", want)
		}
	}
}

package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestServeDebug covers the CLIs' -debug-addr contract: /debug/pprof/
// and /debug/vars must both answer, and /debug/vars must include the
// published registry's live contents.
func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim_events_popped").Add(7)
	d, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + d.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}

	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles: %.200s", body)
	}
	vars := get("/debug/vars")
	var parsed map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &parsed); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(parsed["pacevm"], &snap); err != nil {
		t.Fatalf("pacevm var is not a Snapshot: %v (%s)", err, parsed["pacevm"])
	}
	if snap.Counters["sim_events_popped"] != 7 {
		t.Errorf("registry contents not served: %+v", snap)
	}
	// Live: later updates must be visible on the next scrape.
	reg.Counter("sim_events_popped").Add(3)
	if !strings.Contains(get("/debug/vars"), `"sim_events_popped": 10`) &&
		!strings.Contains(get("/debug/vars"), `"sim_events_popped":10`) {
		t.Error("/debug/vars not live")
	}
}

func TestServeDebugBadAddr(t *testing.T) {
	if _, err := ServeDebug("256.0.0.1:bad", nil); err == nil {
		t.Error("bad address must fail")
	}
}

package obs

// Quantile is a fixed-size streaming quantile digest: a sorted-compaction
// centroid sketch (a deterministic, RNG-free cousin of the t-digest) that
// answers P50/P90/P99 over an unbounded observation stream in bounded
// memory. Incoming observations buffer unsorted; when the buffer fills it
// is sorted and merged with the existing centroids, and the merged list is
// compacted into at most quantileCentroids equal-weight groups, so rank
// error is bounded by ~1/quantileCentroids of the total weight regardless
// of stream length. The digest is deterministic: the same observation
// sequence always produces the same centroids, the same snapshot, and the
// same quantile answers — the property the simulator's golden tests and
// manifest diffs rely on.
//
// Like every obs instrument, a nil *Quantile is a no-op on all methods,
// so disabled telemetry costs one predictable nil check per call site.
// Enabled digests take a mutex per operation (retirement-rate call sites,
// not the event-loop hot path) and are safe for concurrent use.

import (
	"math"
	"sort"
	"sync"
)

const (
	// quantileBuffer is the unsorted staging capacity; each compaction
	// sorts this many raw observations.
	quantileBuffer = 256
	// quantileCentroids bounds the compacted sketch size and therefore
	// the worst-case rank error (~0.4 % of total weight).
	quantileCentroids = 256
)

// qcentroid is one weighted point of the sketch, the mean of w collapsed
// observations.
type qcentroid struct {
	mean float64
	w    int64
}

// Quantile is the streaming digest. The zero value is NOT ready to use;
// obtain handles from Registry.Quantile (or NewQuantile), which size the
// fixed buffers once.
type Quantile struct {
	mu    sync.Mutex
	buf   []float64 // unsorted staging, cap quantileBuffer
	cs    []qcentroid
	count int64
	min   float64
	max   float64
}

// NewQuantile returns an empty digest.
func NewQuantile() *Quantile {
	return &Quantile{
		buf: make([]float64, 0, quantileBuffer),
		min: math.Inf(1),
		max: math.Inf(-1),
	}
}

// Observe records one observation. NaN is ignored (a poisoned digest
// answers nothing useful).
func (q *Quantile) Observe(v float64) {
	if q == nil || math.IsNaN(v) {
		return
	}
	q.mu.Lock()
	q.count++
	if v < q.min {
		q.min = v
	}
	if v > q.max {
		q.max = v
	}
	q.buf = append(q.buf, v)
	if len(q.buf) == cap(q.buf) {
		q.compact()
	}
	q.mu.Unlock()
}

// compact folds the staging buffer into the centroid sketch: sort the
// buffer, merge it with the (already sorted) centroids, and group the
// merged sequence into at most quantileCentroids equal-weight centroids.
// Called with the mutex held.
func (q *Quantile) compact() {
	if len(q.buf) == 0 {
		return
	}
	sort.Float64s(q.buf)
	merged := make([]qcentroid, 0, len(q.cs)+len(q.buf))
	i, j := 0, 0
	for i < len(q.cs) || j < len(q.buf) {
		if j >= len(q.buf) || (i < len(q.cs) && q.cs[i].mean <= q.buf[j]) {
			merged = append(merged, q.cs[i])
			i++
		} else {
			merged = append(merged, qcentroid{mean: q.buf[j], w: 1})
			j++
		}
	}
	q.buf = q.buf[:0]
	q.cs = regroup(merged)
}

// regroup collapses a sorted centroid sequence into at most
// quantileCentroids equal-weight groups, in place; short sequences pass
// through untouched. Consecutive entries collapse until each group
// carries ceil(total/quantileCentroids) weight.
func regroup(merged []qcentroid) []qcentroid {
	if len(merged) <= quantileCentroids {
		return merged
	}
	var total int64
	for _, c := range merged {
		total += c.w
	}
	budget := (total + quantileCentroids - 1) / quantileCentroids
	out := merged[:0]
	cur := qcentroid{}
	for _, c := range merged {
		if cur.w > 0 && cur.w+c.w > budget {
			out = append(out, cur)
			cur = qcentroid{}
		}
		cur.mean = (cur.mean*float64(cur.w) + c.mean*float64(c.w)) / float64(cur.w+c.w)
		cur.w += c.w
	}
	if cur.w > 0 {
		out = append(out, cur)
	}
	return out
}

// Merge absorbs another digest's state into q — the cross-shard fold of
// the sharded simulator. o's staged observations and centroids merge
// into q's centroid list in value order and the result recompacts, so
// the outcome is deterministic given the two digests' states. It is a
// digest of digests: its centroids need not equal those of one digest
// fed the interleaved stream, but the rank-error bound composes (each
// input's error is bounded, and grouping only coarsens by the same
// budget rule). Count, min and max fold exactly. o is left unchanged;
// merging nil into anything, anything into nil, or a digest into itself
// is a no-op.
func (q *Quantile) Merge(o *Quantile) {
	if q == nil || o == nil || q == o {
		return
	}
	o.mu.Lock()
	ocs := append([]qcentroid(nil), o.cs...)
	obuf := append([]float64(nil), o.buf...)
	count, min, max := o.count, o.min, o.max
	o.mu.Unlock()
	if count == 0 {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.count += count
	if min < q.min {
		q.min = min
	}
	if max > q.max {
		q.max = max
	}
	// Fold o's staging into its centroid sequence, value-ordered.
	sort.Float64s(obuf)
	oc := make([]qcentroid, 0, len(ocs)+len(obuf))
	i, j := 0, 0
	for i < len(ocs) || j < len(obuf) {
		if j >= len(obuf) || (i < len(ocs) && ocs[i].mean <= obuf[j]) {
			oc = append(oc, ocs[i])
			i++
		} else {
			oc = append(oc, qcentroid{mean: obuf[j], w: 1})
			j++
		}
	}
	// Flush q's own staging, merge the two sorted lists, regroup.
	q.compact()
	merged := make([]qcentroid, 0, len(q.cs)+len(oc))
	i, j = 0, 0
	for i < len(q.cs) || j < len(oc) {
		if j >= len(oc) || (i < len(q.cs) && q.cs[i].mean <= oc[j].mean) {
			merged = append(merged, q.cs[i])
			i++
		} else {
			merged = append(merged, oc[j])
			j++
		}
	}
	q.cs = regroup(merged)
}

// Count returns the number of observations; 0 on a nil receiver.
func (q *Quantile) Count() int64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// Min returns the exact minimum observed (0 when empty or nil).
func (q *Quantile) Min() float64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == 0 {
		return 0
	}
	return q.min
}

// Max returns the exact maximum observed (0 when empty or nil).
func (q *Quantile) Max() float64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == 0 {
		return 0
	}
	return q.max
}

// Quantile returns the estimated value at rank fraction p in [0, 1]
// (0 = min, 1 = max). Returns 0 when the digest is empty or nil.
func (q *Quantile) Quantile(p float64) float64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.quantileLocked(p)
}

// quantileLocked folds any staged observations and walks the cumulative
// centroid weights to rank p·(count−1), interpolating linearly between
// adjacent centroid means. Exact at the extremes (min/max are tracked
// precisely). Called with the mutex held.
func (q *Quantile) quantileLocked(p float64) float64 {
	if q.count == 0 {
		return 0
	}
	if p <= 0 {
		return q.min
	}
	if p >= 1 {
		return q.max
	}
	q.compact()
	target := p * float64(q.count-1)
	// Centroid i spans ranks [cum, cum+w); its mean sits at the group's
	// midpoint rank cum + (w-1)/2.
	var cum int64
	prevMid, prevVal := -0.5, q.min
	for _, c := range q.cs {
		mid := float64(cum) + float64(c.w-1)/2
		if target <= mid {
			if mid == prevMid {
				return c.mean
			}
			frac := (target - prevMid) / (mid - prevMid)
			if frac < 0 {
				frac = 0
			}
			return prevVal + frac*(c.mean-prevVal)
		}
		prevMid, prevVal = mid, c.mean
		cum += c.w
	}
	return q.max
}

// QuantileSnapshot is the exported state of one digest: the count, the
// exact extremes, and the P50/P90/P99 estimates the dashboards and run
// manifests report.
type QuantileSnapshot struct {
	Count int64   `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot captures the digest's current state; the zero snapshot on a
// nil or empty receiver.
func (q *Quantile) Snapshot() QuantileSnapshot {
	if q == nil {
		return QuantileSnapshot{}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == 0 {
		return QuantileSnapshot{}
	}
	return QuantileSnapshot{
		Count: q.count,
		Min:   q.min,
		Max:   q.max,
		P50:   q.quantileLocked(0.50),
		P90:   q.quantileLocked(0.90),
		P99:   q.quantileLocked(0.99),
	}
}

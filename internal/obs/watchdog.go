package obs

// Watchdog is the online invariant checker: callers register named
// checks that re-derive a system invariant from first principles (energy
// = busy+idle integrals, queue/work conservation, capacity-index sums)
// and the owner ticks the watchdog from its event loop. Every `every`
// ticks the full check set runs; a check returning a non-nil error
// becomes one structured Violation, the sim_invariant_violations_total
// counter moves, and /debug/dash surfaces the report.
//
// The contract matches the rest of the package: a nil *Watchdog is a
// no-op on every method (one predictable branch per Tick, nothing
// allocated), and checks are read-only — a run with the watchdog on
// must stay byte-identical to the same run with it off. Violations are
// mutex-guarded so a debug server may read them while the run ticks.

import (
	"fmt"
	"sync"
)

// Violation is one failed invariant check.
type Violation struct {
	// Check is the registered check name.
	Check string `json:"check"`
	// At is the simulated time the sweep ran at.
	At float64 `json:"at"`
	// Detail is the check's error text — what was re-derived vs what the
	// incremental state claimed.
	Detail string `json:"detail"`
	// Shard identifies the shard-private simulator the violation came
	// from in a sharded run; 0 in monolithic runs.
	Shard int `json:"shard"`
}

func (v Violation) String() string {
	return fmt.Sprintf("[shard %d] t=%g %s: %s", v.Shard, v.At, v.Check, v.Detail)
}

type watchdogCheck struct {
	name string
	fn   func() error
}

// Watchdog runs registered invariant checks every N ticks. Build one
// with NewWatchdog, Bind it to a registry for the counters, Register
// the checks, then Tick it from the event loop and RunChecks once at
// the end of the run.
type Watchdog struct {
	every  int
	left   int
	checks []watchdogCheck

	checksRun  *Counter // sim_invariant_checks_total
	violations *Counter // sim_invariant_violations_total

	mu       sync.Mutex
	failures []Violation
}

// DefaultWatchdogEvery is the tick period used when NewWatchdog is
// given a non-positive one: frequent enough to localize a corruption to
// a few thousand events, rare enough to stay invisible in profiles.
const DefaultWatchdogEvery = 4096

// NewWatchdog returns a watchdog sweeping every `every` ticks.
func NewWatchdog(every int) *Watchdog {
	if every <= 0 {
		every = DefaultWatchdogEvery
	}
	return &Watchdog{every: every, left: every}
}

// Reset clears the registered checks, the recorded violations and the
// tick countdown, preparing the watchdog for a new run (the simulator
// resets an attached watchdog the way it resets an attached audit).
func (w *Watchdog) Reset() {
	if w == nil {
		return
	}
	w.checks = w.checks[:0]
	w.left = w.every
	w.mu.Lock()
	w.failures = nil
	w.mu.Unlock()
}

// Every returns the sweep period in ticks (0 on a nil watchdog).
func (w *Watchdog) Every() int {
	if w == nil {
		return 0
	}
	return w.every
}

// Bind resolves the watchdog's registry counters. A nil watchdog or
// registry leaves the counters as nil no-ops.
func (w *Watchdog) Bind(reg *Registry) {
	if w == nil {
		return
	}
	w.checksRun = reg.Counter("sim_invariant_checks_total")
	w.violations = reg.Counter("sim_invariant_violations_total")
}

// Register adds a named check. Checks run in registration order; fn
// must be read-only with respect to the system under watch and must
// return nil when the invariant holds.
func (w *Watchdog) Register(name string, fn func() error) {
	if w == nil {
		return
	}
	w.checks = append(w.checks, watchdogCheck{name: name, fn: fn})
}

// Tick counts one event-loop iteration at simulated time `at` and runs
// the check sweep when the period elapses. Nil-safe: the disabled path
// is one branch.
func (w *Watchdog) Tick(at float64) {
	if w == nil {
		return
	}
	w.left--
	if w.left > 0 {
		return
	}
	w.left = w.every
	w.RunChecks(at)
}

// RunChecks runs every registered check now, recording violations.
func (w *Watchdog) RunChecks(at float64) {
	if w == nil {
		return
	}
	for _, c := range w.checks {
		w.checksRun.Inc()
		if err := c.fn(); err != nil {
			w.violations.Inc()
			w.mu.Lock()
			w.failures = append(w.failures, Violation{Check: c.name, At: at, Detail: err.Error()})
			w.mu.Unlock()
		}
	}
}

// Violations returns a copy of the recorded violations (nil when clean
// or on a nil watchdog).
func (w *Watchdog) Violations() []Violation {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Violation(nil), w.failures...)
}

// Absorb folds another watchdog's violations into w, stamping them with
// the originating shard — the cross-shard merge of the sharded
// simulator (counters merge separately through Registry.Merge).
func (w *Watchdog) Absorb(from *Watchdog, shard int) {
	if w == nil || from == nil || w == from {
		return
	}
	for _, v := range from.Violations() {
		v.Shard = shard
		w.mu.Lock()
		w.failures = append(w.failures, v)
		w.mu.Unlock()
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestTraceRoundTrip is the schema round-trip: a recorded trace must
// serialize to Chrome trace-event JSON that parses back into the same
// events, and the envelope must carry traceEvents as a JSON array (the
// shape Perfetto's JSON importer requires).
func TestTraceRoundTrip(t *testing.T) {
	tr := NewTracer()
	tr.NameProcess(1, "servers")
	tr.NameThread(1, 0, "server 0")
	tr.Span("hosting", "server", 1, 0, 10, 250, nil)
	tr.Span("vm1 job3", "vm", 1, 0, 12, 240, map[string]any{"job": 3, "class": "CPU"})
	tr.Instant("job 3 submit", "arrival", 2, 0, 5, map[string]any{"vms": 2})
	tr.Counter("queue", 2, 0, 5, "depth", 1)
	tr.FlowStart("wait vm1", "lifecycle", 1, 2, 0, 5)
	tr.FlowFinish("wait vm1", "lifecycle", 1, 1, 0, 12)

	var buf bytes.Buffer
	if err := tr.WriteTo(&buf, map[string]any{"seed": 42}); err != nil {
		t.Fatal(err)
	}

	// Envelope-level schema checks on the raw JSON.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("not a JSON object: %v", err)
	}
	if _, ok := raw["traceEvents"]; !ok {
		t.Fatal("envelope missing traceEvents")
	}
	var asArray []map[string]any
	if err := json.Unmarshal(raw["traceEvents"], &asArray); err != nil {
		t.Fatalf("traceEvents is not an array of objects: %v", err)
	}

	f, err := ReadTraceFile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.TraceEvents) != tr.Len() {
		t.Fatalf("round-tripped %d events, recorded %d", len(f.TraceEvents), tr.Len())
	}
	if f.OtherData["seed"] != float64(42) {
		t.Errorf("otherData lost: %+v", f.OtherData)
	}
	phases := map[string]int{}
	for _, ev := range f.TraceEvents {
		phases[ev.Phase]++
		if ev.Phase != PhaseMetadata && ev.Ts < 0 {
			t.Errorf("event %q has negative ts", ev.Name)
		}
	}
	for _, ph := range []string{PhaseComplete, PhaseInstant, PhaseCounter, PhaseMetadata, PhaseFlowStart, PhaseFlowFinish} {
		if phases[ph] == 0 {
			t.Errorf("no %q events survived the round trip (%v)", ph, phases)
		}
	}
	// Simulated-seconds -> microseconds scaling.
	var span *TraceEvent
	for i := range f.TraceEvents {
		if f.TraceEvents[i].Name == "hosting" {
			span = &f.TraceEvents[i]
		}
	}
	if span == nil {
		t.Fatal("hosting span lost")
	}
	if span.Ts != 10e6 || span.Dur != 240e6 {
		t.Errorf("span ts/dur = %g/%g, want 1e7/2.4e8 (µs)", span.Ts, span.Dur)
	}
}

// TestNilTracerWritesValidEmptyTrace: even fully disabled, WriteTo must
// produce a loadable document with an empty (not null) event array.
func TestNilTracerWritesValidEmptyTrace(t *testing.T) {
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.WriteTo(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents": []`) {
		t.Errorf("nil trace not an empty array: %s", buf.String())
	}
	if _, err := ReadTraceFile(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Span("s", "c", 1, w, float64(i), float64(i+1), nil)
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 4000 {
		t.Errorf("recorded %d events, want 4000", tr.Len())
	}
}

func TestWriteManifest(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_events_popped").Add(123)
	var buf bytes.Buffer
	m := Manifest{
		Command:          "pacevm-sim",
		Config:           map[string]any{"servers": 66, "strategy": "FF-3"},
		Seed:             42,
		WallClockSeconds: 1.25,
		Metrics:          map[string]any{"makespan": 1000.0},
		Telemetry:        r.Snapshot(),
	}
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Command != "pacevm-sim" || back.Seed != 42 || back.WallClockSeconds != 1.25 {
		t.Errorf("manifest round trip lost fields: %+v", back)
	}
	if back.Telemetry.Counters["sim_events_popped"] != 123 {
		t.Errorf("telemetry snapshot lost: %+v", back.Telemetry)
	}
}

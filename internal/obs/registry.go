// Package obs is the zero-cost telemetry layer of the PACE-VM stack: a
// metrics registry (atomic counters, gauges, fixed-bucket histograms,
// streaming quantile digests), a Chrome-trace-event recorder over
// simulated time, and a pprof/expvar debug server shared by the CLIs —
// including the /debug/dash live HTML dashboard.
//
// The non-negotiable design constraint is that disabled telemetry costs
// nothing on the hot paths the performance PRs paid to optimize. Every
// instrument handle (*Counter, *Gauge, *Histogram, *Quantile, *Tracer)
// is nil-safe:
// methods on a nil receiver are no-ops that compile to a single
// predictable branch, allocate nothing, and touch no shared state.
// Instrumented code therefore holds handles resolved once at setup time
// — from a nil *Registry every handle is nil and the instrumented run is
// byte-identical (and allocation-identical) to an uninstrumented one;
// the cloudsim golden tests pin exactly that.
//
// When enabled, updates are lock-free atomics safe for concurrent use
// (the allocation search fans out to a worker pool; workers share one
// registry). Registration (Registry.Counter and friends) takes a mutex
// and may allocate; hot paths must register once up front, not per
// operation.
package obs

import (
	"expvar"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. The zero value is ready
// to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n may be negative only for corrections; counters are
// conventionally monotone).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count; 0 on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value. The zero value is ready to use; a
// nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// SetMax raises the gauge to n if n exceeds the current value — the
// high-water-mark update, safe under concurrent raisers.
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value; 0 on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets chosen at
// registration. Bucket i counts observations v <= Bounds[i]; one
// overflow bucket counts the rest. A nil *Histogram is a no-op.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observations; 0 on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations; 0 on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Registry is a named collection of instruments. A nil *Registry hands
// out nil handles, so code instrumented against a nil registry runs the
// disabled (no-op, allocation-free) path throughout.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	quantiles  map[string]*Quantile
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		quantiles:  map[string]*Quantile{},
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket bounds on first use (later calls reuse the first
// registration's bounds). A nil registry returns a nil handle.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.histograms[name] = h
	}
	return h
}

// Quantile returns the named streaming quantile digest, creating it on
// first use. A nil registry returns a nil (no-op) handle.
func (r *Registry) Quantile(name string) *Quantile {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	q, ok := r.quantiles[name]
	if !ok {
		q = NewQuantile()
		r.quantiles[name] = q
	}
	return q
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1; last is overflow
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of a registry's contents, in the
// form expvar publishing and run manifests serialize. Maps serialize
// with sorted keys (encoding/json's map behaviour), so two snapshots of
// the same run diff cleanly byte for byte; SortedNames gives the same
// deterministic order to non-JSON renderers (the dashboard).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Quantiles  map[string]QuantileSnapshot  `json:"quantiles,omitempty"`
}

// SortedNames returns the keys of one snapshot section in ascending
// order — the stable iteration order renderers should use.
func SortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Snapshot copies the registry's current values. A nil registry yields
// the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			hs := HistogramSnapshot{
				Bounds: append([]float64(nil), h.bounds...),
				Counts: make([]int64, len(h.counts)),
				Count:  h.Count(),
				Sum:    h.Sum(),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			s.Histograms[name] = hs
		}
	}
	if len(r.quantiles) > 0 {
		s.Quantiles = make(map[string]QuantileSnapshot, len(r.quantiles))
		for name, q := range r.quantiles {
			s.Quantiles[name] = q.Snapshot()
		}
	}
	return s
}

// Merge folds another registry's instruments into r — the cross-shard
// fold of the sharded simulator. Counters add; gauges fold as
// high-water marks (every gauge in this stack is one — peak active
// servers, peak queue depth); histograms add per-bucket counts, counts
// and sums (the destination is created with the source's bounds when
// absent; a pre-existing destination keeps its own bounds and buckets
// fold positionally up to the shorter length, which is exact whenever
// the same instrument name is registered with the same bounds
// everywhere, as the simulator's are); quantile digests merge sketches
// (see Quantile.Merge). Instruments absent in r are created. The fold
// is deterministic for deterministic inputs and call order — the
// sharded runner merges per-shard registries in shard order at the
// final barrier. Merging from nil, into nil, or a registry into itself
// is a no-op; from is left unchanged.
func (r *Registry) Merge(from *Registry) {
	if r == nil || from == nil || r == from {
		return
	}
	from.mu.Lock()
	counters := make(map[string]*Counter, len(from.counters))
	for name, c := range from.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(from.gauges))
	for name, g := range from.gauges {
		gauges[name] = g
	}
	histograms := make(map[string]*Histogram, len(from.histograms))
	for name, h := range from.histograms {
		histograms[name] = h
	}
	quantiles := make(map[string]*Quantile, len(from.quantiles))
	for name, q := range from.quantiles {
		quantiles[name] = q
	}
	from.mu.Unlock()

	for _, name := range SortedNames(counters) {
		r.Counter(name).Add(counters[name].Value())
	}
	for _, name := range SortedNames(gauges) {
		r.Gauge(name).SetMax(gauges[name].Value())
	}
	for _, name := range SortedNames(histograms) {
		h := histograms[name]
		dst := r.Histogram(name, h.bounds...)
		n := len(h.counts)
		if len(dst.counts) < n {
			n = len(dst.counts)
		}
		for i := 0; i < n; i++ {
			dst.counts[i].Add(h.counts[i].Load())
		}
		dst.count.Add(h.Count())
		for v := h.Sum(); ; {
			old := dst.sum.Load()
			new := math.Float64bits(math.Float64frombits(old) + v)
			if dst.sum.CompareAndSwap(old, new) {
				break
			}
		}
	}
	for _, name := range SortedNames(quantiles) {
		r.Quantile(name).Merge(quantiles[name])
	}
}

// published maps expvar names to the indirection cell their expvar.Func
// reads, so re-publishing under a reused name (tests, repeated runs in
// one process) swaps the registry instead of hitting expvar.Publish's
// duplicate-name panic.
var published sync.Map // string -> *atomic.Pointer[Registry]

// Publish exposes the registry's Snapshot as the named expvar variable
// (served on /debug/vars). Publishing a second registry under the same
// name atomically replaces the first. Publishing a nil registry is a
// no-op.
func (r *Registry) Publish(name string) {
	if r == nil {
		return
	}
	cell, loaded := published.LoadOrStore(name, &atomic.Pointer[Registry]{})
	p := cell.(*atomic.Pointer[Registry])
	p.Store(r)
	if !loaded {
		expvar.Publish(name, expvar.Func(func() any {
			return p.Load().Snapshot()
		}))
	}
}

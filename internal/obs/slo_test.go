package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestSLOTrackerValidation(t *testing.T) {
	for _, tc := range []struct {
		name      string
		target    time.Duration
		objective float64
		window    time.Duration
	}{
		{"zero target", 0, 0.99, time.Minute},
		{"negative target", -time.Second, 0.99, time.Minute},
		{"objective zero", time.Second, 0, time.Minute},
		{"objective one", time.Second, 1, time.Minute},
		{"zero window", time.Second, 0.99, 0},
	} {
		if _, err := NewSLOTracker(tc.target, tc.objective, tc.window, nil); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestSLOTrackerNil(t *testing.T) {
	var s *SLOTracker
	s.Observe(time.Second) // must not panic
	if snap := s.Snapshot(); snap != (SLOSnapshot{}) {
		t.Errorf("nil snapshot = %+v", snap)
	}
	var buf bytes.Buffer
	if err := s.WriteProm(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil WriteProm wrote %q, err %v", buf.String(), err)
	}
}

func TestSLOTrackerAttainment(t *testing.T) {
	clock := newFakeClock(0) // manual advance only
	s, err := NewSLOTracker(100*time.Millisecond, 0.9, time.Minute, clock.Now)
	if err != nil {
		t.Fatal(err)
	}
	// Idle: attainment 1, burn 0.
	snap := s.Snapshot()
	if snap.Attainment != 1 || snap.BurnRate != 0 {
		t.Errorf("idle snapshot = %+v", snap)
	}

	// 8 good, 2 bad -> attainment 0.8, burn (1-0.8)/(1-0.9) = 2.
	for i := 0; i < 8; i++ {
		s.Observe(50 * time.Millisecond)
	}
	s.Observe(100 * time.Millisecond) // boundary counts as good
	s.Observe(500 * time.Millisecond)
	s.Observe(time.Second)
	snap = s.Snapshot()
	if snap.Good != 9 || snap.Total != 11 {
		t.Fatalf("good/total = %d/%d, want 9/11", snap.Good, snap.Total)
	}
	wantAtt := 9.0 / 11.0
	if math.Abs(snap.Attainment-wantAtt) > 1e-12 {
		t.Errorf("attainment = %v, want %v", snap.Attainment, wantAtt)
	}
	wantBurn := (1 - wantAtt) / 0.1
	if math.Abs(snap.BurnRate-wantBurn) > 1e-9 {
		t.Errorf("burn = %v, want %v", snap.BurnRate, wantBurn)
	}

	// Advance past the whole window: everything ages out.
	clock.mu.Lock()
	clock.now = clock.now.Add(2 * time.Minute)
	clock.mu.Unlock()
	snap = s.Snapshot()
	if snap.Total != 0 || snap.Attainment != 1 {
		t.Errorf("aged snapshot = %+v, want empty window", snap)
	}
}

func TestSLOTrackerSlidesGradually(t *testing.T) {
	clock := newFakeClock(0)
	s, err := NewSLOTracker(time.Millisecond, 0.99, time.Minute, clock.Now)
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(10 * time.Millisecond) // bad, lands in slot 0
	// Half a window later the bad sample is still visible...
	clock.mu.Lock()
	clock.now = clock.now.Add(30 * time.Second)
	clock.mu.Unlock()
	if snap := s.Snapshot(); snap.Total != 1 {
		t.Errorf("half-window total = %d, want 1", snap.Total)
	}
	// ...a full window later it is gone.
	clock.mu.Lock()
	clock.now = clock.now.Add(31 * time.Second)
	clock.mu.Unlock()
	if snap := s.Snapshot(); snap.Total != 0 {
		t.Errorf("post-window total = %d, want 0", snap.Total)
	}
}

func TestSLOTrackerWriteProm(t *testing.T) {
	s, err := NewSLOTracker(250*time.Millisecond, 0.99, time.Minute, newFakeClock(0).Now)
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(time.Millisecond)
	var buf bytes.Buffer
	if err := s.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE serve_slo_target_seconds gauge",
		"serve_slo_target_seconds 0.25",
		"serve_slo_attainment_ratio 1",
		"serve_slo_burn_rate 0",
		"serve_slo_window_requests 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteProm output missing %q:\n%s", want, out)
		}
	}
	// The appended families must themselves pass the exposition check.
	if _, err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Errorf("WriteProm output fails validation: %v", err)
	}
}

package obs

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
)

// dashGet fetches /debug/dash and returns the body, failing on any
// transport or status error.
func dashGet(t *testing.T, d *DebugServer) string {
	t.Helper()
	resp, err := http.Get("http://" + d.Addr() + "/debug/dash")
	if err != nil {
		t.Fatalf("GET /debug/dash: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/dash: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("Content-Type = %q, want text/html", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestDashboard drives the acceptance contract: /debug/dash answers 200
// with the live quantiles, counters, and registered series rendered as
// inline SVG sparklines.
func TestDashboard(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim_events_popped").Add(41)
	reg.Gauge("sim_queue_depth_highwater").Set(9)
	wq := reg.Quantile("sim_vm_wait_seconds")
	for i := 1; i <= 500; i++ {
		wq.Observe(float64(i))
	}
	d, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.AddSeries(func() []Series {
		return []Series{{
			Name: "fleet watts", Unit: "W",
			Points: []SeriesPoint{{T: 0, V: 125}, {T: 10, V: 400}, {T: 20, V: 250}},
		}}
	})

	body := dashGet(t, d)
	for _, want := range []string{
		"sim_vm_wait_seconds", // quantile row
		"sim_events_popped",   // counter row
		"41",
		"fleet watts", // series label
		"<svg",        // inline sparkline
		"<polyline",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q:\n%.600s", want, body)
		}
	}
	// Live quantiles: the P50 of 1..500 must appear in the digest table.
	if !strings.Contains(body, "250") {
		t.Errorf("dashboard quantile table missing P50 ~250:\n%.600s", body)
	}

	// Live: new observations appear on the next render.
	reg.Counter("sim_events_popped").Add(1)
	if !strings.Contains(dashGet(t, d), "42") {
		t.Error("dashboard not live across scrapes")
	}
}

// TestDashboardDecisionPanel drives the decisions & invariants panel:
// the flight-recorder and watchdog counters render as their own table,
// a clean watchdog reports no violations, and a firing one renders its
// structured report rows.
func TestDashboardDecisionPanel(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim_decision_admits_total").Add(7)
	reg.Counter("sim_decision_places_total").Add(6)
	reg.Counter("sim_decision_routes_total").Add(5)
	reg.Counter("sim_invariant_checks_total").Add(20)
	d, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	wd := NewWatchdog(1)
	d.AddWatchdog(wd)

	body := dashGet(t, d)
	for _, want := range []string{
		"decisions &amp; invariants",
		"sim_decision_admits_total",
		"sim_decision_routes_total",
		"sim_invariant_checks_total",
		"watchdog: no invariant violations",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("decision panel missing %q:\n%.600s", want, body)
		}
	}

	// A violation recorded mid-run appears as a report row on the next
	// scrape, with the detail HTML-escaped.
	wd.Register("work-conservation", func() error {
		return errors.New("loadLeft 10 but re-derived 3 (<drift>)")
	})
	wd.RunChecks(42)
	body = dashGet(t, d)
	for _, want := range []string{
		"work-conservation",
		"&lt;drift&gt;",
		"42",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("violation report missing %q:\n%.600s", want, body)
		}
	}
	if strings.Contains(body, "watchdog: no invariant violations") {
		t.Error("firing watchdog still reported clean")
	}
}

// TestDashboardEmpty pins the degenerate path: a dashboard over a nil
// registry and no series still serves a 200 page.
func TestDashboardEmpty(t *testing.T) {
	d, err := ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if body := dashGet(t, d); !strings.Contains(body, "pacevm live dashboard") {
		t.Errorf("empty dashboard body: %.200s", body)
	}

	var nilD *DebugServer
	nilD.AddSeries(func() []Series { return nil }) // must not panic
}

func TestSparklineSVG(t *testing.T) {
	if got := sparklineSVG(nil, 100, 20); !strings.HasPrefix(got, "<svg") || strings.Contains(got, "polyline") {
		t.Errorf("empty sparkline = %q", got)
	}
	flat := []SeriesPoint{{T: 0, V: 5}, {T: 1, V: 5}, {T: 2, V: 5}}
	if got := sparklineSVG(flat, 100, 20); !strings.Contains(got, "polyline") {
		t.Errorf("flat sparkline missing polyline: %q", got)
	}
}

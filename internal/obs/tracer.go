package obs

import (
	"encoding/json"
	"io"
	"math"
	"strconv"
	"sync"
	"unicode/utf8"
)

// Tracer records a run timeline in the Chrome trace-event JSON format
// (the catapult/Perfetto "JSON Array Format" with the object envelope),
// with timestamps in *simulated* microseconds — the simulator passes
// virtual seconds and the recorder scales them, so a loaded trace shows
// the run over simulation time, not wall time.
//
// A nil *Tracer is a no-op on every method, so tracing disabled costs a
// nil check per call site and nothing else. An enabled Tracer buffers
// events in memory (it is scoped to one run) and is safe for concurrent
// emitters.
type Tracer struct {
	mu     sync.Mutex
	events []TraceEvent
}

// Trace-event phase constants (the ph field).
const (
	PhaseComplete   = "X" // span with ts+dur
	PhaseInstant    = "i" // point event
	PhaseCounter    = "C" // counter track sample
	PhaseMetadata   = "M" // process/thread naming
	PhaseFlowStart  = "s" // arrow tail
	PhaseFlowFinish = "f" // arrow head
)

// TraceEvent is one entry of the traceEvents array. Fields follow the
// Chrome trace-event format; Ts and Dur are microseconds.
//
// Args is any JSON-serializable value. Hot emitters pass a small typed
// struct instead of a map[string]any — a struct whose exported fields
// are tagged in ascending key order serializes byte-identically to the
// equivalent map (encoding/json sorts map keys) while costing one
// interface allocation instead of a map plus one boxing allocation per
// entry. Decoding (ReadTraceFile) always yields map[string]any, so
// readers are unaffected.
type TraceEvent struct {
	Name  string  `json:"name"`
	Cat   string  `json:"cat,omitempty"`
	Phase string  `json:"ph"`
	Ts    float64 `json:"ts"`
	Dur   float64 `json:"dur,omitempty"`
	Pid   int     `json:"pid"`
	Tid   int     `json:"tid"`
	ID    int     `json:"id,omitempty"`
	Scope string  `json:"s,omitempty"`  // instant scope ("t" = thread)
	BindP string  `json:"bp,omitempty"` // flow binding ("e" = enclosing slice)
	Args  any     `json:"args,omitempty"`
}

// TraceFile is the emitted JSON document: the trace-event envelope plus
// a free-form metadata object (the run manifest rides there so one file
// is both Perfetto-loadable and self-describing).
type TraceFile struct {
	TraceEvents     []TraceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit,omitempty"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// NewTracer returns an empty recorder.
func NewTracer() *Tracer { return &Tracer{} }

// Enabled reports whether the tracer records anything; callers use it
// to skip building args maps on the disabled path.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit appends a raw event.
func (t *Tracer) Emit(ev TraceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// usec converts simulated seconds to trace microseconds.
func usec(sec float64) float64 { return sec * 1e6 }

// Span records a complete slice on (pid, tid) from start to end, both
// in simulated seconds. args may be nil, a map, or a typed struct (see
// TraceEvent.Args).
func (t *Tracer) Span(name, cat string, pid, tid int, start, end float64, args any) {
	if t == nil {
		return
	}
	t.Emit(TraceEvent{Name: name, Cat: cat, Phase: PhaseComplete, Ts: usec(start), Dur: usec(end - start), Pid: pid, Tid: tid, Args: args})
}

// Instant records a point event at ts simulated seconds.
func (t *Tracer) Instant(name, cat string, pid, tid int, ts float64, args any) {
	if t == nil {
		return
	}
	t.Emit(TraceEvent{Name: name, Cat: cat, Phase: PhaseInstant, Scope: "t", Ts: usec(ts), Pid: pid, Tid: tid, Args: args})
}

// Counter samples a counter track: series name -> value at ts simulated
// seconds.
func (t *Tracer) Counter(name string, pid, tid int, ts float64, series string, value float64) {
	if t == nil {
		return
	}
	t.Emit(TraceEvent{Name: name, Phase: PhaseCounter, Ts: usec(ts), Pid: pid, Tid: tid, Args: SeriesSample{Series: series, Value: value}})
}

// SeriesSample is the args payload of a counter event: one series name
// mapped to one value. It hand-encodes the {"<series>":<value>} object
// so the hottest periodic emitter (the simulator's queue-depth track)
// skips the per-sample map and boxing allocations; the encoding matches
// what encoding/json produces for the equivalent map[string]any byte
// for byte (pinned by TestTypedArgsMatchMapEncoding).
type SeriesSample struct {
	Series string
	Value  float64
}

// MarshalJSON implements json.Marshaler.
func (s SeriesSample) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, len(s.Series)+27)
	b = appendJSONString(append(b, '{'), s.Series)
	b = appendJSONFloat(append(b, ':'), s.Value)
	return append(b, '}'), nil
}

// appendJSONFloat renders a float64 exactly as encoding/json does:
// shortest round-trip form, fixed notation inside [1e-6, 1e21), and the
// exponent's leading zero trimmed outside it. Non-finite values are
// invalid in JSON; encode them as null (encoding/json errors instead,
// but a counter sample must never abort a trace flush).
func appendJSONFloat(b []byte, f float64) []byte {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return append(b, "null"...)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// jsonHex is the lowercase alphabet \u00xx escapes use.
const jsonHex = "0123456789abcdef"

// appendJSONString renders a quoted string exactly as encoding/json
// does with HTML escaping on (the json.Encoder default WriteTo uses):
// printable ASCII passes through except ", \, <, > and &; control
// bytes, invalid UTF-8 and the LINE/PARAGRAPH SEPARATOR runes escape.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', jsonHex[c>>4], jsonHex[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', jsonHex[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// FlowStart/FlowFinish draw an arrow (id-matched, same name and cat)
// from one track's slice to another's — the VM lifecycle arrows from a
// job's arrival to each of its VM spans.
func (t *Tracer) FlowStart(name, cat string, id, pid, tid int, ts float64) {
	if t == nil {
		return
	}
	t.Emit(TraceEvent{Name: name, Cat: cat, Phase: PhaseFlowStart, ID: id, Ts: usec(ts), Pid: pid, Tid: tid})
}

// FlowFinish is the arrow head; bp:"e" binds it to the enclosing slice.
func (t *Tracer) FlowFinish(name, cat string, id, pid, tid int, ts float64) {
	if t == nil {
		return
	}
	t.Emit(TraceEvent{Name: name, Cat: cat, Phase: PhaseFlowFinish, BindP: "e", ID: id, Ts: usec(ts), Pid: pid, Tid: tid})
}

// NameProcess/NameThread emit the metadata events viewers use to label
// tracks.
func (t *Tracer) NameProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.Emit(TraceEvent{Name: "process_name", Phase: PhaseMetadata, Pid: pid, Args: map[string]any{"name": name}})
}

// NameThread labels one thread (track) of a process.
func (t *Tracer) NameThread(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.Emit(TraceEvent{Name: "thread_name", Phase: PhaseMetadata, Pid: pid, Tid: tid, Args: map[string]any{"name": name}})
}

// Events returns a copy of the recorded events (nil on a nil tracer) —
// the export the sharded simulator's cross-shard timeline merge reads.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// Len returns the number of recorded events (0 on a nil tracer).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteTo serializes the trace as Chrome trace-event JSON. otherData
// (may be nil) is embedded verbatim as the envelope's metadata object.
// Writing a nil tracer emits a valid empty trace.
func (t *Tracer) WriteTo(w io.Writer, otherData map[string]any) error {
	f := TraceFile{TraceEvents: []TraceEvent{}, DisplayTimeUnit: "ms", OtherData: otherData}
	if t != nil {
		t.mu.Lock()
		f.TraceEvents = t.events
		defer t.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// ReadTraceFile parses a document WriteTo produced — the schema
// round-trip used by tests and downstream tooling.
func ReadTraceFile(r io.Reader) (TraceFile, error) {
	var f TraceFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return TraceFile{}, err
	}
	return f, nil
}

package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Tracer records a run timeline in the Chrome trace-event JSON format
// (the catapult/Perfetto "JSON Array Format" with the object envelope),
// with timestamps in *simulated* microseconds — the simulator passes
// virtual seconds and the recorder scales them, so a loaded trace shows
// the run over simulation time, not wall time.
//
// A nil *Tracer is a no-op on every method, so tracing disabled costs a
// nil check per call site and nothing else. An enabled Tracer buffers
// events in memory (it is scoped to one run) and is safe for concurrent
// emitters.
type Tracer struct {
	mu     sync.Mutex
	events []TraceEvent
}

// Trace-event phase constants (the ph field).
const (
	PhaseComplete   = "X" // span with ts+dur
	PhaseInstant    = "i" // point event
	PhaseCounter    = "C" // counter track sample
	PhaseMetadata   = "M" // process/thread naming
	PhaseFlowStart  = "s" // arrow tail
	PhaseFlowFinish = "f" // arrow head
)

// TraceEvent is one entry of the traceEvents array. Fields follow the
// Chrome trace-event format; Ts and Dur are microseconds.
type TraceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	ID    int            `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`  // instant scope ("t" = thread)
	BindP string         `json:"bp,omitempty"` // flow binding ("e" = enclosing slice)
	Args  map[string]any `json:"args,omitempty"`
}

// TraceFile is the emitted JSON document: the trace-event envelope plus
// a free-form metadata object (the run manifest rides there so one file
// is both Perfetto-loadable and self-describing).
type TraceFile struct {
	TraceEvents     []TraceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit,omitempty"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// NewTracer returns an empty recorder.
func NewTracer() *Tracer { return &Tracer{} }

// Enabled reports whether the tracer records anything; callers use it
// to skip building args maps on the disabled path.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit appends a raw event.
func (t *Tracer) Emit(ev TraceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// usec converts simulated seconds to trace microseconds.
func usec(sec float64) float64 { return sec * 1e6 }

// Span records a complete slice on (pid, tid) from start to end, both
// in simulated seconds.
func (t *Tracer) Span(name, cat string, pid, tid int, start, end float64, args map[string]any) {
	if t == nil {
		return
	}
	t.Emit(TraceEvent{Name: name, Cat: cat, Phase: PhaseComplete, Ts: usec(start), Dur: usec(end - start), Pid: pid, Tid: tid, Args: args})
}

// Instant records a point event at ts simulated seconds.
func (t *Tracer) Instant(name, cat string, pid, tid int, ts float64, args map[string]any) {
	if t == nil {
		return
	}
	t.Emit(TraceEvent{Name: name, Cat: cat, Phase: PhaseInstant, Scope: "t", Ts: usec(ts), Pid: pid, Tid: tid, Args: args})
}

// Counter samples a counter track: series name -> value at ts simulated
// seconds.
func (t *Tracer) Counter(name string, pid, tid int, ts float64, series string, value float64) {
	if t == nil {
		return
	}
	t.Emit(TraceEvent{Name: name, Phase: PhaseCounter, Ts: usec(ts), Pid: pid, Tid: tid, Args: map[string]any{series: value}})
}

// FlowStart/FlowFinish draw an arrow (id-matched, same name and cat)
// from one track's slice to another's — the VM lifecycle arrows from a
// job's arrival to each of its VM spans.
func (t *Tracer) FlowStart(name, cat string, id, pid, tid int, ts float64) {
	if t == nil {
		return
	}
	t.Emit(TraceEvent{Name: name, Cat: cat, Phase: PhaseFlowStart, ID: id, Ts: usec(ts), Pid: pid, Tid: tid})
}

// FlowFinish is the arrow head; bp:"e" binds it to the enclosing slice.
func (t *Tracer) FlowFinish(name, cat string, id, pid, tid int, ts float64) {
	if t == nil {
		return
	}
	t.Emit(TraceEvent{Name: name, Cat: cat, Phase: PhaseFlowFinish, BindP: "e", ID: id, Ts: usec(ts), Pid: pid, Tid: tid})
}

// NameProcess/NameThread emit the metadata events viewers use to label
// tracks.
func (t *Tracer) NameProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.Emit(TraceEvent{Name: "process_name", Phase: PhaseMetadata, Pid: pid, Args: map[string]any{"name": name}})
}

// NameThread labels one thread (track) of a process.
func (t *Tracer) NameThread(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.Emit(TraceEvent{Name: "thread_name", Phase: PhaseMetadata, Pid: pid, Tid: tid, Args: map[string]any{"name": name}})
}

// Len returns the number of recorded events (0 on a nil tracer).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteTo serializes the trace as Chrome trace-event JSON. otherData
// (may be nil) is embedded verbatim as the envelope's metadata object.
// Writing a nil tracer emits a valid empty trace.
func (t *Tracer) WriteTo(w io.Writer, otherData map[string]any) error {
	f := TraceFile{TraceEvents: []TraceEvent{}, DisplayTimeUnit: "ms", OtherData: otherData}
	if t != nil {
		t.mu.Lock()
		f.TraceEvents = t.events
		defer t.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// ReadTraceFile parses a document WriteTo produced — the schema
// round-trip used by tests and downstream tooling.
func ReadTraceFile(r io.Reader) (TraceFile, error) {
	var f TraceFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return TraceFile{}, err
	}
	return f, nil
}

package obs

// The /debug/dash live dashboard: one self-contained HTML page (no
// external assets, no scripts beyond a meta refresh) rendering the
// published registry's current snapshot — counters, gauges, quantile
// digests — and any time series the hosting CLI registers, drawn as
// inline SVG sparklines. The page re-renders on every request, so a
// browser pointed at a running simulation watches the metrics move.

import (
	"fmt"
	"html"
	"math"
	"net/http"
	"strings"
)

// SeriesPoint is one (time, value) sample of a dashboard series.
type SeriesPoint struct {
	T float64 // simulated seconds
	V float64
}

// Series is one named time series for the dashboard.
type Series struct {
	Name   string
	Unit   string
	Points []SeriesPoint
}

// SeriesFunc supplies the current series set on each dashboard render;
// implementations must be safe to call concurrently with the producer.
type SeriesFunc func() []Series

// AddSeries registers a series supplier with the dashboard. Safe to call
// after the server is serving; suppliers render in registration order.
func (d *DebugServer) AddSeries(fn SeriesFunc) {
	if d == nil || fn == nil {
		return
	}
	d.mu.Lock()
	d.series = append(d.series, fn)
	d.mu.Unlock()
}

// AddWatchdog registers an invariant watchdog whose violation report
// the dashboard renders. Safe to call while serving; nil is ignored.
func (d *DebugServer) AddWatchdog(wd *Watchdog) {
	if d == nil || wd == nil {
		return
	}
	d.mu.Lock()
	d.watchdogs = append(d.watchdogs, wd)
	d.mu.Unlock()
}

// decisionPanelCounters names the counters the dedicated decision /
// steal / invariant panel pulls out of the snapshot, in display order.
var decisionPanelCounters = []string{
	"sim_decision_admits_total",
	"sim_decision_places_total",
	"sim_decision_rejects_total",
	"sim_decision_routes_total",
	"sim_admission_steals_total",
	"sim_invariant_checks_total",
	"sim_invariant_violations_total",
}

// handleDash renders the dashboard page.
func (d *DebugServer) handleDash(w http.ResponseWriter, _ *http.Request) {
	var snap Snapshot
	if d.reg != nil {
		snap = d.reg.Snapshot()
	}
	d.mu.Lock()
	fns := append([]SeriesFunc(nil), d.series...)
	wds := append([]*Watchdog(nil), d.watchdogs...)
	slo := d.slo
	wall := d.wall
	d.mu.Unlock()

	var b strings.Builder
	b.WriteString(`<!DOCTYPE html><html><head><meta charset="utf-8">` +
		`<meta http-equiv="refresh" content="2"><title>pacevm dashboard</title><style>` +
		`body{font:14px/1.5 monospace;margin:2em;background:#fafafa;color:#222}` +
		`h1{font-size:1.2em}h2{font-size:1em;margin:1.5em 0 .3em}` +
		`table{border-collapse:collapse}td,th{padding:.15em .8em;text-align:right;border-bottom:1px solid #ddd}` +
		`th{text-align:left}td:first-child{text-align:left}` +
		`svg{background:#fff;border:1px solid #ddd;vertical-align:middle}` +
		`.spark{margin:.3em 0}.spark span{display:inline-block;min-width:22em}` +
		`</style></head><body><h1>pacevm live dashboard</h1>` +
		`<p><a href="/debug/vars">/debug/vars</a> · <a href="/debug/pprof/">/debug/pprof</a> · ` +
		`<a href="/metrics">/metrics</a> · <a href="/debug/slow">/debug/slow</a></p>`)

	// SLO panel: rolling attainment and error-budget burn over the
	// sliding window, with the worst request currently in the slow ring.
	if slo != nil {
		ss := slo.Snapshot()
		b.WriteString(`<h2>SLO</h2><table><tr><th>target</th><th>objective</th><th>window</th>` +
			`<th>good/total</th><th>attainment</th><th>burn rate</th></tr>`)
		burnStyle := ""
		if ss.BurnRate > 1 {
			burnStyle = ` style="color:#c00;font-weight:bold"`
		}
		fmt.Fprintf(&b, `<tr><td>%.4gs</td><td>%.4g</td><td>%.4gs</td><td>%d/%d</td><td>%.4f</td><td%s>%.3f</td></tr>`,
			ss.TargetSeconds, ss.Objective, ss.WindowSeconds, ss.Good, ss.Total, ss.Attainment, burnStyle, ss.BurnRate)
		b.WriteString(`</table>`)
		if wall != nil {
			if slow := wall.Slowest(); len(slow) > 0 {
				fmt.Fprintf(&b, `<p>slowest request: %s (%.2fms, %s) — <a href="/debug/slow">/debug/slow</a></p>`,
					html.EscapeString(slow[0].RequestID), slow[0].TotalMS, html.EscapeString(slow[0].Outcome))
			}
		}
	}

	if len(snap.Quantiles) > 0 {
		b.WriteString(`<h2>quantiles</h2><table><tr><th>digest</th><th>count</th><th>min</th><th>p50</th><th>p90</th><th>p99</th><th>max</th></tr>`)
		for _, name := range SortedNames(snap.Quantiles) {
			q := snap.Quantiles[name]
			fmt.Fprintf(&b, `<tr><td>%s</td><td>%d</td><td>%.4g</td><td>%.4g</td><td>%.4g</td><td>%.4g</td><td>%.4g</td></tr>`,
				html.EscapeString(name), q.Count, q.Min, q.P50, q.P90, q.P99, q.Max)
		}
		b.WriteString(`</table>`)
	}

	for _, fn := range fns {
		for _, s := range fn() {
			b.WriteString(`<div class="spark"><span>`)
			b.WriteString(html.EscapeString(s.Name))
			if len(s.Points) > 0 {
				last := s.Points[len(s.Points)-1]
				fmt.Fprintf(&b, " = %.4g%s @ t=%.0fs", last.V, html.EscapeString(s.Unit), last.T)
			}
			b.WriteString(`</span> `)
			b.WriteString(sparklineSVG(s.Points, 360, 48))
			b.WriteString(`</div>`)
		}
	}

	// Decision / steal / invariant panel: the flight-recorder and
	// watchdog counters pulled out of the flat table, plus each
	// registered watchdog's violation report.
	anyDecision := false
	for _, name := range decisionPanelCounters {
		if _, ok := snap.Counters[name]; ok {
			anyDecision = true
			break
		}
	}
	if anyDecision || len(wds) > 0 {
		b.WriteString(`<h2>decisions &amp; invariants</h2>`)
	}
	if anyDecision {
		b.WriteString(`<table><tr><th>counter</th><th>value</th></tr>`)
		for _, name := range decisionPanelCounters {
			if v, ok := snap.Counters[name]; ok {
				fmt.Fprintf(&b, `<tr><td>%s</td><td>%d</td></tr>`, html.EscapeString(name), v)
			}
		}
		b.WriteString(`</table>`)
	}
	for _, wd := range wds {
		vs := wd.Violations()
		if len(vs) == 0 {
			b.WriteString(`<p>watchdog: no invariant violations</p>`)
			continue
		}
		b.WriteString(`<table><tr><th>violation</th><th>shard</th><th>t</th><th>detail</th></tr>`)
		for _, v := range vs {
			fmt.Fprintf(&b, `<tr><td>%s</td><td>%d</td><td>%.4g</td><td>%s</td></tr>`,
				html.EscapeString(v.Check), v.Shard, v.At, html.EscapeString(v.Detail))
		}
		b.WriteString(`</table>`)
	}

	if len(snap.Counters) > 0 {
		b.WriteString(`<h2>counters</h2><table><tr><th>counter</th><th>value</th></tr>`)
		for _, name := range SortedNames(snap.Counters) {
			fmt.Fprintf(&b, `<tr><td>%s</td><td>%d</td></tr>`, html.EscapeString(name), snap.Counters[name])
		}
		b.WriteString(`</table>`)
	}
	if len(snap.Gauges) > 0 {
		b.WriteString(`<h2>gauges</h2><table><tr><th>gauge</th><th>value</th></tr>`)
		for _, name := range SortedNames(snap.Gauges) {
			fmt.Fprintf(&b, `<tr><td>%s</td><td>%d</td></tr>`, html.EscapeString(name), snap.Gauges[name])
		}
		b.WriteString(`</table>`)
	}
	if len(snap.Histograms) > 0 {
		b.WriteString(`<h2>histograms</h2><table><tr><th>histogram</th><th>count</th><th>sum</th></tr>`)
		for _, name := range SortedNames(snap.Histograms) {
			h := snap.Histograms[name]
			fmt.Fprintf(&b, `<tr><td>%s</td><td>%d</td><td>%.4g</td></tr>`, html.EscapeString(name), h.Count, h.Sum)
		}
		b.WriteString(`</table>`)
	}
	b.WriteString(`</body></html>`)

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// sparklineSVG renders a series as a fixed-size inline SVG polyline,
// normalized to the series' own [min, max] range (a flat series draws a
// midline). Returns an empty-plot SVG for fewer than two points.
func sparklineSVG(pts []SeriesPoint, w, h int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg width="%d" height="%d" xmlns="http://www.w3.org/2000/svg">`, w, h)
	if len(pts) >= 2 {
		minT, maxT := pts[0].T, pts[len(pts)-1].T
		minV, maxV := math.Inf(1), math.Inf(-1)
		for _, p := range pts {
			minV = math.Min(minV, p.V)
			maxV = math.Max(maxV, p.V)
		}
		spanT, spanV := maxT-minT, maxV-minV
		var poly strings.Builder
		for i, p := range pts {
			x := 1.0
			if spanT > 0 {
				x = 1 + (p.T-minT)/spanT*float64(w-2)
			}
			y := float64(h) / 2
			if spanV > 0 {
				y = float64(h-2) - (p.V-minV)/spanV*float64(h-4) + 1
			}
			if i > 0 {
				poly.WriteByte(' ')
			}
			fmt.Fprintf(&poly, "%.1f,%.1f", x, y)
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="#1f77b4" stroke-width="1.2" points="%s"/>`, poly.String())
	}
	b.WriteString(`</svg>`)
	return b.String()
}

package obs

// Wall-clock request tracing. The existing Tracer records *simulated*
// time for the batch simulator; WallTracer is its serving-path sibling:
// it stamps every request with a request ID (generated, or honored from
// the client's X-Request-Id by the HTTP layer), records one span per
// pipeline stage against the real clock, and keeps a bounded worst-K
// ring of the slowest finished requests so a tail-latency outlier can
// be dumped (/debug/slow) with its full stage breakdown long after it
// happened.
//
// The obs zero-cost discipline applies: a nil *WallTracer starts nil
// *ReqTrace handles, and every method on both is a no-op on a nil
// receiver — tracing disabled costs one predictable nil check per call
// site and allocates nothing. An enabled trace allocates once per
// request (the handle) and takes the ring lock once, at Finish.

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// WallTracer issues and collects per-request wall-clock traces over a
// fixed stage list. Build with NewWallTracer; nil disables tracing.
type WallTracer struct {
	stages []string
	k      int
	clock  func() time.Time
	seq    atomic.Uint64
	epoch  uint64 // id prefix: start nanos, so restarts don't collide

	mu   sync.Mutex
	ring []*ReqTrace // worst-k finished traces by total, unordered
}

// NewWallTracer returns a tracer over the given pipeline stages keeping
// the k slowest finished requests (k <= 0 keeps none — stage timing
// still works, only the slow ring is empty). clock defaults to
// time.Now.
func NewWallTracer(stages []string, k int, clock func() time.Time) *WallTracer {
	if clock == nil {
		clock = time.Now
	}
	w := &WallTracer{
		stages: append([]string(nil), stages...),
		k:      k,
		clock:  clock,
		epoch:  uint64(clock().UnixNano()),
	}
	return w
}

// Enabled reports whether the tracer records anything.
func (w *WallTracer) Enabled() bool { return w != nil }

// Stages returns the tracer's stage names (nil on a nil receiver).
func (w *WallTracer) Stages() []string {
	if w == nil {
		return nil
	}
	return w.stages
}

// Start begins one request trace. id == "" generates a process-unique
// request ID; a non-empty id (the client's X-Request-Id) is honored
// verbatim. A nil tracer returns a nil (no-op) trace.
func (w *WallTracer) Start(id string) *ReqTrace {
	if w == nil {
		return nil
	}
	if id == "" {
		id = fmt.Sprintf("req-%x-%d", w.epoch&0xffffffff, w.seq.Add(1))
	}
	return &ReqTrace{
		w:     w,
		id:    id,
		start: w.clock(),
		began: make([]time.Time, len(w.stages)),
		durs:  make([]time.Duration, len(w.stages)),
	}
}

// ReqTrace is one in-flight request's trace: a start time, one
// accumulated duration per stage, and free-form attributes stamped
// along the way. A trace is owned by one goroutine at a time and hands
// off with the request (HTTP handler -> shard worker -> handler); the
// channel handoffs provide the happens-before, so ReqTrace itself is
// unsynchronized until Finish.
type ReqTrace struct {
	w       *WallTracer
	id      string
	start   time.Time
	began   []time.Time
	durs    []time.Duration
	attrs   [][2]string
	outcome string
	total   time.Duration
}

// ID returns the request ID ("" on a nil trace).
func (t *ReqTrace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StageStart opens stage i at the current clock.
func (t *ReqTrace) StageStart(i int) {
	if t == nil || i < 0 || i >= len(t.began) {
		return
	}
	t.began[i] = t.w.clock()
}

// StageEnd closes stage i, accumulating the elapsed time since its
// StageStart. A StageEnd without a matching open is ignored, and a
// stage may open and close several times (the durations add), so a
// logical stage can span more than one function.
func (t *ReqTrace) StageEnd(i int) {
	if t == nil || i < 0 || i >= len(t.began) || t.began[i].IsZero() {
		return
	}
	t.durs[i] += t.w.clock().Sub(t.began[i])
	t.began[i] = time.Time{}
}

// StageDur records an externally measured duration for stage i (the
// queue-wait span is measured by the shard worker from the enqueue
// timestamp, not by a Start/End pair).
func (t *ReqTrace) StageDur(i int, d time.Duration) {
	if t == nil || i < 0 || i >= len(t.durs) || d < 0 {
		return
	}
	t.durs[i] += d
}

// Dur returns the accumulated duration of stage i.
func (t *ReqTrace) Dur(i int) time.Duration {
	if t == nil || i < 0 || i >= len(t.durs) {
		return 0
	}
	return t.durs[i]
}

// Annotate attaches one key/value attribute (ladder level, route,
// idempotency key, ...) carried into the slow-ring dump.
func (t *ReqTrace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.attrs = append(t.attrs, [2]string{key, value})
}

// Finish seals the trace with its outcome, computes the end-to-end
// wall time, and offers the trace to the worst-K ring. It returns the
// total duration (0 on a nil trace). Finish must be called exactly
// once, after every stage has closed.
func (t *ReqTrace) Finish(outcome string) time.Duration {
	if t == nil {
		return 0
	}
	t.outcome = outcome
	t.total = t.w.clock().Sub(t.start)
	t.w.offer(t)
	return t.total
}

// offer inserts a finished trace into the worst-K ring if it is slower
// than the current K-th slowest.
func (w *WallTracer) offer(t *ReqTrace) {
	if w.k <= 0 {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.ring) < w.k {
		w.ring = append(w.ring, t)
		return
	}
	min := 0
	for i, r := range w.ring {
		if r.total < w.ring[min].total {
			min = i
		}
	}
	if t.total > w.ring[min].total {
		w.ring[min] = t
	}
}

// SlowStage is one stage span of a dumped slow request.
type SlowStage struct {
	Stage string  `json:"stage"`
	MS    float64 `json:"ms"`
}

// SlowRequest is one entry of the slow-request dump: the full stage
// breakdown of one tail-latency outlier.
type SlowRequest struct {
	RequestID string            `json:"request_id"`
	Start     time.Time         `json:"start"`
	Outcome   string            `json:"outcome"`
	TotalMS   float64           `json:"total_ms"`
	Attrs     map[string]string `json:"attrs,omitempty"`
	Stages    []SlowStage       `json:"stages"`
}

// Slowest snapshots the worst-K ring, slowest first. Every stage
// appears in each entry (zero-duration stages included), so a dump
// always shows the complete pipeline.
func (w *WallTracer) Slowest() []SlowRequest {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	ring := append([]*ReqTrace(nil), w.ring...)
	w.mu.Unlock()
	out := make([]SlowRequest, 0, len(ring))
	for _, t := range ring {
		sr := SlowRequest{
			RequestID: t.id,
			Start:     t.start,
			Outcome:   t.outcome,
			TotalMS:   float64(t.total) / float64(time.Millisecond),
			Stages:    make([]SlowStage, len(w.stages)),
		}
		for i, name := range w.stages {
			sr.Stages[i] = SlowStage{Stage: name, MS: float64(t.durs[i]) / float64(time.Millisecond)}
		}
		if len(t.attrs) > 0 {
			sr.Attrs = make(map[string]string, len(t.attrs))
			for _, kv := range t.attrs {
				sr.Attrs[kv[0]] = kv[1]
			}
		}
		out = append(out, sr)
	}
	// Insertion sort, slowest first: K is small and bounded.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].TotalMS > out[j-1].TotalMS; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// DumpJSON writes the slow-request ring as indented JSON — the
// /debug/slow payload. A nil tracer writes an empty array.
func (w *WallTracer) DumpJSON(out io.Writer) error {
	slow := w.Slowest()
	if slow == nil {
		slow = []SlowRequest{}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(slow)
}

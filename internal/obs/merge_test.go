package obs

import (
	"math"
	"reflect"
	"sort"
	"testing"
)

// TestQuantileMergeExactFolds checks the exactly-folded digest state —
// count, min, max — and that merged quantile estimates stay within the
// sketch's rank-error bound of the true combined-stream quantiles.
func TestQuantileMergeExactFolds(t *testing.T) {
	a, b := NewQuantile(), NewQuantile()
	var all []float64
	// Disjoint-ish ranges with overlap, enough volume to force several
	// compactions on each side.
	x := 1.0
	for i := 0; i < 5000; i++ {
		x = math.Mod(x*997+13, 4096)
		a.Observe(x)
		all = append(all, x)
	}
	for i := 0; i < 3000; i++ {
		x = math.Mod(x*1013+7, 8192)
		b.Observe(x)
		all = append(all, x)
	}
	bBefore := b.Snapshot()
	a.Merge(b)

	if got, want := a.Count(), int64(len(all)); got != want {
		t.Fatalf("merged count = %d, want %d", got, want)
	}
	sort.Float64s(all)
	if a.Min() != all[0] || a.Max() != all[len(all)-1] {
		t.Errorf("merged min/max = %v/%v, want %v/%v", a.Min(), a.Max(), all[0], all[len(all)-1])
	}
	if got := b.Snapshot(); got != bBefore {
		t.Errorf("Merge mutated its source: %+v vs %+v", got, bBefore)
	}
	// Rank error: a digest-of-digests carries at most twice the single
	// sketch's ~1/quantileCentroids rank-error budget.
	tol := 2.5 / quantileCentroids * float64(len(all))
	for _, p := range []float64{0.5, 0.9, 0.99} {
		got := a.Quantile(p)
		rank := sort.SearchFloat64s(all, got)
		want := p * float64(len(all)-1)
		if math.Abs(float64(rank)-want) > tol {
			t.Errorf("Quantile(%v) = %v lands at rank %d, want %v ± %v", p, got, rank, want, tol)
		}
	}
}

// TestQuantileMergeDeterministic: folding identical per-shard digests in
// the same order twice yields identical snapshots — the property the
// sharded runner's determinism stress test composes on.
func TestQuantileMergeDeterministic(t *testing.T) {
	build := func() *Quantile {
		q := NewQuantile()
		x := 3.0
		for i := 0; i < 2000; i++ {
			x = math.Mod(x*1009+29, 1024)
			q.Observe(x)
		}
		return q
	}
	run := func() QuantileSnapshot {
		dst := NewQuantile()
		for k := 0; k < 4; k++ {
			dst.Merge(build())
		}
		return dst.Snapshot()
	}
	first := run()
	if first.Count != 8000 {
		t.Fatalf("count = %d, want 8000", first.Count)
	}
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("merge is not deterministic: %+v vs %+v", got, first)
		}
	}
}

// TestQuantileMergeEdgeCases: nil receivers/sources, empty sources and
// self-merge are all no-ops.
func TestQuantileMergeEdgeCases(t *testing.T) {
	var nilQ *Quantile
	nilQ.Merge(NewQuantile()) // must not panic
	q := NewQuantile()
	q.Observe(5)
	q.Merge(nilQ)
	q.Merge(NewQuantile())
	q.Merge(q)
	want := QuantileSnapshot{Count: 1, Min: 5, Max: 5, P50: 5, P90: 5, P99: 5}
	if got := q.Snapshot(); got != want {
		t.Errorf("after no-op merges: %+v, want %+v", got, want)
	}
	// Merging a populated digest into an empty one adopts its state.
	dst := NewQuantile()
	dst.Merge(q)
	if got := dst.Snapshot(); got != want {
		t.Errorf("empty.Merge(q): %+v, want %+v", got, want)
	}
}

// TestRegistryMerge folds two registries and checks every instrument
// kind: counters add, gauges high-water, histograms add buckets/sums,
// quantiles merge, and instruments absent in the destination are
// created.
func TestRegistryMerge(t *testing.T) {
	dst, src := NewRegistry(), NewRegistry()
	dst.Counter("events").Add(10)
	src.Counter("events").Add(32)
	src.Counter("src_only").Add(7)
	dst.Gauge("peak").Set(40)
	src.Gauge("peak").Set(25)
	src.Gauge("peak_hi").Set(99)
	bounds := []float64{1, 10, 100}
	for _, v := range []float64{0.5, 5, 50} {
		dst.Histogram("lat", bounds...).Observe(v)
	}
	for _, v := range []float64{5, 500, 0.25} {
		src.Histogram("lat", bounds...).Observe(v)
	}
	for i := 0; i < 100; i++ {
		dst.Quantile("wait").Observe(float64(i))
		src.Quantile("wait").Observe(float64(100 + i))
	}

	srcBefore := src.Snapshot()
	dst.Merge(src)
	dst.Merge(nil)
	dst.Merge(dst)
	var nilReg *Registry
	nilReg.Merge(src) // must not panic

	s := dst.Snapshot()
	if got := s.Counters["events"]; got != 42 {
		t.Errorf("events = %d, want 42", got)
	}
	if got := s.Counters["src_only"]; got != 7 {
		t.Errorf("src_only = %d, want 7", got)
	}
	if got := s.Gauges["peak"]; got != 40 {
		t.Errorf("peak = %d, want 40 (high-water, not overwrite)", got)
	}
	if got := s.Gauges["peak_hi"]; got != 99 {
		t.Errorf("peak_hi = %d, want 99", got)
	}
	h := s.Histograms["lat"]
	if h.Count != 6 || h.Sum != 560.75 {
		t.Errorf("lat count/sum = %d/%v, want 6/560.75", h.Count, h.Sum)
	}
	if want := []int64{2, 2, 1, 1}; !reflect.DeepEqual(h.Counts, want) {
		t.Errorf("lat buckets = %v, want %v", h.Counts, want)
	}
	q := s.Quantiles["wait"]
	if q.Count != 200 || q.Min != 0 || q.Max != 199 {
		t.Errorf("wait digest = %+v, want count 200 min 0 max 199", q)
	}
	if q.P50 < 80 || q.P50 > 120 {
		t.Errorf("wait P50 = %v, want ≈ 99.5", q.P50)
	}
	if got := src.Snapshot(); !reflect.DeepEqual(got, srcBefore) {
		t.Errorf("Merge mutated its source")
	}
}

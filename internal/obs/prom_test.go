package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestSeriesName(t *testing.T) {
	for _, tc := range []struct {
		base string
		kv   []string
		want string
	}{
		{"plain", nil, "plain"},
		{"serve_req", []string{"outcome", "placed"}, `serve_req{outcome="placed"}`},
		// Keys render sorted so one label set is one registry entry.
		{"m", []string{"z", "1", "a", "2"}, `m{a="2",z="1"}`},
		// Names and keys sanitize, values escape.
		{"bad name", []string{"bad key", "q\"v\\w\nx"}, `bad_name{bad_key="q\"v\\w\nx"}`},
		{"9lead", []string{"1k", "v"}, `_lead{_k="v"}`},
	} {
		if got := SeriesName(tc.base, tc.kv...); got != tc.want {
			t.Errorf("SeriesName(%q, %v) = %q, want %q", tc.base, tc.kv, got, tc.want)
		}
	}
}

// TestWritePrometheusGolden locks the exposition byte-for-byte for a
// registry exercising every instrument kind, labeled series grouping,
// and label-value escaping.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(SeriesName("serve_requests_total", "outcome", "placed")).Add(7)
	r.Counter(SeriesName("serve_requests_total", "outcome", "shed")).Add(2)
	r.Counter("weird name-1").Inc()
	r.Gauge("serve_depth").Set(3)
	h := r.Histogram("serve_stage_seconds", 1, 10, 100)
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	r.Quantile("serve_e2e").Observe(2.5)
	r.Quantile("serve_empty") // registered, never observed

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot(), map[string]string{
		"serve_requests_total": "Requests by outcome.\nSecond line \\ escaped.",
	}); err != nil {
		t.Fatal(err)
	}
	want := `# HELP serve_requests_total Requests by outcome.\nSecond line \\ escaped.
# TYPE serve_requests_total counter
serve_requests_total{outcome="placed"} 7
serve_requests_total{outcome="shed"} 2
# HELP weird_name_1 weird_name_1
# TYPE weird_name_1 counter
weird_name_1 1
# HELP serve_depth serve_depth
# TYPE serve_depth gauge
serve_depth 3
# HELP serve_stage_seconds serve_stage_seconds
# TYPE serve_stage_seconds histogram
serve_stage_seconds_bucket{le="1"} 1
serve_stage_seconds_bucket{le="10"} 2
serve_stage_seconds_bucket{le="100"} 3
serve_stage_seconds_bucket{le="+Inf"} 4
serve_stage_seconds_sum 555.5
serve_stage_seconds_count 4
# HELP serve_e2e serve_e2e
# TYPE serve_e2e summary
serve_e2e{quantile="0.5"} 2.5
serve_e2e{quantile="0.9"} 2.5
serve_e2e{quantile="0.99"} 2.5
serve_e2e_count 1
# HELP serve_e2e_min Exact min of serve_e2e.
# TYPE serve_e2e_min gauge
serve_e2e_min 2.5
# HELP serve_e2e_max Exact max of serve_e2e.
# TYPE serve_e2e_max gauge
serve_e2e_max 2.5
# HELP serve_empty serve_empty
# TYPE serve_empty summary
serve_empty_count 0
# HELP serve_empty_min Exact min of serve_empty.
# TYPE serve_empty_min gauge
serve_empty_min 0
# HELP serve_empty_max Exact max of serve_empty.
# TYPE serve_empty_max gauge
serve_empty_max 0
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// The golden output must satisfy the machine validator too, and the
	// validator must see the right family types.
	fams, err := ValidateExposition(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("golden output fails validation: %v", err)
	}
	for name, typ := range map[string]string{
		"serve_requests_total": "counter",
		"serve_depth":          "gauge",
		"serve_stage_seconds":  "histogram",
		"serve_e2e":            "summary",
	} {
		if fams[name] != typ {
			t.Errorf("family %s = %q, want %q", name, fams[name], typ)
		}
	}
}

func TestWritePrometheusLabeledHistograms(t *testing.T) {
	r := NewRegistry()
	r.Histogram(SeriesName("stage", "stage", "decode"), 0.001, 0.01).Observe(0.005)
	r.Histogram(SeriesName("stage", "stage", "search"), 0.001, 0.01).Observe(0.5)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot(), nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# TYPE stage histogram") != 1 {
		t.Errorf("labeled series must share one TYPE line:\n%s", out)
	}
	for _, want := range []string{
		`stage_bucket{stage="decode",le="0.01"} 1`,
		`stage_bucket{stage="search",le="+Inf"} 1`,
		`stage_sum{stage="search"} 0.5`,
		`stage_count{stage="decode"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if _, err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Errorf("labeled histogram exposition invalid: %v", err)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	for _, tc := range []struct {
		name, in, wantErr string
	}{
		{"bad metric name", "1bad 3\n", "bad metric name"},
		{"bad value", "m NaNope\n", "bad value"},
		{"unknown type", "# TYPE m widget\n", "unknown TYPE"},
		{"duplicate type", "# TYPE m counter\n# TYPE m gauge\n", "second TYPE"},
		{"bad label name", `m{1bad="v"} 1` + "\n", "bad label name"},
		{"unterminated label", `m{k="v` + "\n", "unterminated"},
		{"bad escape", `m{k="\t"} 1` + "\n", "bad escape"},
		{"duplicate label", `m{k="a",k="b"} 1` + "\n", "duplicate label"},
		{
			"non-cumulative buckets",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
			"not cumulative",
		},
		{
			"le not increasing",
			"# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\n",
			"not increasing",
		},
		{
			"missing +Inf",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\n",
			"no +Inf bucket",
		},
		{
			"inf != count",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_count 5\n",
			"!= count",
		},
	} {
		_, err := ValidateExposition(strings.NewReader(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestValidateExpositionAccepts(t *testing.T) {
	in := `# random comment
# HELP m Help text.
# TYPE m counter
m 1 1700000000000
m{a="x"} +Inf
untyped_sample{q="a\"b\\c\nd"} -2.5e-3
`
	fams, err := ValidateExposition(strings.NewReader(in))
	if err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	if fams["m"] != "counter" || fams["untyped_sample"] != "untyped" {
		t.Errorf("families = %v", fams)
	}
}

// FuzzPromEscape checks the renderer's core safety property: no
// base/label/value input can produce an exposition the validator
// rejects, and escaped label values round-trip exactly.
func FuzzPromEscape(f *testing.F) {
	f.Add("serve_requests_total", "outcome", "placed")
	f.Add("bad name", "bad key", `q"v\w`+"\nx")
	f.Add("", "", "")
	f.Add("9digit", "1digit", `\\`)
	f.Add("m", "k", `trailing\`)
	f.Add("m", "k", "\"\n\\\"")
	f.Fuzz(func(t *testing.T, base, key, value string) {
		name := SeriesName(base, key, value)
		snap := Snapshot{Counters: map[string]int64{name: 1}}
		var buf bytes.Buffer
		if err := WritePrometheus(&buf, snap, nil); err != nil {
			t.Fatalf("render: %v", err)
		}
		if _, err := ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("escaper produced invalid exposition for (%q,%q,%q): %v\n%s",
				base, key, value, err, buf.String())
		}
		// Escaped values must round-trip through the parser byte-exact.
		s := splitSeries(name)
		if s.labels == "" {
			t.Fatalf("SeriesName(%q,%q,%q) = %q lost its label block", base, key, value, name)
		}
		labels, rest, err := parseLabels("{" + s.labels + "}")
		if err != nil || rest != "" {
			t.Fatalf("label block %q unparseable: %v (rest %q)", s.labels, err, rest)
		}
		if got := labels[PromLabelName(key)]; got != value {
			t.Fatalf("label value round-trip: got %q, want %q", got, value)
		}
	})
}

package obs

// Rolling SLO tracking: "are 99% of placements landing under X ms over
// the last minute, and how fast are we burning the error budget?" —
// the serving-path counterpart of the simulator's stretch/deadline
// metrics, measured continuously so the degradation ladder's
// energy-vs-SLA tradeoff is defensible while it runs.
//
// The tracker is a fixed ring of per-slot good/total counters covering
// a sliding window; attainment is the good fraction over the live
// slots, and the burn rate is the classic error-budget ratio
// (1-attainment)/(1-objective): 1.0 means the budget exactly runs out
// at the end of the compliance period, >1 means it runs out sooner.
// Like every obs instrument a nil *SLOTracker is a no-op on all
// methods.

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// sloSlots is the ring granularity: the window divides into this many
// slots, so a sample ages out at most window/sloSlots late.
const sloSlots = 60

type sloSlot struct {
	good  int64
	total int64
}

// SLOTracker measures rolling attainment of "fraction objective of
// requests complete under target" over a sliding window.
type SLOTracker struct {
	target    time.Duration
	objective float64
	window    time.Duration
	slot      time.Duration
	clock     func() time.Time
	start     time.Time

	mu    sync.Mutex
	slots [sloSlots]sloSlot
	head  int64 // absolute slot index the ring head currently holds
}

// NewSLOTracker builds a tracker: target is the per-request latency
// bound, objective the required good fraction in (0,1), window the
// sliding measurement window. clock defaults to time.Now.
func NewSLOTracker(target time.Duration, objective float64, window time.Duration, clock func() time.Time) (*SLOTracker, error) {
	if target <= 0 {
		return nil, fmt.Errorf("obs: SLO target %v must be > 0", target)
	}
	if objective <= 0 || objective >= 1 {
		return nil, fmt.Errorf("obs: SLO objective %v out of (0,1)", objective)
	}
	if window <= 0 {
		return nil, fmt.Errorf("obs: SLO window %v must be > 0", window)
	}
	if clock == nil {
		clock = time.Now
	}
	return &SLOTracker{
		target:    target,
		objective: objective,
		window:    window,
		slot:      window / sloSlots,
		clock:     clock,
		start:     clock(),
	}, nil
}

// advance ages the ring to the current clock, clearing slots that fell
// out of the window; callers hold s.mu.
func (s *SLOTracker) advance(now time.Time) {
	abs := int64(now.Sub(s.start) / s.slot)
	if abs <= s.head {
		return
	}
	steps := abs - s.head
	if steps > sloSlots {
		steps = sloSlots
	}
	for i := int64(1); i <= steps; i++ {
		s.slots[(s.head+i)%sloSlots] = sloSlot{}
	}
	s.head = abs
}

// Observe folds one end-to-end request latency into the window.
func (s *SLOTracker) Observe(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.advance(s.clock())
	sl := &s.slots[s.head%sloSlots]
	sl.total++
	if d <= s.target {
		sl.good++
	}
	s.mu.Unlock()
}

// SLOSnapshot is the tracker's exported state.
type SLOSnapshot struct {
	TargetSeconds float64 `json:"target_seconds"`
	Objective     float64 `json:"objective"`
	WindowSeconds float64 `json:"window_seconds"`
	Good          int64   `json:"good"`
	Total         int64   `json:"total"`
	// Attainment is the good fraction over the window; 1 with no
	// traffic (an idle service is not violating its SLO).
	Attainment float64 `json:"attainment"`
	// BurnRate is (1-attainment)/(1-objective): how many error budgets
	// per compliance period the current window consumes.
	BurnRate float64 `json:"burn_rate"`
}

// Snapshot reports current attainment and burn rate over the window.
// The zero snapshot on a nil receiver.
func (s *SLOTracker) Snapshot() SLOSnapshot {
	if s == nil {
		return SLOSnapshot{}
	}
	s.mu.Lock()
	s.advance(s.clock())
	var good, total int64
	for _, sl := range s.slots {
		good += sl.good
		total += sl.total
	}
	s.mu.Unlock()
	snap := SLOSnapshot{
		TargetSeconds: s.target.Seconds(),
		Objective:     s.objective,
		WindowSeconds: s.window.Seconds(),
		Good:          good,
		Total:         total,
		Attainment:    1,
	}
	if total > 0 {
		snap.Attainment = float64(good) / float64(total)
	}
	snap.BurnRate = (1 - snap.Attainment) / (1 - s.objective)
	return snap
}

// WriteProm renders the tracker as its own Prometheus families,
// appended after the registry snapshot on /metrics (attainment and
// burn rate are ratios, which the integer registry gauges cannot
// carry). A nil tracker writes nothing.
func (s *SLOTracker) WriteProm(w io.Writer) error {
	if s == nil {
		return nil
	}
	snap := s.Snapshot()
	for _, g := range []struct {
		name, help string
		v          float64
	}{
		{"serve_slo_target_seconds", "Configured per-request latency target.", snap.TargetSeconds},
		{"serve_slo_objective_ratio", "Configured required good fraction.", snap.Objective},
		{"serve_slo_window_seconds", "Sliding SLO measurement window.", snap.WindowSeconds},
		{"serve_slo_window_good", "Requests under target in the window.", float64(snap.Good)},
		{"serve_slo_window_requests", "Requests observed in the window.", float64(snap.Total)},
		{"serve_slo_attainment_ratio", "Good fraction over the window (1 when idle).", snap.Attainment},
		{"serve_slo_burn_rate", "Error-budget burn rate: (1-attainment)/(1-objective).", snap.BurnRate},
	} {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			g.name, g.help, g.name, g.name, promFloat(g.v)); err != nil {
			return err
		}
	}
	return nil
}

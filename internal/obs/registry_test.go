package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("events") != c {
		t.Error("re-registering a counter must return the same handle")
	}

	g := r.Gauge("depth")
	g.Set(7)
	g.SetMax(3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge after SetMax(3) = %d, want 7", got)
	}
	g.SetMax(11)
	if got := g.Value(); got != 11 {
		t.Errorf("gauge after SetMax(11) = %d, want 11", got)
	}

	h := r.Histogram("latency", 1, 10, 100)
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("histogram count = %d, want 4", h.Count())
	}
	if h.Sum() != 555.5 {
		t.Errorf("histogram sum = %g, want 555.5", h.Sum())
	}
	snap := r.Snapshot()
	hs := snap.Histograms["latency"]
	want := []int64{1, 1, 1, 1}
	for i, n := range want {
		if hs.Counts[i] != n {
			t.Errorf("bucket %d = %d, want %d (snapshot %+v)", i, hs.Counts[i], n, hs)
		}
	}
	if snap.Counters["events"] != 5 || snap.Gauges["depth"] != 11 {
		t.Errorf("snapshot scalars wrong: %+v", snap)
	}
}

// TestNilHandlesAreNoOps pins the disabled path: every method on nil
// handles must be callable and do nothing.
func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", 1, 2)
	var tr *Tracer
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.SetMax(2)
	h.Observe(1)
	tr.Emit(TraceEvent{})
	tr.Span("a", "b", 1, 2, 0, 1, nil)
	tr.Instant("a", "b", 1, 2, 0, nil)
	tr.Counter("a", 1, 0, 0, "v", 1)
	tr.FlowStart("a", "b", 1, 1, 1, 0)
	tr.FlowFinish("a", "b", 1, 1, 1, 0)
	tr.NameProcess(1, "p")
	tr.NameThread(1, 1, "t")
	r.Publish("nil-reg")
	if c != nil || g != nil || h != nil {
		t.Error("nil registry must hand out nil handles")
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || tr.Len() != 0 {
		t.Error("nil handles must read as zero")
	}
	if s := r.Snapshot(); s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
}

// TestNilHandlesAllocFree is the zero-cost contract: the disabled
// telemetry path must not allocate, per operation, ever.
func TestNilHandlesAllocFree(t *testing.T) {
	var r *Registry
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		g.Set(9)
		g.SetMax(10)
		h.Observe(3.5)
		tr.Span("span", "cat", 1, 2, 0, 1, nil)
		tr.Counter("q", 1, 0, 1, "depth", 4)
		tr.FlowStart("f", "cat", 7, 1, 1, 0)
		_ = r.Counter("never")
	})
	if allocs != 0 {
		t.Errorf("disabled telemetry path allocates %v per op, want 0", allocs)
	}
}

// TestRegistryConcurrentUpdates exercises mixed concurrent registration
// and updates; run under -race by `make race-sim` and CI.
func TestRegistryConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared")
			g := r.Gauge("hw")
			h := r.Histogram("obs", 10, 100)
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.SetMax(int64(w*1000 + i))
				h.Observe(float64(i % 150))
				if i%100 == 0 {
					_ = r.Counter(fmt.Sprintf("w%d", w))
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Errorf("shared counter = %d, want 8000", got)
	}
	if got := r.Gauge("hw").Value(); got != 7999 {
		t.Errorf("high-water gauge = %d, want 7999", got)
	}
	if got := r.Histogram("obs").Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestPublishReplacesRegistry(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("a").Inc()
	r1.Publish("test-publish")
	r2 := NewRegistry()
	r2.Counter("a").Add(42)
	r2.Publish("test-publish") // must not panic, must replace r1
	rec := httptest.NewRecorder()
	req, _ := http.NewRequest("GET", "/debug/vars", nil)
	expvar.Handler().ServeHTTP(rec, req)
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("unmarshal /debug/vars: %v (body %q)", err, rec.Body.String())
	}
	var snap Snapshot
	if err := json.Unmarshal(vars["test-publish"], &snap); err != nil {
		t.Fatalf("unmarshal published snapshot: %v", err)
	}
	if snap.Counters["a"] != 42 {
		t.Errorf("published counter = %d, want 42 (replacement registry)", snap.Counters["a"])
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edges", 10, 20)
	h.Observe(10) // on the bound: counts in bucket 0 (v <= 10)
	h.Observe(10.0001)
	h.Observe(21)
	hs := r.Snapshot().Histograms["edges"]
	if hs.Counts[0] != 1 || hs.Counts[1] != 1 || hs.Counts[2] != 1 {
		t.Errorf("bucket edge handling wrong: %+v", hs)
	}
	if !strings.Contains(fmt.Sprint(hs.Bounds), "10") {
		t.Errorf("bounds not preserved: %+v", hs.Bounds)
	}
}

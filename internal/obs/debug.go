package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// ManifestSchemaVersion is the current run-manifest schema. Version 2
// added schema_version itself, the artifacts map, and the quantile
// section of the telemetry snapshot.
const ManifestSchemaVersion = 2

// Manifest is the JSON run-manifest emitted beside a trace: everything
// needed to reproduce and interpret the run — the command and its
// configuration, the seed, the final metrics, the wall-clock cost, a
// snapshot of the telemetry registry, and the paths of every sibling
// artifact the run produced (trace timeline, VM audit CSV, fleet series
// CSV, ...), so one manifest fully describes a run's outputs.
type Manifest struct {
	SchemaVersion    int               `json:"schema_version"`
	Command          string            `json:"command"`
	Config           any               `json:"config,omitempty"`
	Seed             uint64            `json:"seed"`
	WallClockSeconds float64           `json:"wall_clock_seconds"`
	Metrics          any               `json:"metrics,omitempty"`
	Artifacts        map[string]string `json:"artifacts,omitempty"`
	Telemetry        Snapshot          `json:"telemetry"`
}

// WriteManifest serializes m as indented JSON (map keys sorted, so
// manifests of identical runs diff byte-identically), stamping the
// current schema version when the caller left it zero.
func WriteManifest(w io.Writer, m Manifest) error {
	if m.SchemaVersion == 0 {
		m.SchemaVersion = ManifestSchemaVersion
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// DebugServer is a live-introspection HTTP server: /debug/pprof/* (the
// full net/http/pprof suite), /debug/vars (expvar, including any
// registries published with Registry.Publish), and /debug/dash (the
// live HTML dashboard over the served registry and any series added
// with AddSeries). It backs the CLIs' shared -debug-addr flag.
type DebugServer struct {
	srv *http.Server
	lis net.Listener
	reg *Registry

	mu        sync.Mutex
	series    []SeriesFunc
	watchdogs []*Watchdog
}

// ServeDebug publishes reg under the "pacevm" expvar name (when
// non-nil), binds addr (":0" picks a free port), and serves in a
// background goroutine until Close.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	reg.Publish("pacevm")
	d := &DebugServer{reg: reg}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/dash", d.handleDash)
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	d.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	d.lis = lis
	go d.srv.Serve(lis) //nolint:errcheck // ErrServerClosed after Close
	return d, nil
}

// Addr returns the bound listen address.
func (d *DebugServer) Addr() string { return d.lis.Addr().String() }

// Close stops the server.
func (d *DebugServer) Close() error { return d.srv.Close() }

package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Manifest is the JSON run-manifest emitted beside a trace: everything
// needed to reproduce and interpret the run — the command and its
// configuration, the seed, the final metrics, the wall-clock cost, and
// a snapshot of the telemetry registry.
type Manifest struct {
	Command          string   `json:"command"`
	Config           any      `json:"config,omitempty"`
	Seed             uint64   `json:"seed"`
	WallClockSeconds float64  `json:"wall_clock_seconds"`
	Metrics          any      `json:"metrics,omitempty"`
	Telemetry        Snapshot `json:"telemetry"`
}

// WriteManifest serializes m as indented JSON.
func WriteManifest(w io.Writer, m Manifest) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// DebugServer is a live-introspection HTTP server: /debug/pprof/* (the
// full net/http/pprof suite) and /debug/vars (expvar, including any
// registries published with Registry.Publish). It backs the CLIs'
// shared -debug-addr flag.
type DebugServer struct {
	srv *http.Server
	lis net.Listener
}

// ServeDebug publishes reg under the "pacevm" expvar name (when
// non-nil), binds addr (":0" picks a free port), and serves in a
// background goroutine until Close.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	reg.Publish("pacevm")
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	d := &DebugServer{
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		lis: lis,
	}
	go d.srv.Serve(lis) //nolint:errcheck // ErrServerClosed after Close
	return d, nil
}

// Addr returns the bound listen address.
func (d *DebugServer) Addr() string { return d.lis.Addr().String() }

// Close stops the server.
func (d *DebugServer) Close() error { return d.srv.Close() }

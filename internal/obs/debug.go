package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// ManifestSchemaVersion is the current run-manifest schema. Version 2
// added schema_version itself, the artifacts map, and the quantile
// section of the telemetry snapshot.
const ManifestSchemaVersion = 2

// Manifest is the JSON run-manifest emitted beside a trace: everything
// needed to reproduce and interpret the run — the command and its
// configuration, the seed, the final metrics, the wall-clock cost, a
// snapshot of the telemetry registry, and the paths of every sibling
// artifact the run produced (trace timeline, VM audit CSV, fleet series
// CSV, ...), so one manifest fully describes a run's outputs.
type Manifest struct {
	SchemaVersion    int               `json:"schema_version"`
	Command          string            `json:"command"`
	Config           any               `json:"config,omitempty"`
	Seed             uint64            `json:"seed"`
	WallClockSeconds float64           `json:"wall_clock_seconds"`
	Metrics          any               `json:"metrics,omitempty"`
	Artifacts        map[string]string `json:"artifacts,omitempty"`
	Telemetry        Snapshot          `json:"telemetry"`
}

// WriteManifest serializes m as indented JSON (map keys sorted, so
// manifests of identical runs diff byte-identically), stamping the
// current schema version when the caller left it zero.
func WriteManifest(w io.Writer, m Manifest) error {
	if m.SchemaVersion == 0 {
		m.SchemaVersion = ManifestSchemaVersion
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// DebugServer is a live-introspection HTTP server: /debug/pprof/* (the
// full net/http/pprof suite), /debug/vars (expvar, including any
// registries published with Registry.Publish), /debug/dash (the live
// HTML dashboard over the served registry and any series added with
// AddSeries), /metrics (the Prometheus exposition of the same
// registry), and /debug/slow (the wall tracer's worst-K slow-request
// dump, when one is attached). It backs the CLIs' shared -debug-addr
// flag.
type DebugServer struct {
	srv *http.Server
	lis net.Listener
	reg *Registry

	mu        sync.Mutex
	series    []SeriesFunc
	watchdogs []*Watchdog
	wall      *WallTracer
	slo       *SLOTracker
	promHelp  map[string]string
}

// ServeDebug publishes reg under the "pacevm" expvar name (when
// non-nil), binds addr (":0" picks a free port), and serves in a
// background goroutine until Close.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	reg.Publish("pacevm")
	d := &DebugServer{reg: reg}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/dash", d.handleDash)
	mux.HandleFunc("/metrics", d.handleMetrics)
	mux.HandleFunc("/debug/slow", d.handleSlow)
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	d.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	d.lis = lis
	go d.srv.Serve(lis) //nolint:errcheck // ErrServerClosed after Close
	return d, nil
}

// Addr returns the bound listen address.
func (d *DebugServer) Addr() string { return d.lis.Addr().String() }

// Close stops the server.
func (d *DebugServer) Close() error { return d.srv.Close() }

// AddWallTracer attaches a wall-clock request tracer: /debug/slow dumps
// its worst-K ring. Safe to call while serving; nil is ignored.
func (d *DebugServer) AddWallTracer(w *WallTracer) {
	if d == nil || w == nil {
		return
	}
	d.mu.Lock()
	d.wall = w
	d.mu.Unlock()
}

// AddSLO attaches a rolling SLO tracker: /metrics appends its burn-rate
// families and /debug/dash grows an SLO panel. Safe to call while
// serving; nil is ignored.
func (d *DebugServer) AddSLO(s *SLOTracker) {
	if d == nil || s == nil {
		return
	}
	d.mu.Lock()
	d.slo = s
	d.mu.Unlock()
}

// SetPromHelp supplies HELP text for /metrics families (family base
// name -> help line). Safe to call while serving.
func (d *DebugServer) SetPromHelp(help map[string]string) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.promHelp = help
	d.mu.Unlock()
}

// handleMetrics renders the registry snapshot (plus the SLO tracker's
// families, when attached) in the Prometheus text format.
func (d *DebugServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var snap Snapshot
	if d.reg != nil {
		snap = d.reg.Snapshot()
	}
	d.mu.Lock()
	slo, help := d.slo, d.promHelp
	d.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := WritePrometheus(w, snap, help); err != nil {
		return
	}
	slo.WriteProm(w) //nolint:errcheck // client went away mid-scrape
}

// handleSlow dumps the attached wall tracer's slow-request ring as
// JSON (an empty array when no tracer is attached).
func (d *DebugServer) handleSlow(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	wall := d.wall
	d.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	wall.DumpJSON(w) //nolint:errcheck // client went away mid-dump
}

package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// TestTypedArgsMatchMapEncoding pins SeriesSample's hand encoding to
// encoding/json's rendering of the equivalent one-entry map across the
// float formatting regimes (fixed vs exponent notation, the 1e-6/1e21
// switchover, negative zero, subnormals) and the string escaping rules
// (HTML escaping, control bytes, invalid UTF-8, U+2028/U+2029).
func TestTypedArgsMatchMapEncoding(t *testing.T) {
	values := []float64{
		0, math.Copysign(0, -1), 30, -17.25,
		1e-6, 9.999999e-7, -3.5e-9, 1e20, 1e21, -2.5e22,
		1.7976931348623157e308, 5e-324,
	}
	series := []string{
		"depth", "a<b>&c", `q"uote\`, "ctl\x01\x1f", "tab\tnl\nret\r",
		"ls\u2028ps\u2029", "bad\xffutf8", "é✓",
	}
	for _, s := range series {
		for _, v := range values {
			got, err := json.Marshal(SeriesSample{Series: s, Value: v})
			if err != nil {
				t.Fatalf("marshal SeriesSample{%q, %v}: %v", s, v, err)
			}
			want, err := json.Marshal(map[string]any{s: v})
			if err != nil {
				t.Fatalf("marshal map{%q: %v}: %v", s, v, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("SeriesSample{%q, %v} = %s, map encodes %s", s, v, got, want)
			}
		}
	}

	// The indented-encoder path WriteTo uses must agree too: a counter
	// emitted through the typed payload against the same event carrying
	// the historical map args.
	typed, legacy := NewTracer(), NewTracer()
	typed.Counter("queue", 2, 0, 12.5, "depth", 30)
	legacy.Emit(TraceEvent{Name: "queue", Phase: PhaseCounter, Ts: usec(12.5), Pid: 2, Tid: 0,
		Args: map[string]any{"depth": float64(30)}})
	var a, b bytes.Buffer
	if err := typed.WriteTo(&a, nil); err != nil {
		t.Fatal(err)
	}
	if err := legacy.WriteTo(&b, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("typed counter trace differs from map-args trace:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
}

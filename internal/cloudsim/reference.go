package cloudsim

// The reference simulator: the naive transcription of the event loop,
// preserved as the equivalence oracle for the optimized Run. It rebuilds
// the strategy's fleet view on every placement attempt, formats VM
// identifiers eagerly with fmt.Sprintf, allocates one boxed event per
// schedule on a container/heap binary heap, and rescans the whole fleet
// for the active-server peak — exactly the costs Run eliminates. The
// golden tests require Run and RunReference to produce byte-identical
// Metrics and VMRecord streams on seeded fleets across strategies,
// backfill depths, and the consolidator path.
//
// Both paths share the queue-drain semantics, including the two fixes
// over the original transcription: a mid-commit accounting error aborts
// the run instead of stranding half-placed VMs (tryPlace used to report
// "not placed" after mutating servers), and a successful backfill
// re-checks the blocked head instead of restarting the whole window.

import (
	"container/heap"
	"fmt"

	"pacevm/internal/core"
	"pacevm/internal/migrate"
	"pacevm/internal/model"
	"pacevm/internal/strategy"
	"pacevm/internal/trace"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// refItem is one boxed event on the reference future-event list.
type refItem struct {
	at  units.Seconds
	seq uint64
	ev  interface{}
	pos int // heap index; -1 once popped or cancelled
}

// refQueue is a binary min-heap of boxed events ordered by
// (timestamp, schedule sequence) — the ordering contract eventq.Queue
// keeps, so both simulators break timestamp ties identically.
type refQueue struct {
	items []*refItem
	seq   uint64
}

func (q *refQueue) Len() int { return len(q.items) }
func (q *refQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
func (q *refQueue) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].pos = i
	q.items[j].pos = j
}
func (q *refQueue) Push(x interface{}) {
	it := x.(*refItem)
	it.pos = len(q.items)
	q.items = append(q.items, it)
}
func (q *refQueue) Pop() interface{} {
	old := q.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	it.pos = -1
	return it
}

func (q *refQueue) schedule(at units.Seconds, ev interface{}) *refItem {
	it := &refItem{at: at, seq: q.seq, ev: ev}
	q.seq++
	heap.Push(q, it)
	return it
}

func (q *refQueue) cancel(it *refItem) {
	if it == nil || it.pos < 0 {
		return
	}
	heap.Remove(q, it.pos)
}

func (q *refQueue) pop() (units.Seconds, interface{}, bool) {
	if len(q.items) == 0 {
		return 0, nil, false
	}
	it := heap.Pop(q).(*refItem)
	return it.at, it.ev, true
}

type refArrival struct{ req int }
type refCompletion struct{ server int }

// refVM is one running VM in the reference path. It keeps the original
// array-of-structs layout — remaining lives on the VM — deliberately:
// the oracle stays a direct transcription, while the optimized
// simulator's simVM moved its work-left counter into the server's
// structure-of-arrays mirror.
type refVM struct {
	id        int
	uid       string
	jobID     int
	class     workload.Class
	remaining float64 // nominal-seconds of work left
	submit    units.Seconds
	placed    units.Seconds
	deadline  units.Seconds // absolute; 0 = unconstrained
	nominal   units.Seconds
}

// refServer is one physical server's live state in the reference path.
type refServer struct {
	id            int
	vms           []*refVM
	alloc         model.Key
	lastUpdate    units.Seconds
	energy        units.Joules
	next          *refItem
	activeFrom    units.Seconds
	hostedSeconds float64
}

type refSim struct {
	cfg    Config
	reqs   []trace.Request
	events refQueue
	now    units.Seconds
	srv    []*refServer
	queue  []int // indices into reqs, FIFO
	dbs    []*model.DB
	cache  []map[model.Key]allocInfo
	refT   [][workload.NumClasses]units.Seconds
	dbOf   []int

	uidSeq      int
	records     []VMRecord
	metrics     Metrics
	responseSum float64
	waitSum     float64
	firstSubmit units.Seconds
	lastFinish  units.Seconds
}

// RunReference simulates the request stream with the reference
// implementation. It accepts the same Config and must return exactly the
// same Result as Run; it exists as the oracle the golden tests hold the
// optimized path against, and as the baseline the large-simulation
// benchmarks measure speedups from.
func RunReference(cfg Config, reqs []trace.Request) (Result, error) {
	if len(cfg.Faults) > 0 {
		// The oracle predates the fault model and is deliberately frozen;
		// fault-injected runs have no naive twin to compare against.
		return Result{}, fmt.Errorf("cloudsim: RunReference does not support fault injection (%d scheduled faults); use Run", len(cfg.Faults))
	}
	cfg, err := validateConfig(cfg, reqs)
	if err != nil {
		return Result{}, err
	}
	s := &refSim{
		cfg:         cfg,
		reqs:        reqs,
		firstSubmit: reqs[0].Submit,
	}
	if s.dbs, s.refT, s.dbOf, err = registerDBs(cfg); err != nil {
		return Result{}, err
	}
	s.cache = make([]map[model.Key]allocInfo, len(s.dbs))
	for i := range s.cache {
		s.cache[i] = map[model.Key]allocInfo{}
	}
	s.srv = make([]*refServer, cfg.Servers)
	for i := range s.srv {
		s.srv[i] = &refServer{id: i, activeFrom: -1}
	}
	for i, r := range reqs {
		if err := r.Validate(); err != nil {
			return Result{}, err
		}
		if r.Submit < s.firstSubmit {
			s.firstSubmit = r.Submit
		}
		s.events.schedule(r.Submit, refArrival{req: i})
		s.metrics.TotalJobs++
		s.metrics.TotalVMs += r.VMs
		s.metrics.NominalWork += r.NominalTime * units.Seconds(r.VMs)
	}

	for {
		at, ev, ok := s.events.pop()
		if !ok {
			break
		}
		s.now = at
		switch e := ev.(type) {
		case refArrival:
			s.queue = append(s.queue, e.req)
			if err := s.drainQueue(); err != nil {
				return Result{}, err
			}
		case refCompletion:
			if err := s.complete(e.server); err != nil {
				return Result{}, err
			}
			if err := s.consolidate(); err != nil {
				return Result{}, err
			}
			if err := s.drainQueue(); err != nil {
				return Result{}, err
			}
		default:
			return Result{}, fmt.Errorf("cloudsim: unknown event %T", ev)
		}
	}
	if len(s.queue) > 0 {
		return Result{}, fmt.Errorf("cloudsim: %d jobs still queued at end of simulation (strategy starved them)", len(s.queue))
	}

	span := s.lastFinish - s.firstSubmit
	for _, sv := range s.srv {
		if len(sv.vms) != 0 {
			return Result{}, fmt.Errorf("cloudsim: server %d still hosts %d VMs at end", sv.id, len(sv.vms))
		}
		idle := float64(span) - sv.hostedSeconds
		if idle > 0 {
			sv.energy += cfg.IdleServerPower.Times(units.Seconds(idle))
		}
		s.metrics.Energy += sv.energy
	}
	if s.metrics.TotalVMs > 0 {
		s.metrics.AvgResponse = units.Seconds(s.responseSum / float64(s.metrics.TotalVMs))
		s.metrics.AvgWait = units.Seconds(s.waitSum / float64(s.metrics.TotalVMs))
	}
	s.metrics.Makespan = s.lastFinish - s.firstSubmit
	return Result{Metrics: s.metrics, VMs: s.records}, nil
}

func (s *refSim) info(server int, k model.Key) (allocInfo, error) {
	if k.IsZero() {
		return allocInfo{}, nil
	}
	di := s.dbOf[server]
	if ai, ok := s.cache[di][k]; ok {
		return ai, nil
	}
	rec, err := s.dbs[di].Estimate(k)
	if err != nil {
		return allocInfo{}, fmt.Errorf("cloudsim: pricing %v: %w", k, err)
	}
	var ai allocInfo
	ai.power = rec.AvgPower()
	for _, c := range workload.Classes {
		ct := rec.ClassTime(c)
		if ct <= 0 {
			return allocInfo{}, fmt.Errorf("cloudsim: record %v has no usable time for %v", k, c)
		}
		ai.rate[c] = float64(s.refT[di][c]) / float64(ct)
	}
	s.cache[di][k] = ai
	return ai, nil
}

func (s *refSim) advance(sv *refServer) error {
	dt := s.now - sv.lastUpdate
	if dt < 0 {
		return fmt.Errorf("cloudsim: time ran backwards on server %d", sv.id)
	}
	if dt > 0 && len(sv.vms) > 0 {
		ai, err := s.info(sv.id, sv.alloc)
		if err != nil {
			return err
		}
		for _, vm := range sv.vms {
			vm.remaining -= ai.rate[vm.class] * float64(dt)
		}
		sv.energy += ai.power.Times(dt)
	}
	sv.lastUpdate = s.now
	return nil
}

func (s *refSim) reschedule(sv *refServer) error {
	s.events.cancel(sv.next)
	sv.next = nil
	if len(sv.vms) == 0 {
		return nil
	}
	ai, err := s.info(sv.id, sv.alloc)
	if err != nil {
		return err
	}
	best := -1.0
	for _, vm := range sv.vms {
		rate := ai.rate[vm.class]
		if rate <= 0 {
			return fmt.Errorf("cloudsim: zero progress rate on server %d alloc %v", sv.id, sv.alloc)
		}
		rem := vm.remaining
		if rem < 0 {
			rem = 0
		}
		fin := rem / rate
		if best < 0 || fin < best {
			best = fin
		}
	}
	sv.next = s.events.schedule(s.now+units.Seconds(best), refCompletion{server: sv.id})
	return nil
}

func (s *refSim) complete(serverIdx int) error {
	sv := s.srv[serverIdx]
	if err := s.advance(sv); err != nil {
		return err
	}
	const eps = 1e-6
	kept := sv.vms[:0]
	for _, vm := range sv.vms {
		if vm.remaining > eps {
			kept = append(kept, vm)
			continue
		}
		sv.alloc = sv.alloc.Add(model.KeyFor(vm.class, -1))
		s.retire(sv, vm)
	}
	sv.vms = kept
	if len(sv.vms) == 0 && sv.activeFrom >= 0 {
		hosted := float64(s.now - sv.activeFrom)
		s.metrics.ActiveServerSeconds += hosted
		sv.hostedSeconds += hosted
		sv.activeFrom = -1
	}
	return s.reschedule(sv)
}

func (s *refSim) retire(sv *refServer, vm *refVM) {
	if s.now > s.lastFinish {
		s.lastFinish = s.now
	}
	response := s.now - vm.submit
	s.responseSum += float64(response)
	s.waitSum += float64(vm.placed - vm.submit)
	violated := vm.deadline > 0 && s.now > vm.deadline
	if violated {
		s.metrics.Violations++
	}
	if s.cfg.RecordVMs {
		s.records = append(s.records, VMRecord{
			JobID:      vm.jobID,
			Class:      vm.class,
			Server:     sv.id,
			Submit:     vm.submit,
			Placed:     vm.placed,
			Completion: s.now,
			Deadline:   vm.deadline,
			Violated:   violated,
		})
	}
}

func (s *refSim) consolidate() error {
	if s.cfg.Consolidator == nil {
		return nil
	}
	allocs := make([]model.Key, len(s.srv))
	var snapshot []migrate.VM
	byUID := map[string]*refVM{}
	for i, sv := range s.srv {
		if err := s.advance(sv); err != nil {
			return err
		}
		allocs[i] = sv.alloc
		for _, vm := range sv.vms {
			budget := units.Seconds(0)
			if vm.deadline > 0 {
				budget = vm.deadline - s.now
				if budget < 0 {
					budget = 0
				}
			}
			rem := vm.remaining
			if rem < 0 {
				rem = 0
			}
			snapshot = append(snapshot, migrate.VM{
				ID:        vm.uid,
				Class:     vm.class,
				Server:    i,
				Remaining: units.Seconds(rem),
				Budget:    budget,
			})
			byUID[vm.uid] = vm
		}
	}
	if len(snapshot) == 0 {
		return nil
	}
	plan, err := s.cfg.Consolidator.Propose(allocs, snapshot)
	if err != nil {
		return fmt.Errorf("cloudsim: consolidator: %w", err)
	}
	if len(plan.Moves) == 0 {
		return nil
	}
	touched := map[int]bool{}
	for _, mv := range plan.Moves {
		vm := byUID[mv.VMID]
		if vm == nil || mv.From < 0 || mv.From >= len(s.srv) || mv.To < 0 || mv.To >= len(s.srv) || mv.From == mv.To {
			return fmt.Errorf("cloudsim: consolidator returned invalid move %+v", mv)
		}
		from, to := s.srv[mv.From], s.srv[mv.To]
		idx := -1
		for i, resident := range from.vms {
			if resident == vm {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("cloudsim: move %+v: VM not on source server", mv)
		}
		from.vms = append(from.vms[:idx], from.vms[idx+1:]...)
		from.alloc = from.alloc.Add(model.KeyFor(vm.class, -1))
		if len(to.vms) == 0 && to.activeFrom < 0 {
			to.activeFrom = s.now
		}
		vm.remaining += float64(s.cfg.MigrationCost)
		to.vms = append(to.vms, vm)
		to.alloc = to.alloc.Add(model.KeyFor(vm.class, 1))
		touched[mv.From] = true
		touched[mv.To] = true
		s.metrics.Migrations++
	}
	s.metrics.ServersDrained += plan.ServersDrained
	for i := 0; i < len(s.srv); i++ {
		if !touched[i] {
			continue
		}
		sv := s.srv[i]
		if len(sv.vms) == 0 && sv.activeFrom >= 0 {
			hosted := float64(s.now - sv.activeFrom)
			s.metrics.ActiveServerSeconds += hosted
			sv.hostedSeconds += hosted
			sv.activeFrom = -1
		}
		if err := s.reschedule(sv); err != nil {
			return err
		}
	}
	return nil
}

// drainQueue implements the same queue semantics as the optimized
// (*sim).drainQueue: strict FCFS while the head fits, then one
// submission-order pass over the backfill window where every successful
// backfill re-checks the head.
func (s *refSim) drainQueue() error {
	for len(s.queue) > 0 {
		ok, err := s.tryPlace(s.queue[0])
		if err != nil {
			return err
		}
		if ok {
			s.queue = s.queue[1:]
			continue
		}
		headPlaced := false
		for i := 1; i < len(s.queue) && i <= s.cfg.BackfillDepth; {
			ok, err := s.tryPlace(s.queue[i])
			if err != nil {
				return err
			}
			if !ok {
				i++
				continue
			}
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			ok, err = s.tryPlace(s.queue[0])
			if err != nil {
				return err
			}
			if ok {
				s.queue = s.queue[1:]
				headPlaced = true
				break
			}
		}
		if !headPlaced {
			return nil
		}
	}
	return nil
}

func (s *refSim) tryPlace(idx int) (bool, error) {
	req := s.reqs[idx]
	views := make([]strategy.Server, len(s.srv))
	for i, sv := range s.srv {
		views[i] = strategy.Server{ID: sv.id, Alloc: sv.alloc}
	}
	vms := make([]core.VMRequest, req.VMs)
	for i := range vms {
		vms[i] = core.VMRequest{
			ID:          fmt.Sprintf("j%d-%d", req.ID, i),
			Class:       req.Class,
			NominalTime: req.NominalTime,
			MaxTime:     req.MaxResponse,
		}
	}
	assign, ok := s.cfg.Strategy.Place(views, vms)
	if !ok {
		return false, nil
	}
	if len(assign) != len(vms) {
		return false, nil
	}
	added := map[int]int{}
	for _, a := range assign {
		if a < 0 || a >= len(s.srv) {
			return false, nil
		}
		added[a]++
	}
	for a, n := range added {
		if s.srv[a].alloc.Total()+n > s.cfg.MaxVMsPerServer {
			return false, nil
		}
	}
	targets := make([]int, 0, len(added))
	for a := 0; a < len(s.srv); a++ {
		if _, ok := added[a]; ok {
			targets = append(targets, a)
		}
	}
	for _, a := range targets {
		if err := s.advance(s.srv[a]); err != nil {
			return false, err
		}
	}
	deadline := req.Submit + req.MaxResponse
	for _, a := range assign {
		sv := s.srv[a]
		if len(sv.vms) == 0 && sv.activeFrom < 0 {
			sv.activeFrom = s.now
		}
		s.uidSeq++
		sv.vms = append(sv.vms, &refVM{
			id:        s.uidSeq,
			uid:       fmt.Sprintf("vm%d", s.uidSeq),
			jobID:     req.ID,
			class:     req.Class,
			remaining: float64(req.NominalTime),
			submit:    req.Submit,
			placed:    s.now,
			deadline:  deadline,
			nominal:   req.NominalTime,
		})
		sv.alloc = sv.alloc.Add(model.KeyFor(req.Class, 1))
	}
	for _, a := range targets {
		if err := s.reschedule(s.srv[a]); err != nil {
			return false, err
		}
	}
	active := 0
	for _, sv := range s.srv {
		if len(sv.vms) > 0 {
			active++
		}
	}
	if active > s.metrics.PeakActiveServers {
		s.metrics.PeakActiveServers = active
	}
	return true, nil
}

package cloudsim

import (
	"sync"
	"testing"

	"pacevm/internal/campaign"
	"pacevm/internal/core"
	"pacevm/internal/model"
	"pacevm/internal/strategy"
	"pacevm/internal/trace"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

var (
	dbOnce sync.Once
	testDB *model.DB
	dbErr  error
)

func sharedDB(t testing.TB) *model.DB {
	t.Helper()
	dbOnce.Do(func() {
		cfg := campaign.DefaultConfig()
		cfg.MaxBase = 16
		cfg.FullGridTotal = 16
		testDB, _, dbErr = campaign.Run(cfg)
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return testDB
}

func ff(t testing.TB, mult int) strategy.Strategy {
	t.Helper()
	s, err := strategy.NewFirstFit(mult)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func pa(t testing.TB, goal core.Goal) strategy.Strategy {
	t.Helper()
	s, err := strategy.NewProactive(sharedDB(t), goal, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mkReqs(t *testing.T, n int, class workload.Class, gap units.Seconds) []trace.Request {
	t.Helper()
	ref := sharedDB(t).Aux().RefTime[class]
	out := make([]trace.Request, n)
	for i := range out {
		out[i] = trace.Request{
			ID:          i + 1,
			Submit:      units.Seconds(i) * gap,
			Class:       class,
			VMs:         1,
			NominalTime: ref,
			MaxResponse: ref * 3,
		}
	}
	return out
}

func TestRunValidation(t *testing.T) {
	db := sharedDB(t)
	good := mkReqs(t, 1, workload.ClassCPU, 0)
	cases := []struct {
		name string
		cfg  Config
		reqs []trace.Request
	}{
		{"nil db", Config{Servers: 1, Strategy: ff(t, 1)}, good},
		{"no servers", Config{DB: db, Strategy: ff(t, 1)}, good},
		{"nil strategy", Config{DB: db, Servers: 1}, good},
		{"no requests", Config{DB: db, Servers: 1, Strategy: ff(t, 1)}, nil},
		{"negative cap", Config{DB: db, Servers: 1, Strategy: ff(t, 1), MaxVMsPerServer: -1}, good},
		{"bad request", Config{DB: db, Servers: 1, Strategy: ff(t, 1)}, []trace.Request{{ID: 1, VMs: 9, NominalTime: 1}}},
	}
	for _, c := range cases {
		if _, err := Run(c.cfg, c.reqs); err == nil {
			t.Errorf("%s: Run accepted bad input", c.name)
		}
	}
}

func TestSingleJobSoloServer(t *testing.T) {
	db := sharedDB(t)
	reqs := mkReqs(t, 1, workload.ClassCPU, 0)
	res, err := Run(Config{DB: db, Servers: 1, Strategy: ff(t, 1), RecordVMs: true}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Solo VM: completion ≈ the class's solo time under allocation (1,0,0).
	rec, _ := db.Lookup(model.KeyFor(workload.ClassCPU, 1))
	want := rec.ClassTime(workload.ClassCPU)
	if !units.NearlyEqual(float64(res.Makespan), float64(want), 1e-6) {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
	// Energy ≈ the record's average power over that time.
	wantE := rec.AvgPower().Times(res.Makespan)
	if !units.NearlyEqual(float64(res.Energy), float64(wantE), 1e-6) {
		t.Errorf("energy = %v, want %v", res.Energy, wantE)
	}
	if res.Violations != 0 || res.TotalVMs != 1 || res.TotalJobs != 1 {
		t.Errorf("metrics = %+v", res.Metrics)
	}
	if len(res.VMs) != 1 || res.VMs[0].Violated {
		t.Errorf("records = %+v", res.VMs)
	}
	if res.PeakActiveServers != 1 {
		t.Errorf("peak active = %d", res.PeakActiveServers)
	}
	if res.ActiveServerSeconds <= 0 {
		t.Error("no active server time recorded")
	}
}

func TestQueueingWhenCloudFull(t *testing.T) {
	db := sharedDB(t)
	// 8 single-VM jobs, 1 server, FF cap 4: the last 4 must wait.
	reqs := mkReqs(t, 8, workload.ClassIO, 0)
	res, err := Run(Config{DB: db, Servers: 1, Strategy: ff(t, 1), RecordVMs: true}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgWait <= 0 {
		t.Error("expected queueing delay")
	}
	waited := 0
	for _, vm := range res.VMs {
		if vm.Placed > vm.Submit {
			waited++
		}
	}
	if waited != 4 {
		t.Errorf("%d VMs waited, want 4", waited)
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	db := sharedDB(t)
	reqs := mkReqs(t, 10, workload.ClassCPU, 1)
	res, err := Run(Config{DB: db, Servers: 1, Strategy: ff(t, 1), RecordVMs: true}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	placed := map[int]units.Seconds{}
	for _, vm := range res.VMs {
		placed[vm.JobID] = vm.Placed
	}
	for id := 2; id <= 10; id++ {
		if placed[id] < placed[id-1] {
			t.Errorf("job %d placed before job %d", id, id-1)
		}
	}
}

func TestEnergyConservation(t *testing.T) {
	// Energy must equal the sum over servers of power × occupied time;
	// with a single class and FF on one server this is directly checkable
	// via the records.
	db := sharedDB(t)
	reqs := mkReqs(t, 4, workload.ClassMEM, 0)
	res, err := Run(Config{DB: db, Servers: 1, Strategy: ff(t, 1)}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := db.Lookup(model.KeyFor(workload.ClassMEM, 4))
	// All four run together from t=0 and finish together.
	wantE := rec.AvgPower().Times(res.Makespan)
	if !units.NearlyEqual(float64(res.Energy), float64(wantE), 1e-6) {
		t.Errorf("energy = %v, want %v", res.Energy, wantE)
	}
}

func TestContentionExtendsMakespan(t *testing.T) {
	db := sharedDB(t)
	reqs := mkReqs(t, 12, workload.ClassCPU, 0)
	low, err := Run(Config{DB: db, Servers: 3, Strategy: ff(t, 1)}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Same jobs crammed onto one FF-3 server: heavy contention.
	high, err := Run(Config{DB: db, Servers: 3, Strategy: ff(t, 3)}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if high.Makespan <= low.Makespan {
		t.Errorf("FF-3 makespan %v should exceed FF makespan %v under CPU load", high.Makespan, low.Makespan)
	}
}

func TestSLAViolationsUnderPressure(t *testing.T) {
	db := sharedDB(t)
	// Many jobs on a tiny cloud: waits blow the response bound.
	ref := db.Aux().RefTime[workload.ClassCPU]
	reqs := make([]trace.Request, 30)
	for i := range reqs {
		reqs[i] = trace.Request{
			ID: i + 1, Submit: 0, Class: workload.ClassCPU, VMs: 1,
			NominalTime: ref, MaxResponse: ref * 2,
		}
	}
	res, err := Run(Config{DB: db, Servers: 1, Strategy: ff(t, 1)}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations == 0 {
		t.Error("expected SLA violations under heavy queueing")
	}
	if pct := res.SLAViolationPct(); pct <= 0 || pct > 100 {
		t.Errorf("violation pct = %v", pct)
	}
}

func TestProactiveRunsCleanly(t *testing.T) {
	db := sharedDB(t)
	reqs := mkReqs(t, 20, workload.ClassIO, 30)
	for i := range reqs {
		// Vary classes for a realistic mix.
		reqs[i].Class = workload.Classes[i%3]
		reqs[i].NominalTime = db.Aux().RefTime[reqs[i].Class]
		reqs[i].MaxResponse = reqs[i].NominalTime * 3
		reqs[i].VMs = 1 + i%4
	}
	res, err := Run(Config{DB: db, Servers: 6, Strategy: pa(t, core.GoalBalanced), RecordVMs: true}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range reqs {
		total += r.VMs
	}
	if len(res.VMs) != total {
		t.Errorf("recorded %d VMs, want %d", len(res.VMs), total)
	}
	if res.Makespan <= 0 || res.Energy <= 0 {
		t.Errorf("degenerate metrics %+v", res.Metrics)
	}
}

func TestMultiVMJobStaysWholeUnderFF(t *testing.T) {
	db := sharedDB(t)
	reqs := []trace.Request{{
		ID: 1, Submit: 0, Class: workload.ClassCPU, VMs: 4,
		NominalTime: db.Aux().RefTime[workload.ClassCPU], MaxResponse: 0,
	}}
	reqs[0].MaxResponse = reqs[0].NominalTime * 5
	res, err := Run(Config{DB: db, Servers: 2, Strategy: ff(t, 1), RecordVMs: true}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, vm := range res.VMs {
		if vm.Server != 0 {
			t.Errorf("FF scattered a job that fits server 0: %+v", vm)
		}
	}
}

func TestDeterministicSimulation(t *testing.T) {
	db := sharedDB(t)
	reqs := mkReqs(t, 25, workload.ClassMEM, 13)
	run := func() Result {
		res, err := Run(Config{DB: db, Servers: 4, Strategy: pa(t, core.GoalEnergy)}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.Energy != b.Energy || a.Violations != b.Violations {
		t.Errorf("nondeterministic simulation: %+v vs %+v", a.Metrics, b.Metrics)
	}
}

func TestMakespanSpansSubmitToCompletion(t *testing.T) {
	db := sharedDB(t)
	reqs := mkReqs(t, 3, workload.ClassIO, 100)
	res, err := Run(Config{DB: db, Servers: 3, Strategy: ff(t, 1), RecordVMs: true}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	var last units.Seconds
	for _, vm := range res.VMs {
		if vm.Completion > last {
			last = vm.Completion
		}
	}
	if want := last - reqs[0].Submit; !units.NearlyEqual(float64(res.Makespan), float64(want), 1e-9) {
		t.Errorf("makespan %v, want %v", res.Makespan, want)
	}
}

func TestIdleServersDrawFixedFloor(t *testing.T) {
	// The paper assumes every provisioned server dissipates a fixed
	// 125 W while on; an over-dimensioned cloud therefore costs more
	// energy for the same workload (the SMALLER-vs-LARGER effect of
	// Fig. 6).
	db := sharedDB(t)
	reqs := mkReqs(t, 1, workload.ClassCPU, 0)
	small, err := Run(Config{DB: db, Servers: 1, Strategy: ff(t, 1)}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(Config{DB: db, Servers: 50, Strategy: ff(t, 1)}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	wantExtra := units.Watts(49 * 125).Times(big.Makespan)
	if !units.NearlyEqual(float64(big.Energy-small.Energy), float64(wantExtra), 1e-6) {
		t.Errorf("idle floor = %v, want %v", big.Energy-small.Energy, wantExtra)
	}
}

func TestPowerGatedIdleServers(t *testing.T) {
	// IdleServerPower < 0 models power-gated spares: cloud size then has
	// no energy effect for a workload that fits one server.
	db := sharedDB(t)
	reqs := mkReqs(t, 1, workload.ClassCPU, 0)
	small, err := Run(Config{DB: db, Servers: 1, Strategy: ff(t, 1), IdleServerPower: -1}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(Config{DB: db, Servers: 50, Strategy: ff(t, 1), IdleServerPower: -1}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if small.Energy != big.Energy {
		t.Errorf("power-gated spares changed energy: %v vs %v", small.Energy, big.Energy)
	}
}

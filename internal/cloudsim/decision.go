package cloudsim

// The placement decision flight recorder: a compact append-only log of
// every admit / route / place / reject / steal / requeue / migrate
// decision the simulator takes, with enough context to reconstruct any
// VM's full decision chain after the run (cmd/pacevm-explain). Like the
// tracer, audit and sampler it is observation only — no simulation
// state is read back from it — and a nil *DecisionRecorder is a no-op
// at every hook, so a recorder-off run stays byte- and
// allocation-identical to an uninstrumented one.
//
// Rejects are folded: consecutive rejects of the same request for the
// same reason collapse into one record carrying Count and TEnd, so a
// job blocked across thousands of drain sweeps costs one log record
// per reason transition, not one per attempt. Any other decision about
// the request (or a reject for a different reason) closes the fold.
//
// The log serializes as JSON Lines (WriteJSONL / ReadDecisionLog), one
// decision per line, floats in Go's default shortest form. The sharded
// engine gives each shard a private recorder and merges them — server
// ids, VM uids and synthetic requeue request indices remapped into the
// global space — through absorbShards, the same deterministic fold the
// VM audit uses.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"pacevm/internal/core"
	"pacevm/internal/strategy"
)

// Decision kinds.
const (
	DecisionAdmit   = "admit"   // request reached the admission queue
	DecisionRoute   = "route"   // coordinator routed the request to a shard (sharded runs only)
	DecisionPlace   = "place"   // request's VMs were placed on servers
	DecisionReject  = "reject"  // a placement attempt was rejected or skipped (see Reason)
	DecisionSteal   = "steal"   // coordinator moved a stuck queue head between shards
	DecisionRequeue = "requeue" // a crash-killed VM's remaining work re-entered admission
	DecisionMigrate = "migrate" // the consolidator moved (or failed to move) a VM

	// Service decision kinds (internal/serve): the always-on placement
	// service logs through the same recorder so pacevm-explain replays
	// service logs unchanged. T is wall-clock seconds since service
	// start in those records.
	DecisionDegrade = "degrade" // the overload ladder stepped (From/To are the old/new levels)
	DecisionShed    = "shed"    // admission control dropped a request (see Reason)
	DecisionRelease = "release" // a placement's VMs were released by the client
)

// Reject reasons.
const (
	// RejectFitWatermark: the drain sweep's memo already proved a job of
	// this size (or smaller) cannot fit; the attempt was skipped.
	RejectFitWatermark = "fit-watermark"
	// RejectFitSummary: the capacity summary proved exactly that the
	// fleet cannot hold the job's VM count right now.
	RejectFitSummary = "fit-summary"
	// RejectQoSWait: the strategy proved the job satisfiable on an empty
	// fleet but not placeable within QoS right now — it waits rather
	// than relaxing (strategy.Proactive's wait-vs-relax decision).
	RejectQoSWait = "qos-wait"
	// RejectStrategy: the strategy declined the placement.
	RejectStrategy = "strategy"
	// RejectStrategyInvalid: the strategy returned a malformed
	// assignment (wrong arity, out-of-range or down target).
	RejectStrategyInvalid = "strategy-invalid"
	// RejectAdmissionCap: the assignment would exceed MaxVMsPerServer.
	RejectAdmissionCap = "admission-cap"
	// MigrateTargetDown is the Reason of a migrate record whose move was
	// skipped because the consolidator targeted a crashed server.
	MigrateTargetDown = "target-down"

	// Service shed/reject reasons (internal/serve).
	RejectQueueFull = "queue-full" // the shard's bounded admission queue was full
	RejectRateLimit = "rate-limit" // the client's token bucket was empty
	RejectDeadline  = "deadline"   // the request's deadline passed while queued
	RejectShedding  = "shedding"   // the ladder is at the shed level
	RejectDraining  = "draining"   // the service is in its SIGTERM drain
	RejectCapacity  = "no-capacity"
)

// DecisionSearch is the PROACTIVE search-statistics payload of a place
// or reject decision taken through a strategy.Explainer: exact per-call
// counts from core.SearchStats.
type DecisionSearch struct {
	Enumerated int  `json:"enumerated"`
	Deduped    int  `json:"deduped"`
	Feasible   int  `json:"feasible"`
	Infeasible int  `json:"infeasible"`
	Pruned     int  `json:"pruned"`
	Exhausted  bool `json:"exhausted,omitempty"`
}

// Decision is one record of the flight log. Kind selects which optional
// fields are meaningful; From and To are always present and -1 when the
// kind carries neither (0 is a valid server and shard id).
type Decision struct {
	// Kind is one of the Decision* constants; T the simulated instant.
	Kind string  `json:"kind"`
	T    float64 `json:"t"`
	// Shard is the partition the decision ran on (0 in monolithic runs,
	// -1 for coordinator decisions: route and steal).
	Shard int `json:"shard"`
	// Req indexes the request stream; synthetic requeue requests get
	// indices past the original stream. -1 on migrate records (a
	// consolidator move concerns a VM, not a request).
	Req int `json:"req"`
	// Job/VMs echo the request (or the moved/killed VM's job).
	Job int `json:"job,omitempty"`
	VMs int `json:"vms,omitempty"`
	// Queue is the admission-queue depth just after an admit.
	Queue int `json:"queue,omitempty"`
	// Reason qualifies rejects (Reject* constants) and skipped migrates.
	Reason string `json:"reason,omitempty"`
	// Count/TEnd describe a folded reject run: Count identical rejects
	// from T through TEnd. Absent (0) means a single occurrence.
	Count int     `json:"count,omitempty"`
	TEnd  float64 `json:"t_end,omitempty"`
	// Candidates is the placement candidate-set size offered to the
	// strategy (the up-server count).
	Candidates int `json:"candidates,omitempty"`
	// Wait is place-time minus submit.
	Wait float64 `json:"wait,omitempty"`
	// Window is the 1-based synchronization-window ordinal of a
	// coordinator decision.
	Window int `json:"window,omitempty"`
	// From/To: migrate = source/destination server; steal =
	// donor/receiver shard; route = -1/receiver shard; requeue = the
	// crashed server/-1. -1 where not meaningful.
	From int `json:"from"`
	To   int `json:"to"`
	// VMID is the dense VM uid a requeue or migrate concerns.
	VMID int `json:"vm_id,omitempty"`
	// Lost is the nominal-seconds of progress a requeue discarded.
	Lost float64 `json:"lost,omitempty"`
	// Relaxed/Degraded/Search carry the Explainer's placement info:
	// QoS-relaxed second pass, budget-exhausted first-fit degradation,
	// and the exact search counters.
	Relaxed  bool `json:"relaxed,omitempty"`
	Degraded bool `json:"degraded,omitempty"`
	// Servers/VMIDs are the per-VM placement targets and assigned uids.
	Servers []int           `json:"servers,omitempty"`
	VMIDs   []int           `json:"vm_ids,omitempty"`
	Search  *DecisionSearch `json:"search,omitempty"`
}

// DecisionRecorder buffers the flight log for one run. Attach with
// Config.Recorder; reuse across runs is safe (the run resets it). Safe
// for concurrent emitters and readers.
type DecisionRecorder struct {
	mu         sync.Mutex
	recs       []Decision
	lastReject map[int]int // req -> recs index of the open reject fold
}

// NewDecisionRecorder returns an empty recorder.
func NewDecisionRecorder() *DecisionRecorder {
	return &DecisionRecorder{lastReject: map[int]int{}}
}

// reset clears the recorder for a new run.
func (r *DecisionRecorder) reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.recs = r.recs[:0]
	clear(r.lastReject)
	r.mu.Unlock()
}

// record appends one decision, folding consecutive same-reason rejects
// of the same request and closing the fold on any other decision about
// it.
func (r *DecisionRecorder) record(d Decision) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lastReject == nil {
		r.lastReject = map[int]int{}
	}
	if d.Kind == DecisionReject {
		if i, ok := r.lastReject[d.Req]; ok {
			if prev := &r.recs[i]; prev.Reason == d.Reason {
				if prev.Count == 0 {
					prev.Count = 1
				}
				prev.Count++
				prev.TEnd = d.T
				return
			}
		}
		r.lastReject[d.Req] = len(r.recs)
		r.recs = append(r.recs, d)
		return
	}
	delete(r.lastReject, d.Req)
	r.recs = append(r.recs, d)
}

// Record appends one decision through the same reject-folding path the
// simulator's hooks use. It is the entry point for emitters outside the
// simulator — the placement service logs its admission, ladder, shed
// and release decisions here — and is nil-safe like every other method.
func (r *DecisionRecorder) Record(d Decision) { r.record(d) }

// Len returns the number of recorded decisions (0 on a nil recorder).
func (r *DecisionRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.recs)
}

// Decisions returns a copy of the log (nil on a nil recorder).
func (r *DecisionRecorder) Decisions() []Decision {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Decision(nil), r.recs...)
}

// WriteJSONL serializes the log as JSON Lines, one decision per line.
// A nil recorder writes nothing.
func (r *DecisionRecorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range r.recs {
		if err := enc.Encode(&r.recs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDecisionLog parses a WriteJSONL document, reporting malformed
// records with their 1-based line number.
func ReadDecisionLog(r io.Reader) ([]Decision, error) {
	var out []Decision
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var d Decision
		if err := json.Unmarshal(b, &d); err != nil {
			return nil, fmt.Errorf("cloudsim: decision log line %d: %w", line, err)
		}
		if d.Kind == "" {
			return nil, fmt.Errorf("cloudsim: decision log line %d: missing kind", line)
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cloudsim: decision log line %d: %w", line+1, err)
	}
	return out, nil
}

// ---- sim-side hooks (all called only when s.rec != nil) ----

// candidateCount is the placement candidate-set size: the up-server
// count the strategy is offered.
func (s *sim) candidateCount() int {
	if s.faulty {
		return len(s.upViews)
	}
	return s.cfg.Servers
}

// recordAdmit logs a request reaching the admission queue.
func (s *sim) recordAdmit(idx int) {
	r := &s.reqs[idx]
	s.stats.decisionAdmits.Inc()
	s.rec.record(Decision{
		Kind: DecisionAdmit, T: float64(s.now), Req: idx,
		Job: r.ID, VMs: r.VMs, Queue: s.qlen(), From: -1, To: -1,
	})
}

// recordReject logs a failed or skipped placement attempt.
func (s *sim) recordReject(idx int, reason string) {
	r := &s.reqs[idx]
	s.stats.decisionRejects.Inc()
	s.rec.record(Decision{
		Kind: DecisionReject, T: float64(s.now), Req: idx,
		Job: r.ID, VMs: r.VMs, Reason: reason,
		Candidates: s.candidateCount(), From: -1, To: -1,
	})
}

// recordPlace logs a committed placement: the per-VM server targets,
// the assigned uids, and — when the strategy is an Explainer — the
// search statistics behind the decision.
func (s *sim) recordPlace(idx int, assign, uids []int, info *strategy.PlaceInfo) {
	r := &s.reqs[idx]
	s.stats.decisionPlaces.Inc()
	d := Decision{
		Kind: DecisionPlace, T: float64(s.now), Req: idx,
		Job: r.ID, VMs: r.VMs,
		Wait:       float64(s.now - r.Submit),
		Candidates: s.candidateCount(),
		From:       -1, To: -1,
		Servers: append([]int(nil), assign...),
		VMIDs:   append([]int(nil), uids...),
	}
	if info != nil {
		d.Relaxed = info.Relaxed
		d.Degraded = info.Stats.Degraded
		d.Search = newDecisionSearch(info.Stats)
	}
	s.rec.record(d)
}

// recordRequeue logs a crash casualty's remaining work re-entering
// admission as synthetic request ridx.
func (s *sim) recordRequeue(vmID, jobID, server, ridx int, lost float64) {
	s.rec.record(Decision{
		Kind: DecisionRequeue, T: float64(s.now), Req: ridx,
		Job: jobID, VMs: 1, VMID: vmID, Lost: lost,
		From: server, To: -1,
	})
}

// recordMigrate logs one consolidator move (reason == "" when applied,
// MigrateTargetDown when skipped).
func (s *sim) recordMigrate(vmID, jobID, from, to int, reason string) {
	s.rec.record(Decision{
		Kind: DecisionMigrate, T: float64(s.now), Req: -1,
		Job: jobID, VMID: vmID, From: from, To: to, Reason: reason,
	})
}

// newDecisionSearch copies exact search stats into the log payload.
func newDecisionSearch(st core.SearchStats) *DecisionSearch {
	return &DecisionSearch{
		Enumerated: st.Enumerated,
		Deduped:    st.Deduped,
		Feasible:   st.Feasible,
		Infeasible: st.Infeasible,
		Pruned:     st.Pruned,
		Exhausted:  st.Exhausted,
	}
}

// ---- coordinator-side hooks (sharded runs, S > 1) ----

// recordRoute logs the coordinator routing one arrival to a shard in
// synchronization window w (1-based).
func (r *DecisionRecorder) recordRoute(t float64, req, job, vms, shard, w int) {
	r.record(Decision{
		Kind: DecisionRoute, T: t, Shard: -1, Req: req,
		Job: job, VMs: vms, Window: w, From: -1, To: shard,
	})
}

// recordSteal logs a barrier admission handoff from one shard to
// another.
func (r *DecisionRecorder) recordSteal(t float64, req, job, vms, from, to, w int) {
	r.record(Decision{
		Kind: DecisionSteal, T: t, Shard: -1, Req: req,
		Job: job, VMs: vms, Window: w, From: from, To: to,
	})
}

// absorbShards folds the coordinator's and every shard's private
// decision logs into the user's recorder, remapping into the global
// space: server ids by the shard's base, VM uids by the running uid
// base (the audit's scheme, so decision-log uids match audit uids),
// and synthetic requeue request indices past the original stream into
// disjoint per-shard ranges (reqBase[k] = Σ synthetic requests of the
// shards before k). Records are ordered by time, ties resolved
// coordinator-first then by shard — deterministic for a deterministic
// run.
func (r *DecisionRecorder) absorbShards(coord *DecisionRecorder, parts []*DecisionRecorder, serverBase, uidBase, reqBase []int, nOrig int) {
	r.reset()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recs = append(r.recs, coord.Decisions()...)
	for k, p := range parts {
		for _, d := range p.Decisions() {
			d.Shard = k
			if d.Req >= nOrig {
				d.Req = nOrig + reqBase[k] + (d.Req - nOrig)
			}
			if d.VMID > 0 {
				d.VMID += uidBase[k]
			}
			for i := range d.VMIDs {
				d.VMIDs[i] += uidBase[k]
			}
			for i := range d.Servers {
				d.Servers[i] += serverBase[k]
			}
			if d.Kind == DecisionMigrate || d.Kind == DecisionRequeue {
				if d.From >= 0 {
					d.From += serverBase[k]
				}
				if d.To >= 0 {
					d.To += serverBase[k]
				}
			}
			r.recs = append(r.recs, d)
		}
	}
	recs := r.recs
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].T < recs[j].T })
}

package cloudsim

// Telemetry for the optimized event loop: counter/gauge handles over
// Config.Obs and the simulated-time trace recorder over Config.Tracer.
// Everything here is observation only — no simulation state is read
// back from it — and with both fields nil every hook is a nil-receiver
// no-op, so the disabled path stays allocation-free (pinned by
// TestObsDisabledAllocFree and the golden equivalence tests).

import (
	"strconv"

	"pacevm/internal/obs"
	"pacevm/internal/units"
)

// Trace track layout: pid 1 carries one thread per server (occupancy
// spans with nested VM slices), pid 2 carries the workload (arrival
// instants, the queue-depth counter track, and the tails of the
// arrival→placement flow arrows).
const (
	tracePidServers  = 1
	tracePidWorkload = 2
)

// simStats is the registry-backed counter set of one run.
type simStats struct {
	eventsPopped    *obs.Counter
	placeAttempts   *obs.Counter
	placeRejected   *obs.Counter
	queueDepthHW    *obs.Gauge
	backfillSplices *obs.Counter
	intervalsClosed *obs.Counter
	pricingHits     *obs.Counter
	pricingMisses   *obs.Counter
	// Fault-layer counters; they only ever move in fault mode.
	faultsInjected     *obs.Counter
	vmsKilled          *obs.Counter
	requeues           *obs.Counter
	workLostSeconds    *obs.Counter // whole nominal-seconds (Metrics.WorkLost is exact)
	movesToDownSkipped *obs.Counter
	// Per-VM outcome digests, observed at retire: wait (placed − submit)
	// and stretch ((end − submit) / nominal).
	vmWait    *obs.Quantile
	vmStretch *obs.Quantile
}

// init resolves the handles; from a nil registry every handle is nil
// and each hook costs exactly its nil check.
func (st *simStats) init(reg *obs.Registry) {
	st.eventsPopped = reg.Counter("sim_events_popped")
	st.placeAttempts = reg.Counter("sim_place_attempts")
	st.placeRejected = reg.Counter("sim_place_rejected")
	st.queueDepthHW = reg.Gauge("sim_queue_depth_highwater")
	st.backfillSplices = reg.Counter("sim_backfill_splices")
	st.intervalsClosed = reg.Counter("sim_intervals_closed")
	st.pricingHits = reg.Counter("sim_pricing_cache_hits")
	st.pricingMisses = reg.Counter("sim_pricing_cache_misses")
	st.faultsInjected = reg.Counter("sim_faults_injected")
	st.vmsKilled = reg.Counter("sim_vms_killed")
	st.requeues = reg.Counter("sim_requeues")
	st.workLostSeconds = reg.Counter("sim_work_lost_seconds")
	st.movesToDownSkipped = reg.Counter("sim_consolidator_moves_to_down_skipped")
	st.vmWait = reg.Quantile("sim_vm_wait_seconds")
	st.vmStretch = reg.Quantile("sim_vm_stretch")
}

// traceSetup names the trace tracks. Thread-name metadata is emitted
// per server up front so a loaded trace reads "server N", not "tid N".
func (s *sim) traceSetup() {
	if s.tr == nil {
		return
	}
	s.tr.NameProcess(tracePidServers, "servers")
	s.tr.NameProcess(tracePidWorkload, "workload")
	s.tr.NameThread(tracePidWorkload, 0, "queue")
	for i := range s.srv {
		s.tr.NameThread(tracePidServers, i, "server "+strconv.Itoa(i))
	}
}

// traceArrival records a job's submission instant and opens its
// arrival→placement flow arrow (id = request index).
func (s *sim) traceArrival(idx int) {
	if s.tr == nil {
		return
	}
	r := &s.reqs[idx]
	name := "job " + strconv.Itoa(r.ID)
	s.tr.Instant(name, "arrival", tracePidWorkload, 0, float64(s.now), map[string]any{
		"job":   r.ID,
		"class": r.Class.String(),
		"vms":   r.VMs,
	})
	s.tr.FlowStart(name, "placement", idx+1, tracePidWorkload, 0, float64(s.now))
}

// tracePlaced closes the job's flow arrow on the first hosting server's
// track at placement time.
func (s *sim) tracePlaced(idx, server int) {
	if s.tr == nil {
		return
	}
	r := &s.reqs[idx]
	s.tr.FlowFinish("job "+strconv.Itoa(r.ID), "placement", idx+1, tracePidServers, server, float64(s.now))
}

// traceQueueDepth samples the queue-depth counter track.
func (s *sim) traceQueueDepth() {
	if s.tr == nil {
		return
	}
	s.tr.Counter("queue", tracePidWorkload, 0, float64(s.now), "depth", float64(s.qlen()))
}

// traceVMRetire records one VM's execution slice on its server's track
// (placement to completion, completion == now).
func (s *sim) traceVMRetire(sv *simServer, vm *simVM, violated bool) {
	if s.tr == nil {
		return
	}
	s.tr.Span("vm"+strconv.Itoa(vm.id)+" job "+strconv.Itoa(vm.jobID), "vm",
		tracePidServers, sv.id, float64(vm.placed), float64(s.now), map[string]any{
			"job":      vm.jobID,
			"class":    vm.class.String(),
			"submit":   float64(vm.submit),
			"wait":     float64(vm.placed - vm.submit),
			"violated": violated,
		})
}

// traceHosting records a server's closed occupancy span (it hosted at
// least one VM from 'from' until now).
func (s *sim) traceHosting(sv *simServer, from units.Seconds) {
	if s.tr == nil {
		return
	}
	s.tr.Span("hosting", "server", tracePidServers, sv.id, float64(from), float64(s.now), nil)
}

// traceVMKill records a killed VM's truncated execution slice on its
// server's track (placement to the crash instant).
func (s *sim) traceVMKill(sv *simServer, vm *simVM) {
	if s.tr == nil {
		return
	}
	s.tr.Span("vm"+strconv.Itoa(vm.id)+" job "+strconv.Itoa(vm.jobID)+" killed", "vm",
		tracePidServers, sv.id, float64(vm.placed), float64(s.now), map[string]any{
			"job":    vm.jobID,
			"class":  vm.class.String(),
			"killed": true,
		})
}

// traceDown records a server's outage span (crash to recovery, or to
// the end of the run for servers still down).
func (s *sim) traceDown(sv *simServer, from units.Seconds) {
	if s.tr == nil {
		return
	}
	s.tr.Span("down", "fault", tracePidServers, sv.id, float64(from), float64(s.now), nil)
}

package cloudsim

// Telemetry for the optimized event loop: counter/gauge handles over
// Config.Obs and the simulated-time trace recorder over Config.Tracer.
// Everything here is observation only — no simulation state is read
// back from it — and with both fields nil every hook is a nil-receiver
// no-op, so the disabled path stays allocation-free (pinned by
// TestObsDisabledAllocFree and the golden equivalence tests).

import (
	"strconv"

	"pacevm/internal/obs"
	"pacevm/internal/units"
)

// Trace track layout: pid 1 carries one thread per server (occupancy
// spans with nested VM slices), pid 2 carries the workload (arrival
// instants, the queue-depth counter track, and the tails of the
// arrival→placement flow arrows).
const (
	tracePidServers  = 1
	tracePidWorkload = 2
	// tracePidCoord is the sharded coordinator's process in a merged
	// cross-shard timeline (tid 0 = synchronization windows, tid 1 =
	// admission steals); never emitted by a monolithic run.
	tracePidCoord = 3
)

// simStats is the registry-backed counter set of one run.
type simStats struct {
	eventsPopped    *obs.Counter
	placeAttempts   *obs.Counter
	placeRejected   *obs.Counter
	queueDepthHW    *obs.Gauge
	backfillSplices *obs.Counter
	intervalsClosed *obs.Counter
	pricingHits     *obs.Counter
	pricingMisses   *obs.Counter
	// fleetScans counts placements answered by an O(servers) walk — the
	// linear strategy path; indexed strategies must keep this at zero no
	// matter the fleet size (pinned by TestFleetScanScaling). fitSkips
	// counts queued jobs drainQueue never attempted because the capacity
	// summary proved the fleet cannot hold them.
	fleetScans *obs.Counter
	fitSkips   *obs.Counter
	// admissionSteals counts queued jobs this shard handed off to
	// another shard at a window barrier (ShardConfig.Steal); always zero
	// in monolithic and steal-off runs.
	admissionSteals *obs.Counter
	// Fault-layer counters; they only ever move in fault mode.
	faultsInjected     *obs.Counter
	vmsKilled          *obs.Counter
	requeues           *obs.Counter
	workLostSeconds    *obs.Counter // whole nominal-seconds (Metrics.WorkLost is exact)
	movesToDownSkipped *obs.Counter
	// Per-VM outcome digests, observed at retire: wait (placed − submit)
	// and stretch ((end − submit) / nominal).
	vmWait    *obs.Quantile
	vmStretch *obs.Quantile
	// Decision flight-recorder counters, resolved by initDecision only
	// when Config.Recorder is attached so that a recorder-off run's
	// registry snapshot is unchanged (the routes counter lives in
	// RunSharded, the steals counter above moves either way).
	decisionAdmits  *obs.Counter
	decisionPlaces  *obs.Counter
	decisionRejects *obs.Counter
}

// init resolves the handles; from a nil registry every handle is nil
// and each hook costs exactly its nil check.
func (st *simStats) init(reg *obs.Registry) {
	st.eventsPopped = reg.Counter("sim_events_popped")
	st.placeAttempts = reg.Counter("sim_place_attempts")
	st.placeRejected = reg.Counter("sim_place_rejected")
	st.queueDepthHW = reg.Gauge("sim_queue_depth_highwater")
	st.backfillSplices = reg.Counter("sim_backfill_splices")
	st.intervalsClosed = reg.Counter("sim_intervals_closed")
	st.pricingHits = reg.Counter("sim_pricing_cache_hits")
	st.pricingMisses = reg.Counter("sim_pricing_cache_misses")
	st.fleetScans = reg.Counter("sim_fleet_scans_total")
	st.fitSkips = reg.Counter("sim_fit_skips_total")
	st.admissionSteals = reg.Counter("sim_admission_steals_total")
	st.faultsInjected = reg.Counter("sim_faults_injected")
	st.vmsKilled = reg.Counter("sim_vms_killed")
	st.requeues = reg.Counter("sim_requeues")
	st.workLostSeconds = reg.Counter("sim_work_lost_seconds")
	st.movesToDownSkipped = reg.Counter("sim_consolidator_moves_to_down_skipped")
	st.vmWait = reg.Quantile("sim_vm_wait_seconds")
	st.vmStretch = reg.Quantile("sim_vm_stretch")
}

// initDecision resolves the flight-recorder counters; called only when
// a DecisionRecorder is attached (see simStats).
func (st *simStats) initDecision(reg *obs.Registry) {
	st.decisionAdmits = reg.Counter("sim_decision_admits_total")
	st.decisionPlaces = reg.Counter("sim_decision_places_total")
	st.decisionRejects = reg.Counter("sim_decision_rejects_total")
}

// traceSetup names the trace tracks. Thread-name metadata is emitted
// per server up front so a loaded trace reads "server N", not "tid N".
func (s *sim) traceSetup() {
	if s.tr == nil {
		return
	}
	s.tr.NameProcess(tracePidServers, "servers")
	s.tr.NameProcess(tracePidWorkload, "workload")
	s.tr.NameThread(tracePidWorkload, 0, "queue")
	for i := range s.srv {
		s.tr.NameThread(tracePidServers, i, "server "+strconv.Itoa(i))
	}
}

// Typed args payloads for the per-event trace hooks. Each struct's
// fields are tagged in ascending key order, so it serializes
// byte-identically to the map[string]any the hooks historically built
// (encoding/json sorts map keys) at one allocation per event instead of
// a map plus one boxing allocation per entry — the BenchmarkSimTrace
// churn fix, pinned by TestTraceTypedArgsByteIdentical.
type traceArrivalArgs struct {
	Class string `json:"class"`
	Job   int    `json:"job"`
	VMs   int    `json:"vms"`
}

type traceRetireArgs struct {
	Class    string  `json:"class"`
	Job      int     `json:"job"`
	Submit   float64 `json:"submit"`
	Violated bool    `json:"violated"`
	Wait     float64 `json:"wait"`
}

type traceKillArgs struct {
	Class  string `json:"class"`
	Job    int    `json:"job"`
	Killed bool   `json:"killed"`
}

// jobName formats "job <id>" in the sim-owned scratch buffer: one
// string allocation per call, no intermediate itoa string.
func (s *sim) jobName(id int) string {
	s.nameBuf = append(s.nameBuf[:0], "job "...)
	s.nameBuf = strconv.AppendInt(s.nameBuf, int64(id), 10)
	return string(s.nameBuf)
}

// vmName formats "vm<id> job <jobID>" (plus an optional suffix) the
// same way.
func (s *sim) vmName(vm *simVM, suffix string) string {
	s.nameBuf = append(s.nameBuf[:0], "vm"...)
	s.nameBuf = strconv.AppendInt(s.nameBuf, int64(vm.id), 10)
	s.nameBuf = append(s.nameBuf, " job "...)
	s.nameBuf = strconv.AppendInt(s.nameBuf, int64(vm.jobID), 10)
	s.nameBuf = append(s.nameBuf, suffix...)
	return string(s.nameBuf)
}

// traceArrival records a job's submission instant and opens its
// arrival→placement flow arrow (id = request index).
func (s *sim) traceArrival(idx int) {
	if s.tr == nil {
		return
	}
	r := &s.reqs[idx]
	name := s.jobName(r.ID)
	s.tr.Instant(name, "arrival", tracePidWorkload, 0, float64(s.now), traceArrivalArgs{
		Class: r.Class.String(),
		Job:   r.ID,
		VMs:   r.VMs,
	})
	s.tr.FlowStart(name, "placement", idx+1, tracePidWorkload, 0, float64(s.now))
}

// tracePlaced closes the job's flow arrow on the first hosting server's
// track at placement time.
func (s *sim) tracePlaced(idx, server int) {
	if s.tr == nil {
		return
	}
	r := &s.reqs[idx]
	s.tr.FlowFinish(s.jobName(r.ID), "placement", idx+1, tracePidServers, server, float64(s.now))
}

// traceQueueDepth samples the queue-depth counter track.
func (s *sim) traceQueueDepth() {
	if s.tr == nil {
		return
	}
	s.tr.Counter("queue", tracePidWorkload, 0, float64(s.now), "depth", float64(s.qlen()))
}

// traceVMRetire records one VM's execution slice on its server's track
// (placement to completion, completion == now).
func (s *sim) traceVMRetire(sv *simServer, vm *simVM, violated bool) {
	if s.tr == nil {
		return
	}
	s.tr.Span(s.vmName(vm, ""), "vm",
		tracePidServers, sv.id, float64(vm.placed), float64(s.now), traceRetireArgs{
			Class:    vm.class.String(),
			Job:      vm.jobID,
			Submit:   float64(vm.submit),
			Violated: violated,
			Wait:     float64(vm.placed - vm.submit),
		})
}

// traceHosting records a server's closed occupancy span (it hosted at
// least one VM from 'from' until now).
func (s *sim) traceHosting(sv *simServer, from units.Seconds) {
	if s.tr == nil {
		return
	}
	s.tr.Span("hosting", "server", tracePidServers, sv.id, float64(from), float64(s.now), nil)
}

// traceVMKill records a killed VM's truncated execution slice on its
// server's track (placement to the crash instant).
func (s *sim) traceVMKill(sv *simServer, vm *simVM) {
	if s.tr == nil {
		return
	}
	s.tr.Span(s.vmName(vm, " killed"), "vm",
		tracePidServers, sv.id, float64(vm.placed), float64(s.now), traceKillArgs{
			Class:  vm.class.String(),
			Job:    vm.jobID,
			Killed: true,
		})
}

// traceDown records a server's outage span (crash to recovery, or to
// the end of the run for servers still down).
func (s *sim) traceDown(sv *simServer, from units.Seconds) {
	if s.tr == nil {
		return
	}
	s.tr.Span("down", "fault", tracePidServers, sv.id, float64(from), float64(s.now), nil)
}

package cloudsim

// The VM lifecycle audit: one span record per VM *attempt*, tracing
// submit → queue → place(server) → run → {crash → requeue}* → finish
// with the derived quantities the paper's time-resolved evaluation needs
// (wait, service time, stretch) and deadline-miss attribution. A VM
// killed by a server crash closes a "killed" span and — because its
// remaining work re-enters admission as a synthetic single-VM request —
// the redo opens the chain's next attempt, so a crash→requeue→finish
// chain reads as attempt 1 (killed, requeued) followed by attempt 2
// (finished). Span counts and sums reconcile exactly with Metrics:
// finished spans == TotalVMs, killed spans == VMsKilled, requeued spans
// == Requeues, and Σ WorkLost over killed spans == Metrics.WorkLost.
//
// Like the tracer, the audit is observation-only and free when off:
// every hook is gated on a single nil check, Config.Audit defaults to
// nil, and the golden/alloc tests pin that a nil-audit run stays
// byte-identical to RunReference at the pinned allocation baseline.
// RunReference ignores the field — the oracle stays frozen.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// Audit span outcomes.
const (
	// AuditFinished marks an attempt that ran to completion.
	AuditFinished = "finished"
	// AuditKilled marks an attempt evicted by a server crash.
	AuditKilled = "killed"
)

// Deadline-miss attribution values (AuditSpan.MissAttribution).
const (
	// MissNone: the deadline was met (or the attempt was killed, so the
	// verdict belongs to a later attempt of the chain).
	MissNone = "none"
	// MissCapacity: the deadline was missed on a chain that never
	// crashed — queueing delay and co-location interference alone.
	MissCapacity = "capacity"
	// MissFault: the deadline was missed on a retry attempt — at least
	// one crash inflated the chain, so the outage is implicated.
	MissFault = "fault"
)

// AuditSpan is one attempt of one VM's lifecycle.
type AuditSpan struct {
	// VMID is the simulator's dense VM uid ("vm<id>" in traces); each
	// attempt gets a fresh uid. JobID ties siblings and retries back to
	// the submitted request.
	VMID  int
	JobID int
	Class workload.Class
	// Attempt numbers the requeue chain, 1-based: attempt n+1 redoes the
	// work attempt n lost to a crash.
	Attempt int
	// Server hosted the attempt when it ended (migrations move VMs
	// between servers; the span keeps the final host).
	Server int
	// Submit is the chain's original submission instant — requeued
	// attempts inherit it, so Wait and Stretch account the whole
	// outage-inflated lifetime. Placed/End bracket this attempt's run.
	Submit units.Seconds
	Placed units.Seconds
	End    units.Seconds
	// Wait is Placed − Submit; Service is End − Placed; Stretch is
	// (End − Submit) / the attempt's nominal work — how many times its
	// ideal solo runtime the VM's outcome took.
	Wait    units.Seconds
	Service units.Seconds
	Stretch float64
	// Outcome is AuditFinished or AuditKilled. A killed attempt with
	// Requeued set re-entered admission; WorkLost is the progress the
	// checkpoint policy could not save.
	Outcome  string
	Requeued bool
	WorkLost units.Seconds
	// DeadlineMiss marks a finished attempt that ended after the
	// response-time deadline; MissAttribution classifies it (see the
	// Miss* constants).
	DeadlineMiss    bool
	MissAttribution string
}

// VMAudit collects lifecycle spans for one run. Attach with
// Config.Audit; reuse across runs is safe (Run resets it). The zero
// value is not ready — use NewVMAudit.
type VMAudit struct {
	spans []AuditSpan
	// attempts maps a re-queued request's index in the grown request
	// slice to its attempt number; absent means attempt 1 (an original
	// submission).
	attempts map[int]int
}

// NewVMAudit returns an empty audit collector.
func NewVMAudit() *VMAudit {
	return &VMAudit{attempts: map[int]int{}}
}

// reset clears state from a previous run.
func (a *VMAudit) reset() {
	a.spans = a.spans[:0]
	clear(a.attempts)
}

// attemptOf resolves a request index to its chain attempt number.
func (a *VMAudit) attemptOf(reqIdx int) int {
	if n, ok := a.attempts[reqIdx]; ok {
		return n
	}
	return 1
}

// finish closes a completed attempt's span.
func (a *VMAudit) finish(vm *simVM, server int, now units.Seconds, violated bool) {
	attrib := MissNone
	if violated {
		if vm.attempt > 1 {
			attrib = MissFault
		} else {
			attrib = MissCapacity
		}
	}
	a.spans = append(a.spans, AuditSpan{
		VMID:            vm.id,
		JobID:           vm.jobID,
		Class:           vm.class,
		Attempt:         vm.attempt,
		Server:          server,
		Submit:          vm.submit,
		Placed:          vm.placed,
		End:             now,
		Wait:            vm.placed - vm.submit,
		Service:         now - vm.placed,
		Stretch:         stretchOf(vm, now),
		Outcome:         AuditFinished,
		DeadlineMiss:    violated,
		MissAttribution: attrib,
	})
}

// kill closes a crash-evicted attempt's span and numbers the redo
// request (at index reqIdx) as the chain's next attempt.
func (a *VMAudit) kill(vm *simVM, server int, now units.Seconds, lost units.Seconds, reqIdx int) {
	a.spans = append(a.spans, AuditSpan{
		VMID:            vm.id,
		JobID:           vm.jobID,
		Class:           vm.class,
		Attempt:         vm.attempt,
		Server:          server,
		Submit:          vm.submit,
		Placed:          vm.placed,
		End:             now,
		Wait:            vm.placed - vm.submit,
		Service:         now - vm.placed,
		Stretch:         stretchOf(vm, now),
		Outcome:         AuditKilled,
		Requeued:        true,
		WorkLost:        lost,
		MissAttribution: MissNone,
	})
	a.attempts[reqIdx] = vm.attempt + 1
}

// stretchOf is (end − submit) / nominal for one attempt.
func stretchOf(vm *simVM, end units.Seconds) float64 {
	if vm.nominal <= 0 {
		return 0
	}
	return float64(end-vm.submit) / float64(vm.nominal)
}

// Len returns the number of recorded spans.
func (a *VMAudit) Len() int {
	if a == nil {
		return 0
	}
	return len(a.spans)
}

// Spans returns a copy of the recorded spans in event order (the order
// attempts ended), which is deterministic for a deterministic run.
func (a *VMAudit) Spans() []AuditSpan {
	if a == nil {
		return nil
	}
	return append([]AuditSpan(nil), a.spans...)
}

// auditCSVHeader is the exported column set, stable for downstream
// tooling (documented in README).
const auditCSVHeader = "vm,job,class,attempt,server,submit_s,placed_s,end_s,wait_s,service_s,stretch,outcome,requeued,work_lost_s,deadline_miss,miss_attribution"

// WriteCSV exports the spans as CSV, one row per attempt, floats in
// shortest round-trip form so identical runs export identical bytes.
func (a *VMAudit) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, auditCSVHeader); err != nil {
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i := range a.spans {
		sp := &a.spans[i]
		if _, err := fmt.Fprintf(bw, "%d,%d,%s,%d,%d,%s,%s,%s,%s,%s,%s,%s,%t,%s,%t,%s\n",
			sp.VMID, sp.JobID, sp.Class, sp.Attempt, sp.Server,
			g(float64(sp.Submit)), g(float64(sp.Placed)), g(float64(sp.End)),
			g(float64(sp.Wait)), g(float64(sp.Service)), g(sp.Stretch),
			sp.Outcome, sp.Requeued, g(float64(sp.WorkLost)),
			sp.DeadlineMiss, sp.MissAttribution); err != nil {
			return err
		}
	}
	return bw.Flush()
}

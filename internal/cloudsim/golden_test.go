package cloudsim

// Golden equivalence: the optimized Run must be byte-identical to the
// preserved naive transcription (RunReference) — same Metrics, same
// VMRecord stream — across strategies (indexed first-fit included),
// backfill depths, and the consolidator path. Any divergence means the
// hot-path rewrite changed simulation semantics, not just its cost.

import (
	"reflect"
	"strings"
	"testing"

	"pacevm/internal/core"
	"pacevm/internal/migrate"
	"pacevm/internal/model"
	"pacevm/internal/rng"
	"pacevm/internal/strategy"
	"pacevm/internal/trace"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// goldenWorkload derives a seeded EGEE-shaped workload dense enough to
// saturate the small golden fleets (so queueing, backfill and
// completions all trigger).
func goldenWorkload(t testing.TB, seed uint64, n int) []trace.Request {
	t.Helper()
	cfg := trace.DefaultStreamConfig(seed)
	cfg.MeanInterarrival = 30
	s, err := trace.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s.Take(n)
}

// goldenCompare runs both simulators on freshly-built configs (stateful
// strategies like Random consume rng, so each run gets its own) and
// requires identical results.
func goldenCompare(t *testing.T, mkCfg func() Config, reqs []trace.Request) {
	t.Helper()
	refCfg := mkCfg()
	refCfg.RecordVMs = true
	want, err := RunReference(refCfg, reqs)
	if err != nil {
		t.Fatalf("RunReference: %v", err)
	}
	optCfg := mkCfg()
	optCfg.RecordVMs = true
	got, err := Run(optCfg, reqs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want.Metrics != got.Metrics {
		t.Errorf("Metrics diverge:\nreference %+v\noptimized %+v", want.Metrics, got.Metrics)
	}
	if !reflect.DeepEqual(want.VMs, got.VMs) {
		if len(want.VMs) != len(got.VMs) {
			t.Fatalf("VMRecord count diverges: reference %d, optimized %d", len(want.VMs), len(got.VMs))
		}
		for i := range want.VMs {
			if want.VMs[i] != got.VMs[i] {
				t.Fatalf("VMRecord %d diverges:\nreference %+v\noptimized %+v", i, want.VMs[i], got.VMs[i])
			}
		}
	}
}

func TestGoldenEquivalence(t *testing.T) {
	db := sharedDB(t)
	mk := func(s func() strategy.Strategy, servers, backfill int, consolidate bool) func() Config {
		return func() Config {
			cfg := Config{
				DB:            db,
				Servers:       servers,
				Strategy:      s(),
				BackfillDepth: backfill,
			}
			if consolidate {
				cfg.Consolidator = &migrate.Planner{DB: db, MigrationCost: 10}
				cfg.MigrationCost = 10
			}
			return cfg
		}
	}
	ffS := func(mult int) func() strategy.Strategy {
		return func() strategy.Strategy { return ff(t, mult) }
	}
	bfS := func(mult int) func() strategy.Strategy {
		return func() strategy.Strategy { return &strategy.BestFit{Multiplex: mult} }
	}
	randS := func(mult int, seed uint64) func() strategy.Strategy {
		return func() strategy.Strategy { return &strategy.Random{Multiplex: mult, Rng: rng.New(seed)} }
	}
	paS := func(goal core.Goal) func() strategy.Strategy {
		return func() strategy.Strategy { return pa(t, goal) }
	}

	big := goldenWorkload(t, 11, 300)
	mid := goldenWorkload(t, 12, 150)
	small := goldenWorkload(t, 13, 60)

	cases := []struct {
		name  string
		mkCfg func() Config
		reqs  []trace.Request
	}{
		{"FF-1", mk(ffS(1), 12, 0, false), big},
		{"FF-1/backfill4", mk(ffS(1), 12, 4, false), big},
		{"FF-2", mk(ffS(2), 12, 0, false), big},
		{"FF-3/backfill2", mk(ffS(3), 8, 2, false), big},
		{"BF-2", mk(bfS(2), 10, 0, false), mid},
		{"BF-2/backfill3", mk(bfS(2), 10, 3, false), mid},
		{"RAND-2", mk(randS(2, 42), 10, 0, false), mid},
		{"RAND-2/backfill2", mk(randS(2, 43), 10, 2, false), mid},
		{"PA-balanced", mk(paS(core.GoalBalanced), 8, 0, false), small},
		{"PA-energy/backfill2", mk(paS(core.GoalEnergy), 8, 2, false), small},
		{"PA-performance", mk(paS(core.GoalPerformance), 8, 0, false), small},
		{"FF-2/consolidate", mk(ffS(2), 10, 0, true), mid},
		{"FF-2/consolidate/backfill3", mk(ffS(2), 10, 3, true), mid},
		{"BF-2/consolidate", mk(bfS(2), 10, 0, true), mid},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			goldenCompare(t, c.mkCfg, c.reqs)
		})
	}
}

// TestGoldenTightAdmission pins equivalence where the admission limit —
// not the strategy cap — rejects placements, exercising the index's
// rejection path.
func TestGoldenTightAdmission(t *testing.T) {
	db := sharedDB(t)
	reqs := goldenWorkload(t, 17, 120)
	goldenCompare(t, func() Config {
		return Config{DB: db, Servers: 6, Strategy: ff(t, 3), MaxVMsPerServer: 6, BackfillDepth: 3}
	}, reqs)
}

// TestBackfillPreservesFIFOAmongEquals is the regression for the
// drainQueue splice: equal-capacity jobs in the backfill window must
// backfill in submission order, and a successful backfill re-checks the
// head rather than restarting the window.
func TestBackfillPreservesFIFOAmongEquals(t *testing.T) {
	db := sharedDB(t)
	ref := db.Aux().RefTime[workload.ClassCPU]
	reqs := []trace.Request{
		// Fill 3 of the 4 FF-1 slots with long work.
		{ID: 1, Submit: 0, Class: workload.ClassCPU, VMs: 3, NominalTime: ref * 4, MaxResponse: ref * 40},
		// The blocker: needs all 4 slots at once.
		{ID: 2, Submit: 1, Class: workload.ClassCPU, VMs: 4, NominalTime: ref, MaxResponse: ref * 40},
		// Three interchangeable 1-VM jobs behind the blocker.
		{ID: 3, Submit: 2, Class: workload.ClassCPU, VMs: 1, NominalTime: ref, MaxResponse: ref * 40},
		{ID: 4, Submit: 3, Class: workload.ClassCPU, VMs: 1, NominalTime: ref, MaxResponse: ref * 40},
		{ID: 5, Submit: 4, Class: workload.ClassCPU, VMs: 1, NominalTime: ref, MaxResponse: ref * 40},
	}
	cfg := Config{DB: db, Servers: 1, Strategy: ff(t, 1), BackfillDepth: 4, RecordVMs: true}
	res, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	starts := map[int]units.Seconds{}
	for _, vm := range res.VMs {
		if cur, ok := starts[vm.JobID]; !ok || vm.Placed < cur {
			starts[vm.JobID] = vm.Placed
		}
	}
	// The free slot goes to the earliest-submitted backfill candidate,
	// and later equals never leapfrog earlier ones.
	if !(starts[3] < starts[4] && starts[4] <= starts[5]) {
		t.Errorf("backfill broke FIFO among equal jobs: starts=%v", starts)
	}
	goldenCompare(t, func() Config { return cfg }, reqs)
}

// classlessDB builds a database that can only price CPU allocations, so
// committing a MEM VM fails at the first post-placement pricing call —
// the mid-commit accounting error of the tryPlace partial-mutation fix.
func classlessDB(t *testing.T) *model.DB {
	t.Helper()
	rec := model.Record{
		Key:       model.Key{NCPU: 1},
		Time:      100,
		AvgTimeVM: 100,
		Energy:    10000,
		MaxPower:  200,
		EDP:       units.EDP(10000, 100),
	}
	db, err := model.New([]model.Record{rec}, model.Aux{
		OSP:     [workload.NumClasses]int{1, 1, 1},
		OSE:     [workload.NumClasses]int{1, 1, 1},
		RefTime: [workload.NumClasses]units.Seconds{100, 100, 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestTryPlaceErrorAborts is the regression for the partial-mutation
// bug: an accounting failure after VMs were committed used to report
// "not placed" and leave the VMs on the server (double placement on
// retry). Both simulators must now abort the run with the error.
func TestTryPlaceErrorAborts(t *testing.T) {
	db := classlessDB(t)
	reqs := []trace.Request{
		{ID: 1, Submit: 0, Class: workload.ClassMEM, VMs: 1, NominalTime: 100, MaxResponse: 1000},
	}
	for name, run := range map[string]func(Config, []trace.Request) (Result, error){
		"optimized": Run, "reference": RunReference,
	} {
		_, err := run(Config{DB: db, Servers: 1, Strategy: ff(t, 1)}, reqs)
		if err == nil {
			t.Fatalf("%s: mid-commit pricing failure did not abort the run", name)
		}
		if !strings.Contains(err.Error(), "pricing") {
			t.Errorf("%s: error %q does not surface the pricing failure", name, err)
		}
	}
}

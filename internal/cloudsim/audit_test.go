package cloudsim

// Guards for the VM lifecycle audit: span chains under faults reconcile
// exactly with Metrics, the audit never perturbs the simulation, and
// the CSV export is parseable and deterministic.

import (
	"bytes"
	"encoding/csv"
	"reflect"
	"strings"
	"testing"

	"pacevm/internal/faults"
	"pacevm/internal/obs"
	"pacevm/internal/trace"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// TestAuditFaultChain drives the single-server crash fixture of
// TestCrashKillsRequeuesAndRecovers with the audit attached: the
// crash→requeue→finish chain must read as attempt 1 (killed, requeued)
// followed by attempt 2 (finished), with wait/service/stretch summing
// consistently and the original submit inherited across the chain.
func TestAuditFaultChain(t *testing.T) {
	db := sharedDB(t)
	class := workload.ClassCPU
	nominal := db.Aux().RefTime[class]
	reqs := []trace.Request{{ID: 1, Submit: 10, Class: class, VMs: 1, NominalTime: nominal, MaxResponse: nominal * 100}}
	down := 10 + units.Seconds(float64(nominal)*0.5)
	audit := NewVMAudit()
	res, err := Run(Config{
		DB: db, Servers: 1, Strategy: ff(t, 1),
		Faults: faults.Schedule{{Server: 0, Down: down, Up: down + 500}},
		Audit:  audit,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	spans := audit.Spans()
	if len(spans) != 2 {
		t.Fatalf("chain produced %d spans, want 2 (killed + finished):\n%+v", len(spans), spans)
	}
	k, f := spans[0], spans[1]
	if k.Outcome != AuditKilled || !k.Requeued || k.Attempt != 1 {
		t.Errorf("first span not a requeued kill of attempt 1: %+v", k)
	}
	if f.Outcome != AuditFinished || f.Requeued || f.Attempt != 2 {
		t.Errorf("second span not a finish of attempt 2: %+v", f)
	}
	if k.JobID != f.JobID || k.Submit != 10 || f.Submit != 10 {
		t.Errorf("chain lost the original job/submit: kill %+v finish %+v", k, f)
	}
	if k.End != down {
		t.Errorf("kill ended at %v, want the crash instant %v", k.End, down)
	}
	if k.WorkLost != res.WorkLost {
		t.Errorf("killed span lost %v, Metrics.WorkLost = %v", k.WorkLost, res.WorkLost)
	}
	for _, sp := range spans {
		if got := sp.Placed - sp.Submit; got != sp.Wait {
			t.Errorf("span wait %v != placed-submit %v", sp.Wait, got)
		}
		if got := sp.End - sp.Placed; got != sp.Service {
			t.Errorf("span service %v != end-placed %v", sp.Service, got)
		}
	}
	// The redo waited out the outage under the original submit, so its
	// wait dominates the chain and its stretch exceeds the kill's.
	if f.Wait <= k.Wait || f.Stretch <= k.Stretch {
		t.Errorf("redo wait/stretch (%v/%v) not above attempt 1's (%v/%v)",
			f.Wait, f.Stretch, k.Wait, k.Stretch)
	}
	if f.DeadlineMiss {
		// The fixture's deadline is far beyond the outage; it must be met.
		t.Errorf("deadline miss despite the slack bound: %+v", f)
	}
	if k.MissAttribution != MissNone || f.MissAttribution != MissNone {
		t.Errorf("attribution moved on a met deadline: kill %q finish %q",
			k.MissAttribution, f.MissAttribution)
	}
}

// TestAuditReconcilesWithMetrics runs a dense faulted workload and
// requires the span population to reconcile exactly with Metrics:
// finished == TotalVMs, killed == VMsKilled, requeued == Requeues,
// Σ WorkLost == Metrics.WorkLost, misses == Violations — and the audit
// itself must not perturb the run.
func TestAuditReconcilesWithMetrics(t *testing.T) {
	db := sharedDB(t)
	reqs := faultWorkload(t, 21, 150)
	sched := faultSchedule(t, 5, 10, 40000)
	mk := func(a *VMAudit) Config {
		return Config{
			DB: db, Servers: 10, Strategy: ff(t, 2),
			Faults: sched, Checkpoint: faults.Periodic{Interval: 300},
			RecordVMs: true, Audit: a,
		}
	}
	plain, err := Run(mk(nil), reqs)
	if err != nil {
		t.Fatal(err)
	}
	audit := NewVMAudit()
	res, err := Run(mk(audit), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics != res.Metrics {
		t.Errorf("audit perturbed Metrics:\nplain   %+v\naudited %+v", plain.Metrics, res.Metrics)
	}
	if !reflect.DeepEqual(plain.VMs, res.VMs) {
		t.Error("audit perturbed the VMRecord stream")
	}
	if res.VMsKilled == 0 {
		t.Fatal("schedule did not bite; reconciliation vacuous")
	}
	var finished, killed, requeued, misses, faultMiss, capMiss int
	var lost units.Seconds
	maxAttempt := 0
	for _, sp := range audit.Spans() {
		switch sp.Outcome {
		case AuditFinished:
			finished++
			if sp.DeadlineMiss {
				misses++
				switch sp.MissAttribution {
				case MissFault:
					faultMiss++
				case MissCapacity:
					capMiss++
				default:
					t.Errorf("missed deadline with attribution %q", sp.MissAttribution)
				}
			} else if sp.MissAttribution != MissNone {
				t.Errorf("met deadline attributed %q", sp.MissAttribution)
			}
		case AuditKilled:
			killed++
			lost += sp.WorkLost
			if !sp.Requeued {
				t.Errorf("killed span not marked requeued: %+v", sp)
			}
		default:
			t.Errorf("unknown outcome %q", sp.Outcome)
		}
		if sp.Attempt > maxAttempt {
			maxAttempt = sp.Attempt
		}
	}
	if finished != res.TotalVMs {
		t.Errorf("finished spans = %d, TotalVMs = %d", finished, res.TotalVMs)
	}
	if killed != res.VMsKilled {
		t.Errorf("killed spans = %d, VMsKilled = %d", killed, res.VMsKilled)
	}
	requeued = killed
	if requeued != res.Requeues {
		t.Errorf("requeued spans = %d, Requeues = %d", requeued, res.Requeues)
	}
	if diff := float64(lost - res.WorkLost); diff < -1e-6 || diff > 1e-6 {
		t.Errorf("Σ span WorkLost = %v, Metrics.WorkLost = %v", lost, res.WorkLost)
	}
	if misses != res.Violations {
		t.Errorf("deadline-miss spans = %d, Violations = %d", misses, res.Violations)
	}
	if maxAttempt < 2 {
		t.Error("no multi-attempt chain observed; attempt numbering untested")
	}
	t.Logf("audit: %d finished, %d killed, misses %d (fault %d / capacity %d), deepest chain %d",
		finished, killed, misses, faultMiss, capMiss, maxAttempt)
}

// TestAuditCSV pins the export: header plus one parseable row per span,
// byte-identical across runs of the same configuration.
func TestAuditCSV(t *testing.T) {
	db := sharedDB(t)
	reqs := faultWorkload(t, 21, 120)
	sched := faultSchedule(t, 5, 8, 40000)
	export := func() []byte {
		audit := NewVMAudit()
		if _, err := Run(Config{
			DB: db, Servers: 8, Strategy: ff(t, 2),
			Faults: sched, Audit: audit,
		}, reqs); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := audit.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		if audit.Len() == 0 {
			t.Fatal("audit recorded nothing")
		}
		rows, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
		if err != nil {
			t.Fatalf("audit CSV does not parse: %v", err)
		}
		if got := strings.Join(rows[0], ","); got != auditCSVHeader {
			t.Errorf("header = %q, want %q", got, auditCSVHeader)
		}
		if len(rows)-1 != audit.Len() {
			t.Errorf("%d data rows for %d spans", len(rows)-1, audit.Len())
		}
		return buf.Bytes()
	}
	if !bytes.Equal(export(), export()) {
		t.Error("audit CSV not deterministic across identical runs")
	}
}

// TestAuditNilSafe pins the degenerate accessors and that reuse across
// runs resets cleanly.
func TestAuditNilSafe(t *testing.T) {
	var a *VMAudit
	if a.Len() != 0 || a.Spans() != nil {
		t.Error("nil audit accessors not inert")
	}
	db := sharedDB(t)
	reqs := mkReqs(t, 3, workload.ClassCPU, 50)
	audit := NewVMAudit()
	for rep := 0; rep < 2; rep++ {
		if _, err := Run(Config{DB: db, Servers: 2, Strategy: ff(t, 2), Audit: audit}, reqs); err != nil {
			t.Fatal(err)
		}
		if audit.Len() != 3 {
			t.Fatalf("rep %d: %d spans, want 3 (reuse must reset)", rep, audit.Len())
		}
	}
}

// TestAuditQuantiles checks the registry digests fed at retire: the
// wait digest counts every retirement and its quantiles order sanely.
func TestAuditQuantiles(t *testing.T) {
	db := sharedDB(t)
	reqs := goldenWorkload(t, 33, 200)
	reg := obs.NewRegistry()
	res, err := Run(Config{DB: db, Servers: 8, Strategy: ff(t, 2), Obs: reg}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	wq, ok := snap.Quantiles["sim_vm_wait_seconds"]
	if !ok {
		t.Fatal("sim_vm_wait_seconds digest missing from snapshot")
	}
	if wq.Count != int64(res.TotalVMs) {
		t.Errorf("wait digest count = %d, want TotalVMs = %d", wq.Count, res.TotalVMs)
	}
	if wq.Min < 0 || wq.P50 > wq.P99 || wq.P99 > wq.Max {
		t.Errorf("wait digest out of order: %+v", wq)
	}
	sq, ok := snap.Quantiles["sim_vm_stretch"]
	if !ok {
		t.Fatal("sim_vm_stretch digest missing from snapshot")
	}
	if sq.Count != int64(res.TotalVMs) || sq.Min < 1 {
		// Stretch is response over nominal solo time; it cannot beat 1 on
		// this homogeneous hardware.
		t.Errorf("stretch digest implausible: %+v", sq)
	}
}

package cloudsim

import (
	"testing"

	"pacevm/internal/trace"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// blockingReqs crafts a head-of-line blocking scenario: a 4-VM job that
// cannot fit behind an almost-full cloud, followed by single-VM jobs
// that could run in the remaining slot.
func blockingReqs(t *testing.T) []trace.Request {
	t.Helper()
	ref := sharedDB(t).Aux().RefTime[workload.ClassCPU]
	reqs := []trace.Request{
		// Fill 3 of the 4 FF slots on the single server.
		{ID: 1, Submit: 0, Class: workload.ClassCPU, VMs: 3, NominalTime: ref * 2, MaxResponse: ref * 20},
		// The blocker: needs 4 slots at once.
		{ID: 2, Submit: 1, Class: workload.ClassCPU, VMs: 4, NominalTime: ref, MaxResponse: ref * 20},
		// Small jobs that fit the one remaining slot right now.
		{ID: 3, Submit: 2, Class: workload.ClassCPU, VMs: 1, NominalTime: ref / 2, MaxResponse: ref * 20},
		{ID: 4, Submit: 3, Class: workload.ClassCPU, VMs: 1, NominalTime: ref / 2, MaxResponse: ref * 20},
	}
	return reqs
}

func TestStrictFCFSBlocksBehindHead(t *testing.T) {
	db := sharedDB(t)
	res, err := Run(Config{
		DB: db, Servers: 1, Strategy: ff(t, 1), RecordVMs: true,
	}, blockingReqs(t))
	if err != nil {
		t.Fatal(err)
	}
	// Without backfilling, jobs 3 and 4 must start no earlier than the
	// blocked 4-VM job.
	starts := map[int]units.Seconds{}
	for _, vm := range res.VMs {
		if cur, ok := starts[vm.JobID]; !ok || vm.Placed < cur {
			starts[vm.JobID] = vm.Placed
		}
	}
	if starts[3] < starts[2] || starts[4] < starts[2] {
		t.Errorf("strict FCFS let small jobs jump the blocked head: starts=%v", starts)
	}
}

func TestBackfillLetsSmallJobsThrough(t *testing.T) {
	db := sharedDB(t)
	res, err := Run(Config{
		DB: db, Servers: 1, Strategy: ff(t, 1), RecordVMs: true, BackfillDepth: 4,
	}, blockingReqs(t))
	if err != nil {
		t.Fatal(err)
	}
	starts := map[int]units.Seconds{}
	for _, vm := range res.VMs {
		if cur, ok := starts[vm.JobID]; !ok || vm.Placed < cur {
			starts[vm.JobID] = vm.Placed
		}
	}
	if starts[3] >= starts[2] {
		t.Errorf("backfilling did not advance job 3 past the blocked head: starts=%v", starts)
	}
	// Everyone still completes exactly once.
	if res.TotalVMs != 9 || len(res.VMs) != 9 {
		t.Errorf("VM accounting broken: %d/%d", res.TotalVMs, len(res.VMs))
	}
}

func TestBackfillImprovesUtilizationUnderLoad(t *testing.T) {
	db := sharedDB(t)
	reqs := blockingReqs(t)
	plain, err := Run(Config{DB: db, Servers: 1, Strategy: ff(t, 1)}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Run(Config{DB: db, Servers: 1, Strategy: ff(t, 1), BackfillDepth: 8}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if back.AvgWait > plain.AvgWait {
		t.Errorf("backfilling increased average wait: %v vs %v", back.AvgWait, plain.AvgWait)
	}
}

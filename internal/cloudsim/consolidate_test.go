package cloudsim

import (
	"testing"

	"pacevm/internal/migrate"
	"pacevm/internal/model"
	"pacevm/internal/trace"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// fragmentingReqs builds a workload that leaves stragglers: pairs of
// jobs arrive together, one short and one long, so after the short ones
// finish the cloud is fragmented — consolidation territory.
func fragmentingReqs(t *testing.T, pairs int) []trace.Request {
	t.Helper()
	db := sharedDB(t)
	ref := db.Aux().RefTime[workload.ClassIO]
	var reqs []trace.Request
	for i := 0; i < pairs; i++ {
		at := units.Seconds(i * 40)
		reqs = append(reqs,
			trace.Request{ID: 2*i + 1, Submit: at, Class: workload.ClassIO, VMs: 1,
				NominalTime: ref / 4, MaxResponse: ref * 5},
			trace.Request{ID: 2*i + 2, Submit: at, Class: workload.ClassIO, VMs: 1,
				NominalTime: ref * 2, MaxResponse: ref * 20},
		)
	}
	return reqs
}

func TestConsolidatorMigratesAndSaves(t *testing.T) {
	db := sharedDB(t)
	reqs := fragmentingReqs(t, 6)

	base := Config{DB: db, Servers: 12, Strategy: ff(t, 1), IdleServerPower: -1}
	plain, err := Run(base, reqs)
	if err != nil {
		t.Fatal(err)
	}

	withCons := base
	withCons.Consolidator = &migrate.Planner{DB: db, MigrationCost: 10}
	withCons.MigrationCost = 10
	cons, err := Run(withCons, reqs)
	if err != nil {
		t.Fatal(err)
	}

	if cons.Migrations == 0 {
		t.Fatal("consolidator never migrated on a fragmenting workload")
	}
	if cons.ServersDrained == 0 {
		t.Error("no servers drained")
	}
	if plain.Migrations != 0 {
		t.Error("plain run reported migrations")
	}
	// Consolidation powers stragglers' servers down: energy must drop.
	if cons.Energy >= plain.Energy {
		t.Errorf("consolidated energy %v not below plain %v", cons.Energy, plain.Energy)
	}
	// Everyone still finishes.
	if cons.TotalVMs != plain.TotalVMs {
		t.Errorf("consolidated run lost VMs: %d vs %d", cons.TotalVMs, plain.TotalVMs)
	}
}

func TestConsolidatorRespectsQoSBudgets(t *testing.T) {
	db := sharedDB(t)
	reqs := fragmentingReqs(t, 6)
	cfg := Config{
		DB: db, Servers: 12, Strategy: ff(t, 1), IdleServerPower: -1,
		Consolidator:  &migrate.Planner{DB: db, MigrationCost: 10},
		MigrationCost: 10,
		RecordVMs:     true,
	}
	res, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// The workload's deadlines are generous; consolidation must not
	// create violations.
	if res.Violations != 0 {
		t.Errorf("consolidation caused %d violations", res.Violations)
	}
}

// badConsolidator returns moves referencing VMs that do not exist.
type badConsolidator struct{}

func (badConsolidator) Propose(allocs []model.Key, vms []migrate.VM) (migrate.Plan, error) {
	return migrate.Plan{Moves: []migrate.Move{{VMID: "nope", From: 0, To: 1}}}, nil
}

func TestBadConsolidatorIsAnError(t *testing.T) {
	db := sharedDB(t)
	reqs := fragmentingReqs(t, 2)
	cfg := Config{DB: db, Servers: 4, Strategy: ff(t, 1), Consolidator: badConsolidator{}}
	if _, err := Run(cfg, reqs); err == nil {
		t.Error("invalid consolidator moves should abort the simulation")
	}
}

func TestMigrationCostSlowsMovedVMs(t *testing.T) {
	db := sharedDB(t)
	reqs := fragmentingReqs(t, 4)
	run := func(cost units.Seconds) Result {
		cfg := Config{
			DB: db, Servers: 8, Strategy: ff(t, 1), IdleServerPower: -1,
			Consolidator:  &migrate.Planner{DB: db, MigrationCost: cost},
			MigrationCost: cost,
		}
		res, err := Run(cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cheap := run(1)
	costly := run(300)
	if cheap.Migrations == 0 {
		t.Skip("no migrations triggered; workload too small")
	}
	// With a large migration cost the moved VMs take longer overall.
	if costly.Migrations > 0 && costly.AvgResponse < cheap.AvgResponse {
		t.Errorf("expensive migrations should not speed responses: %v vs %v",
			costly.AvgResponse, cheap.AvgResponse)
	}
}

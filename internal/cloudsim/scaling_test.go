package cloudsim

// Scaling pins for the per-event cost model: the queue helpers behave
// like the plain slice they replaced under the full interleaving the
// engine produces (head pops, backfill splices, fault-requeue appends),
// and placement work scales with the request stream, not the fleet —
// indexed strategies never trigger a fleet scan, linear ones trigger
// O(requests) of them regardless of how many servers watch.

import (
	"math"
	"testing"
	"time"

	"pacevm/internal/obs"
	"pacevm/internal/strategy"
	"pacevm/internal/workload"
)

// TestQueueHelpers drives qlen/qat/qpophead/qremove against a reference
// slice model through a deterministic pseudo-random interleaving of the
// three queue mutations the engine performs: fault-requeue appends,
// FCFS head pops, and backfill splices at arbitrary depth. The walk is
// long enough to cross qpophead's dead-prefix compaction threshold
// repeatedly, which is the part a naive reading of the helpers misses.
func TestQueueHelpers(t *testing.T) {
	s := &sim{}
	var ref []int
	next := 0
	seed := uint64(0x9e3779b97f4a7c15)
	rand := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int((seed >> 33) % uint64(n))
	}
	check := func(step int) {
		t.Helper()
		if s.qlen() != len(ref) {
			t.Fatalf("step %d: qlen = %d, want %d", step, s.qlen(), len(ref))
		}
		for i := range ref {
			if s.qat(i) != ref[i] {
				t.Fatalf("step %d: qat(%d) = %d, want %d", step, i, s.qat(i), ref[i])
			}
		}
	}
	for step := 0; step < 20000; step++ {
		switch op := rand(5); {
		case op <= 1 || s.qlen() == 0: // fault-requeue append
			s.queue = append(s.queue, next)
			ref = append(ref, next)
			next++
		case op <= 3: // FCFS head pop
			if got := s.qat(0); got != ref[0] {
				t.Fatalf("step %d: head = %d, want %d", step, got, ref[0])
			}
			s.qpophead()
			ref = ref[1:]
		case s.qlen() > 1: // backfill splice, never the head
			i := 1 + rand(s.qlen()-1)
			if got := s.qat(i); got != ref[i] {
				t.Fatalf("step %d: qat(%d) = %d, want %d", step, i, s.qat(i), ref[i])
			}
			s.qremove(i)
			ref = append(ref[:i], ref[i+1:]...)
		}
		if step%257 == 0 {
			check(step)
		}
	}
	check(20000)
	// The compaction invariant must hold at every point of the walk: the
	// dead prefix never simultaneously passes 64 entries and half the
	// backing slice.
	if s.qhead >= 64 && s.qhead*2 >= len(s.queue) {
		t.Fatalf("dead prefix survived past the compaction threshold (qhead %d, backing %d)", s.qhead, len(s.queue))
	}
	// Deterministic compaction crossing on a fresh queue: 100 appends
	// then 70 pops trip the threshold exactly once, at the 64th pop
	// (64 >= 64 and 128 >= 100), copying the 36 survivors down; the 6
	// remaining pops then advance the fresh head.
	s, ref = &sim{}, ref[:0]
	for i := 0; i < 100; i++ {
		s.queue = append(s.queue, next)
		ref = append(ref, next)
		next++
	}
	for i := 0; i < 70; i++ {
		s.qpophead()
		ref = ref[1:]
	}
	if s.qhead != 6 || len(s.queue) != 36 {
		t.Fatalf("compaction fired wrong: qhead %d, backing %d, want 6 over 36", s.qhead, len(s.queue))
	}
	check(-1)
}

// TestFleetScanScaling pins sim_fleet_scans_total to the request
// stream: growing the fleet 4x must not change the scan count for a
// linear strategy (each placement walks the view once, so the counter
// is O(requests) with the walk's width, not its count, absorbing the
// fleet size), and an indexed strategy must never scan at all.
func TestFleetScanScaling(t *testing.T) {
	const requests = 80
	reqs := mkReqs(t, requests, workload.ClassCPU, 5)
	scans := func(st strategy.Strategy, servers int) int64 {
		cfg := Config{DB: sharedDB(t), Servers: servers, Strategy: st,
			BackfillDepth: 2, Obs: obs.NewRegistry()}
		if _, err := Run(cfg, reqs); err != nil {
			t.Fatal(err)
		}
		return cfg.Obs.Snapshot().Counters["sim_fleet_scans_total"]
	}

	// Both fleets hold the whole stream concurrently (16 servers x 8
	// slots >= 80 VMs), so no placement is ever retried and the counter
	// isolates the per-request cost from queueing effects.
	smallLinear := scans(&strategy.BestFit{Multiplex: 2}, 16)
	bigLinear := scans(&strategy.BestFit{Multiplex: 2}, 64)
	if smallLinear == 0 {
		t.Fatal("linear strategy recorded no fleet scans; the counter is not wired")
	}
	if smallLinear != bigLinear {
		t.Errorf("linear scan count moved with fleet size: %d at 16 servers, %d at 64", smallLinear, bigLinear)
	}
	if limit := int64(4 * requests); bigLinear > limit {
		t.Errorf("linear scan count %d exceeds O(requests) bound %d", bigLinear, limit)
	}

	if n := scans(ff(t, 2), 16); n != 0 {
		t.Errorf("indexed strategy triggered %d fleet scans at 16 servers, want 0", n)
	}
	if n := scans(ff(t, 2), 64); n != 0 {
		t.Errorf("indexed strategy triggered %d fleet scans at 64 servers, want 0", n)
	}
}

// TestPerRequestScalingSmoke is the wall-clock side of the scaling
// guard, wired into `make verify` (scale-smoke) and CI: per-request
// cost on a 4096-server fleet must stay within a small factor of the
// 64-server cost on the same request stream. Before the indexed
// placement and capacity-summary work every queued-placement retry and
// consolidation sweep walked the whole fleet, and this ratio grew with
// the server count; now it is bounded by queue dynamics alone. The
// bound is deliberately loose (3x, best of three runs) — a timing smoke
// against regressions to O(servers)-per-event, not a benchmark.
func TestPerRequestScalingSmoke(t *testing.T) {
	const requests = 3000
	db := sharedDB(t)
	reqs := goldenWorkload(t, 77, requests)
	perReq := func(servers int) float64 {
		best := math.Inf(1)
		for trial := 0; trial < 3; trial++ {
			cfg := Config{DB: db, Servers: servers, Strategy: ff(t, 2), BackfillDepth: 4}
			start := time.Now()
			if _, err := Run(cfg, reqs); err != nil {
				t.Fatal(err)
			}
			if d := float64(time.Since(start)) / requests; d < best {
				best = d
			}
		}
		return best
	}
	small, mid := perReq(64), perReq(4096)
	if ratio := mid / small; ratio > 3 {
		t.Errorf("per-request cost grew %.2fx from 64 to 4096 servers (%.0fns vs %.0fns); an O(servers)-per-event path is back",
			ratio, small, mid)
	}
}

package cloudsim

// The fault-injection layer of the optimized simulator: server crashes
// and recoveries as first-class events on the future-event list.
//
// A crash empties the server — resident VMs whose work already ran out
// retire normally, the rest are killed, their surviving progress decided
// by the configured checkpoint policy and the remainder re-queued as a
// synthetic single-VM request through normal admission — cancels the
// server's pending completion, powers it off (0 W until recovery), and
// excludes it from placement: the capacity index learns SetDown without
// a rebuild, and linear strategies are handed the compacted up-server
// view. Recovery reverses the exclusion and re-offers the queue.
//
// Re-queued requests keep the original Submit and MaxResponse, so the
// deadline judged at final completion — and the response/wait sums —
// account the whole outage-inflated lifetime of the VM, exactly once.
// TotalVMs/TotalJobs count submitted work only; a killed-and-redone VM
// is still one VM. NominalTime of the redo is the nominal-seconds still
// owed (original nominal minus checkpoint-surviving progress); a VM of
// a multi-VM job re-queues alone, since its siblings keep running.
//
// All of this state is allocated by setupFaults only when the config
// carries a schedule; without one, s.faulty stays false and the run is
// byte-identical to a pre-fault build (pinned by the golden tests).

import (
	"fmt"
	"sort"

	"pacevm/internal/eventq"
	"pacevm/internal/faults"
	"pacevm/internal/strategy"
	"pacevm/internal/trace"
	"pacevm/internal/units"
)

// downSpan is one server outage, closed at recovery (or at the end of
// the run for servers still down, clamped to the workload span).
type downSpan struct {
	server   int
	from, to units.Seconds
}

// setupFaults switches the simulator into fault mode: per-server down
// state, the compacted up-server placement view, and the sorted
// crash/recover schedule staged for scheduleFaultsUntil.
func (s *sim) setupFaults() {
	s.faulty = true
	s.checkpoint = s.cfg.Checkpoint
	// Requeues append to s.reqs; work on a copy so the caller's slice is
	// never grown into.
	s.reqs = append([]trace.Request(nil), s.reqs...)
	s.downSince = make([]units.Seconds, s.cfg.Servers)
	s.viewPos = make([]int, s.cfg.Servers)
	s.upViews = make([]strategy.Server, s.cfg.Servers)
	for i := range s.upViews {
		s.downSince[i] = -1
		s.viewPos[i] = i
		s.upViews[i] = strategy.Server{ID: i}
	}
	// Sort chronologically so same-instant events resolve by schedule
	// sequence deterministically regardless of the input order, and a
	// touching Up/Down pair on one server resolves recover-first.
	sch := append(faults.Schedule(nil), s.cfg.Faults...)
	sch.Sort()
	s.faultSch = sch
}

// scheduleFaultsUntil places every schedule entry whose crash instant
// lies before limit on the event list (pass +Inf to admit the whole
// schedule, as Run does). Entry j's crash/recover pair carries the
// pre-assigned fault-band sequences seqFaultBase+2j / +2j+1, so the pop
// order among simultaneous fault events is fixed by the sorted schedule
// no matter how the admission is windowed. A recover event may lie
// beyond limit; it is scheduled with its pair so an outage can never be
// admitted without its end.
func (s *sim) scheduleFaultsUntil(limit units.Seconds) {
	for ; s.faultNext < len(s.faultSch); s.faultNext++ {
		e := s.faultSch[s.faultNext]
		if e.Down >= limit {
			return
		}
		seq := seqFaultBase + 2*uint64(s.faultNext)
		s.events.ScheduleSequenced(e.Down, seq, eventq.Event{Kind: evKindCrash, Arg: int32(e.Server)})
		s.events.ScheduleSequenced(e.Up, seq+1, eventq.Event{Kind: evKindRecover, Arg: int32(e.Server)})
	}
}

// crash takes a server down: retires finished residents, kills the
// rest per the checkpoint policy, re-queues the killed work, cancels
// the pending completion, and excludes the server from placement.
func (s *sim) crash(serverIdx int) error {
	sv := s.srv[serverIdx]
	if s.downSince[serverIdx] >= 0 {
		return fmt.Errorf("cloudsim: crash event for server %d which is already down", serverIdx)
	}
	if err := s.advance(sv); err != nil {
		return err
	}
	s.metrics.FaultsInjected++
	s.stats.faultsInjected.Inc()

	const eps = 1e-6 // same completion tolerance as (*sim).complete
	wasHosting := len(sv.vms) > 0
	for i, vm := range sv.vms {
		s.applyAlloc(sv, vm.class, -1)
		if sv.rem[i] <= eps {
			// The VM's work ran out at or before the crash instant (its
			// completion event may still be pending behind this one):
			// it finished, it is not a casualty.
			s.retire(sv, vm)
		} else {
			s.kill(sv, vm, sv.rem[i])
		}
		s.recycle(vm)
		sv.vms[i] = nil
	}
	sv.vms, sv.rem, sv.cls = sv.vms[:0], sv.rem[:0], sv.cls[:0]
	s.clearOcc(serverIdx)
	if wasHosting {
		if sv.activeFrom >= 0 {
			s.traceHosting(sv, sv.activeFrom)
			hosted := float64(s.now - sv.activeFrom)
			s.metrics.ActiveServerSeconds += hosted
			sv.hostedSeconds += hosted
			sv.activeFrom = -1
		}
		s.active--
	}
	if err := s.reschedule(sv); err != nil { // cancels the stale completion
		return err
	}
	s.downSince[serverIdx] = s.now
	if s.sampler != nil {
		s.sampler.serverIdle(serverIdx)
		s.sampler.serverDown()
	}
	if s.fleet != nil {
		s.fleet.SetDown(serverIdx)
	}
	s.viewRemove(serverIdx)
	s.traceQueueDepth()
	return nil
}

// kill discards a resident VM: the checkpoint policy decides how much
// of its progress survives, the lost remainder is accounted, and the
// still-owed work re-enters the queue as a synthetic single-VM request
// under the VM's original submit time and response bound. remaining is
// the VM's work-left counter, read from the server's rem slice before
// the resident arrays are truncated.
func (s *sim) kill(sv *simServer, vm *simVM, remaining float64) {
	done := float64(vm.nominal) - remaining
	if done < 0 {
		done = 0
	}
	if done > float64(vm.nominal) {
		done = float64(vm.nominal)
	}
	surviving := float64(s.checkpoint.Surviving(units.Seconds(done)))
	if surviving < 0 {
		surviving = 0
	}
	if surviving > done {
		surviving = done
	}
	s.metrics.VMsKilled++
	s.metrics.WorkLost += units.Seconds(done - surviving)
	// The redo request owes nominal − surviving; the kill swaps that for
	// the original nominal in the outstanding-work gauge.
	s.loadLeft -= surviving
	s.stats.vmsKilled.Inc()
	s.stats.workLostSeconds.Add(int64(done - surviving))
	s.traceVMKill(sv, vm)

	var maxResp units.Seconds
	if vm.deadline > 0 {
		maxResp = vm.deadline - vm.submit
	}
	ridx := len(s.reqs)
	s.reqs = append(s.reqs, trace.Request{
		ID:          vm.jobID,
		Submit:      vm.submit,
		Class:       vm.class,
		VMs:         1,
		NominalTime: vm.nominal - units.Seconds(surviving),
		MaxResponse: maxResp,
	})
	s.metrics.Requeues++
	s.stats.requeues.Inc()
	s.queue = append(s.queue, ridx)
	s.stats.queueDepthHW.SetMax(int64(s.qlen()))
	if s.audit != nil {
		s.audit.kill(vm, sv.id, s.now, units.Seconds(done-surviving), ridx)
	}
	if s.rec != nil {
		s.recordRequeue(vm.id, vm.jobID, sv.id, ridx, done-surviving)
	}
}

// recoverServer brings a crashed server back: the outage is logged, the
// server rejoins the placement views, and its accounting clock resumes
// at now (nothing to integrate — a down server hosts nothing and draws
// nothing).
func (s *sim) recoverServer(serverIdx int) error {
	sv := s.srv[serverIdx]
	from := s.downSince[serverIdx]
	if from < 0 {
		return fmt.Errorf("cloudsim: recover event for server %d which is not down", serverIdx)
	}
	s.downLog = append(s.downLog, downSpan{server: serverIdx, from: from, to: s.now})
	s.downSince[serverIdx] = -1
	sv.lastUpdate = s.now
	if s.sampler != nil {
		s.sampler.serverUp()
	}
	if s.fleet != nil {
		s.fleet.SetUp(serverIdx)
	}
	s.viewInsert(serverIdx)
	s.traceDown(sv, from)
	return nil
}

// viewRemove splices a server out of the compacted up-server view.
// O(up servers) — paid only on the rare fault events, never on the
// placement path.
func (s *sim) viewRemove(id int) {
	p := s.viewPos[id]
	copy(s.upViews[p:], s.upViews[p+1:])
	s.upViews = s.upViews[:len(s.upViews)-1]
	s.viewPos[id] = -1
	for i := p; i < len(s.upViews); i++ {
		s.viewPos[s.upViews[i].ID] = i
	}
}

// viewInsert splices a recovered server back into the view, keeping it
// sorted by server id so linear strategies scan the same order a full
// fleet view would present.
func (s *sim) viewInsert(id int) {
	p := sort.Search(len(s.upViews), func(i int) bool { return s.upViews[i].ID > id })
	s.upViews = append(s.upViews, strategy.Server{})
	copy(s.upViews[p+1:], s.upViews[p:])
	s.upViews[p] = strategy.Server{ID: id, Alloc: s.srv[id].alloc}
	for i := p; i < len(s.upViews); i++ {
		s.viewPos[s.upViews[i].ID] = i
	}
}

// foldDowntime closes the outage log at the end of the run and returns
// per-server down-seconds clamped to the workload span — the carve-out
// of the idle-power billing and the numerator of AvailabilityPct. Nil
// in fault-free runs.
func (s *sim) foldDowntime() []float64 {
	if !s.faulty {
		return nil
	}
	for id, from := range s.downSince {
		if from >= 0 {
			s.downLog = append(s.downLog, downSpan{server: id, from: from, to: s.lastFinish})
			s.traceDown(s.srv[id], from)
		}
	}
	down := make([]float64, s.cfg.Servers)
	for _, d := range s.downLog {
		lo, hi := d.from, d.to
		if lo < s.firstSubmit {
			lo = s.firstSubmit
		}
		if hi > s.lastFinish {
			hi = s.lastFinish
		}
		if hi > lo {
			sec := float64(hi - lo)
			down[d.server] += sec
			s.metrics.DownServerSeconds += sec
		}
	}
	return down
}

package cloudsim

import (
	"testing"
	"testing/quick"

	"pacevm/internal/units"
)

// TestFig4PaperNumbers pins the paper's Fig.-4 worked example exactly:
// "the execution time of VM1 will be computed considering the relative
// weight of each allocation (70% of allocation A and 30% of allocation
// B) as follows: ExecTime_VM1 = 0.7·1200s + 0.3·1800s = 1380s and the
// energy consumption for the whole outcome will be:
// Energy = 0.35·15KJ + 0.15·20KJ + 0.5·12KJ = 14.25KJ".
func TestFig4PaperNumbers(t *testing.T) {
	execTime, err := WeightedExecTime(
		[]float64{0.7, 0.3},
		[]units.Seconds{1200, 1800},
	)
	if err != nil {
		t.Fatal(err)
	}
	if execTime != 1380 {
		t.Errorf("ExecTime_VM1 = %v, want the paper's 1380 s", execTime)
	}

	energy, err := WeightedEnergy(
		[]float64{0.35, 0.15, 0.5},
		[]units.Joules{15000, 20000, 12000},
	)
	if err != nil {
		t.Fatal(err)
	}
	if energy != 14250 {
		t.Errorf("Energy = %v, want the paper's 14.25 kJ", energy)
	}
}

func TestWeightedValidation(t *testing.T) {
	if _, err := WeightedExecTime([]float64{0.5}, []units.Seconds{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := WeightedExecTime(nil, nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := WeightedExecTime([]float64{0.5, 0.4}, []units.Seconds{1, 2}); err == nil {
		t.Error("weights not summing to 1 should fail")
	}
	if _, err := WeightedExecTime([]float64{1.5, -0.5}, []units.Seconds{1, 2}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := WeightedExecTime([]float64{1}, []units.Seconds{-1}); err == nil {
		t.Error("negative time should fail")
	}
	if _, err := WeightedEnergy([]float64{1}, []units.Joules{-1}); err == nil {
		t.Error("negative energy should fail")
	}
}

func TestWeightedBoundsProperty(t *testing.T) {
	// A weighted average lies within [min, max] of its inputs.
	f := func(raw [4]uint16) bool {
		times := make([]units.Seconds, len(raw))
		lo, hi := units.Seconds(raw[0]), units.Seconds(raw[0])
		for i, r := range raw {
			times[i] = units.Seconds(r)
			if times[i] < lo {
				lo = times[i]
			}
			if times[i] > hi {
				hi = times[i]
			}
		}
		w := []float64{0.25, 0.25, 0.25, 0.25}
		got, err := WeightedExecTime(w, times)
		if err != nil {
			return false
		}
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package cloudsim

// Online invariant checks for obs.Watchdog: each check re-derives an
// incrementally-maintained simulator invariant from first principles
// and compares. All checks are strictly read-only — a run with the
// watchdog attached must stay byte-identical to the same run without
// it (pinned by TestWatchdogDoesNotPerturb) — and they run only every
// Watchdog.Every() popped events plus once at finalize, so the sweeps
// stay invisible outside debug runs.

import (
	"fmt"
	"math"
)

// registerWatchdogChecks wires the simulator's invariants into s.wd.
// Called from newSim only when Config.Watchdog is attached.
func (s *sim) registerWatchdogChecks() {
	s.wd.Register("work-conservation", s.checkWorkConservation)
	s.wd.Register("queue-sanity", s.checkQueueSanity)
	s.wd.Register("capacity-index", s.checkCapacityIndex)
	s.wd.Register("occupancy", s.checkOccupancy)
	s.wd.Register("energy-integral", s.checkEnergyIntegral)
}

// checkWorkConservation re-derives the outstanding-work gauge: admitted
// but unfinished nominal-seconds must equal pending arrivals plus
// queued requests plus resident VMs. loadLeft is maintained by one
// add/sub per admission, kill and retirement, so a drift here means a
// placement or fault path lost or duplicated work.
func (s *sim) checkWorkConservation() error {
	// A corrupted cursor would make the re-derivation itself crash;
	// report instead of walking out of bounds (queue-sanity pinpoints
	// the cursor separately).
	if s.arrNext < 0 || s.arrNext > len(s.arrQ) || s.qhead < 0 || s.qhead > len(s.queue) {
		return fmt.Errorf("admission cursors out of bounds (arrNext %d/%d, qhead %d/%d); cannot re-derive work",
			s.arrNext, len(s.arrQ), s.qhead, len(s.queue))
	}
	derived := 0.0
	for _, a := range s.arrQ[s.arrNext:] {
		r := &s.reqs[a.idx]
		derived += float64(r.NominalTime) * float64(r.VMs)
	}
	for i := 0; i < s.qlen(); i++ {
		idx := s.qat(i)
		if idx < 0 || idx >= len(s.reqs) {
			return fmt.Errorf("queued request index %d outside the stream of %d; cannot re-derive work", idx, len(s.reqs))
		}
		r := &s.reqs[idx]
		derived += float64(r.NominalTime) * float64(r.VMs)
	}
	for _, sv := range s.srv {
		for _, vm := range sv.vms {
			derived += float64(vm.nominal)
		}
	}
	tol := 1e-6 * (1 + math.Abs(derived))
	if diff := math.Abs(derived - s.loadLeft); diff > tol {
		return fmt.Errorf("loadLeft %g but re-derived outstanding work %g (diff %g)", s.loadLeft, derived, diff)
	}
	return nil
}

// checkQueueSanity validates the admission structures: cursor and queue
// bounds, in-range request indices, and no request both queued twice.
func (s *sim) checkQueueSanity() error {
	if s.arrNext < 0 || s.arrNext > len(s.arrQ) {
		return fmt.Errorf("arrival cursor %d outside [0, %d]", s.arrNext, len(s.arrQ))
	}
	if s.qhead < 0 || s.qhead > len(s.queue) {
		return fmt.Errorf("queue head %d outside [0, %d]", s.qhead, len(s.queue))
	}
	seen := make(map[int]struct{}, s.qlen())
	for i := 0; i < s.qlen(); i++ {
		idx := s.qat(i)
		if idx < 0 || idx >= len(s.reqs) {
			return fmt.Errorf("queued request index %d outside the stream of %d", idx, len(s.reqs))
		}
		if _, dup := seen[idx]; dup {
			return fmt.Errorf("request %d queued twice", idx)
		}
		seen[idx] = struct{}{}
	}
	return nil
}

// checkCapacityIndex audits the FleetIndex against ground truth: each
// server's indexed occupancy must match its allocation total, and the
// index's internal level/overflow/free-capacity structures must be
// consistent with those counts (strategy.FleetIndex.AuditInvariants).
// No-op for linear strategies, which carry no index.
func (s *sim) checkCapacityIndex() error {
	if s.fleet == nil {
		return nil
	}
	return s.fleet.AuditInvariants(func(i int) int { return s.srv[i].alloc.Total() })
}

// checkOccupancy re-derives the occupied-server bitmap and the active
// count from the resident sets.
func (s *sim) checkOccupancy() error {
	active := 0
	for _, sv := range s.srv {
		hosting := len(sv.vms) > 0
		if hosting {
			active++
		}
		if bit := s.occ[sv.id>>6]>>(sv.id&63)&1 != 0; bit != hosting {
			return fmt.Errorf("server %d occ bit %v but %d resident VMs", sv.id, bit, len(sv.vms))
		}
		if hosting && sv.activeFrom < 0 {
			return fmt.Errorf("server %d hosts %d VMs with no activeFrom mark", sv.id, len(sv.vms))
		}
	}
	if active != s.active {
		return fmt.Errorf("active-server count %d but %d servers host VMs", s.active, active)
	}
	return nil
}

// checkEnergyIntegral validates the energy accounting: per-server
// integrals must be finite, non-negative and not ahead of the clock,
// and — when a fleet sampler is attached — their sum must reconcile
// with the sampler's independently-accumulated busy-energy integral
// (both sum the same power×dt products, in different groupings).
func (s *sim) checkEnergyIntegral() error {
	sum := 0.0
	for _, sv := range s.srv {
		e := float64(sv.energy)
		if math.IsNaN(e) || math.IsInf(e, 0) || e < 0 {
			return fmt.Errorf("server %d energy %g is not a finite non-negative integral", sv.id, e)
		}
		if sv.lastUpdate > s.now {
			return fmt.Errorf("server %d accounting clock %g ahead of now %g", sv.id, float64(sv.lastUpdate), float64(s.now))
		}
		sum += e
	}
	if s.sampler != nil {
		busy := float64(s.sampler.BusyEnergy()) + float64(s.sampler.IdleEnergy())
		tol := 1e-9 * (1 + math.Abs(sum))
		if diff := math.Abs(sum - busy); diff > tol {
			return fmt.Errorf("per-server energy sum %g but sampler integral %g (diff %g)", sum, busy, diff)
		}
	}
	return nil
}

package cloudsim

// Fuzz coverage for the decision-log JSONL parser behind
// cmd/pacevm-explain. The log is the one artifact users hand back to a
// tool after arbitrary mangling — truncated downloads, interleaved
// shard records, editor-mangled duplicates — so the parser must never
// panic, must report malformed input as an error, and must hold its
// round-trip invariant on everything it does accept.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func FuzzReadDecisionLog(f *testing.F) {
	// A well-formed log produced by the recorder itself.
	rec := NewDecisionRecorder()
	rec.record(Decision{Kind: DecisionAdmit, T: 1, Req: 0, Job: 7, VMs: 2, Queue: 1, From: -1, To: -1})
	rec.record(Decision{Kind: DecisionRoute, T: 1, Shard: -1, Req: 0, Window: 1, From: -1, To: 1})
	rec.record(Decision{Kind: DecisionReject, T: 2, Req: 0, Reason: RejectFitSummary, From: -1, To: -1})
	rec.record(Decision{Kind: DecisionReject, T: 3, Req: 0, Reason: RejectFitSummary, From: -1, To: -1})
	rec.record(Decision{
		Kind: DecisionPlace, T: 4, Req: 0, Servers: []int{3, 5}, VMIDs: []int{1, 2},
		Search: &DecisionSearch{Enumerated: 15, Feasible: 4}, From: -1, To: -1,
	})
	var good bytes.Buffer
	if err := rec.WriteJSONL(&good); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	// Truncated mid-record.
	f.Add(good.Bytes()[:good.Len()-20])
	// Interleaved shard records out of time order, with duplicate uids.
	f.Add([]byte(`{"kind":"place","t":9,"shard":1,"req":3,"servers":[0],"vm_ids":[4],"from":-1,"to":-1}
{"kind":"place","t":2,"shard":0,"req":1,"servers":[0],"vm_ids":[4],"from":-1,"to":-1}
{"kind":"requeue","t":3,"shard":1,"req":8,"vm_id":4,"from":2,"to":-1}`))
	// Missing kind, blank lines, non-JSON garbage.
	f.Add([]byte("{\"t\":1}\n\n{\"kind\":\"admit\"}\n"))
	f.Add([]byte("not json at all\n"))
	f.Add([]byte(`{"kind":"degrade","t":0.5,"from":0,"to":1,"reason":"queue-wait"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		decs, err := ReadDecisionLog(bytes.NewReader(data))
		if err != nil {
			// Malformed input must be reported with a line number, never
			// half-parsed.
			if decs != nil {
				t.Fatalf("error %v returned alongside %d decisions", err, len(decs))
			}
			if !strings.Contains(err.Error(), "line") {
				t.Fatalf("parse error without a line number: %v", err)
			}
			return
		}
		for i, d := range decs {
			if d.Kind == "" {
				t.Fatalf("decision %d accepted with empty kind", i)
			}
		}
		// Round-trip: whatever was accepted must re-serialize to a log
		// that parses back to the same decisions.
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for i := range decs {
			if err := enc.Encode(&decs[i]); err != nil {
				t.Fatal(err)
			}
		}
		again, err := ReadDecisionLog(&buf)
		if err != nil {
			t.Fatalf("re-parse of accepted log failed: %v", err)
		}
		if len(again) != len(decs) {
			t.Fatalf("round trip kept %d of %d decisions", len(again), len(decs))
		}
	})
}

package cloudsim

import (
	"bytes"
	"testing"

	"pacevm/internal/obs"
)

// TestTraceTypedArgsByteIdentical proves the typed args payloads the
// trace hooks now emit serialize byte-identically to the historical
// map[string]any form. The run covers every hook — arrivals, VM retire
// and kill spans, hosting/down spans, queue-depth counters — under
// faults and backfill; its trace file is decoded (which turns every
// args object back into a map) and re-emitted verbatim, and the two
// serializations must match byte for byte.
func TestTraceTypedArgsByteIdentical(t *testing.T) {
	db := sharedDB(t)
	reqs := goldenWorkload(t, 44, 300)
	tr := obs.NewTracer()
	cfg := Config{
		DB: db, Servers: 10, Strategy: ff(t, 3), BackfillDepth: 4,
		Tracer: tr,
		Faults: faultSchedule(t, 9, 10, 40000),
	}
	res, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.VMsKilled == 0 {
		t.Fatal("workload produced no kills; the kill-span payload is untested")
	}

	var typed bytes.Buffer
	if err := tr.WriteTo(&typed, nil); err != nil {
		t.Fatal(err)
	}
	f, err := obs.ReadTraceFile(bytes.NewReader(typed.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	legacy := obs.NewTracer()
	var argEvents int
	for _, ev := range f.TraceEvents {
		if ev.Args != nil {
			if _, ok := ev.Args.(map[string]any); !ok {
				t.Fatalf("decoded args are %T, want map[string]any", ev.Args)
			}
			argEvents++
		}
		legacy.Emit(ev)
	}
	if argEvents == 0 {
		t.Fatal("no events carried args")
	}
	var remapped bytes.Buffer
	if err := legacy.WriteTo(&remapped, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(typed.Bytes(), remapped.Bytes()) {
		t.Error("typed-args trace is not byte-identical to the map-args serialization")
	}
}

package cloudsim

// Guards for the fleet sampler: the exported energy integral reconciles
// with Metrics.Energy, the ring downsamples deterministically under a
// tight cap, and sampling never perturbs the simulation.

import (
	"bytes"
	"encoding/csv"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"pacevm/internal/faults"
	"pacevm/internal/workload"
)

// TestSamplerEnergyIntegral is the acceptance check: a faulted
// 1000-server run with audit and series enabled produces a sample
// stream whose cumulative fleet energy (busy integral plus idle
// billing) matches Metrics.Energy to within float rounding.
func TestSamplerEnergyIntegral(t *testing.T) {
	db := sharedDB(t)
	reqs := faultWorkload(t, 51, 400)
	sched := faultSchedule(t, 7, 1000, 40000)
	fs := NewFleetSampler(0)
	audit := NewVMAudit()
	res, err := Run(Config{
		DB: db, Servers: 1000, Strategy: ff(t, 2),
		Faults: sched, Checkpoint: faults.Periodic{Interval: 300},
		Sampler: fs, Audit: audit,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsInjected == 0 {
		t.Fatal("schedule did not bite")
	}
	if fs.Len() == 0 || audit.Len() == 0 {
		t.Fatalf("nothing sampled: %d samples, %d spans", fs.Len(), audit.Len())
	}
	got, want := float64(fs.TotalEnergy()), float64(res.Energy)
	if rel := (got - want) / want; rel < -1e-9 || rel > 1e-9 {
		t.Errorf("sampler energy integral %v J, Metrics.Energy %v J (rel err %g)", got, want, rel)
	}
	// The samples must be time-ordered with monotone cumulative energy,
	// and the outage must surface in the down-server column.
	samples := fs.Samples()
	sawDown := false
	for i, s := range samples {
		if i > 0 && s.At < samples[i-1].At {
			t.Fatalf("sample %d out of order: %v after %v", i, s.At, samples[i-1].At)
		}
		if i > 0 && s.CumEnergy < samples[i-1].CumEnergy {
			t.Fatalf("cumulative energy regressed at sample %d", i)
		}
		if s.DownServers > 0 {
			sawDown = true
		}
		if s.ActiveServers < 0 || s.RunningVMs < 0 || s.FleetWatts < 0 {
			t.Fatalf("negative fleet state at sample %d: %+v", i, s)
		}
	}
	if !sawDown {
		t.Error("no sample caught a server outage")
	}
}

// TestSamplerDoesNotPerturb runs the same configuration with and
// without the sampler and requires byte-identical results.
func TestSamplerDoesNotPerturb(t *testing.T) {
	db := sharedDB(t)
	reqs := faultWorkload(t, 21, 150)
	sched := faultSchedule(t, 5, 10, 40000)
	mk := func(fs *FleetSampler) Config {
		return Config{
			DB: db, Servers: 10, Strategy: ff(t, 2),
			Faults: sched, RecordVMs: true, Sampler: fs,
		}
	}
	plain, err := Run(mk(nil), reqs)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Run(mk(NewFleetSampler(64)), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics != sampled.Metrics {
		t.Errorf("sampler perturbed Metrics:\nplain   %+v\nsampled %+v", plain.Metrics, sampled.Metrics)
	}
	if !reflect.DeepEqual(plain.VMs, sampled.VMs) {
		t.Error("sampler perturbed the VMRecord stream")
	}
}

// TestSamplerDownsampling pins the bounded ring: under a tight cap a
// long run keeps at most cap samples, the stride grows as a power of
// two, and the energy integral is unaffected by the thinning.
func TestSamplerDownsampling(t *testing.T) {
	db := sharedDB(t)
	reqs := goldenWorkload(t, 31, 400)
	run := func(cap int) (*FleetSampler, Result) {
		fs := NewFleetSampler(cap)
		res, err := Run(Config{DB: db, Servers: 8, Strategy: ff(t, 2), Sampler: fs}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return fs, res
	}
	tight, res := run(16)
	if tight.Len() > 16 {
		t.Errorf("ring holds %d samples, cap 16", tight.Len())
	}
	if s := tight.Stride(); s <= 1 || s&(s-1) != 0 {
		t.Errorf("stride = %d, want a power of two > 1 after halving", s)
	}
	wide, _ := run(0)
	if wide.Len() <= 16 {
		t.Errorf("default-cap ring kept only %d samples; workload too small to exercise thinning", wide.Len())
	}
	if tight.TotalEnergy() != wide.TotalEnergy() {
		t.Errorf("thinning changed the energy integral: %v vs %v", tight.TotalEnergy(), wide.TotalEnergy())
	}
	if got, want := float64(wide.TotalEnergy()), float64(res.Energy); got != want {
		rel := (got - want) / want
		if rel < -1e-9 || rel > 1e-9 {
			t.Errorf("fault-free integral %v != Metrics.Energy %v", got, want)
		}
	}
}

// TestSamplerCSVAndSeries pins the export surfaces: a parseable,
// deterministic CSV with the documented header, and dashboard series
// aligned with the retained samples.
func TestSamplerCSVAndSeries(t *testing.T) {
	db := sharedDB(t)
	reqs := goldenWorkload(t, 13, 60)
	export := func() (*FleetSampler, []byte) {
		fs := NewFleetSampler(0)
		if _, err := Run(Config{DB: db, Servers: 6, Strategy: ff(t, 2), Sampler: fs}, reqs); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := fs.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return fs, buf.Bytes()
	}
	fs, out := export()
	rows, err := csv.NewReader(bytes.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("series CSV does not parse: %v", err)
	}
	if got := strings.Join(rows[0], ","); got != seriesCSVHeader {
		t.Errorf("header = %q, want %q", got, seriesCSVHeader)
	}
	if len(rows)-1 != fs.Len() {
		t.Errorf("%d data rows for %d samples", len(rows)-1, fs.Len())
	}
	// Spot-check numeric round-trip of the last row's cumulative energy.
	last := rows[len(rows)-1]
	if v, err := strconv.ParseFloat(last[len(last)-1], 64); err != nil || v != float64(fs.BusyEnergy()) {
		t.Errorf("last cum_energy_j cell %q != BusyEnergy %v (err %v)", last[len(last)-1], fs.BusyEnergy(), err)
	}
	if _, again := export(); !bytes.Equal(out, again) {
		t.Error("series CSV not deterministic across identical runs")
	}

	series := fs.Series()
	if len(series) != 3 {
		t.Fatalf("%d dashboard series, want 3", len(series))
	}
	for _, s := range series {
		if len(s.Points) != fs.Len() {
			t.Errorf("series %q has %d points, want %d", s.Name, len(s.Points), fs.Len())
		}
	}
	var nilFS *FleetSampler
	if nilFS.Series() != nil || nilFS.Samples() != nil || nilFS.Len() != 0 || nilFS.Stride() != 0 {
		t.Error("nil sampler accessors not inert")
	}
}

// TestSamplerReuseResets pins that attaching one sampler to consecutive
// runs starts each from a clean slate.
func TestSamplerReuseResets(t *testing.T) {
	db := sharedDB(t)
	reqs := mkReqs(t, 4, workload.ClassCPU, 50)
	fs := NewFleetSampler(64)
	var firstLen int
	var firstEnergy float64
	for rep := 0; rep < 2; rep++ {
		if _, err := Run(Config{DB: db, Servers: 2, Strategy: ff(t, 2), Sampler: fs}, reqs); err != nil {
			t.Fatal(err)
		}
		if rep == 0 {
			firstLen, firstEnergy = fs.Len(), float64(fs.TotalEnergy())
			continue
		}
		if fs.Len() != firstLen || float64(fs.TotalEnergy()) != firstEnergy {
			t.Errorf("reuse did not reset: len %d→%d, energy %v→%v",
				firstLen, fs.Len(), firstEnergy, fs.TotalEnergy())
		}
	}
}

package cloudsim

// Sharded parallel execution: the fleet is partitioned into contiguous
// per-shard server groups, each owning a private simulator — its own
// event list, placement view/capacity index, admission queue and
// accounting state — and the shards advance together through bounded
// simulated-time windows on a pool of persistent workers.
//
// The synchronization protocol is conservative (no rollback, no
// speculation):
//
//   - At each barrier the coordinator computes the earliest pending
//     instant T across every source — each shard's event list, each
//     shard's not-yet-admitted fault schedule, and the not-yet-routed
//     arrival stream — and opens the window [T, T+W).
//   - Arrivals submitting inside the window are routed, in global
//     submission order, to the shard with the least outstanding work
//     per server (ties to the lowest shard id), and admitted under a
//     globally-assigned arrival-band sequence number.
//   - Every shard then runs its events below T+W in parallel; no shard
//     reads another's state during a window, and the barrier's channel
//     handoff orders the coordinator's loadLeft reads after the
//     workers' writes.
//
// Determinism is by construction, not by luck: routing depends only on
// barrier-state that is itself deterministic, and within a shard the
// event list is totally ordered by (time, sequence) with the sequence
// bands of cloudsim.go — so a run is bit-for-bit reproducible at any
// shard count, and Shards=1 replays the monolithic Run exactly (the
// routed order assigns the same relative arrival sequences the
// monolithic loop does; the golden equivalence tests pin byte-identical
// Metrics and VMRecords).
//
// What sharding relaxes, documented rather than hidden: with S > 1 the
// single global FCFS queue becomes S per-shard FCFS queues (a job
// queues only against work routed to its shard), consolidation plans
// stay intra-shard, and a crash re-queues its victims on the owning
// shard. Aggregate accounting remains exact — energy, violations, VM
// counts, response/wait sums and the downtime/idle carve-outs fold
// across shards without approximation; PeakActiveServers is the one
// upper-bound field (the sum of per-shard peaks, which need not be
// simultaneous).

import (
	"fmt"
	"math"
	"sort"

	"pacevm/internal/faults"
	"pacevm/internal/obs"
	"pacevm/internal/strategy"
	"pacevm/internal/trace"
	"pacevm/internal/units"
)

// ShardConfig parameterizes RunSharded.
type ShardConfig struct {
	// Shards is the number of fleet partitions (1..Config.Servers).
	// One shard runs the monolithic algorithm byte-identically.
	Shards int
	// Window is the simulated-time width of each synchronization
	// window. Zero selects an automatic width (the arrival span divided
	// by 256, floored at one second). Wider windows amortize barriers.
	// With one shard the result is identical at any width (routing is
	// trivial); with more, the width sets the routing granularity and is
	// part of the run's deterministic parameterization, like the shard
	// count itself.
	Window units.Seconds
	// Strategy, when non-nil, builds a private strategy instance per
	// shard — required for stateful strategies, which must not be
	// shared across concurrently-running shards. Nil shares
	// Config.Strategy, which is safe for the stateless built-ins.
	Strategy func(shard int) (strategy.Strategy, error)
	// Steal opts into admission handoff at window barriers: a queued
	// head job its owning shard provably cannot host (by the capacity
	// summary) is re-admitted on the least-loaded shard that provably
	// can, entering that shard's stream at the barrier instant while
	// keeping its original submit time for wait/deadline accounting.
	// Off by default — stealing trades strict per-shard FCFS for
	// utilization. Requeued fault work (synthetic shard-local requests)
	// is never stolen, and the handoff remains deterministic: it runs in
	// shard-id order on barrier state only.
	Steal bool
}

// defaultShardWindows is the auto-window divisor: the arrival span is
// cut into this many windows.
const defaultShardWindows = 256

// shardState is one partition's simulator plus its merge bookkeeping.
type shardState struct {
	sim     *sim
	base    int // first global server id owned by this shard
	servers int
	res     Result
	// Private telemetry substituted for the user's handles when S > 1,
	// folded into them after the run (nil when the user passed none).
	reg     *obs.Registry
	audit   *VMAudit
	sampler *FleetSampler
	tr      *obs.Tracer
	rec     *DecisionRecorder
	wd      *obs.Watchdog
}

// fitsNow reports whether the shard's capacity summary proves n VM
// slots are open right now. Only a provable fit may promote a shard in
// capacity-aware routing or accept a stolen job; an absent or inexact
// summary reports false and the caller falls back to the load
// heuristic. Pure — safe to call from the coordinator at a barrier.
func (st *shardState) fitsNow(n int) bool {
	s := st.sim
	if s.hinter == nil {
		return false
	}
	fits, exact := s.hinter.CanFit(s.fleet, n)
	return fits && exact
}

// stuckHead reports whether the shard's queue head provably cannot be
// hosted on the shard right now — the justification required before a
// barrier handoff violates the shard's FCFS order.
func (st *shardState) stuckHead(n int) bool {
	s := st.sim
	if s.hinter == nil {
		return false
	}
	fits, exact := s.hinter.CanFit(s.fleet, n)
	return !fits && exact
}

// RunSharded simulates the request stream across sc.Shards fleet
// partitions advancing in parallel. With sc.Shards == 1 the caller's
// telemetry handles are passed straight through and the run — Metrics,
// VMRecords, obs counters, audit spans, sampler series, trace events,
// decision log — is identical to Run's. With more shards the run is
// deterministic for fixed inputs and shard count, and per-shard
// telemetry is merged into the caller's handles at the end: each shard
// records into private handles, and the folds remap server ids, VM
// uids and synthetic request indices into the global space. A tracer
// receives one merged timeline (per-shard server and queue tracks plus
// a coordinator process carrying window spans and steal instants); a
// recorder receives the time-ordered cross-shard decision log with
// the coordinator's route/steal decisions interleaved; a watchdog
// receives every shard's violations stamped with their shard.
func RunSharded(cfg Config, reqs []trace.Request, sc ShardConfig) (Result, error) {
	cfg, err := validateConfig(cfg, reqs)
	if err != nil {
		return Result{}, err
	}
	S := sc.Shards
	if S < 1 {
		return Result{}, fmt.Errorf("cloudsim: need at least one shard, got %d", S)
	}
	if S > cfg.Servers {
		return Result{}, fmt.Errorf("cloudsim: %d shards over %d servers (at most one shard per server)", S, cfg.Servers)
	}
	if sc.Window < 0 {
		return Result{}, fmt.Errorf("cloudsim: negative shard window %v", sc.Window)
	}
	for i := range reqs {
		if err := reqs[i].Validate(); err != nil {
			return Result{}, err
		}
	}

	// Global routing order: arrivals sorted by submission, stable so
	// simultaneous submissions keep input order — exactly the relative
	// sequence the monolithic loop's index-ordered admission produces.
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return reqs[order[a]].Submit < reqs[order[b]].Submit })
	first := reqs[order[0]].Submit
	window := sc.Window
	if window == 0 {
		window = (reqs[order[len(order)-1]].Submit - first) / defaultShardWindows
		if window < 1 {
			window = 1
		}
	}

	// Contiguous partition: shard k owns servers [base[k], base[k+1]).
	base := make([]int, S+1)
	for k := 0; k < S; k++ {
		n := cfg.Servers / S
		if k < cfg.Servers%S {
			n++
		}
		base[k+1] = base[k] + n
	}
	shardOf := func(server int) int { return sort.SearchInts(base[1:], server+1) }
	perFaults := make([]faults.Schedule, S)
	for _, e := range cfg.Faults {
		k := shardOf(e.Server)
		e.Server -= base[k]
		perFaults[k] = append(perFaults[k], e)
	}

	shards := make([]*shardState, S)
	for k := 0; k < S; k++ {
		st := &shardState{base: base[k], servers: base[k+1] - base[k]}
		scfg := cfg
		scfg.Servers = st.servers
		if cfg.ServerDBs != nil {
			scfg.ServerDBs = cfg.ServerDBs[base[k]:base[k+1]]
		}
		scfg.Faults = perFaults[k]
		if S > 1 {
			// Substitute private accumulators; the user's handles receive
			// the deterministic shard-order fold after the run.
			if cfg.Obs != nil {
				st.reg = obs.NewRegistry()
				scfg.Obs = st.reg
			}
			if cfg.Audit != nil {
				st.audit = NewVMAudit()
				scfg.Audit = st.audit
			}
			if cfg.Sampler != nil {
				st.sampler = NewFleetSampler(cfg.Sampler.capacity)
				scfg.Sampler = st.sampler
			}
			if cfg.Tracer != nil {
				st.tr = obs.NewTracer()
				scfg.Tracer = st.tr
			}
			if cfg.Recorder != nil {
				st.rec = NewDecisionRecorder()
				scfg.Recorder = st.rec
			}
			if cfg.Watchdog != nil {
				st.wd = obs.NewWatchdog(cfg.Watchdog.Every())
				scfg.Watchdog = st.wd
			}
		}
		if sc.Strategy != nil {
			strat, err := sc.Strategy(k)
			if err != nil {
				return Result{}, fmt.Errorf("cloudsim: shard %d strategy: %w", k, err)
			}
			if strat == nil {
				return Result{}, fmt.Errorf("cloudsim: shard %d strategy factory returned nil", k)
			}
			scfg.Strategy = strat
		}
		if st.sim, err = newSim(scfg, reqs); err != nil {
			return Result{}, err
		}
		// Same formula as Run: the heap holds at most one completion per
		// server plus the fault events; arrivals live on the cursor. (The
		// match matters at S == 1, where the obs registry — including the
		// slab-growth counters — must stay byte-identical to Run's.)
		st.sim.events.Reserve(st.servers + 2*len(scfg.Faults))
		st.sim.arrQ = make([]pendingArrival, 0, len(reqs)/S+1)
		shards[k] = st
	}

	// Persistent workers, one per shard: each blocks for a window limit,
	// admits its faults and runs its events below it, and reports on its
	// done channel. The channel pair is the barrier — receiving a
	// shard's done happens-after everything its window wrote, so the
	// coordinator's peeks and loadLeft reads below are race-free.
	starts := make([]chan units.Seconds, S)
	dones := make([]chan error, S)
	for k := 0; k < S; k++ {
		starts[k] = make(chan units.Seconds)
		dones[k] = make(chan error)
		go func(s *sim, start <-chan units.Seconds, done chan<- error) {
			for limit := range start {
				s.scheduleFaultsUntil(limit)
				done <- s.runUntil(limit)
			}
		}(shards[k].sim, starts[k], dones[k])
	}
	stop := func() {
		for _, c := range starts {
			close(c)
		}
	}

	inf := units.Seconds(math.Inf(1))
	nextReq := 0
	var arrSeq uint64
	// pend counts VMs routed (or stolen) to each shard since its last
	// window ran: they are admitted but not yet placed, so the capacity
	// summary cannot see them and routing must account them on top.
	pend := make([]int, S)
	// Coordinator-side observability, only above one shard so the S == 1
	// pass-through stays byte-identical to Run: a private recorder for
	// route/steal decisions and a private tracer for window spans and
	// steal instants, both folded into the user's handles after the run,
	// plus the routing counter (registered only alongside a recorder so
	// recorder-off registry snapshots stay unchanged).
	var coordRec *DecisionRecorder
	var coordTr *obs.Tracer
	var routes *obs.Counter
	if S > 1 {
		if cfg.Recorder != nil {
			coordRec = NewDecisionRecorder()
			routes = cfg.Obs.Counter("sim_decision_routes_total")
		}
		if cfg.Tracer != nil {
			coordTr = obs.NewTracer()
		}
	}
	windowN := 0
	for {
		// The conservative bound: nothing anywhere can happen before T.
		T := inf
		for _, st := range shards {
			// nextPendingInstant folds in routed-but-not-yet-run arrivals
			// sitting on the shard's arrival cursor, not just heap events.
			if at, ok := st.sim.nextPendingInstant(); ok && at < T {
				T = at
			}
			if fn := st.sim.faultNext; fn < len(st.sim.faultSch) && st.sim.faultSch[fn].Down < T {
				T = st.sim.faultSch[fn].Down
			}
		}
		if nextReq < len(order) && reqs[order[nextReq]].Submit < T {
			T = reqs[order[nextReq]].Submit
		}
		if math.IsInf(float64(T), 1) {
			break
		}
		limit := T + window
		windowN++
		routed := 0
		// Route this window's arrivals in global submission order, under
		// globally-sequenced arrival seqs. The router is capacity-aware:
		// each job goes to the least-loaded shard among those whose
		// capacity summary proves it fits right now (with this window's
		// already-routed VMs counted on top), ties to the lowest shard
		// id; when no shard can prove a fit the pure least-outstanding-
		// work-per-server heuristic decides, as before. All inputs are
		// barrier state, so routing stays deterministic.
		for nextReq < len(order) && reqs[order[nextReq]].Submit < limit {
			n := reqs[order[nextReq]].VMs
			best, bestLoad := -1, math.Inf(1)
			for k, st := range shards {
				if !st.fitsNow(n + pend[k]) {
					continue
				}
				if load := st.sim.loadLeft / float64(st.servers); load < bestLoad {
					best, bestLoad = k, load
				}
			}
			if best < 0 {
				for k, st := range shards {
					if load := st.sim.loadLeft / float64(st.servers); load < bestLoad {
						best, bestLoad = k, load
					}
				}
			}
			pend[best] += n
			if coordRec != nil {
				r := &reqs[order[nextReq]]
				coordRec.recordRoute(float64(r.Submit), order[nextReq], r.ID, n, best, windowN)
				routes.Inc()
			}
			shards[best].sim.scheduleArrival(order[nextReq], arrSeq)
			arrSeq++
			nextReq++
			routed++
		}
		if coordTr != nil {
			coordTr.Span("window", "coord", tracePidCoord, 0,
				float64(T), float64(limit), traceWindowArgs{Routed: routed, Window: windowN})
		}
		for k := range shards {
			starts[k] <- limit
		}
		var runErr error
		for k := range shards {
			if err := <-dones[k]; err != nil && runErr == nil {
				runErr = fmt.Errorf("cloudsim: shard %d: %w", k, err)
			}
		}
		if runErr != nil {
			stop()
			return Result{}, runErr
		}
		for k := range pend {
			pend[k] = 0
		}
		if sc.Steal && S > 1 {
			arrSeq = stealHandoff(shards, len(reqs), arrSeq, limit, pend, coordRec, coordTr, windowN)
		}
	}
	stop()

	// Global workload span: every shard bills idle power and clamps
	// downtime over the same [first, last] the monolithic run would use.
	last := first
	for _, st := range shards {
		if st.sim.lastFinish > last {
			last = st.sim.lastFinish
		}
	}
	for k, st := range shards {
		res, err := st.sim.finalize(first, last)
		if err != nil {
			return Result{}, fmt.Errorf("cloudsim: shard %d: %w", k, err)
		}
		st.res = res
	}

	var m Metrics
	var respSum, waitSum float64
	m.Makespan = last - first
	for _, st := range shards {
		r := &st.res.Metrics
		m.Energy += r.Energy
		m.Violations += r.Violations
		m.TotalVMs += r.TotalVMs
		m.TotalJobs += r.TotalJobs
		m.ActiveServerSeconds += r.ActiveServerSeconds
		m.Migrations += r.Migrations
		m.ServersDrained += r.ServersDrained
		m.FaultsInjected += r.FaultsInjected
		m.VMsKilled += r.VMsKilled
		m.Requeues += r.Requeues
		m.WorkLost += r.WorkLost
		m.DownServerSeconds += r.DownServerSeconds
		// Upper bound: per-shard peaks need not be simultaneous.
		m.PeakActiveServers += r.PeakActiveServers
		respSum += st.sim.responseSum
		waitSum += st.sim.waitSum
	}
	if m.TotalVMs > 0 {
		m.AvgResponse = units.Seconds(respSum / float64(m.TotalVMs))
		m.AvgWait = units.Seconds(waitSum / float64(m.TotalVMs))
	}
	// NominalWork sums in input order, not admission (routed) order:
	// shards admit the same requests but in window/routing order, and a
	// float sum must keep the monolithic run's addition order to stay
	// bit-identical to it.
	m.NominalWork = 0
	for i := range reqs {
		m.NominalWork += reqs[i].NominalTime * units.Seconds(reqs[i].VMs)
	}

	var recs []VMRecord
	if cfg.RecordVMs {
		n := 0
		for _, st := range shards {
			n += len(st.res.VMs)
		}
		recs = make([]VMRecord, 0, n)
		for _, st := range shards {
			for _, r := range st.res.VMs {
				r.Server += st.base
				recs = append(recs, r)
			}
		}
		// Completion order, ties resolved by shard then shard-local
		// retirement order — deterministic, and the identity permutation
		// for one shard (a single shard retires in time order already).
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].Completion < recs[j].Completion })
	}

	if S > 1 {
		if cfg.Obs != nil {
			for _, st := range shards {
				cfg.Obs.Merge(st.reg)
			}
		}
		// Shared remap tables for every cross-shard fold: global server
		// base, running VM-uid base, and the base of each shard's
		// synthetic (fault-requeued) request range past the original
		// stream.
		bases := make([]int, S)
		uidBases := make([]int, S)
		reqBase := make([]int, S)
		uid, synth := 0, 0
		for k, st := range shards {
			bases[k], uidBases[k], reqBase[k] = st.base, uid, synth
			uid += st.sim.uidSeq
			synth += len(st.sim.reqs) - len(reqs)
		}
		if cfg.Audit != nil {
			audits := make([]*VMAudit, S)
			for k, st := range shards {
				audits[k] = st.audit
			}
			cfg.Audit.absorbShards(audits, bases, uidBases)
		}
		if cfg.Sampler != nil {
			samplers := make([]*FleetSampler, S)
			for k, st := range shards {
				samplers[k] = st.sampler
			}
			cfg.Sampler.absorbShards(samplers, bases, cfg.Servers)
		}
		if cfg.Recorder != nil {
			parts := make([]*DecisionRecorder, S)
			for k, st := range shards {
				parts[k] = st.rec
			}
			cfg.Recorder.absorbShards(coordRec, parts, bases, uidBases, reqBase, len(reqs))
		}
		if cfg.Watchdog != nil {
			cfg.Watchdog.Reset()
			for k, st := range shards {
				cfg.Watchdog.Absorb(st.wd, k)
			}
		}
		if cfg.Tracer != nil {
			trs := make([]*obs.Tracer, S)
			for k, st := range shards {
				trs[k] = st.tr
			}
			mergeShardTraces(cfg.Tracer, coordTr, trs, bases, cfg.Servers, len(reqs), reqBase)
		}
	}
	return Result{Metrics: m, VMs: recs}, nil
}

// stealHandoff is the barrier admission handoff behind ShardConfig.
// Steal: walking shards in id order, each donor's queue head is moved —
// while it is an original (never a synthetic requeued) request the
// donor's capacity summary proves unplaceable — to the least-loaded
// other shard whose summary proves it fits, counting VMs already stolen
// this barrier against the receiver. The job's admission accounting
// (TotalJobs, TotalVMs, NominalWork, loadLeft) moves with it and it
// re-enters the receiver's arrival cursor at the barrier instant, so no
// shard's clock rewinds and the receiver's next window places it
// through normal admission. Stops at the first head that might fit
// locally, keeping the donor's FCFS order otherwise intact. Returns the
// advanced global arrival sequence.
func stealHandoff(shards []*shardState, nOrig int, arrSeq uint64, at units.Seconds, pend []int, coordRec *DecisionRecorder, coordTr *obs.Tracer, windowN int) uint64 {
	for k, donor := range shards {
		ds := donor.sim
		for ds.qlen() > 0 {
			idx := ds.qat(0)
			if idx >= nOrig {
				break // synthetic fault requeue: shard-local by contract
			}
			n := ds.reqs[idx].VMs
			if !donor.stuckHead(n) {
				break // might fit here — leave FCFS alone
			}
			best, bestLoad := -1, math.Inf(1)
			for j, st := range shards {
				if j == k || !st.fitsNow(n+pend[j]) {
					continue
				}
				if load := st.sim.loadLeft / float64(st.servers); load < bestLoad {
					best, bestLoad = j, load
				}
			}
			if best < 0 {
				break // nowhere provably better
			}
			ds.unadmit(idx)
			ds.qpophead()
			ds.stats.admissionSteals.Inc()
			if coordRec != nil {
				coordRec.recordSteal(float64(at), idx, ds.reqs[idx].ID, n, k, best, windowN)
			}
			if coordTr != nil {
				coordTr.Instant("steal", "coord", tracePidCoord, 1,
					float64(at), traceStealArgs{From: k, Job: ds.reqs[idx].ID, To: best})
			}
			shards[best].sim.admitStolen(idx, arrSeq, at)
			arrSeq++
			pend[best] += n
		}
	}
	return arrSeq
}

// absorbShards folds per-shard audits into the user's collector:
// server ids and VM uids are remapped into the global space (shard k's
// uids are offset by the shards before it, so uids stay dense and
// unique, though numbered differently than a monolithic run would) and
// spans are ordered by end time, ties by shard — deterministic for a
// deterministic run. The span/metric reconciliation invariants survive
// the fold, since every count and sum is shard-additive.
func (a *VMAudit) absorbShards(parts []*VMAudit, serverBase, uidBase []int) {
	a.reset()
	for k, p := range parts {
		for _, sp := range p.spans {
			sp.Server += serverBase[k]
			sp.VMID += uidBase[k]
			a.spans = append(a.spans, sp)
		}
	}
	sort.SliceStable(a.spans, func(i, j int) bool { return a.spans[i].End < a.spans[j].End })
}

// absorbShards folds per-shard fleet samplers into the user's sampler:
// the per-shard series are k-way merged by (time, shard), each merged
// row re-aggregating the fleet totals — watts, active/down servers,
// queue depth, running VMs, cumulative energy — as the sum of every
// shard's most recent contribution, with the triggering server's id
// remapped to the global space. QueueDepth thus sums per-shard queues
// (the sharded engine has no single global queue). The merged series
// flows through the same bounded ring, so capacity and downsampling
// behave as in a monolithic run; BusyEnergy/IdleEnergy fold exactly
// from the per-shard integrals, so TotalEnergy still reconciles with
// Metrics.Energy.
func (fs *FleetSampler) absorbShards(parts []*FleetSampler, serverBase []int, servers int) {
	fs.reset(servers)
	series := make([][]FleetSample, len(parts))
	cursor := make([]int, len(parts))
	latest := make([]FleetSample, len(parts))
	for k, p := range parts {
		series[k] = p.Samples()
		if s := p.Stride(); s > fs.stride {
			fs.stride = s
		}
	}
	for {
		best := -1
		for k := range series {
			if cursor[k] >= len(series[k]) {
				continue
			}
			if best < 0 || series[k][cursor[k]].At < series[best][cursor[best]].At {
				best = k
			}
		}
		if best < 0 {
			break
		}
		s := series[best][cursor[best]]
		cursor[best]++
		latest[best] = s
		g := FleetSample{At: s.At, Server: s.Server + serverBase[best], ServerWatts: s.ServerWatts, ServerVMs: s.ServerVMs}
		for _, l := range latest {
			g.FleetWatts += l.FleetWatts
			g.ActiveServers += l.ActiveServers
			g.QueueDepth += l.QueueDepth
			g.DownServers += l.DownServers
			g.RunningVMs += l.RunningVMs
			g.CumEnergy += l.CumEnergy
		}
		fs.push(g)
	}
	for k, p := range parts {
		fs.cumEnergy += p.BusyEnergy()
		fs.idleEnergy += p.IdleEnergy()
		fs.fleetWatts += latest[k].FleetWatts
		fs.runningVMs += latest[k].RunningVMs
		fs.downServers += latest[k].DownServers
	}
}

package cloudsim

import (
	"testing"

	"pacevm/internal/trace"
	"pacevm/internal/units"
)

// allocWorkload is benchWorkload's testing.T twin: a seeded EGEE-shaped
// stream sized for the alloc-scaling guard.
func allocWorkload(t *testing.T, seed uint64, n int, gap units.Seconds) []trace.Request {
	t.Helper()
	cfg := trace.DefaultStreamConfig(seed)
	cfg.MeanInterarrival = gap
	s, err := trace.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s.Take(n)
}

// TestFleetAllocScaling pins the O(1)-in-fleet-size allocation behaviour
// of fleet setup (the slab-backed server/residents layout in newSim).
// Before the slab, setup cost ~18 allocations per server — quadrupling
// the fleet from 1k to 4k servers added ~54k allocs/run. With it, the
// whole run stays within a few hundred allocations at either scale, so
// the guard asserts the 4k-server run costs at most a small constant
// more than the 1k-server run, far below one allocation per added
// server.
func TestFleetAllocScaling(t *testing.T) {
	db := sharedDB(t)
	st := ff(t, 3)
	measure := func(servers int, gap units.Seconds) float64 {
		reqs := allocWorkload(t, 99, 20_000, gap)
		cfg := Config{DB: db, Servers: servers, Strategy: st}
		return testing.AllocsPerRun(1, func() {
			res, err := Run(cfg, reqs)
			if err != nil {
				t.Fatal(err)
			}
			benchSink = res.Makespan
		})
	}
	small := measure(1000, 1.5)
	large := measure(4000, 0.4)
	t.Logf("allocs/run: 1k servers = %.0f, 4k servers = %.0f", small, large)
	// 3000 extra servers must not cost even one alloc each; the real
	// delta is tens of allocations (heap growth for the denser stream).
	if large > small+1000 {
		t.Errorf("fleet setup allocations scale with servers: 1k = %.0f, 4k = %.0f", small, large)
	}
	if large > 5000 {
		t.Errorf("4k-server run costs %.0f allocs, want O(100)", large)
	}
}

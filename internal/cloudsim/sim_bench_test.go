package cloudsim

// Large-simulation benchmarks: the ROADMAP-scale fleets the hot-path
// rewrite targets. BenchmarkSimLarge* drive the optimized Run;
// BenchmarkSimLargeReference drives the preserved naive transcription on
// the identical workload, so the ratio of the two is the measured
// speedup (and allocs/op ratio the allocation reduction) recorded in
// BENCH_sim.json by `make bench-json`.

import (
	"testing"

	"pacevm/internal/obs"
	"pacevm/internal/strategy"
	"pacevm/internal/trace"
	"pacevm/internal/units"
)

var benchSink units.Seconds

// benchWorkload streams a seeded EGEE-shaped workload sized to keep a
// fleet of the given slot count busy without starving the queue.
func benchWorkload(b *testing.B, seed uint64, n int, gap units.Seconds) []trace.Request {
	b.Helper()
	cfg := trace.DefaultStreamConfig(seed)
	cfg.MeanInterarrival = gap
	s, err := trace.NewStream(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return s.Take(n)
}

func benchSim(b *testing.B, servers, n int, gap units.Seconds,
	run func(Config, []trace.Request) (Result, error)) {
	db := sharedDB(b)
	reqs := benchWorkload(b, 99, n, gap)
	st, err := strategy.NewFirstFit(3)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{DB: db, Servers: servers, Strategy: st}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := run(cfg, reqs)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = res.Makespan
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkSimLarge is the acceptance workload: 1k servers (12k FF-3
// slots), 100k requests.
func BenchmarkSimLarge(b *testing.B) {
	benchSim(b, 1000, 100_000, 1.5, Run)
}

// BenchmarkSimLarge4k quadruples the fleet with a proportionally denser
// arrival stream.
func BenchmarkSimLarge4k(b *testing.B) {
	benchSim(b, 4000, 100_000, 0.4, Run)
}

// BenchmarkSimLargeBackfill exercises the queue-window path under the
// same load.
func BenchmarkSimLargeBackfill(b *testing.B) {
	benchSim(b, 1000, 100_000, 1.5, func(cfg Config, reqs []trace.Request) (Result, error) {
		cfg.BackfillDepth = 8
		return Run(cfg, reqs)
	})
}

// BenchmarkSimLargeReference is the pre-rewrite baseline on the
// BenchmarkSimLarge workload.
func BenchmarkSimLargeReference(b *testing.B) {
	benchSim(b, 1000, 100_000, 1.5, RunReference)
}

// BenchmarkSimLargeObs is BenchmarkSimLarge with a live metrics registry
// attached; the delta against BenchmarkSimLarge is the enabled-telemetry
// overhead (the disabled overhead is pinned to zero by
// TestObsDisabledAllocFree).
func BenchmarkSimLargeObs(b *testing.B) {
	benchSim(b, 1000, 100_000, 1.5, func(cfg Config, reqs []trace.Request) (Result, error) {
		cfg.Obs = obs.NewRegistry()
		return Run(cfg, reqs)
	})
}

// BenchmarkSimLargeSampler is BenchmarkSimLarge with the fleet sampler
// attached at the default ring capacity; the delta against
// BenchmarkSimLarge is the sampler-on overhead (the sampler-off path is
// pinned allocation-free by TestObsDisabledAllocFree).
func BenchmarkSimLargeSampler(b *testing.B) {
	fs := NewFleetSampler(0)
	benchSim(b, 1000, 100_000, 1.5, func(cfg Config, reqs []trace.Request) (Result, error) {
		cfg.Sampler = fs
		return Run(cfg, reqs)
	})
}

// BenchmarkSimTrace adds the trace recorder on a smaller fleet (the
// recorder buffers every span in memory, so the large workload would
// measure the allocator, not the hooks).
func BenchmarkSimTrace(b *testing.B) {
	benchSim(b, 100, 10_000, 15, func(cfg Config, reqs []trace.Request) (Result, error) {
		cfg.Obs = obs.NewRegistry()
		cfg.Tracer = obs.NewTracer()
		return Run(cfg, reqs)
	})
}

// benchSimShards drives the sharded parallel engine on the benchSim
// workload shape and reports the shard count alongside, so BENCH_sim
// entries carry the parallelism they were measured under (pacevm-
// benchjson lifts it, with GOMAXPROCS, into dedicated fields).
func benchSimShards(b *testing.B, servers, n int, gap units.Seconds, shards int) {
	benchSim(b, servers, n, gap, func(cfg Config, reqs []trace.Request) (Result, error) {
		return RunSharded(cfg, reqs, ShardConfig{Shards: shards})
	})
	b.ReportMetric(float64(shards), "shards")
}

// BenchmarkSimLargeShards{2,4,8} scale the BenchmarkSimLarge workload
// across shard counts. The speedup over BenchmarkSimLarge is bounded by
// the cores actually available — on a single-core runner the family
// measures the sharding overhead instead (the recorded GOMAXPROCS says
// which reading a BENCH_sim entry is).
func BenchmarkSimLargeShards2(b *testing.B) { benchSimShards(b, 1000, 100_000, 1.5, 2) }
func BenchmarkSimLargeShards4(b *testing.B) { benchSimShards(b, 1000, 100_000, 1.5, 4) }
func BenchmarkSimLargeShards8(b *testing.B) { benchSimShards(b, 1000, 100_000, 1.5, 8) }

// BenchmarkSimHuge* are the ROADMAP-scale entries: a 100k-server fleet
// under 10M requests, checking per-request cost stays flat at 100× the
// BenchmarkSimLarge fleet. Run with -benchtime 1x (see make bench-json);
// at 2x the workload alone dominates the suite.
func BenchmarkSimHuge(b *testing.B)        { benchSim(b, 100_000, 10_000_000, 0.015, Run) }
func BenchmarkSimHugeShards8(b *testing.B) { benchSimShards(b, 100_000, 10_000_000, 0.015, 8) }

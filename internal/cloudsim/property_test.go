package cloudsim

import (
	"testing"
	"testing/quick"

	"pacevm/internal/core"
	"pacevm/internal/rng"
	"pacevm/internal/strategy"
	"pacevm/internal/trace"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// randomReqs builds a random-but-valid request stream.
func randomReqs(t *testing.T, seed uint64, n int) []trace.Request {
	t.Helper()
	db := sharedDB(t)
	r := rng.New(seed)
	reqs := make([]trace.Request, n)
	var at units.Seconds
	for i := range reqs {
		at += units.Seconds(r.Exp(120))
		class := workload.Classes[r.Intn(workload.NumClasses)]
		nominal := db.Aux().RefTime[class] * units.Seconds(r.Uniform(0.2, 2.5))
		reqs[i] = trace.Request{
			ID:          i + 1,
			Submit:      at,
			Class:       class,
			VMs:         r.IntBetween(1, 4),
			NominalTime: nominal,
			MaxResponse: nominal * units.Seconds(r.Uniform(1.5, 4)),
		}
	}
	return reqs
}

// TestSimulationInvariantsUnderRandomWorkloads drives random workloads
// through random strategies and checks structural invariants that must
// hold regardless of input: all VMs finish, counters are consistent,
// causality holds, and energy is bounded below by the work's minimum
// possible draw.
func TestSimulationInvariantsUnderRandomWorkloads(t *testing.T) {
	db := sharedDB(t)
	f := func(seed uint64, stratRaw, serversRaw uint8) bool {
		servers := int(serversRaw%6) + 2
		reqs := randomReqs(t, seed, 40)
		var st strategy.Strategy
		switch stratRaw % 4 {
		case 0:
			st, _ = strategy.NewFirstFit(1)
		case 1:
			st, _ = strategy.NewFirstFit(3)
		case 2:
			st = &strategy.BestFit{Multiplex: 2}
		default:
			var err error
			st, err = strategy.NewProactive(db, core.GoalBalanced, 0)
			if err != nil {
				return false
			}
		}
		res, err := Run(Config{
			DB: db, Servers: servers, Strategy: st,
			IdleServerPower: -1, RecordVMs: true,
		}, reqs)
		if err != nil {
			t.Logf("seed %d strategy %s: %v", seed, st.Name(), err)
			return false
		}
		wantVMs := 0
		for _, r := range reqs {
			wantVMs += r.VMs
		}
		if res.TotalVMs != wantVMs || len(res.VMs) != wantVMs {
			return false
		}
		if res.Violations > res.TotalVMs || res.Violations < 0 {
			return false
		}
		if res.Makespan <= 0 || res.Energy <= 0 {
			return false
		}
		if res.PeakActiveServers < 1 || res.PeakActiveServers > servers {
			return false
		}
		for _, vm := range res.VMs {
			if vm.Placed < vm.Submit || vm.Completion < vm.Placed {
				return false
			}
			if vm.Server < 0 || vm.Server >= servers {
				return false
			}
			if vm.Violated != (vm.Deadline > 0 && vm.Completion > vm.Deadline) {
				return false
			}
		}
		// Energy lower bound: the busiest possible accounting cannot be
		// below 125 W (the idle floor inside every hosting record) over
		// the actual hosted time.
		if res.Energy < units.Watts(125).Times(units.Seconds(res.ActiveServerSeconds))-1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestNoOverlapBeyondAdmission verifies the simulator's admission check:
// a strategy that tries to overfill a server is refused without state
// corruption.
type overfillStrategy struct{}

func (overfillStrategy) Name() string { return "OVERFILL" }
func (overfillStrategy) Place(servers []strategy.Server, vms []core.VMRequest) ([]int, bool) {
	// Everything onto server 0, always.
	out := make([]int, len(vms))
	for i := range out {
		out[i] = servers[0].ID
	}
	return out, true
}

func TestNoOverlapBeyondAdmission(t *testing.T) {
	db := sharedDB(t)
	ref := db.Aux().RefTime[workload.ClassCPU]
	// 20 one-VM jobs at once, all aimed at server 0: the 17th placement
	// would exceed the 16-VM admission limit, so the simulator must make
	// the excess wait for completions instead of overfilling.
	reqs := make([]trace.Request, 20)
	for i := range reqs {
		reqs[i] = trace.Request{ID: i + 1, Submit: 0, Class: workload.ClassCPU, VMs: 1,
			NominalTime: ref, MaxResponse: ref * 100}
	}
	res, err := Run(Config{DB: db, Servers: 2, Strategy: overfillStrategy{}, RecordVMs: true}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalVMs != 20 {
		t.Fatalf("completed %d VMs", res.TotalVMs)
	}
	waited := 0
	for _, vm := range res.VMs {
		if vm.Server != 0 {
			t.Fatalf("VM escaped to server %d", vm.Server)
		}
		if vm.Placed > vm.Submit {
			waited++
		}
	}
	if waited < 4 {
		t.Errorf("only %d VMs waited; admission limit not enforced", waited)
	}
	if res.PeakActiveServers != 1 {
		t.Errorf("peak active servers = %d, want 1", res.PeakActiveServers)
	}
}

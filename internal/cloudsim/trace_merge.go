package cloudsim

// Cross-shard trace merge: each shard records its window events into a
// private tracer over shard-local server ids, and this fold rewrites
// them onto one global Perfetto timeline — per-server tracks remapped
// by the shard's base, each shard's workload track (arrivals, queue
// depth, flow tails) kept as its own named thread, synthetic requeue
// flow ids moved into disjoint per-shard ranges, and the coordinator's
// window spans and steal instants added as a third process. Metadata
// is regenerated globally (per-shard name events are dropped), and
// events are ordered by timestamp with coordinator-then-shard-order
// tie-breaking — deterministic for a deterministic run, so two
// identical sharded runs serialize byte-identical trace files.

import (
	"sort"
	"strconv"

	"pacevm/internal/obs"
)

// traceWindowArgs is the args payload of a coordinator window span.
// Fields are tagged in ascending key order (see obs.TraceEvent.Args).
type traceWindowArgs struct {
	Routed int `json:"routed"`
	Window int `json:"window"`
}

// traceStealArgs is the args payload of a coordinator steal instant.
type traceStealArgs struct {
	From int `json:"from"`
	Job  int `json:"job"`
	To   int `json:"to"`
}

// mergeShardTraces folds the per-shard tracers and the coordinator's
// into dst. bases[k] is shard k's first global server id, servers the
// global fleet size, nOrig the original request-stream length and
// reqBase[k] the shard's synthetic-request base (see RunSharded).
func mergeShardTraces(dst, coord *obs.Tracer, parts []*obs.Tracer, bases []int, servers, nOrig int, reqBase []int) {
	// Regenerated global metadata first: Perfetto reads naming events
	// position-independently, but leading with them keeps the file
	// layout stable and human-scannable.
	dst.NameProcess(tracePidServers, "servers")
	dst.NameProcess(tracePidWorkload, "workload")
	for k := range parts {
		dst.NameThread(tracePidWorkload, k, "queue shard "+strconv.Itoa(k))
	}
	for i := 0; i < servers; i++ {
		dst.NameThread(tracePidServers, i, "server "+strconv.Itoa(i))
	}
	if coord != nil {
		dst.NameProcess(tracePidCoord, "coordinator")
		dst.NameThread(tracePidCoord, 0, "windows")
		dst.NameThread(tracePidCoord, 1, "steals")
	}

	var events []obs.TraceEvent
	for _, ev := range coord.Events() {
		if ev.Phase == obs.PhaseMetadata {
			continue
		}
		events = append(events, ev)
	}
	for k, tr := range parts {
		for _, ev := range tr.Events() {
			if ev.Phase == obs.PhaseMetadata {
				continue
			}
			switch ev.Pid {
			case tracePidServers:
				ev.Tid += bases[k]
			case tracePidWorkload:
				// The monolithic queue/arrival track (tid 0) becomes this
				// shard's own workload thread.
				ev.Tid = k
			}
			// Flow ids are request index + 1. Original requests are routed
			// to exactly one shard, so their ids stay globally unique;
			// synthetic fault requeues are shard-local indices past the
			// original stream and must move into the shard's global range.
			if ev.ID > nOrig {
				ev.ID = nOrig + reqBase[k] + (ev.ID - 1 - nOrig) + 1
			}
			events = append(events, ev)
		}
	}
	// Stable sort by timestamp: each source is already time-ordered, so
	// ties resolve coordinator-first then by shard id.
	sort.SliceStable(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })
	for _, ev := range events {
		dst.Emit(ev)
	}
}

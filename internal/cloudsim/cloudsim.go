// Package cloudsim is the datacenter-level discrete-event simulator of
// Sect. IV: it replays preprocessed workload traces against a cloud of
// identical servers, places job requests through a pluggable strategy
// (first-fit variants or the paper's PROACTIVE algorithm), and accounts
// execution time and energy with the model database exactly as the
// paper's Fig. 4 prescribes — whenever a server's resident set changes an
// interval closes, a VM's progress is the duration-weighted composition
// of the per-interval model rates, and a server's energy is the
// duration-weighted sum of per-interval model power, with the paper's
// fixed 125 W floor while a server is powered on and nothing while it is
// off.
//
// Metrics follow Sect. IV.C: makespan (difference between the earliest
// submission and the latest completion), energy consumption in Joules,
// and the percentage of SLA violations (missed maximum-response-time
// deadlines summed over all applications). Scheduling and provisioning
// overheads are not modelled, as in the paper.
//
// Run is the scale-tuned event loop: typed slab-backed events, a
// placement view and active-server count maintained incrementally,
// pooled VM state, and — for strategies implementing
// strategy.IndexedPlacer — O(1) capacity-indexed placement. RunReference
// retains the naive transcription as the equivalence oracle; the golden
// tests prove both produce byte-identical Metrics and VMRecord streams.
package cloudsim

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"slices"
	"strconv"

	"pacevm/internal/core"
	"pacevm/internal/eventq"
	"pacevm/internal/faults"
	"pacevm/internal/migrate"
	"pacevm/internal/model"
	"pacevm/internal/obs"
	"pacevm/internal/strategy"
	"pacevm/internal/trace"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// Config parameterizes a simulation run.
type Config struct {
	// DB is the model database used to price allocations.
	DB *model.DB
	// ServerDBs optionally assigns a different model database to
	// individual servers — the heterogeneous-hardware extension, where
	// each hardware class carries its own benchmarking campaign. When
	// provided it must have one entry per server; nil entries fall back
	// to DB.
	ServerDBs []*model.DB
	// Servers is the cloud size (the paper's SMALLER and LARGER clouds
	// differ only here, by ~15 %).
	Servers int
	// Strategy decides placements. Strategies that also implement
	// strategy.IndexedPlacer place through a capacity index the
	// simulator maintains incrementally instead of a per-call fleet
	// scan.
	Strategy strategy.Strategy
	// MaxVMsPerServer is the physical admission limit (defaults to 16,
	// the testbed's base-test ceiling).
	MaxVMsPerServer int
	// IdleServerPower is drawn by every provisioned server while it
	// hosts nothing — the paper "assume[s] a fixed power dissipation of
	// 125 W when a server" is on, and sizes its clouds so that "in the
	// SMALLER system there are fewer servers consuming energy". Defaults
	// to 125 W; set negative to model power-gated (0 W) idle servers
	// instead.
	IdleServerPower units.Watts
	// Consolidator, when non-nil, is invoked after completion events
	// with a snapshot of the live cloud and may return migration moves
	// (the dynamic-placement baseline of the paper's related work; see
	// internal/migrate). Each migrated VM pays MigrationCost as
	// additional nominal work — the live-migration downtime and
	// dirty-page slowdown.
	Consolidator  Consolidator
	MigrationCost units.Seconds
	// BackfillDepth loosens the FCFS queue: when the head job cannot be
	// placed, up to this many jobs behind it are tried (aggressive
	// backfilling — small jobs may jump ahead and delay the head, the
	// classic fairness/utilization trade). Zero keeps the paper's strict
	// FCFS-without-backfilling behaviour.
	BackfillDepth int
	// RecordVMs retains the per-VM audit trail in the result.
	RecordVMs bool
	// Obs receives hot-path telemetry: events popped, placements
	// attempted/rejected, queue-depth high-water, backfill splices,
	// accounting intervals closed, pricing-cache hit rates, and the
	// event queue's slab/cancellation counters (names in DESIGN.md §4).
	// Nil — the default — disables it at zero cost: every handle is a
	// nil no-op and the run is allocation- and byte-identical to an
	// uninstrumented one. Observation never perturbs the simulation.
	Obs *obs.Registry
	// Tracer, when non-nil, records the run timeline over *simulated*
	// time in Chrome trace-event form (Perfetto-loadable): per-server
	// occupancy spans, per-VM execution slices with arrival→placement
	// flow arrows, and a queue-depth counter track. Like Obs it is
	// passive and free when nil. RunReference — the frozen pre-rewrite
	// oracle — ignores both fields.
	Tracer *obs.Tracer
	// Audit, when non-nil, collects one lifecycle span per VM attempt —
	// submit → queue → place(server) → run → {crash → requeue}* → finish
	// — with derived wait, service time, stretch, and deadline-miss
	// attribution (see audit.go). Passive and free when nil; ignored by
	// RunReference.
	Audit *VMAudit
	// Sampler, when non-nil, records the fleet's power/occupancy time
	// series at each closed accounting interval into a bounded,
	// deterministically-downsampled ring (see sampler.go) — the data
	// behind a Fig.-4-style power-over-time figure. Passive and free when
	// nil; ignored by RunReference.
	Sampler *FleetSampler
	// Faults is the deterministic crash/recovery schedule (see
	// internal/faults). Each event takes one server down at Down — its
	// resident VMs are killed per Checkpoint and re-queued through normal
	// admission, the server draws 0 W and is excluded from placement —
	// and brings it back at Up. Empty (the default) disables the fault
	// layer entirely: the run is byte-identical to a pre-fault build, and
	// that equivalence is what the golden tests pin. RunReference rejects
	// non-empty schedules — the oracle predates the fault model.
	Faults faults.Schedule
	// Checkpoint decides how much of a killed VM's progress survives a
	// crash (the remainder is re-done by the re-queued VM). Nil defaults
	// to faults.Restart — all progress lost. Ignored without Faults.
	Checkpoint faults.CheckpointPolicy
	// Recorder, when non-nil, captures the placement decision flight
	// log: every admit/route/place/reject/steal/requeue/migrate decision
	// with its candidate set, rejection reason and search statistics
	// (see decision.go; cmd/pacevm-explain reconstructs per-VM chains
	// from it). Passive and free when nil; ignored by RunReference.
	Recorder *DecisionRecorder
	// Watchdog, when non-nil, periodically re-derives the simulator's
	// core invariants — work conservation, queue sanity, capacity-index
	// sums, occupancy, energy integrals — during the run (see
	// watchdog.go). Checks are read-only: the run stays byte-identical
	// with or without it. Passive and free when nil; ignored by
	// RunReference.
	Watchdog *obs.Watchdog
}

// Consolidator proposes VM migrations for a live cloud snapshot.
type Consolidator interface {
	Propose(allocs []model.Key, vms []migrate.VM) (migrate.Plan, error)
}

// VMRecord is the audit trail of one VM.
type VMRecord struct {
	JobID      int
	Class      workload.Class
	Server     int
	Submit     units.Seconds
	Placed     units.Seconds
	Completion units.Seconds
	Deadline   units.Seconds
	Violated   bool
}

// Metrics are the evaluation's aggregate outcomes.
type Metrics struct {
	// Makespan is the workload execution time: latest completion minus
	// earliest submission.
	Makespan units.Seconds
	// Energy is the total energy consumed by all servers.
	Energy units.Joules
	// Violations counts VMs that missed their response-time deadline;
	// TotalVMs and TotalJobs size the workload.
	Violations int
	TotalVMs   int
	TotalJobs  int
	// AvgResponse and AvgWait are per-VM means.
	AvgResponse units.Seconds
	AvgWait     units.Seconds
	// PeakActiveServers is the high-water mark of simultaneously
	// powered-on servers; ActiveServerSeconds integrates powered-on time.
	PeakActiveServers   int
	ActiveServerSeconds float64
	// Migrations counts VM moves made by the Consolidator;
	// ServersDrained counts servers its plans emptied.
	Migrations     int
	ServersDrained int
	// Fault-injection outcomes; all zero in a fault-free run.
	// FaultsInjected counts crash events fired, VMsKilled the VMs those
	// crashes evicted, Requeues the synthetic single-VM requests that
	// re-entered admission, and WorkLost the nominal-seconds of progress
	// the checkpoint policy could not save. DownServerSeconds integrates
	// server downtime over the workload span.
	FaultsInjected    int
	VMsKilled         int
	Requeues          int
	WorkLost          units.Seconds
	DownServerSeconds float64
	// NominalWork is the workload's total demand in nominal-seconds
	// (Σ NominalTime × VMs over the submitted requests, re-queued redo
	// work excluded) — the goodput denominator's useful part.
	NominalWork units.Seconds
}

// SLAViolationPct is the paper's Fig.-7 metric.
func (m Metrics) SLAViolationPct() float64 {
	if m.TotalVMs == 0 {
		return 0
	}
	return 100 * float64(m.Violations) / float64(m.TotalVMs)
}

// AvailabilityPct is the fleet's availability over the workload span:
// the fraction of server-seconds in [first submission, last completion]
// during which the server was up, as a percentage.
func (m Metrics) AvailabilityPct(servers int) float64 {
	total := float64(servers) * float64(m.Makespan)
	if total <= 0 {
		return 100
	}
	pct := 100 * (1 - m.DownServerSeconds/total)
	if pct < 0 {
		return 0
	}
	return pct
}

// GoodputPct is the fraction of executed nominal-seconds that ended up
// in completed VMs rather than discarded by crashes: useful work over
// useful work plus work lost, as a percentage. 100 in a fault-free run.
func (m Metrics) GoodputPct() float64 {
	total := float64(m.NominalWork) + float64(m.WorkLost)
	if total <= 0 {
		return 100
	}
	return 100 * float64(m.NominalWork) / total
}

// Result is the simulation outcome.
type Result struct {
	Metrics
	// VMs is the per-VM audit trail (only when Config.RecordVMs).
	VMs []VMRecord
}

// maxJobVMs is the per-request VM ceiling enforced by trace.Request
// validation; it bounds the fixed-size placement scratch.
const maxJobVMs = 4

// vmSlotIDs are the per-request VM identifiers handed to strategies.
// Strategies treat IDs as opaque and only need uniqueness within one
// Place call, so a static table avoids a fmt.Sprintf per VM per
// placement attempt (the reference path keeps the legacy "j<job>-<i>"
// form; the golden tests prove the outputs match).
var vmSlotIDs = [maxJobVMs]string{"0", "1", "2", "3"}

// simVM is one running VM. Its work-left counter does NOT live here:
// remaining is owned by the hosting server's rem slice, parallel to
// vms, so that advance/reschedule — the integration loops that run on
// every event — stream two compact arrays instead of chasing a pointer
// per VM (the single largest cost at the 100k-server scale). rem[i]
// and cls[i] describe vms[i]; every splice maintains all three.
type simVM struct {
	id       int    // dense uid; the "vm<id>" string forms lazily
	uid      string // cached string form, built only for migration snapshots
	jobID    int
	class    workload.Class
	submit   units.Seconds
	placed   units.Seconds
	deadline units.Seconds // absolute; 0 = unconstrained
	nominal  units.Seconds
	// attempt is the VM's 1-based requeue-chain number; only maintained
	// when Config.Audit is attached (zero otherwise, and unread).
	attempt int
}

// uidString formats the VM's migration-snapshot identifier on first use.
func (vm *simVM) uidString() string {
	if vm.uid == "" {
		vm.uid = "vm" + strconv.Itoa(vm.id)
	}
	return vm.uid
}

// simServer is one physical server's live state.
type simServer struct {
	id  int
	vms []*simVM
	// rem[i]/cls[i] are vms[i]'s nominal-seconds of work left and its
	// workload class — the structure-of-arrays mirror the per-event
	// integration loops run over (see simVM).
	rem        []float64
	cls        []uint8
	alloc      model.Key
	lastUpdate units.Seconds
	energy     units.Joules
	next       eventq.Handle
	activeFrom units.Seconds // when the server began hosting; -1 if empty
	// hostedSeconds accumulates the time spent hosting at least one VM;
	// the remainder of the workload span is billed at idle power.
	hostedSeconds float64
	// ai memoizes the pricing of the current allocation (valid while
	// non-nil and aiKey == alloc): advance and reschedule price the same
	// unchanged allocation on every completion event, so the memo turns
	// two cache lookups per event into one pointer read. The pointee
	// lives in the dense pricing table (or its spill map), whose entries
	// are write-once — the pointer never dangles.
	ai    *allocInfo
	aiKey model.Key
}

// allocInfo caches model-database pricing per allocation key.
type allocInfo struct {
	rate  [workload.NumClasses]float64 // nominal-seconds per wall-second
	power units.Watts
}

// denseCachePerClass bounds the dense pricing array: keys whose
// per-class counts all fall below this are cached in a flat
// (bound+1)³-entry table indexed arithmetically from the key, anything
// larger (consolidator overfill past a huge admission limit) falls back
// to a lazily-allocated map. Placement prices a handful of candidate
// keys per request, and at 10M requests the map's hashing was ~10% of
// the whole run; the dense table turns a lookup into one multiply-add
// and two slab reads. 16 mirrors the resident-slab carve-out bound.
const denseCachePerClass = 16

// denseCache is one database's pricing cache: the dense table plus the
// out-of-range spill map (nil until first needed).
type denseCache struct {
	d    int // exclusive per-component bound of the dense table
	ok   []bool
	info []allocInfo
	over map[model.Key]*allocInfo
}

// slot maps a key to its dense-table index, or -1 when any component
// falls outside [0, d) and the key must take the spill map.
func (c *denseCache) slot(k model.Key) int {
	d := c.d
	if uint(k.NCPU) < uint(d) && uint(k.NMEM) < uint(d) && uint(k.NIO) < uint(d) {
		return (k.NCPU*d+k.NMEM)*d + k.NIO
	}
	return -1
}

// Event kinds on the simulator's future-event list. Arrivals no longer
// appear on the list — they live on the sim's sorted arrival cursor and
// merge at pop time — but the kind keeps its historical slot so the
// fault/completion values stay stable.
const (
	evKindArrival eventq.Kind = iota
	evKindCompletion
	evKindCrash
	evKindRecover
)

// Sequence bands for the deterministic event order. Arrivals and fault
// events carry pre-assigned sequence numbers (arrival i gets
// seqArrivalBase+i in routed order, the sorted fault schedule's entry j
// gets seqFaultBase+2j / +2j+1 for its crash/recover pair), while
// everything scheduled during the run — completions — lands in the
// event queue's own band above eventq.SeqRuntimeBase. At equal
// timestamps the pop order is therefore arrivals, then
// crashes/recoveries (with a touching Up/Down pair on one server
// resolving recover-first), then completions in scheduling order —
// exactly the order the historical schedule-everything-up-front loop
// produced, but now independent of *when* the events are admitted.
// That independence is what lets the sharded engine admit arrivals and
// faults lazily, one time window at a time, and still replay the
// monolithic run byte for byte. Arrivals live on the sim's cursor
// rather than the heap; the cursor's tie rule — an arrival at time t
// pops before any heap event at t — is this band order restated, since
// the arrival band lies below both others.
const (
	seqArrivalBase uint64 = 0
	seqFaultBase   uint64 = 1 << 40
)

// pendingArrival is one not-yet-admitted request on the arrival
// cursor: its index into sim.reqs plus the arrival-band sequence
// number admission assigned. The submit instant is denormalized into
// the entry so that sorting and the pop-loop's head peeks touch only
// this compact array, never the fat request structs (at 10M requests
// the comparator's random reads into reqs dominated the sort).
type pendingArrival struct {
	sub units.Seconds
	seq uint64
	idx int32
}

type sim struct {
	cfg    Config
	reqs   []trace.Request
	events eventq.Queue
	now    units.Seconds
	srv    []*simServer
	// arrQ is the pending-arrival stream, ordered by (Submit, seq) with
	// arrNext as its cursor. Arrivals used to be scheduled on the
	// future-event list up front, which made the heap O(requests): at
	// the 10M-request scale the sift path's cache misses dominated the
	// whole run (BENCH_sim.json's SimHuge gap). Keeping them in a flat
	// sorted array caps the heap at O(busy servers + pending faults) and
	// pops arrivals in O(1); the merge rule at pop time — an arrival
	// wins any tie on the timestamp — is exactly the sequence-band order
	// (arrivals < faults < completions) the heap produced, so the event
	// order is unchanged byte for byte. Run admits the whole input and
	// sorts once if it was not already sorted (arrDirty); the sharded
	// coordinator's windowed admission appends in routed order, which is
	// nondecreasing in (Submit, seq) by construction.
	arrQ     []pendingArrival
	arrNext  int
	arrDirty bool
	// queue is the FIFO of request indices awaiting placement; qhead is
	// its logical start (popping slides the head instead of reslicing,
	// with periodic compaction).
	queue []int
	qhead int
	// views is the placement-time fleet view handed to linear
	// strategies, kept in sync with srv allocations instead of being
	// rebuilt on every tryPlace.
	views []strategy.Server
	// fleet/indexed are set when the strategy places through the
	// capacity index; hinter additionally when it can answer job
	// feasibility from the index's free-capacity summary, which lets
	// drainQueue skip provably futile placement attempts.
	fleet   *strategy.FleetIndex
	indexed strategy.IndexedPlacer
	hinter  strategy.CapacityHinter
	// active is the incrementally-tracked count of servers currently
	// hosting at least one VM.
	active int
	// occ is the occupied-server bitmap (bit i set iff server i hosts at
	// least one VM), maintained at every residency 0↔>0 transition. The
	// consolidation sweep iterates set bits in id order instead of the
	// whole fleet, so a mostly-idle large fleet pays O(occupied), not
	// O(servers), per consolidation event.
	occ []uint64
	// dbs lists the distinct databases in use; caches and reference
	// times are kept per database.
	dbs   []*model.DB
	cache []denseCache
	refT  [][workload.NumClasses]units.Seconds
	// dbOf maps a server index to its database index.
	dbOf []int

	// Placement scratch, reused across tryPlace calls.
	vmbuf     [maxJobVMs]core.VMRequest
	assignBuf [maxJobVMs]int
	// vmfree pools retired simVM structs; vmChunk is the arena fresh
	// structs are carved from in blocks, so pool growth costs one
	// allocation per vmChunkSize VMs instead of one per VM (the
	// large-fleet alloc-scaling fix — peak live VMs grows with the
	// fleet).
	vmfree  []*simVM
	vmChunk []simVM

	// Fault-mode state (see faults.go); allocated only when the config
	// carries a schedule, so fault-free runs pay exactly one bool check
	// on the paths that consult it.
	faulty     bool
	checkpoint faults.CheckpointPolicy
	downSince  []units.Seconds // per server; -1 while up
	downLog    []downSpan
	// faultSch is the sorted crash/recover schedule; faultNext indexes
	// the first entry not yet placed on the event list
	// (scheduleFaultsUntil admits entries window by window).
	faultSch  faults.Schedule
	faultNext int
	// upViews is the compacted placement view over up servers only,
	// handed to linear strategies in fault mode instead of views and
	// maintained incrementally (splice on crash/recover, alloc updates
	// through viewPos). viewPos maps server id -> upViews index, -1 down.
	upViews []strategy.Server
	viewPos []int

	// stats/tr/audit/sampler are the telemetry hooks; with Config.Obs,
	// Config.Tracer, Config.Audit and Config.Sampler nil every hook is a
	// no-op (see obs.go, audit.go, sampler.go). nameBuf is the scratch
	// the trace hooks format event names in.
	stats   simStats
	tr      *obs.Tracer
	audit   *VMAudit
	sampler *FleetSampler
	nameBuf []byte
	// rec/wd are the decision flight recorder and the invariant
	// watchdog (nil when off, like the other telemetry handles).
	// explain is the strategy's Explainer view, resolved only when the
	// recorder is attached: PlaceExplained decides identically to Place
	// but also surfaces the search statistics the log captures.
	rec     *DecisionRecorder
	wd      *obs.Watchdog
	explain strategy.Explainer

	uidSeq      int
	records     []VMRecord
	metrics     Metrics
	responseSum float64
	waitSum     float64
	firstSubmit units.Seconds
	lastFinish  units.Seconds
	// loadLeft is the outstanding admitted-but-unfinished work in
	// nominal-seconds (Σ nominal×VMs at admission, redo work swapped in
	// at kills, each VM's nominal removed at retire). The sharded
	// coordinator reads it at window barriers to route new jobs to the
	// least-loaded shard.
	loadLeft float64
}

// Validate checks the user-facing configuration without normalizing
// defaults. Run and RunReference call it first (via validateConfig);
// callers assembling configs programmatically can call it early to
// surface wiring mistakes before building a workload.
func (cfg Config) Validate() error {
	if cfg.DB == nil {
		return errors.New("cloudsim: nil model database")
	}
	if cfg.Servers < 1 {
		return errors.New("cloudsim: need at least one server")
	}
	if cfg.Strategy == nil {
		return errors.New("cloudsim: nil strategy")
	}
	if cfg.MaxVMsPerServer < 0 {
		return errors.New("cloudsim: non-positive MaxVMsPerServer")
	}
	if cfg.MigrationCost < 0 {
		return fmt.Errorf("cloudsim: negative MigrationCost %v", cfg.MigrationCost)
	}
	if cfg.ServerDBs != nil && len(cfg.ServerDBs) != cfg.Servers {
		return fmt.Errorf("cloudsim: %d ServerDBs for %d servers", len(cfg.ServerDBs), cfg.Servers)
	}
	if err := cfg.Faults.Validate(cfg.Servers); err != nil {
		return fmt.Errorf("cloudsim: fault schedule: %w", err)
	}
	return nil
}

// validateConfig checks (Config.Validate) and then normalizes the
// configuration, shared by the optimized and reference runs.
func validateConfig(cfg Config, reqs []trace.Request) (Config, error) {
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	if cfg.MaxVMsPerServer == 0 {
		cfg.MaxVMsPerServer = 16
	}
	switch {
	case cfg.IdleServerPower == 0:
		cfg.IdleServerPower = 125
	case cfg.IdleServerPower < 0:
		cfg.IdleServerPower = 0
	}
	if cfg.Checkpoint == nil {
		cfg.Checkpoint = faults.Restart{}
	}
	if len(reqs) == 0 {
		return cfg, errors.New("cloudsim: empty request stream")
	}
	if len(reqs) > math.MaxInt32 {
		return cfg, fmt.Errorf("cloudsim: %d requests exceed the event index range", len(reqs))
	}
	return cfg, nil
}

// registerDBs maps each server onto its model database, validating
// reference times once per distinct database.
func registerDBs(cfg Config) (dbs []*model.DB, refT [][workload.NumClasses]units.Seconds, dbOf []int, err error) {
	dbIndex := map[*model.DB]int{}
	register := func(db *model.DB) (int, error) {
		if idx, ok := dbIndex[db]; ok {
			return idx, nil
		}
		var ref [workload.NumClasses]units.Seconds
		for _, c := range workload.Classes {
			ref[c] = db.Aux().RefTime[c]
			if ref[c] <= 0 {
				return 0, fmt.Errorf("cloudsim: database has no reference time for %v", c)
			}
		}
		dbIndex[db] = len(dbs)
		dbs = append(dbs, db)
		refT = append(refT, ref)
		return dbIndex[db], nil
	}
	dbOf = make([]int, cfg.Servers)
	for i := range dbOf {
		db := cfg.DB
		if cfg.ServerDBs != nil && cfg.ServerDBs[i] != nil {
			db = cfg.ServerDBs[i]
		}
		idx, err := register(db)
		if err != nil {
			return nil, nil, nil, err
		}
		dbOf[i] = idx
	}
	return dbs, refT, dbOf, nil
}

// Run simulates the request stream under the configured strategy.
func Run(cfg Config, reqs []trace.Request) (Result, error) {
	cfg, err := validateConfig(cfg, reqs)
	if err != nil {
		return Result{}, err
	}
	for i := range reqs {
		if err := reqs[i].Validate(); err != nil {
			return Result{}, err
		}
	}
	s, err := newSim(cfg, reqs)
	if err != nil {
		return Result{}, err
	}
	// The heap only ever holds one pending completion per server plus
	// the admitted fault events; arrivals live on the cursor.
	s.events.Reserve(cfg.Servers + 2*len(cfg.Faults))
	s.arrQ = make([]pendingArrival, 0, len(reqs))
	for i := range reqs {
		s.scheduleArrival(i, uint64(i))
	}
	inf := units.Seconds(math.Inf(1))
	s.scheduleFaultsUntil(inf)
	if err := s.runUntil(inf); err != nil {
		return Result{}, err
	}
	return s.finalize(s.firstSubmit, s.lastFinish)
}

// newSim builds the simulator state for a normalized config over a
// pre-validated request stream. No arrivals or fault events are on the
// event list yet — Run schedules the whole input up front, the sharded
// coordinator admits it one time window at a time.
func newSim(cfg Config, reqs []trace.Request) (*sim, error) {
	s := &sim{
		cfg:         cfg,
		reqs:        reqs,
		firstSubmit: units.Seconds(math.Inf(1)),
		tr:          cfg.Tracer,
	}
	s.stats.init(cfg.Obs)
	s.events.Instrument(cfg.Obs)
	if s.audit = cfg.Audit; s.audit != nil {
		s.audit.reset()
	}
	if s.sampler = cfg.Sampler; s.sampler != nil {
		s.sampler.reset(cfg.Servers)
	}
	if s.rec = cfg.Recorder; s.rec != nil {
		s.rec.reset()
		// The decision counters register only when a recorder is
		// attached, so recorder-off registry snapshots are unchanged.
		s.stats.initDecision(cfg.Obs)
		if ex, ok := cfg.Strategy.(strategy.Explainer); ok {
			s.explain = ex
		}
	}
	if s.wd = cfg.Watchdog; s.wd != nil {
		s.wd.Reset()
		s.wd.Bind(cfg.Obs)
		s.registerWatchdogChecks()
	}
	var err error
	if s.dbs, s.refT, s.dbOf, err = registerDBs(cfg); err != nil {
		return nil, err
	}
	d := cfg.MaxVMsPerServer + 1
	if d > denseCachePerClass+1 {
		d = denseCachePerClass + 1
	}
	s.cache = make([]denseCache, len(s.dbs))
	for i := range s.cache {
		s.cache[i] = denseCache{d: d, ok: make([]bool, d*d*d), info: make([]allocInfo, d*d*d)}
	}
	// Server state lives in two slabs — the structs themselves and a
	// shared resident-VM backing carved into per-server capped slices —
	// so fleet setup costs O(1) allocations instead of O(servers)
	// (pinned by TestFleetAllocScaling). A server's resident slice can
	// outgrow its carve-out only past the admission limit (consolidator
	// overfill), where append falls back to a private array.
	slab := make([]simServer, cfg.Servers)
	resCap := cfg.MaxVMsPerServer
	if resCap > 16 {
		resCap = 16
	}
	residents := make([]*simVM, cfg.Servers*resCap)
	remSlab := make([]float64, cfg.Servers*resCap)
	clsSlab := make([]uint8, cfg.Servers*resCap)
	s.srv = make([]*simServer, cfg.Servers)
	s.views = make([]strategy.Server, cfg.Servers)
	s.occ = make([]uint64, (cfg.Servers+63)/64)
	for i := range s.srv {
		slab[i] = simServer{
			id: i, activeFrom: -1,
			vms: residents[i*resCap : i*resCap : (i+1)*resCap],
			rem: remSlab[i*resCap : i*resCap : (i+1)*resCap],
			cls: clsSlab[i*resCap : i*resCap : (i+1)*resCap],
		}
		s.srv[i] = &slab[i]
		s.views[i] = strategy.Server{ID: i}
	}
	if ip, ok := cfg.Strategy.(strategy.IndexedPlacer); ok {
		s.indexed = ip
		s.fleet = strategy.NewFleetIndex(cfg.Servers, cfg.MaxVMsPerServer)
		if ch, ok := cfg.Strategy.(strategy.CapacityHinter); ok {
			s.hinter = ch
		}
	}
	s.traceSetup()
	if len(cfg.Faults) > 0 {
		s.setupFaults()
	}
	return s, nil
}

// scheduleArrival admits request idx onto the arrival cursor under a
// pre-assigned arrival-band sequence number and accounts its workload
// totals. In a monolithic run seq is simply idx; the sharded
// coordinator assigns global routing order instead. Admissions whose
// submit instants regress mark the cursor dirty; runUntil restores the
// sorted invariant before consuming it.
func (s *sim) scheduleArrival(idx int, seq uint64) {
	r := &s.reqs[idx]
	if r.Submit < s.firstSubmit {
		s.firstSubmit = r.Submit
	}
	if n := len(s.arrQ); n > s.arrNext && s.arrQ[n-1].sub > r.Submit {
		s.arrDirty = true
	}
	s.arrQ = append(s.arrQ, pendingArrival{sub: r.Submit, seq: seqArrivalBase + seq, idx: int32(idx)})
	s.metrics.TotalJobs++
	s.metrics.TotalVMs += r.VMs
	s.metrics.NominalWork += r.NominalTime * units.Seconds(r.VMs)
	s.loadLeft += float64(r.NominalTime) * float64(r.VMs)
}

// admitStolen admits a job handed off from another shard at a window
// barrier (see stealHandoff): the same accounting as scheduleArrival,
// but the cursor instant is the handoff time `at`, not the original
// Submit — the receiving shard's clock has moved past the submit, and
// re-entering in the past would rewind it. The request itself keeps its
// Submit, so wait and deadline accounting still span the whole queue
// time including the donor shard's.
func (s *sim) admitStolen(idx int, seq uint64, at units.Seconds) {
	r := &s.reqs[idx]
	if r.Submit < s.firstSubmit {
		s.firstSubmit = r.Submit
	}
	if n := len(s.arrQ); n > s.arrNext && s.arrQ[n-1].sub > at {
		s.arrDirty = true
	}
	s.arrQ = append(s.arrQ, pendingArrival{sub: at, seq: seqArrivalBase + seq, idx: int32(idx)})
	s.metrics.TotalJobs++
	s.metrics.TotalVMs += r.VMs
	s.metrics.NominalWork += r.NominalTime * units.Seconds(r.VMs)
	s.loadLeft += float64(r.NominalTime) * float64(r.VMs)
}

// unadmit reverses a queued job's admission accounting so it can be
// handed off to another shard; the caller pops it from the queue.
func (s *sim) unadmit(idx int) {
	r := &s.reqs[idx]
	s.metrics.TotalJobs--
	s.metrics.TotalVMs -= r.VMs
	s.metrics.NominalWork -= r.NominalTime * units.Seconds(r.VMs)
	s.loadLeft -= float64(r.NominalTime) * float64(r.VMs)
}

// sortArrivals restores the cursor's (Submit, seq) order after
// out-of-order admissions — an unsorted input stream handed to Run.
// Admissions carry strictly increasing seqs, so ordering by (sub, seq)
// with an unstable sort reproduces exactly the stable-by-Submit order
// the future-event list used to pop them in, without the stable sort's
// merge passes or the reflection-based swapper.
func (s *sim) sortArrivals() {
	slices.SortFunc(s.arrQ[s.arrNext:], func(a, b pendingArrival) int {
		switch {
		case a.sub != b.sub:
			if a.sub < b.sub {
				return -1
			}
			return 1
		case a.seq < b.seq:
			return -1
		default:
			return 1
		}
	})
	s.arrDirty = false
}

// nextPendingInstant is the earliest instant anything is scheduled to
// happen: the arrival cursor's head or the future-event list's top.
// The sharded coordinator reads it at barriers to bound its windows.
func (s *sim) nextPendingInstant() (units.Seconds, bool) {
	at, ok := s.events.Peek()
	if s.arrNext < len(s.arrQ) {
		if a := s.arrQ[s.arrNext].sub; !ok || a < at {
			return a, true
		}
	}
	return at, ok
}

// runUntil processes events with timestamps strictly below limit (pass
// +Inf to drain the list). On return every effect of events before
// limit — placements, completions, fault re-queues — has been applied.
// The arrival cursor merges with the future-event list here: at equal
// timestamps an arrival pops first, which is the sequence-band order
// (arrivals < faults < completions) of the historical all-on-one-heap
// loop, so the event order is unchanged.
func (s *sim) runUntil(limit units.Seconds) error {
	if s.arrDirty {
		s.sortArrivals()
	}
	for {
		at, ok := s.events.Peek()
		if s.arrNext < len(s.arrQ) {
			if a := s.arrQ[s.arrNext].sub; !ok || a <= at {
				if a >= limit {
					return nil
				}
				idx := int(s.arrQ[s.arrNext].idx)
				s.arrNext++
				s.now = a
				s.stats.eventsPopped.Inc()
				s.queue = append(s.queue, idx)
				s.stats.queueDepthHW.SetMax(int64(s.qlen()))
				s.traceArrival(idx)
				s.traceQueueDepth()
				if s.rec != nil {
					s.recordAdmit(idx)
				}
				if err := s.drainQueue(); err != nil {
					return err
				}
				// Tick after the event's effects are applied: a sweep must
				// see consistent state, never a popped-but-unqueued request.
				s.wd.Tick(float64(a))
				continue
			}
		}
		if !ok || at >= limit {
			return nil
		}
		_, ev, _ := s.events.Pop()
		s.now = at
		s.stats.eventsPopped.Inc()
		switch ev.Kind {
		case evKindCompletion:
			if err := s.complete(int(ev.Arg)); err != nil {
				return err
			}
			if err := s.consolidate(); err != nil {
				return err
			}
			if err := s.drainQueue(); err != nil {
				return err
			}
		case evKindCrash:
			if err := s.crash(int(ev.Arg)); err != nil {
				return err
			}
			if err := s.drainQueue(); err != nil {
				return err
			}
		case evKindRecover:
			if err := s.recoverServer(int(ev.Arg)); err != nil {
				return err
			}
			if err := s.drainQueue(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("cloudsim: unknown event kind %d", ev.Kind)
		}
		s.wd.Tick(float64(at))
	}
}

// finalize folds per-server energy and active time over the workload
// span [first, last] and returns the run's result. Run passes the span
// its own events established; the sharded coordinator passes the global
// span so every shard bills idle power over the same window.
func (s *sim) finalize(first, last units.Seconds) (Result, error) {
	// One last watchdog sweep over the end-of-run state, before the
	// idle-energy fold below rewrites the per-server integrals.
	s.wd.RunChecks(float64(s.now))
	if n := s.qlen(); n > 0 {
		return Result{}, fmt.Errorf("cloudsim: %d jobs still queued at end of simulation (strategy starved them)", n)
	}
	if n := len(s.arrQ) - s.arrNext; n > 0 {
		return Result{}, fmt.Errorf("cloudsim: %d admitted arrivals never reached the event loop", n)
	}
	s.firstSubmit, s.lastFinish = first, last

	// Each provisioned server draws the fixed idle power for every
	// second of the workload span it spends hosting nothing (while
	// hosting, the model record's average power — which includes the
	// idle floor — was integrated). Downtime draws nothing: a crashed
	// server is powered off, so its down-seconds within the span are
	// carved out of the idle billing.
	span := last - first
	downBySrv := s.foldDowntime()
	for _, sv := range s.srv {
		if len(sv.vms) != 0 {
			return Result{}, fmt.Errorf("cloudsim: server %d still hosts %d VMs at end", sv.id, len(sv.vms))
		}
		idle := float64(span) - sv.hostedSeconds
		if downBySrv != nil {
			idle -= downBySrv[sv.id]
		}
		if idle > 0 {
			e := s.cfg.IdleServerPower.Times(units.Seconds(idle))
			sv.energy += e
			if s.sampler != nil {
				s.sampler.addIdle(e)
			}
		}
		s.metrics.Energy += sv.energy
	}
	if s.metrics.TotalVMs > 0 {
		s.metrics.AvgResponse = units.Seconds(s.responseSum / float64(s.metrics.TotalVMs))
		s.metrics.AvgWait = units.Seconds(s.waitSum / float64(s.metrics.TotalVMs))
	}
	s.metrics.Makespan = span
	return Result{Metrics: s.metrics, VMs: s.records}, nil
}

// qlen is the number of queued (not yet placed) requests.
func (s *sim) qlen() int { return len(s.queue) - s.qhead }

// qat returns the i-th queued request index (0 = head).
func (s *sim) qat(i int) int { return s.queue[s.qhead+i] }

// qpophead drops the head, compacting the backing slice once the dead
// prefix dominates it.
func (s *sim) qpophead() {
	s.qhead++
	if s.qhead >= 64 && s.qhead*2 >= len(s.queue) {
		n := copy(s.queue, s.queue[s.qhead:])
		s.queue = s.queue[:n]
		s.qhead = 0
	}
}

// qremove splices out the i-th queued request (i > 0).
func (s *sim) qremove(i int) {
	j := s.qhead + i
	copy(s.queue[j:], s.queue[j+1:])
	s.queue = s.queue[:len(s.queue)-1]
}

// zeroAllocInfo is what an empty allocation prices to: no progress, no
// power. Shared so info can hand out a pointer without allocating.
var zeroAllocInfo allocInfo

// info prices an allocation on a given server, caching database
// estimates per hardware class. The returned pointer aims into the
// dense table (or its spill map), whose entries are write-once, so
// callers and the per-server memo may hold it indefinitely.
func (s *sim) info(server int, k model.Key) (*allocInfo, error) {
	if k.IsZero() {
		return &zeroAllocInfo, nil
	}
	di := s.dbOf[server]
	ca := &s.cache[di]
	slot := ca.slot(k)
	if slot >= 0 {
		if ca.ok[slot] {
			s.stats.pricingHits.Inc()
			return &ca.info[slot], nil
		}
	} else if ai, ok := ca.over[k]; ok {
		s.stats.pricingHits.Inc()
		return ai, nil
	}
	s.stats.pricingMisses.Inc()
	rec, err := s.dbs[di].Estimate(k)
	if err != nil {
		return nil, fmt.Errorf("cloudsim: pricing %v: %w", k, err)
	}
	var ai allocInfo
	ai.power = rec.AvgPower()
	for _, c := range workload.Classes {
		ct := rec.ClassTime(c)
		if ct <= 0 {
			return nil, fmt.Errorf("cloudsim: record %v has no usable time for %v", k, c)
		}
		ai.rate[c] = float64(s.refT[di][c]) / float64(ct)
	}
	if slot >= 0 {
		ca.info[slot], ca.ok[slot] = ai, true
		return &ca.info[slot], nil
	}
	if ca.over == nil {
		ca.over = map[model.Key]*allocInfo{}
	}
	p := new(allocInfo)
	*p = ai
	ca.over[k] = p
	return p, nil
}

// infoFor prices a server's *current* allocation, memoized on the
// server until the allocation changes. advance and reschedule price the
// same unchanged key on every completion event, so the memo replaces
// the per-database cache probe with one pointer read on the hot path; a
// memo hit still counts as a pricing-cache hit.
func (s *sim) infoFor(sv *simServer) (*allocInfo, error) {
	if sv.ai != nil && sv.aiKey == sv.alloc {
		s.stats.pricingHits.Inc()
		return sv.ai, nil
	}
	ai, err := s.info(sv.id, sv.alloc)
	if err != nil {
		return nil, err
	}
	sv.ai, sv.aiKey = ai, sv.alloc
	return ai, nil
}

// applyAlloc shifts a server's allocation by delta VMs of class c,
// keeping the placement views and the capacity index in sync.
func (s *sim) applyAlloc(sv *simServer, c workload.Class, delta int) {
	sv.alloc = sv.alloc.Add(model.KeyFor(c, delta))
	s.views[sv.id].Alloc = sv.alloc
	if s.faulty {
		if p := s.viewPos[sv.id]; p >= 0 {
			s.upViews[p].Alloc = sv.alloc
		}
	}
	if s.fleet != nil {
		s.fleet.Add(sv.id, delta)
	}
}

// advance integrates a server's VM progress and energy up to now.
func (s *sim) advance(sv *simServer) error {
	dt := s.now - sv.lastUpdate
	if dt < 0 {
		return fmt.Errorf("cloudsim: time ran backwards on server %d", sv.id)
	}
	if dt > 0 && len(sv.vms) > 0 {
		ai, err := s.infoFor(sv)
		if err != nil {
			return err
		}
		fdt := float64(dt)
		rem, cls := sv.rem, sv.cls
		for i := range rem {
			rem[i] -= ai.rate[cls[i]] * fdt
		}
		sv.energy += ai.power.Times(dt)
		// One Fig.-4 interval closed: the resident set was constant over
		// [lastUpdate, now) and its progress/energy just integrated.
		s.stats.intervalsClosed.Inc()
		if s.sampler != nil {
			s.sampler.interval(s.now, sv.id, ai.power, len(sv.vms), dt, s.active, s.qlen())
		}
	}
	sv.lastUpdate = s.now
	return nil
}

// reschedule recomputes the server's next completion event, moving the
// pending one in place when there is one (an in-place move costs one
// sift; a cancel-and-reinsert pair costs two on a heap this hot).
func (s *sim) reschedule(sv *simServer) error {
	if len(sv.vms) == 0 {
		s.events.Cancel(sv.next)
		sv.next = eventq.Handle{}
		return nil
	}
	ai, err := s.infoFor(sv)
	if err != nil {
		return err
	}
	// Rates are validated at allocInfo construction (info errors on any
	// non-positive class time), and a server with residents always has a
	// non-zero alloc key, so every rate read here is positive — no
	// per-VM guard in the scan.
	best := math.MaxFloat64
	for i, rem := range sv.rem {
		if rem < 0 {
			rem = 0
		}
		fin := rem / ai.rate[sv.cls[i]]
		if fin < best {
			best = fin
		}
	}
	ev := eventq.Event{Kind: evKindCompletion, Arg: int32(sv.id)}
	if h, ok := s.events.Reschedule(sv.next, s.now+units.Seconds(best), ev); ok {
		sv.next = h
		return nil
	}
	sv.next = s.events.Schedule(s.now+units.Seconds(best), ev)
	return nil
}

// complete handles a server's completion event: it retires every VM whose
// work has run out.
func (s *sim) complete(serverIdx int) error {
	sv := s.srv[serverIdx]
	// Fused advance + retirement scan: one pass over the resident slabs
	// both integrates progress and splits out finished VMs, where a
	// s.advance(sv) call followed by the compaction would walk them
	// twice. The arithmetic is advance's exactly (r -= rate*dt in slab
	// order), so results stay bit-identical to the unfused path.
	dt := s.now - sv.lastUpdate
	if dt < 0 {
		return fmt.Errorf("cloudsim: time ran backwards on server %d", sv.id)
	}
	ai := &zeroAllocInfo
	fdt := float64(dt)
	if dt > 0 && len(sv.vms) > 0 {
		var err error
		ai, err = s.infoFor(sv)
		if err != nil {
			return err
		}
		sv.energy += ai.power.Times(dt)
		// One Fig.-4 interval closed: the resident set was constant over
		// [lastUpdate, now) and its progress/energy just integrated.
		s.stats.intervalsClosed.Inc()
		if s.sampler != nil {
			s.sampler.interval(s.now, sv.id, ai.power, len(sv.vms), dt, s.active, s.qlen())
		}
	}
	sv.lastUpdate = s.now
	const eps = 1e-6
	wasHosting := len(sv.vms) > 0
	w := 0
	for i, vm := range sv.vms {
		// When dt == 0 the zero-valued ai contributes rate 0 and the
		// subtraction is exact identity, matching advance's skip.
		r := sv.rem[i] - ai.rate[sv.cls[i]]*fdt
		if r > eps {
			if w != i {
				sv.vms[w], sv.cls[w] = vm, sv.cls[i]
			}
			sv.rem[w] = r
			w++
			continue
		}
		s.applyAlloc(sv, vm.class, -1)
		s.retire(sv, vm)
		s.recycle(vm)
	}
	for i := w; i < len(sv.vms); i++ {
		sv.vms[i] = nil
	}
	sv.vms, sv.rem, sv.cls = sv.vms[:w], sv.rem[:w], sv.cls[:w]
	if len(sv.vms) == 0 {
		s.clearOcc(sv.id)
		if sv.activeFrom >= 0 {
			s.traceHosting(sv, sv.activeFrom)
			hosted := float64(s.now - sv.activeFrom)
			s.metrics.ActiveServerSeconds += hosted
			sv.hostedSeconds += hosted
			sv.activeFrom = -1
		}
		if wasHosting {
			s.active--
			if s.sampler != nil {
				s.sampler.serverIdle(sv.id)
			}
		}
	}
	return s.reschedule(sv)
}

// retire records a finished VM's metrics.
func (s *sim) retire(sv *simServer, vm *simVM) {
	if s.now > s.lastFinish {
		s.lastFinish = s.now
	}
	s.loadLeft -= float64(vm.nominal)
	response := s.now - vm.submit
	s.responseSum += float64(response)
	s.waitSum += float64(vm.placed - vm.submit)
	violated := vm.deadline > 0 && s.now > vm.deadline
	if violated {
		s.metrics.Violations++
	}
	s.stats.vmWait.Observe(float64(vm.placed - vm.submit))
	s.stats.vmStretch.Observe(stretchOf(vm, s.now))
	if s.audit != nil {
		s.audit.finish(vm, sv.id, s.now, violated)
	}
	s.traceVMRetire(sv, vm, violated)
	if s.cfg.RecordVMs {
		s.records = append(s.records, VMRecord{
			JobID:      vm.jobID,
			Class:      vm.class,
			Server:     sv.id,
			Submit:     vm.submit,
			Placed:     vm.placed,
			Completion: s.now,
			Deadline:   vm.deadline,
			Violated:   violated,
		})
	}
}

// recycle returns a retired VM's struct to the pool.
func (s *sim) recycle(vm *simVM) {
	*vm = simVM{}
	s.vmfree = append(s.vmfree, vm)
}

// vmChunkSize is the arena block newVM carves fresh structs from.
const vmChunkSize = 256

// setOcc / clearOcc maintain the occupied-server bitmap; both are
// idempotent, so transition sites may call them without re-checking the
// previous residency.
func (s *sim) setOcc(id int)   { s.occ[id>>6] |= 1 << (id & 63) }
func (s *sim) clearOcc(id int) { s.occ[id>>6] &^= 1 << (id & 63) }

// newVM takes a VM struct from the pool, or carves one from the arena.
func (s *sim) newVM() *simVM {
	if n := len(s.vmfree); n > 0 {
		vm := s.vmfree[n-1]
		s.vmfree[n-1] = nil
		s.vmfree = s.vmfree[:n-1]
		return vm
	}
	if len(s.vmChunk) == 0 {
		s.vmChunk = make([]simVM, vmChunkSize)
	}
	vm := &s.vmChunk[0]
	s.vmChunk = s.vmChunk[1:]
	return vm
}

// consolidate snapshots the live cloud for the Consolidator and applies
// the returned migration plan: each moved VM is advanced to now, moved,
// and charged the migration cost as additional nominal work.
func (s *sim) consolidate() error {
	if s.cfg.Consolidator == nil {
		return nil
	}
	allocs := make([]model.Key, len(s.srv))
	var snapshot []migrate.VM
	byUID := map[string]*simVM{}
	// Walk only the occupied servers, in id order (bit order). An empty
	// server contributes a zero alloc key (already the slice's zero
	// value) and no snapshot entries, and advancing it would only touch
	// lastUpdate — no energy, intervals, or samples accrue without
	// residents — so skipping it is observationally identical and the
	// sweep is O(occupied servers), not O(fleet).
	for w, word := range s.occ {
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			sv := s.srv[i]
			// Bring accounting up to now so Remaining values are current.
			if err := s.advance(sv); err != nil {
				return err
			}
			allocs[i] = sv.alloc
			for vi, vm := range sv.vms {
				budget := units.Seconds(0)
				if vm.deadline > 0 {
					budget = vm.deadline - s.now
					if budget < 0 {
						budget = 0 // already violated; free to move
					}
				}
				rem := sv.rem[vi]
				if rem < 0 {
					rem = 0
				}
				uid := vm.uidString()
				snapshot = append(snapshot, migrate.VM{
					ID:        uid,
					Class:     vm.class,
					Server:    i,
					Remaining: units.Seconds(rem),
					Budget:    budget,
				})
				byUID[uid] = vm
			}
		}
	}
	if len(snapshot) == 0 {
		return nil
	}
	plan, err := s.cfg.Consolidator.Propose(allocs, snapshot)
	if err != nil {
		return fmt.Errorf("cloudsim: consolidator: %w", err)
	}
	if len(plan.Moves) == 0 {
		return nil
	}
	touched := make([]int, 0, 2*len(plan.Moves))
	for _, mv := range plan.Moves {
		vm := byUID[mv.VMID]
		if vm == nil || mv.From < 0 || mv.From >= len(s.srv) || mv.To < 0 || mv.To >= len(s.srv) || mv.From == mv.To {
			return fmt.Errorf("cloudsim: consolidator returned invalid move %+v", mv)
		}
		if s.faulty && s.downSince[mv.To] >= 0 {
			// The consolidator's snapshot carries no liveness, so a plan
			// may target a crashed server; skip the move (counted) rather
			// than abort a healthy run.
			s.stats.movesToDownSkipped.Inc()
			if s.rec != nil {
				s.recordMigrate(vm.id, vm.jobID, mv.From, mv.To, MigrateTargetDown)
			}
			continue
		}
		from, to := s.srv[mv.From], s.srv[mv.To]
		idx := -1
		for i, resident := range from.vms {
			if resident == vm {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("cloudsim: move %+v: VM not on source server", mv)
		}
		movedRem := from.rem[idx] + float64(s.cfg.MigrationCost)
		movedCls := from.cls[idx]
		from.vms = append(from.vms[:idx], from.vms[idx+1:]...)
		from.rem = append(from.rem[:idx], from.rem[idx+1:]...)
		from.cls = append(from.cls[:idx], from.cls[idx+1:]...)
		s.applyAlloc(from, vm.class, -1)
		if len(to.vms) == 0 && to.activeFrom < 0 {
			to.activeFrom = s.now
			s.active++
		}
		to.vms = append(to.vms, vm)
		to.rem = append(to.rem, movedRem)
		to.cls = append(to.cls, movedCls)
		s.setOcc(mv.To)
		s.applyAlloc(to, vm.class, 1)
		touched = append(touched, mv.From, mv.To)
		s.metrics.Migrations++
		if s.rec != nil {
			s.recordMigrate(vm.id, vm.jobID, mv.From, mv.To, "")
		}
	}
	s.metrics.ServersDrained += plan.ServersDrained
	// Server-order iteration keeps event tie-breaking deterministic (see
	// tryPlace): sort the touched ids and skip duplicates instead of
	// probing a membership map across the whole fleet.
	slices.Sort(touched)
	prev := -1
	for _, i := range touched {
		if i == prev {
			continue
		}
		prev = i
		sv := s.srv[i]
		if len(sv.vms) == 0 {
			s.clearOcc(i)
			if sv.activeFrom >= 0 {
				s.traceHosting(sv, sv.activeFrom)
				hosted := float64(s.now - sv.activeFrom)
				s.metrics.ActiveServerSeconds += hosted
				sv.hostedSeconds += hosted
				sv.activeFrom = -1
				s.active--
				if s.sampler != nil {
					s.sampler.serverIdle(sv.id)
				}
			}
		}
		if err := s.reschedule(sv); err != nil {
			return err
		}
	}
	return nil
}

// drainQueue attempts FIFO placement of waiting jobs, stopping at the
// first job the strategy cannot place (FCFS without backfilling, so a
// blocked head preserves submission order). With Config.BackfillDepth
// set, up to that many jobs behind a blocked head are offered too: the
// window is scanned once in submission order — a successful backfill
// splices the job out (the next candidate slides into its position) and
// re-checks the head, rather than restarting the window from scratch.
func (s *sim) drainQueue() error {
	// noFit memoizes the smallest VM count the capacity summary has
	// proved unplaceable during this drain. Free capacity only shrinks
	// while draining (placements consume it, nothing releases it), and
	// exact CanFit answers are monotone in job size, so the threshold
	// stays valid for the whole call.
	noFit := int(^uint(0) >> 1)
	for s.qlen() > 0 {
		headOK := false
		if s.mayFit(s.qat(0), &noFit) {
			ok, err := s.tryPlace(s.qat(0))
			if err != nil {
				return err
			}
			headOK = ok
		}
		if headOK {
			s.qpophead()
			s.traceQueueDepth()
			continue
		}
		// Head blocked: one pass over the backfill window.
		headPlaced := false
		for i := 1; i < s.qlen() && i <= s.cfg.BackfillDepth; {
			if !s.mayFit(s.qat(i), &noFit) {
				i++
				continue
			}
			ok, err := s.tryPlace(s.qat(i))
			if err != nil {
				return err
			}
			if !ok {
				i++
				continue
			}
			s.stats.backfillSplices.Inc()
			s.qremove(i)
			s.traceQueueDepth()
			// Re-check the head right after a successful backfill: if it
			// fits now, the FCFS drain resumes; otherwise keep scanning
			// from the same position.
			if !s.mayFit(s.qat(0), &noFit) {
				continue
			}
			ok, err = s.tryPlace(s.qat(0))
			if err != nil {
				return err
			}
			if ok {
				s.qpophead()
				s.traceQueueDepth()
				headPlaced = true
				break
			}
		}
		if !headPlaced {
			return nil
		}
	}
	return nil
}

// mayFit reports whether a placement attempt for request idx could
// possibly succeed right now. A false return is backed by the capacity
// summary's exact first-fit feasibility count — the attempt is provably
// futile and drainQueue skips it, which is what turns a long blocked
// queue's per-event rescan from O(queue × placement) into O(queue)
// summary lookups. noFit is the caller's scan memo (see drainQueue):
// jobs at or above an already-proved-unplaceable size skip the summary
// query too. Without a hinting strategy every attempt proceeds.
func (s *sim) mayFit(idx int, noFit *int) bool {
	if s.hinter == nil {
		return true
	}
	n := s.reqs[idx].VMs
	if n >= *noFit {
		s.stats.fitSkips.Inc()
		if s.rec != nil {
			s.recordReject(idx, RejectFitWatermark)
		}
		return false
	}
	fits, exact := s.hinter.CanFit(s.fleet, n)
	if fits || !exact {
		return true
	}
	*noFit = n
	s.stats.fitSkips.Inc()
	if s.rec != nil {
		s.recordReject(idx, RejectFitSummary)
	}
	return false
}

// tryPlace asks the strategy to place one request and commits the
// placement if accepted. ok=false means the job waits; a non-nil error
// means the simulation state is unrecoverable (a mid-commit accounting
// failure must abort the run, not strand half-placed VMs while the job
// stays queued).
func (s *sim) tryPlace(idx int) (bool, error) {
	s.stats.placeAttempts.Inc()
	req := &s.reqs[idx]
	vms := s.vmbuf[:req.VMs]
	for i := range vms {
		// The allocator's QoS input is the request's maximum execution
		// time — a static property of the request (Sect. III.D), which is
		// what bounds how deeply the proactive strategies consolidate.
		// Whether the response-time deadline (submission + MaxResponse)
		// was ultimately met is judged at completion.
		vms[i] = core.VMRequest{
			ID:          vmSlotIDs[i],
			Class:       req.Class,
			NominalTime: req.NominalTime,
			MaxTime:     req.MaxResponse,
		}
	}
	var assign []int
	var ok bool
	var info *strategy.PlaceInfo
	if s.indexed != nil {
		// The index itself excludes down servers (FleetIndex.SetDown).
		assign, ok = s.indexed.PlaceIndexed(s.fleet, vms, s.assignBuf[:])
	} else {
		views := s.views
		if s.faulty {
			// Linear strategies see only the up servers; assignments are
			// by server ID, so the compacted view needs no translation.
			views = s.upViews
		}
		// A linear Place walks the whole (up-)fleet view: O(servers).
		s.stats.fleetScans.Inc()
		if s.explain != nil {
			// Recorder on and the strategy explains itself: decide through
			// PlaceExplained — identical decisions by the Explainer
			// contract, plus the search stats the flight log captures.
			var pi strategy.PlaceInfo
			assign, ok, pi = s.explain.PlaceExplained(views, vms)
			info = &pi
		} else {
			assign, ok = s.cfg.Strategy.Place(views, vms)
		}
	}
	if !ok {
		s.stats.placeRejected.Inc()
		if s.rec != nil {
			reason := RejectStrategy
			if info != nil && info.Waited {
				reason = RejectQoSWait
			}
			s.recordReject(idx, reason)
		}
		return false, nil
	}
	if len(assign) != len(vms) {
		// A strategy bug; refuse the placement rather than corrupt state.
		s.stats.placeRejected.Inc()
		if s.rec != nil {
			s.recordReject(idx, RejectStrategyInvalid)
		}
		return false, nil
	}
	// Validate before mutating: server bounds and the admission cap,
	// with per-server add counts collected in fixed scratch.
	var targets, counts [maxJobVMs]int
	nt := 0
	for _, a := range assign {
		if a < 0 || a >= len(s.srv) || (s.faulty && s.downSince[a] >= 0) {
			// Out-of-range or down target: a strategy bug; refuse it.
			s.stats.placeRejected.Inc()
			if s.rec != nil {
				s.recordReject(idx, RejectStrategyInvalid)
			}
			return false, nil
		}
		seen := false
		for t := 0; t < nt; t++ {
			if targets[t] == a {
				counts[t]++
				seen = true
				break
			}
		}
		if !seen {
			targets[nt], counts[nt] = a, 1
			nt++
		}
	}
	for t := 0; t < nt; t++ {
		if s.srv[targets[t]].alloc.Total()+counts[t] > s.cfg.MaxVMsPerServer {
			s.stats.placeRejected.Inc()
			if s.rec != nil {
				s.recordReject(idx, RejectAdmissionCap)
			}
			return false, nil
		}
	}
	// Bring every target server's accounting up to now before mutating
	// its allocation (the closing of a Fig.-4 interval). Iterate in
	// server order: rescheduling enqueues events whose FIFO tie-break
	// among equal timestamps must not depend on iteration order, or the
	// simulation loses determinism.
	for i := 1; i < nt; i++ {
		for j := i; j > 0 && targets[j] < targets[j-1]; j-- {
			targets[j], targets[j-1] = targets[j-1], targets[j]
		}
	}
	for t := 0; t < nt; t++ {
		if err := s.advance(s.srv[targets[t]]); err != nil {
			return false, err
		}
	}
	deadline := req.Submit + req.MaxResponse
	var uids [maxJobVMs]int
	for vi, a := range assign {
		sv := s.srv[a]
		if len(sv.vms) == 0 {
			if sv.activeFrom < 0 {
				sv.activeFrom = s.now
			}
			s.active++
			s.setOcc(a)
		}
		s.uidSeq++
		uids[vi] = s.uidSeq
		vm := s.newVM()
		vm.id = s.uidSeq
		vm.jobID = req.ID
		vm.class = req.Class
		vm.submit = req.Submit
		vm.placed = s.now
		vm.deadline = deadline
		vm.nominal = req.NominalTime
		if s.audit != nil {
			vm.attempt = s.audit.attemptOf(idx)
		}
		sv.vms = append(sv.vms, vm)
		sv.rem = append(sv.rem, float64(req.NominalTime))
		sv.cls = append(sv.cls, uint8(req.Class))
		s.applyAlloc(sv, req.Class, 1)
	}
	for t := 0; t < nt; t++ {
		if err := s.reschedule(s.srv[targets[t]]); err != nil {
			return false, err
		}
	}
	if s.active > s.metrics.PeakActiveServers {
		s.metrics.PeakActiveServers = s.active
	}
	s.tracePlaced(idx, assign[0])
	if s.rec != nil {
		s.recordPlace(idx, assign, uids[:len(vms)], info)
	}
	return true, nil
}

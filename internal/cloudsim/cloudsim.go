// Package cloudsim is the datacenter-level discrete-event simulator of
// Sect. IV: it replays preprocessed workload traces against a cloud of
// identical servers, places job requests through a pluggable strategy
// (first-fit variants or the paper's PROACTIVE algorithm), and accounts
// execution time and energy with the model database exactly as the
// paper's Fig. 4 prescribes — whenever a server's resident set changes an
// interval closes, a VM's progress is the duration-weighted composition
// of the per-interval model rates, and a server's energy is the
// duration-weighted sum of per-interval model power, with the paper's
// fixed 125 W floor while a server is powered on and nothing while it is
// off.
//
// Metrics follow Sect. IV.C: makespan (difference between the earliest
// submission and the latest completion), energy consumption in Joules,
// and the percentage of SLA violations (missed maximum-response-time
// deadlines summed over all applications). Scheduling and provisioning
// overheads are not modelled, as in the paper.
package cloudsim

import (
	"errors"
	"fmt"

	"pacevm/internal/core"
	"pacevm/internal/eventq"
	"pacevm/internal/migrate"
	"pacevm/internal/model"
	"pacevm/internal/strategy"
	"pacevm/internal/trace"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// Config parameterizes a simulation run.
type Config struct {
	// DB is the model database used to price allocations.
	DB *model.DB
	// ServerDBs optionally assigns a different model database to
	// individual servers — the heterogeneous-hardware extension, where
	// each hardware class carries its own benchmarking campaign. When
	// provided it must have one entry per server; nil entries fall back
	// to DB.
	ServerDBs []*model.DB
	// Servers is the cloud size (the paper's SMALLER and LARGER clouds
	// differ only here, by ~15 %).
	Servers int
	// Strategy decides placements.
	Strategy strategy.Strategy
	// MaxVMsPerServer is the physical admission limit (defaults to 16,
	// the testbed's base-test ceiling).
	MaxVMsPerServer int
	// IdleServerPower is drawn by every provisioned server while it
	// hosts nothing — the paper "assume[s] a fixed power dissipation of
	// 125 W when a server" is on, and sizes its clouds so that "in the
	// SMALLER system there are fewer servers consuming energy". Defaults
	// to 125 W; set negative to model power-gated (0 W) idle servers
	// instead.
	IdleServerPower units.Watts
	// Consolidator, when non-nil, is invoked after completion events
	// with a snapshot of the live cloud and may return migration moves
	// (the dynamic-placement baseline of the paper's related work; see
	// internal/migrate). Each migrated VM pays MigrationCost as
	// additional nominal work — the live-migration downtime and
	// dirty-page slowdown.
	Consolidator  Consolidator
	MigrationCost units.Seconds
	// BackfillDepth loosens the FCFS queue: when the head job cannot be
	// placed, up to this many jobs behind it are tried (aggressive
	// backfilling — small jobs may jump ahead and delay the head, the
	// classic fairness/utilization trade). Zero keeps the paper's strict
	// FCFS-without-backfilling behaviour.
	BackfillDepth int
	// RecordVMs retains the per-VM audit trail in the result.
	RecordVMs bool
}

// Consolidator proposes VM migrations for a live cloud snapshot.
type Consolidator interface {
	Propose(allocs []model.Key, vms []migrate.VM) (migrate.Plan, error)
}

// VMRecord is the audit trail of one VM.
type VMRecord struct {
	JobID      int
	Class      workload.Class
	Server     int
	Submit     units.Seconds
	Placed     units.Seconds
	Completion units.Seconds
	Deadline   units.Seconds
	Violated   bool
}

// Metrics are the evaluation's aggregate outcomes.
type Metrics struct {
	// Makespan is the workload execution time: latest completion minus
	// earliest submission.
	Makespan units.Seconds
	// Energy is the total energy consumed by all servers.
	Energy units.Joules
	// Violations counts VMs that missed their response-time deadline;
	// TotalVMs and TotalJobs size the workload.
	Violations int
	TotalVMs   int
	TotalJobs  int
	// AvgResponse and AvgWait are per-VM means.
	AvgResponse units.Seconds
	AvgWait     units.Seconds
	// PeakActiveServers is the high-water mark of simultaneously
	// powered-on servers; ActiveServerSeconds integrates powered-on time.
	PeakActiveServers   int
	ActiveServerSeconds float64
	// Migrations counts VM moves made by the Consolidator;
	// ServersDrained counts servers its plans emptied.
	Migrations     int
	ServersDrained int
}

// SLAViolationPct is the paper's Fig.-7 metric.
func (m Metrics) SLAViolationPct() float64 {
	if m.TotalVMs == 0 {
		return 0
	}
	return 100 * float64(m.Violations) / float64(m.TotalVMs)
}

// Result is the simulation outcome.
type Result struct {
	Metrics
	// VMs is the per-VM audit trail (only when Config.RecordVMs).
	VMs []VMRecord
}

// simVM is one running VM.
type simVM struct {
	uid       string
	jobID     int
	class     workload.Class
	remaining float64 // nominal-seconds of work left
	submit    units.Seconds
	placed    units.Seconds
	deadline  units.Seconds // absolute; 0 = unconstrained
	nominal   units.Seconds
}

// simServer is one physical server's live state.
type simServer struct {
	id         int
	vms        []*simVM
	alloc      model.Key
	lastUpdate units.Seconds
	energy     units.Joules
	next       eventq.Handle
	activeFrom units.Seconds // when the server began hosting; -1 if empty
	// hostedSeconds accumulates the time spent hosting at least one VM;
	// the remainder of the workload span is billed at idle power.
	hostedSeconds float64
}

// allocInfo caches model-database pricing per allocation key.
type allocInfo struct {
	rate  [workload.NumClasses]float64 // nominal-seconds per wall-second
	power units.Watts
}

type sim struct {
	cfg    Config
	reqs   []trace.Request
	events eventq.Queue
	now    units.Seconds
	srv    []*simServer
	queue  []int // indices into reqs, FIFO
	// dbs lists the distinct databases in use; caches and reference
	// times are kept per database.
	dbs   []*model.DB
	cache []map[model.Key]allocInfo
	refT  [][workload.NumClasses]units.Seconds
	// dbOf maps a server index to its database index.
	dbOf []int

	uidSeq      int
	records     []VMRecord
	metrics     Metrics
	responseSum float64
	waitSum     float64
	firstSubmit units.Seconds
	lastFinish  units.Seconds
}

type evArrival struct{ req int }
type evCompletion struct{ server int }

// Run simulates the request stream under the configured strategy.
func Run(cfg Config, reqs []trace.Request) (Result, error) {
	if cfg.DB == nil {
		return Result{}, errors.New("cloudsim: nil model database")
	}
	if cfg.Servers < 1 {
		return Result{}, errors.New("cloudsim: need at least one server")
	}
	if cfg.Strategy == nil {
		return Result{}, errors.New("cloudsim: nil strategy")
	}
	if cfg.MaxVMsPerServer == 0 {
		cfg.MaxVMsPerServer = 16
	}
	if cfg.MaxVMsPerServer < 1 {
		return Result{}, errors.New("cloudsim: non-positive MaxVMsPerServer")
	}
	switch {
	case cfg.IdleServerPower == 0:
		cfg.IdleServerPower = 125
	case cfg.IdleServerPower < 0:
		cfg.IdleServerPower = 0
	}
	if len(reqs) == 0 {
		return Result{}, errors.New("cloudsim: empty request stream")
	}
	if cfg.ServerDBs != nil && len(cfg.ServerDBs) != cfg.Servers {
		return Result{}, fmt.Errorf("cloudsim: %d ServerDBs for %d servers", len(cfg.ServerDBs), cfg.Servers)
	}
	s := &sim{
		cfg:         cfg,
		reqs:        reqs,
		firstSubmit: reqs[0].Submit,
	}
	// Register the distinct databases and map servers onto them.
	dbIndex := map[*model.DB]int{}
	register := func(db *model.DB) (int, error) {
		if idx, ok := dbIndex[db]; ok {
			return idx, nil
		}
		var ref [workload.NumClasses]units.Seconds
		for _, c := range workload.Classes {
			ref[c] = db.Aux().RefTime[c]
			if ref[c] <= 0 {
				return 0, fmt.Errorf("cloudsim: database has no reference time for %v", c)
			}
		}
		dbIndex[db] = len(s.dbs)
		s.dbs = append(s.dbs, db)
		s.cache = append(s.cache, map[model.Key]allocInfo{})
		s.refT = append(s.refT, ref)
		return dbIndex[db], nil
	}
	s.dbOf = make([]int, cfg.Servers)
	for i := range s.dbOf {
		db := cfg.DB
		if cfg.ServerDBs != nil && cfg.ServerDBs[i] != nil {
			db = cfg.ServerDBs[i]
		}
		idx, err := register(db)
		if err != nil {
			return Result{}, err
		}
		s.dbOf[i] = idx
	}
	s.srv = make([]*simServer, cfg.Servers)
	for i := range s.srv {
		s.srv[i] = &simServer{id: i, activeFrom: -1}
	}
	for i, r := range reqs {
		if err := r.Validate(); err != nil {
			return Result{}, err
		}
		if r.Submit < s.firstSubmit {
			s.firstSubmit = r.Submit
		}
		s.events.Schedule(r.Submit, evArrival{req: i})
		s.metrics.TotalJobs++
		s.metrics.TotalVMs += r.VMs
	}

	for {
		at, ev, ok := s.events.Pop()
		if !ok {
			break
		}
		s.now = at
		switch e := ev.(type) {
		case evArrival:
			s.queue = append(s.queue, e.req)
			s.drainQueue()
		case evCompletion:
			if err := s.complete(e.server); err != nil {
				return Result{}, err
			}
			if err := s.consolidate(); err != nil {
				return Result{}, err
			}
			s.drainQueue()
		default:
			return Result{}, fmt.Errorf("cloudsim: unknown event %T", ev)
		}
	}
	if len(s.queue) > 0 {
		return Result{}, fmt.Errorf("cloudsim: %d jobs still queued at end of simulation (strategy starved them)", len(s.queue))
	}

	// Fold per-server energy and active time. Each provisioned server
	// draws the fixed idle power for every second of the workload span
	// it spends hosting nothing (while hosting, the model record's
	// average power — which includes the idle floor — was integrated).
	span := s.lastFinish - s.firstSubmit
	for _, sv := range s.srv {
		if len(sv.vms) != 0 {
			return Result{}, fmt.Errorf("cloudsim: server %d still hosts %d VMs at end", sv.id, len(sv.vms))
		}
		idle := float64(span) - sv.hostedSeconds
		if idle > 0 {
			sv.energy += cfg.IdleServerPower.Times(units.Seconds(idle))
		}
		s.metrics.Energy += sv.energy
	}
	if s.metrics.TotalVMs > 0 {
		s.metrics.AvgResponse = units.Seconds(s.responseSum / float64(s.metrics.TotalVMs))
		s.metrics.AvgWait = units.Seconds(s.waitSum / float64(s.metrics.TotalVMs))
	}
	s.metrics.Makespan = s.lastFinish - s.firstSubmit
	return Result{Metrics: s.metrics, VMs: s.records}, nil
}

// info prices an allocation on a given server, caching database
// estimates per hardware class.
func (s *sim) info(server int, k model.Key) (allocInfo, error) {
	if k.IsZero() {
		return allocInfo{}, nil
	}
	di := s.dbOf[server]
	if ai, ok := s.cache[di][k]; ok {
		return ai, nil
	}
	rec, err := s.dbs[di].Estimate(k)
	if err != nil {
		return allocInfo{}, fmt.Errorf("cloudsim: pricing %v: %w", k, err)
	}
	var ai allocInfo
	ai.power = rec.AvgPower()
	for _, c := range workload.Classes {
		ct := rec.ClassTime(c)
		if ct <= 0 {
			return allocInfo{}, fmt.Errorf("cloudsim: record %v has no usable time for %v", k, c)
		}
		ai.rate[c] = float64(s.refT[di][c]) / float64(ct)
	}
	s.cache[di][k] = ai
	return ai, nil
}

// advance integrates a server's VM progress and energy up to now.
func (s *sim) advance(sv *simServer) error {
	dt := s.now - sv.lastUpdate
	if dt < 0 {
		return fmt.Errorf("cloudsim: time ran backwards on server %d", sv.id)
	}
	if dt > 0 && len(sv.vms) > 0 {
		ai, err := s.info(sv.id, sv.alloc)
		if err != nil {
			return err
		}
		for _, vm := range sv.vms {
			vm.remaining -= ai.rate[vm.class] * float64(dt)
		}
		sv.energy += ai.power.Times(dt)
	}
	sv.lastUpdate = s.now
	return nil
}

// reschedule recomputes the server's next completion event.
func (s *sim) reschedule(sv *simServer) error {
	s.events.Cancel(sv.next)
	sv.next = eventq.Handle{}
	if len(sv.vms) == 0 {
		return nil
	}
	ai, err := s.info(sv.id, sv.alloc)
	if err != nil {
		return err
	}
	best := -1.0
	for _, vm := range sv.vms {
		rate := ai.rate[vm.class]
		if rate <= 0 {
			return fmt.Errorf("cloudsim: zero progress rate on server %d alloc %v", sv.id, sv.alloc)
		}
		rem := vm.remaining
		if rem < 0 {
			rem = 0
		}
		fin := rem / rate
		if best < 0 || fin < best {
			best = fin
		}
	}
	sv.next = s.events.Schedule(s.now+units.Seconds(best), evCompletion{server: sv.id})
	return nil
}

// complete handles a server's completion event: it retires every VM whose
// work has run out.
func (s *sim) complete(serverIdx int) error {
	sv := s.srv[serverIdx]
	if err := s.advance(sv); err != nil {
		return err
	}
	const eps = 1e-6
	kept := sv.vms[:0]
	for _, vm := range sv.vms {
		if vm.remaining > eps {
			kept = append(kept, vm)
			continue
		}
		sv.alloc = sv.alloc.Add(model.KeyFor(vm.class, -1))
		s.retire(sv, vm)
	}
	sv.vms = kept
	if len(sv.vms) == 0 && sv.activeFrom >= 0 {
		hosted := float64(s.now - sv.activeFrom)
		s.metrics.ActiveServerSeconds += hosted
		sv.hostedSeconds += hosted
		sv.activeFrom = -1
	}
	return s.reschedule(sv)
}

// retire records a finished VM's metrics.
func (s *sim) retire(sv *simServer, vm *simVM) {
	if s.now > s.lastFinish {
		s.lastFinish = s.now
	}
	response := s.now - vm.submit
	s.responseSum += float64(response)
	s.waitSum += float64(vm.placed - vm.submit)
	violated := vm.deadline > 0 && s.now > vm.deadline
	if violated {
		s.metrics.Violations++
	}
	if s.cfg.RecordVMs {
		s.records = append(s.records, VMRecord{
			JobID:      vm.jobID,
			Class:      vm.class,
			Server:     sv.id,
			Submit:     vm.submit,
			Placed:     vm.placed,
			Completion: s.now,
			Deadline:   vm.deadline,
			Violated:   violated,
		})
	}
}

// consolidate snapshots the live cloud for the Consolidator and applies
// the returned migration plan: each moved VM is advanced to now, moved,
// and charged the migration cost as additional nominal work.
func (s *sim) consolidate() error {
	if s.cfg.Consolidator == nil {
		return nil
	}
	allocs := make([]model.Key, len(s.srv))
	var snapshot []migrate.VM
	byUID := map[string]*simVM{}
	for i, sv := range s.srv {
		// Bring accounting up to now so Remaining values are current.
		if err := s.advance(sv); err != nil {
			return err
		}
		allocs[i] = sv.alloc
		for _, vm := range sv.vms {
			budget := units.Seconds(0)
			if vm.deadline > 0 {
				budget = vm.deadline - s.now
				if budget < 0 {
					budget = 0 // already violated; free to move
				}
			}
			rem := vm.remaining
			if rem < 0 {
				rem = 0
			}
			snapshot = append(snapshot, migrate.VM{
				ID:        vm.uid,
				Class:     vm.class,
				Server:    i,
				Remaining: units.Seconds(rem),
				Budget:    budget,
			})
			byUID[vm.uid] = vm
		}
	}
	if len(snapshot) == 0 {
		return nil
	}
	plan, err := s.cfg.Consolidator.Propose(allocs, snapshot)
	if err != nil {
		return fmt.Errorf("cloudsim: consolidator: %w", err)
	}
	if len(plan.Moves) == 0 {
		return nil
	}
	touched := map[int]bool{}
	for _, mv := range plan.Moves {
		vm := byUID[mv.VMID]
		if vm == nil || mv.From < 0 || mv.From >= len(s.srv) || mv.To < 0 || mv.To >= len(s.srv) || mv.From == mv.To {
			return fmt.Errorf("cloudsim: consolidator returned invalid move %+v", mv)
		}
		from, to := s.srv[mv.From], s.srv[mv.To]
		idx := -1
		for i, resident := range from.vms {
			if resident == vm {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("cloudsim: move %+v: VM not on source server", mv)
		}
		from.vms = append(from.vms[:idx], from.vms[idx+1:]...)
		from.alloc = from.alloc.Add(model.KeyFor(vm.class, -1))
		if len(to.vms) == 0 && to.activeFrom < 0 {
			to.activeFrom = s.now
		}
		vm.remaining += float64(s.cfg.MigrationCost)
		to.vms = append(to.vms, vm)
		to.alloc = to.alloc.Add(model.KeyFor(vm.class, 1))
		touched[mv.From] = true
		touched[mv.To] = true
		s.metrics.Migrations++
	}
	s.metrics.ServersDrained += plan.ServersDrained
	// Server-order iteration keeps event tie-breaking deterministic (see
	// tryPlace).
	for i := 0; i < len(s.srv); i++ {
		if !touched[i] {
			continue
		}
		sv := s.srv[i]
		if len(sv.vms) == 0 && sv.activeFrom >= 0 {
			hosted := float64(s.now - sv.activeFrom)
			s.metrics.ActiveServerSeconds += hosted
			sv.hostedSeconds += hosted
			sv.activeFrom = -1
		}
		if err := s.reschedule(sv); err != nil {
			return err
		}
	}
	return nil
}

// drainQueue attempts FIFO placement of waiting jobs, stopping at the
// first job the strategy cannot place (FCFS without backfilling, so a
// blocked head preserves submission order). With Config.BackfillDepth
// set, up to that many jobs behind a blocked head are offered too.
func (s *sim) drainQueue() {
	for len(s.queue) > 0 {
		idx := s.queue[0]
		if s.tryPlace(idx) {
			s.queue = s.queue[1:]
			continue
		}
		// Head blocked: backfill behind it if allowed.
		placedAny := false
		depth := s.cfg.BackfillDepth
		for i := 1; i < len(s.queue) && i <= depth; i++ {
			if s.tryPlace(s.queue[i]) {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				placedAny = true
				break
			}
		}
		if !placedAny {
			return
		}
	}
}

// tryPlace asks the strategy to place one request and commits the
// placement if accepted.
func (s *sim) tryPlace(idx int) bool {
	req := s.reqs[idx]
	views := make([]strategy.Server, len(s.srv))
	for i, sv := range s.srv {
		views[i] = strategy.Server{ID: sv.id, Alloc: sv.alloc}
	}
	vms := make([]core.VMRequest, req.VMs)
	for i := range vms {
		// The allocator's QoS input is the request's maximum execution
		// time — a static property of the request (Sect. III.D), which is
		// what bounds how deeply the proactive strategies consolidate.
		// Whether the response-time deadline (submission + MaxResponse)
		// was ultimately met is judged at completion.
		vms[i] = core.VMRequest{
			ID:          fmt.Sprintf("j%d-%d", req.ID, i),
			Class:       req.Class,
			NominalTime: req.NominalTime,
			MaxTime:     req.MaxResponse,
		}
	}
	assign, ok := s.cfg.Strategy.Place(views, vms)
	if !ok {
		return false
	}
	if len(assign) != len(vms) {
		// A strategy bug; refuse the placement rather than corrupt state.
		return false
	}
	// Validate before mutating.
	added := map[int]int{}
	for _, a := range assign {
		if a < 0 || a >= len(s.srv) {
			return false
		}
		added[a]++
	}
	for a, n := range added {
		if s.srv[a].alloc.Total()+n > s.cfg.MaxVMsPerServer {
			return false
		}
	}
	// Bring every target server's accounting up to now before mutating
	// its allocation (the closing of a Fig.-4 interval). Iterate in
	// server order, not map order: rescheduling enqueues events whose
	// FIFO tie-break among equal timestamps must not depend on map
	// iteration, or the simulation loses determinism.
	targets := make([]int, 0, len(added))
	for a := 0; a < len(s.srv); a++ {
		if _, ok := added[a]; ok {
			targets = append(targets, a)
		}
	}
	for _, a := range targets {
		if err := s.advance(s.srv[a]); err != nil {
			return false
		}
	}
	deadline := req.Submit + req.MaxResponse
	for _, a := range assign {
		sv := s.srv[a]
		if len(sv.vms) == 0 && sv.activeFrom < 0 {
			sv.activeFrom = s.now
		}
		s.uidSeq++
		sv.vms = append(sv.vms, &simVM{
			uid:       fmt.Sprintf("vm%d", s.uidSeq),
			jobID:     req.ID,
			class:     req.Class,
			remaining: float64(req.NominalTime),
			submit:    req.Submit,
			placed:    s.now,
			deadline:  deadline,
			nominal:   req.NominalTime,
		})
		sv.alloc = sv.alloc.Add(model.KeyFor(req.Class, 1))
	}
	for _, a := range targets {
		if err := s.reschedule(s.srv[a]); err != nil {
			return false
		}
	}
	active := 0
	for _, sv := range s.srv {
		if len(sv.vms) > 0 {
			active++
		}
	}
	if active > s.metrics.PeakActiveServers {
		s.metrics.PeakActiveServers = active
	}
	return true
}

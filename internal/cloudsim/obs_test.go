package cloudsim

// Guards for the telemetry layer's two contracts: (1) observation never
// perturbs the simulation — a run with a live Registry and Tracer is
// byte-identical in Metrics and VMRecords to an untraced run and to the
// RunReference oracle; (2) disabled telemetry is free — the nil-handle
// path adds zero allocations to Run (pinned against the measured
// pre-instrumentation baseline).

import (
	"bytes"
	"reflect"
	"testing"

	"pacevm/internal/migrate"
	"pacevm/internal/obs"
	"pacevm/internal/strategy"
)

// TestObsDoesNotPerturbSimulation runs representative configurations
// three ways — untraced, fully instrumented, reference oracle — and
// requires identical Metrics and VMRecord streams.
func TestObsDoesNotPerturbSimulation(t *testing.T) {
	db := sharedDB(t)
	reqs := goldenWorkload(t, 31, 200)
	cases := []struct {
		name  string
		mkCfg func() Config
	}{
		{"FF-3/backfill4", func() Config {
			return Config{DB: db, Servers: 10, Strategy: ff(t, 3), BackfillDepth: 4}
		}},
		{"BF-2/consolidate", func() Config {
			return Config{
				DB: db, Servers: 10, Strategy: &strategy.BestFit{Multiplex: 2},
				Consolidator: &migrate.Planner{DB: db, MigrationCost: 10}, MigrationCost: 10,
			}
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			plain := c.mkCfg()
			plain.RecordVMs = true
			want, err := Run(plain, reqs)
			if err != nil {
				t.Fatal(err)
			}
			ref := c.mkCfg()
			ref.RecordVMs = true
			oracle, err := RunReference(ref, reqs)
			if err != nil {
				t.Fatal(err)
			}
			traced := c.mkCfg()
			traced.RecordVMs = true
			traced.Obs = obs.NewRegistry()
			traced.Tracer = obs.NewTracer()
			got, err := Run(traced, reqs)
			if err != nil {
				t.Fatal(err)
			}
			if want.Metrics != got.Metrics {
				t.Errorf("telemetry perturbed Metrics:\nplain  %+v\ntraced %+v", want.Metrics, got.Metrics)
			}
			if !reflect.DeepEqual(want.VMs, got.VMs) {
				t.Error("telemetry perturbed the VMRecord stream")
			}
			if oracle.Metrics != got.Metrics || !reflect.DeepEqual(oracle.VMs, got.VMs) {
				t.Error("traced run diverges from the RunReference oracle")
			}
			if traced.Tracer.Len() == 0 {
				t.Error("tracer recorded nothing")
			}
		})
	}
}

// TestObsDisabledAllocFree pins the zero-cost contract on the real hot
// path: Run with nil Obs/Tracer must allocate exactly what the
// pre-instrumentation simulator did for this workload (379 allocations,
// measured at the commit before the telemetry layer landed). Any
// per-event or per-placement allocation on the disabled path would add
// hundreds — the 800-request workload makes the bound sharp.
func TestObsDisabledAllocFree(t *testing.T) {
	db := sharedDB(t)
	reqs := goldenWorkload(t, 21, 800)
	st := ff(t, 3)
	cfg := Config{DB: db, Servers: 16, Strategy: st, BackfillDepth: 4}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Run(cfg, reqs); err != nil {
			t.Fatal(err)
		}
	})
	const baseline = 379 // measured pre-instrumentation, same workload
	if allocs > baseline+1 {
		t.Errorf("Run with telemetry disabled allocates %.0f, want <= %d (pre-instrumentation baseline)", allocs, baseline)
	}
}

// TestObsRunTelemetryContents sanity-checks that an instrumented run
// populates every pillar: hot-path counters, eventq counters, and a
// schema-valid trace whose timeline is internally consistent.
func TestObsRunTelemetryContents(t *testing.T) {
	db := sharedDB(t)
	reqs := goldenWorkload(t, 33, 150)
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	cfg := Config{DB: db, Servers: 8, Strategy: ff(t, 3), BackfillDepth: 4, Obs: reg, Tracer: tr}
	res, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["sim_events_popped"] == 0 {
		t.Error("sim_events_popped not counted")
	}
	if got, want := snap.Counters["sim_place_attempts"]-snap.Counters["sim_place_rejected"], int64(res.TotalJobs); got != want {
		t.Errorf("accepted placements = %d, want TotalJobs = %d", got, want)
	}
	if snap.Counters["sim_intervals_closed"] == 0 {
		t.Error("sim_intervals_closed not counted")
	}
	if snap.Gauges["sim_queue_depth_highwater"] == 0 {
		t.Error("queue high-water gauge never raised (workload too sparse for the guard)")
	}
	if snap.Counters["sim_pricing_cache_hits"] == 0 || snap.Counters["sim_pricing_cache_misses"] == 0 {
		t.Error("pricing cache counters not populated")
	}
	if snap.Counters["eventq_cancelled"] == 0 {
		t.Error("eventq cancellations not counted (reschedules always cancel)")
	}

	var buf bytes.Buffer
	if err := tr.WriteTo(&buf, nil); err != nil {
		t.Fatal(err)
	}
	f, err := obs.ReadTraceFile(&buf)
	if err != nil {
		t.Fatalf("trace does not round-trip: %v", err)
	}
	var vmSpans, hostSpans, arrivals, counters int
	for _, ev := range f.TraceEvents {
		switch {
		case ev.Phase == obs.PhaseComplete && ev.Cat == "vm":
			vmSpans++
			if ev.Dur < 0 {
				t.Fatalf("negative VM span duration: %+v", ev)
			}
		case ev.Phase == obs.PhaseComplete && ev.Cat == "server":
			hostSpans++
		case ev.Phase == obs.PhaseInstant && ev.Cat == "arrival":
			arrivals++
		case ev.Phase == obs.PhaseCounter:
			counters++
		}
	}
	if vmSpans != res.TotalVMs {
		t.Errorf("trace has %d VM spans, want TotalVMs = %d", vmSpans, res.TotalVMs)
	}
	if arrivals != res.TotalJobs {
		t.Errorf("trace has %d arrival instants, want TotalJobs = %d", arrivals, res.TotalJobs)
	}
	if hostSpans == 0 {
		t.Error("no server occupancy spans recorded")
	}
	if counters == 0 {
		t.Error("no queue-depth samples recorded")
	}
}

package cloudsim

// Cross-shard trace merge acceptance: a sharded traced run serializes
// one deterministic global timeline — coordinator process included —
// and a one-shard traced run stays byte-identical to the monolithic
// loop's trace.

import (
	"bytes"
	"strings"
	"testing"

	"pacevm/internal/obs"
)

func traceBytes(t *testing.T, tr *obs.Tracer) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteTo(&buf, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestShardedTraceMergeDeterministic(t *testing.T) {
	cfg, reqs := shardedStressConfig(t)
	var first []byte
	for run := 0; run < 2; run++ {
		cfg.Obs = obs.NewRegistry()
		cfg.Tracer = obs.NewTracer()
		if _, err := RunSharded(cfg, reqs, ShardConfig{Shards: 4, Steal: true}); err != nil {
			t.Fatal(err)
		}
		out := traceBytes(t, cfg.Tracer)
		if run == 0 {
			first = out
			continue
		}
		if !bytes.Equal(first, out) {
			t.Fatal("two identical sharded traced runs serialized different timelines")
		}
	}

	got := string(first)
	for _, want := range []string{
		`"coordinator"`, `"windows"`, `"steals"`, // coordinator process + threads
		`"queue shard 0"`, `"queue shard 3"`, // per-shard workload tracks
		`"window"`, `"routed"`, // window spans with routing args
	} {
		if !strings.Contains(got, want) {
			t.Errorf("merged timeline missing %s", want)
		}
	}

	// Every merged event must live in the global id spaces: known pids,
	// server tids within the fleet, workload tids within the shard count.
	for _, ev := range cfg.Tracer.Events() {
		switch ev.Pid {
		case tracePidServers:
			if ev.Phase != obs.PhaseMetadata && (ev.Tid < 0 || ev.Tid >= cfg.Servers) {
				t.Fatalf("server-track event on tid %d outside the %d-server fleet", ev.Tid, cfg.Servers)
			}
		case tracePidWorkload:
			if ev.Phase != obs.PhaseMetadata && (ev.Tid < 0 || ev.Tid >= 4) {
				t.Fatalf("workload event on tid %d outside 4 shards", ev.Tid)
			}
		case tracePidCoord:
		default:
			t.Fatalf("event with unknown pid %d", ev.Pid)
		}
	}
}

// One shard must pass the user's tracer through untouched: the trace
// bytes equal the monolithic run's exactly.
func TestShardedOneShardTraceByteIdentical(t *testing.T) {
	cfg, reqs := shardedStressConfig(t)
	cfg.Obs = obs.NewRegistry()
	cfg.Tracer = obs.NewTracer()
	if _, err := Run(cfg, reqs); err != nil {
		t.Fatal(err)
	}
	mono := traceBytes(t, cfg.Tracer)

	cfg.Obs = obs.NewRegistry()
	cfg.Tracer = obs.NewTracer()
	if _, err := RunSharded(cfg, reqs, ShardConfig{Shards: 1}); err != nil {
		t.Fatal(err)
	}
	if sharded := traceBytes(t, cfg.Tracer); !bytes.Equal(mono, sharded) {
		t.Fatal("one-shard trace diverges from the monolithic timeline")
	}
}

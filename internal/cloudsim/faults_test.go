package cloudsim

import (
	"reflect"
	"strings"
	"testing"

	"pacevm/internal/core"
	"pacevm/internal/faults"
	"pacevm/internal/migrate"
	"pacevm/internal/model"
	"pacevm/internal/obs"
	"pacevm/internal/strategy"
	"pacevm/internal/trace"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// linearOnly hides a strategy's IndexedPlacer implementation, forcing
// the simulator down the fleet-view placement path.
type linearOnly struct{ strategy.Strategy }

// faultWorkload is a seeded trace stream long enough that mid-run
// crashes hit resident VMs.
func faultWorkload(t testing.TB, seed uint64, n int) []trace.Request {
	return goldenWorkload(t, seed, n)
}

// faultSchedule generates a seeded schedule clipped to the fleet.
func faultSchedule(t testing.TB, seed uint64, servers int, horizon units.Seconds) faults.Schedule {
	t.Helper()
	s, err := faults.Generate(faults.GenConfig{
		Seed: seed, Servers: servers, MTBF: horizon / 4, MTTR: horizon / 40, Horizon: horizon,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s) == 0 {
		t.Fatal("fault schedule came out empty; tune MTBF/horizon")
	}
	return s
}

// TestFaultRunDeterministic runs the same fault-injected configuration
// repeatedly — across indexed and linear strategies — and requires
// byte-identical results every time.
func TestFaultRunDeterministic(t *testing.T) {
	db := sharedDB(t)
	reqs := faultWorkload(t, 21, 150)
	sched := faultSchedule(t, 5, 10, 40000)
	cases := []struct {
		name string
		mk   func() strategy.Strategy
	}{
		{"FF-2-indexed", func() strategy.Strategy { return ff(t, 2) }},
		{"FF-2-linear", func() strategy.Strategy { return linearOnly{ff(t, 2)} }},
		{"BF-2", func() strategy.Strategy { return &strategy.BestFit{Multiplex: 2} }},
		{"PA-balanced", func() strategy.Strategy { return pa(t, core.GoalBalanced) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			mkCfg := func() Config {
				return Config{
					DB: db, Servers: 10, Strategy: c.mk(),
					Faults:     sched,
					Checkpoint: faults.Periodic{Interval: 300},
					RecordVMs:  true,
				}
			}
			first, err := Run(mkCfg(), reqs)
			if err != nil {
				t.Fatal(err)
			}
			if first.FaultsInjected == 0 || first.VMsKilled == 0 {
				t.Fatalf("schedule did not bite: %d faults, %d kills", first.FaultsInjected, first.VMsKilled)
			}
			for rep := 0; rep < 2; rep++ {
				again, err := Run(mkCfg(), reqs)
				if err != nil {
					t.Fatal(err)
				}
				if first.Metrics != again.Metrics {
					t.Fatalf("rep %d: Metrics diverge:\nfirst %+v\nagain %+v", rep, first.Metrics, again.Metrics)
				}
				if !reflect.DeepEqual(first.VMs, again.VMs) {
					t.Fatalf("rep %d: VMRecord streams diverge", rep)
				}
			}
		})
	}
}

// TestFaultIndexedMatchesLinear pins that the capacity-index down/up
// path and the compacted fleet-view path place identically under
// faults: the same first-fit strategy through both machineries must
// yield byte-identical runs.
func TestFaultIndexedMatchesLinear(t *testing.T) {
	db := sharedDB(t)
	reqs := faultWorkload(t, 29, 200)
	sched := faultSchedule(t, 9, 12, 50000)
	mk := func(s strategy.Strategy) Config {
		return Config{
			DB: db, Servers: 12, Strategy: s,
			Faults: sched, Checkpoint: faults.Restart{}, RecordVMs: true,
		}
	}
	indexed, err := Run(mk(ff(t, 2)), reqs)
	if err != nil {
		t.Fatal(err)
	}
	linear, err := Run(mk(linearOnly{ff(t, 2)}), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if indexed.Metrics != linear.Metrics {
		t.Errorf("Metrics diverge:\nindexed %+v\nlinear  %+v", indexed.Metrics, linear.Metrics)
	}
	if !reflect.DeepEqual(indexed.VMs, linear.VMs) {
		t.Error("VMRecord streams diverge between indexed and linear placement")
	}
}

// TestCrashKillsRequeuesAndRecovers crashes the only server mid-job:
// the VM dies, its redo waits out the outage, and completion lands
// after recovery — with the loss visible in every fault metric.
func TestCrashKillsRequeuesAndRecovers(t *testing.T) {
	db := sharedDB(t)
	class := workload.ClassCPU
	nominal := db.Aux().RefTime[class]
	// Solo progress rate on this hardware (nominal-seconds per second).
	est, err := db.Estimate(model.KeyFor(class, 1))
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(nominal) / float64(est.ClassTime(class))
	reqs := []trace.Request{{ID: 1, Submit: 10, Class: class, VMs: 1, NominalTime: nominal}}
	down := 10 + units.Seconds(float64(nominal)*0.5) // mid-execution
	up := down + 500
	res, err := Run(Config{
		DB: db, Servers: 1, Strategy: ff(t, 1),
		Faults:    faults.Schedule{{Server: 0, Down: down, Up: up}},
		RecordVMs: true,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsInjected != 1 || res.VMsKilled != 1 || res.Requeues != 1 {
		t.Fatalf("faults=%d killed=%d requeues=%d, want 1/1/1",
			res.FaultsInjected, res.VMsKilled, res.Requeues)
	}
	// Restart policy: everything done before the crash is lost.
	wantLost := float64(down-10) * rate
	if diff := float64(res.WorkLost) - wantLost; diff < -1e-6 || diff > 1e-6 {
		t.Errorf("WorkLost = %v, want %v", res.WorkLost, wantLost)
	}
	if len(res.VMs) != 1 {
		t.Fatalf("%d VM records, want 1 (the kill must not retire)", len(res.VMs))
	}
	rec := res.VMs[0]
	if rec.Placed < up {
		t.Errorf("redo placed at %v, before recovery at %v", rec.Placed, up)
	}
	if rec.Submit != 10 {
		t.Errorf("redo lost the original submit time: %v", rec.Submit)
	}
	wantDone := float64(up) + float64(nominal)/rate
	if diff := float64(rec.Completion) - wantDone; diff < -1e-3 || diff > 1e-3 {
		t.Errorf("completion at %v, want ≈ %v (recovery + full redo)", rec.Completion, wantDone)
	}
	if res.DownServerSeconds <= 0 {
		t.Error("no downtime accounted")
	}
	if pct := res.AvailabilityPct(1); pct >= 100 || pct <= 0 {
		t.Errorf("AvailabilityPct = %v, want in (0,100)", pct)
	}
	if pct := res.GoodputPct(); pct >= 100 {
		t.Errorf("GoodputPct = %v, want < 100 with work lost", pct)
	}
}

// TestCheckpointSavesWork compares restart-from-scratch against a
// periodic checkpoint on the same crash: the checkpoint must lose only
// the tail past the last checkpoint, strictly less than the restart.
func TestCheckpointSavesWork(t *testing.T) {
	db := sharedDB(t)
	class := workload.ClassCPU
	nominal := db.Aux().RefTime[class]
	reqs := []trace.Request{{ID: 1, Submit: 0, Class: class, VMs: 1, NominalTime: nominal}}
	down := units.Seconds(float64(nominal) * 0.7) // off the nominal/4 checkpoint grid
	sched := faults.Schedule{{Server: 0, Down: down, Up: down + 100}}
	run := func(cp faults.CheckpointPolicy) Result {
		res, err := Run(Config{
			DB: db, Servers: 1, Strategy: ff(t, 1), Faults: sched, Checkpoint: cp,
		}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	interval := nominal / 4
	restart := run(faults.Restart{})
	periodic := run(faults.Periodic{Interval: interval})
	if restart.WorkLost <= periodic.WorkLost {
		t.Errorf("restart lost %v, periodic lost %v: checkpoint saved nothing", restart.WorkLost, periodic.WorkLost)
	}
	if periodic.WorkLost <= 0 {
		t.Error("periodic checkpoint lost no tail at all (crash sits off the checkpoint grid)")
	}
	if periodic.WorkLost >= interval+1e-6 {
		t.Errorf("periodic tail %v exceeds the checkpoint interval %v", periodic.WorkLost, interval)
	}
	if periodic.Makespan >= restart.Makespan {
		t.Errorf("periodic makespan %v not shorter than restart %v", periodic.Makespan, restart.Makespan)
	}
}

// TestDownServerDrawsNothingAndIsAvoided uses a two-server fleet whose
// second server never hosts: taking it down for the whole run must cut
// exactly its idle energy, leave placements untouched, and keep every
// placement on the up server.
func TestDownServerDrawsNothingAndIsAvoided(t *testing.T) {
	db := sharedDB(t)
	reqs := mkReqs(t, 6, workload.ClassCPU, 50)
	base := func() Config {
		return Config{DB: db, Servers: 2, Strategy: ff(t, 16), MaxVMsPerServer: 16, RecordVMs: true}
	}
	plain, err := Run(base(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base()
	cfg.Faults = faults.Schedule{{Server: 1, Down: 0, Up: 1e9}}
	faulted, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range faulted.VMs {
		if rec.Server != 0 {
			t.Fatalf("VM of job %d placed on down server %d", rec.JobID, rec.Server)
		}
	}
	if faulted.VMsKilled != 0 {
		t.Fatalf("%d VMs killed on a never-hosting server", faulted.VMsKilled)
	}
	if faulted.Makespan != plain.Makespan {
		t.Fatalf("makespan changed: %v vs %v", faulted.Makespan, plain.Makespan)
	}
	// Server 1 idled the whole span in the plain run and was powered off
	// for it in the faulted run: the energy gap is exactly idle power
	// times the span.
	wantGap := units.Watts(125).Times(plain.Makespan)
	gap := plain.Energy - faulted.Energy
	if diff := float64(gap - wantGap); diff < -1e-6 || diff > 1e-6 {
		t.Errorf("energy gap %v, want %v (idle power over the span)", gap, wantGap)
	}
	if got, want := faulted.DownServerSeconds, float64(plain.Makespan); got != want {
		t.Errorf("DownServerSeconds = %v, want %v (clamped to the span)", got, want)
	}
	if pct := faulted.AvailabilityPct(2); pct != 50 {
		t.Errorf("AvailabilityPct = %v, want 50 (one of two servers down throughout)", pct)
	}
}

// TestFaultObsCounters checks the registry view of a fault run agrees
// with the metrics, and that the consolidator path survives outages.
func TestFaultObsCounters(t *testing.T) {
	db := sharedDB(t)
	reg := obs.NewRegistry()
	reqs := faultWorkload(t, 37, 150)
	sched := faultSchedule(t, 3, 8, 40000)
	res, err := Run(Config{
		DB: db, Servers: 8, Strategy: ff(t, 2),
		Faults: sched, Checkpoint: faults.Periodic{Interval: 500},
		Consolidator: &migrate.Planner{DB: db, MigrationCost: 10}, MigrationCost: 10,
		Obs: reg,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["sim_faults_injected"]; got != int64(res.FaultsInjected) {
		t.Errorf("sim_faults_injected = %d, metrics say %d", got, res.FaultsInjected)
	}
	if got := snap.Counters["sim_vms_killed"]; got != int64(res.VMsKilled) {
		t.Errorf("sim_vms_killed = %d, metrics say %d", got, res.VMsKilled)
	}
	if got := snap.Counters["sim_requeues"]; got != int64(res.Requeues) {
		t.Errorf("sim_requeues = %d, metrics say %d", got, res.Requeues)
	}
}

// TestZeroFaultRunUntouched pins the strictly-additive contract beyond
// the golden suite: an empty schedule with a non-nil checkpoint policy
// changes nothing, and the fault metrics stay zero while NominalWork
// matches the reference oracle.
func TestZeroFaultRunUntouched(t *testing.T) {
	db := sharedDB(t)
	reqs := faultWorkload(t, 41, 100)
	want, err := RunReference(Config{DB: db, Servers: 8, Strategy: ff(t, 2), RecordVMs: true}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(Config{
		DB: db, Servers: 8, Strategy: ff(t, 2), RecordVMs: true,
		Checkpoint: faults.Periodic{Interval: 60}, // ignored without Faults
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if want.Metrics != got.Metrics {
		t.Errorf("Metrics diverge:\nreference %+v\noptimized %+v", want.Metrics, got.Metrics)
	}
	if !reflect.DeepEqual(want.VMs, got.VMs) {
		t.Error("VMRecord streams diverge")
	}
	if got.NominalWork <= 0 {
		t.Error("NominalWork not accumulated")
	}
	if got.FaultsInjected != 0 || got.VMsKilled != 0 || got.Requeues != 0 ||
		got.WorkLost != 0 || got.DownServerSeconds != 0 {
		t.Errorf("fault metrics moved without faults: %+v", got.Metrics)
	}
	if pct := got.AvailabilityPct(8); pct != 100 {
		t.Errorf("AvailabilityPct = %v, want 100", pct)
	}
	if pct := got.GoodputPct(); pct != 100 {
		t.Errorf("GoodputPct = %v, want 100", pct)
	}
}

// TestRunReferenceRejectsFaults pins that the frozen oracle refuses
// fault schedules instead of silently ignoring them.
func TestRunReferenceRejectsFaults(t *testing.T) {
	db := sharedDB(t)
	reqs := mkReqs(t, 1, workload.ClassCPU, 0)
	_, err := RunReference(Config{
		DB: db, Servers: 1, Strategy: ff(t, 1),
		Faults: faults.Schedule{{Server: 0, Down: 1, Up: 2}},
	}, reqs)
	if err == nil || !strings.Contains(err.Error(), "does not support fault injection") {
		t.Fatalf("RunReference accepted a fault schedule: %v", err)
	}
}

// TestConfigValidate exercises the public configuration validator.
func TestConfigValidate(t *testing.T) {
	db := sharedDB(t)
	good := Config{DB: db, Servers: 2, Strategy: ff(t, 1)}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []struct {
		name    string
		mut     func(*Config)
		wantErr string
	}{
		{"nil db", func(c *Config) { c.DB = nil }, "nil model database"},
		{"no servers", func(c *Config) { c.Servers = 0 }, "at least one server"},
		{"nil strategy", func(c *Config) { c.Strategy = nil }, "nil strategy"},
		{"negative cap", func(c *Config) { c.MaxVMsPerServer = -2 }, "MaxVMsPerServer"},
		{"negative migration cost", func(c *Config) { c.MigrationCost = -1 }, "negative MigrationCost"},
		{"serverdbs mismatch", func(c *Config) { c.ServerDBs = make([]*model.DB, 5) }, "ServerDBs"},
		{"fault out of range", func(c *Config) { c.Faults = faults.Schedule{{Server: 7, Down: 1, Up: 2}} }, "fault schedule"},
		{"fault overlap", func(c *Config) {
			c.Faults = faults.Schedule{{Server: 0, Down: 1, Up: 10}, {Server: 0, Down: 5, Up: 20}}
		}, "overlap"},
	}
	for _, c := range cases {
		cfg := good
		c.mut(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: got %v, want containing %q", c.name, err, c.wantErr)
		}
	}
}

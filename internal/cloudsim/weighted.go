package cloudsim

import (
	"fmt"

	"pacevm/internal/units"
)

// The functions in this file are the discrete form of the simulator's
// interval accounting, stated exactly as the paper's Fig.-4 worked
// example: "we compute the estimated execution time and energy
// consumption with the weighted average of the values associated to each
// interval of time". The continuous event loop in Run generalizes them;
// the unit tests pin the paper's published numbers
// (ExecTime_VM1 = 0.7·1200 s + 0.3·1800 s = 1380 s and
// Energy = 0.35·15 kJ + 0.15·20 kJ + 0.5·12 kJ = 14.25 kJ) to these
// functions bit for bit.

func checkWeights(weights []float64, n int) error {
	if len(weights) != n {
		return fmt.Errorf("cloudsim: %d weights for %d values", len(weights), n)
	}
	if n == 0 {
		return fmt.Errorf("cloudsim: empty weighted average")
	}
	sum := 0.0
	for _, w := range weights {
		if w < 0 {
			return fmt.Errorf("cloudsim: negative weight %v", w)
		}
		sum += w
	}
	if !units.NearlyEqual(sum, 1, 1e-9) {
		return fmt.Errorf("cloudsim: weights sum to %v, want 1", sum)
	}
	return nil
}

// WeightedExecTime composes a VM's execution time from per-interval
// estimates: weights are the fractions of the VM's lifetime spent under
// each allocation, times the model's execution-time estimates for it.
func WeightedExecTime(weights []float64, times []units.Seconds) (units.Seconds, error) {
	if err := checkWeights(weights, len(times)); err != nil {
		return 0, err
	}
	var out units.Seconds
	for i, w := range weights {
		if times[i] < 0 {
			return 0, fmt.Errorf("cloudsim: negative interval time %v", times[i])
		}
		out += units.Seconds(w) * times[i]
	}
	return out, nil
}

// WeightedEnergy composes a server's energy over an outcome from
// per-interval estimates, weighted by each interval's share of the
// outcome duration.
func WeightedEnergy(weights []float64, energies []units.Joules) (units.Joules, error) {
	if err := checkWeights(weights, len(energies)); err != nil {
		return 0, err
	}
	var out units.Joules
	for i, w := range weights {
		if energies[i] < 0 {
			return 0, fmt.Errorf("cloudsim: negative interval energy %v", energies[i])
		}
		out += units.Joules(w) * energies[i]
	}
	return out, nil
}

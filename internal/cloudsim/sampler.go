package cloudsim

// The fleet sampler: the time-resolved view behind the paper's Fig. 4.
// Every time a server closes an accounting interval (its resident set
// was constant over [lastUpdate, now) and its progress/energy just
// integrated), the sampler learns that server's power draw and occupancy
// for the closed interval and appends one fleet sample — the triggering
// server's draw plus fleet totals: watts over all hosting servers,
// active servers, queue depth, down servers, running VMs, and the
// cumulative busy energy so far. Samples land in a bounded ring: when
// the buffer fills, every other sample is dropped and the recording
// stride doubles, so an arbitrarily long run degrades resolution
// deterministically instead of growing memory without bound.
//
// Energy bookkeeping mirrors the simulator's exactly: CumEnergy
// accumulates the same power×dt products advance() adds to per-server
// energy, and Run feeds the end-of-run idle billing through addIdle, so
// TotalEnergy reconciles with Metrics.Energy to within float summation
// order (pinned by TestSamplerEnergyIntegral).
//
// Like the audit and the tracer, the sampler is observation-only and
// free when off: every hook is gated on one nil check, and Config.
// Sampler defaults to nil. RunReference ignores the field.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"

	"pacevm/internal/obs"
	"pacevm/internal/units"
)

// FleetSample is one row of the fleet time series.
type FleetSample struct {
	// At is the simulated instant the triggering interval closed.
	At units.Seconds
	// Server is the server whose interval closed; ServerWatts/ServerVMs
	// are its draw and occupancy over that interval.
	Server      int
	ServerWatts units.Watts
	ServerVMs   int
	// FleetWatts sums the model power draw of every hosting server as
	// of its most recently closed interval (empty powered-on servers
	// draw the idle floor, billed separately at end of run).
	FleetWatts units.Watts
	// ActiveServers counts servers hosting at least one VM; QueueDepth
	// is the admission queue; DownServers counts crashed servers;
	// RunningVMs sums occupancy over the fleet.
	ActiveServers int
	QueueDepth    int
	DownServers   int
	RunningVMs    int
	// CumEnergy is the busy-interval energy integrated so far (idle
	// billing lands at end of run; see FleetSampler.TotalEnergy).
	CumEnergy units.Joules
}

// defaultSamplerCap bounds the ring when the caller passes no capacity.
const defaultSamplerCap = 4096

// FleetSampler collects FleetSamples for one run. Attach with
// Config.Sampler; reuse across runs is safe (Run resets it). Safe for
// concurrent readers (the dashboard scrapes Series while the simulation
// runs).
type FleetSampler struct {
	mu       sync.Mutex
	capacity int
	stride   int // record every stride-th interval close
	tick     int
	samples  []FleetSample

	// Per-server state as of the last closed interval.
	watts []units.Watts
	vms   []int

	fleetWatts  units.Watts
	runningVMs  int
	downServers int
	cumEnergy   units.Joules
	idleEnergy  units.Joules
}

// NewFleetSampler returns a sampler whose ring holds at most capacity
// samples (<= 0 selects the default of 4096; the floor is 16 so the
// downsampling halving always has room to work).
func NewFleetSampler(capacity int) *FleetSampler {
	if capacity <= 0 {
		capacity = defaultSamplerCap
	}
	if capacity < 16 {
		capacity = 16
	}
	return &FleetSampler{capacity: capacity, stride: 1}
}

// reset prepares the sampler for a run over the given fleet size.
func (fs *FleetSampler) reset(servers int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stride = 1
	fs.tick = 0
	fs.samples = fs.samples[:0]
	if cap(fs.watts) < servers {
		fs.watts = make([]units.Watts, servers)
		fs.vms = make([]int, servers)
	} else {
		fs.watts = fs.watts[:servers]
		fs.vms = fs.vms[:servers]
		for i := range fs.watts {
			fs.watts[i] = 0
			fs.vms[i] = 0
		}
	}
	fs.fleetWatts = 0
	fs.runningVMs = 0
	fs.downServers = 0
	fs.cumEnergy = 0
	fs.idleEnergy = 0
}

// interval records one closed accounting interval: server drew power
// hosting nvms VMs for dt seconds ending at 'at'. active and qdepth are
// the simulator's instantaneous fleet state.
func (fs *FleetSampler) interval(at units.Seconds, server int, power units.Watts, nvms int, dt units.Seconds, active, qdepth int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.cumEnergy += power.Times(dt)
	fs.fleetWatts += power - fs.watts[server]
	fs.watts[server] = power
	fs.runningVMs += nvms - fs.vms[server]
	fs.vms[server] = nvms
	if fs.tick%fs.stride == 0 {
		fs.push(FleetSample{
			At:            at,
			Server:        server,
			ServerWatts:   power,
			ServerVMs:     nvms,
			FleetWatts:    fs.fleetWatts,
			ActiveServers: active,
			QueueDepth:    qdepth,
			DownServers:   fs.downServers,
			RunningVMs:    fs.runningVMs,
			CumEnergy:     fs.cumEnergy,
		})
	}
	fs.tick++
}

// push appends a sample, halving the ring's resolution when full: the
// odd-indexed samples are dropped and the stride doubles, so the series
// stays bounded and evenly thinned. Called with the mutex held.
func (fs *FleetSampler) push(s FleetSample) {
	if len(fs.samples) >= fs.capacity {
		kept := fs.samples[:0]
		for i := 0; i < len(fs.samples); i += 2 {
			kept = append(kept, fs.samples[i])
		}
		fs.samples = kept
		fs.stride *= 2
	}
	fs.samples = append(fs.samples, s)
}

// serverIdle zeroes a server's contribution when it stops hosting
// (completion drained it, the consolidator emptied it, or it crashed).
func (fs *FleetSampler) serverIdle(server int) {
	fs.mu.Lock()
	fs.fleetWatts -= fs.watts[server]
	fs.watts[server] = 0
	fs.runningVMs -= fs.vms[server]
	fs.vms[server] = 0
	fs.mu.Unlock()
}

// serverDown / serverUp track the crashed-server count.
func (fs *FleetSampler) serverDown() {
	fs.mu.Lock()
	fs.downServers++
	fs.mu.Unlock()
}

func (fs *FleetSampler) serverUp() {
	fs.mu.Lock()
	fs.downServers--
	fs.mu.Unlock()
}

// addIdle accounts end-of-run idle billing (and the downtime carve-out
// already applied by the caller), mirroring the fold in Run.
func (fs *FleetSampler) addIdle(e units.Joules) {
	fs.mu.Lock()
	fs.idleEnergy += e
	fs.mu.Unlock()
}

// Len returns the number of retained samples.
func (fs *FleetSampler) Len() int {
	if fs == nil {
		return 0
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.samples)
}

// Stride returns the current downsampling stride: 1 until the ring
// first fills, then doubling with each halving.
func (fs *FleetSampler) Stride() int {
	if fs == nil {
		return 0
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stride
}

// Samples returns a copy of the retained samples in time order.
func (fs *FleetSampler) Samples() []FleetSample {
	if fs == nil {
		return nil
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return append([]FleetSample(nil), fs.samples...)
}

// BusyEnergy is the integrated busy-interval energy; IdleEnergy the
// end-of-run idle billing; TotalEnergy their sum, which reconciles with
// Metrics.Energy to within float summation order.
func (fs *FleetSampler) BusyEnergy() units.Joules {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.cumEnergy
}

// IdleEnergy returns the idle billing fed through addIdle.
func (fs *FleetSampler) IdleEnergy() units.Joules {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.idleEnergy
}

// TotalEnergy returns BusyEnergy + IdleEnergy.
func (fs *FleetSampler) TotalEnergy() units.Joules {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.cumEnergy + fs.idleEnergy
}

// seriesCSVHeader is the exported column set, stable for downstream
// tooling (pacevm-paperfigs -power-series; documented in README).
const seriesCSVHeader = "t_s,server,server_watts,server_vms,fleet_watts,active_servers,queue_depth,down_servers,running_vms,cum_energy_j"

// WriteCSV exports the retained samples as CSV, floats in shortest
// round-trip form so identical runs export identical bytes.
func (fs *FleetSampler) WriteCSV(w io.Writer) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, seriesCSVHeader); err != nil {
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i := range fs.samples {
		s := &fs.samples[i]
		if _, err := fmt.Fprintf(bw, "%s,%d,%s,%d,%s,%d,%d,%d,%d,%s\n",
			g(float64(s.At)), s.Server, g(float64(s.ServerWatts)), s.ServerVMs,
			g(float64(s.FleetWatts)), s.ActiveServers, s.QueueDepth,
			s.DownServers, s.RunningVMs, g(float64(s.CumEnergy))); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Series exposes the retained samples as dashboard series (fleet watts,
// queue depth, running VMs) for obs.DebugServer.AddSeries.
func (fs *FleetSampler) Series() []obs.Series {
	if fs == nil {
		return nil
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	watts := make([]obs.SeriesPoint, len(fs.samples))
	depth := make([]obs.SeriesPoint, len(fs.samples))
	running := make([]obs.SeriesPoint, len(fs.samples))
	for i := range fs.samples {
		s := &fs.samples[i]
		t := float64(s.At)
		watts[i] = obs.SeriesPoint{T: t, V: float64(s.FleetWatts)}
		depth[i] = obs.SeriesPoint{T: t, V: float64(s.QueueDepth)}
		running[i] = obs.SeriesPoint{T: t, V: float64(s.RunningVMs)}
	}
	return []obs.Series{
		{Name: "fleet power", Unit: "W", Points: watts},
		{Name: "queue depth", Unit: "", Points: depth},
		{Name: "running VMs", Unit: "", Points: running},
	}
}

package cloudsim

// Watchdog acceptance: a clean run — monolithic or sharded, with faults,
// backfill and consolidation active — sweeps all five invariants with
// zero violations and zero perturbation, and a seeded corruption of the
// incremental state makes the matching check fire.

import (
	"reflect"
	"strings"
	"testing"

	"pacevm/internal/obs"
)

func TestWatchdogDoesNotPerturb(t *testing.T) {
	cfg, reqs := shardedStressConfig(t)
	plain, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Obs = obs.NewRegistry()
	cfg.Sampler = NewFleetSampler(2048)
	cfg.Watchdog = obs.NewWatchdog(64) // sweep aggressively
	watched, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics != watched.Metrics {
		t.Errorf("watchdog perturbed Metrics:\noff %+v\non  %+v", plain.Metrics, watched.Metrics)
	}
	if !reflect.DeepEqual(plain.VMs, watched.VMs) {
		t.Error("watchdog perturbed VMRecords")
	}
	if v := cfg.Watchdog.Violations(); len(v) != 0 {
		t.Fatalf("clean stress run reported violations: %v", v)
	}
	snap := cfg.Obs.Snapshot()
	if snap.Counters["sim_invariant_checks_total"] < 5 {
		t.Errorf("sim_invariant_checks_total = %d, want at least one full sweep", snap.Counters["sim_invariant_checks_total"])
	}
	if snap.Counters["sim_invariant_violations_total"] != 0 {
		t.Errorf("sim_invariant_violations_total = %d on a clean run", snap.Counters["sim_invariant_violations_total"])
	}
}

// Sharded runs give every shard a private watchdog over its own
// simulator; a clean stress run stays clean through the merge, and the
// user's handle is reusable across runs.
func TestWatchdogSharded(t *testing.T) {
	cfg, reqs := shardedStressConfig(t)
	cfg.Obs = obs.NewRegistry()
	cfg.Watchdog = obs.NewWatchdog(64)
	for run := 0; run < 2; run++ {
		res, err := RunSharded(cfg, reqs, ShardConfig{Shards: 4, Steal: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.VMsKilled == 0 {
			t.Fatal("stress config injected no kills; invariants undertested")
		}
		if v := cfg.Watchdog.Violations(); len(v) != 0 {
			t.Fatalf("run %d: clean sharded run reported violations: %v", run, v)
		}
	}
}

// corruptedSim builds a ready simulator for white-box corruption.
func corruptedSim(t *testing.T) *sim {
	t.Helper()
	cfg, reqs := shardedStressConfig(t)
	cfg.Watchdog = obs.NewWatchdog(1)
	cfg, err := validateConfig(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	s, err := newSim(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Seeded corruptions: each check must fire on exactly the drift it
// re-derives, proving the watchdog detects real incremental-state
// corruption and not just trivially-true predicates.
func TestWatchdogFiresOnCorruption(t *testing.T) {
	for _, tc := range []struct {
		check   string
		corrupt func(*sim)
	}{
		{"work-conservation", func(s *sim) { s.loadLeft += 7 }},
		{"queue-sanity", func(s *sim) { s.qhead = -1 }},
		{"occupancy", func(s *sim) { s.occ[0] |= 1 }}, // bit set, no resident VMs
		{"energy-integral", func(s *sim) { s.srv[0].energy = -1 }},
	} {
		t.Run(tc.check, func(t *testing.T) {
			s := corruptedSim(t)
			s.wd.RunChecks(0)
			if v := s.wd.Violations(); len(v) != 0 {
				t.Fatalf("fresh simulator already violating: %v", v)
			}
			tc.corrupt(s)
			s.wd.RunChecks(1)
			v := s.wd.Violations()
			if len(v) == 0 {
				t.Fatalf("corruption of %s went undetected", tc.check)
			}
			found := false
			for _, viol := range v {
				if viol.Check == tc.check {
					found = true
					if viol.At != 1 {
						t.Errorf("violation stamped at t=%g, want 1", viol.At)
					}
				}
			}
			if !found {
				t.Fatalf("corruption of %s fired %v instead", tc.check, v)
			}
		})
	}
}

// The capacity-index check audits the FleetIndex against ground-truth
// allocation totals; detaching a server's indexed occupancy from its
// real allocation must fire.
func TestWatchdogCapacityIndexFires(t *testing.T) {
	s := corruptedSim(t)
	if s.fleet == nil {
		t.Skip("strategy carries no fleet index")
	}
	s.wd.RunChecks(0)
	if v := s.wd.Violations(); len(v) != 0 {
		t.Fatalf("fresh simulator already violating: %v", v)
	}
	// Move a phantom VM through the index only: the index now claims an
	// occupancy the allocation table does not have.
	s.fleet.Add(0, 1)
	s.wd.RunChecks(1)
	found := false
	for _, viol := range s.wd.Violations() {
		if viol.Check == "capacity-index" {
			found = true
		}
	}
	if !found {
		t.Fatalf("phantom index occupancy went undetected: %v", s.wd.Violations())
	}
}

// Violations surface as a structured report: the String form carries
// shard, time, check and detail — what /debug/dash and the CLI print.
func TestWatchdogViolationReport(t *testing.T) {
	s := corruptedSim(t)
	s.loadLeft += 7
	s.wd.RunChecks(3)
	v := s.wd.Violations()
	if len(v) == 0 {
		t.Fatal("no violation recorded")
	}
	str := v[0].String()
	for _, want := range []string{"work-conservation", "t=3", "loadLeft"} {
		if !strings.Contains(str, want) {
			t.Errorf("report %q missing %q", str, want)
		}
	}
}

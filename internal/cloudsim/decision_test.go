package cloudsim

// Flight-recorder acceptance: (1) an attached recorder never perturbs
// the simulation (Metrics and VMRecords identical to a recorder-off
// run); (2) a one-shard sharded run records the same log as the
// monolithic loop; (3) on a faulted, sharded, steal-enabled run every
// placed VM has a reconstructible decision chain; (4) reject folding,
// the JSONL round-trip and the line-numbered reader errors.

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"pacevm/internal/core"
	"pacevm/internal/obs"
)

func TestDecisionRecorderDoesNotPerturb(t *testing.T) {
	cfg, reqs := shardedStressConfig(t)
	plain, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Obs = obs.NewRegistry()
	cfg.Recorder = NewDecisionRecorder()
	recorded, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics != recorded.Metrics {
		t.Errorf("recorder perturbed Metrics:\noff %+v\non  %+v", plain.Metrics, recorded.Metrics)
	}
	if !reflect.DeepEqual(plain.VMs, recorded.VMs) {
		t.Error("recorder perturbed VMRecords")
	}
	if cfg.Recorder.Len() == 0 {
		t.Fatal("recorder captured nothing on a stress run")
	}
	snap := cfg.Obs.Snapshot()
	if snap.Counters["sim_decision_places_total"] == 0 || snap.Counters["sim_decision_admits_total"] == 0 {
		t.Errorf("decision counters did not move: %+v", snap.Counters)
	}
}

// The decision counters are registered only when a recorder is attached,
// so recorder-off registry snapshots stay exactly as they were.
func TestDecisionCountersConditional(t *testing.T) {
	cfg, reqs := shardedStressConfig(t)
	cfg.Obs = obs.NewRegistry()
	if _, err := Run(cfg, reqs); err != nil {
		t.Fatal(err)
	}
	for name := range cfg.Obs.Snapshot().Counters {
		if strings.HasPrefix(name, "sim_decision_") {
			t.Errorf("recorder-off run registered %s", name)
		}
	}
}

// A one-shard sharded run must hand the user's recorder straight to the
// inner loop: the log it captures is identical to Run's.
func TestDecisionShardedOneShardIdentity(t *testing.T) {
	cfg, reqs := shardedStressConfig(t)
	cfg.Obs = obs.NewRegistry()
	cfg.Recorder = NewDecisionRecorder()
	if _, err := Run(cfg, reqs); err != nil {
		t.Fatal(err)
	}
	mono := cfg.Recorder.Decisions()

	cfg.Obs = obs.NewRegistry()
	cfg.Recorder = NewDecisionRecorder()
	if _, err := RunSharded(cfg, reqs, ShardConfig{Shards: 1}); err != nil {
		t.Fatal(err)
	}
	if sharded := cfg.Recorder.Decisions(); !reflect.DeepEqual(mono, sharded) {
		t.Fatalf("one-shard log diverges from monolithic: %d vs %d records", len(mono), len(sharded))
	}
}

// On a faulted, sharded, steal-enabled run every VM the audit saw must
// resolve to a place record in the merged log, every requeue must link a
// previously placed VM to its synthetic request, and the coordinator's
// route records must cover every original request exactly once.
func TestDecisionChainReconstructible(t *testing.T) {
	cfg, reqs := shardedStressConfig(t)
	cfg.Obs = obs.NewRegistry()
	cfg.Recorder = NewDecisionRecorder()
	cfg.Audit = NewVMAudit()
	res, err := RunSharded(cfg, reqs, ShardConfig{Shards: 4, Steal: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.VMsKilled == 0 {
		t.Fatal("stress config injected no kills; chain reconstruction undertested")
	}
	recs := cfg.Recorder.Decisions()

	placedVMs := map[int]bool{}
	routedReqs := map[int]int{}
	requeueOf := map[int]int{} // synthetic req -> killed VM uid
	for _, d := range recs {
		switch d.Kind {
		case DecisionPlace:
			for i, uid := range d.VMIDs {
				if placedVMs[uid] {
					t.Fatalf("vm %d placed twice", uid)
				}
				placedVMs[uid] = true
				if sv := d.Servers[i]; sv < 0 || sv >= cfg.Servers {
					t.Fatalf("vm %d placed on server %d outside the global fleet", uid, sv)
				}
			}
		case DecisionRoute:
			routedReqs[d.Req]++
			if d.Shard != -1 || d.Window <= 0 {
				t.Fatalf("route record not from the coordinator: %+v", d)
			}
		case DecisionRequeue:
			requeueOf[d.Req] = d.VMID
			if d.Req < len(reqs) {
				t.Fatalf("requeue created non-synthetic request %d", d.Req)
			}
		}
	}
	for _, sp := range cfg.Audit.Spans() {
		if !placedVMs[sp.VMID] {
			t.Fatalf("audited vm %d has no place record in the merged log", sp.VMID)
		}
	}
	for req, uid := range requeueOf {
		if !placedVMs[uid] {
			t.Fatalf("requeue of request %d names vm %d which was never placed", req, uid)
		}
	}
	for i := range reqs {
		if routedReqs[i] != 1 {
			t.Fatalf("request %d routed %d times, want exactly once", i, routedReqs[i])
		}
	}
	snap := cfg.Obs.Snapshot()
	if snap.Counters["sim_decision_routes_total"] != int64(len(reqs)) {
		t.Errorf("sim_decision_routes_total = %d, want %d", snap.Counters["sim_decision_routes_total"], len(reqs))
	}
}

// Consecutive same-reason rejects of one request fold into a single
// record carrying the count and the fold's end time; any other decision
// about the request closes the fold.
func TestDecisionRejectFolding(t *testing.T) {
	r := NewDecisionRecorder()
	for i := 0; i < 5; i++ {
		r.record(Decision{Kind: DecisionReject, T: float64(10 + i), Req: 7, Reason: RejectFitSummary, From: -1, To: -1})
	}
	r.record(Decision{Kind: DecisionReject, T: 20, Req: 7, Reason: RejectQoSWait, From: -1, To: -1})
	r.record(Decision{Kind: DecisionPlace, T: 30, Req: 7, From: -1, To: -1})
	r.record(Decision{Kind: DecisionReject, T: 40, Req: 7, Reason: RejectQoSWait, From: -1, To: -1})

	recs := r.Decisions()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4 (folded run, reason change, place, reopened)", len(recs))
	}
	if recs[0].Count != 5 || recs[0].TEnd != 14 || recs[0].T != 10 {
		t.Errorf("fold = count %d over [%g, %g], want 5 over [10, 14]", recs[0].Count, recs[0].T, recs[0].TEnd)
	}
	if recs[1].Reason != RejectQoSWait || recs[1].Count != 0 {
		t.Errorf("reason change did not open a fresh record: %+v", recs[1])
	}
	if recs[3].Count != 0 || recs[3].T != 40 {
		t.Errorf("place did not close the fold: %+v", recs[3])
	}

	// Interleaved requests fold independently.
	r.reset()
	r.record(Decision{Kind: DecisionReject, T: 1, Req: 1, Reason: RejectFitSummary, From: -1, To: -1})
	r.record(Decision{Kind: DecisionReject, T: 2, Req: 2, Reason: RejectFitSummary, From: -1, To: -1})
	r.record(Decision{Kind: DecisionReject, T: 3, Req: 1, Reason: RejectFitSummary, From: -1, To: -1})
	recs = r.Decisions()
	if len(recs) != 2 || recs[0].Count != 2 || recs[1].Count != 0 {
		t.Errorf("interleaved folding wrong: %+v", recs)
	}
}

func TestDecisionLogRoundTrip(t *testing.T) {
	cfg, reqs := shardedStressConfig(t)
	cfg.Recorder = NewDecisionRecorder()
	if _, err := Run(cfg, reqs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cfg.Recorder.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDecisionLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.Recorder.Decisions(); !reflect.DeepEqual(got, want) {
		t.Fatalf("round-trip diverges: %d vs %d records", len(got), len(want))
	}
}

func TestReadDecisionLogErrors(t *testing.T) {
	for _, tc := range []struct {
		name, in, wantErr string
	}{
		{"truncated", `{"kind":"admit","t":1,"req":0,"from":-1,"to":-1}` + "\n" + `{"kind":"pl`, "decision log line 2"},
		{"empty kind", `{"t":1,"req":0,"from":-1,"to":-1}`, "decision log line 1"},
		{"garbage", "not json at all", "decision log line 1"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadDecisionLog(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want %q", err, tc.wantErr)
			}
		})
	}
	// Blank lines are tolerated (a crash mid-run may leave one).
	recs, err := ReadDecisionLog(strings.NewReader(`{"kind":"admit","t":1,"req":0,"from":-1,"to":-1}` + "\n\n"))
	if err != nil || len(recs) != 1 {
		t.Fatalf("blank trailing line: %d records, %v", len(recs), err)
	}
}

// With a PROACTIVE strategy the recorder threads the exact search
// statistics of each placement through strategy.Explainer, and the
// explained path must not change any placement decision.
func TestDecisionSearchStats(t *testing.T) {
	cfg, reqs := shardedStressConfig(t)
	cfg.Strategy = pa(t, core.GoalBalanced)
	plain, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Recorder = NewDecisionRecorder()
	recorded, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics != recorded.Metrics || !reflect.DeepEqual(plain.VMs, recorded.VMs) {
		t.Fatal("explained placement path diverged from the plain one")
	}
	withStats := 0
	for _, d := range cfg.Recorder.Decisions() {
		if d.Kind == DecisionPlace && d.Search != nil {
			withStats++
			if d.Search.Enumerated <= 0 {
				t.Fatalf("place record carries empty search stats: %+v", d.Search)
			}
		}
	}
	if withStats == 0 {
		t.Fatal("no place record carried search statistics under a PROACTIVE strategy")
	}
}

package cloudsim

import (
	"sync"
	"testing"

	"pacevm/internal/core"
	"pacevm/internal/hetero"
	"pacevm/internal/hw"
	"pacevm/internal/model"
	"pacevm/internal/trace"
	"pacevm/internal/units"
	"pacevm/internal/vmm"
	"pacevm/internal/workload"
)

var (
	bigOnce sync.Once
	bigDB   *model.DB
	bigErr  error
)

func bigClassDB(t *testing.T) *model.DB {
	t.Helper()
	bigOnce.Do(func() {
		cfg := vmm.DefaultConfig()
		cfg.Spec = hw.DualX5470()
		cls, err := hetero.BuildClass("big", cfg)
		if err != nil {
			bigErr = err
			return
		}
		bigDB = cls.DB
	})
	if bigErr != nil {
		t.Fatal(bigErr)
	}
	return bigDB
}

// TestHeterogeneousFleetSimulation runs a mixed small/big fleet end to
// end: per-server databases price progress and power, and the class-aware
// allocator drives placement.
func TestHeterogeneousFleetSimulation(t *testing.T) {
	smallDB := sharedDB(t)
	big := bigClassDB(t)

	smallClass := hetero.Class{Name: "small", DB: smallDB}
	bigClass := hetero.Class{Name: "big", DB: big}
	assign := []int{0, 0, 1} // two small servers, one big
	fleet, err := hetero.NewFleet([]hetero.Class{smallClass, bigClass}, assign)
	if err != nil {
		t.Fatal(err)
	}
	het, err := hetero.NewAllocator(fleet, core.GoalBalanced)
	if err != nil {
		t.Fatal(err)
	}

	serverDBs := make([]*model.DB, len(assign))
	for i, a := range assign {
		serverDBs[i] = fleet.Classes[a].DB
	}

	reqs := make([]trace.Request, 12)
	for i := range reqs {
		class := workload.Classes[i%3]
		reqs[i] = trace.Request{
			ID: i + 1, Submit: units.Seconds(i * 50), Class: class, VMs: 1 + i%3,
			NominalTime: smallDB.Aux().RefTime[class],
			MaxResponse: smallDB.Aux().RefTime[class] * 4,
		}
	}

	res, err := Run(Config{
		DB:        smallDB,
		ServerDBs: serverDBs,
		Servers:   len(assign),
		Strategy:  het,
		RecordVMs: true,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range reqs {
		total += r.VMs
	}
	if res.TotalVMs != total {
		t.Fatalf("completed %d VMs, want %d", res.TotalVMs, total)
	}
	// Both hardware classes must have been used.
	used := map[int]bool{}
	for _, vm := range res.VMs {
		used[vm.Server] = true
	}
	if !used[2] {
		t.Error("the big-class server was never used")
	}
	if !used[0] && !used[1] {
		t.Error("no small-class server was used")
	}
}

// TestServerDBsValidation checks the fleet wiring is validated.
func TestServerDBsValidation(t *testing.T) {
	db := sharedDB(t)
	reqs := mkReqs(t, 1, workload.ClassCPU, 0)
	_, err := Run(Config{
		DB: db, Servers: 2, Strategy: ff(t, 1),
		ServerDBs: []*model.DB{db}, // wrong length
	}, reqs)
	if err == nil {
		t.Error("mismatched ServerDBs length should fail")
	}
}

// TestBigServerRunsFasterUnderLoad verifies the per-server pricing takes
// effect: the same deep CPU allocation progresses faster on the big
// class than on the small one.
func TestBigServerRunsFasterUnderLoad(t *testing.T) {
	smallDB := sharedDB(t)
	big := bigClassDB(t)
	ref := smallDB.Aux().RefTime[workload.ClassCPU]

	run := func(db *model.DB) units.Seconds {
		reqs := []trace.Request{{
			ID: 1, Submit: 0, Class: workload.ClassCPU, VMs: 4,
			NominalTime: ref, MaxResponse: ref * 10,
		}, {
			ID: 2, Submit: 0, Class: workload.ClassCPU, VMs: 4,
			NominalTime: ref, MaxResponse: ref * 10,
		}}
		res, err := Run(Config{
			DB:        smallDB,
			ServerDBs: []*model.DB{db},
			Servers:   1,
			Strategy:  ff(t, 2), // cram all 8 on the one server
		}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	onSmall := run(smallDB)
	onBig := run(big)
	if onBig >= onSmall {
		t.Errorf("8 CPU VMs on the big class (%v) should finish before the small class (%v)", onBig, onSmall)
	}
}

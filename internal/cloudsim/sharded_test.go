package cloudsim

import (
	"math"
	"reflect"
	"testing"

	"pacevm/internal/core"
	"pacevm/internal/faults"
	"pacevm/internal/migrate"
	"pacevm/internal/obs"
	"pacevm/internal/strategy"
	"pacevm/internal/trace"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// shardedCompare requires RunSharded under sc to reproduce Run exactly:
// same Metrics, same VMRecord stream.
func shardedCompare(t *testing.T, mkCfg func() Config, reqs []trace.Request, sc ShardConfig) {
	t.Helper()
	monoCfg := mkCfg()
	monoCfg.RecordVMs = true
	want, err := Run(monoCfg, reqs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	shCfg := mkCfg()
	shCfg.RecordVMs = true
	got, err := RunSharded(shCfg, reqs, sc)
	if err != nil {
		t.Fatalf("RunSharded: %v", err)
	}
	if want.Metrics != got.Metrics {
		t.Errorf("Metrics diverge:\nmonolithic %+v\nsharded    %+v", want.Metrics, got.Metrics)
	}
	if !reflect.DeepEqual(want.VMs, got.VMs) {
		if len(want.VMs) != len(got.VMs) {
			t.Fatalf("VMRecord count diverges: monolithic %d, sharded %d", len(want.VMs), len(got.VMs))
		}
		for i := range want.VMs {
			if want.VMs[i] != got.VMs[i] {
				t.Fatalf("VMRecord %d diverges:\nmonolithic %+v\nsharded    %+v", i, want.VMs[i], got.VMs[i])
			}
		}
	}
}

// TestShardedOneShardByteIdentical pins the core equivalence claim: one
// shard replays the monolithic Run byte for byte — across strategies,
// backfill, consolidation and fault injection, and regardless of the
// window width the lazy admission uses.
func TestShardedOneShardByteIdentical(t *testing.T) {
	db := sharedDB(t)
	big := goldenWorkload(t, 11, 300)
	mid := goldenWorkload(t, 12, 150)
	small := goldenWorkload(t, 13, 60)

	cases := []struct {
		name   string
		mkCfg  func() Config
		reqs   []trace.Request
		window units.Seconds
	}{
		{"FF-2/backfill4", func() Config {
			return Config{DB: db, Servers: 12, Strategy: ff(t, 2), BackfillDepth: 4}
		}, big, 0},
		{"FF-2/window-1s", func() Config {
			return Config{DB: db, Servers: 12, Strategy: ff(t, 2), BackfillDepth: 4}
		}, big, 1},
		{"BF-2/consolidate", func() Config {
			return Config{DB: db, Servers: 10, Strategy: &strategy.BestFit{Multiplex: 2},
				Consolidator: &migrate.Planner{DB: db, MigrationCost: 10}, MigrationCost: 10}
		}, mid, 0},
		{"PA-energy", func() Config {
			return Config{DB: db, Servers: 8, Strategy: pa(t, core.GoalEnergy), BackfillDepth: 2}
		}, small, 0},
		{"FF-3/faults", func() Config {
			return Config{DB: db, Servers: 10, Strategy: ff(t, 3), BackfillDepth: 3,
				Faults: faultSchedule(t, 9, 10, 40000)}
		}, big, 0},
		{"FF-3/faults/window-300s", func() Config {
			return Config{DB: db, Servers: 10, Strategy: ff(t, 3), BackfillDepth: 3,
				Faults: faultSchedule(t, 9, 10, 40000)}
		}, big, 300},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			shardedCompare(t, c.mkCfg, c.reqs, ShardConfig{Shards: 1, Window: c.window})
		})
	}
}

// TestShardedOneShardTelemetryIdentical: with one shard the caller's
// telemetry handles are passed straight through, so the registry
// snapshot, audit spans and sampler series must match the monolithic
// run's exactly — not merely reconcile.
func TestShardedOneShardTelemetryIdentical(t *testing.T) {
	db := sharedDB(t)
	reqs := goldenWorkload(t, 29, 250)
	run := func(exec func(Config) (Result, error)) (Result, obs.Snapshot, []AuditSpan, []FleetSample, units.Joules) {
		cfg := Config{
			DB: db, Servers: 10, Strategy: ff(t, 2), BackfillDepth: 3,
			Faults:  faultSchedule(t, 5, 10, 40000),
			Obs:     obs.NewRegistry(),
			Audit:   NewVMAudit(),
			Sampler: NewFleetSampler(1024),
		}
		res, err := exec(cfg)
		if err != nil {
			t.Fatal(err)
		}
		snap := cfg.Obs.Snapshot()
		// The event list's occupancy high-water is a property of the
		// engine, not the simulation: windowed lazy admission keeps the
		// heap a fraction of the schedule-everything-up-front size, so
		// this one gauge legitimately differs between the two paths.
		delete(snap.Gauges, "eventq_depth_highwater")
		return res, snap, cfg.Audit.Spans(), cfg.Sampler.Samples(), cfg.Sampler.TotalEnergy()
	}
	mRes, mSnap, mSpans, mSamples, mEnergy := run(func(cfg Config) (Result, error) { return Run(cfg, reqs) })
	sRes, sSnap, sSpans, sSamples, sEnergy := run(func(cfg Config) (Result, error) {
		return RunSharded(cfg, reqs, ShardConfig{Shards: 1})
	})
	if mRes.Metrics != sRes.Metrics {
		t.Errorf("Metrics diverge:\nmonolithic %+v\nsharded    %+v", mRes.Metrics, sRes.Metrics)
	}
	if !reflect.DeepEqual(mSnap, sSnap) {
		t.Errorf("registry snapshots diverge:\nmonolithic %+v\nsharded    %+v", mSnap, sSnap)
	}
	if !reflect.DeepEqual(mSpans, sSpans) {
		t.Errorf("audit spans diverge (%d vs %d spans)", len(mSpans), len(sSpans))
	}
	if !reflect.DeepEqual(mSamples, sSamples) {
		t.Errorf("sampler series diverge (%d vs %d samples)", len(mSamples), len(sSamples))
	}
	if mEnergy != sEnergy {
		t.Errorf("sampler TotalEnergy diverges: %v vs %v", mEnergy, sEnergy)
	}
}

// shardedStressConfig is the determinism workload: faults, backfill and
// consolidation all active over a 16-server fleet.
func shardedStressConfig(t *testing.T) (Config, []trace.Request) {
	t.Helper()
	db := sharedDB(t)
	cfg := Config{
		DB: db, Servers: 16, Strategy: ff(t, 2), BackfillDepth: 3,
		Consolidator: &migrate.Planner{DB: db, MigrationCost: 10}, MigrationCost: 10,
		Faults:    faultSchedule(t, 77, 16, 60000),
		RecordVMs: true,
	}
	return cfg, goldenWorkload(t, 21, 400)
}

// TestShardedDeterminism: at every shard count the parallel run must be
// bit-for-bit reproducible — identical Metrics and VMRecord streams
// across repeated executions, with the fault and consolidation paths
// active so cross-shard-adjacent machinery (re-queues, migrations,
// kills) is all exercised.
func TestShardedDeterminism(t *testing.T) {
	cfg, reqs := shardedStressConfig(t)
	for _, shards := range []int{2, 4, 8} {
		shards := shards
		t.Run(string(rune('0'+shards))+"-shards", func(t *testing.T) {
			t.Parallel()
			var first Result
			for run := 0; run < 3; run++ {
				res, err := RunSharded(cfg, reqs, ShardConfig{Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				if run == 0 {
					first = res
					if res.VMsKilled == 0 || res.Requeues == 0 {
						t.Fatalf("stress config injected no kills (%+v); determinism undertested", res.Metrics)
					}
					if res.TotalJobs != len(reqs) {
						t.Fatalf("TotalJobs = %d, want %d", res.TotalJobs, len(reqs))
					}
					continue
				}
				if res.Metrics != first.Metrics {
					t.Fatalf("run %d Metrics diverge:\nfirst %+v\nthis  %+v", run, first.Metrics, res.Metrics)
				}
				if !reflect.DeepEqual(res.VMs, first.VMs) {
					t.Fatalf("run %d VMRecords diverge", run)
				}
			}
		})
	}
}

// TestShardedStrategyFactory: the per-shard strategy factory builds a
// private instance per shard, and the run stays deterministic.
func TestShardedStrategyFactory(t *testing.T) {
	cfg, reqs := shardedStressConfig(t)
	sc := ShardConfig{Shards: 4, Strategy: func(shard int) (strategy.Strategy, error) {
		return strategy.NewFirstFit(2)
	}}
	a, err := RunSharded(cfg, reqs, sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSharded(cfg, reqs, sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != b.Metrics || !reflect.DeepEqual(a.VMs, b.VMs) {
		t.Error("factory-built shards are not deterministic")
	}
}

// relErr is |a−b| relative to max(|a|,|b|), 0 when both are 0.
func relErr(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// TestShardedMergeReconciliation: after a multi-shard run, the merged
// telemetry must reconcile with the folded Metrics — audit span counts
// and work-lost sums, sampler energy integrals (to 1e-9 relative; the
// fold only reorders float additions), registry counters and quantile
// counts — and the merged VMRecords must live in the global server
// space.
func TestShardedMergeReconciliation(t *testing.T) {
	cfg, reqs := shardedStressConfig(t)
	cfg.Obs = obs.NewRegistry()
	cfg.Audit = NewVMAudit()
	cfg.Sampler = NewFleetSampler(2048)
	res, err := RunSharded(cfg, reqs, ShardConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.VMsKilled == 0 || res.Migrations == 0 {
		t.Fatalf("stress run exercised too little: %+v", res.Metrics)
	}

	if len(res.VMs) != res.TotalVMs {
		t.Errorf("%d VMRecords for %d finished VMs", len(res.VMs), res.TotalVMs)
	}
	for i, r := range res.VMs {
		if r.Server < 0 || r.Server >= cfg.Servers {
			t.Fatalf("record %d server %d outside the global fleet", i, r.Server)
		}
		if i > 0 && r.Completion < res.VMs[i-1].Completion {
			t.Fatalf("record %d out of completion order", i)
		}
	}

	// Audit reconciliation: the merged spans carry the same totals the
	// folded Metrics do, with globally unique VM uids.
	var finished, killed, requeued int
	var workLost float64
	uids := map[int]bool{}
	for _, sp := range cfg.Audit.Spans() {
		if uids[sp.VMID] {
			t.Fatalf("duplicate merged VM uid %d", sp.VMID)
		}
		uids[sp.VMID] = true
		if sp.Server < 0 || sp.Server >= cfg.Servers {
			t.Fatalf("span uid %d server %d outside the global fleet", sp.VMID, sp.Server)
		}
		switch sp.Outcome {
		case AuditFinished:
			finished++
		case AuditKilled:
			killed++
		}
		if sp.Requeued {
			requeued++
		}
		workLost += float64(sp.WorkLost)
	}
	if finished != res.TotalVMs || killed != res.VMsKilled || requeued != res.Requeues {
		t.Errorf("audit counts (finished %d, killed %d, requeued %d) != metrics (%d, %d, %d)",
			finished, killed, requeued, res.TotalVMs, res.VMsKilled, res.Requeues)
	}
	if e := relErr(workLost, float64(res.WorkLost)); e > 1e-9 {
		t.Errorf("audit work lost %v vs metrics %v (rel err %g)", workLost, res.WorkLost, e)
	}

	// Sampler reconciliation: busy + idle energy integrals fold exactly
	// per shard, so the total reconciles with the folded Metrics.Energy.
	if e := relErr(float64(cfg.Sampler.TotalEnergy()), float64(res.Energy)); e > 1e-9 {
		t.Errorf("sampler TotalEnergy %v vs Metrics.Energy %v (rel err %g)",
			cfg.Sampler.TotalEnergy(), res.Energy, e)
	}
	samples := cfg.Sampler.Samples()
	if len(samples) == 0 {
		t.Fatal("merged sampler retained no samples")
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].At < samples[i-1].At {
			t.Fatalf("merged sample %d out of time order", i)
		}
		if samples[i].CumEnergy < samples[i-1].CumEnergy {
			t.Fatalf("merged sample %d cumulative energy regressed", i)
		}
	}

	// Registry fold: counters sum across shards, quantile counts cover
	// every retired VM.
	snap := cfg.Obs.Snapshot()
	if snap.Counters["sim_events_popped"] == 0 || snap.Counters["sim_intervals_closed"] == 0 {
		t.Errorf("merged registry lost core counters: %+v", snap.Counters)
	}
	if got := snap.Counters["sim_vms_killed"]; got != int64(res.VMsKilled) {
		t.Errorf("merged sim_vms_killed = %d, want %d", got, res.VMsKilled)
	}
	if got := snap.Quantiles["sim_vm_wait_seconds"].Count; got != int64(res.TotalVMs) {
		t.Errorf("merged wait digest holds %d observations, want %d", got, res.TotalVMs)
	}
}

// TestShardedLoadSpread: multi-shard routing must actually distribute
// work — every shard of a dense workload should finish VMs, which the
// merged records' server ids reveal.
func TestShardedLoadSpread(t *testing.T) {
	cfg, reqs := shardedStressConfig(t)
	const shards = 4
	res, err := RunSharded(cfg, reqs, ShardConfig{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	per := cfg.Servers / shards
	seen := make([]int, shards)
	for _, r := range res.VMs {
		seen[r.Server/per]++
	}
	for k, n := range seen {
		if n == 0 {
			t.Errorf("shard %d finished no VMs; routing starved it (spread %v)", k, seen)
		}
	}
}

// TestShardedValidation covers the configuration rejections.
func TestShardedValidation(t *testing.T) {
	db := sharedDB(t)
	reqs := goldenWorkload(t, 31, 20)
	base := Config{DB: db, Servers: 4, Strategy: ff(t, 2)}
	cases := []struct {
		name string
		cfg  Config
		sc   ShardConfig
	}{
		{"zero-shards", base, ShardConfig{Shards: 0}},
		{"more-shards-than-servers", base, ShardConfig{Shards: 5}},
		{"negative-window", base, ShardConfig{Shards: 2, Window: -1}},
	}
	for _, c := range cases {
		if _, err := RunSharded(c.cfg, reqs, c.sc); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
	// A tracer works at any shard count: one shard takes the monolithic
	// pass-through, more get the merged cross-shard timeline.
	for _, shards := range []int{1, 2} {
		c := base
		c.Tracer = obs.NewTracer()
		if _, err := RunSharded(c, reqs, ShardConfig{Shards: shards}); err != nil {
			t.Errorf("tracer with %d shard(s) rejected: %v", shards, err)
		}
		if c.Tracer.Len() == 0 {
			t.Errorf("%d-shard run recorded no trace events", shards)
		}
	}
}

// plainReq builds one hand-shaped request for the routing tests: no
// deadline, explicit nominal work, CPU class.
func plainReq(id int, at units.Seconds, vms int, nominal units.Seconds) trace.Request {
	return trace.Request{ID: id, Submit: at, Class: workload.ClassCPU, VMs: vms, NominalTime: nominal}
}

// TestShardedRouterCapacityAware: the router must prefer a shard whose
// capacity summary proves the job fits over a merely less-loaded one
// that is already full. Two one-server shards under FirstFit ×1 (four
// slots each): job 1's four tiny VMs fill shard 0, job 2's single huge
// VM lands on shard 1. Job 3 (one tiny VM) then sees shard 0 with far
// less outstanding work — the old least-load heuristic's pick — but no
// free slot; capacity-aware routing must send it to shard 1, where it
// starts the instant it is submitted.
func TestShardedRouterCapacityAware(t *testing.T) {
	db := sharedDB(t)
	reqs := []trace.Request{
		plainReq(1, 0, 4, 10),       // ties break to shard 0; fills it
		plainReq(2, 0.5, 1, 100000), // only shard 1 has slots; huge load
		plainReq(3, 1, 1, 10),       // the probe
	}
	cfg := Config{DB: db, Servers: 2, Strategy: ff(t, 1), RecordVMs: true}
	res, err := RunSharded(cfg, reqs, ShardConfig{Shards: 2, Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res.VMs {
		if r.JobID != 3 {
			continue
		}
		found = true
		if r.Server != 1 {
			t.Errorf("job 3 hosted on server %d; capacity-aware routing should pick shard 1's server", r.Server)
		}
		if r.Placed != r.Submit {
			t.Errorf("job 3 waited %v; a free slot on shard 1 means zero wait", r.Placed-r.Submit)
		}
	}
	if !found {
		t.Fatal("job 3 retired no VM record")
	}
}

// TestShardedSteal: a queued job whose own shard provably cannot host
// it (the shard's only server is down) must be handed off at a window
// barrier once another shard can provably take it — and the handoff
// must show in the merged steal counter, shrink wait and makespan
// against the steal-off run, conserve the workload totals, and stay
// deterministic across repeats.
func TestShardedSteal(t *testing.T) {
	db := sharedDB(t)
	reqs := []trace.Request{
		plainReq(1, 0, 4, 400), // fills shard 0 until well past job 2's arrival
		plainReq(2, 200, 1, 50),
	}
	// Shard 1's server is down when job 2 arrives; the load fallback
	// routes the job there (shard 0 carries all the outstanding work),
	// where it is stuck until the distant recovery — unless stolen.
	sch := faults.Schedule{{Server: 1, Down: 100, Up: 20000}}
	run := func(steal bool) (Result, int64) {
		cfg := Config{DB: db, Servers: 2, Strategy: ff(t, 1), RecordVMs: true,
			Obs: obs.NewRegistry(), Faults: sch}
		res, err := RunSharded(cfg, reqs, ShardConfig{Shards: 2, Steal: steal})
		if err != nil {
			t.Fatal(err)
		}
		return res, cfg.Obs.Snapshot().Counters["sim_admission_steals_total"]
	}
	kept, keptSteals := run(false)
	stolen, stolenSteals := run(true)

	if keptSteals != 0 {
		t.Errorf("steal-off run counted %d steals", keptSteals)
	}
	if stolenSteals < 1 {
		t.Errorf("steal-on run counted %d steals, want >= 1", stolenSteals)
	}
	if stolen.Metrics.AvgWait >= kept.Metrics.AvgWait {
		t.Errorf("stealing did not shrink wait: %v vs %v", stolen.Metrics.AvgWait, kept.Metrics.AvgWait)
	}
	if stolen.Metrics.Makespan >= kept.Metrics.Makespan {
		t.Errorf("stealing did not shrink makespan: %v vs %v", stolen.Metrics.Makespan, kept.Metrics.Makespan)
	}
	if stolen.Metrics.TotalJobs != kept.Metrics.TotalJobs || stolen.Metrics.TotalVMs != kept.Metrics.TotalVMs {
		t.Errorf("stealing changed workload totals: %+v vs %+v", stolen.Metrics, kept.Metrics)
	}
	for _, r := range stolen.VMs {
		if r.JobID == 2 && r.Server != 0 {
			t.Errorf("stolen job hosted on server %d, want shard 0's server 0", r.Server)
		}
		if r.JobID == 2 && r.Submit != 200 {
			t.Errorf("stolen job's submit rewritten to %v; wait accounting needs the original", r.Submit)
		}
	}

	again, _ := run(true)
	if stolen.Metrics != again.Metrics {
		t.Errorf("steal run not deterministic:\nfirst %+v\nagain %+v", stolen.Metrics, again.Metrics)
	}
	if !reflect.DeepEqual(stolen.VMs, again.VMs) {
		t.Error("steal run VM records not deterministic")
	}
}

package partition_test

import (
	"fmt"

	"pacevm/internal/partition"
)

// The allocator's search space for a 3-VM job: every way to split the
// set across servers.
func ExampleForEach() {
	n, err := partition.ForEach(3, func(blocks [][]int) bool {
		fmt.Println(blocks)
		return true
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("total:", n)
	// Output:
	// [[0 1 2]]
	// [[0 1] [2]]
	// [[0 2] [1]]
	// [[0] [1 2]]
	// [[0] [1] [2]]
	// total: 5
}

// Interchangeable VMs reduce set partitions to integer partitions: a
// 4-VM single-profile job has exactly five distinct splits.
func ExampleInts() {
	_, err := partition.Ints(4, func(parts []int) bool {
		fmt.Println(parts)
		return true
	})
	if err != nil {
		fmt.Println(err)
	}
	// Output:
	// [4]
	// [3 1]
	// [2 2]
	// [2 1 1]
	// [1 1 1 1]
}

func ExampleBell() {
	fmt.Println(partition.Bell(4), partition.Bell(8))
	// Output: 15 4140
}

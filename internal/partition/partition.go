// Package partition enumerates set partitions, the search space of the
// paper's brute-force allocation algorithm (Sect. III.D). The paper cites
// Orlov's "Efficient Generation of Set Partitions" [21]; this package
// implements the same restricted-growth-string (RGS) scheme: a partition
// of {0,…,n−1} is encoded as a string a where a[i] is the block index of
// element i, a[0] = 0, and a[i] ≤ 1 + max(a[0..i−1]). Successive
// partitions are produced in lexicographic RGS order with O(n) work per
// step and no allocation beyond the generator's own buffers.
//
// Integer partitions (for multisets of interchangeable items) and Bell
// numbers (for test oracles and search-size guards) are provided too.
package partition

import (
	"fmt"
	"math"
)

// MaxN bounds the element count accepted by the generators. B(12) is
// already 4,213,597 candidate partitions; the paper's allocator only ever
// partitions a job's 1–4 VMs (plus small bursts), so the bound is a
// safety net against accidental combinatorial explosion, not a practical
// limit.
const MaxN = 12

// Bell returns the n-th Bell number B(n), the number of set partitions of
// an n-element set. It panics for n < 0 or n > MaxN+1.
func Bell(n int) uint64 {
	if n < 0 || n > MaxN+1 {
		panic(fmt.Sprintf("partition: Bell(%d) out of range", n))
	}
	// Bell triangle.
	row := []uint64{1}
	for i := 0; i < n; i++ {
		next := make([]uint64, len(row)+1)
		next[0] = row[len(row)-1]
		for j := range row {
			next[j+1] = next[j] + row[j]
		}
		row = next
	}
	return row[0]
}

// Generator enumerates the set partitions of {0,…,n−1} in lexicographic
// RGS order. The zero value is not usable; construct with NewGenerator.
type Generator struct {
	n     int
	a     []int // restricted growth string
	b     []int // b[i] = 1 + max(a[0..i-1]); b[0] = 1
	first bool
	done  bool
}

// NewGenerator returns a generator over partitions of n elements.
func NewGenerator(n int) (*Generator, error) {
	if n < 1 || n > MaxN {
		return nil, fmt.Errorf("partition: n=%d out of [1,%d]", n, MaxN)
	}
	g := &Generator{n: n, a: make([]int, n), b: make([]int, n), first: true}
	for i := range g.b {
		g.b[i] = 1
	}
	return g, nil
}

// Next advances to the next partition and reports whether one exists. The
// first call yields the single-block partition {{0,…,n−1}}… actually the
// all-zeros RGS, which is the one-block partition.
func (g *Generator) Next() bool {
	if g.done {
		return false
	}
	if g.first {
		g.first = false
		return true
	}
	// Find the rightmost position that can be incremented.
	for i := g.n - 1; i >= 1; i-- {
		if g.a[i] < g.b[i] && g.a[i] < g.n-1 {
			g.a[i]++
			// Reset the suffix and recompute prefix maxima.
			m := g.b[i]
			if g.a[i] == m {
				m++
			}
			for j := i + 1; j < g.n; j++ {
				g.a[j] = 0
				g.b[j] = m
			}
			return true
		}
	}
	g.done = true
	return false
}

// RGS returns the current restricted growth string. The slice is the
// generator's buffer; callers must copy it to retain it across Next.
func (g *Generator) RGS() []int { return g.a }

// Blocks materializes the current partition as a list of blocks, each a
// sorted list of element indices, ordered by block index (first
// occurrence order). The blocks share one freshly allocated backing
// array per call, so retaining the result across Next is safe.
func (g *Generator) Blocks() [][]int {
	nblocks := 0
	var sizes [MaxN]int
	for _, v := range g.a {
		sizes[v]++
		if v+1 > nblocks {
			nblocks = v + 1
		}
	}
	flat := make([]int, g.n)
	blocks := make([][]int, nblocks)
	off := 0
	for b := 0; b < nblocks; b++ {
		blocks[b] = flat[off : off : off+sizes[b]]
		off += sizes[b]
	}
	for i, v := range g.a {
		blocks[v] = append(blocks[v], i)
	}
	return blocks
}

// ForEach visits every set partition of {0,…,n−1}. The callback receives
// the blocks (valid only during the call) and returns false to stop
// early. ForEach reports the number of partitions visited.
func ForEach(n int, fn func(blocks [][]int) bool) (int, error) {
	return ForEachIndexed(n, func(_ int, blocks [][]int) bool { return fn(blocks) })
}

// ForEachIndexed visits every set partition of {0,…,n−1} together with
// its 0-based position in the lexicographic RGS enumeration order. The
// index is the deterministic identity of a partition within the search:
// parallel consumers carry it through fan-out so first-of-the-list
// tie-breaks survive an out-of-order reduce. The callback returns false
// to stop early; ForEachIndexed reports the number of partitions
// visited.
func ForEachIndexed(n int, fn func(idx int, blocks [][]int) bool) (int, error) {
	g, err := NewGenerator(n)
	if err != nil {
		return 0, err
	}
	count := 0
	for g.Next() {
		idx := count
		count++
		if !fn(idx, g.Blocks()) {
			break
		}
	}
	return count, nil
}

// Ints visits every partition of the integer n into positive parts in
// non-increasing order (e.g. 4 = 4, 3+1, 2+2, 2+1+1, 1+1+1+1). The parts
// slice is reused across calls; the callback returns false to stop.
// Integer partitions are the deduplicated search space when all items
// are interchangeable — the common case of a job whose VMs share one
// profile.
func Ints(n int, fn func(parts []int) bool) (int, error) {
	if n < 1 {
		return 0, fmt.Errorf("partition: Ints(%d) requires n >= 1", n)
	}
	parts := make([]int, 0, n)
	count := 0
	var rec func(remaining, maxPart int) bool
	rec = func(remaining, maxPart int) bool {
		if remaining == 0 {
			count++
			return fn(parts)
		}
		limit := maxPart
		if remaining < limit {
			limit = remaining
		}
		for p := limit; p >= 1; p-- {
			parts = append(parts, p)
			cont := rec(remaining-p, p)
			parts = parts[:len(parts)-1]
			if !cont {
				return false
			}
		}
		return true
	}
	rec(n, n)
	return count, nil
}

// CountInts returns p(n), the number of integer partitions of n, via
// Euler's pentagonal recurrence. Used as a test oracle.
func CountInts(n int) uint64 {
	if n < 0 {
		panic("partition: CountInts of negative n")
	}
	p := make([]uint64, n+1)
	p[0] = 1
	for i := 1; i <= n; i++ {
		sign := 1
		var total int64
		for k := 1; ; k++ {
			for _, g := range [2]int{k * (3*k - 1) / 2, k * (3*k + 1) / 2} {
				if g > i {
					continue
				}
				if sign > 0 {
					total += int64(p[i-g])
				} else {
					total -= int64(p[i-g])
				}
			}
			if k*(3*k-1)/2 > i {
				break
			}
			sign = -sign
		}
		if total < 0 || total > math.MaxInt64 {
			panic("partition: CountInts overflow")
		}
		p[i] = uint64(total)
	}
	return p[n]
}

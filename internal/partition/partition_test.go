package partition

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

func TestBellNumbers(t *testing.T) {
	want := []uint64{1, 1, 2, 5, 15, 52, 203, 877, 4140, 21147, 115975, 678570, 4213597}
	for n, w := range want {
		if got := Bell(n); got != w {
			t.Errorf("Bell(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestBellPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bell(-1) should panic")
		}
	}()
	Bell(-1)
}

func TestForEachCountsMatchBell(t *testing.T) {
	for n := 1; n <= 9; n++ {
		got, err := ForEach(n, func([][]int) bool { return true })
		if err != nil {
			t.Fatal(err)
		}
		if uint64(got) != Bell(n) {
			t.Errorf("ForEach(%d) visited %d partitions, want B(%d)=%d", n, got, n, Bell(n))
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	visited, err := ForEach(5, func([][]int) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if visited != 1 {
		t.Errorf("early stop visited %d, want 1", visited)
	}
}

func TestGeneratorBounds(t *testing.T) {
	if _, err := NewGenerator(0); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := NewGenerator(MaxN + 1); err == nil {
		t.Error("n beyond MaxN should fail")
	}
}

func TestPartitionsOfThree(t *testing.T) {
	var got []string
	_, err := ForEach(3, func(blocks [][]int) bool {
		got = append(got, fmt.Sprint(blocks))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"[[0 1 2]]",
		"[[0 1] [2]]",
		"[[0 2] [1]]",
		"[[0] [1 2]]",
		"[[0] [1] [2]]",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d partitions: %v", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("partition %d = %s, want %s", i, got[i], want[i])
		}
	}
}

// TestPartitionsAreValidAndDistinct checks the defining properties for
// every n: each partition covers every element exactly once, blocks are
// non-empty, and no partition repeats.
func TestPartitionsAreValidAndDistinct(t *testing.T) {
	for n := 1; n <= 8; n++ {
		seen := map[string]bool{}
		_, err := ForEach(n, func(blocks [][]int) bool {
			covered := make([]int, n)
			for _, b := range blocks {
				if len(b) == 0 {
					t.Fatalf("n=%d: empty block in %v", n, blocks)
				}
				for _, e := range b {
					covered[e]++
				}
			}
			for e, c := range covered {
				if c != 1 {
					t.Fatalf("n=%d: element %d covered %d times in %v", n, e, c, blocks)
				}
			}
			key := fmt.Sprint(blocks)
			if seen[key] {
				t.Fatalf("n=%d: duplicate partition %v", n, blocks)
			}
			seen[key] = true
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestRGSIsRestrictedGrowth(t *testing.T) {
	g, err := NewGenerator(7)
	if err != nil {
		t.Fatal(err)
	}
	for g.Next() {
		a := g.RGS()
		if a[0] != 0 {
			t.Fatalf("RGS %v does not start at 0", a)
		}
		maxSeen := 0
		for i := 1; i < len(a); i++ {
			if a[i] > maxSeen+1 || a[i] < 0 {
				t.Fatalf("RGS %v violates growth at %d", a, i)
			}
			if a[i] > maxSeen {
				maxSeen = a[i]
			}
		}
	}
}

func TestRGSLexicographicOrder(t *testing.T) {
	g, err := NewGenerator(6)
	if err != nil {
		t.Fatal(err)
	}
	var prev []int
	for g.Next() {
		cur := append([]int(nil), g.RGS()...)
		if prev != nil && !lexLess(prev, cur) {
			t.Fatalf("RGS not increasing: %v then %v", prev, cur)
		}
		prev = cur
	}
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestIntsCountsMatchOracle(t *testing.T) {
	for n := 1; n <= 20; n++ {
		got, err := Ints(n, func([]int) bool { return true })
		if err != nil {
			t.Fatal(err)
		}
		if uint64(got) != CountInts(n) {
			t.Errorf("Ints(%d) visited %d, want p(%d)=%d", n, got, n, CountInts(n))
		}
	}
}

func TestCountIntsKnownValues(t *testing.T) {
	want := []uint64{1, 1, 2, 3, 5, 7, 11, 15, 22, 30, 42, 56, 77, 101, 135, 176, 231, 297, 385, 490, 627}
	for n, w := range want {
		if got := CountInts(n); got != w {
			t.Errorf("p(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestIntsPartsValid(t *testing.T) {
	for n := 1; n <= 12; n++ {
		_, err := Ints(n, func(parts []int) bool {
			sum := 0
			for i, p := range parts {
				if p < 1 {
					t.Fatalf("n=%d: non-positive part in %v", n, parts)
				}
				if i > 0 && parts[i-1] < p {
					t.Fatalf("n=%d: parts not non-increasing: %v", n, parts)
				}
				sum += p
			}
			if sum != n {
				t.Fatalf("n=%d: parts %v sum to %d", n, parts, sum)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestIntsFour(t *testing.T) {
	// The allocator's common case: a 4-VM job has exactly 5 distinct
	// splits.
	var got []string
	if _, err := Ints(4, func(p []int) bool {
		got = append(got, fmt.Sprint(p))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"[4]", "[3 1]", "[2 2]", "[2 1 1]", "[1 1 1 1]"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Ints(4) = %v, want %v", got, want)
	}
}

func TestIntsErrors(t *testing.T) {
	if _, err := Ints(0, func([]int) bool { return true }); err == nil {
		t.Error("Ints(0) should fail")
	}
}

func TestIntsEarlyStop(t *testing.T) {
	n, err := Ints(10, func([]int) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

// TestBlockSizesMatchIntPartitions cross-checks the two enumerations:
// grouping set partitions of n by their block-size multiset must yield
// exactly the integer partitions of n.
func TestBlockSizesMatchIntPartitions(t *testing.T) {
	for n := 1; n <= 7; n++ {
		shapes := map[string]bool{}
		if _, err := ForEach(n, func(blocks [][]int) bool {
			sizes := make([]int, len(blocks))
			for i, b := range blocks {
				sizes[i] = len(b)
			}
			sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
			shapes[fmt.Sprint(sizes)] = true
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if uint64(len(shapes)) != CountInts(n) {
			t.Errorf("n=%d: %d distinct shapes, want p(%d)=%d", n, len(shapes), n, CountInts(n))
		}
	}
}

func TestGeneratorExhaustionIsSticky(t *testing.T) {
	g, _ := NewGenerator(2)
	for g.Next() {
	}
	if g.Next() {
		t.Error("Next returned true after exhaustion")
	}
}

func TestBlocksPropertyRandomN(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw%8) + 1
		count, err := ForEach(n, func(blocks [][]int) bool {
			total := 0
			for _, b := range blocks {
				total += len(b)
			}
			return total == n
		})
		return err == nil && uint64(count) == Bell(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestForEachIndexedSequence(t *testing.T) {
	for n := 1; n <= 6; n++ {
		want := 0
		count, err := ForEachIndexed(n, func(idx int, blocks [][]int) bool {
			if idx != want {
				t.Fatalf("n=%d: index %d, want %d", n, idx, want)
			}
			want++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if uint64(count) != Bell(n) || count != want {
			t.Errorf("n=%d: count=%d visited=%d, want Bell=%d", n, count, want, Bell(n))
		}
	}
}

func TestForEachIndexedEarlyStop(t *testing.T) {
	count, err := ForEachIndexed(5, func(idx int, blocks [][]int) bool {
		return idx < 9 // stop once index 9 is seen
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Errorf("count=%d after stopping at index 9, want 10", count)
	}
}

func TestBlocksAreIndependent(t *testing.T) {
	// Blocks carves all blocks from one backing array; appending to any
	// returned block must never bleed into a sibling.
	g, err := NewGenerator(6)
	if err != nil {
		t.Fatal(err)
	}
	for g.Next() {
		blocks := g.Blocks()
		snapshot := make([][]int, len(blocks))
		for i, b := range blocks {
			snapshot[i] = append([]int(nil), b...)
		}
		for i := range blocks {
			blocks[i] = append(blocks[i], 99)
		}
		for i, b := range snapshot {
			for j, v := range b {
				if blocks[i][j] != v {
					t.Fatalf("append to one block corrupted block %d", i)
				}
			}
		}
	}
}

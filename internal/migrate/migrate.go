// Package migrate implements reactive consolidation through live VM
// migration — the *dynamic* placement family the paper contrasts its
// proactive approach with (Sect. II: "the variations in VM's utilization
// requirements are handled through live VM migrations", refs [2],[3],
// [6]-[8]; the authors' own earlier work is reactive thermal migration).
//
// The planner watches the cloud drift out of shape as jobs complete and
// proposes migration plans that drain lightly-loaded servers onto
// compatible peers so the drained servers can power down, pricing every
// move with the same model database the proactive allocator uses and
// honoring the same QoS bounds plus a per-move migration cost. Combined
// with internal/cloudsim's Consolidator hook it reproduces the classic
// "first-fit placement + periodic consolidation" baseline the related
// work describes — and lets the repository quantify the paper's claim
// that proactive placement "avoid[s] costly VM migrations".
package migrate

import (
	"errors"
	"fmt"
	"sort"

	"pacevm/internal/model"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// VM is a live, migratable VM.
type VM struct {
	ID     string
	Class  workload.Class
	Server int // index into the server slice handed to the planner
	// Remaining is the VM's remaining work expressed as solo-execution
	// seconds on the reference server.
	Remaining units.Seconds
	// Budget is the wall-clock time the VM may still take without
	// violating its deadline; zero means unconstrained.
	Budget units.Seconds
}

// Move relocates one VM.
type Move struct {
	VMID     string
	From, To int
}

// Plan is a consolidation proposal.
type Plan struct {
	Moves []Move
	// PowerBefore and PowerAfter are the cloud's aggregate power draw
	// under the model database before and after applying the plan.
	PowerBefore, PowerAfter units.Watts
	// ServersDrained counts servers the plan empties.
	ServersDrained int
}

// Gain is the aggregate power reduction.
func (p Plan) Gain() units.Watts { return p.PowerBefore - p.PowerAfter }

// Planner builds consolidation plans.
type Planner struct {
	// DB is the model database used to price allocations.
	DB *model.DB
	// MigrationCost is the wall-clock penalty a migrated VM pays
	// (stop-and-copy downtime plus dirty-page slowdown, amortized).
	MigrationCost units.Seconds
	// MaxMoves caps the number of migrations per plan (migrations are
	// costly; the paper's motivation for proactive placement). Zero
	// means no cap.
	MaxMoves int
	// MinGain is the minimum aggregate power reduction (in Watts) a
	// plan must achieve to be emitted.
	MinGain units.Watts
	// PerClassBound caps per-class residency on any target server; zero
	// entries default to the database's optimal scenarios, as in the
	// proactive allocator.
	PerClassBound [workload.NumClasses]int
}

// Validate checks the planner configuration.
func (pl *Planner) Validate() error {
	if pl.DB == nil {
		return errors.New("migrate: nil model database")
	}
	if pl.MigrationCost < 0 {
		return errors.New("migrate: negative migration cost")
	}
	if pl.MaxMoves < 0 {
		return errors.New("migrate: negative move cap")
	}
	if pl.MinGain < 0 {
		return errors.New("migrate: negative minimum gain")
	}
	return nil
}

func (pl *Planner) bound(c workload.Class) int {
	b := pl.PerClassBound[c]
	if b == 0 {
		return pl.DB.Aux().OS(c)
	}
	if b < 0 {
		return 1 << 30
	}
	return b
}

// serverPower prices one server's draw (0 when empty — a drained server
// powers down; that is the point of consolidating).
func (pl *Planner) serverPower(alloc model.Key) (units.Watts, error) {
	if alloc.IsZero() {
		return 0, nil
	}
	rec, err := pl.DB.Estimate(alloc)
	if err != nil {
		return 0, err
	}
	return rec.AvgPower(), nil
}

// Propose builds a consolidation plan for the given cloud state. vms
// must be consistent with allocs (each VM's Server in range, per-server
// class counts matching). The plan is greedy: donors are scanned from
// the lightest-loaded active server, and a donor is drained only if
// every one of its VMs can move to some other active server without
// violating capacity, per-class bounds, or any affected VM's deadline
// budget.
func (pl *Planner) Propose(allocs []model.Key, vms []VM) (Plan, error) {
	if err := pl.Validate(); err != nil {
		return Plan{}, err
	}
	if err := checkConsistent(allocs, vms); err != nil {
		return Plan{}, err
	}

	cur := append([]model.Key(nil), allocs...)
	byServer := make(map[int][]VM, len(cur))
	for _, vm := range vms {
		byServer[vm.Server] = append(byServer[vm.Server], vm)
	}
	before, err := pl.totalPower(cur)
	if err != nil {
		return Plan{}, err
	}

	var plan Plan
	plan.PowerBefore = before

	// Donor order: fewest resident VMs first (cheapest to drain).
	active := make([]int, 0, len(cur))
	for i, a := range cur {
		if !a.IsZero() {
			active = append(active, i)
		}
	}
	sort.Slice(active, func(i, j int) bool {
		ti, tj := cur[active[i]].Total(), cur[active[j]].Total()
		if ti != tj {
			return ti < tj
		}
		return active[i] < active[j]
	})

	drained := map[int]bool{}
	for _, donor := range active {
		if pl.MaxMoves > 0 && len(plan.Moves)+cur[donor].Total() > pl.MaxMoves {
			continue
		}
		moves, ok := pl.drain(donor, cur, byServer, drained)
		if !ok {
			continue
		}
		// Commit.
		for _, mv := range moves {
			vm := takeVM(byServer, mv.From, mv.VMID)
			if vm == nil {
				return Plan{}, fmt.Errorf("migrate: internal bookkeeping lost VM %q", mv.VMID)
			}
			vm.Server = mv.To
			byServer[mv.To] = append(byServer[mv.To], *vm)
			cur[mv.From] = cur[mv.From].Add(model.KeyFor(vm.Class, -1))
			cur[mv.To] = cur[mv.To].Add(model.KeyFor(vm.Class, 1))
		}
		plan.Moves = append(plan.Moves, moves...)
		plan.ServersDrained++
		drained[donor] = true
	}

	after, err := pl.totalPower(cur)
	if err != nil {
		return Plan{}, err
	}
	plan.PowerAfter = after
	if plan.Gain() < pl.MinGain || len(plan.Moves) == 0 {
		return Plan{PowerBefore: before, PowerAfter: before}, nil
	}
	return plan, nil
}

// drain tries to re-home every VM of donor onto other active servers.
func (pl *Planner) drain(donor int, cur []model.Key, byServer map[int][]VM, drained map[int]bool) ([]Move, bool) {
	trial := append([]model.Key(nil), cur...)
	residents := append([]VM(nil), byServer[donor]...)
	// Move the heaviest class first for better packing stability.
	sort.SliceStable(residents, func(i, j int) bool { return residents[i].Class < residents[j].Class })
	var moves []Move
	for _, vm := range residents {
		target := -1
		for t := range trial {
			if t == donor || trial[t].IsZero() || drained[t] {
				continue // only consolidate onto servers that stay on
			}
			next := trial[t].Add(model.KeyFor(vm.Class, 1))
			if next.Count(vm.Class) > pl.bound(vm.Class) {
				continue
			}
			if !pl.qosOK(vm, next) {
				continue
			}
			if !pl.residentsOK(byServer[t], next) {
				continue
			}
			target = t
			break
		}
		if target < 0 {
			return nil, false
		}
		trial[target] = trial[target].Add(model.KeyFor(vm.Class, 1))
		moves = append(moves, Move{VMID: vm.ID, From: donor, To: target})
	}
	return moves, true
}

// qosOK checks whether a migrated VM still meets its deadline budget on
// the target allocation, paying the migration cost.
func (pl *Planner) qosOK(vm VM, target model.Key) bool {
	if vm.Budget <= 0 {
		return true
	}
	est, ok := pl.estimate(vm.Class, vm.Remaining, target)
	if !ok {
		return false
	}
	return est+pl.MigrationCost <= vm.Budget
}

// residentsOK checks the target's current residents keep their budgets
// under the new allocation (they do not pay the migration cost).
func (pl *Planner) residentsOK(residents []VM, target model.Key) bool {
	for _, r := range residents {
		if r.Budget <= 0 {
			continue
		}
		est, ok := pl.estimate(r.Class, r.Remaining, target)
		if !ok || est > r.Budget {
			return false
		}
	}
	return true
}

// estimate converts remaining solo work into wall time under an
// allocation.
func (pl *Planner) estimate(c workload.Class, remaining units.Seconds, alloc model.Key) (units.Seconds, bool) {
	rec, err := pl.DB.Estimate(alloc)
	if err != nil {
		return 0, false
	}
	ref := pl.DB.Aux().RefTime[c]
	if ref <= 0 {
		return 0, false
	}
	return rec.ClassTime(c) * remaining / ref, true
}

func (pl *Planner) totalPower(allocs []model.Key) (units.Watts, error) {
	var total units.Watts
	for _, a := range allocs {
		p, err := pl.serverPower(a)
		if err != nil {
			return 0, err
		}
		total += p
	}
	return total, nil
}

func takeVM(byServer map[int][]VM, server int, id string) *VM {
	list := byServer[server]
	for i := range list {
		if list[i].ID == id {
			vm := list[i]
			byServer[server] = append(list[:i], list[i+1:]...)
			return &vm
		}
	}
	return nil
}

func checkConsistent(allocs []model.Key, vms []VM) error {
	counts := make([]model.Key, len(allocs))
	seen := map[string]bool{}
	for _, vm := range vms {
		if vm.Server < 0 || vm.Server >= len(allocs) {
			return fmt.Errorf("migrate: VM %q on unknown server %d", vm.ID, vm.Server)
		}
		if !vm.Class.Valid() {
			return fmt.Errorf("migrate: VM %q has invalid class", vm.ID)
		}
		if vm.Remaining < 0 || vm.Budget < 0 {
			return fmt.Errorf("migrate: VM %q has negative remaining/budget", vm.ID)
		}
		if seen[vm.ID] {
			return fmt.Errorf("migrate: duplicate VM id %q", vm.ID)
		}
		seen[vm.ID] = true
		counts[vm.Server] = counts[vm.Server].Add(model.KeyFor(vm.Class, 1))
	}
	for i := range allocs {
		if counts[i] != allocs[i] {
			return fmt.Errorf("migrate: server %d allocation %v does not match resident VMs %v", i, allocs[i], counts[i])
		}
	}
	return nil
}

package migrate

import (
	"fmt"
	"sync"
	"testing"

	"pacevm/internal/campaign"
	"pacevm/internal/model"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

var (
	dbOnce sync.Once
	testDB *model.DB
	dbErr  error
)

func sharedDB(t *testing.T) *model.DB {
	t.Helper()
	dbOnce.Do(func() {
		cfg := campaign.DefaultConfig()
		cfg.FullGridTotal = 12
		testDB, _, dbErr = campaign.Run(cfg)
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return testDB
}

func planner(t *testing.T) *Planner {
	t.Helper()
	return &Planner{DB: sharedDB(t), MigrationCost: 30}
}

// cloud builds consistent allocs+VMs from per-server class counts.
func cloud(t *testing.T, perServer []model.Key) ([]model.Key, []VM) {
	t.Helper()
	db := sharedDB(t)
	var vms []VM
	for s, k := range perServer {
		for _, c := range workload.Classes {
			for i := 0; i < k.Count(c); i++ {
				vms = append(vms, VM{
					ID:        fmt.Sprintf("s%d-%v-%d", s, c, i),
					Class:     c,
					Server:    s,
					Remaining: db.Aux().RefTime[c] / 2,
				})
			}
		}
	}
	return perServer, vms
}

func TestValidate(t *testing.T) {
	if err := (&Planner{}).Validate(); err == nil {
		t.Error("nil DB should fail")
	}
	p := planner(t)
	p.MigrationCost = -1
	if err := p.Validate(); err == nil {
		t.Error("negative migration cost should fail")
	}
	p = planner(t)
	p.MaxMoves = -1
	if err := p.Validate(); err == nil {
		t.Error("negative move cap should fail")
	}
	p = planner(t)
	p.MinGain = -1
	if err := p.Validate(); err == nil {
		t.Error("negative min gain should fail")
	}
}

func TestConsistencyChecks(t *testing.T) {
	p := planner(t)
	allocs := []model.Key{{NCPU: 1}}
	cases := []struct {
		name string
		vms  []VM
	}{
		{"unknown server", []VM{{ID: "a", Class: workload.ClassCPU, Server: 5}}},
		{"invalid class", []VM{{ID: "a", Class: workload.Class(9), Server: 0}}},
		{"negative remaining", []VM{{ID: "a", Class: workload.ClassCPU, Server: 0, Remaining: -1}}},
		{"duplicate id", []VM{
			{ID: "a", Class: workload.ClassCPU, Server: 0},
			{ID: "a", Class: workload.ClassCPU, Server: 0},
		}},
		{"mismatched counts", []VM{{ID: "a", Class: workload.ClassMEM, Server: 0}}},
	}
	for _, c := range cases {
		if _, err := p.Propose(allocs, c.vms); err == nil {
			t.Errorf("%s: Propose accepted inconsistent input", c.name)
		}
	}
}

func TestDrainsFragmentedCloud(t *testing.T) {
	// Three servers each hosting one CPU VM: two of them should drain
	// onto a peer (per-class bound permitting), powering two servers
	// down.
	p := planner(t)
	allocs, vms := cloud(t, []model.Key{{NCPU: 1}, {NCPU: 1}, {NCPU: 1}})
	plan, err := p.Propose(allocs, vms)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ServersDrained < 1 {
		t.Fatalf("no servers drained: %+v", plan)
	}
	if plan.Gain() <= 0 {
		t.Errorf("consolidation gained nothing: before %v after %v", plan.PowerBefore, plan.PowerAfter)
	}
	if len(plan.Moves) == 0 {
		t.Error("no moves in a draining plan")
	}
}

func TestRespectsPerClassBound(t *testing.T) {
	// Both servers already sit at the CPU bound: nothing can drain.
	p := planner(t)
	osc := sharedDB(t).Aux().OS(workload.ClassCPU)
	allocs, vms := cloud(t, []model.Key{{NCPU: osc}, {NCPU: osc}})
	plan, err := p.Propose(allocs, vms)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 0 {
		t.Errorf("plan moved VMs past the per-class bound: %+v", plan.Moves)
	}
}

func TestQoSBlocksMigration(t *testing.T) {
	// A VM whose budget barely covers its remaining solo time cannot
	// absorb contention on a shared server, so it must stay put.
	db := sharedDB(t)
	p := planner(t)
	ref := db.Aux().RefTime[workload.ClassMEM]
	allocs := []model.Key{{NMEM: 1}, {NMEM: 2}}
	vms := []VM{
		{ID: "tight", Class: workload.ClassMEM, Server: 0, Remaining: ref, Budget: ref * 1.05},
		{ID: "b1", Class: workload.ClassMEM, Server: 1, Remaining: ref},
		{ID: "b2", Class: workload.ClassMEM, Server: 1, Remaining: ref},
	}
	plan, err := p.Propose(allocs, vms)
	if err != nil {
		t.Fatal(err)
	}
	for _, mv := range plan.Moves {
		if mv.VMID == "tight" {
			t.Errorf("migrated a VM whose QoS budget cannot absorb it: %+v", plan.Moves)
		}
	}
}

func TestResidentQoSBlocksInbound(t *testing.T) {
	// The target's resident has no slack: accepting a migrant would
	// stretch it past its budget, so the donor cannot drain there.
	db := sharedDB(t)
	p := planner(t)
	ref := db.Aux().RefTime[workload.ClassIO]
	allocs := []model.Key{{NIO: 1}, {NIO: 2}}
	vms := []VM{
		{ID: "mover", Class: workload.ClassIO, Server: 0, Remaining: ref / 2},
		{ID: "r1", Class: workload.ClassIO, Server: 1, Remaining: ref, Budget: ref * 1.05},
		{ID: "r2", Class: workload.ClassIO, Server: 1, Remaining: ref},
	}
	plan, err := p.Propose(allocs, vms)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 0 {
		t.Errorf("plan harmed a resident's QoS: %+v", plan.Moves)
	}
}

func TestMaxMovesBudget(t *testing.T) {
	p := planner(t)
	p.MaxMoves = 1
	// Each donor needs 2 moves to drain; with a 1-move budget nothing
	// can happen.
	allocs, vms := cloud(t, []model.Key{{NCPU: 2}, {NCPU: 2}, {NCPU: 0}})
	// Remove the empty server entry's VMs (none) — consistent as built.
	plan, err := p.Propose(allocs, vms)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) > 1 {
		t.Errorf("plan exceeded the move budget: %d moves", len(plan.Moves))
	}
}

func TestMinGainSuppressesMarginalPlans(t *testing.T) {
	p := planner(t)
	p.MinGain = 10000 // absurd bar
	allocs, vms := cloud(t, []model.Key{{NCPU: 1}, {NCPU: 1}})
	plan, err := p.Propose(allocs, vms)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 0 {
		t.Errorf("marginal plan emitted despite MinGain: %+v", plan)
	}
	if plan.PowerBefore != plan.PowerAfter {
		t.Error("suppressed plan should report unchanged power")
	}
}

func TestNeverMovesOntoEmptyServer(t *testing.T) {
	// Consolidation only targets servers that stay on; waking an empty
	// server to receive migrants would defeat the purpose.
	p := planner(t)
	allocs, vms := cloud(t, []model.Key{{NCPU: 1}, {}, {NCPU: 1}})
	plan, err := p.Propose(allocs, vms)
	if err != nil {
		t.Fatal(err)
	}
	for _, mv := range plan.Moves {
		if mv.To == 1 {
			t.Errorf("plan woke an empty server: %+v", mv)
		}
	}
}

func TestPlanIsInternallyConsistent(t *testing.T) {
	// Applying the plan's moves to the input must produce a consistent
	// cloud: every VM placed exactly once, totals preserved, donors
	// empty.
	p := planner(t)
	allocs, vms := cloud(t, []model.Key{
		{NCPU: 1, NIO: 1}, {NMEM: 1}, {NCPU: 2}, {NIO: 2, NMEM: 1},
	})
	plan, err := p.Propose(allocs, vms)
	if err != nil {
		t.Fatal(err)
	}
	after := append([]model.Key(nil), allocs...)
	pos := map[string]int{}
	for _, vm := range vms {
		pos[vm.ID] = vm.Server
	}
	for _, mv := range plan.Moves {
		if pos[mv.VMID] != mv.From {
			t.Fatalf("move %+v from wrong server (VM at %d)", mv, pos[mv.VMID])
		}
		var class workload.Class
		for _, vm := range vms {
			if vm.ID == mv.VMID {
				class = vm.Class
			}
		}
		after[mv.From] = after[mv.From].Add(model.KeyFor(class, -1))
		after[mv.To] = after[mv.To].Add(model.KeyFor(class, 1))
		pos[mv.VMID] = mv.To
	}
	totalBefore, totalAfter := 0, 0
	for i := range allocs {
		totalBefore += allocs[i].Total()
		totalAfter += after[i].Total()
		if !after[i].Valid() {
			t.Fatalf("negative allocation after plan: %v", after[i])
		}
	}
	if totalBefore != totalAfter {
		t.Fatalf("plan lost VMs: %d -> %d", totalBefore, totalAfter)
	}
	drained := 0
	for i := range after {
		if !allocs[i].IsZero() && after[i].IsZero() {
			drained++
		}
	}
	if drained != plan.ServersDrained {
		t.Errorf("plan reports %d drained, observed %d", plan.ServersDrained, drained)
	}
}

func TestUnconstrainedBudgetAlwaysMovable(t *testing.T) {
	p := planner(t)
	p.MigrationCost = units.Seconds(1e6) // enormous, but budgets are 0
	allocs, vms := cloud(t, []model.Key{{NIO: 1}, {NIO: 1}})
	plan, err := p.Propose(allocs, vms)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) == 0 {
		t.Error("unconstrained VMs should consolidate regardless of cost")
	}
}

package faults

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzReadSchedule checks that arbitrary input never panics the parser
// and that any schedule it accepts survives a write/parse round trip.
func FuzzReadSchedule(f *testing.F) {
	f.Add("server,down_s,up_s\n0,100,200\n1,50,75\n")
	f.Add("server,down_s,up_s\n# comment\n3,1e3,2e3\n")
	f.Add("")
	f.Add("server,down_s,up_s\n")
	f.Add("server,down_s,up_s\n0,NaN,2\n")
	f.Add("server,down_s,up_s\n0,1\n")
	f.Add("x,y\n1,2\n")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ReadSchedule(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Whatever the parser accepts must be internally sound enough to
		// round-trip exactly.
		var buf bytes.Buffer
		if err := WriteSchedule(&buf, s); err != nil {
			t.Fatalf("WriteSchedule failed on accepted schedule: %v", err)
		}
		back, err := ReadSchedule(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !reflect.DeepEqual(back, s) {
			t.Fatalf("round trip changed the schedule: %v vs %v", s, back)
		}
		// Validation of accepted events must not panic either; the fleet
		// size is a free parameter, so probe a couple.
		for _, servers := range []int{1, 1 << 20} {
			_ = s.Validate(servers)
		}
	})
}

package faults

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"pacevm/internal/units"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Seed: 7, Servers: 16, MTBF: 5000, MTTR: 300, Horizon: 50000}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatalf("expected some faults over %v with MTBF %v", cfg.Horizon, cfg.MTBF)
	}
	if err := a.Validate(cfg.Servers); err != nil {
		t.Fatalf("generated schedule fails its own validation: %v", err)
	}
	// Chronological order is part of the contract.
	for i := 1; i < len(a); i++ {
		if a[i].Down < a[i-1].Down {
			t.Fatalf("schedule not chronological at %d: %v after %v", i, a[i], a[i-1])
		}
	}
}

// Growing the fleet must not reshuffle the outages of existing servers:
// every server draws from its own named substream.
func TestGeneratePerServerStreams(t *testing.T) {
	small, err := Generate(GenConfig{Seed: 3, Servers: 4, MTBF: 2000, MTTR: 100, Horizon: 20000})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Generate(GenConfig{Seed: 3, Servers: 8, MTBF: 2000, MTTR: 100, Horizon: 20000})
	if err != nil {
		t.Fatal(err)
	}
	filter := func(s Schedule, below int) Schedule {
		var out Schedule
		for _, e := range s {
			if e.Server < below {
				out = append(out, e)
			}
		}
		return out
	}
	if got, want := filter(large, 4), filter(small, 4); !reflect.DeepEqual(got, want) {
		t.Fatalf("growing the fleet changed existing servers' outages:\nsmall %v\nlarge %v", want, got)
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	good := GenConfig{Seed: 1, Servers: 2, MTBF: 100, MTTR: 10, Horizon: 1000}
	cases := []struct {
		name string
		mut  func(*GenConfig)
	}{
		{"no servers", func(c *GenConfig) { c.Servers = 0 }},
		{"zero MTBF", func(c *GenConfig) { c.MTBF = 0 }},
		{"negative MTTR", func(c *GenConfig) { c.MTTR = -1 }},
		{"NaN MTBF", func(c *GenConfig) { c.MTBF = units.Seconds(math.NaN()) }},
		{"zero horizon", func(c *GenConfig) { c.Horizon = 0 }},
		{"inf horizon", func(c *GenConfig) { c.Horizon = units.Seconds(math.Inf(1)) }},
	}
	for _, c := range cases {
		cfg := good
		c.mut(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("%s: Generate accepted %+v", c.name, cfg)
		}
	}
}

func TestScheduleValidate(t *testing.T) {
	cases := []struct {
		name    string
		s       Schedule
		servers int
		wantErr string
	}{
		{"empty ok", nil, 4, ""},
		{"good", Schedule{{0, 10, 20}, {1, 5, 50}, {0, 20, 30}}, 2, ""},
		{"touching ok", Schedule{{0, 10, 20}, {0, 20, 30}}, 1, ""},
		{"server out of range", Schedule{{5, 1, 2}}, 4, "names server 5"},
		{"negative server", Schedule{{-1, 1, 2}}, 4, "names server -1"},
		{"negative down", Schedule{{0, -1, 2}}, 1, "negative time"},
		{"up before down", Schedule{{0, 5, 4}}, 1, "not after its crash"},
		{"up equals down", Schedule{{0, 5, 5}}, 1, "not after its crash"},
		{"NaN", Schedule{{0, units.Seconds(math.NaN()), 5}}, 1, "non-finite"},
		{"overlap", Schedule{{0, 10, 30}, {0, 20, 40}}, 1, "overlap"},
	}
	for _, c := range cases {
		err := c.s.Validate(c.servers)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: got error %v, want containing %q", c.name, err, c.wantErr)
		}
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	s, err := Generate(GenConfig{Seed: 11, Servers: 6, MTBF: 1000, MTTR: 50, Horizon: 9000})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSchedule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Fatalf("round trip changed the schedule:\nwrote %v\nread  %v", s, back)
	}
}

func TestReadScheduleErrors(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"empty", "", "empty schedule file"},
		{"bad header", "a,b,c\n", "unexpected header"},
		{"bad server", "server,down_s,up_s\nx,1,2\n", "line 2: server"},
		{"negative server", "server,down_s,up_s\n-3,1,2\n", "line 2: server -3 is negative"},
		{"bad float", "server,down_s,up_s\n0,abc,2\n", "line 2: down_s"},
		{"NaN", "server,down_s,up_s\n0,NaN,2\n", "line 2: down_s: non-finite"},
		{"inf", "server,down_s,up_s\n0,1,+Inf\n", "line 2: up_s: non-finite"},
		{"negative down", "server,down_s,up_s\n0,-4,2\n", "is negative"},
		{"up before down", "server,down_s,up_s\n0,9,3\n", "must exceed down_s"},
		{"line numbers skip comments", "server,down_s,up_s\n# a comment\n0,1,2\n0,5,1\n", "line 4: up_s"},
		{"wrong field count", "server,down_s,up_s\n0,1\n", "wrong number of fields"},
	}
	for _, c := range cases {
		_, err := ReadSchedule(strings.NewReader(c.in))
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: got error %v, want containing %q", c.name, err, c.wantErr)
		}
	}
	// Comments and blank-free files parse cleanly.
	s, err := ReadSchedule(strings.NewReader("server,down_s,up_s\n# outage drill\n2,100,250\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := Schedule{{Server: 2, Down: 100, Up: 250}}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("parsed %v, want %v", s, want)
	}
}

func TestCheckpointPolicies(t *testing.T) {
	r := Restart{}
	if got := r.Surviving(1234); got != 0 {
		t.Errorf("Restart.Surviving = %v, want 0", got)
	}
	if r.Name() != "restart" {
		t.Errorf("Restart.Name = %q", r.Name())
	}
	p := Periodic{Interval: 100}
	cases := []struct{ done, want units.Seconds }{
		{0, 0}, {99, 0}, {100, 100}, {101, 100}, {250, 200}, {300, 300},
	}
	for _, c := range cases {
		if got := p.Surviving(c.done); got != c.want {
			t.Errorf("Periodic{100}.Surviving(%v) = %v, want %v", c.done, got, c.want)
		}
	}
	if got := (Periodic{Interval: 0}).Surviving(500); got != 0 {
		t.Errorf("degenerate interval survived %v, want 0", got)
	}
	if got := p.Surviving(-5); got != 0 {
		t.Errorf("negative done survived %v, want 0", got)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, in := range []string{"", "restart", "none", "RESTART"} {
		p, err := ParsePolicy(in)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", in, err)
		}
		if _, ok := p.(Restart); !ok {
			t.Fatalf("ParsePolicy(%q) = %T, want Restart", in, p)
		}
	}
	p, err := ParsePolicy("periodic:600")
	if err != nil {
		t.Fatal(err)
	}
	per, ok := p.(Periodic)
	if !ok || per.Interval != 600 {
		t.Fatalf("ParsePolicy(periodic:600) = %#v", p)
	}
	for _, in := range []string{"periodic:0", "periodic:-5", "periodic:NaN", "periodic:x", "hourly"} {
		if _, err := ParsePolicy(in); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", in)
		}
	}
}

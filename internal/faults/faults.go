// Package faults models server failures for the datacenter simulator:
// deterministic, reproducible fault schedules (when does each server
// crash, when does it come back) and the checkpoint policies that decide
// how much of a killed VM's work survives the crash.
//
// The paper's Sect. IV evaluation assumes perfectly reliable servers; a
// production-scale allocator must keep placing well while machines die
// and recover underneath it (consolidation studies such as
// Esfandiarpoor et al. and Akhter et al. show placement quality changes
// qualitatively once server state churns). Everything here is
// deterministic by construction: a schedule is either generated from a
// seed (exponential MTBF/MTTR per server, each server on its own named
// rng substream so fleets of different sizes share prefixes) or loaded
// from a plain-text file, and the same schedule always yields the same
// simulation — there is no wall-clock anywhere.
package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"pacevm/internal/rng"
	"pacevm/internal/units"
)

// Event is one server outage: the server crashes at Down (losing its
// resident VMs and dropping to 0 W) and recovers, empty, at Up.
type Event struct {
	Server int
	Down   units.Seconds
	Up     units.Seconds
}

// Schedule is a set of outages, conventionally sorted by (Down, Server).
// The zero-length schedule means a perfectly reliable fleet — the
// paper's original assumption.
type Schedule []Event

// Validate checks that every event names a server in [0, servers),
// carries finite 0 <= Down < Up, and that no server's outages overlap.
// Outages may touch (one ends exactly when the next begins): the
// simulator schedules each event's recovery before any later crash, so
// adjacent outages process in order.
func (s Schedule) Validate(servers int) error {
	for i, e := range s {
		if e.Server < 0 || e.Server >= servers {
			return fmt.Errorf("faults: event %d names server %d, want [0,%d)", i, e.Server, servers)
		}
		if !finite(float64(e.Down)) || !finite(float64(e.Up)) {
			return fmt.Errorf("faults: event %d has non-finite times", i)
		}
		if e.Down < 0 {
			return fmt.Errorf("faults: event %d crashes at negative time %v", i, e.Down)
		}
		if e.Up <= e.Down {
			return fmt.Errorf("faults: event %d recovers at %v, not after its crash at %v", i, e.Up, e.Down)
		}
	}
	byServer := append(Schedule(nil), s...)
	sort.SliceStable(byServer, func(i, j int) bool {
		if byServer[i].Server != byServer[j].Server {
			return byServer[i].Server < byServer[j].Server
		}
		return byServer[i].Down < byServer[j].Down
	})
	for i := 1; i < len(byServer); i++ {
		prev, cur := byServer[i-1], byServer[i]
		if cur.Server == prev.Server && cur.Down < prev.Up {
			return fmt.Errorf("faults: server %d outages overlap: [%v,%v) and [%v,%v)",
				cur.Server, prev.Down, prev.Up, cur.Down, cur.Up)
		}
	}
	return nil
}

// Sort orders the schedule chronologically by (Down, Server, Up) — the
// order the simulator injects crashes in, making tie-breaks between
// simultaneous crashes on different servers deterministic.
func (s Schedule) Sort() {
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].Down != s[j].Down {
			return s[i].Down < s[j].Down
		}
		if s[i].Server != s[j].Server {
			return s[i].Server < s[j].Server
		}
		return s[i].Up < s[j].Up
	})
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// GenConfig parameterizes seeded schedule generation.
type GenConfig struct {
	// Seed drives every draw; the same seed always yields the same
	// schedule.
	Seed uint64
	// Servers is the fleet size; every server draws its own outage
	// process from its own named substream, so growing the fleet never
	// reshuffles the outages of existing servers.
	Servers int
	// MTBF is the mean time between failures (exponential): the mean up
	// time between a recovery and the next crash.
	MTBF units.Seconds
	// MTTR is the mean time to repair (exponential): the mean outage
	// duration.
	MTTR units.Seconds
	// Horizon bounds crash instants to [0, Horizon); recoveries may land
	// beyond it. Callers typically pass the workload's arrival span (or
	// a multiple of it).
	Horizon units.Seconds
}

func (cfg GenConfig) validate() error {
	if cfg.Servers < 1 {
		return fmt.Errorf("faults: need at least one server, got %d", cfg.Servers)
	}
	if cfg.MTBF <= 0 || !finite(float64(cfg.MTBF)) {
		return fmt.Errorf("faults: MTBF %v must be positive and finite", cfg.MTBF)
	}
	if cfg.MTTR <= 0 || !finite(float64(cfg.MTTR)) {
		return fmt.Errorf("faults: MTTR %v must be positive and finite", cfg.MTTR)
	}
	if cfg.Horizon <= 0 || !finite(float64(cfg.Horizon)) {
		return fmt.Errorf("faults: horizon %v must be positive and finite", cfg.Horizon)
	}
	return nil
}

// Generate draws a reproducible fault schedule: each server alternates
// exponential up times (mean MTBF) and outages (mean MTTR) starting from
// time zero, crashing only within [0, Horizon). The result is sorted
// chronologically and always passes Validate(cfg.Servers).
func Generate(cfg GenConfig) (Schedule, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	src := rng.NewSource(cfg.Seed)
	var out Schedule
	for srv := 0; srv < cfg.Servers; srv++ {
		stream := src.Stream("faults/server/" + strconv.Itoa(srv))
		t := stream.Exp(float64(cfg.MTBF))
		for units.Seconds(t) < cfg.Horizon {
			repair := stream.Exp(float64(cfg.MTTR))
			for repair <= 0 { // Exp can return exactly 0; Up must exceed Down
				repair = stream.Exp(float64(cfg.MTTR))
			}
			out = append(out, Event{
				Server: srv,
				Down:   units.Seconds(t),
				Up:     units.Seconds(t + repair),
			})
			t += repair + stream.Exp(float64(cfg.MTBF))
		}
	}
	out.Sort()
	return out, nil
}

// CheckpointPolicy decides how much of a killed VM's completed work
// survives a server crash. Implementations must be pure functions of
// their inputs — the simulator's determinism depends on it.
type CheckpointPolicy interface {
	Name() string
	// Surviving returns the portion of done (nominal-seconds of work the
	// VM had completed when its server crashed) that survives the crash.
	// The result must lie in [0, done].
	Surviving(done units.Seconds) units.Seconds
}

// Restart is the no-checkpoint policy: a killed VM restarts from
// scratch, losing all completed work.
type Restart struct{}

// Name implements CheckpointPolicy.
func (Restart) Name() string { return "restart" }

// Surviving implements CheckpointPolicy: nothing survives.
func (Restart) Surviving(units.Seconds) units.Seconds { return 0 }

// Periodic models periodic checkpointing every Interval nominal-seconds
// of progress: a crash loses only the tail of work since the last
// checkpoint.
type Periodic struct {
	Interval units.Seconds
}

// Name implements CheckpointPolicy.
func (p Periodic) Name() string {
	return "periodic:" + strconv.FormatFloat(float64(p.Interval), 'g', -1, 64)
}

// Surviving implements CheckpointPolicy: the work up to the last
// completed checkpoint boundary survives.
func (p Periodic) Surviving(done units.Seconds) units.Seconds {
	if p.Interval <= 0 || done <= 0 {
		return 0
	}
	kept := units.Seconds(math.Floor(float64(done)/float64(p.Interval))) * p.Interval
	if kept > done {
		kept = done
	}
	if kept < 0 {
		kept = 0
	}
	return kept
}

// ParsePolicy parses a CLI policy spec: "restart" (or "none", or the
// empty string) for Restart, "periodic:<seconds>" for Periodic.
func ParsePolicy(s string) (CheckpointPolicy, error) {
	switch strings.ToLower(s) {
	case "", "restart", "none":
		return Restart{}, nil
	}
	if spec, ok := strings.CutPrefix(strings.ToLower(s), "periodic:"); ok {
		iv, err := strconv.ParseFloat(spec, 64)
		if err != nil {
			return nil, fmt.Errorf("faults: bad checkpoint interval %q: %w", spec, err)
		}
		if iv <= 0 || !finite(iv) {
			return nil, fmt.Errorf("faults: checkpoint interval %q must be positive and finite", spec)
		}
		return Periodic{Interval: units.Seconds(iv)}, nil
	}
	return nil, fmt.Errorf("faults: unknown checkpoint policy %q (want restart or periodic:<seconds>)", s)
}

package faults

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"pacevm/internal/units"
)

// The on-disk schedule format follows the repository's model-database
// convention: plain comma-separated values with a fixed header, one row
// per outage, '#' comment lines allowed. Times are seconds of simulated
// time.
//
//	server,down_s,up_s
//	0,3600,4200
//	7,5400,5460

var scheduleHeader = []string{"server", "down_s", "up_s"}

// WriteSchedule writes the schedule in the plain-text form ReadSchedule
// parses. The schedule is written as-is; call Sort first for the
// conventional chronological order.
func WriteSchedule(w io.Writer, s Schedule) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(scheduleHeader); err != nil {
		return fmt.Errorf("faults: writing schedule header: %w", err)
	}
	for i, e := range s {
		row := []string{
			strconv.Itoa(e.Server),
			strconv.FormatFloat(float64(e.Down), 'g', -1, 64),
			strconv.FormatFloat(float64(e.Up), 'g', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("faults: writing schedule event %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSchedule parses a schedule written by WriteSchedule (or by hand).
// Errors carry the file line of the offending row. The returned schedule
// is syntactically sound (finite times, Up > Down, non-negative server
// ids); fleet-size bounds and per-server overlap are checked by
// Schedule.Validate, which needs the fleet size.
func ReadSchedule(r io.Reader) (Schedule, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(scheduleHeader)
	cr.Comment = '#'

	header, err := cr.Read()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("faults: empty schedule file (want %v header)", scheduleHeader)
		}
		return nil, fmt.Errorf("faults: reading schedule header: %w", err)
	}
	if !sameRow(header, scheduleHeader) {
		line, _ := cr.FieldPos(0)
		return nil, fmt.Errorf("faults: schedule line %d: unexpected header %v, want %v", line, header, scheduleHeader)
	}

	var out Schedule
	for {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("faults: parsing schedule: %w", err)
		}
		line, _ := cr.FieldPos(0)
		e, err := parseScheduleRow(row)
		if err != nil {
			return nil, fmt.Errorf("faults: schedule line %d: %w", line, err)
		}
		out = append(out, e)
	}
	return out, nil
}

func parseScheduleRow(row []string) (Event, error) {
	var e Event
	srv, err := strconv.Atoi(row[0])
	if err != nil {
		return e, fmt.Errorf("server: %w", err)
	}
	if srv < 0 {
		return e, fmt.Errorf("server %d is negative", srv)
	}
	down, err := parseFiniteSeconds("down_s", row[1])
	if err != nil {
		return e, err
	}
	up, err := parseFiniteSeconds("up_s", row[2])
	if err != nil {
		return e, err
	}
	if down < 0 {
		return e, fmt.Errorf("down_s %v is negative", down)
	}
	if up <= down {
		return e, fmt.Errorf("up_s %v must exceed down_s %v", up, down)
	}
	e.Server, e.Down, e.Up = srv, down, up
	return e, nil
}

func parseFiniteSeconds(field, s string) (units.Seconds, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", field, err)
	}
	if !finite(f) {
		return 0, fmt.Errorf("%s: non-finite value %q", field, s)
	}
	return units.Seconds(f), nil
}

func sameRow(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package subsys

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIDString(t *testing.T) {
	cases := []struct {
		id   ID
		want string
	}{
		{CPU, "cpu"}, {MEM, "mem"}, {DISK, "disk"}, {NET, "net"}, {ID(9), "subsys(9)"},
	}
	for _, c := range cases {
		if got := c.id.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int(c.id), got, c.want)
		}
	}
}

func TestValid(t *testing.T) {
	for _, id := range All {
		if !id.Valid() {
			t.Errorf("%v should be valid", id)
		}
	}
	for _, id := range []ID{-1, ID(Count), 42} {
		if id.Valid() {
			t.Errorf("%d should be invalid", int(id))
		}
	}
}

func TestGetPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Get on invalid id should panic")
		}
	}()
	V(1, 2, 3, 4).Get(ID(99))
}

func TestVectorBasicOps(t *testing.T) {
	a := V(1, 2, 3, 4)
	b := V(4, 3, 2, 1)
	if got := a.Add(b); got != V(5, 5, 5, 5) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-3, -1, 1, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Max(b); got != V(4, 3, 3, 4) {
		t.Errorf("Max = %v", got)
	}
	if got := a.Sum(); got != 10 {
		t.Errorf("Sum = %v", got)
	}
}

func TestDiv(t *testing.T) {
	got := V(2, 0, 3, 0).Div(V(4, 2, 0, 0))
	if got[CPU] != 0.5 || got[MEM] != 0 || !math.IsInf(got[DISK], 1) || got[NET] != 0 {
		t.Errorf("Div = %v", got)
	}
}

func TestMaxComponent(t *testing.T) {
	id, v := V(0.1, 0.9, 0.3, 0.2).MaxComponent()
	if id != MEM || v != 0.9 {
		t.Errorf("MaxComponent = %v,%v", id, v)
	}
	// Ties resolve to the earlier subsystem in canonical order.
	id, _ = V(0.5, 0.5, 0.5, 0.5).MaxComponent()
	if id != CPU {
		t.Errorf("tie should pick CPU, got %v", id)
	}
}

func TestDominates(t *testing.T) {
	if !V(1, 1, 1, 1).Dominates(V(1, 0.5, 0, 1)) {
		t.Error("should dominate")
	}
	if V(1, 1, 1, 0.5).Dominates(V(0, 0, 0, 1)) {
		t.Error("should not dominate")
	}
}

func TestZeroAndNonNegative(t *testing.T) {
	var z Vector
	if !z.IsZero() || !z.NonNegative() {
		t.Error("zero vector misclassified")
	}
	if V(0, -1, 0, 0).NonNegative() {
		t.Error("negative component misclassified")
	}
	if V(0, math.NaN(), 0, 0).NonNegative() {
		t.Error("NaN component should not be non-negative")
	}
}

func TestClamp01(t *testing.T) {
	if got := V(-1, 0.5, 2, 1).Clamp01(); got != V(0, 0.5, 1, 1) {
		t.Errorf("Clamp01 = %v", got)
	}
}

func TestString(t *testing.T) {
	want := "{cpu=1.000 mem=2.000 disk=3.000 net=4.000}"
	if got := V(1, 2, 3, 4).String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// bounded produces a vector with finite moderate components from raw quick
// inputs, avoiding NaN/Inf in algebraic property checks.
func bounded(v Vector) Vector {
	for i := range v {
		if math.IsNaN(v[i]) || math.IsInf(v[i], 0) {
			v[i] = 0
		}
		v[i] = math.Mod(v[i], 1e6)
	}
	return v
}

func TestAddCommutativeAssociative(t *testing.T) {
	f := func(a, b, c Vector) bool {
		a, b, c = bounded(a), bounded(b), bounded(c)
		if a.Add(b) != b.Add(a) {
			return false
		}
		l := a.Add(b).Add(c)
		r := a.Add(b.Add(c))
		for i := range l {
			if math.Abs(l[i]-r[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubInverseOfAdd(t *testing.T) {
	f := func(a, b Vector) bool {
		a, b = bounded(a), bounded(b)
		got := a.Add(b).Sub(b)
		for i := range got {
			if math.Abs(got[i]-a[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxIsUpperBound(t *testing.T) {
	f := func(a, b Vector) bool {
		a, b = bounded(a), bounded(b)
		m := a.Max(b)
		return m.Dominates(a) && m.Dominates(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp01Idempotent(t *testing.T) {
	f := func(a Vector) bool {
		a = bounded(a)
		c := a.Clamp01()
		return c == c.Clamp01() && c.NonNegative()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Package subsys models the four server subsystems the paper profiles —
// CPU, memory, disk (storage) and the network interface — and the
// demand/utilization vectors defined over them.
//
// The paper's central departure from prior consolidation work is that a
// VM's resource requirement is a *vector* over these four dimensions, not
// a single CPU-utilization scalar (Sect. I, Sect. III.A). Every layer of
// PACE-VM (benchmark phases, hypervisor contention, profiling, the model
// database keys) is expressed in terms of subsys.Vector.
package subsys

import (
	"fmt"
	"math"
	"strings"
)

// ID identifies one server subsystem.
type ID int

// The four subsystems, in the paper's canonical order.
const (
	CPU ID = iota
	MEM
	DISK
	NET
	count // number of subsystems
)

// Count is the number of modelled subsystems.
const Count = int(count)

// All lists the subsystems in canonical order.
var All = [Count]ID{CPU, MEM, DISK, NET}

func (id ID) String() string {
	switch id {
	case CPU:
		return "cpu"
	case MEM:
		return "mem"
	case DISK:
		return "disk"
	case NET:
		return "net"
	default:
		return fmt.Sprintf("subsys(%d)", int(id))
	}
}

// Valid reports whether id names one of the four modelled subsystems.
func (id ID) Valid() bool { return id >= 0 && id < count }

// Vector is a quantity per subsystem: a demand, a utilization, or a
// capacity, depending on context. The zero value is the zero vector.
type Vector [Count]float64

// V constructs a Vector from per-subsystem values in canonical order.
func V(cpu, mem, disk, net float64) Vector { return Vector{cpu, mem, disk, net} }

// Get returns the component for id. It panics on an invalid id, which
// always indicates a programming error rather than bad input.
func (v Vector) Get(id ID) float64 {
	if !id.Valid() {
		panic(fmt.Sprintf("subsys: invalid id %d", int(id)))
	}
	return v[id]
}

// Add returns v + w componentwise.
func (v Vector) Add(w Vector) Vector {
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// Sub returns v - w componentwise.
func (v Vector) Sub(w Vector) Vector {
	for i := range v {
		v[i] -= w[i]
	}
	return v
}

// Scale returns v scaled by k.
func (v Vector) Scale(k float64) Vector {
	for i := range v {
		v[i] *= k
	}
	return v
}

// Div returns the componentwise ratio v/w. Components where w is zero
// yield +Inf if v is positive, 0 if v is zero (a zero demand on a zero
// capacity is vacuously satisfiable).
func (v Vector) Div(w Vector) Vector {
	var out Vector
	for i := range v {
		switch {
		case w[i] != 0:
			out[i] = v[i] / w[i]
		case v[i] == 0:
			out[i] = 0
		default:
			out[i] = math.Inf(1)
		}
	}
	return out
}

// Max returns the componentwise maximum of v and w.
func (v Vector) Max(w Vector) Vector {
	for i := range v {
		if w[i] > v[i] {
			v[i] = w[i]
		}
	}
	return v
}

// MaxComponent returns the largest component and its subsystem.
func (v Vector) MaxComponent() (ID, float64) {
	best, id := v[0], All[0]
	for i := 1; i < Count; i++ {
		if v[i] > best {
			best, id = v[i], All[i]
		}
	}
	return id, best
}

// Sum returns the sum of components.
func (v Vector) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Dominates reports whether every component of v is >= the corresponding
// component of w.
func (v Vector) Dominates(w Vector) bool {
	for i := range v {
		if v[i] < w[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether all components are exactly zero.
func (v Vector) IsZero() bool { return v == Vector{} }

// NonNegative reports whether no component is negative (NaN components
// count as negative: they are never valid demands).
func (v Vector) NonNegative() bool {
	for _, x := range v {
		if !(x >= 0) {
			return false
		}
	}
	return true
}

// Clamp01 clamps every component into [0,1]; used when converting demand
// vectors into utilization fractions.
func (v Vector) Clamp01() Vector {
	for i := range v {
		if v[i] < 0 {
			v[i] = 0
		} else if v[i] > 1 {
			v[i] = 1
		}
	}
	return v
}

func (v Vector) String() string {
	parts := make([]string, Count)
	for i, id := range All {
		parts[i] = fmt.Sprintf("%s=%.3f", id, v[i])
	}
	return "{" + strings.Join(parts, " ") + "}"
}

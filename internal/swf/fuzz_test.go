package swf

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse checks that arbitrary input never panics the parser, and
// that anything it accepts survives a write/parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("")
	f.Add("; Version: 2.2\n")
	f.Add("1 0 5 600 2 -1 -1 2 1200 -1 1 3 1 7 1 1 -1 -1\n")
	f.Add("1 2 3\n")
	f.Add(strings.Repeat("9 ", 18) + "\n")
	f.Add("; broken header without colon\n\n  \n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Parse(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("Write failed on accepted trace: %v", err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back.Jobs) != len(tr.Jobs) {
			t.Fatalf("round trip changed job count: %d vs %d", len(back.Jobs), len(tr.Jobs))
		}
		// Cleaning accepted input must never panic either.
		_, rep := Clean(tr)
		if rep.Kept+rep.Failed+rep.Cancelled+rep.Anomalous != rep.Input {
			t.Fatalf("clean report does not add up: %+v", rep)
		}
	})
}

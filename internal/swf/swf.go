// Package swf reads and writes the Standard Workload Format (SWF) of the
// Parallel Workloads Archive [24], the interchange format the paper
// converts the Grid Observatory EGEE traces into before cleaning and
// simulation (Sect. IV.B).
//
// An SWF file is a sequence of header directives — comment lines of the
// form "; Key: Value" — followed by one line per job with 18
// whitespace-separated numeric fields. Unknown values are -1. This
// package implements the v2.x field list and the cleaning pass the paper
// applies: "we cleaned the trace … to eliminate failed jobs, cancelled
// jobs and anomalies".
package swf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Status values defined by the SWF specification.
const (
	StatusFailed             = 0
	StatusCompleted          = 1
	StatusPartialToBeContd   = 2
	StatusPartialLastOfChain = 3
	StatusCancelled          = 5
)

// Job is one SWF record. Field names and order follow the v2.2
// specification; times are in seconds from the trace origin, -1 means
// unknown.
type Job struct {
	JobNumber     int
	SubmitTime    int64
	WaitTime      int64
	RunTime       int64
	AllocatedProc int
	AvgCPUTime    float64
	UsedMemory    float64
	ReqProc       int
	ReqTime       int64
	ReqMemory     float64
	Status        int
	UserID        int
	GroupID       int
	ExecutableID  int
	QueueNumber   int
	PartitionNum  int
	PrecedingJob  int
	ThinkTime     int64
}

// NumFields is the SWF v2.x record arity.
const NumFields = 18

// Trace is a parsed SWF file: header directives in encounter order plus
// the job records.
type Trace struct {
	// Header holds "; Key: Value" directives. Keys keep their original
	// capitalization; duplicate keys keep the last value.
	Header map[string]string
	// HeaderOrder preserves directive order for faithful re-emission.
	HeaderOrder []string
	Jobs        []Job
}

// Parse reads an SWF stream. Malformed job lines produce an error naming
// the line number; unparsable directives are kept as raw comments and
// ignored.
func Parse(r io.Reader) (*Trace, error) {
	tr := &Trace{Header: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			key, val, ok := strings.Cut(strings.TrimSpace(line[1:]), ":")
			if ok {
				key = strings.TrimSpace(key)
				val = strings.TrimSpace(val)
				if key != "" {
					if _, dup := tr.Header[key]; !dup {
						tr.HeaderOrder = append(tr.HeaderOrder, key)
					}
					tr.Header[key] = val
				}
			}
			continue
		}
		job, err := parseJobLine(line)
		if err != nil {
			return nil, fmt.Errorf("swf: line %d: %w", lineNo, err)
		}
		tr.Jobs = append(tr.Jobs, job)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("swf: reading: %w", err)
	}
	return tr, nil
}

func parseJobLine(line string) (Job, error) {
	fields := strings.Fields(line)
	if len(fields) != NumFields {
		return Job{}, fmt.Errorf("record has %d fields, want %d", len(fields), NumFields)
	}
	ints := make([]int64, NumFields)
	floats := make([]float64, NumFields)
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return Job{}, fmt.Errorf("field %d %q: %w", i+1, f, err)
		}
		floats[i] = v
		ints[i] = int64(v)
	}
	return Job{
		JobNumber:     int(ints[0]),
		SubmitTime:    ints[1],
		WaitTime:      ints[2],
		RunTime:       ints[3],
		AllocatedProc: int(ints[4]),
		AvgCPUTime:    floats[5],
		UsedMemory:    floats[6],
		ReqProc:       int(ints[7]),
		ReqTime:       ints[8],
		ReqMemory:     floats[9],
		Status:        int(ints[10]),
		UserID:        int(ints[11]),
		GroupID:       int(ints[12]),
		ExecutableID:  int(ints[13]),
		QueueNumber:   int(ints[14]),
		PartitionNum:  int(ints[15]),
		PrecedingJob:  int(ints[16]),
		ThinkTime:     ints[17],
	}, nil
}

// Write emits the trace in SWF text form.
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	for _, key := range tr.HeaderOrder {
		if _, err := fmt.Fprintf(bw, "; %s: %s\n", key, tr.Header[key]); err != nil {
			return fmt.Errorf("swf: writing header: %w", err)
		}
	}
	for _, j := range tr.Jobs {
		_, err := fmt.Fprintf(bw, "%d %d %d %d %d %s %s %d %d %s %d %d %d %d %d %d %d %d\n",
			j.JobNumber, j.SubmitTime, j.WaitTime, j.RunTime, j.AllocatedProc,
			fmtFloat(j.AvgCPUTime), fmtFloat(j.UsedMemory),
			j.ReqProc, j.ReqTime, fmtFloat(j.ReqMemory),
			j.Status, j.UserID, j.GroupID, j.ExecutableID,
			j.QueueNumber, j.PartitionNum, j.PrecedingJob, j.ThinkTime)
		if err != nil {
			return fmt.Errorf("swf: writing job %d: %w", j.JobNumber, err)
		}
	}
	return bw.Flush()
}

func fmtFloat(f float64) string {
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Merge combines several traces into one, as the paper does with the
// multi-file Grid Observatory logs ("as they are usually composed of
// multiple files we combined them into a single file"). Jobs are
// re-sorted by submit time and renumbered; headers are taken from the
// first trace.
func Merge(traces ...*Trace) *Trace {
	out := &Trace{Header: map[string]string{}}
	for i, tr := range traces {
		if i == 0 {
			for _, k := range tr.HeaderOrder {
				out.HeaderOrder = append(out.HeaderOrder, k)
				out.Header[k] = tr.Header[k]
			}
		}
		out.Jobs = append(out.Jobs, tr.Jobs...)
	}
	sort.SliceStable(out.Jobs, func(i, j int) bool {
		return out.Jobs[i].SubmitTime < out.Jobs[j].SubmitTime
	})
	for i := range out.Jobs {
		out.Jobs[i].JobNumber = i + 1
	}
	return out
}

// CleanReport summarizes what Clean removed.
type CleanReport struct {
	Input     int
	Failed    int
	Cancelled int
	Anomalous int
	Kept      int
}

// Clean applies the paper's preprocessing: failed jobs, cancelled jobs
// and anomalies are eliminated. Anomalies are records a simulator cannot
// replay meaningfully: non-positive runtimes, negative submit times,
// non-positive processor counts, or runtimes wildly exceeding the
// requested limit (> 10× a positive request).
func Clean(tr *Trace) (*Trace, CleanReport) {
	rep := CleanReport{Input: len(tr.Jobs)}
	out := &Trace{Header: tr.Header, HeaderOrder: tr.HeaderOrder}
	for _, j := range tr.Jobs {
		switch {
		case j.Status == StatusFailed:
			rep.Failed++
		case j.Status == StatusCancelled:
			rep.Cancelled++
		case j.RunTime <= 0 || j.SubmitTime < 0 || procCount(j) <= 0 ||
			(j.ReqTime > 0 && j.RunTime > 10*j.ReqTime):
			rep.Anomalous++
		default:
			out.Jobs = append(out.Jobs, j)
		}
	}
	rep.Kept = len(out.Jobs)
	return out, rep
}

// procCount returns the best-known processor count of a job: the
// allocated count when recorded, otherwise the requested count.
func procCount(j Job) int {
	if j.AllocatedProc > 0 {
		return j.AllocatedProc
	}
	return j.ReqProc
}

// ProcCount exposes procCount for downstream preprocessing.
func ProcCount(j Job) int { return procCount(j) }

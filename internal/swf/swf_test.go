package swf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

const sample = `; Version: 2.2
; Computer: EGEE-like grid
; MaxJobs: 4
1 0 5 600 2 -1 -1 2 1200 -1 1 3 1 7 1 1 -1 -1
2 30 0 450 1 -1 -1 1 900 -1 1 4 1 7 1 1 -1 -1
3 60 -1 -1 1 -1 -1 1 900 -1 0 4 1 7 1 1 -1 -1
4 90 10 300 4 -1 -1 4 600 -1 5 2 1 8 1 1 -1 -1
`

func TestParseSample(t *testing.T) {
	tr, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 4 {
		t.Fatalf("jobs = %d", len(tr.Jobs))
	}
	if tr.Header["Version"] != "2.2" || tr.Header["MaxJobs"] != "4" {
		t.Errorf("header = %v", tr.Header)
	}
	if len(tr.HeaderOrder) != 3 || tr.HeaderOrder[0] != "Version" {
		t.Errorf("header order = %v", tr.HeaderOrder)
	}
	j := tr.Jobs[0]
	if j.JobNumber != 1 || j.SubmitTime != 0 || j.WaitTime != 5 || j.RunTime != 600 ||
		j.AllocatedProc != 2 || j.Status != StatusCompleted || j.UserID != 3 {
		t.Errorf("job 1 = %+v", j)
	}
	if tr.Jobs[2].Status != StatusFailed || tr.Jobs[3].Status != StatusCancelled {
		t.Error("status fields misparsed")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []string{
		"1 2 3\n",                       // too few fields
		strings.Repeat("1 ", 19) + "\n", // too many fields
		"1 0 5 x 2 -1 -1 2 1200 -1 1 3 1 7 1 1 -1 -1\n", // non-numeric
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("Parse accepted %q", c)
		}
	}
}

func TestParseSkipsBlankAndComments(t *testing.T) {
	in := "\n; free-form comment without colon\n\n" + "1 0 0 10 1 -1 -1 1 20 -1 1 1 1 1 1 1 -1 -1\n"
	tr, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 1 {
		t.Fatalf("jobs = %d", len(tr.Jobs))
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	tr, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != len(tr.Jobs) {
		t.Fatalf("round trip lost jobs")
	}
	for i := range tr.Jobs {
		if back.Jobs[i] != tr.Jobs[i] {
			t.Errorf("job %d drifted: %+v vs %+v", i, back.Jobs[i], tr.Jobs[i])
		}
	}
	for k, v := range tr.Header {
		if back.Header[k] != v {
			t.Errorf("header %q drifted", k)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(submit uint32, run uint16, procs, status uint8) bool {
		j := Job{
			JobNumber:  1,
			SubmitTime: int64(submit),
			RunTime:    int64(run),
			ReqProc:    int(procs%16) + 1,
			Status:     int(status % 6),
			AvgCPUTime: -1, UsedMemory: -1, ReqMemory: -1,
			WaitTime: -1, ReqTime: -1, ThinkTime: -1,
			UserID: -1, GroupID: -1, ExecutableID: -1,
			QueueNumber: -1, PartitionNum: -1, PrecedingJob: -1,
			AllocatedProc: -1,
		}
		var buf bytes.Buffer
		if err := Write(&buf, &Trace{Jobs: []Job{j}}); err != nil {
			return false
		}
		back, err := Parse(&buf)
		if err != nil || len(back.Jobs) != 1 {
			return false
		}
		return back.Jobs[0] == j
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClean(t *testing.T) {
	tr, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	clean, rep := Clean(tr)
	if rep.Input != 4 || rep.Failed != 1 || rep.Cancelled != 1 || rep.Kept != 2 {
		t.Errorf("report = %+v", rep)
	}
	for _, j := range clean.Jobs {
		if j.Status != StatusCompleted {
			t.Errorf("uncleaned job %+v", j)
		}
	}
}

func TestCleanAnomalies(t *testing.T) {
	tr := &Trace{Jobs: []Job{
		{JobNumber: 1, SubmitTime: 0, RunTime: 0, ReqProc: 1, Status: 1},                  // zero runtime
		{JobNumber: 2, SubmitTime: -5, RunTime: 100, ReqProc: 1, Status: 1},               // negative submit
		{JobNumber: 3, SubmitTime: 0, RunTime: 100, ReqProc: 0, Status: 1},                // no processors
		{JobNumber: 4, SubmitTime: 0, RunTime: 10000, ReqProc: 1, ReqTime: 10, Status: 1}, // runtime >> request
		{JobNumber: 5, SubmitTime: 0, RunTime: 100, ReqProc: 2, Status: 1},                // good
	}}
	clean, rep := Clean(tr)
	if rep.Anomalous != 4 || rep.Kept != 1 {
		t.Errorf("report = %+v", rep)
	}
	if len(clean.Jobs) != 1 || clean.Jobs[0].JobNumber != 5 {
		t.Errorf("kept = %+v", clean.Jobs)
	}
}

func TestMerge(t *testing.T) {
	a := &Trace{
		Header:      map[string]string{"Version": "2.2"},
		HeaderOrder: []string{"Version"},
		Jobs: []Job{
			{JobNumber: 10, SubmitTime: 100, RunTime: 1, ReqProc: 1, Status: 1},
			{JobNumber: 11, SubmitTime: 300, RunTime: 1, ReqProc: 1, Status: 1},
		},
	}
	b := &Trace{Jobs: []Job{
		{JobNumber: 1, SubmitTime: 200, RunTime: 1, ReqProc: 1, Status: 1},
	}}
	m := Merge(a, b)
	if len(m.Jobs) != 3 {
		t.Fatalf("merged jobs = %d", len(m.Jobs))
	}
	wantSubmits := []int64{100, 200, 300}
	for i, j := range m.Jobs {
		if j.SubmitTime != wantSubmits[i] {
			t.Errorf("job %d submit = %d, want %d", i, j.SubmitTime, wantSubmits[i])
		}
		if j.JobNumber != i+1 {
			t.Errorf("job %d renumbered to %d", i, j.JobNumber)
		}
	}
	if m.Header["Version"] != "2.2" {
		t.Error("merge dropped header")
	}
}

func TestMergeStableOnTies(t *testing.T) {
	a := &Trace{Jobs: []Job{{JobNumber: 1, SubmitTime: 100, UserID: 1}}}
	b := &Trace{Jobs: []Job{{JobNumber: 2, SubmitTime: 100, UserID: 2}}}
	m := Merge(a, b)
	if m.Jobs[0].UserID != 1 || m.Jobs[1].UserID != 2 {
		t.Error("merge not stable on equal submit times")
	}
}

func TestProcCount(t *testing.T) {
	if got := ProcCount(Job{AllocatedProc: 3, ReqProc: 8}); got != 3 {
		t.Errorf("ProcCount = %d, want allocated 3", got)
	}
	if got := ProcCount(Job{AllocatedProc: -1, ReqProc: 8}); got != 8 {
		t.Errorf("ProcCount = %d, want requested 8", got)
	}
}

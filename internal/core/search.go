package core

// The parallel Pareto-pruned partition search behind Allocator.Allocate.
//
// The engine keeps the paper's exhaustive semantics — every non-redundant
// set partition of the VM set is still evaluated — but restructures the
// enumeration around four exact reductions:
//
//  1. Equivalent partitions (same typed multiset of block compositions)
//     are deduplicated through a packed integer signature instead of the
//     legacy sorted-string form; no per-partition string is ever built.
//  2. Block pricing is memoized per (server state, block composition):
//     the same block on the same effective allocation is priced once,
//     not once per partition that contains it. Database estimates are
//     additionally memoized per allocation key (model.EstimateCache).
//  3. Candidates are pruned online to a Pareto frontier: the α-weighted
//     score after max-normalization is monotone increasing in both
//     estimated time and energy, so a candidate weakly dominated by an
//     earlier one can never win under any goal — dropping it cannot
//     change the outcome (the earlier candidate also wins the
//     first-of-the-list tie-break). Later dominators never evict earlier
//     candidates, because within the scoreEpsilon tie band the earlier
//     index must still win.
//  4. For larger VM sets the deduplicated partition stream fans out to a
//     bounded worker pool. Each job carries its enumeration index, each
//     worker reduces its subsequence in arrival order, and the final
//     merge re-sorts by index, so the deterministic tie-break of the
//     serial scan survives the parallel reduce bit-for-bit.
//
// Normalization maxima are tracked over every feasible candidate — not
// just the retained frontier — so pickBest sees exactly the constants
// the unpruned enumeration would have used.

import (
	"sort"
	"sync"

	"pacevm/internal/model"
	"pacevm/internal/obs"
	"pacevm/internal/partition"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// parallelWorkThreshold is the VM-set size from which Allocate fans the
// partition stream out to the worker pool. Below it there are at most
// B(5) = 52 partitions and the pool's startup cost exceeds the work; it
// also keeps the per-job allocations of the nested searches issued by a
// concurrent datacenter simulation (jobs of 1–4 VMs) on the serial fast
// path.
const parallelWorkThreshold = 6

// blockSig is the canonical typed-multiset signature of one block: VM
// counts packed 4 bits per VM type. partition.MaxN = 12 bounds both the
// number of distinct types and any count at 12, so 48 bits suffice and
// two blocks have equal signatures iff their typed multisets are equal.
type blockSig uint64

// partSig canonicalizes a whole partition as its sorted multiset of
// block signatures, zero-padded (a block is never empty, so a zero entry
// is unambiguous padding). Two partitions have equal signatures iff
// their multisets of block compositions are equal — the typed
// generalization of the paper's interchangeable-VM reduction [21].
type partSig [partition.MaxN]blockSig

// typeMask is a bitset over VM types (≤ partition.MaxN of them).
type typeMask uint16

// vmTypes assigns each VM a small type id such that two VMs share an id
// iff they are interchangeable: same class, nominal time and QoS bound.
// types[t] is a representative request of type t.
func vmTypes(vms []VMRequest) (typeOf []uint8, types []VMRequest) {
	typeOf = make([]uint8, len(vms))
	types = make([]VMRequest, 0, len(vms))
assign:
	for i, vm := range vms {
		for t, rep := range types {
			if rep.Class == vm.Class && rep.NominalTime == vm.NominalTime && rep.MaxTime == vm.MaxTime {
				typeOf[i] = uint8(t)
				continue assign
			}
		}
		typeOf[i] = uint8(len(types))
		types = append(types, vm)
	}
	return typeOf, types
}

// sigOfBlock folds a block's members into its packed type-count vector.
func sigOfBlock(typeOf []uint8, block []int) blockSig {
	var sig blockSig
	for _, vi := range block {
		sig += 1 << (4 * blockSig(typeOf[vi]))
	}
	return sig
}

// sigOfPartition canonicalizes a partition: block signatures, insertion-
// sorted descending into a fixed array. No heap allocation.
func sigOfPartition(typeOf []uint8, blocks [][]int) partSig {
	var sig partSig
	for i, block := range blocks {
		s := sigOfBlock(typeOf, block)
		j := i
		for j > 0 && sig[j-1] < s {
			sig[j] = sig[j-1]
			j--
		}
		sig[j] = s
	}
	return sig
}

// blockMemoKey identifies one priced (server state, block composition)
// pair within a single search.
type blockMemoKey struct {
	base model.Key
	sig  blockSig
}

// blockMemoVal is a memoized block pricing: the placement economics
// minus the concrete VM identities (every block with the same signature
// shares them).
type blockMemoVal struct {
	after  model.Key
	time   units.Seconds
	energy units.Joules
	ok     bool
}

// candidate is one fully placed partition that survived Pareto pruning.
// Placements are stored as indices (blocks into the request's VM set,
// places into the server list) and materialized only for the winner.
type candidate struct {
	// idx is the partition's position in the deduplicated enumeration —
	// the identity the first-of-the-list tie-break ranks on.
	idx    int
	time   units.Seconds
	energy units.Joules
	blocks [][]int
	places []blockPlace
}

// blockPlace records where one block of a candidate went and at what
// estimated cost.
type blockPlace struct {
	serverID int
	after    model.Key
	time     units.Seconds
	energy   units.Joules
}

// searchCtx is the shared state of one Allocate call: the VM type
// table plus the two memo layers, both safe for concurrent workers.
type searchCtx struct {
	a       *Allocator
	goal    Goal
	servers []ServerState
	vms     []VMRequest
	typeOf  []uint8
	types   []VMRequest
	typeKey []model.Key

	est *model.EstimateCache

	// Telemetry handles; all nil (no-op) when the allocator has no
	// registry. Counters are atomic, so workers update them directly.
	enumerated *obs.Counter // partitions produced by the generator
	deduped    *obs.Counter // partitions skipped by the signature dedup
	feasible   *obs.Counter // candidates every block of which placed
	infeasible *obs.Counter // candidates with an unplaceable block
	pruned     *obs.Counter // candidates dropped by Pareto domination
	exhausted  *obs.Counter // searches abandoned on budget exhaustion
	degraded   *obs.Counter // allocations served by the first-fit fallback
	workerLoad *obs.Histogram

	// stats is the exact per-call tally behind AllocateExplained.
	// Enumerated/Deduped are bumped by the sequential producer; the
	// per-worker tallies are summed in after the pool drains, so no
	// atomic traffic joins the hot path.
	stats SearchStats

	blockMu   sync.RWMutex
	blockMemo map[blockMemoKey]blockMemoVal
}

func newSearchCtx(a *Allocator, goal Goal, servers []ServerState, vms []VMRequest) *searchCtx {
	typeOf, types := vmTypes(vms)
	typeKey := make([]model.Key, len(types))
	for t, rep := range types {
		typeKey[t] = model.KeyFor(rep.Class, 1)
	}
	sc := &searchCtx{
		a:         a,
		goal:      goal,
		servers:   servers,
		vms:       vms,
		typeOf:    typeOf,
		types:     types,
		typeKey:   typeKey,
		est:       model.NewEstimateCache(a.cfg.DB),
		blockMemo: make(map[blockMemoKey]blockMemoVal, 256),
	}
	if reg := a.cfg.Obs; reg != nil {
		sc.enumerated = reg.Counter("search_partitions_enumerated")
		sc.deduped = reg.Counter("search_partitions_deduped")
		sc.feasible = reg.Counter("search_candidates_feasible")
		sc.infeasible = reg.Counter("search_candidates_infeasible")
		sc.pruned = reg.Counter("search_pareto_pruned")
		sc.exhausted = reg.Counter("search_budget_exhausted")
		sc.degraded = reg.Counter("search_degraded_firstfit")
		// Jobs per worker: a flat pool shows every worker near
		// jobs/workers; a long tail of idle workers shows the serial
		// producer is the bottleneck.
		sc.workerLoad = reg.Histogram("search_jobs_per_worker",
			1, 4, 16, 64, 256, 1024, 4096, 16384)
		sc.est.Instrument(reg)
	}
	return sc
}

// priceBlock prices adding a block of composition sig (total key
// blockKey) to a server currently at base, memoized. The semantics are
// those of Allocator.evalBlock restricted to the block's own VMs;
// QoS of VMs already tentatively placed on the server is rechecked
// per call by placedOK, because it depends on the partition prefix,
// not on (base, sig).
func (sc *searchCtx) priceBlock(base model.Key, sig blockSig, blockKey model.Key) blockMemoVal {
	k := blockMemoKey{base: base, sig: sig}
	sc.blockMu.RLock()
	v, ok := sc.blockMemo[k]
	sc.blockMu.RUnlock()
	if ok {
		return v
	}
	// Compute outside the lock: the pricing is deterministic, so a
	// concurrent duplicate computation stores an identical value.
	v = sc.priceBlockUncached(base, sig, blockKey)
	sc.blockMu.Lock()
	sc.blockMemo[k] = v
	sc.blockMu.Unlock()
	return v
}

func (sc *searchCtx) priceBlockUncached(base model.Key, sig blockSig, blockKey model.Key) blockMemoVal {
	cfg := &sc.a.cfg
	after := base.Add(blockKey)
	if after.Total() > cfg.MaxVMsPerServer {
		return blockMemoVal{}
	}
	for _, c := range workload.Classes {
		if after.Count(c) > cfg.PerClassBound[c] {
			return blockMemoVal{}
		}
	}
	recAfter, err := sc.est.Estimate(after)
	if err != nil {
		return blockMemoVal{}
	}
	aux := cfg.DB.Aux()
	var blockTime units.Seconds
	for t := range sc.types {
		if sig>>(4*blockSig(t))&0xF == 0 {
			continue
		}
		rep := sc.types[t]
		ref := aux.RefTime[rep.Class]
		if ref <= 0 {
			return blockMemoVal{}
		}
		est := recAfter.ClassTime(rep.Class) * rep.NominalTime / ref
		if !cfg.RelaxQoS && rep.MaxTime > 0 && est > rep.MaxTime {
			return blockMemoVal{}
		}
		if est > blockTime {
			blockTime = est
		}
	}
	// Marginal energy: see Allocator.evalBlock — whole-outcome energy
	// difference, clamped at zero.
	var beforeEnergy units.Joules
	if !base.IsZero() {
		recBefore, err := sc.est.Estimate(base)
		if err != nil {
			return blockMemoVal{}
		}
		beforeEnergy = recBefore.Energy
	}
	deltaE := recAfter.Energy - beforeEnergy
	if deltaE < 0 {
		deltaE = 0
	}
	return blockMemoVal{after: after, time: blockTime, energy: deltaE, ok: true}
}

// placedOK rechecks the QoS bounds of VM types already tentatively
// placed on a server whose allocation would grow to after. Counts are
// irrelevant — every VM of a type gets the same estimate — so a type
// bitmask suffices.
func (sc *searchCtx) placedOK(after model.Key, mask typeMask) bool {
	if mask == 0 || sc.a.cfg.RelaxQoS {
		return true
	}
	rec, err := sc.est.Estimate(after)
	if err != nil {
		return false
	}
	aux := sc.a.cfg.DB.Aux()
	for t := 0; mask != 0; t++ {
		if mask&1 != 0 {
			rep := sc.types[t]
			if rep.MaxTime > 0 {
				est := rec.ClassTime(rep.Class) * rep.NominalTime / aux.RefTime[rep.Class]
				if est > rep.MaxTime {
					return false
				}
			}
		}
		mask >>= 1
	}
	return true
}

// searchWorker evaluates a subsequence of the deduplicated partition
// stream, reducing it to a Pareto frontier plus the normalization
// maxima over every feasible candidate it saw. All scratch buffers are
// reused across partitions; a worker is single-goroutine state.
type searchWorker struct {
	sc *searchCtx

	// Per-partition scratch, reset via the touched list.
	extra   []model.Key // tentative additions per server index
	mask    []typeMask  // tentatively placed VM types per server index
	touched []int

	// Per-block scratch.
	seenBases []model.Key
	options   []blockOption
	places    []blockPlace

	// Reduction state.
	frontier []candidate
	maxT     units.Seconds
	maxE     units.Joules
	// jobs counts partitions this worker evaluated (pool-utilization
	// telemetry; a plain int — each worker is single-goroutine state).
	jobs int
	// Per-worker exact tallies folded into searchCtx.stats after the
	// pool drains (plain ints for the same single-goroutine reason).
	nFeasible   int
	nInfeasible int
	nPruned     int
}

type blockOption struct {
	serverIdx int
	val       blockMemoVal
}

func (sc *searchCtx) newWorker() *searchWorker {
	return &searchWorker{
		sc:        sc,
		extra:     make([]model.Key, len(sc.servers)),
		mask:      make([]typeMask, len(sc.servers)),
		touched:   make([]int, 0, len(sc.vms)),
		seenBases: make([]model.Key, 0, len(sc.servers)),
		options:   make([]blockOption, 0, len(sc.servers)),
		places:    make([]blockPlace, 0, len(sc.vms)),
	}
}

// consider evaluates one partition and folds it into the worker's
// frontier. blocks must be owned by the caller if owned is true;
// otherwise they are copied before retention.
func (w *searchWorker) consider(idx int, blocks [][]int, owned bool) {
	w.jobs++
	ok := w.evalPartition(blocks)
	if !ok {
		w.nInfeasible++
		w.sc.infeasible.Inc()
		return
	}
	w.nFeasible++
	w.sc.feasible.Inc()
	var candT units.Seconds
	var candE units.Joules
	for _, p := range w.places {
		candE += p.energy
		if p.time > candT {
			candT = p.time
		}
	}
	if candT > w.maxT {
		w.maxT = candT
	}
	if candE > w.maxE {
		w.maxE = candE
	}
	// Pareto pruning: a candidate weakly dominated by an earlier kept
	// one can never win any goal (the earlier also takes the tie).
	// Within a worker, arrival order is ascending enumeration order, so
	// every kept candidate is earlier than the new one.
	for i := range w.frontier {
		f := &w.frontier[i]
		if f.time <= candT && f.energy <= candE {
			w.nPruned++
			w.sc.pruned.Inc()
			return
		}
	}
	if !owned {
		blocks = copyBlocks(blocks)
	}
	w.frontier = append(w.frontier, candidate{
		idx:    idx,
		time:   candT,
		energy: candE,
		blocks: blocks,
		places: append([]blockPlace(nil), w.places...),
	})
}

// copyBlocks deep-copies a partition with a single backing array (a
// partition of n elements has exactly n entries in total).
func copyBlocks(blocks [][]int) [][]int {
	total := 0
	for _, b := range blocks {
		total += len(b)
	}
	flat := make([]int, 0, total)
	out := make([][]int, len(blocks))
	for i, b := range blocks {
		start := len(flat)
		flat = append(flat, b...)
		out[i] = flat[start:len(flat):len(flat)]
	}
	return out
}

// evalPartition greedily places every block of the partition on its
// best-scoring feasible server and prices the result into w.places
// (valid until the next call). ok is false when some block has no
// feasible server. The block-level choice mirrors the reference
// implementation exactly: servers with identical effective allocation
// collapse to the first of each group, options are max-normalized
// within the block, and the α-scored minimum wins with the epsilon
// tie-break to the lower server index.
func (w *searchWorker) evalPartition(blocks [][]int) (ok bool) {
	sc := w.sc
	alpha := sc.goal.Alpha
	for _, si := range w.touched {
		w.extra[si] = model.Key{}
		w.mask[si] = 0
	}
	w.touched = w.touched[:0]
	w.places = w.places[:0]

	for _, block := range blocks {
		var sig blockSig
		var blockKey model.Key
		var bmask typeMask
		for _, vi := range block {
			t := sc.typeOf[vi]
			sig += 1 << (4 * blockSig(t))
			blockKey = blockKey.Add(sc.typeKey[t])
			bmask |= 1 << t
		}

		w.seenBases = w.seenBases[:0]
		w.options = w.options[:0]
		for si := range sc.servers {
			base := sc.servers[si].Alloc.Add(w.extra[si])
			dup := false
			for _, b := range w.seenBases {
				if b == base {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			w.seenBases = append(w.seenBases, base)
			v := sc.priceBlock(base, sig, blockKey)
			if !v.ok || !sc.placedOK(v.after, w.mask[si]) {
				continue
			}
			w.options = append(w.options, blockOption{serverIdx: si, val: v})
		}
		if len(w.options) == 0 {
			return false
		}

		var maxT units.Seconds
		var maxE units.Joules
		for _, o := range w.options {
			if o.val.time > maxT {
				maxT = o.val.time
			}
			if o.val.energy > maxE {
				maxE = o.val.energy
			}
		}
		bestI := -1
		bestScore := 0.0
		for i, o := range w.options {
			tn, en := 0.0, 0.0
			if maxT > 0 {
				tn = float64(o.val.time) / float64(maxT)
			}
			if maxE > 0 {
				en = float64(o.val.energy) / float64(maxE)
			}
			// The block-level choice honors the same α as the
			// allocation-level ranking.
			score := alpha*en + (1-alpha)*tn
			if bestI < 0 || score < bestScore-scoreEpsilon {
				bestScore, bestI = score, i
			}
		}
		chosen := w.options[bestI]
		si := chosen.serverIdx
		if w.extra[si].IsZero() && w.mask[si] == 0 {
			w.touched = append(w.touched, si)
		}
		w.extra[si] = w.extra[si].Add(blockKey)
		w.mask[si] |= bmask
		w.places = append(w.places, blockPlace{
			serverID: sc.servers[si].ID,
			after:    chosen.val.after,
			time:     chosen.val.time,
			energy:   chosen.val.energy,
		})
	}
	return true
}

// search enumerates the deduplicated partitions of the VM set and
// reduces them to a Pareto frontier sorted by enumeration index, plus
// the normalization maxima over all feasible candidates. exhausted
// reports that Config.SearchBudget ran out before the enumeration
// completed — the partial frontier must then be discarded (a truncated
// search breaks the normalization constants and the first-of-the-list
// tie-break) and the caller degrades to the first-fit fallback.
//
// The budget counts deduplicated partitions admitted to scoring, and it
// is spent by the sequential producer in both the serial and the
// parallel engine, so exhaustion strikes at exactly the same partition
// at every worker count: budgeted runs replay bit-for-bit.
func (sc *searchCtx) search(workers int) (cands []candidate, maxT units.Seconds, maxE units.Joules, exhausted bool, err error) {
	n := len(sc.vms)
	if workers <= 1 || n < parallelWorkThreshold {
		return sc.searchSerial(n)
	}
	return sc.searchParallel(n, workers)
}

func (sc *searchCtx) searchSerial(n int) ([]candidate, units.Seconds, units.Joules, bool, error) {
	w := sc.newWorker()
	seen := make(map[partSig]struct{}, 64)
	budget := sc.a.cfg.SearchBudget
	cancel := sc.a.cfg.Cancel
	exhausted := false
	idx := 0
	_, err := partition.ForEachIndexed(n, func(_ int, blocks [][]int) bool {
		sc.stats.Enumerated++
		sc.enumerated.Inc()
		ps := sigOfPartition(sc.typeOf, blocks)
		if _, dup := seen[ps]; dup {
			sc.stats.Deduped++
			sc.deduped.Inc()
			return true
		}
		if budget > 0 && idx >= budget {
			exhausted = true
			return false
		}
		if cancel != nil && cancel() {
			sc.stats.Canceled = true
			exhausted = true
			return false
		}
		seen[ps] = struct{}{}
		w.consider(idx, blocks, false)
		idx++
		return true
	})
	if err != nil {
		return nil, 0, 0, false, err
	}
	sc.foldWorkerStats(w)
	sc.workerLoad.Observe(float64(w.jobs))
	return w.frontier, w.maxT, w.maxE, exhausted, nil
}

// foldWorkerStats sums one drained worker's tallies into the per-call
// stats; callers must only invoke it after the worker has stopped.
func (sc *searchCtx) foldWorkerStats(w *searchWorker) {
	sc.stats.Feasible += w.nFeasible
	sc.stats.Infeasible += w.nInfeasible
	sc.stats.Pruned += w.nPruned
}

// searchJob is one deduplicated partition shipped to a worker, tagged
// with its enumeration index so the reduce can restore serial order.
type searchJob struct {
	idx    int
	blocks [][]int
}

func (sc *searchCtx) searchParallel(n, workers int) ([]candidate, units.Seconds, units.Joules, bool, error) {
	jobs := make(chan searchJob, 2*workers)
	ws := make([]*searchWorker, workers)
	var wg sync.WaitGroup
	for i := range ws {
		ws[i] = sc.newWorker()
		wg.Add(1)
		go func(w *searchWorker) {
			defer wg.Done()
			for j := range jobs {
				w.consider(j.idx, j.blocks, true)
			}
		}(ws[i])
	}

	// The producer enumerates and deduplicates sequentially — the seen
	// map stays single-goroutine, so "first occurrence is evaluated" is
	// deterministic — while workers price partitions concurrently. The
	// budget is spent here too, never by the racing consumers, so the
	// cut point is independent of worker scheduling.
	seen := make(map[partSig]struct{}, 256)
	budget := sc.a.cfg.SearchBudget
	cancel := sc.a.cfg.Cancel
	exhausted := false
	idx := 0
	_, err := partition.ForEachIndexed(n, func(_ int, blocks [][]int) bool {
		sc.stats.Enumerated++
		sc.enumerated.Inc()
		ps := sigOfPartition(sc.typeOf, blocks)
		if _, dup := seen[ps]; dup {
			sc.stats.Deduped++
			sc.deduped.Inc()
			return true
		}
		if budget > 0 && idx >= budget {
			exhausted = true
			return false
		}
		// The cancel poll lives on the producer like the budget: the cut
		// point never depends on worker scheduling, only on when the hook
		// fired relative to the sequential enumeration.
		if cancel != nil && cancel() {
			sc.stats.Canceled = true
			exhausted = true
			return false
		}
		seen[ps] = struct{}{}
		jobs <- searchJob{idx: idx, blocks: copyBlocks(blocks)}
		idx++
		return true
	})
	close(jobs)
	wg.Wait()
	if err != nil {
		return nil, 0, 0, false, err
	}
	for _, w := range ws {
		sc.foldWorkerStats(w)
		sc.workerLoad.Observe(float64(w.jobs))
	}

	var frontier []candidate
	var maxT units.Seconds
	var maxE units.Joules
	for _, w := range ws {
		frontier = append(frontier, w.frontier...)
		if w.maxT > maxT {
			maxT = w.maxT
		}
		if w.maxE > maxE {
			maxE = w.maxE
		}
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i].idx < frontier[j].idx })
	// Re-prune across worker boundaries: a candidate kept by one worker
	// may be dominated by an earlier candidate another worker held.
	kept := frontier[:0]
	for _, c := range frontier {
		dominated := false
		for i := range kept {
			if kept[i].time <= c.time && kept[i].energy <= c.energy {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, c)
		} else {
			sc.stats.Pruned++
			sc.pruned.Inc()
		}
	}
	return kept, maxT, maxE, exhausted, nil
}

// materialize expands the winning candidate into the public Allocation
// form, reconstructing per-block VM lists from the stored indices.
func (sc *searchCtx) materialize(c candidate) Allocation {
	pls := make([]Placement, len(c.places))
	for i, p := range c.places {
		block := c.blocks[i]
		vms := make([]VMRequest, len(block))
		for j, vi := range block {
			vms[j] = sc.vms[vi]
		}
		pls[i] = Placement{
			ServerID:  p.serverID,
			VMs:       vms,
			NewAlloc:  p.after,
			EstTime:   p.time,
			EstEnergy: p.energy,
		}
	}
	return Allocation{Placements: pls, EstTime: c.time, EstEnergy: c.energy}
}

package core

import (
	"reflect"
	"testing"

	"pacevm/internal/workload"
)

// cancelVMs is big enough (6 VMs) that workers=4 exercises the
// parallel producer, whose cancel poll is a separate code path.
func cancelVMs(t *testing.T) []VMRequest {
	return []VMRequest{
		vm("a", workload.ClassCPU, refTime(t, workload.ClassCPU), 0),
		vm("b", workload.ClassCPU, refTime(t, workload.ClassCPU), 0),
		vm("c", workload.ClassMEM, refTime(t, workload.ClassMEM), 0),
		vm("d", workload.ClassMEM, refTime(t, workload.ClassMEM), 0),
		vm("e", workload.ClassIO, refTime(t, workload.ClassIO), 0),
		vm("f", workload.ClassIO, refTime(t, workload.ClassIO), 0),
	}
}

// TestCancelNilIsIdentity pins that a nil Cancel hook changes nothing:
// the allocation equals the hook-free allocator's bit for bit, with no
// Canceled/Degraded marks.
func TestCancelNilIsIdentity(t *testing.T) {
	vms := cancelVMs(t)
	servers := emptyServers(4)
	base := mkAllocator(t)
	want, wantStats, err := base.AllocateExplained(Goal{Alpha: 0.5}, servers, vms)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAllocator(Config{DB: sharedDB(t), Cancel: nil})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := a.AllocateExplained(Goal{Alpha: 0.5}, servers, vms)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("nil Cancel hook changed the allocation")
	}
	if stats != wantStats || stats.Canceled || stats.Degraded {
		t.Fatalf("stats drifted under a nil hook: %+v vs %+v", stats, wantStats)
	}
}

// TestCancelFalseIsIdentity pins that a hook that never fires leaves
// the search result identical — the poll itself must not perturb the
// enumeration, at any worker count.
func TestCancelFalseIsIdentity(t *testing.T) {
	vms := cancelVMs(t)
	servers := emptyServers(4)
	want, _, err := mkAllocator(t).AllocateExplained(Goal{Alpha: 0.5}, servers, vms)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		polled := 0
		a, err := NewAllocator(Config{
			DB:            sharedDB(t),
			SearchWorkers: workers,
			Cancel:        func() bool { polled++; return false },
		})
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := a.AllocateExplained(Goal{Alpha: 0.5}, servers, vms)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: never-firing Cancel changed the allocation", workers)
		}
		if stats.Canceled || stats.Exhausted {
			t.Fatalf("workers=%d: never-firing Cancel marked the search cut: %+v", workers, stats)
		}
		if polled == 0 {
			t.Fatalf("workers=%d: Cancel hook was never polled", workers)
		}
	}
}

// TestCancelDegradesToFirstFit pins the firing path: a hook that trips
// mid-enumeration abandons the search and lands on the same
// deterministic first-fit placement budget exhaustion produces, with
// Canceled, Exhausted and Degraded all set.
func TestCancelDegradesToFirstFit(t *testing.T) {
	vms := cancelVMs(t)
	servers := emptyServers(4)

	// Reference degradation: budget 1 exhausts immediately.
	budgeted, err := NewAllocator(Config{DB: sharedDB(t), SearchBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, wantStats, err := budgeted.AllocateExplained(Goal{Alpha: 0.5}, servers, vms)
	if err != nil {
		t.Fatal(err)
	}
	if !wantStats.Degraded {
		t.Fatal("budget-1 reference did not degrade; the fixture is too small")
	}

	for _, workers := range []int{1, 4} {
		calls := 0
		a, err := NewAllocator(Config{
			DB:            sharedDB(t),
			SearchWorkers: workers,
			Cancel:        func() bool { calls++; return calls > 1 },
		})
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := a.AllocateExplained(Goal{Alpha: 0.5}, servers, vms)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Canceled || !stats.Exhausted || !stats.Degraded || !got.Degraded {
			t.Fatalf("workers=%d: firing Cancel did not mark the degradation: %+v", workers, stats)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: canceled placement differs from the budget-exhaustion first-fit", workers)
		}
	}
}

// Package core implements the paper's contribution: the proactive,
// application-centric, energy-aware VM allocation algorithm of Sect.
// III.D (Fig. 3).
//
// Given (i) the model database built by the benchmarking campaign,
// (ii) the auxiliary base-test values, (iii) a set of VMs with their
// application profiles and maximum execution times (QoS guarantees), and
// (iv) an optimization goal α — α weighting energy and 1−α weighting
// performance — the allocator searches the set partitions of the VM set
// (via the Orlov-style generator in internal/partition), places each
// block of each partition on the best server given the servers' current
// allocations, prices every candidate through model-database lookups, and
// returns the partition/placement that best matches the goal while
// satisfying the QoS constraints.
//
// Following the paper, ties between equally ranked candidates select "the
// first server of the list", and the whole search is deliberately brute
// force — the paper chose exhaustive search "to demonstrate and study the
// potential of application-centric proactive VM allocation". Two exact
// reductions keep the brute force cheap: partitions whose block structure
// is identical up to interchangeable VMs (same class, nominal time and
// QoS bound) are evaluated once, and servers whose current allocation is
// identical are evaluated once per block.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"pacevm/internal/model"
	"pacevm/internal/partition"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// ErrInfeasible is returned when no partition/placement satisfies the
// QoS constraints on the given servers.
var ErrInfeasible = errors.New("core: no feasible allocation")

// VMRequest describes one VM to place.
type VMRequest struct {
	// ID identifies the VM for the caller (job id + index, typically).
	ID string
	// Class is the application profile from the profiler, "specified by
	// the user in the job definition" per Sect. III.A's assumption.
	Class workload.Class
	// NominalTime is the application's solo execution time on the
	// reference server; database times are scaled by
	// NominalTime/RefTime(Class) to price this particular VM.
	NominalTime units.Seconds
	// MaxTime is the QoS guarantee: the maximum acceptable execution
	// time. Zero means unconstrained.
	MaxTime units.Seconds
}

func (v VMRequest) validate() error {
	if !v.Class.Valid() {
		return fmt.Errorf("core: VM %q has invalid class", v.ID)
	}
	if v.NominalTime <= 0 {
		return fmt.Errorf("core: VM %q has non-positive nominal time", v.ID)
	}
	if v.MaxTime < 0 {
		return fmt.Errorf("core: VM %q has negative QoS bound", v.ID)
	}
	return nil
}

// ServerState is a server's identity and current resident allocation.
type ServerState struct {
	ID    int
	Alloc model.Key
}

// Goal is the optimization goal: Alpha ∈ [0,1] weights energy
// minimization, 1−Alpha weights execution-time minimization (Sect.
// III.D). The paper's evaluated variants are PA-1 (energy), PA-0
// (performance) and PA-0.5 (tradeoff).
type Goal struct {
	Alpha float64
}

// The paper's evaluated goals.
var (
	GoalEnergy      = Goal{Alpha: 1}
	GoalPerformance = Goal{Alpha: 0}
	GoalBalanced    = Goal{Alpha: 0.5}
)

func (g Goal) validate() error {
	if g.Alpha < 0 || g.Alpha > 1 {
		return fmt.Errorf("core: alpha %v out of [0,1]", g.Alpha)
	}
	return nil
}

// Config parameterizes an Allocator.
type Config struct {
	// DB is the model database.
	DB *model.DB
	// MaxVMsPerServer caps any server's resident VM count after
	// placement. Zero defaults to the database grid bound.
	MaxVMsPerServer int
	// RelaxQoS disregards the QoS guarantees, "which might not be
	// acceptable for a production system" (Sect. III.D) but is needed to
	// make progress when a request can never meet its bound.
	RelaxQoS bool
	// PerClassBound caps the per-class VM count a server may reach after
	// placement. A zero entry defaults to the class's optimal scenario
	// OS = max(OSP, OSE) from the auxiliary base-test data — the paper's
	// combined-test grid is bounded exactly there (Sect. III.B), so its
	// allocator can never consolidate a class beyond its measured
	// optimum. A negative entry disables the bound for that class
	// (useful for ablations).
	PerClassBound [workload.NumClasses]int
}

// Allocator runs the paper's allocation algorithm.
type Allocator struct {
	cfg Config
}

// NewAllocator validates the configuration and returns an allocator.
func NewAllocator(cfg Config) (*Allocator, error) {
	if cfg.DB == nil {
		return nil, errors.New("core: nil model database")
	}
	if cfg.MaxVMsPerServer < 0 {
		return nil, errors.New("core: negative MaxVMsPerServer")
	}
	if cfg.MaxVMsPerServer == 0 {
		m := cfg.DB.MaxKey()
		cap := m.NCPU
		if m.NMEM > cap {
			cap = m.NMEM
		}
		if m.NIO > cap {
			cap = m.NIO
		}
		cfg.MaxVMsPerServer = cap
	}
	aux := cfg.DB.Aux()
	for _, c := range workload.Classes {
		switch {
		case cfg.PerClassBound[c] == 0:
			cfg.PerClassBound[c] = aux.OS(c)
		case cfg.PerClassBound[c] < 0:
			cfg.PerClassBound[c] = cfg.MaxVMsPerServer
		}
	}
	return &Allocator{cfg: cfg}, nil
}

// Placement is one block of the chosen partition assigned to a server.
type Placement struct {
	ServerID int
	VMs      []VMRequest
	// NewAlloc is the server's allocation after the block arrives.
	NewAlloc model.Key
	// EstTime is the estimated execution time of the block (the slowest
	// VM in it under the new allocation).
	EstTime units.Seconds
	// EstEnergy is the marginal energy attributed to the block: the
	// server's power increase (including the 125 W activation cost of a
	// powered-down server) integrated over the block's estimated time.
	EstEnergy units.Joules
}

// Allocation is the algorithm's output: "a set of partitions and
// allocations of the VMs in the servers".
type Allocation struct {
	Placements []Placement
	// EstTime is the estimated execution time of the whole request (max
	// over placements).
	EstTime units.Seconds
	// EstEnergy is the total marginal energy over placements.
	EstEnergy units.Joules
}

// EstimateVM prices one VM of the given request under an allocation: the
// database's per-class time under alloc, scaled to the VM's nominal
// length.
func (a *Allocator) EstimateVM(alloc model.Key, vm VMRequest) (units.Seconds, error) {
	if err := vm.validate(); err != nil {
		return 0, err
	}
	rec, err := a.cfg.DB.Estimate(alloc)
	if err != nil {
		return 0, err
	}
	ref := a.cfg.DB.Aux().RefTime[vm.Class]
	if ref <= 0 {
		return 0, fmt.Errorf("core: no reference time for class %v", vm.Class)
	}
	return rec.ClassTime(vm.Class) * vm.NominalTime / ref, nil
}

// FitsAlone reports whether the VM meets its QoS bound when placed alone
// on an empty server — if not, no allocation can ever satisfy it.
func (a *Allocator) FitsAlone(vm VMRequest) bool {
	if vm.MaxTime <= 0 {
		return true
	}
	est, err := a.EstimateVM(model.KeyFor(vm.Class, 1), vm)
	return err == nil && est <= vm.MaxTime
}

// candidate is one fully-placed partition under evaluation.
type candidate struct {
	placements []Placement
	time       units.Seconds
	energy     units.Joules
}

// Allocate runs the brute-force search and returns the best allocation
// for the goal, or ErrInfeasible when no candidate satisfies QoS.
func (a *Allocator) Allocate(goal Goal, servers []ServerState, vms []VMRequest) (Allocation, error) {
	if err := goal.validate(); err != nil {
		return Allocation{}, err
	}
	if len(servers) == 0 {
		return Allocation{}, errors.New("core: no servers")
	}
	if len(vms) == 0 {
		return Allocation{}, errors.New("core: no VMs to place")
	}
	for _, vm := range vms {
		if err := vm.validate(); err != nil {
			return Allocation{}, err
		}
	}
	for _, s := range servers {
		if !s.Alloc.Valid() {
			return Allocation{}, fmt.Errorf("core: server %d has invalid allocation %v", s.ID, s.Alloc)
		}
	}

	var cands []candidate
	seen := map[string]bool{}
	_, err := partition.ForEach(len(vms), func(blocks [][]int) bool {
		sig := partitionSignature(vms, blocks)
		if seen[sig] {
			return true
		}
		seen[sig] = true
		if cand, ok := a.evalPartition(goal, servers, vms, blocks); ok {
			cands = append(cands, cand)
		}
		return true
	})
	if err != nil {
		return Allocation{}, err
	}
	if len(cands) == 0 {
		return Allocation{}, ErrInfeasible
	}

	best := pickBest(goal, cands)
	return Allocation{
		Placements: best.placements,
		EstTime:    best.time,
		EstEnergy:  best.energy,
	}, nil
}

// pickBest normalizes candidate times and energies to their maxima and
// selects the minimum α-weighted score, keeping the earliest candidate on
// ties (deterministic enumeration order → the paper's first-of-the-list
// tie break).
func pickBest(goal Goal, cands []candidate) candidate {
	var maxT units.Seconds
	var maxE units.Joules
	for _, c := range cands {
		if c.time > maxT {
			maxT = c.time
		}
		if c.energy > maxE {
			maxE = c.energy
		}
	}
	bestScore := 0.0
	bestIdx := -1
	for i, c := range cands {
		tn, en := 0.0, 0.0
		if maxT > 0 {
			tn = float64(c.time) / float64(maxT)
		}
		if maxE > 0 {
			en = float64(c.energy) / float64(maxE)
		}
		score := goal.Alpha*en + (1-goal.Alpha)*tn
		if bestIdx < 0 || score < bestScore-1e-12 {
			bestScore, bestIdx = score, i
		}
	}
	return cands[bestIdx]
}

// evalPartition greedily places every block of the partition on its
// best-scoring feasible server and prices the result. ok is false when
// some block has no feasible server.
func (a *Allocator) evalPartition(goal Goal, servers []ServerState, vms []VMRequest, blocks [][]int) (candidate, bool) {
	extra := make(map[int]model.Key) // server index -> tentative additions
	placedVMs := make(map[int][]VMRequest)
	var cand candidate

	for _, block := range blocks {
		blockVMs := make([]VMRequest, len(block))
		var blockKey model.Key
		for i, idx := range block {
			blockVMs[i] = vms[idx]
			blockKey = blockKey.Add(model.KeyFor(vms[idx].Class, 1))
		}

		bestIdx := -1
		var bestPl Placement
		bestScore := 0.0
		// Servers with identical effective allocation are equivalent;
		// evaluate the first of each group only.
		evaluated := map[model.Key]bool{}
		type option struct {
			idx    int
			pl     Placement
			before model.Key
		}
		var options []option
		for si, s := range servers {
			base := s.Alloc.Add(extra[si])
			if evaluated[base] {
				continue
			}
			evaluated[base] = true
			pl, ok := a.evalBlock(base, blockKey, blockVMs, placedVMs[si])
			if !ok {
				continue
			}
			pl.ServerID = s.ID
			options = append(options, option{idx: si, pl: pl, before: base})
		}
		if len(options) == 0 {
			return candidate{}, false
		}
		// Normalize within the block's options and pick the best.
		var maxT units.Seconds
		var maxE units.Joules
		for _, o := range options {
			if o.pl.EstTime > maxT {
				maxT = o.pl.EstTime
			}
			if o.pl.EstEnergy > maxE {
				maxE = o.pl.EstEnergy
			}
		}
		for _, o := range options {
			tn, en := 0.0, 0.0
			if maxT > 0 {
				tn = float64(o.pl.EstTime) / float64(maxT)
			}
			if maxE > 0 {
				en = float64(o.pl.EstEnergy) / float64(maxE)
			}
			// The block-level choice honors the same α as the
			// allocation-level ranking.
			score := goal.Alpha*en + (1-goal.Alpha)*tn
			if bestIdx < 0 || score < bestScore-1e-12 {
				bestScore, bestIdx, bestPl = score, o.idx, o.pl
			}
		}
		extra[bestIdx] = extra[bestIdx].Add(blockKey)
		placedVMs[bestIdx] = append(placedVMs[bestIdx], blockVMs...)
		cand.placements = append(cand.placements, bestPl)
		cand.energy += bestPl.EstEnergy
		if bestPl.EstTime > cand.time {
			cand.time = bestPl.EstTime
		}
	}
	return cand, true
}

// EvaluateBlock prices adding the given VMs as one co-located block to a
// server whose current allocation is base: the estimated execution time
// of the block's slowest VM under the resulting allocation and the
// marginal energy of the move. ok is false when the placement is
// inadmissible (capacity, per-class bound, QoS, or unpriceable
// allocation). This is the pricing primitive the heterogeneity extension
// composes per server class.
func (a *Allocator) EvaluateBlock(base model.Key, vms []VMRequest) (Placement, bool) {
	var blockKey model.Key
	for _, vm := range vms {
		if vm.validate() != nil {
			return Placement{}, false
		}
		blockKey = blockKey.Add(model.KeyFor(vm.Class, 1))
	}
	if blockKey.IsZero() || !base.Valid() {
		return Placement{}, false
	}
	return a.evalBlock(base, blockKey, vms, nil)
}

// evalBlock prices adding blockKey to a server currently at base, and
// checks QoS for both the new block and any VMs tentatively placed there
// earlier in this partition.
func (a *Allocator) evalBlock(base, blockKey model.Key, blockVMs, alreadyPlaced []VMRequest) (Placement, bool) {
	after := base.Add(blockKey)
	if after.Total() > a.cfg.MaxVMsPerServer {
		return Placement{}, false
	}
	for _, c := range workload.Classes {
		if after.Count(c) > a.cfg.PerClassBound[c] {
			return Placement{}, false
		}
	}
	recAfter, err := a.cfg.DB.Estimate(after)
	if err != nil {
		return Placement{}, false
	}

	var blockTime units.Seconds
	aux := a.cfg.DB.Aux()
	estOf := func(vm VMRequest) (units.Seconds, bool) {
		ref := aux.RefTime[vm.Class]
		if ref <= 0 {
			return 0, false
		}
		return recAfter.ClassTime(vm.Class) * vm.NominalTime / ref, true
	}
	for _, vm := range blockVMs {
		est, ok := estOf(vm)
		if !ok {
			return Placement{}, false
		}
		if !a.cfg.RelaxQoS && vm.MaxTime > 0 && est > vm.MaxTime {
			return Placement{}, false
		}
		if est > blockTime {
			blockTime = est
		}
	}
	for _, vm := range alreadyPlaced {
		est, ok := estOf(vm)
		if !ok {
			return Placement{}, false
		}
		if !a.cfg.RelaxQoS && vm.MaxTime > 0 && est > vm.MaxTime {
			return Placement{}, false
		}
	}

	// Marginal energy is the difference between the model's whole-outcome
	// energies before and after the block arrives. Unlike a power-delta
	// heuristic this prices the slowdown the new block inflicts on the
	// server's resident VMs (their outcome stretches, and the stretched
	// outcome's energy is exactly what the database measured), which is
	// what keeps the energy goal from over-consolidating past the
	// contention knee.
	var beforeEnergy units.Joules
	if !base.IsZero() {
		recBefore, err := a.cfg.DB.Estimate(base)
		if err != nil {
			return Placement{}, false
		}
		beforeEnergy = recBefore.Energy
	}
	deltaE := recAfter.Energy - beforeEnergy
	if deltaE < 0 {
		deltaE = 0
	}
	return Placement{
		VMs:       blockVMs,
		NewAlloc:  after,
		EstTime:   blockTime,
		EstEnergy: deltaE,
	}, true
}

// partitionSignature canonicalizes a partition of interchangeable VMs:
// two partitions with the same multiset of block compositions (by class,
// nominal time and QoS bound) are equivalent and evaluated once. For a
// single-profile job this reduces the Bell-number search to integer
// partitions, the reduction the paper's efficiency citation [21] is
// about.
func partitionSignature(vms []VMRequest, blocks [][]int) string {
	blockSigs := make([]string, len(blocks))
	for i, block := range blocks {
		items := make([]string, len(block))
		for j, idx := range block {
			vm := vms[idx]
			items[j] = fmt.Sprintf("%d:%g:%g", int(vm.Class), float64(vm.NominalTime), float64(vm.MaxTime))
		}
		sort.Strings(items)
		blockSigs[i] = strings.Join(items, ",")
	}
	sort.Strings(blockSigs)
	return strings.Join(blockSigs, "|")
}

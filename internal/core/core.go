// Package core implements the paper's contribution: the proactive,
// application-centric, energy-aware VM allocation algorithm of Sect.
// III.D (Fig. 3).
//
// Given (i) the model database built by the benchmarking campaign,
// (ii) the auxiliary base-test values, (iii) a set of VMs with their
// application profiles and maximum execution times (QoS guarantees), and
// (iv) an optimization goal α — α weighting energy and 1−α weighting
// performance — the allocator searches the set partitions of the VM set
// (via the Orlov-style generator in internal/partition), places each
// block of each partition on the best server given the servers' current
// allocations, prices every candidate through model-database lookups, and
// returns the partition/placement that best matches the goal while
// satisfying the QoS constraints.
//
// Following the paper, ties between equally ranked candidates select "the
// first server of the list", and the whole search is deliberately brute
// force — the paper chose exhaustive search "to demonstrate and study the
// potential of application-centric proactive VM allocation". Four exact
// reductions keep the brute force cheap (see search.go): partitions whose
// block structure is identical up to interchangeable VMs (same class,
// nominal time and QoS bound) are evaluated once, servers whose current
// allocation is identical are evaluated once per block, block pricings
// are memoized per (server state, block composition), and candidates are
// pruned online to the Pareto frontier the α-monotone score selects
// from; larger searches additionally fan out to a worker pool. All of it
// is bit-for-bit equivalent to the literal serial transcription retained
// as AllocateReference.
package core

import (
	"errors"
	"fmt"
	"runtime"

	"pacevm/internal/model"
	"pacevm/internal/obs"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// ErrInfeasible is returned when no partition/placement satisfies the
// QoS constraints on the given servers.
var ErrInfeasible = errors.New("core: no feasible allocation")

// VMRequest describes one VM to place.
type VMRequest struct {
	// ID identifies the VM for the caller (job id + index, typically).
	ID string
	// Class is the application profile from the profiler, "specified by
	// the user in the job definition" per Sect. III.A's assumption.
	Class workload.Class
	// NominalTime is the application's solo execution time on the
	// reference server; database times are scaled by
	// NominalTime/RefTime(Class) to price this particular VM.
	NominalTime units.Seconds
	// MaxTime is the QoS guarantee: the maximum acceptable execution
	// time. Zero means unconstrained.
	MaxTime units.Seconds
}

func (v VMRequest) validate() error {
	if !v.Class.Valid() {
		return fmt.Errorf("core: VM %q has invalid class", v.ID)
	}
	if v.NominalTime <= 0 {
		return fmt.Errorf("core: VM %q has non-positive nominal time", v.ID)
	}
	if v.MaxTime < 0 {
		return fmt.Errorf("core: VM %q has negative QoS bound", v.ID)
	}
	return nil
}

// ServerState is a server's identity and current resident allocation.
type ServerState struct {
	ID    int
	Alloc model.Key
}

// Goal is the optimization goal: Alpha ∈ [0,1] weights energy
// minimization, 1−Alpha weights execution-time minimization (Sect.
// III.D). The paper's evaluated variants are PA-1 (energy), PA-0
// (performance) and PA-0.5 (tradeoff).
type Goal struct {
	Alpha float64
}

// The paper's evaluated goals.
var (
	GoalEnergy      = Goal{Alpha: 1}
	GoalPerformance = Goal{Alpha: 0}
	GoalBalanced    = Goal{Alpha: 0.5}
)

func (g Goal) validate() error {
	if g.Alpha < 0 || g.Alpha > 1 {
		return fmt.Errorf("core: alpha %v out of [0,1]", g.Alpha)
	}
	return nil
}

// Config parameterizes an Allocator.
type Config struct {
	// DB is the model database.
	DB *model.DB
	// MaxVMsPerServer caps any server's resident VM count after
	// placement. Zero defaults to the database grid bound.
	MaxVMsPerServer int
	// RelaxQoS disregards the QoS guarantees, "which might not be
	// acceptable for a production system" (Sect. III.D) but is needed to
	// make progress when a request can never meet its bound.
	RelaxQoS bool
	// PerClassBound caps the per-class VM count a server may reach after
	// placement. A zero entry defaults to the class's optimal scenario
	// OS = max(OSP, OSE) from the auxiliary base-test data — the paper's
	// combined-test grid is bounded exactly there (Sect. III.B), so its
	// allocator can never consolidate a class beyond its measured
	// optimum. A negative entry disables the bound for that class
	// (useful for ablations).
	PerClassBound [workload.NumClasses]int
	// SearchWorkers sizes the worker pool the partition search fans out
	// to for larger VM sets. Zero defaults to runtime.NumCPU(); one
	// forces the serial in-place search. The result is bit-for-bit
	// identical at every setting — workers carry the partition's
	// enumeration index through the reduce, so the paper's
	// first-of-the-list tie-break is preserved.
	SearchWorkers int
	// SearchBudget bounds the exhaustive search: at most this many
	// deduplicated partitions are scored per Allocate call. Zero (the
	// default) or negative means unlimited — the paper's behaviour, and
	// the setting under which Allocate stays bit-identical to
	// AllocateReference. When the budget exhausts before the enumeration
	// completes, Allocate abandons the partial search and degrades to a
	// deterministic first-fit placement (Allocation.Degraded), so a
	// budgeted allocator always answers in bounded work. The budget
	// counts scored candidates, not wall clock, so budgeted runs stay
	// exactly replayable at any worker count. AllocateReference, the
	// frozen oracle, ignores the budget.
	SearchBudget int
	// Cancel, when non-nil, is polled by the sequential enumeration
	// producer between partitions; a true return abandons the search
	// exactly as budget exhaustion does — the partial frontier is
	// discarded and Allocate degrades to the deterministic first-fit
	// fallback (Allocation.Degraded, SearchStats.Canceled). This is the
	// per-request timeout hook for long-running callers (the placement
	// service arms it with a deadline check); it is the one deliberate
	// determinism relaxation in the allocator — where the cut lands
	// depends on wall clock, but every outcome is still one of two
	// well-defined results: the full search's answer or the first-fit
	// degradation. Nil (the default, and the only setting batch
	// simulations use) keeps Allocate bit-identical to
	// AllocateReference.
	Cancel func() bool
	// Obs receives search telemetry (partitions enumerated/deduplicated,
	// Pareto prunes, estimate-cache hit rates, worker-pool utilization).
	// Nil — the default — disables it at zero cost: every instrument
	// handle resolves to a nil no-op and the search neither allocates
	// for nor branches into telemetry beyond a nil check. Counter names
	// are documented in internal/obs and DESIGN.md §4.
	Obs *obs.Registry
}

// Allocator runs the paper's allocation algorithm.
type Allocator struct {
	cfg Config
}

// NewAllocator validates the configuration and returns an allocator.
func NewAllocator(cfg Config) (*Allocator, error) {
	if cfg.DB == nil {
		return nil, errors.New("core: nil model database")
	}
	if cfg.MaxVMsPerServer < 0 {
		return nil, errors.New("core: negative MaxVMsPerServer")
	}
	if cfg.MaxVMsPerServer == 0 {
		m := cfg.DB.MaxKey()
		cap := m.NCPU
		if m.NMEM > cap {
			cap = m.NMEM
		}
		if m.NIO > cap {
			cap = m.NIO
		}
		cfg.MaxVMsPerServer = cap
	}
	if cfg.SearchWorkers < 0 {
		return nil, errors.New("core: negative SearchWorkers")
	}
	if cfg.SearchWorkers == 0 {
		cfg.SearchWorkers = runtime.NumCPU()
	}
	aux := cfg.DB.Aux()
	for _, c := range workload.Classes {
		switch {
		case cfg.PerClassBound[c] == 0:
			cfg.PerClassBound[c] = aux.OS(c)
		case cfg.PerClassBound[c] < 0:
			cfg.PerClassBound[c] = cfg.MaxVMsPerServer
		}
	}
	return &Allocator{cfg: cfg}, nil
}

// Placement is one block of the chosen partition assigned to a server.
type Placement struct {
	ServerID int
	VMs      []VMRequest
	// NewAlloc is the server's allocation after the block arrives.
	NewAlloc model.Key
	// EstTime is the estimated execution time of the block (the slowest
	// VM in it under the new allocation).
	EstTime units.Seconds
	// EstEnergy is the marginal energy attributed to the block: the
	// server's power increase (including the 125 W activation cost of a
	// powered-down server) integrated over the block's estimated time.
	EstEnergy units.Joules
}

// Allocation is the algorithm's output: "a set of partitions and
// allocations of the VMs in the servers".
type Allocation struct {
	Placements []Placement
	// EstTime is the estimated execution time of the whole request (max
	// over placements).
	EstTime units.Seconds
	// EstEnergy is the total marginal energy over placements.
	EstEnergy units.Joules
	// Degraded reports that the search budget exhausted and this
	// allocation came from the first-fit fallback, not the full
	// partition search (see Config.SearchBudget).
	Degraded bool
}

// EstimateVM prices one VM of the given request under an allocation: the
// database's per-class time under alloc, scaled to the VM's nominal
// length.
func (a *Allocator) EstimateVM(alloc model.Key, vm VMRequest) (units.Seconds, error) {
	if err := vm.validate(); err != nil {
		return 0, err
	}
	rec, err := a.cfg.DB.Estimate(alloc)
	if err != nil {
		return 0, err
	}
	ref := a.cfg.DB.Aux().RefTime[vm.Class]
	if ref <= 0 {
		return 0, fmt.Errorf("core: no reference time for class %v", vm.Class)
	}
	return rec.ClassTime(vm.Class) * vm.NominalTime / ref, nil
}

// FitsAlone reports whether the VM meets its QoS bound when placed alone
// on an empty server — if not, no allocation can ever satisfy it.
func (a *Allocator) FitsAlone(vm VMRequest) bool {
	if vm.MaxTime <= 0 {
		return true
	}
	est, err := a.EstimateVM(model.KeyFor(vm.Class, 1), vm)
	return err == nil && est <= vm.MaxTime
}

// SearchStats summarizes the partition search behind one Allocate call:
// how many partitions the generator produced, how many the signature
// dedup skipped, how the scored candidates split into feasible /
// infeasible / Pareto-pruned, and whether the budget exhausted into the
// first-fit degradation. The counts are exact (plain integers local to
// the call, not sampled registry counters), so a flight recorder can
// attribute them to the single placement decision they belong to.
type SearchStats struct {
	Enumerated int
	Deduped    int
	Feasible   int
	Infeasible int
	Pruned     int
	Exhausted  bool
	Degraded   bool
	// Canceled reports that Config.Cancel (not the budget) cut the
	// enumeration; Exhausted and Degraded are set alongside it.
	Canceled bool
}

// Allocate runs the partition search and returns the best allocation
// for the goal, or ErrInfeasible when no candidate satisfies QoS.
//
// The search is still the paper's exhaustive one, accelerated by exact
// reductions only: equivalent partitions are deduplicated through a
// canonical typed-multiset signature, block pricing is memoized per
// (server state, block composition), dominated candidates are discarded
// online (the α-weighted score is monotone in both estimated time and
// energy, so the winner always lies on the Pareto frontier), and for
// larger VM sets the partition stream fans out to a bounded worker
// pool. Every reduction preserves the enumeration-order tie-breaks, so
// the result is bit-for-bit identical to AllocateReference, the
// retained literal transcription of Sect. III.D.
//
// With a positive Config.SearchBudget the enumeration may stop early;
// Allocate then degrades to the deterministic first-fit fallback and
// marks the result Allocation.Degraded (see allocateFirstFit).
func (a *Allocator) Allocate(goal Goal, servers []ServerState, vms []VMRequest) (Allocation, error) {
	out, _, err := a.AllocateExplained(goal, servers, vms)
	return out, err
}

// AllocateExplained is Allocate plus the per-call SearchStats — the
// decision-attribution variant the simulator's flight recorder consumes.
// The returned Allocation is identical to Allocate's; the stats are
// meaningful even on an ErrInfeasible return (they describe the search
// that proved infeasibility).
func (a *Allocator) AllocateExplained(goal Goal, servers []ServerState, vms []VMRequest) (Allocation, SearchStats, error) {
	if err := a.validateRequest(goal, servers, vms); err != nil {
		return Allocation{}, SearchStats{}, err
	}
	sc := newSearchCtx(a, goal, servers, vms)
	frontier, maxT, maxE, exhausted, err := sc.search(a.cfg.SearchWorkers)
	if err != nil {
		return Allocation{}, sc.stats, err
	}
	sc.stats.Exhausted = exhausted
	if exhausted {
		sc.exhausted.Inc()
		out, err := a.allocateFirstFit(servers, vms)
		if err != nil {
			return Allocation{}, sc.stats, err
		}
		sc.degraded.Inc()
		sc.stats.Degraded = true
		return out, sc.stats, nil
	}
	if len(frontier) == 0 {
		return Allocation{}, sc.stats, ErrInfeasible
	}
	best := pickBest(goal, frontier, maxT, maxE)
	return sc.materialize(frontier[best]), sc.stats, nil
}

// validateRequest checks the inputs shared by Allocate and
// AllocateReference.
func (a *Allocator) validateRequest(goal Goal, servers []ServerState, vms []VMRequest) error {
	if err := goal.validate(); err != nil {
		return err
	}
	if len(servers) == 0 {
		return errors.New("core: no servers")
	}
	if len(vms) == 0 {
		return errors.New("core: no VMs to place")
	}
	for _, vm := range vms {
		if err := vm.validate(); err != nil {
			return err
		}
	}
	for _, s := range servers {
		if !s.Alloc.Valid() {
			return fmt.Errorf("core: server %d has invalid allocation %v", s.ID, s.Alloc)
		}
	}
	return nil
}

// scoreEpsilon is the tolerance of every α-weighted score comparison.
// Normalized scores live in [0,1], where float64 spacing is ≈2.2e-16;
// 1e-12 is ~4 orders of magnitude above the rounding noise the two
// multiply-adds of a score can accumulate, yet far below any difference
// the model database can produce between genuinely distinct outcomes.
// Candidates whose scores differ by less than it are therefore treated
// as tied, and the tie goes to the earlier enumeration index — the
// paper's "first server of the list" rule, lifted from servers to whole
// candidates. The strict `score < best-scoreEpsilon` form (rather than
// `score <= best+scoreEpsilon`) is what makes the scan keep the
// incumbent on a tie.
const scoreEpsilon = 1e-12

// pickBest selects, from candidates ordered by enumeration index, the
// minimum α-weighted score after max-normalizing times and energies,
// keeping the earliest candidate on ties (see scoreEpsilon). maxT and
// maxE must be the maxima over every feasible candidate of the search —
// not merely over the retained frontier — so normalization matches the
// unpruned enumeration exactly. It returns the winning index into
// cands.
func pickBest(goal Goal, cands []candidate, maxT units.Seconds, maxE units.Joules) int {
	bestScore := 0.0
	bestIdx := -1
	for i := range cands {
		tn, en := 0.0, 0.0
		if maxT > 0 {
			tn = float64(cands[i].time) / float64(maxT)
		}
		if maxE > 0 {
			en = float64(cands[i].energy) / float64(maxE)
		}
		score := goal.Alpha*en + (1-goal.Alpha)*tn
		if bestIdx < 0 || score < bestScore-scoreEpsilon {
			bestScore, bestIdx = score, i
		}
	}
	return bestIdx
}

// EvaluateBlock prices adding the given VMs as one co-located block to a
// server whose current allocation is base: the estimated execution time
// of the block's slowest VM under the resulting allocation and the
// marginal energy of the move. ok is false when the placement is
// inadmissible (capacity, per-class bound, QoS, or unpriceable
// allocation). This is the pricing primitive the heterogeneity extension
// composes per server class.
func (a *Allocator) EvaluateBlock(base model.Key, vms []VMRequest) (Placement, bool) {
	var blockKey model.Key
	for _, vm := range vms {
		if vm.validate() != nil {
			return Placement{}, false
		}
		blockKey = blockKey.Add(model.KeyFor(vm.Class, 1))
	}
	if blockKey.IsZero() || !base.Valid() {
		return Placement{}, false
	}
	return a.evalBlock(base, blockKey, vms, nil)
}

// evalBlock prices adding blockKey to a server currently at base, and
// checks QoS for both the new block and any VMs tentatively placed there
// earlier in this partition.
func (a *Allocator) evalBlock(base, blockKey model.Key, blockVMs, alreadyPlaced []VMRequest) (Placement, bool) {
	after := base.Add(blockKey)
	if after.Total() > a.cfg.MaxVMsPerServer {
		return Placement{}, false
	}
	for _, c := range workload.Classes {
		if after.Count(c) > a.cfg.PerClassBound[c] {
			return Placement{}, false
		}
	}
	recAfter, err := a.cfg.DB.Estimate(after)
	if err != nil {
		return Placement{}, false
	}

	var blockTime units.Seconds
	aux := a.cfg.DB.Aux()
	estOf := func(vm VMRequest) (units.Seconds, bool) {
		ref := aux.RefTime[vm.Class]
		if ref <= 0 {
			return 0, false
		}
		return recAfter.ClassTime(vm.Class) * vm.NominalTime / ref, true
	}
	for _, vm := range blockVMs {
		est, ok := estOf(vm)
		if !ok {
			return Placement{}, false
		}
		if !a.cfg.RelaxQoS && vm.MaxTime > 0 && est > vm.MaxTime {
			return Placement{}, false
		}
		if est > blockTime {
			blockTime = est
		}
	}
	for _, vm := range alreadyPlaced {
		est, ok := estOf(vm)
		if !ok {
			return Placement{}, false
		}
		if !a.cfg.RelaxQoS && vm.MaxTime > 0 && est > vm.MaxTime {
			return Placement{}, false
		}
	}

	// Marginal energy is the difference between the model's whole-outcome
	// energies before and after the block arrives. Unlike a power-delta
	// heuristic this prices the slowdown the new block inflicts on the
	// server's resident VMs (their outcome stretches, and the stretched
	// outcome's energy is exactly what the database measured), which is
	// what keeps the energy goal from over-consolidating past the
	// contention knee.
	var beforeEnergy units.Joules
	if !base.IsZero() {
		recBefore, err := a.cfg.DB.Estimate(base)
		if err != nil {
			return Placement{}, false
		}
		beforeEnergy = recBefore.Energy
	}
	deltaE := recAfter.Energy - beforeEnergy
	if deltaE < 0 {
		deltaE = 0
	}
	return Placement{
		VMs:       blockVMs,
		NewAlloc:  after,
		EstTime:   blockTime,
		EstEnergy: deltaE,
	}, true
}

package core

import (
	"errors"
	"reflect"
	"testing"

	"pacevm/internal/obs"
	"pacevm/internal/rng"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

func budgetAllocator(t *testing.T, budget, workers int, reg *obs.Registry) *Allocator {
	t.Helper()
	a, err := NewAllocator(Config{DB: sharedDB(t), SearchBudget: budget, SearchWorkers: workers, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestSearchBudgetUnlimitedMatchesReference pins the strictly-additive
// contract: zero and negative budgets change nothing — Allocate stays
// bit-identical to the frozen oracle.
func TestSearchBudgetUnlimitedMatchesReference(t *testing.T) {
	r := rng.New(99)
	servers := randomFleet(r, 5)
	vms := randomVMs(t, r, 6)
	ref := mkAllocator(t)
	for _, budget := range []int{0, -1} {
		a := budgetAllocator(t, budget, 1, nil)
		for _, goal := range []Goal{GoalEnergy, GoalPerformance, GoalBalanced} {
			want, err := ref.AllocateReference(goal, servers, vms)
			if err != nil {
				t.Fatal(err)
			}
			got, err := a.Allocate(goal, servers, vms)
			if err != nil {
				t.Fatal(err)
			}
			if got.Degraded {
				t.Fatalf("budget %d marked the allocation degraded", budget)
			}
			sameAllocation(t, "unlimited", got, want)
		}
	}
}

// TestSearchBudgetDegradesToFirstFit drives the budget to exhaustion
// and checks the fallback's shape: degraded flag set, every VM placed
// exactly once, placements on the lowest-index servers that admit them,
// and the obs counters record the event.
func TestSearchBudgetDegradesToFirstFit(t *testing.T) {
	reg := obs.NewRegistry()
	a := budgetAllocator(t, 1, 1, reg) // B(6) >> 1: always exhausts
	r := rng.New(7)
	servers := randomFleet(r, 5)
	vms := randomVMs(t, r, 6)
	got, err := a.Allocate(GoalBalanced, servers, vms)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Degraded {
		t.Fatal("budget 1 over B(6) partitions did not degrade")
	}
	placedIDs := map[string]int{}
	for _, p := range got.Placements {
		for _, vm := range p.VMs {
			placedIDs[vm.ID]++
		}
	}
	for _, vm := range vms {
		if placedIDs[vm.ID] != 1 {
			t.Errorf("VM %q placed %d times", vm.ID, placedIDs[vm.ID])
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["search_budget_exhausted"] != 1 {
		t.Errorf("search_budget_exhausted = %d, want 1", snap.Counters["search_budget_exhausted"])
	}
	if snap.Counters["search_degraded_firstfit"] != 1 {
		t.Errorf("search_degraded_firstfit = %d, want 1", snap.Counters["search_degraded_firstfit"])
	}
}

// TestSearchBudgetDeterministicAcrossWorkers pins the replayability
// contract: the budget is spent producer-side, so a budgeted allocation
// is identical at every worker count — including whether it degraded.
func TestSearchBudgetDeterministicAcrossWorkers(t *testing.T) {
	r := rng.New(17)
	servers := randomFleet(r, 5)
	vms := randomVMs(t, r, 7)
	for _, budget := range []int{1, 3, 10, 50} {
		base := budgetAllocator(t, budget, 1, nil)
		want, werr := base.Allocate(GoalBalanced, servers, vms)
		for _, workers := range []int{2, 4, 8} {
			a := budgetAllocator(t, budget, workers, nil)
			got, gerr := a.Allocate(GoalBalanced, servers, vms)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("budget %d workers %d: err %v vs serial %v", budget, workers, gerr, werr)
			}
			if werr != nil {
				continue
			}
			if got.Degraded != want.Degraded {
				t.Fatalf("budget %d workers %d: degraded %v vs serial %v", budget, workers, got.Degraded, want.Degraded)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("budget %d workers %d: allocation differs from serial", budget, workers)
			}
		}
	}
}

// TestSearchBudgetAboveSpaceNeverDegrades checks that a budget at least
// as large as the deduplicated partition count behaves exactly like no
// budget at all.
func TestSearchBudgetAboveSpaceNeverDegrades(t *testing.T) {
	r := rng.New(23)
	servers := randomFleet(r, 4)
	vms := randomVMs(t, r, 4) // B(4) = 15 partitions before dedup
	ref := mkAllocator(t)
	want, err := ref.Allocate(GoalEnergy, servers, vms)
	if err != nil {
		t.Fatal(err)
	}
	a := budgetAllocator(t, 15, 1, nil)
	got, err := a.Allocate(GoalEnergy, servers, vms)
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded {
		t.Fatal("budget covering the whole space degraded")
	}
	sameAllocation(t, "full budget", got, want)
}

// TestFirstFitFallbackRespectsConstraints exhausts the budget with a
// QoS-tight request and checks the fallback still enforces the bounds:
// a VM that can only run alone must land alone, and an impossible
// request surfaces ErrInfeasible rather than a sloppy placement.
func TestFirstFitFallbackRespectsConstraints(t *testing.T) {
	db := sharedDB(t)
	class := workload.ClassCPU
	nominal := db.Aux().RefTime[class]
	// Tight bound: solo estimate is exactly nominal, so MaxTime just
	// above it admits only solo placement.
	solo := nominal * units.Seconds(1.0001)
	a := budgetAllocator(t, 1, 1, nil)
	vms := []VMRequest{
		vm("a", class, nominal, solo),
		vm("b", class, nominal, solo),
	}
	got, err := a.Allocate(GoalBalanced, emptyServers(3), vms)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Degraded {
		t.Fatal("expected degraded placement")
	}
	if len(got.Placements) != 2 {
		t.Fatalf("tight QoS VMs share a server: %+v", got.Placements)
	}
	// One server only: the second VM cannot co-locate and has nowhere
	// else to go.
	_, err = a.Allocate(GoalBalanced, emptyServers(1), vms)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("impossible request returned %v, want ErrInfeasible", err)
	}
}

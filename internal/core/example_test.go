package core_test

import (
	"fmt"

	"pacevm/internal/core"
	"pacevm/internal/model"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// exampleDB hand-builds a minimal model database: CPU-intensive VMs are
// cheap to co-locate up to 2 per server, and a third stretches the
// outcome sharply (a toy contention knee).
func exampleDB() *model.DB {
	mk := func(n int, time units.Seconds, energy units.Joules) model.Record {
		r := model.Record{
			Key:       model.KeyFor(workload.ClassCPU, n),
			Time:      time,
			AvgTimeVM: time / units.Seconds(n),
			Energy:    energy,
			MaxPower:  230,
			EDP:       units.EDP(energy, time),
		}
		r.TimeByClass[workload.ClassCPU] = time
		return r
	}
	var aux model.Aux
	for _, c := range workload.Classes {
		aux.OSP[c], aux.OSE[c], aux.RefTime[c] = 2, 2, 600
	}
	db, err := model.New([]model.Record{
		mk(1, 600, 90000),
		mk(2, 640, 115000),
	}, aux)
	if err != nil {
		panic(err)
	}
	return db
}

// The paper's Sect. III.D interface: given the model, a goal α, the
// servers' current allocations and a set of VMs with QoS bounds, the
// allocator returns the best partition and placement.
func ExampleAllocator_Allocate() {
	alloc, err := core.NewAllocator(core.Config{DB: exampleDB()})
	if err != nil {
		fmt.Println(err)
		return
	}
	servers := []core.ServerState{
		{ID: 0, Alloc: model.KeyFor(workload.ClassCPU, 1)}, // warm
		{ID: 1}, // off
		{ID: 2}, // off
	}
	// A QoS bound of 610 s rules out any 2-way co-location (the database
	// says two co-located CPU VMs take 640 s), so the search must split
	// the pair across the idle servers — the warm server is already at
	// capacity for QoS purposes.
	vms := []core.VMRequest{
		{ID: "rank-0", Class: workload.ClassCPU, NominalTime: 600, MaxTime: 610},
		{ID: "rank-1", Class: workload.ClassCPU, NominalTime: 600, MaxTime: 610},
	}
	out, err := alloc.Allocate(core.GoalEnergy, servers, vms)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, pl := range out.Placements {
		fmt.Printf("server %d <- %d VM(s), allocation %v, est %v\n",
			pl.ServerID, len(pl.VMs), pl.NewAlloc, pl.EstTime)
	}
	// Output:
	// server 1 <- 1 VM(s), allocation (1,0,0), est 600.000s
	// server 2 <- 1 VM(s), allocation (1,0,0), est 600.000s
}

func ExampleAllocator_EstimateVM() {
	alloc, err := core.NewAllocator(core.Config{DB: exampleDB()})
	if err != nil {
		fmt.Println(err)
		return
	}
	// A VM with twice the reference solo time, co-located with one
	// other CPU VM: the database's 2-way time (640 s) scales to 1280 s.
	est, err := alloc.EstimateVM(model.KeyFor(workload.ClassCPU, 2), core.VMRequest{
		ID: "v", Class: workload.ClassCPU, NominalTime: 1200,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(est)
	// Output: 1280.000s
}

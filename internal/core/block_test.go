package core

import (
	"testing"
	"testing/quick"

	"pacevm/internal/model"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

func TestEvaluateBlockSolo(t *testing.T) {
	a := mkAllocator(t)
	ref := refTime(t, workload.ClassCPU)
	pl, ok := a.EvaluateBlock(model.Key{}, []VMRequest{vm("v", workload.ClassCPU, ref, 0)})
	if !ok {
		t.Fatal("solo block refused")
	}
	if pl.NewAlloc != model.KeyFor(workload.ClassCPU, 1) {
		t.Errorf("new alloc = %v", pl.NewAlloc)
	}
	rec, _ := sharedDB(t).Lookup(model.KeyFor(workload.ClassCPU, 1))
	if !units.NearlyEqual(float64(pl.EstTime), float64(rec.ClassTime(workload.ClassCPU)), 1e-9) {
		t.Errorf("est time %v, want %v", pl.EstTime, rec.ClassTime(workload.ClassCPU))
	}
	if !units.NearlyEqual(float64(pl.EstEnergy), float64(rec.Energy), 1e-9) {
		t.Errorf("est energy %v, want the solo record's %v", pl.EstEnergy, rec.Energy)
	}
}

func TestEvaluateBlockRejects(t *testing.T) {
	a := mkAllocator(t)
	ref := refTime(t, workload.ClassCPU)
	if _, ok := a.EvaluateBlock(model.Key{}, nil); ok {
		t.Error("empty block should be refused")
	}
	if _, ok := a.EvaluateBlock(model.Key{NCPU: -1}, []VMRequest{vm("v", workload.ClassCPU, ref, 0)}); ok {
		t.Error("invalid base should be refused")
	}
	if _, ok := a.EvaluateBlock(model.Key{}, []VMRequest{vm("v", workload.Class(9), ref, 0)}); ok {
		t.Error("invalid VM should be refused")
	}
	// QoS-infeasible block.
	if _, ok := a.EvaluateBlock(model.Key{}, []VMRequest{vm("v", workload.ClassCPU, ref, ref/4)}); ok {
		t.Error("impossible QoS should be refused")
	}
}

func TestEvaluateBlockPerClassBound(t *testing.T) {
	a := mkAllocator(t)
	db := sharedDB(t)
	ref := refTime(t, workload.ClassMEM)
	bound := db.Aux().OS(workload.ClassMEM)
	base := model.KeyFor(workload.ClassMEM, bound)
	if _, ok := a.EvaluateBlock(base, []VMRequest{vm("v", workload.ClassMEM, ref, 0)}); ok {
		t.Errorf("block admitted past the per-class bound of %d", bound)
	}
	// An unbounded allocator admits it.
	un, err := NewAllocator(Config{DB: db, PerClassBound: [workload.NumClasses]int{-1, -1, -1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := un.EvaluateBlock(base, []VMRequest{vm("v", workload.ClassMEM, ref, 0)}); !ok {
		t.Error("unbounded allocator refused a within-capacity block")
	}
}

// TestEvaluateBlockMarginalEnergyAdditive checks the pricing telescope:
// adding VMs one at a time must accumulate exactly the energy of adding
// them at once (both equal E(after) − E(before)).
func TestEvaluateBlockMarginalEnergyAdditive(t *testing.T) {
	a := mkAllocator(t)
	ref := refTime(t, workload.ClassIO)
	one := []VMRequest{vm("a", workload.ClassIO, ref, 0)}
	two := []VMRequest{vm("a", workload.ClassIO, ref, 0), vm("b", workload.ClassIO, ref, 0)}

	plTwo, ok := a.EvaluateBlock(model.Key{}, two)
	if !ok {
		t.Fatal("2-block refused")
	}
	plFirst, ok := a.EvaluateBlock(model.Key{}, one)
	if !ok {
		t.Fatal("first refused")
	}
	plSecond, ok := a.EvaluateBlock(model.KeyFor(workload.ClassIO, 1), one)
	if !ok {
		t.Fatal("second refused")
	}
	sum := float64(plFirst.EstEnergy + plSecond.EstEnergy)
	if !units.NearlyEqual(sum, float64(plTwo.EstEnergy), 1e-9) {
		t.Errorf("telescoped energy %v != block energy %v", sum, plTwo.EstEnergy)
	}
}

// TestEvaluateBlockMonotoneInLoad: the same block on a busier server is
// never estimated faster.
func TestEvaluateBlockMonotoneInLoad(t *testing.T) {
	a := mkAllocator(t)
	ref := refTime(t, workload.ClassCPU)
	block := []VMRequest{vm("v", workload.ClassCPU, ref, 0)}
	f := func(nRaw uint8) bool {
		n := int(nRaw % 4)
		lighter, ok1 := a.EvaluateBlock(model.KeyFor(workload.ClassCPU, n), block)
		heavier, ok2 := a.EvaluateBlock(model.KeyFor(workload.ClassCPU, n+1), block)
		if !ok1 {
			return true
		}
		if !ok2 {
			return true // bound reached; nothing to compare
		}
		return heavier.EstTime >= lighter.EstTime-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

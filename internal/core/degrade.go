package core

// Graceful degradation of the partition search. A truncated exhaustive
// search cannot simply return "the best candidate so far": the
// normalization maxima and the first-of-the-list tie-break are defined
// over the full enumeration, so a partial frontier is a different — and
// scheduling-dependent — algorithm. Instead, when Config.SearchBudget
// exhausts, Allocate falls back to this first-fit placement: each VM in
// request order goes to the lowest-index server that admits it under
// the same capacity, per-class and QoS checks the search applies. The
// fallback is O(VMs × servers), allocation-order deterministic, and
// shares the pricing primitive (evalBlock) with the search, so degraded
// placements remain fully priced and QoS-checked — only the
// energy/performance optimization is surrendered.

import "pacevm/internal/model"

// allocateFirstFit is the budget-exhaustion fallback behind Allocate.
// It returns ErrInfeasible only when some VM fits no server at all —
// the same condition under which the full search would have failed.
func (a *Allocator) allocateFirstFit(servers []ServerState, vms []VMRequest) (Allocation, error) {
	extra := make([]model.Key, len(servers)) // this request's tentative additions
	placed := make([][]VMRequest, len(servers))
	order := make([]int, 0, len(servers)) // servers in first-use order
	one := make([]VMRequest, 1)
	for _, vm := range vms {
		fit := false
		for si := range servers {
			base := servers[si].Alloc.Add(extra[si])
			one[0] = vm
			// Admission probe: capacity and per-class bounds at the grown
			// allocation, QoS of the newcomer and of the VMs this request
			// already parked here.
			if _, ok := a.evalBlock(base, model.KeyFor(vm.Class, 1), one, placed[si]); !ok {
				continue
			}
			if len(placed[si]) == 0 {
				order = append(order, si)
			}
			extra[si] = extra[si].Add(model.KeyFor(vm.Class, 1))
			placed[si] = append(placed[si], vm)
			fit = true
			break
		}
		if !fit {
			return Allocation{}, ErrInfeasible
		}
	}
	// Price each used server's VMs as one block against its original
	// allocation — the incremental probes already admitted exactly this
	// final state, so the evaluation cannot fail.
	out := Allocation{Degraded: true}
	for _, si := range order {
		pl, ok := a.evalBlock(servers[si].Alloc, extra[si], placed[si], nil)
		if !ok {
			return Allocation{}, ErrInfeasible
		}
		pl.ServerID = servers[si].ID
		out.Placements = append(out.Placements, pl)
		out.EstEnergy += pl.EstEnergy
		if pl.EstTime > out.EstTime {
			out.EstTime = pl.EstTime
		}
	}
	return out, nil
}

package core

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"pacevm/internal/campaign"
	"pacevm/internal/model"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

var (
	dbOnce sync.Once
	testDB *model.DB
	dbErr  error
)

// sharedDB builds one campaign database for the whole test package.
func sharedDB(t *testing.T) *model.DB {
	t.Helper()
	dbOnce.Do(func() {
		cfg := campaign.DefaultConfig()
		cfg.MaxBase = 12
		cfg.FullGridTotal = 10
		testDB, _, dbErr = campaign.Run(cfg)
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return testDB
}

func mkAllocator(t *testing.T) *Allocator {
	t.Helper()
	a, err := NewAllocator(Config{DB: sharedDB(t)})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func refTime(t *testing.T, c workload.Class) units.Seconds {
	return sharedDB(t).Aux().RefTime[c]
}

func vm(id string, c workload.Class, nominal, max units.Seconds) VMRequest {
	return VMRequest{ID: id, Class: c, NominalTime: nominal, MaxTime: max}
}

func emptyServers(n int) []ServerState {
	out := make([]ServerState, n)
	for i := range out {
		out[i] = ServerState{ID: i}
	}
	return out
}

func TestNewAllocatorValidation(t *testing.T) {
	if _, err := NewAllocator(Config{}); err == nil {
		t.Error("nil DB should fail")
	}
	if _, err := NewAllocator(Config{DB: sharedDB(t), MaxVMsPerServer: -1}); err == nil {
		t.Error("negative cap should fail")
	}
}

func TestAllocateInputValidation(t *testing.T) {
	a := mkAllocator(t)
	ref := refTime(t, workload.ClassCPU)
	good := []VMRequest{vm("v", workload.ClassCPU, ref, 0)}
	if _, err := a.Allocate(Goal{Alpha: 2}, emptyServers(1), good); err == nil {
		t.Error("alpha > 1 should fail")
	}
	if _, err := a.Allocate(GoalEnergy, nil, good); err == nil {
		t.Error("no servers should fail")
	}
	if _, err := a.Allocate(GoalEnergy, emptyServers(1), nil); err == nil {
		t.Error("no VMs should fail")
	}
	if _, err := a.Allocate(GoalEnergy, emptyServers(1), []VMRequest{vm("v", workload.Class(9), ref, 0)}); err == nil {
		t.Error("bad class should fail")
	}
	if _, err := a.Allocate(GoalEnergy, emptyServers(1), []VMRequest{vm("v", workload.ClassCPU, 0, 0)}); err == nil {
		t.Error("zero nominal time should fail")
	}
	bad := []ServerState{{ID: 0, Alloc: model.Key{NCPU: -1}}}
	if _, err := a.Allocate(GoalEnergy, bad, good); err == nil {
		t.Error("invalid server alloc should fail")
	}
}

func TestSingleVMOnEmptyCloud(t *testing.T) {
	a := mkAllocator(t)
	ref := refTime(t, workload.ClassCPU)
	out, err := a.Allocate(GoalPerformance, emptyServers(4), []VMRequest{vm("v0", workload.ClassCPU, ref, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Placements) != 1 {
		t.Fatalf("placements = %d", len(out.Placements))
	}
	pl := out.Placements[0]
	if pl.ServerID != 0 {
		t.Errorf("tie-break should pick the first server, got %d", pl.ServerID)
	}
	if pl.NewAlloc != model.KeyFor(workload.ClassCPU, 1) {
		t.Errorf("new alloc = %v", pl.NewAlloc)
	}
	// Solo estimate ≈ reference time.
	if !units.NearlyEqual(float64(pl.EstTime), float64(ref), 0.01) {
		t.Errorf("solo estimate %v, want ~%v", pl.EstTime, ref)
	}
	if pl.EstEnergy <= 0 {
		t.Error("activating a server must cost energy")
	}
}

func TestEstimateVMScalesWithNominalTime(t *testing.T) {
	a := mkAllocator(t)
	ref := refTime(t, workload.ClassMEM)
	alloc := model.KeyFor(workload.ClassMEM, 2)
	e1, err := a.EstimateVM(alloc, vm("a", workload.ClassMEM, ref, 0))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := a.EstimateVM(alloc, vm("b", workload.ClassMEM, 2*ref, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !units.NearlyEqual(float64(e2), 2*float64(e1), 1e-9) {
		t.Errorf("estimate did not scale: %v vs %v", e2, e1)
	}
}

func TestEnergyGoalConsolidates(t *testing.T) {
	// One server already runs 2 IO VMs; the rest are off. Placing one
	// more IO VM with the energy goal must reuse the warm server (its
	// marginal power is far below a 125 W activation).
	a := mkAllocator(t)
	ref := refTime(t, workload.ClassIO)
	servers := emptyServers(4)
	servers[1].Alloc = model.KeyFor(workload.ClassIO, 2)
	out, err := a.Allocate(GoalEnergy, servers, []VMRequest{vm("v", workload.ClassIO, ref, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Placements[0].ServerID; got != 1 {
		t.Errorf("energy goal placed on server %d, want warm server 1", got)
	}
}

func TestPerformanceGoalAvoidsContention(t *testing.T) {
	// One server is saturated with CPU VMs; an idle server is available.
	// The performance goal must prefer the idle server even though
	// activation costs energy.
	a := mkAllocator(t)
	ref := refTime(t, workload.ClassCPU)
	servers := emptyServers(2)
	servers[0].Alloc = model.KeyFor(workload.ClassCPU, 6)
	out, err := a.Allocate(GoalPerformance, servers, []VMRequest{vm("v", workload.ClassCPU, ref, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Placements[0].ServerID; got != 1 {
		t.Errorf("performance goal placed on server %d, want idle server 1", got)
	}
}

func TestQoSForcesSpread(t *testing.T) {
	// Four CPU VMs with a QoS bound just above solo time cannot share
	// one saturated server; the allocator must split them.
	a := mkAllocator(t)
	ref := refTime(t, workload.ClassCPU)
	vms := make([]VMRequest, 4)
	for i := range vms {
		vms[i] = vm(string(rune('a'+i)), workload.ClassCPU, ref, ref*1.3)
	}
	out, err := a.Allocate(GoalEnergy, emptyServers(4), vms)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range out.Placements {
		for _, v := range pl.VMs {
			est, err := a.EstimateVM(pl.NewAlloc, v)
			if err != nil {
				t.Fatal(err)
			}
			if est > v.MaxTime {
				t.Errorf("placement violates QoS: est %v > max %v on alloc %v", est, v.MaxTime, pl.NewAlloc)
			}
		}
	}
}

func TestInfeasibleQoS(t *testing.T) {
	a := mkAllocator(t)
	ref := refTime(t, workload.ClassCPU)
	// Impossible bound: half the solo time.
	vms := []VMRequest{vm("v", workload.ClassCPU, ref, ref/2)}
	_, err := a.Allocate(GoalEnergy, emptyServers(2), vms)
	if err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}

	relaxed, err := NewAllocator(Config{DB: sharedDB(t), RelaxQoS: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := relaxed.Allocate(GoalEnergy, emptyServers(2), vms); err != nil {
		t.Errorf("relaxed allocator should place it: %v", err)
	}
}

func TestFitsAlone(t *testing.T) {
	a := mkAllocator(t)
	ref := refTime(t, workload.ClassIO)
	if !a.FitsAlone(vm("v", workload.ClassIO, ref, 2*ref)) {
		t.Error("generous bound should fit")
	}
	if a.FitsAlone(vm("v", workload.ClassIO, ref, ref/2)) {
		t.Error("impossible bound should not fit")
	}
	if !a.FitsAlone(vm("v", workload.ClassIO, ref, 0)) {
		t.Error("unconstrained VM always fits")
	}
}

func TestServerCapRespected(t *testing.T) {
	a, err := NewAllocator(Config{DB: sharedDB(t), MaxVMsPerServer: 2})
	if err != nil {
		t.Fatal(err)
	}
	ref := refTime(t, workload.ClassCPU)
	vms := make([]VMRequest, 4)
	for i := range vms {
		vms[i] = vm(string(rune('a'+i)), workload.ClassCPU, ref, 0)
	}
	out, err := a.Allocate(GoalEnergy, emptyServers(4), vms)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range out.Placements {
		if pl.NewAlloc.Total() > 2 {
			t.Errorf("placement exceeds cap: %v", pl.NewAlloc)
		}
	}
	// And with only one tiny server it must be infeasible.
	if _, err := a.Allocate(GoalEnergy, emptyServers(1), vms); err != ErrInfeasible {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestAllVMsPlacedExactlyOnceProperty(t *testing.T) {
	a := mkAllocator(t)
	refC := refTime(t, workload.ClassCPU)
	refM := refTime(t, workload.ClassMEM)
	refI := refTime(t, workload.ClassIO)
	refs := map[workload.Class]units.Seconds{
		workload.ClassCPU: refC, workload.ClassMEM: refM, workload.ClassIO: refI,
	}
	db := sharedDB(t)
	f := func(classRaw [5]uint8, nVMs, nServers, alphaRaw uint8) bool {
		n := int(nVMs%5) + 1
		servers := emptyServers(int(nServers%6) + 1)
		alpha := float64(alphaRaw%11) / 10
		vms := make([]VMRequest, n)
		ids := map[string]bool{}
		counts := map[workload.Class]int{}
		for i := range vms {
			c := workload.Classes[int(classRaw[i%5])%workload.NumClasses]
			id := string(rune('a' + i))
			vms[i] = vm(id, c, refs[c], 0)
			ids[id] = true
			counts[c]++
		}
		out, err := a.Allocate(Goal{Alpha: alpha}, servers, vms)
		if err == ErrInfeasible {
			// Legitimate only when some class genuinely exceeds the
			// cloud's per-class grid capacity (servers × OS bound).
			for c, cnt := range counts {
				if cnt > len(servers)*db.Aux().OS(c) {
					return true
				}
			}
			return false
		}
		if err != nil {
			return false
		}
		placed := map[string]int{}
		for _, pl := range out.Placements {
			for _, v := range pl.VMs {
				placed[v.ID]++
			}
		}
		if len(placed) != n {
			return false
		}
		for id := range ids {
			if placed[id] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicAllocation(t *testing.T) {
	a := mkAllocator(t)
	ref := refTime(t, workload.ClassMEM)
	vms := []VMRequest{
		vm("a", workload.ClassMEM, ref, 0),
		vm("b", workload.ClassCPU, refTime(t, workload.ClassCPU), 0),
		vm("c", workload.ClassMEM, ref, 0),
	}
	servers := emptyServers(3)
	servers[0].Alloc = model.Key{NCPU: 1}
	first, err := a.Allocate(GoalBalanced, servers, vms)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := a.Allocate(GoalBalanced, servers, vms)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Placements) != len(first.Placements) {
			t.Fatal("nondeterministic placement count")
		}
		for j := range again.Placements {
			if again.Placements[j].ServerID != first.Placements[j].ServerID ||
				again.Placements[j].NewAlloc != first.Placements[j].NewAlloc {
				t.Fatal("nondeterministic placement")
			}
		}
	}
}

func TestPartitionSignatureDedup(t *testing.T) {
	ref := units.Seconds(600)
	vms := []VMRequest{
		vm("a", workload.ClassCPU, ref, 0),
		vm("b", workload.ClassCPU, ref, 0),
		vm("c", workload.ClassCPU, ref, 0),
	}
	// Identical VMs: {a,b}{c} and {a,c}{b} must collapse.
	sig1 := legacyPartitionSignature(vms, [][]int{{0, 1}, {2}})
	sig2 := legacyPartitionSignature(vms, [][]int{{0, 2}, {1}})
	if sig1 != sig2 {
		t.Errorf("equivalent partitions have different signatures:\n%s\n%s", sig1, sig2)
	}
	// Different block structure must not collapse.
	sig3 := legacyPartitionSignature(vms, [][]int{{0, 1, 2}})
	if sig1 == sig3 {
		t.Error("distinct partitions share a signature")
	}
	// Distinct VM attributes must not collapse.
	vms[2].Class = workload.ClassIO
	sig4 := legacyPartitionSignature(vms, [][]int{{0, 1}, {2}})
	sig5 := legacyPartitionSignature(vms, [][]int{{0, 2}, {1}})
	if sig4 == sig5 {
		t.Error("partitions of distinguishable VMs should differ")
	}
	if !strings.Contains(sig4, "|") {
		t.Error("multi-block signature should separate blocks")
	}
}

func TestEnergyVsPerformanceTradeoffDirection(t *testing.T) {
	// For the same request, the energy goal must not use more estimated
	// energy than the performance goal, and the performance goal must
	// not be slower than the energy goal.
	a := mkAllocator(t)
	ref := refTime(t, workload.ClassCPU)
	vms := make([]VMRequest, 4)
	for i := range vms {
		vms[i] = vm(string(rune('a'+i)), workload.ClassCPU, ref, 0)
	}
	servers := emptyServers(4)
	servers[0].Alloc = model.Key{NCPU: 2}
	eOut, err := a.Allocate(GoalEnergy, servers, vms)
	if err != nil {
		t.Fatal(err)
	}
	pOut, err := a.Allocate(GoalPerformance, servers, vms)
	if err != nil {
		t.Fatal(err)
	}
	if eOut.EstEnergy > pOut.EstEnergy+1 {
		t.Errorf("energy goal used more energy (%v) than performance goal (%v)", eOut.EstEnergy, pOut.EstEnergy)
	}
	if pOut.EstTime > eOut.EstTime+1 {
		t.Errorf("performance goal slower (%v) than energy goal (%v)", pOut.EstTime, eOut.EstTime)
	}
}

package core

// The retained serial reference implementation of the paper's search:
// a literal transcription of Sect. III.D that materializes every
// candidate and scores the full list, with only the interchangeable-VM
// partition dedup (via the legacy string signature) and the
// identical-allocation server dedup. Allocate produces bit-for-bit
// identical results through the pruned, memoized, parallel engine in
// search.go; the equivalence is asserted by TestAllocateMatchesReference
// and this path doubles as the pre-optimization baseline for the
// BenchmarkAllocateReference measurements.

import (
	"fmt"
	"sort"
	"strings"

	"pacevm/internal/model"
	"pacevm/internal/partition"
	"pacevm/internal/units"
)

// referenceCandidate is one fully-placed partition under evaluation by
// the reference path.
type referenceCandidate struct {
	placements []Placement
	time       units.Seconds
	energy     units.Joules
}

// AllocateReference runs the unpruned serial brute-force search and
// returns the best allocation for the goal, or ErrInfeasible when no
// candidate satisfies QoS. It is the oracle Allocate is verified
// against; production callers should use Allocate.
func (a *Allocator) AllocateReference(goal Goal, servers []ServerState, vms []VMRequest) (Allocation, error) {
	if err := a.validateRequest(goal, servers, vms); err != nil {
		return Allocation{}, err
	}

	var cands []referenceCandidate
	seen := map[string]bool{}
	_, err := partition.ForEach(len(vms), func(blocks [][]int) bool {
		sig := legacyPartitionSignature(vms, blocks)
		if seen[sig] {
			return true
		}
		seen[sig] = true
		if cand, ok := a.evalPartitionReference(goal, servers, vms, blocks); ok {
			cands = append(cands, cand)
		}
		return true
	})
	if err != nil {
		return Allocation{}, err
	}
	if len(cands) == 0 {
		return Allocation{}, ErrInfeasible
	}

	best := pickBestReference(goal, cands)
	return Allocation{
		Placements: best.placements,
		EstTime:    best.time,
		EstEnergy:  best.energy,
	}, nil
}

// pickBestReference normalizes candidate times and energies to their
// maxima and selects the minimum α-weighted score, keeping the earliest
// candidate on ties (deterministic enumeration order → the paper's
// first-of-the-list tie break).
func pickBestReference(goal Goal, cands []referenceCandidate) referenceCandidate {
	var maxT units.Seconds
	var maxE units.Joules
	for _, c := range cands {
		if c.time > maxT {
			maxT = c.time
		}
		if c.energy > maxE {
			maxE = c.energy
		}
	}
	bestScore := 0.0
	bestIdx := -1
	for i, c := range cands {
		tn, en := 0.0, 0.0
		if maxT > 0 {
			tn = float64(c.time) / float64(maxT)
		}
		if maxE > 0 {
			en = float64(c.energy) / float64(maxE)
		}
		score := goal.Alpha*en + (1-goal.Alpha)*tn
		if bestIdx < 0 || score < bestScore-scoreEpsilon {
			bestScore, bestIdx = score, i
		}
	}
	return cands[bestIdx]
}

// evalPartitionReference greedily places every block of the partition on
// its best-scoring feasible server and prices the result. ok is false
// when some block has no feasible server.
func (a *Allocator) evalPartitionReference(goal Goal, servers []ServerState, vms []VMRequest, blocks [][]int) (referenceCandidate, bool) {
	extra := make(map[int]model.Key) // server index -> tentative additions
	placedVMs := make(map[int][]VMRequest)
	var cand referenceCandidate

	for _, block := range blocks {
		blockVMs := make([]VMRequest, len(block))
		var blockKey model.Key
		for i, idx := range block {
			blockVMs[i] = vms[idx]
			blockKey = blockKey.Add(model.KeyFor(vms[idx].Class, 1))
		}

		bestIdx := -1
		var bestPl Placement
		bestScore := 0.0
		// Servers with identical effective allocation are equivalent;
		// evaluate the first of each group only.
		evaluated := map[model.Key]bool{}
		type option struct {
			idx    int
			pl     Placement
			before model.Key
		}
		var options []option
		for si, s := range servers {
			base := s.Alloc.Add(extra[si])
			if evaluated[base] {
				continue
			}
			evaluated[base] = true
			pl, ok := a.evalBlock(base, blockKey, blockVMs, placedVMs[si])
			if !ok {
				continue
			}
			pl.ServerID = s.ID
			options = append(options, option{idx: si, pl: pl, before: base})
		}
		if len(options) == 0 {
			return referenceCandidate{}, false
		}
		// Normalize within the block's options and pick the best.
		var maxT units.Seconds
		var maxE units.Joules
		for _, o := range options {
			if o.pl.EstTime > maxT {
				maxT = o.pl.EstTime
			}
			if o.pl.EstEnergy > maxE {
				maxE = o.pl.EstEnergy
			}
		}
		for _, o := range options {
			tn, en := 0.0, 0.0
			if maxT > 0 {
				tn = float64(o.pl.EstTime) / float64(maxT)
			}
			if maxE > 0 {
				en = float64(o.pl.EstEnergy) / float64(maxE)
			}
			// The block-level choice honors the same α as the
			// allocation-level ranking.
			score := goal.Alpha*en + (1-goal.Alpha)*tn
			if bestIdx < 0 || score < bestScore-scoreEpsilon {
				bestScore, bestIdx, bestPl = score, o.idx, o.pl
			}
		}
		extra[bestIdx] = extra[bestIdx].Add(blockKey)
		placedVMs[bestIdx] = append(placedVMs[bestIdx], blockVMs...)
		cand.placements = append(cand.placements, bestPl)
		cand.energy += bestPl.EstEnergy
		if bestPl.EstTime > cand.time {
			cand.time = bestPl.EstTime
		}
	}
	return cand, true
}

// legacyPartitionSignature is the string-building canonicalization the
// typed-multiset signature of search.go replaced: two partitions with
// the same multiset of block compositions (by class, nominal time and
// QoS bound) get equal strings. Retained for the reference path and as
// the cross-check oracle of the signature property test; the hot path
// never builds strings.
func legacyPartitionSignature(vms []VMRequest, blocks [][]int) string {
	blockSigs := make([]string, len(blocks))
	for i, block := range blocks {
		items := make([]string, len(block))
		for j, idx := range block {
			vm := vms[idx]
			items[j] = fmt.Sprintf("%d:%g:%g", int(vm.Class), float64(vm.NominalTime), float64(vm.MaxTime))
		}
		sort.Strings(items)
		blockSigs[i] = strings.Join(items, ",")
	}
	sort.Strings(blockSigs)
	return strings.Join(blockSigs, "|")
}

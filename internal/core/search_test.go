package core

import (
	"sync"
	"testing"
	"testing/quick"

	"pacevm/internal/model"
	"pacevm/internal/obs"
	"pacevm/internal/rng"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// randomFleet builds nServers servers with small valid residual
// allocations drawn from r.
func randomFleet(r *rng.Stream, nServers int) []ServerState {
	servers := make([]ServerState, nServers)
	for i := range servers {
		servers[i] = ServerState{ID: i}
		if r.Bool(0.6) {
			servers[i].Alloc = model.Key{
				NCPU: r.Intn(3),
				NMEM: r.Intn(2),
				NIO:  r.Intn(2),
			}
		}
	}
	return servers
}

// randomVMs builds n VM requests with attributes drawn from small pools
// so that some VMs are interchangeable and some are not.
func randomVMs(t *testing.T, r *rng.Stream, n int) []VMRequest {
	t.Helper()
	factors := []float64{1, 1, 1.25, 1.5}
	vms := make([]VMRequest, n)
	for i := range vms {
		class := workload.Classes[r.Intn(workload.NumClasses)]
		nominal := refTime(t, class) * units.Seconds(factors[r.Intn(len(factors))])
		var max units.Seconds
		switch r.Intn(3) {
		case 1:
			max = nominal * 4
		case 2:
			max = nominal * 3 / 2
		}
		vms[i] = VMRequest{ID: string(rune('a' + i)), Class: class, NominalTime: nominal, MaxTime: max}
	}
	return vms
}

// sameAllocation asserts two allocations are bit-for-bit identical:
// same placements in the same order, same servers, same VM identities,
// and exactly equal estimated times and energies.
func sameAllocation(t *testing.T, label string, got, want Allocation) {
	t.Helper()
	if got.EstTime != want.EstTime || got.EstEnergy != want.EstEnergy {
		t.Errorf("%s: totals (%v, %v) != reference (%v, %v)",
			label, got.EstTime, got.EstEnergy, want.EstTime, want.EstEnergy)
	}
	if len(got.Placements) != len(want.Placements) {
		t.Fatalf("%s: %d placements, reference has %d", label, len(got.Placements), len(want.Placements))
	}
	for i := range got.Placements {
		g, w := got.Placements[i], want.Placements[i]
		if g.ServerID != w.ServerID || g.NewAlloc != w.NewAlloc ||
			g.EstTime != w.EstTime || g.EstEnergy != w.EstEnergy {
			t.Errorf("%s: placement %d = {srv %d alloc %v t %v e %v}, reference {srv %d alloc %v t %v e %v}",
				label, i, g.ServerID, g.NewAlloc, g.EstTime, g.EstEnergy,
				w.ServerID, w.NewAlloc, w.EstTime, w.EstEnergy)
		}
		if len(g.VMs) != len(w.VMs) {
			t.Fatalf("%s: placement %d has %d VMs, reference %d", label, i, len(g.VMs), len(w.VMs))
		}
		for j := range g.VMs {
			if g.VMs[j].ID != w.VMs[j].ID {
				t.Errorf("%s: placement %d VM %d = %q, reference %q", label, i, j, g.VMs[j].ID, w.VMs[j].ID)
			}
		}
	}
}

// TestAllocateMatchesReference is the equivalence satellite: the
// pruned/memoized engine — serial and parallel — must return the
// identical Allocation as the retained literal transcription of the
// paper's search, across seeded random fleets, all three evaluated α
// goals, and VM sets up to n = 8.
func TestAllocateMatchesReference(t *testing.T) {
	db := sharedDB(t)
	serial, err := NewAllocator(Config{DB: db, SearchWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := NewAllocator(Config{DB: db, SearchWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	goals := []Goal{GoalEnergy, GoalPerformance, GoalBalanced}
	r := rng.New(7)
	for n := 2; n <= 8; n++ {
		servers := randomFleet(r, 4+r.Intn(5))
		vms := randomVMs(t, r, n)
		for _, goal := range goals {
			want, wantErr := serial.AllocateReference(goal, servers, vms)
			for name, a := range map[string]*Allocator{"serial": serial, "parallel": pooled} {
				got, gotErr := a.Allocate(goal, servers, vms)
				label := name
				if gotErr != wantErr {
					t.Errorf("%s n=%d alpha=%g: err %v, reference err %v", label, n, goal.Alpha, gotErr, wantErr)
					continue
				}
				if wantErr != nil {
					continue
				}
				sameAllocation(t, label, got, want)
			}
		}
	}
}

// TestAllocateParallelDeterministic re-runs a pooled search and demands
// identical output every time: the enumeration index carried through
// the fan-out must fully pin the tie-breaks.
func TestAllocateParallelDeterministic(t *testing.T) {
	a, err := NewAllocator(Config{DB: sharedDB(t), SearchWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	servers := randomFleet(r, 6)
	vms := randomVMs(t, r, 7)
	first, err := a.Allocate(GoalBalanced, servers, vms)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		again, err := a.Allocate(GoalBalanced, servers, vms)
		if err != nil {
			t.Fatal(err)
		}
		sameAllocation(t, "rerun", again, first)
	}
}

// randomRGS draws a uniform valid restricted-growth string of length n
// and materializes its blocks.
func randomRGS(r *rng.Stream, n int) [][]int {
	a := make([]int, n)
	mx := 0
	for i := 1; i < n; i++ {
		a[i] = r.Intn(mx + 2)
		if a[i] > mx {
			mx = a[i]
		}
	}
	blocks := make([][]int, mx+1)
	for i, v := range a {
		blocks[v] = append(blocks[v], i)
	}
	return blocks
}

// TestPartitionSignatureProperty is the signature satellite: two
// partitions get equal typed-multiset signatures iff the legacy string
// canonicalization — the previous implementation, kept as the spec —
// also considers them equal.
func TestPartitionSignatureProperty(t *testing.T) {
	r := rng.New(23)
	f := func(nRaw, seedRaw uint8) bool {
		n := int(nRaw%7) + 2
		vms := make([]VMRequest, n)
		nominals := []units.Seconds{600, 900}
		maxes := []units.Seconds{0, 2400}
		for i := range vms {
			vms[i] = VMRequest{
				ID:          string(rune('a' + i)),
				Class:       workload.Classes[r.Intn(workload.NumClasses)],
				NominalTime: nominals[r.Intn(len(nominals))],
				MaxTime:     maxes[r.Intn(len(maxes))],
			}
		}
		b1 := randomRGS(r, n)
		b2 := randomRGS(r, n)
		typeOf, types := vmTypes(vms)
		if len(types) > n {
			return false
		}
		newEq := sigOfPartition(typeOf, b1) == sigOfPartition(typeOf, b2)
		legacyEq := legacyPartitionSignature(vms, b1) == legacyPartitionSignature(vms, b2)
		return newEq == legacyEq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestVMTypesInterchangeability pins the type-table construction: ids
// collapse exactly on (class, nominal, QoS) equality.
func TestVMTypesInterchangeability(t *testing.T) {
	vms := []VMRequest{
		{ID: "a", Class: workload.ClassCPU, NominalTime: 600},
		{ID: "b", Class: workload.ClassCPU, NominalTime: 600},
		{ID: "c", Class: workload.ClassCPU, NominalTime: 900},
		{ID: "d", Class: workload.ClassMEM, NominalTime: 600},
		{ID: "e", Class: workload.ClassCPU, NominalTime: 600, MaxTime: 1200},
		{ID: "f", Class: workload.ClassCPU, NominalTime: 600},
	}
	typeOf, types := vmTypes(vms)
	if len(types) != 4 {
		t.Fatalf("types = %d, want 4", len(types))
	}
	want := []uint8{0, 0, 1, 2, 3, 0}
	for i, w := range want {
		if typeOf[i] != w {
			t.Errorf("typeOf[%d] = %d, want %d", i, typeOf[i], w)
		}
	}
}

// TestPickBestTieBreak is the small-fix satellite: two candidates with
// equal normalized scores must select the earlier enumeration index,
// under every goal, and a later candidate must win only when strictly
// better than the epsilon band.
func TestPickBestTieBreak(t *testing.T) {
	goals := []Goal{GoalEnergy, GoalPerformance, GoalBalanced}
	tied := []candidate{
		{idx: 0, time: 100, energy: 200},
		{idx: 1, time: 100, energy: 200},
	}
	for _, g := range goals {
		if got := pickBest(g, tied, 100, 200); got != 0 {
			t.Errorf("alpha=%g: tied candidates picked %d, want earlier index 0", g.Alpha, got)
		}
	}
	// A later, strictly dominating candidate wins.
	better := []candidate{
		{idx: 0, time: 100, energy: 200},
		{idx: 1, time: 50, energy: 100},
	}
	for _, g := range goals {
		if got := pickBest(g, better, 100, 200); got != 1 {
			t.Errorf("alpha=%g: strictly better candidate not picked (got %d)", g.Alpha, got)
		}
	}
	// A later candidate inside the epsilon band does not dethrone the
	// incumbent: its normalized score differs by ~1e-14 < scoreEpsilon.
	within := []candidate{
		{idx: 0, time: 100, energy: 200},
		{idx: 1, time: 100 * (1 - 1e-14), energy: 200 * (1 - 1e-14)},
	}
	for _, g := range goals {
		if got := pickBest(g, within, 100, 200); got != 0 {
			t.Errorf("alpha=%g: epsilon-tied candidate dethroned the incumbent (got %d)", g.Alpha, got)
		}
	}
}

// TestParetoFrontierKeepsWinner checks the pruning invariant directly:
// for a random search the frontier the engine retains must contain the
// winner the unpruned reference selects, for every goal.
func TestParetoFrontierKeepsWinner(t *testing.T) {
	a := mkAllocator(t)
	r := rng.New(31)
	servers := randomFleet(r, 5)
	vms := randomVMs(t, r, 6)
	for _, goal := range []Goal{GoalEnergy, GoalPerformance, GoalBalanced} {
		want, err := a.AllocateReference(goal, servers, vms)
		if err != nil {
			t.Fatal(err)
		}
		sc := newSearchCtx(a, goal, servers, vms)
		frontier, maxT, maxE, exhausted, err := sc.search(1)
		if err != nil {
			t.Fatal(err)
		}
		if exhausted {
			t.Fatal("unbudgeted search reported exhaustion")
		}
		best := pickBest(goal, frontier, maxT, maxE)
		got := sc.materialize(frontier[best])
		sameAllocation(t, "frontier", got, want)
	}
}

// TestSearchTelemetryInvariants runs an instrumented pooled search and
// checks the bookkeeping identities that tie the counters to the
// search's structure: every enumerated partition is either deduped or
// evaluated, every evaluated candidate lands in exactly one of
// feasible/infeasible, and the worker-load histogram accounts for every
// evaluated job across the pool.
func TestSearchTelemetryInvariants(t *testing.T) {
	reg := obs.NewRegistry()
	a, err := NewAllocator(Config{DB: sharedDB(t), SearchWorkers: 8, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(17)
	servers := randomFleet(r, 6)
	vms := randomVMs(t, r, 9) // Bell(9) = 21147 partitions: plenty of pool traffic
	if _, err := a.Allocate(GoalBalanced, servers, vms); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	enumerated := snap.Counters["search_partitions_enumerated"]
	deduped := snap.Counters["search_partitions_deduped"]
	feasible := snap.Counters["search_candidates_feasible"]
	infeasible := snap.Counters["search_candidates_infeasible"]
	if enumerated == 0 || deduped == 0 || feasible == 0 {
		t.Fatalf("counters not populated: %+v", snap.Counters)
	}
	if feasible+infeasible != enumerated-deduped {
		t.Errorf("feasible (%d) + infeasible (%d) != enumerated (%d) - deduped (%d)",
			feasible, infeasible, enumerated, deduped)
	}
	load := snap.Histograms["search_jobs_per_worker"]
	if load.Count != 8 {
		t.Errorf("worker-load histogram has %d samples, want one per worker (8)", load.Count)
	}
	if int64(load.Sum) != enumerated-deduped {
		t.Errorf("worker-load sum = %.0f jobs, want evaluated count %d", load.Sum, enumerated-deduped)
	}
	if snap.Counters["model_cache_hits"] == 0 || snap.Counters["model_cache_misses"] == 0 {
		t.Error("search did not exercise the instrumented estimate cache")
	}
}

// TestSearchTelemetryConcurrentAllocations drives several pooled
// searches at once against one shared registry (run under -race in
// `make verify` and CI): worker goroutines from every pool update the
// same counters concurrently, and the aggregate must still balance.
func TestSearchTelemetryConcurrentAllocations(t *testing.T) {
	reg := obs.NewRegistry()
	a, err := NewAllocator(Config{DB: sharedDB(t), SearchWorkers: 4, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(100 + uint64(g))
			for i := 0; i < 3; i++ {
				servers := randomFleet(r, 5)
				vms := randomVMs(t, r, 7)
				if _, err := a.Allocate(GoalBalanced, servers, vms); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	snap := reg.Snapshot()
	enumerated := snap.Counters["search_partitions_enumerated"]
	deduped := snap.Counters["search_partitions_deduped"]
	feasible := snap.Counters["search_candidates_feasible"]
	infeasible := snap.Counters["search_candidates_infeasible"]
	if feasible+infeasible != enumerated-deduped {
		t.Errorf("aggregate imbalance: feasible (%d) + infeasible (%d) != enumerated (%d) - deduped (%d)",
			feasible, infeasible, enumerated, deduped)
	}
	if got := snap.Histograms["search_jobs_per_worker"].Count; got != 12*4 {
		t.Errorf("worker-load samples = %d, want 48 (12 searches x 4 workers)", got)
	}
}

// Package thermal implements the paper's first future-work direction:
// "consider thermal efficiency in VM allocation" and integration "with
// schemes for autonomic thermal management in instrumented datacenters"
// (Sect. V; the authors' earlier reactive study is reference [3]).
//
// The model is the standard abstract heat-recirculation formulation used
// by that literature: each server's inlet temperature is the cooling
// supply temperature plus a weighted sum of all servers' power draws,
//
//	T_in[i] = T_supply + Σ_j D[i][j]·P[j]
//
// where D captures how much of server j's heat recirculates into server
// i's inlet. A thermal-aware placement keeps the predicted peak inlet
// temperature below the redline by preferring servers whose heat
// contribution to hot positions is small.
//
// Strategy decorates any base placement strategy with a thermal
// admission check and a coolest-feasible re-ranking, so the paper's
// PROACTIVE allocator composes with thermal management unchanged.
package thermal

import (
	"fmt"

	"pacevm/internal/core"
	"pacevm/internal/model"
	"pacevm/internal/strategy"
	"pacevm/internal/units"
)

// Celsius is a temperature.
type Celsius float64

func (c Celsius) String() string { return fmt.Sprintf("%.1f°C", float64(c)) }

// Model is the datacenter heat-recirculation model.
type Model struct {
	// Supply is the cooling (CRAC) supply temperature.
	Supply Celsius
	// Recirculation[i][j] is the inlet temperature rise at server i per
	// Watt dissipated at server j (°C/W). The diagonal models a
	// server's own heat feedback.
	Recirculation [][]float64
	// Redline is the maximum safe inlet temperature.
	Redline Celsius
}

// Uniform builds a model for n servers where every server receives
// self °C/W from itself and cross °C/W from every other server — the
// simplest well-mixed room. Use custom matrices for row/aisle layouts.
func Uniform(n int, supply, redline Celsius, self, cross float64) (*Model, error) {
	if n < 1 {
		return nil, fmt.Errorf("thermal: need at least one server")
	}
	if self < 0 || cross < 0 {
		return nil, fmt.Errorf("thermal: negative recirculation coefficients")
	}
	m := &Model{Supply: supply, Redline: redline, Recirculation: make([][]float64, n)}
	for i := range m.Recirculation {
		row := make([]float64, n)
		for j := range row {
			if i == j {
				row[j] = self
			} else {
				row[j] = cross
			}
		}
		m.Recirculation[i] = row
	}
	return m, nil
}

// Validate checks the model's shape.
func (m *Model) Validate() error {
	n := len(m.Recirculation)
	if n == 0 {
		return fmt.Errorf("thermal: empty recirculation matrix")
	}
	for i, row := range m.Recirculation {
		if len(row) != n {
			return fmt.Errorf("thermal: recirculation row %d has %d entries, want %d", i, len(row), n)
		}
		for j, d := range row {
			if d < 0 {
				return fmt.Errorf("thermal: negative recirculation D[%d][%d]", i, j)
			}
		}
	}
	if m.Redline <= m.Supply {
		return fmt.Errorf("thermal: redline %v not above supply %v", m.Redline, m.Supply)
	}
	return nil
}

// Servers returns the number of servers the model covers.
func (m *Model) Servers() int { return len(m.Recirculation) }

// Inlets predicts every server's inlet temperature for the given power
// vector (one entry per server).
func (m *Model) Inlets(powers []units.Watts) ([]Celsius, error) {
	if len(powers) != m.Servers() {
		return nil, fmt.Errorf("thermal: %d powers for %d servers", len(powers), m.Servers())
	}
	out := make([]Celsius, m.Servers())
	for i, row := range m.Recirculation {
		t := m.Supply
		for j, d := range row {
			t += Celsius(d * float64(powers[j]))
		}
		out[i] = t
	}
	return out, nil
}

// Peak returns the hottest inlet and its server index.
func (m *Model) Peak(powers []units.Watts) (int, Celsius, error) {
	inlets, err := m.Inlets(powers)
	if err != nil {
		return 0, 0, err
	}
	idx, peak := 0, inlets[0]
	for i, t := range inlets[1:] {
		if t > peak {
			idx, peak = i+1, t
		}
	}
	return idx, peak, nil
}

// PowerOf estimates a server's power draw for an allocation using the
// model database (125 W-floored average power while hosting; idle draw
// for an empty server).
func PowerOf(db *model.DB, alloc model.Key, idle units.Watts) (units.Watts, error) {
	if alloc.IsZero() {
		return idle, nil
	}
	rec, err := db.Estimate(alloc)
	if err != nil {
		return 0, err
	}
	return rec.AvgPower(), nil
}

// Strategy decorates a base placement strategy with thermal awareness:
// the base decides which VMs go where; if the decision's predicted peak
// inlet exceeds the redline, Strategy greedily re-homes VMs onto the
// thermally coolest feasible servers (by predicted peak after
// placement), and rejects the job if no thermally safe placement exists.
type Strategy struct {
	Base  strategy.Strategy
	Model *Model
	DB    *model.DB
	// IdlePower is the draw assumed for empty servers (the paper's
	// 125 W, or 0 for power-gated fleets).
	IdlePower units.Watts
	// MaxVMsPerServer caps re-homed placements (defaults to 16).
	MaxVMsPerServer int
}

// Name identifies the decorated strategy.
func (s *Strategy) Name() string { return "THERM+" + s.Base.Name() }

// Place implements strategy.Strategy.
func (s *Strategy) Place(servers []strategy.Server, vms []core.VMRequest) ([]int, bool) {
	if s.Model == nil || s.DB == nil || len(servers) != s.Model.Servers() {
		return nil, false
	}
	assign, ok := s.Base.Place(servers, vms)
	if !ok {
		return nil, false
	}
	if safe, err := s.safe(servers, assign, vms); err == nil && safe {
		return assign, true
	}
	return s.coolest(servers, vms)
}

// safe predicts whether a committed assignment stays under the redline.
func (s *Strategy) safe(servers []strategy.Server, assign []int, vms []core.VMRequest) (bool, error) {
	allocs := s.allocsAfter(servers, assign, vms)
	powers, err := s.powers(allocs)
	if err != nil {
		return false, err
	}
	_, peak, err := s.Model.Peak(powers)
	if err != nil {
		return false, err
	}
	return peak <= s.Redline(), nil
}

// Redline returns the model redline.
func (s *Strategy) Redline() Celsius { return s.Model.Redline }

// coolest greedily places each VM on the server that minimizes the
// predicted peak inlet temperature, subject to the admission cap and the
// redline.
func (s *Strategy) coolest(servers []strategy.Server, vms []core.VMRequest) ([]int, bool) {
	cap := s.MaxVMsPerServer
	if cap <= 0 {
		cap = 16
	}
	allocs := make([]model.Key, len(servers))
	for i, sv := range servers {
		allocs[i] = sv.Alloc
	}
	assign := make([]int, len(vms))
	for v, vm := range vms {
		bestIdx := -1
		var bestPeak Celsius
		for i := range servers {
			if allocs[i].Total() >= cap {
				continue
			}
			trial := append([]model.Key(nil), allocs...)
			trial[i] = trial[i].Add(model.KeyFor(vm.Class, 1))
			powers, err := s.powers(trial)
			if err != nil {
				continue
			}
			_, peak, err := s.Model.Peak(powers)
			if err != nil {
				continue
			}
			if peak > s.Redline() {
				continue
			}
			if bestIdx < 0 || peak < bestPeak {
				bestIdx, bestPeak = i, peak
			}
		}
		if bestIdx < 0 {
			return nil, false
		}
		allocs[bestIdx] = allocs[bestIdx].Add(model.KeyFor(vm.Class, 1))
		assign[v] = servers[bestIdx].ID
	}
	return assign, true
}

func (s *Strategy) allocsAfter(servers []strategy.Server, assign []int, vms []core.VMRequest) []model.Key {
	byID := map[int]int{}
	for i, sv := range servers {
		byID[sv.ID] = i
	}
	allocs := make([]model.Key, len(servers))
	for i, sv := range servers {
		allocs[i] = sv.Alloc
	}
	for v, id := range assign {
		if i, ok := byID[id]; ok {
			allocs[i] = allocs[i].Add(model.KeyFor(vms[v].Class, 1))
		}
	}
	return allocs
}

func (s *Strategy) powers(allocs []model.Key) ([]units.Watts, error) {
	out := make([]units.Watts, len(allocs))
	for i, a := range allocs {
		p, err := PowerOf(s.DB, a, s.IdlePower)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

package thermal

import (
	"sync"
	"testing"

	"pacevm/internal/campaign"
	"pacevm/internal/core"
	"pacevm/internal/model"
	"pacevm/internal/strategy"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

var (
	dbOnce sync.Once
	testDB *model.DB
	dbErr  error
)

func sharedDB(t *testing.T) *model.DB {
	t.Helper()
	dbOnce.Do(func() {
		cfg := campaign.DefaultConfig()
		cfg.FullGridTotal = 12
		testDB, _, dbErr = campaign.Run(cfg)
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return testDB
}

func TestUniformModel(t *testing.T) {
	m, err := Uniform(3, 18, 30, 0.01, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Servers() != 3 {
		t.Errorf("servers = %d", m.Servers())
	}
	inlets, err := m.Inlets([]units.Watts{100, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Server 0 heats itself by 1°C, the others by 0.2°C.
	if inlets[0] != 19 || inlets[1] != 18.2 || inlets[2] != 18.2 {
		t.Errorf("inlets = %v", inlets)
	}
}

func TestUniformErrors(t *testing.T) {
	if _, err := Uniform(0, 18, 30, 0.01, 0.002); err == nil {
		t.Error("zero servers should fail")
	}
	if _, err := Uniform(2, 18, 30, -1, 0.002); err == nil {
		t.Error("negative coefficient should fail")
	}
}

func TestValidateRejects(t *testing.T) {
	m, _ := Uniform(2, 18, 30, 0.01, 0.002)
	m.Recirculation[1] = m.Recirculation[1][:1]
	if err := m.Validate(); err == nil {
		t.Error("ragged matrix should fail")
	}
	m, _ = Uniform(2, 18, 30, 0.01, 0.002)
	m.Redline = 10
	if err := m.Validate(); err == nil {
		t.Error("redline below supply should fail")
	}
	m = &Model{}
	if err := m.Validate(); err == nil {
		t.Error("empty model should fail")
	}
}

func TestPeak(t *testing.T) {
	m, _ := Uniform(3, 18, 30, 0.01, 0.001)
	idx, peak, err := m.Peak([]units.Watts{50, 200, 100})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Errorf("peak at %d, want the 200W server", idx)
	}
	if peak <= 18 {
		t.Errorf("peak %v not above supply", peak)
	}
	if _, _, err := m.Peak([]units.Watts{1}); err == nil {
		t.Error("wrong power vector length should fail")
	}
}

func TestPowerOf(t *testing.T) {
	db := sharedDB(t)
	idle, err := PowerOf(db, model.Key{}, 125)
	if err != nil || idle != 125 {
		t.Fatalf("idle power = %v, %v", idle, err)
	}
	busy, err := PowerOf(db, model.KeyFor(workload.ClassCPU, 2), 125)
	if err != nil {
		t.Fatal(err)
	}
	if busy <= 125 {
		t.Errorf("busy power %v not above idle", busy)
	}
}

func mkServers(n int) []strategy.Server {
	out := make([]strategy.Server, n)
	for i := range out {
		out[i] = strategy.Server{ID: i}
	}
	return out
}

func mkVMs(t *testing.T, n int) []core.VMRequest {
	t.Helper()
	ref := sharedDB(t).Aux().RefTime[workload.ClassCPU]
	out := make([]core.VMRequest, n)
	for i := range out {
		out[i] = core.VMRequest{ID: string(rune('a' + i)), Class: workload.ClassCPU, NominalTime: ref}
	}
	return out
}

func TestStrategyPassesThroughWhenCool(t *testing.T) {
	db := sharedDB(t)
	base, err := strategy.NewFirstFit(1)
	if err != nil {
		t.Fatal(err)
	}
	// Generous redline: base decision stands.
	m, _ := Uniform(4, 18, 60, 0.005, 0.001)
	s := &Strategy{Base: base, Model: m, DB: db}
	assign, ok := s.Place(mkServers(4), mkVMs(t, 2))
	if !ok {
		t.Fatal("placement failed")
	}
	if assign[0] != 0 || assign[1] != 0 {
		t.Errorf("cool decision should match first-fit: %v", assign)
	}
	if s.Name() != "THERM+FF" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestStrategySpreadsWhenHot(t *testing.T) {
	db := sharedDB(t)
	base, err := strategy.NewFirstFit(3)
	if err != nil {
		t.Fatal(err)
	}
	// Self-heating dominates: stacking on one server blows the redline,
	// spreading stays under it. Redline chosen so one busy server plus
	// idles is fine but a 4-stack is not.
	m, _ := Uniform(4, 18, 20.0, 0.01, 0.0005)
	s := &Strategy{Base: base, Model: m, DB: db, IdlePower: 0}
	assign, ok := s.Place(mkServers(4), mkVMs(t, 4))
	if !ok {
		t.Fatal("thermal placement failed")
	}
	used := map[int]int{}
	for _, a := range assign {
		used[a]++
	}
	if len(used) < 2 {
		t.Errorf("thermal strategy did not spread a hot placement: %v", assign)
	}
	// And the final configuration must respect the redline.
	allocs := make([]model.Key, 4)
	for _, a := range assign {
		allocs[a] = allocs[a].Add(model.KeyFor(workload.ClassCPU, 1))
	}
	powers := make([]units.Watts, 4)
	for i, al := range allocs {
		powers[i], err = PowerOf(db, al, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, peak, _ := m.Peak(powers); peak > m.Redline {
		t.Errorf("final peak %v above redline %v", peak, m.Redline)
	}
}

func TestStrategyRejectsWhenNothingIsSafe(t *testing.T) {
	db := sharedDB(t)
	base, err := strategy.NewFirstFit(1)
	if err != nil {
		t.Fatal(err)
	}
	// Impossible redline: even one busy server overheats.
	m, _ := Uniform(2, 18, 18.1, 0.01, 0.01)
	s := &Strategy{Base: base, Model: m, DB: db, IdlePower: 0}
	if _, ok := s.Place(mkServers(2), mkVMs(t, 1)); ok {
		t.Error("unsafe placement should be rejected")
	}
}

func TestStrategyServerCountMismatch(t *testing.T) {
	db := sharedDB(t)
	base, _ := strategy.NewFirstFit(1)
	m, _ := Uniform(3, 18, 30, 0.01, 0.001)
	s := &Strategy{Base: base, Model: m, DB: db}
	if _, ok := s.Place(mkServers(2), mkVMs(t, 1)); ok {
		t.Error("mismatched model/server count should be rejected")
	}
}

func TestCoolestPrefersThermallyFavoredServer(t *testing.T) {
	db := sharedDB(t)
	base, err := strategy.NewFirstFit(1)
	if err != nil {
		t.Fatal(err)
	}
	// Asymmetric room: server 0 sits in a hot spot (large self
	// coefficient), server 1 is well cooled. With a tight redline the
	// base FF choice (server 0) is unsafe and the re-homing must pick
	// server 1.
	m := &Model{
		Supply:  18,
		Redline: 19.0,
		Recirculation: [][]float64{
			{0.010, 0.0001},
			{0.0001, 0.003},
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	s := &Strategy{Base: base, Model: m, DB: db, IdlePower: 0}
	assign, ok := s.Place(mkServers(2), mkVMs(t, 1))
	if !ok {
		t.Fatal("placement failed")
	}
	if assign[0] != 1 {
		t.Errorf("placed on %d, want the cool server 1", assign[0])
	}
}

package hw

import (
	"math"
	"testing"
	"testing/quick"

	"pacevm/internal/subsys"
	"pacevm/internal/units"
)

func TestX3220Valid(t *testing.T) {
	s := X3220()
	if err := s.Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	if s.Capacity.Get(subsys.CPU) != 4 {
		t.Errorf("X3220 cores = %v, want 4", s.Capacity.Get(subsys.CPU))
	}
	if s.RAM != 4096 {
		t.Errorf("X3220 RAM = %v, want 4096", s.RAM)
	}
	if s.IdlePower != 125 {
		t.Errorf("X3220 idle power = %v, want the paper's 125 W", s.IdlePower)
	}
	if s.UsableRAM() != 3584 {
		t.Errorf("usable RAM = %v, want 3584", s.UsableRAM())
	}
}

func TestPowerIdleAndFull(t *testing.T) {
	s := X3220()
	if got := s.Power(subsys.Vector{}); got != s.IdlePower {
		t.Errorf("idle power = %v, want %v", got, s.IdlePower)
	}
	full := s.Power(subsys.V(1, 1, 1, 1))
	if math.Abs(float64(full-s.MaxPower())) > 1e-9 {
		t.Errorf("full power = %v, want %v", full, s.MaxPower())
	}
	if full < 250 || full > 300 {
		t.Errorf("full power = %v, want an X3220-era 1U figure (250-300 W)", full)
	}
}

func TestPowerMonotone(t *testing.T) {
	s := X3220()
	prev := units.Watts(0)
	for u := 0.0; u <= 1.0; u += 0.05 {
		p := s.Power(subsys.V(u, u, u, u))
		if p < prev {
			t.Fatalf("power not monotone at u=%v: %v < %v", u, p, prev)
		}
		prev = p
	}
}

func TestPowerClampsUtilization(t *testing.T) {
	s := X3220()
	over := s.Power(subsys.V(5, 5, 5, 5))
	if math.Abs(float64(over-s.MaxPower())) > 1e-9 {
		t.Errorf("over-demand power = %v, want clamped %v", over, s.MaxPower())
	}
	under := s.Power(subsys.V(-1, -1, -1, -1))
	if under != s.IdlePower {
		t.Errorf("negative-demand power = %v, want %v", under, s.IdlePower)
	}
}

func TestPowerBoundsProperty(t *testing.T) {
	s := X3220()
	f := func(a, b, c, d float64) bool {
		fix := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(x, 3)
		}
		p := s.Power(subsys.V(fix(a), fix(b), fix(c), fix(d)))
		return p >= s.IdlePower && p <= s.MaxPower()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUtilization(t *testing.T) {
	s := X3220()
	u := s.Utilization(subsys.V(2, 2500, 320, 1000))
	want := subsys.V(0.5, 0.5, 1, 0.5)
	for i := range u {
		if math.Abs(u[i]-want[i]) > 1e-9 {
			t.Errorf("utilization = %v, want %v", u, want)
			break
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	base := X3220()
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"zero capacity", func(s *Spec) { s.Capacity = subsys.Vector{} }},
		{"zero cpu", func(s *Spec) { s.Capacity[subsys.CPU] = 0 }},
		{"negative capacity", func(s *Spec) { s.Capacity[subsys.NET] = -1 }},
		{"zero RAM", func(s *Spec) { s.RAM = 0 }},
		{"reserved exceeds RAM", func(s *Spec) { s.RAMReserved = 8192 }},
		{"negative idle", func(s *Spec) { s.IdlePower = -1 }},
		{"negative dynamic", func(s *Spec) { s.DynamicPower[subsys.MEM] = -5 }},
		{"zero MaxVMs", func(s *Spec) { s.MaxVMs = 0 }},
	}
	for _, c := range cases {
		s := base
		c.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad spec", c.name)
		}
	}
}

func TestPowerExponentDefaultsToLinear(t *testing.T) {
	s := X3220()
	s.PowerExponent = [subsys.Count]float64{} // all zero
	half := s.Power(subsys.V(0.5, 0, 0, 0))
	want := s.IdlePower + s.DynamicPower[subsys.CPU]/2
	if math.Abs(float64(half-want)) > 1e-9 {
		t.Errorf("power with zero exponent = %v, want linear %v", half, want)
	}
}

// Package hw models the physical server the paper benchmarks on: a Dell
// rack server with one quad-core Intel Xeon X3220, 4 GB of memory, two
// hard disks and two 1 Gb Ethernet interfaces, "intended to represent a
// general-purpose rack server configuration, widely used in virtualized
// datacenters" (Sect. III.B).
//
// A Spec carries the per-subsystem capacities the hypervisor simulator
// shares among co-located VMs and the wall-plug power model the emulated
// power meter samples. Capacities are expressed in natural units per
// subsystem (CPU cores, MiB/s of memory bandwidth, MiB/s of disk
// bandwidth, Mb/s of network bandwidth); demand vectors use the same
// units, so utilization is demand/capacity per subsystem.
package hw

import (
	"errors"
	"fmt"
	"math"

	"pacevm/internal/subsys"
	"pacevm/internal/units"
)

// Spec describes one physical server model.
type Spec struct {
	// Name labels the hardware class (used by the heterogeneity
	// extension; the paper itself uses a single class).
	Name string

	// Capacity is the per-subsystem capacity vector:
	// CPU in cores, MEM in MiB/s of memory bandwidth, DISK in MiB/s,
	// NET in Mb/s.
	Capacity subsys.Vector

	// RAM is total physical memory; RAMReserved is the slice held back
	// for the hypervisor and dom0. UsableRAM is the difference.
	RAM         units.MiB
	RAMReserved units.MiB

	// IdlePower is drawn whenever the server is powered on, regardless
	// of load. The paper assumes a fixed 125 W for an active server in
	// its datacenter simulations (Sect. IV.A).
	IdlePower units.Watts

	// DynamicPower is the additional power each subsystem draws at 100 %
	// utilization. Total dynamic draw is the sum over subsystems of
	// DynamicPower[s] * util[s]^PowerExponent[s].
	DynamicPower [subsys.Count]units.Watts

	// PowerExponent shapes each subsystem's power curve; 1 is linear,
	// >1 is convex (higher utilizations disproportionately expensive).
	PowerExponent [subsys.Count]float64

	// MaxVMs bounds how many VMs the hypervisor will admit at all. The
	// paper's base tests go up to 16 VMs per server.
	MaxVMs int
}

// X3220 returns the reproduction's default server spec, mirroring the
// paper's testbed. The dynamic power budget puts the server at ~270 W
// fully loaded over the 125 W idle floor, consistent with measured
// X3220-era 1U servers.
func X3220() Spec {
	return Spec{
		Name: "dell-x3220",
		Capacity: subsys.V(
			4,    // 4 cores
			5000, // MiB/s memory bandwidth (FSB-era)
			160,  // MiB/s across two HDDs
			2000, // Mb/s across two 1GbE NICs
		),
		RAM:         4096,
		RAMReserved: 512,
		IdlePower:   125,
		DynamicPower: [subsys.Count]units.Watts{
			subsys.CPU:  105,
			subsys.MEM:  24,
			subsys.DISK: 16,
			subsys.NET:  9,
		},
		PowerExponent: [subsys.Count]float64{
			subsys.CPU:  1.15,
			subsys.MEM:  1,
			subsys.DISK: 1,
			subsys.NET:  1,
		},
		MaxVMs: 16,
	}
}

// DualX5470 returns a second, beefier server class for the
// heterogeneity extension (the paper's future work ii): a dual-socket
// quad-core machine with twice the cores, memory, spindles and NICs of
// the X3220 testbed, and a correspondingly higher power envelope.
func DualX5470() Spec {
	return Spec{
		Name: "dell-2xx5470",
		Capacity: subsys.V(
			8,     // 2 × 4 cores
			10000, // MiB/s memory bandwidth
			320,   // MiB/s across four HDDs
			4000,  // Mb/s across four 1GbE NICs
		),
		RAM:         8192,
		RAMReserved: 512,
		IdlePower:   210,
		DynamicPower: [subsys.Count]units.Watts{
			subsys.CPU:  190,
			subsys.MEM:  40,
			subsys.DISK: 28,
			subsys.NET:  16,
		},
		PowerExponent: [subsys.Count]float64{
			subsys.CPU:  1.15,
			subsys.MEM:  1,
			subsys.DISK: 1,
			subsys.NET:  1,
		},
		MaxVMs: 16,
	}
}

// UsableRAM is the memory available to guests.
func (s Spec) UsableRAM() units.MiB { return s.RAM - s.RAMReserved }

// MaxPower is the wall power at 100 % utilization of every subsystem.
func (s Spec) MaxPower() units.Watts {
	p := s.IdlePower
	for _, d := range s.DynamicPower {
		p += d
	}
	return p
}

// Power returns wall power for a powered-on server at the given
// per-subsystem utilization (each component clamped into [0,1]).
func (s Spec) Power(util subsys.Vector) units.Watts {
	util = util.Clamp01()
	p := s.IdlePower
	for i := range subsys.All {
		exp := s.PowerExponent[i]
		if exp <= 0 {
			exp = 1
		}
		p += units.Watts(float64(s.DynamicPower[i]) * math.Pow(util[i], exp))
	}
	return p
}

// Utilization converts an aggregate demand vector into per-subsystem
// utilization fractions in [0,1] (demand beyond capacity saturates at 1).
func (s Spec) Utilization(demand subsys.Vector) subsys.Vector {
	return demand.Div(s.Capacity).Clamp01()
}

// Validate checks the spec for internal consistency.
func (s Spec) Validate() error {
	if !s.Capacity.NonNegative() || s.Capacity.IsZero() {
		return fmt.Errorf("hw: spec %q has invalid capacity %v", s.Name, s.Capacity)
	}
	for _, id := range subsys.All {
		if s.Capacity.Get(id) <= 0 {
			return fmt.Errorf("hw: spec %q has zero %v capacity", s.Name, id)
		}
	}
	if s.RAM <= 0 || s.RAMReserved < 0 || s.UsableRAM() <= 0 {
		return fmt.Errorf("hw: spec %q has invalid RAM %v (reserved %v)", s.Name, s.RAM, s.RAMReserved)
	}
	if s.IdlePower < 0 {
		return fmt.Errorf("hw: spec %q has negative idle power", s.Name)
	}
	for i, d := range s.DynamicPower {
		if d < 0 {
			return fmt.Errorf("hw: spec %q has negative dynamic power for %v", s.Name, subsys.All[i])
		}
	}
	if s.MaxVMs <= 0 {
		return errors.New("hw: MaxVMs must be positive")
	}
	return nil
}

package profiler

import (
	"testing"

	"pacevm/internal/subsys"
	"pacevm/internal/units"
	"pacevm/internal/vmm"
	"pacevm/internal/workload"
)

func profileOf(t *testing.T, b workload.Benchmark) Profile {
	t.Helper()
	p, err := Run(DefaultConfig(), vmm.DefaultConfig(), b)
	if err != nil {
		t.Fatalf("%s: %v", b.Name, err)
	}
	return p
}

// TestCatalogClassification is the paper's Sect. III.A ground truth: the
// profiler must recover each benchmark's published class from observed
// behaviour alone.
func TestCatalogClassification(t *testing.T) {
	for _, b := range workload.All() {
		p := profileOf(t, b)
		if p.Class != b.Class {
			t.Errorf("%s classified as %v, want %v (avg=%v)", b.Name, p.Class, b.Class, p.Avg)
		}
	}
}

func TestHPLIsCPUOnly(t *testing.T) {
	p := profileOf(t, workload.HPL())
	want := [subsys.Count]bool{subsys.CPU: true}
	if p.Intensive != want {
		t.Errorf("HPL labels = %v, want cpu-intensive only", p.Labels())
	}
}

func TestMPINetIsCPUAndNet(t *testing.T) {
	// Fig. 1 (right): "a CPU- cum network-intensive workload".
	p := profileOf(t, workload.MPINet())
	if !p.Intensive[subsys.CPU] || !p.Intensive[subsys.NET] {
		t.Errorf("mpinet labels = %v, want cpu- and net-intensive (avg=%v)", p.Labels(), p.Avg)
	}
	if p.Intensive[subsys.DISK] {
		t.Errorf("mpinet should not be disk-intensive: %v", p.Labels())
	}
}

func TestSysbenchIsMemOnly(t *testing.T) {
	p := profileOf(t, workload.Sysbench())
	if !p.Intensive[subsys.MEM] {
		t.Errorf("sysbench labels = %v, want mem-intensive", p.Labels())
	}
	if p.Intensive[subsys.CPU] || p.Intensive[subsys.DISK] {
		t.Errorf("sysbench over-labeled: %v (avg=%v)", p.Labels(), p.Avg)
	}
}

func TestBonnieIsIO(t *testing.T) {
	p := profileOf(t, workload.Bonnie())
	if !p.Intensive[subsys.DISK] {
		t.Errorf("bonnie labels = %v, want disk-intensive", p.Labels())
	}
}

func TestSeriesCoversRun(t *testing.T) {
	p := profileOf(t, workload.FFTW())
	if len(p.Series) == 0 {
		t.Fatal("empty series")
	}
	cfg := DefaultConfig()
	for i, pt := range p.Series {
		if pt.At != units.Seconds(i)*cfg.SampleEvery {
			t.Fatalf("sample %d at %v, want %v", i, pt.At, units.Seconds(i)*cfg.SampleEvery)
		}
		if !pt.Intensity.NonNegative() {
			t.Fatalf("negative intensity at %v: %v", pt.At, pt.Intensity)
		}
	}
	// FFTW solo: ~612s of run → ~123 windows of 5s.
	if len(p.Series) < 100 || len(p.Series) > 140 {
		t.Errorf("series length = %d, want ~123", len(p.Series))
	}
}

func TestSeriesShowsPhaseStructure(t *testing.T) {
	// FFTW's plan phase has low CPU, the transform phase higher CPU:
	// early samples must differ from mid-run samples (the "discrete time
	// windows" of Sect. III.A).
	p := profileOf(t, workload.FFTW())
	early := p.Series[2].Intensity[subsys.CPU] // in plan phase
	mid := p.Series[60].Intensity[subsys.CPU]  // in transform phase
	if mid <= early {
		t.Errorf("expected transform CPU (%v) > plan CPU (%v)", mid, early)
	}
}

func TestClassifyPriority(t *testing.T) {
	mk := func(ids ...subsys.ID) (v [subsys.Count]bool) {
		for _, id := range ids {
			v[id] = true
		}
		return
	}
	cases := []struct {
		in   [subsys.Count]bool
		want workload.Class
	}{
		{mk(subsys.CPU), workload.ClassCPU},
		{mk(subsys.MEM), workload.ClassMEM},
		{mk(subsys.DISK), workload.ClassIO},
		{mk(subsys.NET), workload.ClassCPU},
		{mk(subsys.CPU, subsys.MEM), workload.ClassMEM},
		{mk(subsys.CPU, subsys.DISK, subsys.MEM), workload.ClassIO},
		{mk(), workload.ClassCPU},
	}
	for _, c := range cases {
		if got := Classify(c.in); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestLabels(t *testing.T) {
	p := Profile{Intensive: [subsys.Count]bool{subsys.CPU: true, subsys.NET: true}}
	got := p.Labels()
	if len(got) != 2 || got[0] != "cpu-intensive" || got[1] != "net-intensive" {
		t.Errorf("Labels = %v", got)
	}
}

func TestBadConfig(t *testing.T) {
	v := vmm.DefaultConfig()
	b := workload.HPL()
	if _, err := Run(Config{SampleEvery: 0, Reference: subsys.V(1, 1, 1, 1)}, v, b); err == nil {
		t.Error("zero sampling window should fail")
	}
	if _, err := Run(Config{SampleEvery: 1}, v, b); err == nil {
		t.Error("zero reference should fail")
	}
	bad := b
	bad.Phases = nil
	if _, err := Run(DefaultConfig(), v, bad); err == nil {
		t.Error("invalid benchmark should fail")
	}
}

func TestAvgMatchesDemandRoughly(t *testing.T) {
	// The profiler's average intensity should track the catalog's
	// declared average demand (normalized), modulo overhead stretching.
	cfg := DefaultConfig()
	p := profileOf(t, workload.Bonnie())
	declared := workload.Bonnie().AvgDemand()
	wantDisk := declared[subsys.DISK] / cfg.Reference[subsys.DISK]
	if !units.NearlyEqual(p.Avg[subsys.DISK], wantDisk, 0.1) {
		t.Errorf("observed disk intensity %v vs declared %v", p.Avg[subsys.DISK], wantDisk)
	}
}

// Package profiler emulates the paper's application-profiling toolchain
// (Sect. III.A): OS-level metric collection ("mpstat", "iostat",
// "netstat", PowerTOP) plus hardware performance counters (a perfctr-
// patched kernel read through PAPI, using L2 cache misses as a memory-
// activity proxy), and the classification of an application as CPU-,
// memory-, I/O- and/or network-intensive from its average subsystem
// demand.
//
// The profiler runs a benchmark solo on the simulated server, samples the
// realized utilization timeline in discrete windows (the paper's Fig. 1),
// and labels the application X-intensive for every subsystem whose
// time-averaged intensity exceeds a threshold — "if the average demand
// for a subsystem X is significant, we consider the application to be
// X-intensive".
package profiler

import (
	"fmt"

	"pacevm/internal/subsys"
	"pacevm/internal/units"
	"pacevm/internal/vmm"
	"pacevm/internal/workload"
)

// Config holds sampling and classification parameters.
type Config struct {
	// SampleEvery is the metric sampling window (mpstat/iostat cadence).
	SampleEvery units.Seconds

	// Reference normalizes raw per-VM demand into an intensity in [0,~1]
	// per subsystem. CPU is referenced to one core (a pinned single
	// vCPU), the streaming subsystems to the share of server bandwidth a
	// single well-behaved guest can realistically draw.
	Reference subsys.Vector

	// Threshold is the per-subsystem intensity above which the
	// application is labeled intensive for that subsystem.
	Threshold subsys.Vector
}

// DefaultConfig returns the calibrated profiling configuration. With it,
// every catalog benchmark classifies as the paper describes: HPL and FFTW
// CPU-intensive, sysbench memory-intensive, bonnie++ and b_eff_io
// I/O-intensive, and mpinet CPU- cum network-intensive.
func DefaultConfig() Config {
	return Config{
		SampleEvery: 5,
		Reference:   subsys.V(1, 1250, 40, 500),
		Threshold:   subsys.V(0.35, 0.50, 0.30, 0.30),
	}
}

// Point is one sampled profiling window.
type Point struct {
	At units.Seconds
	// Intensity is the normalized per-subsystem activity in the window
	// (CPU ≈ fraction of one core busy; others ≈ fraction of a
	// single-guest bandwidth reference).
	Intensity subsys.Vector
}

// Profile is the result of profiling one application.
type Profile struct {
	Benchmark string
	// Series is the Fig.-1-style time series of normalized intensities.
	Series []Point
	// Avg is the run-length-weighted mean intensity.
	Avg subsys.Vector
	// Intensive flags each subsystem whose Avg exceeds the threshold.
	Intensive [subsys.Count]bool
	// Class is the model class the labels map onto (see Classify).
	Class workload.Class
}

// Labels returns the human-readable intensity labels, e.g.
// ["cpu-intensive", "net-intensive"].
func (p Profile) Labels() []string {
	var out []string
	for i, on := range p.Intensive {
		if on {
			out = append(out, subsys.All[i].String()+"-intensive")
		}
	}
	return out
}

// Run profiles a benchmark by executing it solo on the given hypervisor
// configuration and sampling its realized utilization.
func Run(cfg Config, vcfg vmm.Config, b workload.Benchmark) (Profile, error) {
	if cfg.SampleEvery <= 0 {
		return Profile{}, fmt.Errorf("profiler: non-positive sampling window")
	}
	if !cfg.Reference.NonNegative() || cfg.Reference.IsZero() {
		return Profile{}, fmt.Errorf("profiler: invalid reference vector %v", cfg.Reference)
	}
	res, err := vmm.Run(vcfg, []workload.Benchmark{b})
	if err != nil {
		return Profile{}, fmt.Errorf("profiler: %w", err)
	}

	p := Profile{Benchmark: b.Name}
	end := res.Makespan()

	// Sample normalized intensity in windows of SampleEvery.
	idx := 0
	var accum subsys.Vector
	var accumDur units.Seconds
	for start := units.Seconds(0); start < end; start += cfg.SampleEvery {
		winEnd := start + cfg.SampleEvery
		if winEnd > end {
			winEnd = end
		}
		var winDemand subsys.Vector
		for idx < len(res.Timeline) && res.Timeline[idx].End <= start {
			idx++
		}
		for j := idx; j < len(res.Timeline) && res.Timeline[j].Start < winEnd; j++ {
			lo, hi := res.Timeline[j].Start, res.Timeline[j].End
			if lo < start {
				lo = start
			}
			if hi > winEnd {
				hi = winEnd
			}
			if hi > lo {
				// Convert realized utilization back to demand units, then
				// normalize per-VM: solo run, so server demand is the
				// VM's demand.
				demand := vectorMul(res.Timeline[j].Util, vcfg.Spec.Capacity)
				winDemand = winDemand.Add(demand.Scale(float64(hi - lo)))
			}
		}
		dur := winEnd - start
		if dur <= 0 {
			continue
		}
		intensity := vectorDiv(winDemand.Scale(1/float64(dur)), cfg.Reference)
		p.Series = append(p.Series, Point{At: start, Intensity: intensity})
		accum = accum.Add(intensity.Scale(float64(dur)))
		accumDur += dur
	}
	if accumDur > 0 {
		p.Avg = accum.Scale(1 / float64(accumDur))
	}
	for i := range subsys.All {
		p.Intensive[i] = p.Avg[i] >= cfg.Threshold[i]
	}
	p.Class = Classify(p.Intensive)
	return p, nil
}

// Classify maps intensity labels onto the paper's three model classes
// (the database key dimensions Ncpu/Nmem/Nio). Disk activity dominates
// the mapping (an MPI-I/O code with a network component is still
// I/O-intensive for the model), then memory, then CPU; an application
// intensive along no dimension defaults to CPU-bound, the benign case.
func Classify(intensive [subsys.Count]bool) workload.Class {
	switch {
	case intensive[subsys.DISK]:
		return workload.ClassIO
	case intensive[subsys.MEM]:
		return workload.ClassMEM
	default:
		return workload.ClassCPU
	}
}

func vectorMul(a, b subsys.Vector) subsys.Vector {
	for i := range a {
		a[i] *= b[i]
	}
	return a
}

func vectorDiv(a, b subsys.Vector) subsys.Vector {
	for i := range a {
		if b[i] != 0 {
			a[i] /= b[i]
		} else {
			a[i] = 0
		}
	}
	return a
}

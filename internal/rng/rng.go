// Package rng provides deterministic, seedable pseudo-random number
// generation for the PACE-VM simulators.
//
// Every stochastic element of the reproduction — trace arrivals, runtime
// draws, profile assignment bursts, power-meter noise — draws from an
// explicitly named Stream derived from a master seed, so a whole
// experiment is reproducible from a single integer and independent
// components do not perturb each other's draws when the code evolves
// (adding a draw to the meter does not reshuffle the trace).
//
// The generator is xoshiro256**, seeded through splitmix64, the standard
// construction recommended by its authors. Both are implemented here
// because the repository is stdlib-only and math/rand/v2's generators do
// not expose named substream derivation.
package rng

import (
	"hash/fnv"
	"math"
)

// splitmix64 advances a 64-bit state and returns the next output. It is
// used to expand seeds into full generator states.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is a deterministic random stream (xoshiro256**). The zero value
// is not usable; construct streams with New or Source.Stream.
type Stream struct {
	s [4]uint64
}

// New returns a Stream seeded from seed.
func New(seed uint64) *Stream {
	st := &Stream{}
	sm := seed
	for i := range st.s {
		st.s[i] = splitmix64(&sm)
	}
	// xoshiro256** must not be seeded with the all-zero state; splitmix64
	// cannot produce four consecutive zeros, but guard anyway.
	if st.s == [4]uint64{} {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return st
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0,1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be overkill
	// here; modulo bias is negligible for the small n the simulators use,
	// but reject to keep draws exactly uniform regardless.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// IntBetween returns a uniform int in [lo,hi] inclusive. It panics if
// hi < lo.
func (r *Stream) IntBetween(lo, hi int) int {
	if hi < lo {
		panic("rng: IntBetween with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Uniform returns a uniform float64 in [lo,hi).
func (r *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed float64 with the given mean.
// It panics if mean <= 0.
func (r *Stream) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp with non-positive mean")
	}
	// Use 1-Float64() so the argument of Log is in (0,1].
	return -mean * math.Log(1-r.Float64())
}

// Norm returns a normally distributed float64 with the given mean and
// standard deviation, via the polar Box–Muller transform.
func (r *Stream) Norm(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNormal returns a log-normally distributed float64 where the
// underlying normal has parameters mu and sigma. Parallel-workload
// runtimes are classically heavy-tailed and well fitted by lognormals.
func (r *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Pareto returns a Pareto(xm, alpha) draw: xm * U^(-1/alpha). Used for
// the occasional extremely long grid job in synthetic traces.
func (r *Stream) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("rng: Pareto requires positive parameters")
	}
	return xm * math.Pow(1-r.Float64(), -1/alpha)
}

// Bool returns true with probability p.
func (r *Stream) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a uniform random permutation of [0,n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Source derives independent named Streams from a master seed. Stream
// identity depends only on (seed, name), never on derivation order.
type Source struct {
	seed uint64
}

// NewSource returns a Source with the given master seed.
func NewSource(seed uint64) *Source { return &Source{seed: seed} }

// Stream returns the stream uniquely identified by name under this
// source's master seed. Calling it twice with the same name returns
// streams with identical future output.
func (s *Source) Stream(name string) *Stream {
	h := fnv.New64a()
	// Writes to an FNV hash never fail.
	_, _ = h.Write([]byte(name))
	return New(s.seed ^ h.Sum64() ^ 0xA5A5A5A5A5A5A5A5)
}

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different seeds matched %d/100 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(3)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	for v, c := range counts {
		if math.Abs(float64(c)-draws/n) > 0.1*draws/n {
			t.Errorf("Intn(%d): value %d drawn %d times, want ~%d", n, v, c, draws/n)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntBetween(t *testing.T) {
	r := New(5)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.IntBetween(1, 5)
		if v < 1 || v > 5 {
			t.Fatalf("IntBetween(1,5) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("IntBetween(1,5) covered %d values, want 5", len(seen))
	}
	if got := r.IntBetween(3, 3); got != 3 {
		t.Errorf("IntBetween(3,3) = %d", got)
	}
}

func TestIntBetweenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntBetween(5,1) should panic")
		}
	}()
	New(1).IntBetween(5, 1)
}

func TestExpMean(t *testing.T) {
	r := New(13)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(50)
		if v < 0 {
			t.Fatalf("Exp draw negative: %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-50) > 1 {
		t.Errorf("Exp(50) mean = %v", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(17)
	sum, sumsq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Norm(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Norm mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Errorf("Norm stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(5, 1.5); v <= 0 {
			t.Fatalf("LogNormal draw non-positive: %v", v)
		}
	}
}

func TestParetoTail(t *testing.T) {
	r := New(23)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(10, 2); v < 10 {
			t.Fatalf("Pareto(10,2) below xm: %v", v)
		}
	}
}

func TestParetoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pareto(0,1) should panic")
		}
	}()
	New(1).Pareto(0, 1)
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) should panic")
		}
	}()
	New(1).Exp(0)
}

func TestBoolProbability(t *testing.T) {
	r := New(29)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if math.Abs(float64(hits)/n-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate = %v", float64(hits)/n)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSourceNamedStreamsIndependent(t *testing.T) {
	src := NewSource(99)
	a1 := src.Stream("arrivals")
	a2 := src.Stream("arrivals")
	b := src.Stream("meter")
	for i := 0; i < 100; i++ {
		va := a1.Uint64()
		if va != a2.Uint64() {
			t.Fatal("same-named streams diverged")
		}
	}
	// Independence: different name should give a different sequence.
	a3 := src.Stream("arrivals")
	diff := false
	for i := 0; i < 10; i++ {
		if a3.Uint64() != b.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("differently named streams produced identical output")
	}
}

func TestSourceSeedChangesStreams(t *testing.T) {
	s1 := NewSource(1).Stream("x")
	s2 := NewSource(2).Stream("x")
	if s1.Uint64() == s2.Uint64() && s1.Uint64() == s2.Uint64() {
		t.Error("streams under different master seeds look identical")
	}
}

package workload

import (
	"math"
	"testing"

	"pacevm/internal/hw"
	"pacevm/internal/subsys"
	"pacevm/internal/units"
)

func TestCatalogValid(t *testing.T) {
	for _, b := range All() {
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestCatalogNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range All() {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark name %q", b.Name)
		}
		seen[b.Name] = true
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("fftw")
	if err != nil || b.Name != "fftw" {
		t.Fatalf("ByName(fftw) = %v, %v", b.Name, err)
	}
	if _, err := ByName("no-such"); err == nil {
		t.Fatal("ByName should fail for unknown benchmark")
	}
}

func TestRepresentatives(t *testing.T) {
	for _, c := range Classes {
		b := Representative(c)
		if b.Class != c {
			t.Errorf("Representative(%v) has class %v", c, b.Class)
		}
	}
}

func TestRepresentativePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Representative(99) should panic")
		}
	}()
	Representative(Class(99))
}

func TestClassString(t *testing.T) {
	cases := []struct {
		c    Class
		want string
	}{{ClassCPU, "cpu"}, {ClassMEM, "mem"}, {ClassIO, "io"}, {Class(7), "class(7)"}}
	for _, c := range cases {
		if got := c.c.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int(c.c), got, c.want)
		}
	}
}

func TestSoloTime(t *testing.T) {
	for _, b := range []Benchmark{HPL(), FFTW(), Sysbench(), Bonnie()} {
		if got := b.SoloTime(); got != 600 {
			t.Errorf("%s solo time = %v, want 600s (common reference length)", b.Name, got)
		}
	}
}

func TestAvgDemandWeighted(t *testing.T) {
	b := Benchmark{
		Name: "x", Class: ClassCPU, Footprint: 1,
		Phases: []Phase{
			{Name: "a", Dur: 100, Demand: subsys.V(1, 0, 0, 0)},
			{Name: "b", Dur: 300, Demand: subsys.V(0, 1, 0, 0)},
		},
	}
	avg := b.AvgDemand()
	if math.Abs(avg[subsys.CPU]-0.25) > 1e-9 || math.Abs(avg[subsys.MEM]-0.75) > 1e-9 {
		t.Errorf("AvgDemand = %v", avg)
	}
}

func TestAvgDemandEmpty(t *testing.T) {
	var b Benchmark
	if got := b.AvgDemand(); !got.IsZero() {
		t.Errorf("empty benchmark AvgDemand = %v, want zero", got)
	}
}

func TestPeakDemand(t *testing.T) {
	b := FFTW()
	peak := b.PeakDemand()
	if peak[subsys.CPU] != 0.45 || peak[subsys.MEM] != 520 {
		t.Errorf("FFTW peak = %v", peak)
	}
}

func TestScaled(t *testing.T) {
	b := HPL()
	s := b.Scaled(2)
	if got, want := s.SoloTime(), 2*b.SoloTime(); got != want {
		t.Errorf("scaled solo time = %v, want %v", got, want)
	}
	if s.Footprint != b.Footprint {
		t.Error("Scaled changed footprint")
	}
	// Original must be untouched (no aliasing).
	if b.SoloTime() != 600 {
		t.Error("Scaled mutated the original")
	}
}

func TestScaledPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scaled(0) should panic")
		}
	}()
	HPL().Scaled(0)
}

func TestValidateRejects(t *testing.T) {
	ok := HPL()
	cases := []struct {
		name   string
		mutate func(*Benchmark)
	}{
		{"empty name", func(b *Benchmark) { b.Name = "" }},
		{"bad class", func(b *Benchmark) { b.Class = Class(9) }},
		{"zero footprint", func(b *Benchmark) { b.Footprint = 0 }},
		{"no phases", func(b *Benchmark) { b.Phases = nil }},
		{"zero duration phase", func(b *Benchmark) { b.Phases[0].Dur = 0 }},
		{"negative demand", func(b *Benchmark) { b.Phases[0].Demand[0] = -1 }},
		{"all-zero demand", func(b *Benchmark) { b.Phases[0].Demand = subsys.Vector{} }},
	}
	for _, c := range cases {
		b := ok
		b.Phases = append([]Phase(nil), ok.Phases...)
		c.mutate(&b)
		if err := b.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad benchmark", c.name)
		}
	}
}

// TestCalibrationSaturationPoints pins the co-location saturation points
// the catalog is calibrated for (DESIGN.md §4): these drive the paper's
// base-test optima (Fig. 2, Table I).
func TestCalibrationSaturationPoints(t *testing.T) {
	spec := hw.X3220()
	sat := func(b Benchmark, id subsys.ID, phase string) float64 {
		for _, p := range b.Phases {
			if p.Name == phase {
				return spec.Capacity.Get(id) / p.Demand.Get(id)
			}
		}
		t.Fatalf("%s has no phase %q", b.Name, phase)
		return 0
	}
	cases := []struct {
		b        Benchmark
		id       subsys.ID
		phase    string
		lo, hi   float64
		whatever string
	}{
		{FFTW(), subsys.CPU, "transform", 8.5, 9.5, "paper optimum 9 VMs"},
		{HPL(), subsys.CPU, "factorize", 4.0, 4.6, "CPU-bound, ~4 VMs"},
		{Sysbench(), subsys.MEM, "oltp", 2.8, 3.6, "memory-bandwidth bound"},
		{Bonnie(), subsys.DISK, "readwrite", 2.3, 3.1, "disk bound"},
	}
	for _, c := range cases {
		got := sat(c.b, c.id, c.phase)
		if got < c.lo || got > c.hi {
			t.Errorf("%s %v saturation at %.2f VMs, want [%.1f,%.1f] (%s)",
				c.b.Name, c.id, got, c.lo, c.hi, c.whatever)
		}
	}
}

// TestCalibrationRAMKnees pins where memory overcommit begins: FFTW must
// fit 11 co-located VMs but not 12 (the paper's ">11 increases
// significantly" knee).
func TestCalibrationRAMKnees(t *testing.T) {
	usable := hw.X3220().UsableRAM()
	fftw := FFTW()
	if units.MiB(11)*fftw.Footprint > usable {
		t.Errorf("11 FFTW VMs (%v) should fit in %v", units.MiB(11)*fftw.Footprint, usable)
	}
	if units.MiB(12)*fftw.Footprint <= usable {
		t.Errorf("12 FFTW VMs (%v) should overcommit %v", units.MiB(12)*fftw.Footprint, usable)
	}
}

func TestMPINetIsNetworkHeavy(t *testing.T) {
	b := MPINet()
	avg := b.AvgDemand()
	spec := hw.X3220()
	netUtil := avg[subsys.NET] / spec.Capacity[subsys.NET]
	cpuUtil := avg[subsys.CPU] / spec.Capacity[subsys.CPU]
	if netUtil < 0.05 {
		t.Errorf("mpinet avg net util = %v, want clearly network-active", netUtil)
	}
	if cpuUtil < 0.1 {
		t.Errorf("mpinet avg cpu util = %v, want clearly CPU-active", cpuUtil)
	}
}

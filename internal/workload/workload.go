// Package workload defines the synthetic HPC benchmark suite standing in
// for the binaries the paper profiles (Sect. III.A): HPL Linpack and FFTW
// (CPU-intensive), sysbench (memory-intensive), b_eff_io and bonnie++
// (I/O-intensive), plus an MPI-style compute/communicate workload that is
// CPU- cum network-intensive (the right panel of Fig. 1).
//
// A Benchmark is a sequence of phases; each phase demands resources from
// one or more subsystems for a solo duration. "An application usually
// demands the services of a given subsystem in discrete time windows"
// (Sect. III.A) — phases are those windows. The hypervisor simulator
// (internal/vmm) stretches phases under contention; the profiler
// classifies benchmarks from their realized subsystem utilization.
//
// Demand units match hw.Spec capacities: CPU in cores, MEM in MiB/s of
// memory traffic, DISK in MiB/s, NET in Mb/s.
package workload

import (
	"fmt"

	"pacevm/internal/subsys"
	"pacevm/internal/units"
)

// Class is the paper's three-way application profile used as the model
// database key dimension: CPU-, memory-, or I/O-intensive (Table II keys
// Ncpu, Nmem, Nio).
type Class int

// The model classes, in the paper's canonical (Ncpu, Nmem, Nio) order.
const (
	ClassCPU Class = iota
	ClassMEM
	ClassIO
	classCount
)

// NumClasses is the number of model classes.
const NumClasses = int(classCount)

// Classes lists the model classes in canonical order.
var Classes = [NumClasses]Class{ClassCPU, ClassMEM, ClassIO}

func (c Class) String() string {
	switch c {
	case ClassCPU:
		return "cpu"
	case ClassMEM:
		return "mem"
	case ClassIO:
		return "io"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Valid reports whether c is one of the three model classes.
func (c Class) Valid() bool { return c >= 0 && c < classCount }

// Phase is one demand window of a benchmark.
type Phase struct {
	// Name labels the phase in profiling output ("init", "compute", ...).
	Name string
	// Dur is how long the phase runs when the VM has the whole server to
	// itself (solo). Under contention the hypervisor stretches it.
	Dur units.Seconds
	// Demand is the resource draw during the phase, per VM.
	Demand subsys.Vector
}

// Benchmark is a synthetic HPC workload.
type Benchmark struct {
	// Name is the benchmark's identity ("hpl", "fftw", ...).
	Name string
	// Class is the model class the benchmark represents.
	Class Class
	// Footprint is the VM's resident memory while the benchmark runs;
	// when the sum of co-located footprints exceeds the server's usable
	// RAM the hypervisor applies a thrashing penalty.
	Footprint units.MiB
	// Phases run in order; the benchmark completes when the last ends.
	Phases []Phase
}

// SoloTime is the benchmark's execution time on an otherwise idle server,
// ignoring virtualization overhead: the sum of solo phase durations.
func (b Benchmark) SoloTime() units.Seconds {
	var t units.Seconds
	for _, p := range b.Phases {
		t += p.Dur
	}
	return t
}

// PeakDemand is the componentwise maximum demand over phases.
func (b Benchmark) PeakDemand() subsys.Vector {
	var v subsys.Vector
	for _, p := range b.Phases {
		v = v.Max(p.Demand)
	}
	return v
}

// AvgDemand is the solo-duration-weighted mean demand vector. The
// profiler's X-intensive classification thresholds apply to this (Sect.
// III.A: "if the average demand for a subsystem X is significant, we
// consider the application to be X-intensive").
func (b Benchmark) AvgDemand() subsys.Vector {
	var acc subsys.Vector
	var total units.Seconds
	for _, p := range b.Phases {
		acc = acc.Add(p.Demand.Scale(float64(p.Dur)))
		total += p.Dur
	}
	if total <= 0 {
		return subsys.Vector{}
	}
	return acc.Scale(1 / float64(total))
}

// Scaled returns a copy of b whose phase durations are multiplied by
// factor, modelling the same application run on a larger or smaller
// problem. Demands and footprint are unchanged.
func (b Benchmark) Scaled(factor float64) Benchmark {
	if factor <= 0 {
		panic("workload: Scaled factor must be positive")
	}
	out := b
	out.Phases = make([]Phase, len(b.Phases))
	for i, p := range b.Phases {
		p.Dur = units.Seconds(float64(p.Dur) * factor)
		out.Phases[i] = p
	}
	return out
}

// Validate checks structural invariants.
func (b Benchmark) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("workload: benchmark with empty name")
	}
	if !b.Class.Valid() {
		return fmt.Errorf("workload: %s has invalid class %d", b.Name, int(b.Class))
	}
	if b.Footprint <= 0 {
		return fmt.Errorf("workload: %s has non-positive footprint", b.Name)
	}
	if len(b.Phases) == 0 {
		return fmt.Errorf("workload: %s has no phases", b.Name)
	}
	for i, p := range b.Phases {
		if p.Dur <= 0 {
			return fmt.Errorf("workload: %s phase %d (%s) has non-positive duration", b.Name, i, p.Name)
		}
		if !p.Demand.NonNegative() {
			return fmt.Errorf("workload: %s phase %d (%s) has negative demand", b.Name, i, p.Name)
		}
		if p.Demand.IsZero() {
			return fmt.Errorf("workload: %s phase %d (%s) demands nothing", b.Name, i, p.Name)
		}
	}
	return nil
}

package workload

import (
	"fmt"

	"pacevm/internal/subsys"
)

// The catalog functions return fresh Benchmark values so callers may
// mutate phase slices without aliasing.
//
// Demand calibration targets the paper's published base-test behaviour on
// the X3220 spec (4 cores, 5000 MiB/s memory bandwidth, 160 MiB/s disk,
// 2000 Mb/s network, 3584 MiB guest RAM):
//
//   - FFTW's compute phase occupies ~0.45 cores (the single-threaded
//     kernel is memory-latency-bound), so CPU saturates near 4/0.45 ≈ 9
//     co-located VMs — the paper's optimum of 9 (Fig. 2) — and its
//     310 MiB footprint overcommits RAM beyond 11 VMs, the paper's knee.
//   - HPL runs a core flat out, so consolidation beyond ~4 VMs stalls.
//   - sysbench hammers memory bandwidth (a lone instance draws ~a third
//     of the bus), saturating it near 3 co-located VMs.
//   - bonnie++ keeps both disks busy, saturating them near 2-3 VMs —
//     blind co-location of I/O-intensive VMs is expensive, which is
//     precisely the contention the paper's application-aware placement
//     avoids.

// HPL models HPL Linpack: "solves a (random) dense linear system in
// double precision arithmetic" — the archetypal CPU-intensive workload.
func HPL() Benchmark {
	return Benchmark{
		Name:      "hpl",
		Class:     ClassCPU,
		Footprint: 280,
		Phases: []Phase{
			{Name: "init", Dur: 20, Demand: subsys.V(0.30, 100, 25, 0)},
			{Name: "factorize", Dur: 560, Demand: subsys.V(0.95, 380, 0, 0)},
			{Name: "writeback", Dur: 20, Demand: subsys.V(0.20, 50, 40, 0)},
		},
	}
}

// FFTW models the paper's FFTW run: "single thread, with long
// initialization phase" (Sect. III.B, Fig. 2).
func FFTW() Benchmark {
	return Benchmark{
		Name:      "fftw",
		Class:     ClassCPU,
		Footprint: 310,
		Phases: []Phase{
			{Name: "plan", Dur: 150, Demand: subsys.V(0.30, 200, 10, 0)},
			{Name: "transform", Dur: 430, Demand: subsys.V(0.45, 520, 0, 0)},
			{Name: "output", Dur: 20, Demand: subsys.V(0.15, 60, 35, 0)},
		},
	}
}

// Sysbench models sysbench's database-style memory workload: "a
// multi-threaded benchmark developed originally to evaluate systems
// running a database under intensive load" — the memory-intensive class.
func Sysbench() Benchmark {
	return Benchmark{
		Name:      "sysbench",
		Class:     ClassMEM,
		Footprint: 290,
		Phases: []Phase{
			{Name: "warmup", Dur: 30, Demand: subsys.V(0.30, 500, 20, 0)},
			{Name: "oltp", Dur: 540, Demand: subsys.V(0.32, 1600, 10, 0)},
			{Name: "teardown", Dur: 30, Demand: subsys.V(0.10, 100, 5, 0)},
		},
	}
}

// Bonnie models bonnie++: "focuses on hard-drive and file-system
// performance" — the I/O-intensive class representative.
func Bonnie() Benchmark {
	return Benchmark{
		Name:      "bonnie",
		Class:     ClassIO,
		Footprint: 256,
		Phases: []Phase{
			{Name: "create", Dur: 40, Demand: subsys.V(0.15, 80, 30, 0)},
			{Name: "readwrite", Dur: 520, Demand: subsys.V(0.12, 120, 60, 0)},
			{Name: "verify", Dur: 40, Demand: subsys.V(0.20, 90, 40, 0)},
		},
	}
}

// BEffIO models b_eff_io, "an MPI-I/O application": I/O-intensive with a
// network component from the MPI collective phases.
func BEffIO() Benchmark {
	return Benchmark{
		Name:      "b_eff_io",
		Class:     ClassIO,
		Footprint: 320,
		Phases: []Phase{
			{Name: "setup", Dur: 30, Demand: subsys.V(0.20, 100, 8, 40)},
			{Name: "collective-io", Dur: 520, Demand: subsys.V(0.18, 140, 45, 90)},
			{Name: "report", Dur: 50, Demand: subsys.V(0.10, 60, 10, 30)},
		},
	}
}

// MPINet models an iterative MPI solver that alternates compute bursts
// with halo exchanges: the "CPU- cum network-intensive workload" of
// Fig. 1 (right). It classifies as CPU for model purposes but is
// additionally network-intensive under the profiler's thresholds.
func MPINet() Benchmark {
	b := Benchmark{
		Name:      "mpinet",
		Class:     ClassCPU,
		Footprint: 400,
		Phases: []Phase{
			{Name: "init", Dur: 30, Demand: subsys.V(0.25, 150, 15, 20)},
		},
	}
	for i := 0; i < 6; i++ {
		b.Phases = append(b.Phases,
			Phase{Name: fmt.Sprintf("compute-%d", i), Dur: 65, Demand: subsys.V(0.85, 260, 0, 10)},
			Phase{Name: fmt.Sprintf("exchange-%d", i), Dur: 30, Demand: subsys.V(0.30, 90, 0, 520)},
		)
	}
	return b
}

// All returns the full catalog.
func All() []Benchmark {
	return []Benchmark{HPL(), FFTW(), Sysbench(), Bonnie(), BEffIO(), MPINet()}
}

// ByName returns the catalog benchmark with the given name.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Representative returns the benchmark the campaign uses to characterize
// a model class: HPL for CPU, sysbench for memory, bonnie++ for I/O.
func Representative(c Class) Benchmark {
	switch c {
	case ClassCPU:
		return HPL()
	case ClassMEM:
		return Sysbench()
	case ClassIO:
		return Bonnie()
	default:
		panic(fmt.Sprintf("workload: no representative for class %d", int(c)))
	}
}

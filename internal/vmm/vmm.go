// Package vmm simulates a Xen-like hypervisor hosting a set of VMs on one
// physical server. It is the microscopic engine behind the paper's
// empirical benchmarking (Sect. III.B): given co-located benchmark VMs it
// produces per-VM completion times and a piecewise-constant timeline of
// server utilization and power, from which the campaign derives the model
// database and the profiler derives Fig.-1-style traces.
//
// # Contention model
//
// At any instant each resident VM is in one phase of its benchmark,
// demanding a resource vector. The hypervisor grants each subsystem
// proportionally when aggregate demand exceeds capacity (Xen's credit
// scheduler approximates proportional fair sharing for CPU; streaming
// devices behave similarly under saturation):
//
//	grant_s = min(1, capacity_s / Σ demand_s) / (1 + q·(D_s/C_s − 1))
//
// where the second factor (active only under oversubscription, q =
// Config.SatPenalty) models the throughput lost to context switching and
// cache pollution as oversubscription deepens. A VM progresses at the
// minimum grant across the subsystems it uses — a phase that needs both
// CPU and disk runs at the pace of its most contended resource. Two
// further penalties apply:
//
//   - virtualization overhead: progress is divided by
//     1 + base + perVM·(residents−1), modelling hypervisor scheduling
//     and world-switch costs that grow with consolidation;
//   - memory-overcommit thrashing: when resident footprints exceed the
//     server's usable RAM by fraction `over`, progress is divided by
//     1 + thrashLin·over + thrashQuad·over², the superlinear collapse
//     responsible for the paper's ">11 FFTW VMs degrades significantly"
//     knee (Fig. 2).
//
// The simulation is event-driven over phase boundaries, so a run costs
// O(totalPhases · residents) regardless of the virtual durations.
package vmm

import (
	"fmt"
	"math"

	"pacevm/internal/hw"
	"pacevm/internal/subsys"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// Config parameterizes the hypervisor simulation.
type Config struct {
	Spec hw.Spec

	// BaseOverhead is the fixed fractional virtualization cost paid by
	// any guest (domU vs bare metal).
	BaseOverhead float64
	// PerVMOverhead is the additional fractional cost per co-resident VM
	// beyond the first.
	PerVMOverhead float64

	// ThrashLin and ThrashQuad shape the memory-overcommit penalty.
	ThrashLin  float64
	ThrashQuad float64

	// SatPenalty is the scheduling-inefficiency coefficient applied when
	// a subsystem is oversubscribed: at aggregate demand D > capacity C
	// the effective grant is (C/D) / (1 + SatPenalty·(D/C − 1)). It
	// models the throughput the credit scheduler loses to context
	// switches and cache pollution as oversubscription deepens — without
	// it, fair sharing would make consolidation look free right up to
	// the RAM wall, flattening the paper's Fig.-2 optimum.
	SatPenalty float64
}

// DefaultConfig returns the calibrated configuration used throughout the
// reproduction (see DESIGN.md §4).
func DefaultConfig() Config {
	return Config{
		Spec:          hw.X3220(),
		BaseOverhead:  0.02,
		PerVMOverhead: 0.015,
		ThrashLin:     20,
		ThrashQuad:    8,
		SatPenalty:    0.35,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.BaseOverhead < 0 || c.PerVMOverhead < 0 {
		return fmt.Errorf("vmm: negative virtualization overhead")
	}
	if c.ThrashLin < 0 || c.ThrashQuad < 0 {
		return fmt.Errorf("vmm: negative thrash coefficients")
	}
	if c.SatPenalty < 0 {
		return fmt.Errorf("vmm: negative saturation penalty")
	}
	return nil
}

// Interval is one piecewise-constant segment of the run timeline.
type Interval struct {
	Start, End units.Seconds
	// Util is the realized per-subsystem utilization (granted demand
	// over capacity), each component in [0,1].
	Util subsys.Vector
	// Power is the wall power during the interval.
	Power units.Watts
	// Residents is the number of VMs still running.
	Residents int
}

// Dur returns the interval length.
func (iv Interval) Dur() units.Seconds { return iv.End - iv.Start }

// Result is the outcome of a co-location run.
type Result struct {
	// Completion holds each VM's completion time, indexed as the input
	// benchmark slice.
	Completion []units.Seconds
	// Timeline is the utilization/power history from t=0 to the last
	// completion, with no gaps.
	Timeline []Interval
}

// Makespan is the paper's "Time" column (Table II): the completion time
// of the last VM in the batch.
func (r Result) Makespan() units.Seconds {
	var m units.Seconds
	for _, c := range r.Completion {
		if c > m {
			m = c
		}
	}
	return m
}

// AvgTimePerVM is the paper's headline metric (Sect. III.A): the ratio of
// the maximum execution time of the batch to the number of VMs, capturing
// the gain of multiplexing VMs over running them sequentially.
func (r Result) AvgTimePerVM() units.Seconds {
	if len(r.Completion) == 0 {
		return 0
	}
	return r.Makespan() / units.Seconds(len(r.Completion))
}

// Energy integrates power exactly over the timeline (the emulated meter
// in internal/power re-measures it with sampling noise, as the Watts Up?
// meter did).
func (r Result) Energy() units.Joules {
	var e units.Joules
	for _, iv := range r.Timeline {
		e += iv.Power.Times(iv.Dur())
	}
	return e
}

// MaxPower is the paper's "MaxPower" column: the peak instantaneous power
// observed.
func (r Result) MaxPower() units.Watts {
	var p units.Watts
	for _, iv := range r.Timeline {
		if iv.Power > p {
			p = iv.Power
		}
	}
	return p
}

// vmState tracks one resident VM's progress.
type vmState struct {
	bench     workload.Benchmark
	phase     int
	remaining units.Seconds // solo-seconds left in current phase
	done      bool
}

func (v *vmState) demand() subsys.Vector { return v.bench.Phases[v.phase].Demand }

// Run executes the given benchmark VMs co-located on one server, all
// starting at t=0 (the campaign's experimental protocol).
func Run(cfg Config, benches []workload.Benchmark) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if len(benches) == 0 {
		return Result{}, fmt.Errorf("vmm: no VMs to run")
	}
	if len(benches) > cfg.Spec.MaxVMs {
		return Result{}, fmt.Errorf("vmm: %d VMs exceed the server's admission limit of %d", len(benches), cfg.Spec.MaxVMs)
	}
	states := make([]vmState, len(benches))
	for i, b := range benches {
		if err := b.Validate(); err != nil {
			return Result{}, fmt.Errorf("vmm: VM %d: %w", i, err)
		}
		states[i] = vmState{bench: b, remaining: b.Phases[0].Dur}
	}

	res := Result{Completion: make([]units.Seconds, len(benches))}
	var now units.Seconds
	// An upper bound on loop iterations: every iteration retires at least
	// one phase of one VM.
	maxIters := 0
	for _, b := range benches {
		maxIters += len(b.Phases)
	}
	maxIters++

	for iter := 0; iter <= maxIters; iter++ {
		// Gather resident demand and footprint.
		var demand subsys.Vector
		var footprint units.MiB
		residents := 0
		for i := range states {
			if states[i].done {
				continue
			}
			residents++
			demand = demand.Add(states[i].demand())
			footprint += states[i].bench.Footprint
		}
		if residents == 0 {
			return res, nil
		}

		slow := slowdown(cfg, residents, footprint)

		// Per-subsystem grant factors.
		var grant subsys.Vector
		for s := range grant {
			if demand[s] <= cfg.Spec.Capacity[s] {
				grant[s] = 1
			} else {
				ratio := demand[s] / cfg.Spec.Capacity[s]
				grant[s] = (1 / ratio) / (1 + cfg.SatPenalty*(ratio-1))
			}
		}

		// Per-VM speeds and the time to the next phase boundary.
		dt := units.Seconds(math.Inf(1))
		speeds := make([]float64, len(states))
		for i := range states {
			if states[i].done {
				continue
			}
			sp := 1.0
			d := states[i].demand()
			for s := range d {
				if d[s] > 0 && grant[s] < sp {
					sp = grant[s]
				}
			}
			sp /= slow
			speeds[i] = sp
			if need := states[i].remaining / units.Seconds(sp); need < dt {
				dt = need
			}
		}
		if math.IsInf(float64(dt), 1) || dt < 0 {
			return Result{}, fmt.Errorf("vmm: simulation stalled at t=%v", now)
		}

		// Record the interval.
		util := cfg.Spec.Utilization(demand)
		res.Timeline = append(res.Timeline, Interval{
			Start:     now,
			End:       now + dt,
			Util:      util,
			Power:     cfg.Spec.Power(util),
			Residents: residents,
		})

		// Advance all VMs by dt.
		now += dt
		for i := range states {
			st := &states[i]
			if st.done {
				continue
			}
			st.remaining -= dt * units.Seconds(speeds[i])
			if st.remaining <= 1e-9 {
				st.phase++
				if st.phase >= len(st.bench.Phases) {
					st.done = true
					res.Completion[i] = now
				} else {
					st.remaining = st.bench.Phases[st.phase].Dur
				}
			}
		}
	}
	return Result{}, fmt.Errorf("vmm: exceeded iteration bound (%d); phase bookkeeping bug", maxIters)
}

// slowdown combines the virtualization-overhead and thrashing penalties
// for a resident set of the given size and footprint.
func slowdown(cfg Config, residents int, footprint units.MiB) float64 {
	ov := 1 + cfg.BaseOverhead + cfg.PerVMOverhead*float64(residents-1)
	usable := cfg.Spec.UsableRAM()
	if footprint > usable && usable > 0 {
		over := float64(footprint-usable) / float64(usable)
		ov *= 1 + cfg.ThrashLin*over + cfg.ThrashQuad*over*over
	}
	return ov
}

// Replicate returns n copies of a benchmark, the shape used by the
// campaign's base tests.
func Replicate(b workload.Benchmark, n int) []workload.Benchmark {
	out := make([]workload.Benchmark, n)
	for i := range out {
		out[i] = b
	}
	return out
}

// Mix builds the benchmark set for a combined test: nCPU, nMEM and nIO
// replicas of each class representative.
func Mix(nCPU, nMEM, nIO int) []workload.Benchmark {
	out := make([]workload.Benchmark, 0, nCPU+nMEM+nIO)
	out = append(out, Replicate(workload.Representative(workload.ClassCPU), nCPU)...)
	out = append(out, Replicate(workload.Representative(workload.ClassMEM), nMEM)...)
	out = append(out, Replicate(workload.Representative(workload.ClassIO), nIO)...)
	return out
}

package vmm

import (
	"math"
	"testing"
	"testing/quick"

	"pacevm/internal/subsys"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

func TestSoloRunNearNominal(t *testing.T) {
	cfg := DefaultConfig()
	for _, b := range workload.All() {
		res, err := Run(cfg, []workload.Benchmark{b})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		want := float64(b.SoloTime()) * (1 + cfg.BaseOverhead)
		got := float64(res.Completion[0])
		if !units.NearlyEqual(got, want, 1e-6) {
			t.Errorf("%s solo completion = %v, want %v", b.Name, got, want)
		}
	}
}

func TestErrors(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Run(cfg, nil); err == nil {
		t.Error("empty VM set should fail")
	}
	if _, err := Run(cfg, Replicate(workload.HPL(), cfg.Spec.MaxVMs+1)); err == nil {
		t.Error("exceeding MaxVMs should fail")
	}
	bad := workload.HPL()
	bad.Phases = nil
	if _, err := Run(cfg, []workload.Benchmark{bad}); err == nil {
		t.Error("invalid benchmark should fail")
	}
	badCfg := cfg
	badCfg.BaseOverhead = -1
	if _, err := Run(badCfg, []workload.Benchmark{workload.HPL()}); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestTimelineContiguousAndComplete(t *testing.T) {
	res, err := Run(DefaultConfig(), Mix(2, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline")
	}
	if res.Timeline[0].Start != 0 {
		t.Errorf("timeline starts at %v", res.Timeline[0].Start)
	}
	for i := 1; i < len(res.Timeline); i++ {
		if res.Timeline[i].Start != res.Timeline[i-1].End {
			t.Fatalf("gap between intervals %d and %d", i-1, i)
		}
		if res.Timeline[i].End < res.Timeline[i].Start {
			t.Fatalf("interval %d runs backwards", i)
		}
	}
	last := res.Timeline[len(res.Timeline)-1].End
	if !units.NearlyEqual(float64(last), float64(res.Makespan()), 1e-9) {
		t.Errorf("timeline ends at %v, makespan %v", last, res.Makespan())
	}
}

func TestResidentsMonotoneNonIncreasingAfterCompletion(t *testing.T) {
	// With identical VMs all complete together; with a mix, residents
	// must never increase over time (no arrivals mid-run).
	res, err := Run(DefaultConfig(), Mix(3, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	prev := res.Timeline[0].Residents
	for _, iv := range res.Timeline {
		if iv.Residents > prev {
			t.Fatalf("residents grew from %d to %d", prev, iv.Residents)
		}
		prev = iv.Residents
	}
}

func TestContentionSlowsDown(t *testing.T) {
	cfg := DefaultConfig()
	solo, err := Run(cfg, Replicate(workload.HPL(), 1))
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Run(cfg, Replicate(workload.HPL(), 8))
	if err != nil {
		t.Fatal(err)
	}
	// 8 HPL VMs demand ~7.6 cores on 4: roughly 2x dilation (plus
	// overhead and thrash).
	ratio := float64(eight.Makespan()) / float64(solo.Makespan())
	if ratio < 1.5 {
		t.Errorf("8-way HPL dilation = %.2fx, want clear contention", ratio)
	}
}

func TestNoContentionBelowSaturation(t *testing.T) {
	cfg := DefaultConfig()
	// 3 HPL VMs demand 2.85 cores of 4 — no contention, only overhead.
	res, err := Run(cfg, Replicate(workload.HPL(), 3))
	if err != nil {
		t.Fatal(err)
	}
	want := 600 * (1 + cfg.BaseOverhead + 2*cfg.PerVMOverhead)
	if !units.NearlyEqual(float64(res.Makespan()), want, 1e-6) {
		t.Errorf("3-way HPL makespan = %v, want %v", res.Makespan(), want)
	}
}

func TestFFTWBaseCurveShape(t *testing.T) {
	// The paper's Fig. 2: avg execution time per VM is minimized around 9
	// co-located FFTW VMs and degrades sharply past 11.
	cfg := DefaultConfig()
	avg := make([]float64, 17)
	for n := 1; n <= 16; n++ {
		res, err := Run(cfg, Replicate(workload.FFTW(), n))
		if err != nil {
			t.Fatal(err)
		}
		avg[n] = float64(res.AvgTimePerVM())
	}
	best, bestN := math.Inf(1), 0
	for n := 1; n <= 16; n++ {
		if avg[n] < best {
			best, bestN = avg[n], n
		}
	}
	if bestN < 8 || bestN > 10 {
		t.Errorf("FFTW optimum at %d VMs (avg %v), want 8-10 (paper: 9); curve=%v", bestN, best, avg[1:])
	}
	if avg[12] < 1.5*best {
		t.Errorf("12-way avg %v should clearly exceed optimum %v (paper knee >11)", avg[12], best)
	}
	if avg[14] < 3*best {
		t.Errorf("14-way avg %v should collapse vs optimum %v", avg[14], best)
	}
}

func TestEnergyGrowsWithLoad(t *testing.T) {
	cfg := DefaultConfig()
	e1, _ := Run(cfg, Replicate(workload.Bonnie(), 1))
	e4, _ := Run(cfg, Replicate(workload.Bonnie(), 4))
	if e4.Energy() <= e1.Energy() {
		t.Errorf("4-way energy %v <= solo energy %v", e4.Energy(), e1.Energy())
	}
	// But per-VM energy should shrink: consolidation amortizes idle power.
	if e4.Energy()/4 >= e1.Energy() {
		t.Errorf("per-VM energy did not improve under consolidation: %v vs %v", e4.Energy()/4, e1.Energy())
	}
}

func TestMaxPowerWithinSpec(t *testing.T) {
	cfg := DefaultConfig()
	res, err := Run(cfg, Mix(4, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxPower() > cfg.Spec.MaxPower() {
		t.Errorf("max power %v exceeds spec ceiling %v", res.MaxPower(), cfg.Spec.MaxPower())
	}
	if res.MaxPower() <= cfg.Spec.IdlePower {
		t.Errorf("max power %v not above idle %v", res.MaxPower(), cfg.Spec.IdlePower)
	}
}

func TestEnergyEqualsIntegralProperty(t *testing.T) {
	f := func(nc, nm, ni uint8) bool {
		c, m, i := int(nc%4), int(nm%4), int(ni%4)
		if c+m+i == 0 {
			return true
		}
		res, err := Run(DefaultConfig(), Mix(c, m, i))
		if err != nil {
			return false
		}
		var sum units.Joules
		for _, iv := range res.Timeline {
			sum += iv.Power.Times(iv.Dur())
		}
		return units.NearlyEqual(float64(sum), float64(res.Energy()), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCompletionsAllPositiveAndBounded(t *testing.T) {
	f := func(nc, nm, ni uint8) bool {
		c, m, i := int(nc%5), int(nm%5), int(ni%5)
		if c+m+i == 0 {
			return true
		}
		res, err := Run(DefaultConfig(), Mix(c, m, i))
		if err != nil {
			return false
		}
		for _, t := range res.Completion {
			if t <= 0 || t > res.Makespan() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestUtilizationWithinBounds(t *testing.T) {
	res, err := Run(DefaultConfig(), Mix(5, 5, 5))
	if err != nil {
		t.Fatal(err)
	}
	for _, iv := range res.Timeline {
		for s, u := range iv.Util {
			if u < 0 || u > 1 {
				t.Fatalf("utilization %v out of [0,1] for %v", u, subsys.All[s])
			}
		}
	}
}

func TestThrashingPenalty(t *testing.T) {
	cfg := DefaultConfig()
	// 12 HPL VMs (3360 MiB) fit in the 3584 MiB of usable RAM; 14
	// (3920 MiB) overcommit and must pay a clear thrashing penalty on
	// top of the CPU contention both levels share.
	twelve, err := Run(cfg, Replicate(workload.HPL(), 12))
	if err != nil {
		t.Fatal(err)
	}
	fourteen, err := Run(cfg, Replicate(workload.HPL(), 14))
	if err != nil {
		t.Fatal(err)
	}
	perVM12 := float64(twelve.Makespan()) / 12
	perVM14 := float64(fourteen.Makespan()) / 14
	if perVM14 < 1.5*perVM12 {
		t.Errorf("thrash knee missing: avg(14)=%v vs avg(12)=%v", perVM14, perVM12)
	}
}

func TestMixHelpers(t *testing.T) {
	m := Mix(2, 1, 3)
	if len(m) != 6 {
		t.Fatalf("Mix len = %d", len(m))
	}
	counts := map[workload.Class]int{}
	for _, b := range m {
		counts[b.Class]++
	}
	if counts[workload.ClassCPU] != 2 || counts[workload.ClassMEM] != 1 || counts[workload.ClassIO] != 3 {
		t.Errorf("Mix composition = %v", counts)
	}
	if len(Replicate(workload.HPL(), 0)) != 0 {
		t.Error("Replicate(0) should be empty")
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Run(DefaultConfig(), Mix(3, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(DefaultConfig(), Mix(3, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Completion {
		if a.Completion[i] != b.Completion[i] {
			t.Fatalf("nondeterministic completion for VM %d", i)
		}
	}
	if a.Energy() != b.Energy() {
		t.Error("nondeterministic energy")
	}
}

// Package model implements the paper's VM allocation model database
// (Sect. III.C): the collected outcomes of the benchmarking campaign,
// keyed by the number of VMs of each workload type, stored as
// comma-separated values in plain text "instead of an actual database
// management system", sorted ascending by the (Ncpu, Nmem, Nio) search
// key and accessed by binary search in O(log num_tests).
//
// Each record carries the paper's Table II fields — total execution time
// of the outcome, average execution time per VM, energy consumed, maximum
// power dissipation, and the energy-delay product — plus per-class mean
// completion times, an extension column in the spirit of the paper's
// "other relevant information", which the datacenter simulator needs for
// the per-VM proportional accounting of Fig. 4.
//
// The auxiliary file of Sect. III.C (optimal scenarios OSP*/OSE* and the
// single-VM reference times TC/TM/TI of Table I) is modelled by Aux.
package model

import (
	"fmt"
	"sort"

	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// Key is the database search key: how many VMs of each workload type are
// co-located on the server (Table II's Ncpu, Nmem, Nio).
type Key struct {
	NCPU, NMEM, NIO int
}

// KeyFor builds a key with n VMs of class c and none of the others.
func KeyFor(c workload.Class, n int) Key {
	var k Key
	k = k.With(c, n)
	return k
}

// With returns a copy of k with the count for class c replaced by n.
func (k Key) With(c workload.Class, n int) Key {
	switch c {
	case workload.ClassCPU:
		k.NCPU = n
	case workload.ClassMEM:
		k.NMEM = n
	case workload.ClassIO:
		k.NIO = n
	default:
		panic(fmt.Sprintf("model: invalid class %d", int(c)))
	}
	return k
}

// Count returns the number of VMs of class c in the key.
func (k Key) Count(c workload.Class) int {
	switch c {
	case workload.ClassCPU:
		return k.NCPU
	case workload.ClassMEM:
		return k.NMEM
	case workload.ClassIO:
		return k.NIO
	default:
		panic(fmt.Sprintf("model: invalid class %d", int(c)))
	}
}

// Add returns the componentwise sum of two keys (the allocation that
// results from co-locating both VM sets).
func (k Key) Add(o Key) Key {
	return Key{k.NCPU + o.NCPU, k.NMEM + o.NMEM, k.NIO + o.NIO}
}

// Total is the total number of VMs in the allocation.
func (k Key) Total() int { return k.NCPU + k.NMEM + k.NIO }

// IsZero reports whether the key describes an empty server.
func (k Key) IsZero() bool { return k == Key{} }

// Valid reports whether all counts are non-negative.
func (k Key) Valid() bool { return k.NCPU >= 0 && k.NMEM >= 0 && k.NIO >= 0 }

// Less orders keys lexicographically — the paper's ascending sort by the
// (Ncpu, Nmem, Nio) search key.
func (k Key) Less(o Key) bool {
	if k.NCPU != o.NCPU {
		return k.NCPU < o.NCPU
	}
	if k.NMEM != o.NMEM {
		return k.NMEM < o.NMEM
	}
	return k.NIO < o.NIO
}

// Dominates reports whether k has at least as many VMs of every class.
func (k Key) Dominates(o Key) bool {
	return k.NCPU >= o.NCPU && k.NMEM >= o.NMEM && k.NIO >= o.NIO
}

func (k Key) String() string {
	return fmt.Sprintf("(%d,%d,%d)", k.NCPU, k.NMEM, k.NIO)
}

// Record is one database row (Table II plus the per-class extension).
type Record struct {
	Key
	// Time is the total execution time of the outcome: the completion
	// time of the last VM in the batch.
	Time units.Seconds
	// AvgTimeVM is Time / (Ncpu+Nmem+Nio).
	AvgTimeVM units.Seconds
	// Energy is the consumed energy for the whole outcome.
	Energy units.Joules
	// MaxPower is the maximum power dissipation measured.
	MaxPower units.Watts
	// EDP is the energy-delay product, Energy × Time.
	EDP units.JouleSeconds
	// TimeByClass is the mean completion time of the batch's VMs of each
	// class (zero where the class is absent). Extension column: lets the
	// simulator price a VM of a specific type under this allocation.
	TimeByClass [workload.NumClasses]units.Seconds
}

// ClassTime returns the mean completion time for VMs of class c under
// this allocation, falling back to AvgTimeVM when the class is absent
// from the record (the paper's "use the matching values proportionally").
func (r Record) ClassTime(c workload.Class) units.Seconds {
	if t := r.TimeByClass[c]; t > 0 {
		return t
	}
	return r.AvgTimeVM
}

// AvgPower is the mean power over the outcome.
func (r Record) AvgPower() units.Watts { return units.EnergyOver(r.Energy, r.Time) }

// Validate checks a record's internal consistency.
func (r Record) Validate() error {
	if !r.Key.Valid() || r.Key.IsZero() {
		return fmt.Errorf("model: record %v has invalid key", r.Key)
	}
	if r.Time <= 0 || r.Energy <= 0 || r.MaxPower <= 0 {
		return fmt.Errorf("model: record %v has non-positive measurements", r.Key)
	}
	if r.AvgTimeVM <= 0 {
		return fmt.Errorf("model: record %v has non-positive avg time", r.Key)
	}
	wantAvg := float64(r.Time) / float64(r.Total())
	if !units.NearlyEqual(float64(r.AvgTimeVM), wantAvg, 1e-6) {
		return fmt.Errorf("model: record %v avgTimeVM %v inconsistent with Time/%d", r.Key, r.AvgTimeVM, r.Total())
	}
	if !units.NearlyEqual(float64(r.EDP), float64(units.EDP(r.Energy, r.Time)), 1e-6) {
		return fmt.Errorf("model: record %v EDP inconsistent", r.Key)
	}
	return nil
}

// Aux is the auxiliary file of Sect. III.C: per-class optimal scenarios
// and reference times from the base tests (Table I).
type Aux struct {
	// OSP is the number of VMs that minimizes the average execution time
	// per VM (OSPC, OSPM, OSPI).
	OSP [workload.NumClasses]int
	// OSE is the number of VMs that minimizes per-VM energy
	// (OSEC, OSEM, OSEI).
	OSE [workload.NumClasses]int
	// RefTime is the execution time of a single VM of the class
	// (TC, TM, TI).
	RefTime [workload.NumClasses]units.Seconds
}

// OS returns the paper's combined bound for a class:
// OSx = max(OSPx, OSEx) (Sect. III.B).
func (a Aux) OS(c workload.Class) int {
	if a.OSP[c] > a.OSE[c] {
		return a.OSP[c]
	}
	return a.OSE[c]
}

// Validate checks the auxiliary parameters.
func (a Aux) Validate() error {
	for _, c := range workload.Classes {
		if a.OSP[c] <= 0 || a.OSE[c] <= 0 {
			return fmt.Errorf("model: aux has non-positive optimal scenario for %v", c)
		}
		if a.RefTime[c] <= 0 {
			return fmt.Errorf("model: aux has non-positive reference time for %v", c)
		}
	}
	return nil
}

// DB is the model database: records sorted by key, plus the auxiliary
// parameters.
type DB struct {
	recs []Record
	aux  Aux
}

// New builds a database from records and auxiliary parameters. Records
// are validated, sorted by the search key, and must not contain duplicate
// keys.
func New(recs []Record, aux Aux) (*DB, error) {
	if err := aux.Validate(); err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("model: empty database")
	}
	sorted := append([]Record(nil), recs...)
	for i := range sorted {
		if err := sorted[i].Validate(); err != nil {
			return nil, err
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key.Less(sorted[j].Key) })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Key == sorted[i-1].Key {
			return nil, fmt.Errorf("model: duplicate key %v", sorted[i].Key)
		}
	}
	return &DB{recs: sorted, aux: aux}, nil
}

// Aux returns the auxiliary parameters.
func (db *DB) Aux() Aux { return db.aux }

// Len returns the number of records.
func (db *DB) Len() int { return len(db.recs) }

// Records returns the records in key order. The slice is shared; callers
// must not mutate it.
func (db *DB) Records() []Record { return db.recs }

// Lookup finds the record with exactly the given key by binary search.
func (db *DB) Lookup(k Key) (Record, bool) {
	i := sort.Search(len(db.recs), func(i int) bool { return !db.recs[i].Key.Less(k) })
	if i < len(db.recs) && db.recs[i].Key == k {
		return db.recs[i], true
	}
	return Record{}, false
}

// MaxKey returns the componentwise maximum key present (the grid bounds).
func (db *DB) MaxKey() Key {
	var m Key
	for _, r := range db.recs {
		if r.NCPU > m.NCPU {
			m.NCPU = r.NCPU
		}
		if r.NMEM > m.NMEM {
			m.NMEM = r.NMEM
		}
		if r.NIO > m.NIO {
			m.NIO = r.NIO
		}
	}
	return m
}

// Estimate returns the record for k, interpolating or extrapolating when
// the key is off the campaign grid:
//
//   - exact hits return the stored record;
//   - interior holes interpolate linearly (in total VM count) between
//     the nearest dominated and dominating records;
//   - keys beyond the grid extrapolate from the closest dominated record
//     by scaling time and energy with the VM-count ratio — a pessimistic
//     linear sequentialization assumption, appropriate because beyond
//     the grid the server is deeply oversubscribed.
//
// An error is returned for an invalid or empty key, or when the database
// has no record dominated by k to anchor the estimate.
func (db *DB) Estimate(k Key) (Record, error) {
	if !k.Valid() || k.IsZero() {
		return Record{}, fmt.Errorf("model: cannot estimate key %v", k)
	}
	if r, ok := db.Lookup(k); ok {
		return r, nil
	}
	below, belowOK := db.nearest(k, true)
	above, aboveOK := db.nearest(k, false)
	switch {
	case belowOK && aboveOK:
		span := above.Total() - below.Total()
		if span <= 0 {
			return scaleRecord(below, k), nil
		}
		frac := float64(k.Total()-below.Total()) / float64(span)
		return lerpRecord(below, above, frac, k), nil
	case belowOK:
		return scaleRecord(below, k), nil
	case aboveOK:
		return scaleRecord(above, k), nil
	default:
		return Record{}, fmt.Errorf("model: no records anchor key %v", k)
	}
}

// nearest finds the dominated (below=true) or dominating (below=false)
// record closest to k by total VM count, breaking ties by componentwise
// distance.
func (db *DB) nearest(k Key, below bool) (Record, bool) {
	var best Record
	found := false
	bestScore := 1 << 30
	for _, r := range db.recs {
		if below && !k.Dominates(r.Key) {
			continue
		}
		if !below && !r.Key.Dominates(k) {
			continue
		}
		score := abs(k.Total()-r.Total())*16 + dist(k, r.Key)
		if !found || score < bestScore {
			best, bestScore, found = r, score, true
		}
	}
	return best, found
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func dist(a, b Key) int {
	return abs(a.NCPU-b.NCPU) + abs(a.NMEM-b.NMEM) + abs(a.NIO-b.NIO)
}

// scaleRecord rescales r to the VM total of k.
func scaleRecord(r Record, k Key) Record {
	ratio := float64(k.Total()) / float64(r.Total())
	out := r
	out.Key = k
	out.Time = units.Seconds(float64(r.Time) * ratio)
	out.Energy = units.Joules(float64(r.Energy) * ratio)
	out.AvgTimeVM = out.Time / units.Seconds(k.Total())
	out.EDP = units.EDP(out.Energy, out.Time)
	for c := range out.TimeByClass {
		out.TimeByClass[c] = units.Seconds(float64(r.TimeByClass[c]) * ratio)
	}
	return out
}

// lerpRecord interpolates between records a and b at fraction f, assigned
// to key k.
func lerpRecord(a, b Record, f float64, k Key) Record {
	lerp := func(x, y float64) float64 { return x + f*(y-x) }
	out := Record{Key: k}
	out.Time = units.Seconds(lerp(float64(a.Time), float64(b.Time)))
	out.Energy = units.Joules(lerp(float64(a.Energy), float64(b.Energy)))
	out.MaxPower = units.Watts(lerp(float64(a.MaxPower), float64(b.MaxPower)))
	out.AvgTimeVM = out.Time / units.Seconds(k.Total())
	out.EDP = units.EDP(out.Energy, out.Time)
	for c := range out.TimeByClass {
		ta, tb := float64(a.TimeByClass[c]), float64(b.TimeByClass[c])
		switch {
		case ta > 0 && tb > 0:
			out.TimeByClass[c] = units.Seconds(lerp(ta, tb))
		case ta > 0:
			out.TimeByClass[c] = a.TimeByClass[c]
		default:
			out.TimeByClass[c] = b.TimeByClass[c]
		}
	}
	return out
}

package model

import (
	"sync"
	"testing"
)

func TestEstimateCacheMatchesDB(t *testing.T) {
	db := gridDB(t, 6)
	c := NewEstimateCache(db)
	if c.DB() != db {
		t.Fatal("DB() does not return the wrapped database")
	}
	keys := []Key{
		{NCPU: 1}, {NMEM: 2}, {NIO: 3},
		{NCPU: 2, NMEM: 2, NIO: 2},
		{NCPU: 1, NMEM: 1, NIO: 1},
		{NCPU: 6},          // grid edge
		{NCPU: 9, NMEM: 9}, // off grid → extrapolation or error, either way memoized
	}
	// Query twice: the second pass must serve hits identical to the
	// uncached database, errors included.
	for pass := 0; pass < 2; pass++ {
		for _, k := range keys {
			want, wantErr := db.Estimate(k)
			got, gotErr := c.Estimate(k)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("pass %d key %v: err %v, want %v", pass, k, gotErr, wantErr)
			}
			if gotErr == nil && got != want {
				t.Errorf("pass %d key %v: rec %+v, want %+v", pass, k, got, want)
			}
		}
	}
	if c.Len() != len(keys) {
		t.Errorf("cache holds %d entries, want %d", c.Len(), len(keys))
	}
}

func TestEstimateCacheConcurrent(t *testing.T) {
	db := gridDB(t, 6)
	c := NewEstimateCache(db)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key{NCPU: i % 4, NMEM: (i + w) % 3, NIO: i % 2}
				if k.IsZero() {
					continue
				}
				got, err := c.Estimate(k)
				if err != nil {
					t.Error(err)
					return
				}
				want, _ := db.Estimate(k)
				if got != want {
					t.Errorf("key %v: concurrent hit %+v != direct %+v", k, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

package model

import (
	"sync"
	"testing"

	"pacevm/internal/obs"
)

func TestEstimateCacheMatchesDB(t *testing.T) {
	db := gridDB(t, 6)
	c := NewEstimateCache(db)
	if c.DB() != db {
		t.Fatal("DB() does not return the wrapped database")
	}
	keys := []Key{
		{NCPU: 1}, {NMEM: 2}, {NIO: 3},
		{NCPU: 2, NMEM: 2, NIO: 2},
		{NCPU: 1, NMEM: 1, NIO: 1},
		{NCPU: 6},          // grid edge
		{NCPU: 9, NMEM: 9}, // off grid → extrapolation or error, either way memoized
	}
	// Query twice: the second pass must serve hits identical to the
	// uncached database, errors included.
	for pass := 0; pass < 2; pass++ {
		for _, k := range keys {
			want, wantErr := db.Estimate(k)
			got, gotErr := c.Estimate(k)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("pass %d key %v: err %v, want %v", pass, k, gotErr, wantErr)
			}
			if gotErr == nil && got != want {
				t.Errorf("pass %d key %v: rec %+v, want %+v", pass, k, got, want)
			}
		}
	}
	if c.Len() != len(keys) {
		t.Errorf("cache holds %d entries, want %d", c.Len(), len(keys))
	}
}

// TestEstimateCacheInstrumentedConcurrent hammers an instrumented cache
// from 8 goroutines with a mixed hit/miss/insert workload (run under
// -race in `make verify` and CI). Every lookup is exactly one hit or one
// miss, so the counters must sum to the query count, and the size gauge
// must settle on the final key count.
func TestEstimateCacheInstrumentedConcurrent(t *testing.T) {
	db := gridDB(t, 6)
	c := NewEstimateCache(db)
	reg := obs.NewRegistry()
	c.Instrument(reg)
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Small key space → mostly hits; worker-skewed component
				// → each goroutine also inserts fresh keys.
				k := Key{NCPU: 1 + i%3, NMEM: (i * w) % 5, NIO: i % 2}
				if _, err := c.Estimate(k); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	snap := reg.Snapshot()
	hits, misses := snap.Counters["model_cache_hits"], snap.Counters["model_cache_misses"]
	if hits+misses != workers*perWorker {
		t.Errorf("hits (%d) + misses (%d) = %d, want %d lookups", hits, misses, hits+misses, workers*perWorker)
	}
	if hits == 0 || misses == 0 {
		t.Errorf("workload not mixed: hits=%d misses=%d", hits, misses)
	}
	// Duplicate concurrent computations store identical entries, so the
	// final gauge value is exactly the distinct-key count.
	if got, want := snap.Gauges["model_cache_size"], int64(c.Len()); got != want {
		t.Errorf("model_cache_size gauge = %d, want Len() = %d", got, want)
	}
}

func TestEstimateCacheConcurrent(t *testing.T) {
	db := gridDB(t, 6)
	c := NewEstimateCache(db)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key{NCPU: i % 4, NMEM: (i + w) % 3, NIO: i % 2}
				if k.IsZero() {
					continue
				}
				got, err := c.Estimate(k)
				if err != nil {
					t.Error(err)
					return
				}
				want, _ := db.Estimate(k)
				if got != want {
					t.Errorf("key %v: concurrent hit %+v != direct %+v", k, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

package model_test

import (
	"fmt"

	"pacevm/internal/model"
	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// A miniature database: solo records for one and two CPU-intensive VMs.
func buildExampleDB() *model.DB {
	mk := func(n int, time units.Seconds, energy units.Joules) model.Record {
		r := model.Record{
			Key:       model.KeyFor(workload.ClassCPU, n),
			Time:      time,
			AvgTimeVM: time / units.Seconds(n),
			Energy:    energy,
			MaxPower:  230,
			EDP:       units.EDP(energy, time),
		}
		r.TimeByClass[workload.ClassCPU] = time
		return r
	}
	var aux model.Aux
	for _, c := range workload.Classes {
		aux.OSP[c], aux.OSE[c], aux.RefTime[c] = 4, 4, 600
	}
	db, err := model.New([]model.Record{
		mk(1, 600, 90000),
		mk(2, 620, 120000),
	}, aux)
	if err != nil {
		panic(err)
	}
	return db
}

func ExampleDB_Lookup() {
	db := buildExampleDB()
	rec, ok := db.Lookup(model.Key{NCPU: 2})
	fmt.Println(ok, rec.Time, rec.AvgTimeVM)
	_, miss := db.Lookup(model.Key{NMEM: 1})
	fmt.Println(miss)
	// Output:
	// true 620.000s 310.000s
	// false
}

func ExampleDB_Estimate() {
	db := buildExampleDB()
	// (3,0,0) is off the grid: the estimate extrapolates from the
	// nearest dominated record by VM-count ratio.
	rec, err := db.Estimate(model.Key{NCPU: 3})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(rec.Key, rec.Time)
	// Output: (3,0,0) 930.000s
}

func ExampleKey_Less() {
	keys := []model.Key{{NCPU: 1, NIO: 1}, {NCPU: 1}, {NMEM: 2}}
	// Lexicographic over (Ncpu, Nmem, Nio): (1,0,0) < (1,0,1), and
	// (0,2,0) < (1,0,1) because Ncpu compares first.
	fmt.Println(keys[1].Less(keys[0]), keys[2].Less(keys[0]))
	// Output: true true
}

package model

import (
	"bytes"
	"strings"
	"testing"

	"pacevm/internal/units"
)

func TestCSVRoundTrip(t *testing.T) {
	db := gridDB(t, 5)
	var main, aux bytes.Buffer
	if err := db.WriteCSV(&main); err != nil {
		t.Fatal(err)
	}
	if err := db.WriteAuxCSV(&aux); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&main, &aux)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("round trip lost records: %d vs %d", back.Len(), db.Len())
	}
	for i, want := range db.Records() {
		got := back.Records()[i]
		if got.Key != want.Key {
			t.Fatalf("record %d key %v, want %v", i, got.Key, want.Key)
		}
		if !units.NearlyEqual(float64(got.Time), float64(want.Time), 1e-9) ||
			!units.NearlyEqual(float64(got.Energy), float64(want.Energy), 1e-9) ||
			!units.NearlyEqual(float64(got.MaxPower), float64(want.MaxPower), 1e-9) {
			t.Fatalf("record %d drifted: %+v vs %+v", i, got, want)
		}
		for c := range got.TimeByClass {
			if !units.NearlyEqual(float64(got.TimeByClass[c]), float64(want.TimeByClass[c]), 1e-9) {
				t.Fatalf("record %d class time %d drifted", i, c)
			}
		}
	}
	if back.Aux() != db.Aux() {
		t.Errorf("aux drifted: %+v vs %+v", back.Aux(), db.Aux())
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	good := gridDB(t, 2)
	var main, aux bytes.Buffer
	if err := good.WriteCSV(&main); err != nil {
		t.Fatal(err)
	}
	if err := good.WriteAuxCSV(&aux); err != nil {
		t.Fatal(err)
	}
	mainStr, auxStr := main.String(), aux.String()

	cases := []struct {
		name      string
		main, aux string
	}{
		{"empty main", "", auxStr},
		{"empty aux", mainStr, ""},
		{"bad main header", "a,b,c\n", auxStr},
		{"wrong field count", "ncpu,nmem,nio\n1,2,3\n", auxStr},
		{"non-numeric field", corruptFirstDataField(mainStr), auxStr},
		{"bad aux class", mainStr, "class,osp,ose,reftime_s\ngpu,1,1,600\n"},
		{"missing aux class", mainStr, "class,osp,ose,reftime_s\ncpu,5,6,600\n"},
		{"duplicate aux class", mainStr, "class,osp,ose,reftime_s\ncpu,5,6,600\ncpu,5,6,600\nmem,5,6,600\nio,5,6,600\n"},
		{"bad aux osp", mainStr, "class,osp,ose,reftime_s\ncpu,x,6,600\nmem,5,6,600\nio,5,6,600\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.main), strings.NewReader(c.aux)); err == nil {
			t.Errorf("%s: ReadCSV accepted malformed input", c.name)
		}
	}
}

// TestReadCSVHardening pins the loader's line-numbered rejections: every
// NaN/Inf, negative measurement, and duplicate search key must be refused
// with an error naming the offending file line.
func TestReadCSVHardening(t *testing.T) {
	var aux bytes.Buffer
	if err := gridDB(t, 2).WriteAuxCSV(&aux); err != nil {
		t.Fatal(err)
	}
	auxStr := aux.String()

	header := strings.Join(csvHeader, ",")
	// Hand-built rows that satisfy Record.Validate (AvgTimeVM = Time/Total,
	// EDP = Energy × Time) for keys (1,0,0) and (2,0,0).
	row1 := "1,0,0,100,100,5000,60,500000,100,0,0"
	row2 := "2,0,0,200,100,10000,60,2000000,100,0,0"
	lines := func(ls ...string) string { return strings.Join(ls, "\n") + "\n" }

	if db, err := ReadCSV(strings.NewReader(lines(header, row1, row2)), strings.NewReader(auxStr)); err != nil {
		t.Fatalf("valid input rejected: %v", err)
	} else if db.Len() != 2 {
		t.Fatalf("valid input loaded %d records, want 2", db.Len())
	}

	cases := []struct {
		name    string
		main    string
		aux     string
		wantErr string
	}{
		{
			name:    "NaN energy",
			main:    lines(header, row1, "2,0,0,200,100,NaN,60,2000000,100,0,0"),
			wantErr: "records line 3: energy_j: non-finite value",
		},
		{
			name:    "infinite time",
			main:    lines(header, "1,0,0,+Inf,100,5000,60,500000,100,0,0"),
			wantErr: "records line 2: time_s: non-finite value",
		},
		{
			name:    "negative energy",
			main:    lines(header, "1,0,0,100,100,-5000,60,500000,100,0,0"),
			wantErr: "records line 2: energy_j: negative value",
		},
		{
			name:    "negative class time",
			main:    lines(header, "1,0,0,100,100,5000,60,500000,-100,0,0"),
			wantErr: "records line 2: time_cpu_s: negative value",
		},
		{
			name:    "negative VM count",
			main:    lines(header, "-1,0,0,100,100,5000,60,500000,100,0,0"),
			wantErr: "records line 2: negative VM count",
		},
		{
			name:    "duplicate key",
			main:    lines(header, row1, row2, "1,0,0,110,110,5500,60,605000,110,0,0"),
			wantErr: "records line 4: duplicate key (1,0,0) (first defined at line 2)",
		},
		{
			name:    "NaN aux reftime",
			main:    lines(header, row1),
			aux:     "class,osp,ose,reftime_s\ncpu,5,6,NaN\nmem,5,6,600\nio,5,6,600\n",
			wantErr: "aux row 2 reftime: non-finite value",
		},
		{
			name:    "negative aux reftime",
			main:    lines(header, row1),
			aux:     "class,osp,ose,reftime_s\ncpu,5,6,600\nmem,5,6,-600\nio,5,6,600\n",
			wantErr: "aux row 3 reftime: negative value",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			auxIn := c.aux
			if auxIn == "" {
				auxIn = auxStr
			}
			_, err := ReadCSV(strings.NewReader(c.main), strings.NewReader(auxIn))
			if err == nil {
				t.Fatal("malformed input accepted")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// corruptFirstDataField replaces the time_s field of the first data row
// with a non-numeric token.
func corruptFirstDataField(s string) string {
	lines := strings.SplitN(s, "\n", 3)
	if len(lines) < 3 {
		return s
	}
	fields := strings.Split(lines[1], ",")
	fields[3] = "abc"
	lines[1] = strings.Join(fields, ",")
	return strings.Join(lines, "\n")
}

func TestCSVHeaderStable(t *testing.T) {
	// The header is the on-disk schema; changing it silently would break
	// stored campaigns.
	db := gridDB(t, 1)
	var buf bytes.Buffer
	if err := db.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(buf.String(), "\n")
	want := "ncpu,nmem,nio,time_s,avgtimevm_s,energy_j,maxpower_w,edp_js,time_cpu_s,time_mem_s,time_io_s"
	if first != want {
		t.Errorf("header = %q, want %q", first, want)
	}
}

func TestAuxCSVShape(t *testing.T) {
	db := gridDB(t, 1)
	var buf bytes.Buffer
	if err := db.WriteAuxCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("aux file has %d lines, want header + 3 classes", len(lines))
	}
	if lines[0] != "class,osp,ose,reftime_s" {
		t.Errorf("aux header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "cpu,") || !strings.HasPrefix(lines[2], "mem,") || !strings.HasPrefix(lines[3], "io,") {
		t.Errorf("aux rows out of canonical order: %v", lines[1:])
	}
}

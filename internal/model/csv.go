package model

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"

	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// The on-disk format follows the paper's choice of "a plain-text file
// with comma-separated values instead of an actual database management
// system" (Sect. III.C). The main file holds one row per Table II record;
// the auxiliary file holds one row per workload class with the optimal
// scenarios and reference times of Table I.

var csvHeader = []string{
	"ncpu", "nmem", "nio",
	"time_s", "avgtimevm_s", "energy_j", "maxpower_w", "edp_js",
	"time_cpu_s", "time_mem_s", "time_io_s",
}

var auxHeader = []string{"class", "osp", "ose", "reftime_s"}

// WriteCSV writes the database records in key order.
func (db *DB) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("model: writing header: %w", err)
	}
	for _, r := range db.recs {
		row := []string{
			strconv.Itoa(r.NCPU), strconv.Itoa(r.NMEM), strconv.Itoa(r.NIO),
			fmtF(float64(r.Time)), fmtF(float64(r.AvgTimeVM)),
			fmtF(float64(r.Energy)), fmtF(float64(r.MaxPower)), fmtF(float64(r.EDP)),
			fmtF(float64(r.TimeByClass[workload.ClassCPU])),
			fmtF(float64(r.TimeByClass[workload.ClassMEM])),
			fmtF(float64(r.TimeByClass[workload.ClassIO])),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("model: writing record %v: %w", r.Key, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAuxCSV writes the auxiliary parameter file.
func (db *DB) WriteAuxCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(auxHeader); err != nil {
		return fmt.Errorf("model: writing aux header: %w", err)
	}
	for _, c := range workload.Classes {
		row := []string{
			c.String(),
			strconv.Itoa(db.aux.OSP[c]),
			strconv.Itoa(db.aux.OSE[c]),
			fmtF(float64(db.aux.RefTime[c])),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("model: writing aux row for %v: %w", c, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a database written by WriteCSV together with its
// auxiliary file.
func ReadCSV(main, aux io.Reader) (*DB, error) {
	recs, err := readRecords(main)
	if err != nil {
		return nil, err
	}
	a, err := readAux(aux)
	if err != nil {
		return nil, err
	}
	return New(recs, a)
}

// readRecords streams the main file row by row so every rejection —
// malformed field, non-finite or negative measurement, duplicate search
// key — names the offending file line. The database is the contract
// between the benchmarking campaign and every consumer downstream; a
// NaN or a silently-shadowed duplicate row here would surface hours
// later as a nonsense allocation, so the loader refuses them at the
// door instead.
func readRecords(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)

	header, err := cr.Read()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("model: empty records file")
		}
		return nil, fmt.Errorf("model: parsing records: %w", err)
	}
	if !sameRow(header, csvHeader) {
		return nil, fmt.Errorf("model: unexpected records header %v", header)
	}

	var recs []Record
	lineOf := make(map[Key]int)
	for {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("model: parsing records: %w", err)
		}
		line, _ := cr.FieldPos(0)
		rec, err := parseRecord(row)
		if err != nil {
			return nil, fmt.Errorf("model: records line %d: %w", line, err)
		}
		if first, dup := lineOf[rec.Key]; dup {
			return nil, fmt.Errorf("model: records line %d: duplicate key %v (first defined at line %d)", line, rec.Key, first)
		}
		lineOf[rec.Key] = line
		recs = append(recs, rec)
	}
	return recs, nil
}

func parseRecord(row []string) (Record, error) {
	var rec Record
	var err error
	if rec.NCPU, err = strconv.Atoi(row[0]); err != nil {
		return rec, fmt.Errorf("ncpu: %w", err)
	}
	if rec.NMEM, err = strconv.Atoi(row[1]); err != nil {
		return rec, fmt.Errorf("nmem: %w", err)
	}
	if rec.NIO, err = strconv.Atoi(row[2]); err != nil {
		return rec, fmt.Errorf("nio: %w", err)
	}
	if rec.NCPU < 0 || rec.NMEM < 0 || rec.NIO < 0 {
		return rec, fmt.Errorf("negative VM count in key %v", rec.Key)
	}
	fs := make([]float64, 8)
	for i := range fs {
		if fs[i], err = strconv.ParseFloat(row[3+i], 64); err != nil {
			return rec, fmt.Errorf("%s: %w", csvHeader[3+i], err)
		}
		if math.IsNaN(fs[i]) || math.IsInf(fs[i], 0) {
			return rec, fmt.Errorf("%s: non-finite value %q", csvHeader[3+i], row[3+i])
		}
		if fs[i] < 0 {
			return rec, fmt.Errorf("%s: negative value %v", csvHeader[3+i], fs[i])
		}
	}
	rec.Time = units.Seconds(fs[0])
	rec.AvgTimeVM = units.Seconds(fs[1])
	rec.Energy = units.Joules(fs[2])
	rec.MaxPower = units.Watts(fs[3])
	rec.EDP = units.JouleSeconds(fs[4])
	rec.TimeByClass[workload.ClassCPU] = units.Seconds(fs[5])
	rec.TimeByClass[workload.ClassMEM] = units.Seconds(fs[6])
	rec.TimeByClass[workload.ClassIO] = units.Seconds(fs[7])
	return rec, nil
}

func readAux(r io.Reader) (Aux, error) {
	var a Aux
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(auxHeader)
	rows, err := cr.ReadAll()
	if err != nil {
		return a, fmt.Errorf("model: parsing aux: %w", err)
	}
	if len(rows) == 0 || !sameRow(rows[0], auxHeader) {
		return a, fmt.Errorf("model: missing or malformed aux header")
	}
	seen := map[workload.Class]bool{}
	for i, row := range rows[1:] {
		var c workload.Class
		switch row[0] {
		case "cpu":
			c = workload.ClassCPU
		case "mem":
			c = workload.ClassMEM
		case "io":
			c = workload.ClassIO
		default:
			return a, fmt.Errorf("model: aux row %d: unknown class %q", i+2, row[0])
		}
		if seen[c] {
			return a, fmt.Errorf("model: aux row %d: duplicate class %v", i+2, c)
		}
		seen[c] = true
		if a.OSP[c], err = strconv.Atoi(row[1]); err != nil {
			return a, fmt.Errorf("model: aux row %d osp: %w", i+2, err)
		}
		if a.OSE[c], err = strconv.Atoi(row[2]); err != nil {
			return a, fmt.Errorf("model: aux row %d ose: %w", i+2, err)
		}
		var t float64
		if t, err = strconv.ParseFloat(row[3], 64); err != nil {
			return a, fmt.Errorf("model: aux row %d reftime: %w", i+2, err)
		}
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return a, fmt.Errorf("model: aux row %d reftime: non-finite value %q", i+2, row[3])
		}
		if t < 0 {
			return a, fmt.Errorf("model: aux row %d reftime: negative value %v", i+2, t)
		}
		a.RefTime[c] = units.Seconds(t)
	}
	for _, c := range workload.Classes {
		if !seen[c] {
			return a, fmt.Errorf("model: aux file missing class %v", c)
		}
	}
	return a, nil
}

func sameRow(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fmtF uses the shortest representation that round-trips exactly, so a
// database written and reloaded is bit-identical (simulations must not
// depend on whether the model came from memory or from disk).
func fmtF(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

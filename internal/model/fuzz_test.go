package model

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks the database reader never panics and that accepted
// databases are internally consistent (every record validates, lookups
// by stored keys hit).
func FuzzReadCSV(f *testing.F) {
	// Seed with a valid database.
	seedDB, err := New([]Record{mkRecord(Key{1, 0, 0}), mkRecord(Key{1, 2, 3})}, mkAux())
	if err != nil {
		f.Fatal(err)
	}
	var mainBuf, auxBuf bytes.Buffer
	if err := seedDB.WriteCSV(&mainBuf); err != nil {
		f.Fatal(err)
	}
	if err := seedDB.WriteAuxCSV(&auxBuf); err != nil {
		f.Fatal(err)
	}
	f.Add(mainBuf.String(), auxBuf.String())
	f.Add("", "")
	f.Add("ncpu,nmem,nio\n", "class,osp\n")
	f.Add(mainBuf.String(), "class,osp,ose,reftime_s\ncpu,1,1,1\n")

	f.Fuzz(func(t *testing.T, mainCSV, auxCSV string) {
		db, err := ReadCSV(strings.NewReader(mainCSV), strings.NewReader(auxCSV))
		if err != nil {
			return
		}
		for _, r := range db.Records() {
			if err := r.Validate(); err != nil {
				t.Fatalf("accepted database contains invalid record: %v", err)
			}
			if _, ok := db.Lookup(r.Key); !ok {
				t.Fatalf("stored key %v not found by lookup", r.Key)
			}
		}
		if err := db.Aux().Validate(); err != nil {
			t.Fatalf("accepted database has invalid aux: %v", err)
		}
	})
}

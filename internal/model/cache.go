package model

import (
	"sync"

	"pacevm/internal/obs"
)

// EstimateCache memoizes DB.Estimate results. Estimate is pure for a
// given database, but off-grid keys pay a linear nearest-record scan,
// and the allocator's partition search prices the same few dozen
// allocations thousands of times per decision. The cache is safe for
// concurrent use; a hit returns exactly the record a direct Estimate
// call would, so cached and uncached searches are bit-for-bit
// equivalent.
//
// The cache holds an unbounded map and is meant to be scoped to one
// search or simulation over one database, not held for a process
// lifetime over many databases.
type EstimateCache struct {
	db *DB

	// Telemetry handles (see Instrument); nil by default, the zero-cost
	// disabled path.
	hits   *obs.Counter
	misses *obs.Counter
	size   *obs.Gauge

	mu sync.RWMutex
	m  map[Key]estimateEntry
}

type estimateEntry struct {
	rec Record
	err error
}

// NewEstimateCache returns an empty cache over db.
func NewEstimateCache(db *DB) *EstimateCache {
	return &EstimateCache{db: db, m: make(map[Key]estimateEntry, 64)}
}

// DB returns the underlying database.
func (c *EstimateCache) DB() *DB { return c.db }

// Instrument wires the cache's telemetry to reg: counters
// model_cache_hits and model_cache_misses plus the model_cache_size
// gauge (memoized-key count). A nil reg resolves the handles to nil,
// keeping the disabled no-op path. Multiple caches instrumented against
// one registry share the instruments (the counts aggregate).
func (c *EstimateCache) Instrument(reg *obs.Registry) {
	c.hits = reg.Counter("model_cache_hits")
	c.misses = reg.Counter("model_cache_misses")
	c.size = reg.Gauge("model_cache_size")
}

// Len returns the number of memoized keys.
func (c *EstimateCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Estimate returns db.Estimate(k), memoized. Errors are memoized too:
// an unpriceable key stays unpriceable for the life of the database.
func (c *EstimateCache) Estimate(k Key) (Record, error) {
	c.mu.RLock()
	e, ok := c.m[k]
	c.mu.RUnlock()
	if ok {
		c.hits.Inc()
		return e.rec, e.err
	}
	c.misses.Inc()
	// Compute outside the lock; concurrent duplicate computations are
	// benign because Estimate is deterministic, so last-write-wins
	// stores an identical entry.
	rec, err := c.db.Estimate(k)
	c.mu.Lock()
	c.m[k] = estimateEntry{rec: rec, err: err}
	c.size.Set(int64(len(c.m)))
	c.mu.Unlock()
	return rec, err
}

package model

import (
	"testing"
	"testing/quick"

	"pacevm/internal/units"
	"pacevm/internal/workload"
)

// mkRecord builds a consistent record for testing: time/energy grow with
// the VM total so interpolation is monotone.
func mkRecord(k Key) Record {
	total := float64(k.Total())
	t := units.Seconds(600 + 40*total)
	e := units.Joules(80000 + 30000*total)
	r := Record{
		Key:       k,
		Time:      t,
		AvgTimeVM: t / units.Seconds(total),
		Energy:    e,
		MaxPower:  units.Watts(150 + 5*total),
		EDP:       units.EDP(e, t),
	}
	for _, c := range workload.Classes {
		if k.Count(c) > 0 {
			r.TimeByClass[c] = t * units.Seconds(0.9)
		}
	}
	return r
}

func mkAux() Aux {
	var a Aux
	for _, c := range workload.Classes {
		a.OSP[c] = 5
		a.OSE[c] = 6
		a.RefTime[c] = 600
	}
	return a
}

// gridDB builds a DB over all keys with total <= maxTotal.
func gridDB(t *testing.T, maxTotal int) *DB {
	t.Helper()
	var recs []Record
	for c := 0; c <= maxTotal; c++ {
		for m := 0; m <= maxTotal-c; m++ {
			for i := 0; i <= maxTotal-c-m; i++ {
				k := Key{c, m, i}
				if k.IsZero() {
					continue
				}
				recs = append(recs, mkRecord(k))
			}
		}
	}
	db, err := New(recs, mkAux())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestKeyBasics(t *testing.T) {
	k := Key{1, 2, 3}
	if k.Total() != 6 {
		t.Errorf("Total = %d", k.Total())
	}
	if k.String() != "(1,2,3)" {
		t.Errorf("String = %q", k.String())
	}
	if !k.Valid() || k.IsZero() {
		t.Error("key misclassified")
	}
	if (Key{-1, 0, 0}).Valid() {
		t.Error("negative key should be invalid")
	}
	if !(Key{}).IsZero() {
		t.Error("zero key should be zero")
	}
	if got := k.Add(Key{1, 1, 1}); got != (Key{2, 3, 4}) {
		t.Errorf("Add = %v", got)
	}
}

func TestKeyWithCount(t *testing.T) {
	for _, c := range workload.Classes {
		k := KeyFor(c, 3)
		if k.Count(c) != 3 || k.Total() != 3 {
			t.Errorf("KeyFor(%v,3) = %v", c, k)
		}
	}
}

func TestKeyWithPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("With invalid class should panic")
		}
	}()
	Key{}.With(workload.Class(9), 1)
}

func TestKeyLessIsStrictOrder(t *testing.T) {
	f := func(a, b Key) bool {
		// Antisymmetry and totality over the generated pairs.
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyDominates(t *testing.T) {
	if !(Key{2, 2, 2}).Dominates(Key{1, 2, 0}) {
		t.Error("should dominate")
	}
	if (Key{2, 2, 2}).Dominates(Key{3, 0, 0}) {
		t.Error("should not dominate")
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	aux := mkAux()
	if _, err := New(nil, aux); err == nil {
		t.Error("empty record set should fail")
	}
	// Duplicate keys.
	r := mkRecord(Key{1, 0, 0})
	if _, err := New([]Record{r, r}, aux); err == nil {
		t.Error("duplicate keys should fail")
	}
	// Invalid record.
	bad := r
	bad.Time = -1
	if _, err := New([]Record{bad}, aux); err == nil {
		t.Error("invalid record should fail")
	}
	// Inconsistent avg.
	bad = mkRecord(Key{2, 0, 0})
	bad.AvgTimeVM *= 3
	if _, err := New([]Record{bad}, aux); err == nil {
		t.Error("inconsistent avg should fail")
	}
	// Invalid aux.
	var badAux Aux
	if _, err := New([]Record{r}, badAux); err == nil {
		t.Error("invalid aux should fail")
	}
}

func TestLookupExact(t *testing.T) {
	db := gridDB(t, 6)
	for _, r := range db.Records() {
		got, ok := db.Lookup(r.Key)
		if !ok || got.Key != r.Key {
			t.Fatalf("Lookup(%v) failed", r.Key)
		}
	}
	if _, ok := db.Lookup(Key{99, 0, 0}); ok {
		t.Error("Lookup of absent key succeeded")
	}
}

func TestLookupEqualsLinearScanProperty(t *testing.T) {
	db := gridDB(t, 5)
	f := func(c, m, i uint8) bool {
		k := Key{int(c % 8), int(m % 8), int(i % 8)}
		got, ok := db.Lookup(k)
		// Linear scan reference.
		var want Record
		found := false
		for _, r := range db.Records() {
			if r.Key == k {
				want, found = r, true
				break
			}
		}
		if ok != found {
			return false
		}
		return !ok || got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecordsSorted(t *testing.T) {
	db := gridDB(t, 5)
	recs := db.Records()
	for i := 1; i < len(recs); i++ {
		if !recs[i-1].Key.Less(recs[i].Key) {
			t.Fatalf("records not strictly sorted at %d", i)
		}
	}
}

func TestAuxOS(t *testing.T) {
	a := mkAux()
	for _, c := range workload.Classes {
		if got := a.OS(c); got != 6 {
			t.Errorf("OS(%v) = %d, want max(5,6)=6", c, got)
		}
	}
	a.OSP[workload.ClassCPU] = 9
	if a.OS(workload.ClassCPU) != 9 {
		t.Error("OS should be max(OSP,OSE)")
	}
}

func TestEstimateExactHit(t *testing.T) {
	db := gridDB(t, 6)
	want, _ := db.Lookup(Key{2, 1, 1})
	got, err := db.Estimate(Key{2, 1, 1})
	if err != nil || got != want {
		t.Fatalf("Estimate exact = %+v, %v", got, err)
	}
}

func TestEstimateBeyondGridScales(t *testing.T) {
	db := gridDB(t, 6)
	got, err := db.Estimate(Key{12, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	anchor, _ := db.Lookup(Key{6, 0, 0})
	if got.Time <= anchor.Time {
		t.Errorf("extrapolated time %v should exceed anchor %v", got.Time, anchor.Time)
	}
	if got.Key != (Key{12, 0, 0}) {
		t.Errorf("estimate key = %v", got.Key)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("extrapolated record invalid: %v", err)
	}
}

func TestEstimateInteriorHole(t *testing.T) {
	// Build a sparse DB with a hole at (2,0,0).
	recs := []Record{mkRecord(Key{1, 0, 0}), mkRecord(Key{3, 0, 0})}
	db, err := New(recs, mkAux())
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Estimate(Key{2, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := recs[0], recs[1]
	if got.Time <= lo.Time || got.Time >= hi.Time {
		t.Errorf("interpolated time %v not between %v and %v", got.Time, lo.Time, hi.Time)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("interpolated record invalid: %v", err)
	}
}

func TestEstimateErrors(t *testing.T) {
	db := gridDB(t, 3)
	if _, err := db.Estimate(Key{}); err == nil {
		t.Error("zero key should fail")
	}
	if _, err := db.Estimate(Key{-1, 0, 0}); err == nil {
		t.Error("invalid key should fail")
	}
}

func TestEstimateAlwaysValidProperty(t *testing.T) {
	db := gridDB(t, 6)
	f := func(c, m, i uint8) bool {
		k := Key{int(c % 16), int(m % 16), int(i % 16)}
		if k.IsZero() {
			return true
		}
		r, err := db.Estimate(k)
		if err != nil {
			return false
		}
		return r.Validate() == nil && r.Key == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxKey(t *testing.T) {
	db := gridDB(t, 4)
	if got := db.MaxKey(); got != (Key{4, 4, 4}) {
		t.Errorf("MaxKey = %v", got)
	}
}

func TestClassTimeFallback(t *testing.T) {
	r := mkRecord(Key{2, 0, 0})
	if r.ClassTime(workload.ClassCPU) != r.TimeByClass[workload.ClassCPU] {
		t.Error("present class should use stored time")
	}
	if r.ClassTime(workload.ClassIO) != r.AvgTimeVM {
		t.Error("absent class should fall back to AvgTimeVM")
	}
}

package serve

import (
	"sync"
	"testing"
	"time"

	"pacevm/internal/cloudsim"
	"pacevm/internal/obs"
)

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func ladderConfig() *Config {
	return &Config{
		Watermarks:  [3]time.Duration{50 * time.Millisecond, 200 * time.Millisecond, 800 * time.Millisecond},
		Hysteresis:  0.5,
		LadderDwell: 100 * time.Millisecond,
	}
}

func TestLadderStepsDownOneLevelAtATime(t *testing.T) {
	clock := newFakeClock()
	rec := cloudsim.NewDecisionRecorder()
	l := newLadder(ladderConfig(), clock.now, obs.NewRegistry(), rec)
	// Massive waits: each dwell window may step at most one level.
	for want := LevelBudgeted; want <= LevelShed; want++ {
		clock.advance(150 * time.Millisecond)
		if got := l.observe(5 * time.Second); got != want {
			t.Fatalf("after dwell %d: level %s, want %s", want, levelName(got), levelName(want))
		}
		// Within the same dwell window the level must hold.
		if got := l.observe(5 * time.Second); got != want {
			t.Fatalf("stepped twice inside one dwell window: %s", levelName(got))
		}
	}
	// Shed is the floor.
	clock.advance(150 * time.Millisecond)
	if got := l.observe(5 * time.Second); got != LevelShed {
		t.Fatalf("below shed: %d", got)
	}
	steps := 0
	for _, d := range rec.Decisions() {
		if d.Kind != cloudsim.DecisionDegrade {
			t.Fatalf("unexpected decision kind %q", d.Kind)
		}
		if d.To != d.From+1 {
			t.Fatalf("step skipped a level: %d -> %d", d.From, d.To)
		}
		steps++
	}
	if steps != 3 {
		t.Fatalf("recorded %d degrade steps, want 3", steps)
	}
}

func TestLadderRecoversWithHysteresis(t *testing.T) {
	clock := newFakeClock()
	rec := cloudsim.NewDecisionRecorder()
	l := newLadder(ladderConfig(), clock.now, obs.NewRegistry(), rec)
	clock.advance(150 * time.Millisecond)
	if got := l.observe(time.Second); got != LevelBudgeted {
		t.Fatalf("did not degrade: %s", levelName(got))
	}
	// The EWMA must fall below marks[0] * hysteresis = 25ms to recover —
	// a wait just under the 50ms watermark is not enough.
	for i := 0; i < 50; i++ {
		clock.advance(150 * time.Millisecond)
		if got := l.observe(30 * time.Millisecond); got != LevelBudgeted {
			t.Fatalf("recovered inside the hysteresis band: %s", levelName(got))
		}
	}
	// Idle observations drain the EWMA below the recovery threshold.
	var got int
	for i := 0; i < 50; i++ {
		clock.advance(150 * time.Millisecond)
		if got = l.observe(0); got == LevelFull {
			break
		}
	}
	if got != LevelFull {
		t.Fatalf("never recovered: %s", levelName(got))
	}
	var down, up bool
	for _, d := range rec.Decisions() {
		if d.To > d.From {
			down = true
		}
		if d.To < d.From {
			up = true
		}
	}
	if !down || !up {
		t.Fatalf("decision log missing a direction: down=%v up=%v", down, up)
	}
}

func TestLimiterBurstAndRefill(t *testing.T) {
	clock := newFakeClock()
	l := newLimiter(10, 2, clock.now)
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("c"); !ok {
			t.Fatalf("burst token %d denied", i)
		}
	}
	ok, wait := l.allow("c")
	if ok || wait <= 0 || wait > 100*time.Millisecond {
		t.Fatalf("empty bucket: ok=%v wait=%v", ok, wait)
	}
	// Other clients are unaffected.
	if ok, _ := l.allow("d"); !ok {
		t.Fatal("independent client denied")
	}
	clock.advance(wait)
	if ok, _ := l.allow("c"); !ok {
		t.Fatal("token not refilled after the advertised wait")
	}
	// A nil limiter (rate off) admits everything.
	var off *limiter
	if ok, _ := off.allow("anyone"); !ok {
		t.Fatal("nil limiter denied")
	}
	if newLimiter(0, 5, clock.now) != nil {
		t.Fatal("rate 0 should disable the limiter")
	}
}

package serve

// Per-client token-bucket rate limiting. Each client key (the
// X-Client-Id header, falling back to the remote host) owns a bucket
// refilled continuously at Config.RatePerSec up to Config.RateBurst; a
// request with no token is answered 429 with a Retry-After computed
// from the bucket's actual deficit, so a well-behaved client backs off
// exactly as long as needed. A nil limiter (rate <= 0) admits
// everything at the cost of one nil check.

import (
	"math"
	"sync"
	"time"
)

// limiterMaxClients bounds the bucket map; when exceeded, buckets that
// have fully refilled (i.e. carry no throttling state) are dropped.
const limiterMaxClients = 8192

type limiter struct {
	rate  float64 // tokens per second
	burst float64
	clock func() time.Time

	mu sync.Mutex
	m  map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newLimiter(rate float64, burst int, clock func() time.Time) *limiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &limiter{rate: rate, burst: float64(burst), clock: clock, m: make(map[string]*bucket)}
}

// allow spends one token from the client's bucket. When the bucket is
// empty it reports false and the wait until one token will exist.
func (l *limiter) allow(client string) (bool, time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.clock()
	b := l.m[client]
	if b == nil {
		if len(l.m) >= limiterMaxClients {
			l.prune()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.m[client] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// prune drops refilled buckets; callers hold l.mu.
func (l *limiter) prune() {
	now := l.clock()
	for k, b := range l.m {
		if math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate) >= l.burst {
			delete(l.m, k)
		}
	}
}

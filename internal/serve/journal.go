package serve

// Crash-safe durability: a write-ahead journal plus periodic
// checksummed snapshots.
//
// Every state-changing decision (place, release, crash, recover,
// requeue) is appended to a JSONL journal — and, with Config.Fsync,
// synced — BEFORE the client sees the acknowledgement, so an
// acknowledged placement survives a kill -9: restart replay re-applies
// it, and the client's retry of an unacknowledged request is caught by
// the idempotency key instead of double-placing. A torn final record
// (the write the crash interrupted) is discarded on replay — by
// construction no client holds its acknowledgement.
//
// Snapshots bound replay: a versioned, CRC-32-checksummed JSON document
// written via tmp+rename carries the full service state (occupancy as
// live placements, down servers, the in-flight queue) at journal
// sequence Seq; restore loads the snapshot, replays only journal
// records with seq > Seq, then runs every watchdog invariant before
// serving. After a successful snapshot the journal is truncated under
// its lock, so it holds only the records the next restore needs.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// Journal record kinds.
const (
	jPlace   = "place"
	jRelease = "release"
	jCrash   = "crash"
	jRecover = "recover"
	jRequeue = "requeue"
)

// jrec is one journal record. Kind selects the meaningful fields; the
// integer zero values decode identically whether written or omitted,
// so omitempty is safe throughout.
type jrec struct {
	Seq  int    `json:"seq"`
	Kind string `json:"kind"`
	// Place / release / requeue: the idempotency key.
	Key string `json:"key,omitempty"`
	// Place: the full placement.
	Job      int     `json:"job,omitempty"`
	Class    string  `json:"class,omitempty"`
	NominalS float64 `json:"nominal_s,omitempty"`
	MaxS     float64 `json:"max_s,omitempty"`
	Servers  []int   `json:"servers,omitempty"` // global server per VM
	VMIDs    []int   `json:"vm_ids,omitempty"`
	Degraded bool    `json:"degraded,omitempty"`
	Relaxed  bool    `json:"relaxed,omitempty"`
	// Crash / recover: the global server. Requeue: the new server.
	Server int `json:"server,omitempty"`
	// Requeue: which VM of the placement moved.
	Slot int `json:"slot,omitempty"`
	VMID int `json:"vm_id,omitempty"`
	// Crash: the residents evicted with the server.
	Evict []evictRec `json:"evict,omitempty"`
}

// evictRec names one VM a crash evicted.
type evictRec struct {
	Key  string `json:"key"`
	Slot int    `json:"slot"`
	VMID int    `json:"vm_id"`
}

// journal is the append-side handle. seq is the last assigned sequence
// number; records are written one JSON line at a time directly to the
// fd (no userspace buffering), so a kill -9 after append loses nothing
// the OS accepted, and Fsync extends that to machine crashes.
type journal struct {
	mu    sync.Mutex
	f     *os.File
	seq   int
	fsync bool
}

// openJournal opens (creating if absent) the journal for appending,
// with the sequence counter seeded past everything already applied.
// validSize is the byte offset of the end of the last valid record as
// readJournal reported it; anything beyond it is a torn tail and is
// truncated away, so the next append starts a fresh line instead of
// concatenating onto partial JSON (which a later restore would either
// reject as mid-file corruption or silently drop as a torn tail,
// losing an acknowledged record).
func openJournal(path string, fsync bool, lastSeq int, validSize int64) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(validSize); err != nil {
		f.Close()
		return nil, err
	}
	return &journal{f: f, seq: lastSeq, fsync: fsync}, nil
}

// append assigns the next sequence number to r, writes it, and — when
// configured — syncs before returning. Nil-safe: a service without a
// snapshot path runs journal-less and every append is a no-op
// reporting seq 0.
func (j *journal) append(r *jrec) (int, error) {
	if j == nil {
		return 0, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	r.Seq = j.seq + 1
	b, err := json.Marshal(r)
	if err != nil {
		return 0, err
	}
	b = append(b, '\n')
	if _, err := j.f.Write(b); err != nil {
		return 0, err
	}
	if j.fsync {
		if err := j.f.Sync(); err != nil {
			return 0, err
		}
	}
	j.seq = r.Seq
	return r.Seq, nil
}

// lastSeq returns the last assigned sequence number.
func (j *journal) lastSeq() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

func (j *journal) close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// readJournal parses a journal file. A missing file is an empty
// journal. A torn final record — partial JSON on the last line — is
// discarded; any earlier malformed record, or a sequence number that
// does not strictly increase, is corruption and errors out. The second
// return is the byte offset of the end of the last valid record —
// openJournal truncates the torn tail to it before appending.
func readJournal(path string) ([]jrec, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	lines := bytes.Split(data, []byte("\n"))
	var out []jrec
	lastSeq := 0
	var valid, off int64
	for i, line := range lines {
		end := off + int64(len(line)) + 1 // the '\n' Split consumed...
		if end > int64(len(data)) {
			end = int64(len(data)) // ...which the final segment lacks
		}
		if len(bytes.TrimSpace(line)) == 0 {
			off = end
			continue
		}
		var r jrec
		if err := json.Unmarshal(line, &r); err != nil {
			if i == len(lines)-1 {
				break // torn final record: the crash interrupted this write
			}
			return nil, 0, fmt.Errorf("serve: journal %s line %d: %w", path, i+1, err)
		}
		if r.Seq <= lastSeq {
			return nil, 0, fmt.Errorf("serve: journal %s line %d: seq %d after %d", path, i+1, r.Seq, lastSeq)
		}
		lastSeq = r.Seq
		out = append(out, r)
		valid, off = end, end
	}
	return out, valid, nil
}

// ---- snapshot ----

// snapshotVersion is bumped on any incompatible payload change; restore
// refuses a version it does not speak.
const snapshotVersion = 1

// snapPlacement is one committed placement in a snapshot. Occupancy is
// not stored separately: restore re-derives per-server allocations and
// the capacity index purely from the live placements, so the restored
// state is consistent by construction and the watchdog audit checks it
// against nothing but itself plus the index invariants.
type snapPlacement struct {
	Key      string  `json:"key"`
	Job      int     `json:"job,omitempty"`
	Class    string  `json:"class"`
	NominalS float64 `json:"nominal_s,omitempty"`
	MaxS     float64 `json:"max_s,omitempty"`
	Shard    int     `json:"shard"`
	Servers  []int   `json:"servers"` // global; -1 = evicted, awaiting requeue
	VMIDs    []int   `json:"vm_ids"`
	Released bool    `json:"released,omitempty"`
	Degraded bool    `json:"degraded,omitempty"`
	Relaxed  bool    `json:"relaxed,omitempty"`
}

// snapPending is one queued (or parked) request in a snapshot: admitted
// work the service still owes an answer for.
type snapPending struct {
	Key      string  `json:"key"`
	Job      int     `json:"job,omitempty"`
	Class    string  `json:"class"`
	VMs      int     `json:"vms"`
	NominalS float64 `json:"nominal_s,omitempty"`
	MaxS     float64 `json:"max_s,omitempty"`
	// Requeue pendings re-place one evicted VM of an existing placement
	// and stay pinned to its shard.
	Requeue bool `json:"requeue,omitempty"`
	Shard   int  `json:"shard,omitempty"`
	Slot    int  `json:"slot,omitempty"`
	VMID    int  `json:"vm_id,omitempty"`
}

// snapPayload is the checksummed body of a snapshot file.
type snapPayload struct {
	Seq        int             `json:"seq"` // journal records <= Seq are folded in
	NextVMID   int             `json:"next_vm_id"`
	Servers    int             `json:"servers"`
	Shards     int             `json:"shards"`
	MaxVMs     int             `json:"max_vms"`
	Down       []int           `json:"down,omitempty"` // global ids
	Placements []snapPlacement `json:"placements"`
	Queue      []snapPending   `json:"queue,omitempty"`
}

// snapFile is the on-disk wrapper: version, CRC-32 (IEEE) of the raw
// payload bytes, payload.
type snapFile struct {
	Version int             `json:"version"`
	CRC     uint32          `json:"crc32"`
	Payload json.RawMessage `json:"payload"`
}

// writeSnapshotFile writes the snapshot atomically: marshal, checksum,
// write to a same-directory temp file, fsync, rename over the target.
// A crash at any point leaves either the old snapshot or the new one,
// never a torn file.
func writeSnapshotFile(path string, p *snapPayload) error {
	raw, err := json.Marshal(p)
	if err != nil {
		return err
	}
	doc, err := json.Marshal(snapFile{Version: snapshotVersion, CRC: crc32.ChecksumIEEE(raw), Payload: raw})
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(doc, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Sync the directory too: the caller truncates the journal the
	// snapshot subsumes, so a power loss must not be able to revert the
	// rename and leave neither the new snapshot nor the journal.
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// readSnapshotFile loads and verifies a snapshot. A missing file means
// "no snapshot yet" (nil, nil); a version or checksum mismatch is an
// error — restore must never serve from state it cannot vouch for.
func readSnapshotFile(path string) (*snapPayload, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var f snapFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("serve: snapshot %s: %w", path, err)
	}
	if f.Version != snapshotVersion {
		return nil, fmt.Errorf("serve: snapshot %s: version %d, this build speaks %d", path, f.Version, snapshotVersion)
	}
	if got := crc32.ChecksumIEEE(f.Payload); got != f.CRC {
		return nil, fmt.Errorf("serve: snapshot %s: crc32 %08x, header claims %08x", path, got, f.CRC)
	}
	var p snapPayload
	if err := json.Unmarshal(f.Payload, &p); err != nil {
		return nil, fmt.Errorf("serve: snapshot %s payload: %w", path, err)
	}
	return &p, nil
}

package serve

// Chaos soak: builds the real pacevm-serve binary and drives it the way
// the ISSUE demands — injected server faults, overload bursts beyond the
// queue bound, a mid-run kill -9 followed by -restore, and a SIGTERM
// drain — then proves:
//
//   - zero lost or duplicated placements: every 200-acknowledged key
//     replays identically after the crash/restore, with globally unique
//     VM ids, and released keys stay released;
//   - the five watchdog invariants are clean post-restore (the daemon
//     refuses to serve on a dirty restore, and exits non-zero if any
//     sweep or the final drain check fires);
//   - the degradation ladder both steps down under the bursts and
//     recovers in the quiet tail, visible in the decision log.
//
// Runs ~3s by default so it rides along with `go test ./...`;
// PACEVM_SOAK_SECONDS stretches it (make serve-soak uses 30) and
// PACEVM_SOAK_DIR pins the artifact directory so CI can upload the
// snapshot/journal/decision log on failure.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"pacevm/internal/cloudsim"
	"pacevm/internal/obs"
)

// repoRoot locates the module root from this file's path so the test
// can `go build ./cmd/pacevm-serve` regardless of the working dir.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

func buildServe(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "pacevm-serve")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/pacevm-serve")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building pacevm-serve: %v\n%s", err, out)
	}
	return bin
}

// writeModelDir materialises the shared test model as model.csv/aux.csv
// so the daemon skips its in-process campaign on every start.
func writeModelDir(t *testing.T) string {
	t.Helper()
	db := sharedDB(t)
	dir := t.TempDir()
	mf, err := os.Create(filepath.Join(dir, "model.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WriteCSV(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()
	af, err := os.Create(filepath.Join(dir, "aux.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WriteAuxCSV(af); err != nil {
		t.Fatal(err)
	}
	af.Close()
	return dir
}

// daemon wraps one pacevm-serve process: its combined output (collected
// live) and its exit status.
type daemon struct {
	cmd  *exec.Cmd
	done chan error

	mu  sync.Mutex
	out bytes.Buffer
}

func (d *daemon) output() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.out.String()
}

// startDaemon launches the binary and blocks until it reports its
// listen address (the daemon binds :0, so each run picks a fresh port).
func startDaemon(t *testing.T, bin string, args ...string) (*daemon, string) {
	t.Helper()
	d := &daemon{cmd: exec.Command(bin, args...), done: make(chan error, 1)}
	stdout, err := d.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	d.cmd.Stderr = &lockedWriter{d: d}
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.out.WriteString(line + "\n")
			d.mu.Unlock()
			if rest, ok := strings.CutPrefix(line, "pacevm-serve: listening on "); ok {
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
		d.done <- d.cmd.Wait()
	}()
	select {
	case addr := <-addrCh:
		return d, "http://" + addr
	case err := <-d.done:
		t.Fatalf("daemon exited before listening: %v\n%s", err, d.output())
	case <-time.After(60 * time.Second):
		_ = d.cmd.Process.Kill()
		t.Fatalf("daemon never reported its listen address\n%s", d.output())
	}
	panic("unreachable")
}

type lockedWriter struct{ d *daemon }

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.d.mu.Lock()
	defer w.d.mu.Unlock()
	return w.d.out.Write(p)
}

// soakClient drives the HTTP API and keeps the ground truth the final
// consistency check is judged against: the first acknowledged response
// per key, and which keys were released.
type soakClient struct {
	t  *testing.T
	hc *http.Client

	mu       sync.Mutex
	base     string
	acks     map[string]PlaceResponse
	released map[string]bool
	errs     []string
}

func newSoakClient(t *testing.T, base string) *soakClient {
	return &soakClient{
		t:        t,
		hc:       &http.Client{Timeout: 5 * time.Second},
		base:     base,
		acks:     make(map[string]PlaceResponse),
		released: make(map[string]bool),
	}
}

func (c *soakClient) setBase(base string) {
	c.mu.Lock()
	c.base = base
	c.mu.Unlock()
}

func (c *soakClient) url(path string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base + path
}

// fail records a consistency violation; collected instead of t.Fatal so
// load goroutines can keep going and we report every violation at once.
func (c *soakClient) fail(format string, args ...any) {
	c.mu.Lock()
	c.errs = append(c.errs, fmt.Sprintf(format, args...))
	c.mu.Unlock()
}

// place sends one /v1/place. With retry=true it keeps retrying through
// backpressure (429/503) and daemon downtime until acknowledged or the
// deadline passes; with retry=false it is a single fire-and-forget shot
// (burst traffic — shedding it is the expected outcome). Every 200 is
// checked against the recorded ground truth for double placement.
func (c *soakClient) place(cid, key string, vms int, retry bool, deadline time.Time) bool {
	body, _ := json.Marshal(PlaceRequest{Key: key, Class: []string{"cpu", "mem", "io"}[len(key)%3], VMs: vms})
	for {
		req, err := http.NewRequest("POST", c.url("/v1/place"), bytes.NewReader(body))
		if err != nil {
			c.fail("place %s: %v", key, err)
			return false
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Client-Id", cid)
		resp, err := c.hc.Do(req)
		if err == nil {
			func() {
				defer resp.Body.Close()
				if resp.StatusCode != 200 {
					return
				}
				var pr PlaceResponse
				if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
					c.fail("place %s: bad 200 body: %v", key, err)
					return
				}
				c.record(key, pr)
			}()
			if resp.StatusCode == 200 {
				return true
			}
			if resp.StatusCode == 400 {
				c.fail("place %s: unexpected 400", key)
				return false
			}
		}
		if !retry || time.Now().After(deadline) {
			return false
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// record folds an acknowledged placement into the ground truth. A
// second 200 for a key must be a replay of the first — anything else is
// the double-placement the WAL + idempotency keys exist to prevent.
func (c *soakClient) record(key string, pr PlaceResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	prev, seen := c.acks[key]
	if !seen {
		// First client-visible ack. Replayed=true is legal here: the
		// original ack can be lost in a kill -9.
		c.acks[key] = pr
		return
	}
	if !pr.Replayed && !prev.Released && !pr.Released {
		c.errs = append(c.errs, fmt.Sprintf("key %s placed twice without replay flag", key))
	}
	if c.released[key] && !pr.Released {
		c.errs = append(c.errs, fmt.Sprintf("key %s was released but replayed live", key))
	}
	if !prev.Released && !pr.Released && !sameInts(prev.VMIDs, pr.VMIDs) {
		c.errs = append(c.errs, fmt.Sprintf("key %s replayed with different VM ids: %v then %v", key, prev.VMIDs, pr.VMIDs))
	}
}

func (c *soakClient) release(key string, deadline time.Time) {
	body, _ := json.Marshal(map[string]string{"key": key})
	for {
		resp, err := c.hc.Post(c.url("/v1/release"), "application/json", bytes.NewReader(body))
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == 200 {
				c.mu.Lock()
				c.released[key] = true
				c.mu.Unlock()
				return
			}
			if code == 404 {
				c.fail("release %s: 404 for an acknowledged key", key)
				return
			}
		}
		if time.Now().After(deadline) {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func soakSeconds() float64 {
	if s := os.Getenv("PACEVM_SOAK_SECONDS"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 3
}

func TestServeChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	total := time.Duration(soakSeconds() * float64(time.Second))

	artifacts := os.Getenv("PACEVM_SOAK_DIR")
	if artifacts == "" {
		artifacts = t.TempDir()
	} else if err := os.MkdirAll(artifacts, 0o755); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(artifacts, "state.snap")
	dlog := filepath.Join(artifacts, "decisions.jsonl")
	alog := filepath.Join(artifacts, "access.jsonl")

	bin := buildServe(t, t.TempDir())
	mdir := writeModelDir(t)
	args := func(restore bool) []string {
		a := []string{
			"-addr", "127.0.0.1:0",
			"-model", mdir,
			"-servers", "16", "-shards", "2", "-max-vms", "4",
			"-queue-cap", "16",
			"-rate", "300", "-burst", "30",
			"-timeout", "3s",
			"-watermarks", "200us,1ms,4ms", "-dwell", "25ms", "-hysteresis", "0.5",
			"-snapshot", snap, "-snapshot-every", "150ms",
			"-watchdog", "150ms",
			"-drain-timeout", "30s",
			"-decision-log", dlog,
			"-access-log", alog,
			"-slo-target", "250ms", "-slow-ring", "16",
			"-chaos-mtbf", "0.5", "-chaos-mttr", "0.25", "-chaos-seed", "7",
		}
		if restore {
			a = append(a, "-restore")
		}
		return a
	}

	d, base := startDaemon(t, bin, args(false)...)
	cli := newSoakClient(t, base)
	hardStop := time.Now().Add(total + 90*time.Second)

	// Steady clients: place, sometimes release, across the whole soak
	// (riding through the kill -9 by retrying).
	var stopLoad sync.WaitGroup
	loadDone := make(chan struct{})
	for g := 0; g < 6; g++ {
		stopLoad.Add(1)
		go func(g int) {
			defer stopLoad.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for n := 0; ; n++ {
				select {
				case <-loadDone:
					return
				default:
				}
				key := fmt.Sprintf("steady-%d-%d", g, n)
				if cli.place(fmt.Sprintf("steady-%d", g), key, 1+rng.Intn(2), true, time.Now().Add(20*time.Second)) && n%2 == 0 {
					cli.release(key, time.Now().Add(20*time.Second))
				}
				time.Sleep(time.Duration(5+rng.Intn(10)) * time.Millisecond)
			}
		}(g)
	}
	burst := func(tag string) {
		var wg sync.WaitGroup
		for i := 0; i < 64; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				cli.place("burster", fmt.Sprintf("burst-%s-%d", tag, i), 2, false, time.Time{})
			}(i)
		}
		wg.Wait()
	}

	// Phase 1: steady load plus a couple of warm-up bursts, long enough
	// for at least one periodic snapshot to land.
	phase1 := total * 3 / 10
	time.Sleep(phase1 / 2)
	burst("warm")
	time.Sleep(phase1 / 2)
	waitFor(t, "first snapshot", func() bool {
		fi, err := os.Stat(snap)
		return err == nil && fi.Size() > 0
	})

	// Kill -9 mid-run, with load still in flight.
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-d.done
	t.Logf("killed -9 after %v; restoring", phase1)

	d2, base2 := startDaemon(t, bin, args(true)...)
	cli.setBase(base2)

	// Phase 2: the 10 overload bursts the ISSUE demands, with steady
	// load underneath, then a quiet tail for the ladder to recover in.
	phase2 := total * 55 / 100
	for i := 0; i < 10; i++ {
		burst(strconv.Itoa(i))
		time.Sleep(phase2 / 10)
	}

	// Mid-chaos observability check: the live /metrics exposition must
	// machine-validate and carry the request-latency families even with
	// faults firing and bursts being shed.
	func() {
		resp, err := cli.hc.Get(cli.url("/metrics"))
		if err != nil {
			t.Errorf("mid-chaos /metrics scrape: %v", err)
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		_ = os.WriteFile(filepath.Join(artifacts, "soak-metrics.prom"), body, 0o644)
		fams, err := obs.ValidateExposition(bytes.NewReader(body))
		if err != nil {
			t.Errorf("mid-chaos exposition invalid: %v", err)
			return
		}
		for _, fam := range []string{"serve_stage_seconds", "serve_request_seconds", "serve_slo_burn_rate"} {
			if _, ok := fams[fam]; !ok {
				t.Errorf("mid-chaos /metrics missing family %s", fam)
			}
		}
	}()
	close(loadDone)
	stopLoad.Wait()

	quiet := total - phase1 - phase2
	if quiet < 1200*time.Millisecond {
		quiet = 1200 * time.Millisecond
	}
	time.Sleep(quiet)

	// Consistency audit against the live (restored) daemon: every
	// acknowledged key must replay identically; released keys must have
	// stayed released.
	cli.mu.Lock()
	keys := make([]string, 0, len(cli.acks))
	for k := range cli.acks {
		keys = append(keys, k)
	}
	cli.mu.Unlock()
	for _, k := range keys {
		if !cli.place("audit", k, 1, true, time.Now().Add(20*time.Second)) {
			cli.fail("key %s lost: replay never acknowledged", k)
		}
	}
	cli.mu.Lock()
	seen := make(map[int]string)
	for k, pr := range cli.acks {
		for _, id := range pr.VMIDs {
			if prev, dup := seen[id]; dup {
				cli.errs = append(cli.errs, fmt.Sprintf("vm id %d issued to both %s and %s", id, prev, k))
			}
			seen[id] = k
		}
	}
	nAcked, errs := len(cli.acks), cli.errs
	cli.mu.Unlock()
	if time.Now().After(hardStop) {
		t.Errorf("soak overran its hard stop")
	}
	for _, e := range errs {
		t.Error(e)
	}
	if nAcked < 20 {
		t.Errorf("only %d acknowledged placements; soak did not exercise the service", nAcked)
	}

	// SIGTERM drain: the daemon writes the final snapshot, sweeps the
	// watchdog, dumps the decision log, and must exit 0 (any invariant
	// violation, including post-restore, makes it exit non-zero).
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-d2.done:
		if err != nil {
			t.Fatalf("daemon exited dirty after drain: %v\n%s", err, d2.output())
		}
	case <-time.After(60 * time.Second):
		_ = d2.cmd.Process.Kill()
		t.Fatalf("daemon did not drain\n%s", d2.output())
	}
	if !strings.Contains(d2.output(), "drained clean") {
		t.Fatalf("missing clean-drain confirmation:\n%s", d2.output())
	}

	// The ladder must have stepped down under the bursts AND recovered
	// in the quiet tail — both visible in the decision log.
	f, err := os.Open(dlog)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	decisions, err := cloudsim.ReadDecisionLog(f)
	if err != nil {
		t.Fatal(err)
	}
	var down, up, placed, shed bool
	for _, dec := range decisions {
		switch dec.Kind {
		case cloudsim.DecisionDegrade:
			if dec.To > dec.From {
				down = true
			}
			if dec.To < dec.From {
				up = true
			}
		case cloudsim.DecisionPlace:
			placed = true
		case cloudsim.DecisionShed:
			shed = true
		}
	}
	if !down || !up {
		t.Errorf("decision log: ladder stepped down=%v recovered=%v, want both (of %d decisions)", down, up, len(decisions))
	}
	if !placed || !shed {
		t.Errorf("decision log: placed=%v shed=%v, want both", placed, shed)
	}

	// The access log survives the kill -9 (O_APPEND across both runs)
	// and every line is valid JSON carrying a request ID; the soak's
	// shed bursts must show up as shed outcomes.
	raw, err := os.ReadFile(alog)
	if err != nil {
		t.Fatal(err)
	}
	aLines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(aLines) < nAcked {
		t.Errorf("access log has %d lines for %d acked placements", len(aLines), nAcked)
	}
	sawShed := false
	for i, line := range aLines {
		var rec accessRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("access line %d: %v\n%s", i+1, err, line)
		}
		if rec.RequestID == "" || rec.Outcome == "" {
			t.Fatalf("access line %d missing fields: %+v", i+1, rec)
		}
		if rec.Outcome == "shed" {
			sawShed = true
		}
	}
	if !sawShed {
		t.Error("access log recorded no shed outcomes despite overload bursts")
	}
	t.Logf("soak: %d acked placements, %d decisions logged, %d access lines, restore clean", nAcked, len(decisions), len(aLines))
}

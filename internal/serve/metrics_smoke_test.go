package serve

// TestMetricsSmoke is the `make metrics-smoke` entry point: build the
// real pacevm-serve binary, run it with the full observability stack
// and chaos fault injection on, drive mixed traffic (placements,
// replays, releases, bad requests), then machine-validate the live
// /metrics exposition — both the main mux and the dedicated -metrics
// listener — and cross-check /debug/slow and the access log against a
// known request ID. Scraped artifacts land in PACEVM_SOAK_DIR (or a
// temp dir) so CI can upload them when the validation fails.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"pacevm/internal/obs"
)

// scrape fetches url and returns the body, archiving it at artifact
// for post-mortem upload.
func scrape(t *testing.T, url, artifact string) []byte {
	t.Helper()
	hc := &http.Client{Timeout: 10 * time.Second}
	resp, err := hc.Get(url)
	if err != nil {
		t.Fatalf("scrape %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape %s: %v", url, err)
	}
	if artifact != "" {
		if werr := os.WriteFile(artifact, body, 0o644); werr != nil {
			t.Logf("archiving %s: %v", artifact, werr)
		}
	}
	if resp.StatusCode != 200 {
		t.Fatalf("scrape %s: status %d", url, resp.StatusCode)
	}
	return body
}

// validateServeExposition runs the exposition validator and checks the
// serve metric families a live observed daemon must export.
func validateServeExposition(t *testing.T, body []byte, where string) {
	t.Helper()
	fams, err := obs.ValidateExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("%s exposition invalid: %v", where, err)
	}
	want := map[string]string{
		"serve_requests_total":       "counter",
		"serve_placements_total":     "counter",
		"serve_degradation_level":    "gauge",
		"serve_stage_seconds":        "histogram",
		"serve_request_seconds":      "histogram",
		"serve_slo_target_seconds":   "gauge",
		"serve_slo_attainment_ratio": "gauge",
		"serve_slo_burn_rate":        "gauge",
	}
	for fam, typ := range want {
		if fams[fam] != typ {
			t.Errorf("%s: family %s = %q, want %s", where, fam, fams[fam], typ)
		}
	}
}

func TestMetricsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("metrics smoke skipped in -short")
	}
	artifacts := os.Getenv("PACEVM_SOAK_DIR")
	if artifacts == "" {
		artifacts = t.TempDir()
	} else if err := os.MkdirAll(artifacts, 0o755); err != nil {
		t.Fatal(err)
	}
	accessPath := filepath.Join(artifacts, "metrics-smoke-access.jsonl")

	bin := buildServe(t, t.TempDir())
	mdir := writeModelDir(t)
	d, base := startDaemon(t, bin,
		"-addr", "127.0.0.1:0",
		"-model", mdir,
		"-servers", "16", "-shards", "2", "-max-vms", "4",
		"-watermarks", "200us,1ms,4ms", "-dwell", "25ms",
		"-metrics", "127.0.0.1:0",
		"-access-log", accessPath,
		"-slo-target", "250ms", "-slo-window", "30s",
		"-slow-ring", "16",
		"-chaos-mtbf", "0.5", "-chaos-mttr", "0.25", "-chaos-seed", "11",
		"-drain-timeout", "30s",
	)

	// The dedicated metrics listener reports its own address on stdout
	// before the main one.
	var metricsBase string
	waitFor(t, "metrics listener address", func() bool {
		for _, line := range strings.Split(d.output(), "\n") {
			if rest, ok := strings.CutPrefix(line, "pacevm-serve: metrics on "); ok {
				metricsBase = "http://" + rest
				return true
			}
		}
		return false
	})

	// Mixed traffic under chaos: placements (one with a pinned request
	// ID), replays, releases, and a bad request, spread over ~1.5s so
	// the fault schedule fires while requests are in flight.
	cli := newSoakClient(t, base)
	deadline := time.Now().Add(30 * time.Second)
	const pinnedID = "req-metrics-smoke-pinned"
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("smoke-%d", i)
		if !cli.place("smoke", key, 1+i%2, true, deadline) {
			t.Fatalf("place %s never acknowledged", key)
		}
		if i%4 == 0 {
			cli.release(key, deadline)
		}
		if i%8 == 0 {
			cli.place("smoke", key, 1+i%2, true, deadline) // replay
		}
		time.Sleep(25 * time.Millisecond)
	}
	req, _ := http.NewRequest("POST", base+"/v1/place",
		strings.NewReader(`{"key":"smoke-pinned","class":"io","vms":1}`))
	req.Header.Set("X-Request-Id", pinnedID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("X-Request-Id") != pinnedID {
		t.Fatalf("pinned place: status %d id %q", resp.StatusCode, resp.Header.Get("X-Request-Id"))
	}
	if resp, err := http.Post(base+"/v1/place", "application/json",
		strings.NewReader("{not json")); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// Scrape both exposition endpoints while chaos is still live and
	// machine-validate them.
	mainBody := scrape(t, base+"/metrics", filepath.Join(artifacts, "metrics-smoke-main.prom"))
	validateServeExposition(t, mainBody, "main mux")
	dedicatedBody := scrape(t, metricsBase+"/metrics", filepath.Join(artifacts, "metrics-smoke-dedicated.prom"))
	validateServeExposition(t, dedicatedBody, "dedicated listener")

	// The pinned request must be traceable end to end: /debug/slow has
	// its seven-stage breakdown and the access log its JSONL line.
	slowBody := scrape(t, metricsBase+"/debug/slow", filepath.Join(artifacts, "metrics-smoke-slow.json"))
	var slow []obs.SlowRequest
	if err := json.Unmarshal(slowBody, &slow); err != nil {
		t.Fatalf("/debug/slow: %v\n%s", err, slowBody)
	}
	if len(slow) == 0 {
		t.Fatal("/debug/slow empty after 40+ requests")
	}
	for _, sr := range slow {
		if len(sr.Stages) != numStages {
			t.Fatalf("slow request %s has %d stages, want %d", sr.RequestID, len(sr.Stages), numStages)
		}
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-d.done:
		if err != nil {
			t.Fatalf("daemon exited dirty: %v\n%s", err, d.output())
		}
	case <-time.After(60 * time.Second):
		_ = d.cmd.Process.Kill()
		t.Fatalf("daemon did not drain\n%s", d.output())
	}

	// Access log: every line is valid JSON with the required fields, and
	// the pinned request ID appears exactly once.
	raw, err := os.ReadFile(accessPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 40 {
		t.Fatalf("access log has %d lines, want >= 40", len(lines))
	}
	pinned := 0
	for i, line := range lines {
		var rec accessRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("access line %d: %v\n%s", i+1, err, line)
		}
		if rec.RequestID == "" || rec.Route == "" || rec.Outcome == "" || rec.TS == "" {
			t.Fatalf("access line %d missing fields: %+v", i+1, rec)
		}
		if rec.RequestID == pinnedID {
			pinned++
			if rec.Route != "/v1/place" || rec.Outcome != "placed" || rec.Key != "smoke-pinned" {
				t.Fatalf("pinned access record: %+v", rec)
			}
		}
	}
	if pinned != 1 {
		t.Fatalf("pinned request ID appears %d times in access log, want 1", pinned)
	}
	t.Logf("metrics smoke: %d access-log lines, %d slow-ring entries, expositions valid", len(lines), len(slow))
}

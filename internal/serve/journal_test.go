package serve

import (
	"os"
	"path/filepath"
	"testing"
)

// TestJournalTornTailTruncatedOnReopen pins the crash->restore->crash
// contract: a torn final record is not just skipped by readJournal, it
// is physically truncated when the journal reopens for appending, so
// the next record starts a fresh line. Without the truncate, the new
// record concatenates onto the partial JSON and a second restore either
// fails on mid-file corruption or silently drops an acknowledged record
// as a "torn tail".
func TestJournalTornTailTruncatedOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, err := openJournal(path, false, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.append(&jrec{Kind: jPlace, Key: "a", Class: "cpu", Servers: []int{0}, VMIDs: []int{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := j.append(&jrec{Kind: jRelease, Key: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	// Simulate kill -9 mid-append: partial JSON with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"kind":"pl`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// First restore: the torn record is dropped, valid ends at record 2.
	recs, valid, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Seq != 2 {
		t.Fatalf("after torn tail: %d records (want 2), last %+v", len(recs), recs[len(recs)-1])
	}
	size := int64(0)
	if st, err := os.Stat(path); err == nil {
		size = st.Size()
	}
	if valid >= size {
		t.Fatalf("valid offset %d should exclude the torn tail (file is %d bytes)", valid, size)
	}

	// Reopen as restore does and append the next acknowledged record.
	j2, err := openJournal(path, false, recs[len(recs)-1].Seq, valid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j2.append(&jrec{Kind: jPlace, Key: "b", Class: "cpu", Servers: []int{1}, VMIDs: []int{2}}); err != nil {
		t.Fatal(err)
	}
	if err := j2.close(); err != nil {
		t.Fatal(err)
	}

	// Second restore: all three records, nothing corrupt, nothing lost.
	recs2, _, err := readJournal(path)
	if err != nil {
		t.Fatalf("journal corrupt after reopen+append: %v", err)
	}
	if len(recs2) != 3 || recs2[2].Seq != 3 || recs2[2].Key != "b" {
		t.Fatalf("acknowledged record lost: %d records, last %+v", len(recs2), recs2[len(recs2)-1])
	}
}

package serve

// BenchmarkServe measures the full admission round trip — validate,
// route, queue, shard-worker PA placement, reply — plus the matching
// release, with a sliding window of live placements so the fleet stays
// at a steady mid-load occupancy instead of saturating. Recorded in
// BENCH_sim.json by `make bench-json`.

import (
	"fmt"
	"io"
	"testing"
	"time"
)

func benchConfig(b *testing.B) Config {
	return Config{
		DB:              sharedDB(b),
		Servers:         64,
		Shards:          4,
		MaxVMsPerServer: 4,
		RequestTimeout:  10 * time.Second,
		Watermarks:      [3]time.Duration{time.Second, 2 * time.Second, 4 * time.Second},
		WatchdogEvery:   -1,
	}
}

func BenchmarkServe(b *testing.B) {
	benchServe(b, benchConfig(b))
}

// BenchmarkServeObs is BenchmarkServe with the full observability
// stack on — span tracing, slow ring, per-stage histograms, SLO
// tracking, and the access log (to io.Discard). The delta against
// BenchmarkServe is the per-request observability overhead.
func BenchmarkServeObs(b *testing.B) {
	cfg := benchConfig(b)
	cfg.SlowRing = 32
	cfg.SLOTarget = 500 * time.Millisecond
	cfg.AccessLog = io.Discard
	benchServe(b, cfg)
}

func benchServe(b *testing.B, cfg Config) {
	s, err := NewService(cfg)
	if err != nil {
		b.Fatal(err)
	}
	const window = 128 // live placements held; 256 VM slots total
	classes := [...]string{"cpu", "mem", "io"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("b-%d", i)
		out := s.Place("bench", PlaceRequest{Key: key, Class: classes[i%3], VMs: 1})
		if out.Status != 200 {
			b.Fatalf("place %s: status %d reason %q", key, out.Status, out.Reason)
		}
		if i >= window {
			if out := s.Release(fmt.Sprintf("b-%d", i-window)); out.Status != 200 {
				b.Fatalf("release: status %d reason %q", out.Status, out.Reason)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	if v := s.Drain(30 * time.Second); len(v) != 0 {
		b.Fatalf("drain left %d violations; first: %+v", len(v), v[0])
	}
}
